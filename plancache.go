package pascalr

import (
	"container/list"
	"sync"
)

// planCacheSize bounds the prepared statements the one-shot Query path
// keeps behind the scenes.
const planCacheSize = 64

// planCache is a small LRU of prepared statements keyed by source text
// and compile options. It sits behind the one-shot Query/QueryRows
// calls, so repeated ad-hoc queries get prepared-statement speed
// without the caller managing Stmt objects. Entries never go stale:
// each Stmt revalidates its plan against the database's content
// version on execution, so the cache only ever amortizes compilation.
// A mutex makes hits, insertions, and evictions safe from concurrent
// one-shot queries; on a concurrent miss both compilers race benignly
// and the later put wins.
type planCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	byKey map[string]*list.Element
}

type planEntry struct {
	key  string
	stmt *Stmt
}

func newPlanCache(capacity int) *planCache {
	return &planCache{cap: capacity, ll: list.New(), byKey: make(map[string]*list.Element)}
}

func (pc *planCache) get(key string) (*Stmt, bool) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if el, ok := pc.byKey[key]; ok {
		pc.ll.MoveToFront(el)
		return el.Value.(*planEntry).stmt, true
	}
	return nil, false
}

func (pc *planCache) put(key string, s *Stmt) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if el, ok := pc.byKey[key]; ok {
		pc.ll.MoveToFront(el)
		el.Value.(*planEntry).stmt = s
		return
	}
	pc.byKey[key] = pc.ll.PushFront(&planEntry{key: key, stmt: s})
	if pc.ll.Len() > pc.cap {
		last := pc.ll.Back()
		pc.ll.Remove(last)
		delete(pc.byKey, last.Value.(*planEntry).key)
	}
}

func (pc *planCache) len() int {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.ll.Len()
}
