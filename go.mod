module pascalr

go 1.22
