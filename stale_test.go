package pascalr

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// TestQueryRowsStaleRetry proves the one-shot cursor absorbs a single
// mid-stream invalidation: a row deleted after the cursor opened makes
// a later dereference stale, the query re-executes transparently, and
// the stream resumes over the new contents without repeating the
// already-yielded tuple. Err reports nothing.
func TestQueryRowsStaleRetry(t *testing.T) {
	db, err := Open(sampleScript)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := db.QueryRows(context.Background(), `[<e.enr, e.ename> OF EACH e IN employees: (e.enr >= 1)]`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if !rows.Next() {
		t.Fatalf("no first row: %v", rows.Err())
	}
	var first int64
	var name string
	if err := rows.Scan(&first, &name); err != nil {
		t.Fatal(err)
	}
	// Delete an employee the cursor has not yielded yet, invalidating
	// its reference mid-stream.
	victim := int64(2)
	if first == victim {
		victim = 3
	}
	if err := db.Exec(fmt.Sprintf("employees :- [<%d>];", victim)); err != nil {
		t.Fatal(err)
	}
	got := map[int64]bool{first: true}
	for rows.Next() {
		var enr int64
		var en string
		if err := rows.Scan(&enr, &en); err != nil {
			t.Fatal(err)
		}
		if got[enr] {
			t.Fatalf("row %d yielded twice across the retry", enr)
		}
		got[enr] = true
	}
	if err := rows.Err(); err != nil {
		t.Fatalf("retry should absorb the invalidation, got %v", err)
	}
	if got[victim] {
		t.Fatalf("deleted employee %d still yielded", victim)
	}
	if len(got) != 3 {
		t.Fatalf("yielded %d employees, want 3 (all minus the deleted one): %v", len(got), got)
	}
}

// TestStmtRowsSurfacesStaleRead proves the prepared path does NOT
// retry: the caller owns the statement, so the invalidation surfaces
// as the typed, retryable ErrStaleRead.
func TestStmtRowsSurfacesStaleRead(t *testing.T) {
	db, err := Open(sampleScript)
	if err != nil {
		t.Fatal(err)
	}
	stmt, err := db.Prepare(`[<e.enr, e.ename> OF EACH e IN employees: (e.enr >= 1)]`)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := stmt.Rows(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if !rows.Next() {
		t.Fatalf("no first row: %v", rows.Err())
	}
	var first int64
	var name string
	if err := rows.Scan(&first, &name); err != nil {
		t.Fatal(err)
	}
	victim := int64(2)
	if first == victim {
		victim = 3
	}
	if err := db.Exec(fmt.Sprintf("employees :- [<%d>];", victim)); err != nil {
		t.Fatal(err)
	}
	for rows.Next() {
	}
	err = rows.Err()
	if err == nil {
		t.Fatal("prepared cursor absorbed the invalidation; want ErrStaleRead")
	}
	if !errors.Is(err, ErrStaleRead) {
		t.Fatalf("want ErrStaleRead, got %v", err)
	}
	// Re-executing the statement is the documented recovery.
	res, err := stmt.Query(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 {
		t.Fatalf("re-execution saw %d employees, want 3", res.Len())
	}
}

// TestQueryRowsStaleRetryConcurrent runs streaming readers against a
// writer mutating the scanned relation, under the race detector: every
// cursor either completes (absorbing at most one invalidation) or
// reports the typed ErrStaleRead — never a torn read, a duplicate row,
// or an unclassified error.
func TestQueryRowsStaleRetryConcurrent(t *testing.T) {
	db, err := Open(sampleScript)
	if err != nil {
		t.Fatal(err)
	}
	const iters = 40
	var readers, writer sync.WaitGroup
	stop := make(chan struct{})
	writer.Add(1)
	go func() {
		defer writer.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Churn one employee in and out; enr 9 never appears in the
			// seed population.
			if err := db.Exec("employees :+ [<9, 'eve', student>];"); err != nil {
				t.Error(err)
				return
			}
			if err := db.Exec("employees :- [<9>];"); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < iters; i++ {
				rows, err := db.QueryRows(context.Background(), `[<e.enr, e.ename> OF EACH e IN employees: (e.enr >= 1)]`)
				if err != nil {
					t.Error(err)
					return
				}
				seen := map[int64]bool{}
				for rows.Next() {
					var enr int64
					var name string
					if err := rows.Scan(&enr, &name); err != nil {
						t.Error(err)
						break
					}
					if seen[enr] {
						t.Errorf("duplicate row %d across retry", enr)
					}
					seen[enr] = true
				}
				if err := rows.Err(); err != nil && !errors.Is(err, ErrStaleRead) {
					t.Errorf("unclassified cursor error: %v", err)
				}
				rows.Close()
			}
		}()
	}
	readers.Wait()
	close(stop)
	writer.Wait()
}
