// Division: universal quantification as relational division. The
// paper's combination phase evaluates ALL with the division operator
// (section 3.3, citing Codd); this example runs the classic
// division-shaped query — employees who teach EVERY sophomore-level
// course — and shows the user-written extended range the quantifier
// ranges over.
//
// Run with: go run ./examples/division
package main

import (
	"fmt"
	"log"

	"pascalr"
)

// Every employee appearing with every course of the restricted range
// qualifies; an employee missing any one sophomore course does not.
// With no sophomore-level courses at all the quantifier is vacuously
// TRUE and everybody qualifies (Lemma 1).
const query = `
[<e.ename> OF EACH e IN employees:
   ALL c IN [EACH c IN courses: c.clevel <= sophomore]
     (SOME t IN timetable ((t.tenr = e.enr) AND (t.tcnr = c.cnr)))]
`

func main() {
	db, err := pascalr.Open(`
TYPE nametype  = PACKED ARRAY [1..10] OF char;
     titletype = PACKED ARRAY [1..40] OF char;
     daytype   = (monday, tuesday, wednesday, thursday, friday);
     leveltype = (freshman, sophomore, junior, senior);

VAR employees : RELATION <enr> OF
      RECORD enr : 1..99; ename : nametype END;
    courses : RELATION <cnr> OF
      RECORD cnr : 1..99; clevel : leveltype; ctitle : titletype END;
    timetable : RELATION <tenr, tcnr, tday> OF
      RECORD tenr : 1..99; tcnr : 1..99; tday : daytype END;

employees :+ [<1, 'ada'>, <2, 'bob'>, <3, 'cyd'>];
courses   :+ [<10, freshman,  'intro i'>,
              <11, sophomore, 'intro ii'>,
              <12, senior,    'seminar'>];

{ ada teaches both lower-level courses; bob only one; cyd none. }
timetable :+ [<1, 10, monday>, <1, 11, tuesday>,
              <2, 10, wednesday>,
              <3, 12, friday>];
`)
	if err != nil {
		log.Fatal(err)
	}

	show := func(label string) {
		res, err := db.Query(query)
		if err != nil {
			log.Fatal(err)
		}
		var names []string
		for _, row := range res.Rows() {
			names = append(names, row[0].(string))
		}
		fmt.Printf("%-34s -> %v\n", label, names)
	}

	fmt.Println("who teaches ALL courses at sophomore level or below?")
	show("ada covers 10 and 11")

	// Add a third lower-level course nobody teaches yet: the divisor
	// grows and even ada drops out.
	db.MustExec(`courses :+ [<13, freshman, 'intro iii'>];`)
	show("course 13 added, untaught")

	// ada picks it up.
	db.MustExec(`timetable :+ [<1, 13, friday>];`)
	show("ada picks up course 13")

	// The plan shows the division step explicitly.
	out, err := db.Explain(query, pascalr.WithStrategies(pascalr.S1|pascalr.S2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nplan (S1+S2) — note the divide step for ALL c:")
	fmt.Print(out)

	// Remove all lower-level courses: ALL over the empty range is TRUE,
	// so everyone qualifies — including cyd, who teaches nothing
	// relevant (Lemma 1 again).
	db.MustExec(`courses :- [<10>, <11>, <13>];`)
	fmt.Println()
	show("no lower-level courses left")
}
