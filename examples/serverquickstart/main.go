// Serverquickstart: dial a running pascald, run a one-shot query, then
// stream the same query through a prepared statement, and finish with a
// look at the server's process list.
//
// Start the daemon first:
//
//	go run ./cmd/pascald -university 40
//
// then run with: go run ./examples/serverquickstart [-addr host:port]
package main

import (
	"flag"
	"fmt"
	"log"

	"pascalr/client"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7583", "pascald address")
	flag.Parse()

	c, err := client.Dial(*addr)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	fmt.Printf("connected, session %d\n", c.SessionID())

	// One-shot: professors teaching a low-level course, forced onto the
	// paper's S1+S2 strategies.
	const q = `[<e.ename, c.cnr> OF EACH e IN employees, EACH c IN courses, EACH t IN timetable:
	  (e.estatus = professor) AND (c.clevel <= sophomore) AND
	  (e.enr = t.tenr) AND (c.cnr = t.tcnr)]`
	res, err := c.Query(q, client.Options{HasStrategies: true, Strategies: 0x03})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one-shot: %d rows, columns %v\n", len(res.Rows), res.Columns)

	// Prepared + streamed: compile once, fetch in small batches.
	stmt, err := c.Prepare(q, client.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer stmt.Close()
	rows, err := stmt.Execute()
	if err != nil {
		log.Fatal(err)
	}
	rows.FetchSize = 4
	n := 0
	for rows.Next() {
		if n < 3 {
			fmt.Printf("  %v\n", rows.Values())
		}
		n++
	}
	if err := rows.Err(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streamed: %d rows (first 3 shown)\n", n)

	procs, err := c.ProcessList()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("process list: %d session(s)\n", len(procs.Rows))
}
