// Emptyrelations: Lemma 1 of the paper in action. The standard form of
// a query with quantifiers assumes non-empty range relations; when
// papers is empty, ALL p IN papers (...) is vacuously TRUE and the
// system must adapt the standard form at run time — otherwise the
// sample query would return all employees instead of the professors
// (the paper's Example 2.2 caveat).
//
// Run with: go run ./examples/emptyrelations
package main

import (
	"fmt"
	"log"

	"pascalr"
)

const query = `
[<e.ename> OF EACH e IN employees:
  (e.estatus = professor)
  AND
  (ALL p IN papers ((p.pyear <> 1977) OR (e.enr <> p.penr))
   OR
   SOME c IN courses ((c.clevel <= sophomore)
     AND SOME t IN timetable ((c.cnr = t.tcnr) AND (e.enr = t.tenr))))]
`

func main() {
	db, err := pascalr.Open(`
TYPE statustype = (student, technician, assistant, professor);
     nametype   = PACKED ARRAY [1..10] OF char;
     titletype  = PACKED ARRAY [1..40] OF char;
     yeartype   = 1900..1999;
     daytype    = (monday, tuesday, wednesday, thursday, friday);
     leveltype  = (freshman, sophomore, junior, senior);
     enumbertype = 1..99;
     cnumbertype = 1..99;

VAR employees : RELATION <enr> OF
      RECORD enr : enumbertype; ename : nametype; estatus : statustype END;
    papers : RELATION <ptitle, penr> OF
      RECORD penr : enumbertype; pyear : yeartype; ptitle : titletype END;
    courses : RELATION <cnr> OF
      RECORD cnr : cnumbertype; clevel : leveltype; ctitle : titletype END;
    timetable : RELATION <tenr, tcnr, tday> OF
      RECORD tenr : enumbertype; tcnr : cnumbertype; tday : daytype END;

employees :+ [<1, 'ada', professor>, <2, 'bob', student>,
              <3, 'cyd', professor>, <4, 'dan', professor>];
papers    :+ [<1, 1977, 'a 1977 paper by ada'>,
              <3, 1980, 'a 1980 paper by cyd'>];
courses   :+ [<10, sophomore, 'intro'>, <11, senior, 'advanced'>];
timetable :+ [<1, 11, monday>, <3, 10, tuesday>];
`)
	if err != nil {
		log.Fatal(err)
	}

	show := func(label string) {
		res, err := db.Query(query)
		if err != nil {
			log.Fatal(err)
		}
		var names []string
		for _, row := range res.Rows() {
			names = append(names, row[0].(string))
		}
		fmt.Printf("%-28s -> %v\n", label, names)
	}

	fmt.Println("professors with no 1977 paper or a sophomore-level course:")
	show("full database")

	// Empty courses: SOME c over the empty relation is FALSE; only the
	// ALL p branch can qualify anyone, so the answer is unchanged here
	// (cyd qualifies through her papers, not only her course).
	db.MustExec(`courses := [<c.cnr, c.clevel, c.ctitle> OF EACH c IN courses: c.cnr = 99];`)
	show("courses = []")

	// Empty papers too: ALL p over the empty relation is TRUE, so every
	// professor qualifies — including ada, whom the 1977 paper excluded
	// before. An unadapted standard form would return bob as well; the
	// engine must not.
	db.MustExec(`papers := [<p.penr, p.pyear, p.ptitle> OF EACH p IN papers: p.pyear = 1900];`)
	show("papers = courses = []")

	// Empty employees: the free variable has nothing to range over.
	db.MustExec(`employees :- [<1>, <2>, <3>, <4>];`)
	show("employees = [] too")
}
