// Quickstart: declare a PASCAL/R database, insert elements with the :+
// operator, and evaluate a selection with quantifiers.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pascalr"
)

func main() {
	db := pascalr.New()

	// Figure 1 of the paper, abbreviated: employees and their papers.
	err := db.Exec(`
TYPE statustype = (student, technician, assistant, professor);
     nametype   = PACKED ARRAY [1..10] OF char;
     yeartype   = 1900..1999;
     enumbertype = 1..99;

VAR employees : RELATION <enr> OF
      RECORD enr : enumbertype; ename : nametype; estatus : statustype END;
    papers : RELATION <ptitle, penr> OF
      RECORD penr : enumbertype; pyear : yeartype;
             ptitle : PACKED ARRAY [1..40] OF char END;

employees :+ [<1, 'ada', professor>, <2, 'bob', student>,
              <3, 'cyd', professor>, <4, 'dan', professor>];
papers    :+ [<1, 1977, 'on joins'>, <3, 1980, 'on division'>];
`)
	if err != nil {
		log.Fatal(err)
	}

	// Professors who published no paper in 1977: a universally
	// quantified selection (ALL over an empty match set is TRUE, so dan,
	// who has no papers at all, qualifies too).
	res, err := db.Query(`
[<e.ename> OF EACH e IN employees:
   e.estatus = professor AND
   ALL p IN papers (p.pyear <> 1977 OR p.penr <> e.enr)]`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("professors with no 1977 paper:")
	fmt.Print(res)

	// The same query by naive tuple substitution gives the same answer.
	check, err := db.Query(`
[<e.ename> OF EACH e IN employees:
   e.estatus = professor AND
   ALL p IN papers (p.pyear <> 1977 OR p.penr <> e.enr)]`,
		pascalr.WithBaseline())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline agrees: %v\n", res.Len() == check.Len())

	// Results can be stored back into relation variables.
	if err := db.Exec(`clean := [<e.ename> OF EACH e IN employees:
	    ALL p IN papers (p.penr <> e.enr)];`); err != nil {
		log.Fatal(err)
	}
	n, _ := db.RelationLen("clean")
	fmt.Printf("employees with no papers at all: %d\n", n)
}
