// University: the paper's full sample query (Example 2.1) on the
// Figure 1 database, evaluated under every optimization level with cost
// counters — a miniature of the E11 experiment through the public API.
//
// Run with: go run ./examples/university
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"
	"time"

	"pascalr"
)

const schemaDDL = `
TYPE statustype = (student, technician, assistant, professor);
     nametype   = PACKED ARRAY [1..10] OF char;
     titletype  = PACKED ARRAY [1..40] OF char;
     roomtype   = PACKED ARRAY [1..5] OF char;
     yeartype   = 1900..1999;
     timetype   = 8000900..18002000;
     daytype    = (monday, tuesday, wednesday, thursday, friday);
     leveltype  = (freshman, sophomore, junior, senior);
     enumbertype = 1..99;
     cnumbertype = 1..99;

VAR employees : RELATION <enr> OF
      RECORD enr : enumbertype; ename : nametype; estatus : statustype END;
    papers : RELATION <ptitle, penr> OF
      RECORD penr : enumbertype; pyear : yeartype; ptitle : titletype END;
    courses : RELATION <cnr> OF
      RECORD cnr : cnumbertype; clevel : leveltype; ctitle : titletype END;
    timetable : RELATION <tenr, tcnr, tday> OF
      RECORD tenr : enumbertype; tcnr : cnumbertype; tday : daytype;
             ttime : timetype; troom : roomtype END;
`

// example21 is the paper's sample query: professors who did not publish
// in 1977 or who currently offer a course at sophomore level or below.
const example21 = `
[<e.ename> OF EACH e IN employees:
  (e.estatus = professor)
  AND
  (ALL p IN papers ((p.pyear <> 1977) OR (e.enr <> p.penr))
   OR
   SOME c IN courses ((c.clevel <= sophomore)
     AND SOME t IN timetable ((c.cnr = t.tcnr) AND (e.enr = t.tenr))))]
`

func main() {
	db := pascalr.New()
	if err := db.Exec(schemaDDL); err != nil {
		log.Fatal(err)
	}
	// Scale 25 keeps the unoptimized S0 run tolerable: its combination
	// phase materializes millions of reference tuples — the blow-up the
	// paper's strategies exist to avoid.
	populate(db, 25)

	fmt.Println("Example 2.1 under the strategy ladder:")
	fmt.Printf("%-14s %-8s %-12s %-12s %-12s %s\n",
		"strategies", "rows", "scans", "tuples read", "ref tuples", "time")
	ladder := []pascalr.Strategy{
		pascalr.NoStrategies,
		pascalr.S1,
		pascalr.S1 | pascalr.S2,
		pascalr.S1 | pascalr.S2 | pascalr.S3,
		pascalr.AllStrategies,
	}
	for _, strat := range ladder {
		db.ResetStats()
		start := time.Now()
		res, err := db.Query(example21, pascalr.WithStrategies(strat))
		if err != nil {
			log.Fatal(err)
		}
		el := time.Since(start)
		st := db.Stats()
		fmt.Printf("%-14s %-8d %-12d %-12d %-12d %s\n",
			strat, res.Len(), st.TotalScans, st.TuplesRead, st.RefTuples, el.Round(time.Microsecond))
	}

	res, _ := db.Query(example21)
	fmt.Println("\nqualifying professors:")
	fmt.Print(res)
}

// populate fills the database with synthetic data through :+ statements.
func populate(db *pascalr.Database, n int) {
	rng := rand.New(rand.NewSource(7))
	status := []string{"student", "technician", "assistant", "professor"}
	level := []string{"freshman", "sophomore", "junior", "senior"}
	day := []string{"monday", "tuesday", "wednesday", "thursday", "friday"}
	var b strings.Builder
	for i := 1; i <= n; i++ {
		fmt.Fprintf(&b, "employees :+ [<%d, 'emp%05d', %s>];\n", i, i, status[rng.Intn(4)])
	}
	for i := 1; i <= 2*n; i++ {
		yr := 1960 + rng.Intn(40)
		if rng.Intn(3) == 0 {
			yr = 1977
		}
		fmt.Fprintf(&b, "papers :+ [<%d, %d, 'paper%05d'>];\n", 1+rng.Intn(n), yr, i)
	}
	courses := n/2 + 1
	for i := 1; i <= courses; i++ {
		fmt.Fprintf(&b, "courses :+ [<%d, %s, 'course%05d'>];\n", i, level[rng.Intn(4)], i)
	}
	seen := map[[3]int]bool{}
	for len(seen) < 2*n {
		k := [3]int{1 + rng.Intn(n), 1 + rng.Intn(courses), rng.Intn(5)}
		if seen[k] {
			continue
		}
		seen[k] = true
		fmt.Fprintf(&b, "timetable :+ [<%d, %d, %s, %d, 'R%03d'>];\n",
			k[0], k[1], day[k[2]], 9000900, rng.Intn(1000))
	}
	if err := db.Exec(b.String()); err != nil {
		log.Fatal(err)
	}
}
