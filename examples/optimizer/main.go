// Optimizer: EXPLAIN the paper's sample query under each strategy
// level, showing the transformations of section 4 — the standard form
// (Example 2.2), extended range expressions (Example 4.5), and the
// collection-phase quantifier cascade (Example 4.7) — and the physical
// scan plans they produce.
//
// Run with: go run ./examples/optimizer
package main

import (
	"fmt"
	"log"

	"pascalr"
)

const query = `
[<e.ename> OF EACH e IN employees:
  (e.estatus = professor)
  AND
  (ALL p IN papers ((p.pyear <> 1977) OR (e.enr <> p.penr))
   OR
   SOME c IN courses ((c.clevel <= sophomore)
     AND SOME t IN timetable ((c.cnr = t.tcnr) AND (e.enr = t.tenr))))]
`

func main() {
	db, err := pascalr.Open(`
TYPE statustype = (student, technician, assistant, professor);
     nametype   = PACKED ARRAY [1..10] OF char;
     titletype  = PACKED ARRAY [1..40] OF char;
     yeartype   = 1900..1999;
     daytype    = (monday, tuesday, wednesday, thursday, friday);
     leveltype  = (freshman, sophomore, junior, senior);
     enumbertype = 1..99;
     cnumbertype = 1..99;

VAR employees : RELATION <enr> OF
      RECORD enr : enumbertype; ename : nametype; estatus : statustype END;
    papers : RELATION <ptitle, penr> OF
      RECORD penr : enumbertype; pyear : yeartype; ptitle : titletype END;
    courses : RELATION <cnr> OF
      RECORD cnr : cnumbertype; clevel : leveltype; ctitle : titletype END;
    timetable : RELATION <tenr, tcnr, tday> OF
      RECORD tenr : enumbertype; tcnr : cnumbertype; tday : daytype END;

employees :+ [<1, 'ada', professor>];
papers    :+ [<1, 1977, 't1'>];
courses   :+ [<10, sophomore, 'c10'>];
timetable :+ [<1, 10, monday>];
`)
	if err != nil {
		log.Fatal(err)
	}

	for _, strat := range []pascalr.Strategy{
		pascalr.NoStrategies,
		pascalr.S1,
		pascalr.S1 | pascalr.S2 | pascalr.S3,
		pascalr.AllStrategies,
	} {
		fmt.Printf("================ %s ================\n", strat)
		out, err := db.Explain(query, pascalr.WithStrategies(strat))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(out)
		fmt.Println()
	}
}
