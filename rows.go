package pascalr

import (
	"errors"
	"fmt"

	"pascalr/internal/engine"
	"pascalr/internal/relation"
	"pascalr/internal/schema"
	"pascalr/internal/value"
)

// Rows is a streaming query result in the database/sql idiom:
//
//	rows, err := db.QueryRows(ctx, src)
//	if err != nil { ... }
//	defer rows.Close()
//	for rows.Next() {
//	    var name string
//	    if err := rows.Scan(&name); err != nil { ... }
//	}
//	if err := rows.Err(); err != nil { ... }
//
// The construction phase runs lazily: each Next dereferences and
// projects one result tuple. Cancelling the context passed to QueryRows
// or Stmt.Rows stops iteration; Err then returns ctx.Err().
//
// A cursor holds references into the base relations, so mutating the
// database (Exec with :+/:-/:=) between opening the cursor and
// exhausting it invalidates it: a Next that dereferences a deleted
// element stops, and Err reports the retryable ErrStaleRead. The
// one-shot QueryRows path absorbs one such invalidation transparently —
// it re-executes the query and resumes the stream without repeating
// tuples already yielded; a second invalidation (or any on a prepared
// Stmt.Rows, which performs no retry) surfaces ErrStaleRead to the
// caller. Materialize with Query when mutations interleave heavily
// with consumption.
type Rows struct {
	cur  *engine.Cursor
	cols []string
	typs []*schema.Type

	// reopen re-executes the plan for the bounded mid-stream retry; nil
	// on prepared statements (their callers own the retry decision).
	reopen  func() (*engine.Cursor, error)
	seen    map[string]struct{} // keys already yielded, for resume dedup
	retried bool
	err     error // sticky: a reopen that itself failed
}

func newRows(cur *engine.Cursor) *Rows {
	r := &Rows{cur: cur}
	for _, c := range cur.Schema().Cols {
		r.cols = append(r.cols, c.Name)
		r.typs = append(r.typs, c.Type)
	}
	return r
}

// enableRetry arms the one-shot stale-read retry: yielded tuples are
// tracked so a re-executed stream resumes without duplicates.
func (r *Rows) enableRetry(reopen func() (*engine.Cursor, error)) {
	r.reopen = reopen
	r.seen = make(map[string]struct{})
}

// Columns returns the component names of the result.
func (r *Rows) Columns() []string { return append([]string(nil), r.cols...) }

// Next advances to the next result tuple, returning false when the
// result is exhausted, the context is cancelled, or an error occurs.
// On a one-shot QueryRows cursor, a mid-stream stale read triggers one
// transparent re-execution: the stream resumes over the new contents,
// skipping tuples already yielded.
func (r *Rows) Next() bool {
	for {
		if r.err != nil {
			return false
		}
		if r.cur.Next() {
			if r.seen != nil {
				k := value.EncodeKey(r.cur.Row())
				if _, dup := r.seen[k]; dup {
					continue // already yielded before the retry
				}
				r.seen[k] = struct{}{}
			}
			return true
		}
		err := r.cur.Err()
		if err == nil || r.reopen == nil || r.retried || !errors.Is(err, relation.ErrStale) {
			return false
		}
		// Bounded single retry: re-execute the plan and resume. A writer
		// winning the race again surfaces ErrStaleRead like the prepared
		// path does.
		r.retried = true
		mStaleRetries.Inc()
		cur, rerr := r.reopen()
		if rerr != nil {
			r.err = rerr
			return false
		}
		r.cur.Close()
		r.cur = cur
	}
}

// Err returns the error that ended iteration, if any. Stale references
// are reported as the retryable ErrStaleRead.
func (r *Rows) Err() error {
	if r.err != nil {
		return classifyErr(r.err)
	}
	return classifyErr(r.cur.Err())
}

// Close releases the buffered combination result; further Next calls
// return false. It is idempotent and safe to defer.
func (r *Rows) Close() error { return r.cur.Close() }

// Scan copies the current tuple into the destinations: *int64 or *int
// for integer components, *string for character arrays and enumeration
// labels, *bool for booleans, and *any for the native conversion.
func (r *Rows) Scan(dest ...any) error {
	row := r.cur.Row()
	if row == nil {
		return fmt.Errorf("pascalr: Scan called without a successful Next")
	}
	if len(dest) != len(row) {
		return fmt.Errorf("pascalr: Scan expects %d destinations, got %d", len(row), len(dest))
	}
	for i, v := range row {
		if err := scanValue(v, r.typs[i], dest[i]); err != nil {
			return fmt.Errorf("pascalr: component %s: %w", r.cols[i], err)
		}
	}
	return nil
}

// Values converts the current tuple to native Go values, with the same
// mapping Result.Rows uses. It returns nil before the first Next.
func (r *Rows) Values() []any {
	row := r.cur.Row()
	if row == nil {
		return nil
	}
	out := make([]any, len(row))
	for i, v := range row {
		out[i] = convertValue(v, r.typs[i])
	}
	return out
}

func scanValue(v value.Value, t *schema.Type, dest any) error {
	switch d := dest.(type) {
	case *any:
		*d = convertValue(v, t)
	case *int64:
		if v.Kind() != value.KindInt {
			return fmt.Errorf("cannot scan %s into *int64", v)
		}
		*d = v.AsInt()
	case *int:
		if v.Kind() != value.KindInt {
			return fmt.Errorf("cannot scan %s into *int", v)
		}
		*d = int(v.AsInt())
	case *string:
		switch v.Kind() {
		case value.KindString:
			*d = v.AsString()
		case value.KindEnum:
			*d = t.Format(v)
		default:
			return fmt.Errorf("cannot scan %s into *string", v)
		}
	case *bool:
		if v.Kind() != value.KindBool {
			return fmt.Errorf("cannot scan %s into *bool", v)
		}
		*d = v.AsBool()
	default:
		return fmt.Errorf("unsupported Scan destination type %T", dest)
	}
	return nil
}
