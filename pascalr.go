// Package pascalr is a Go reproduction of the PASCAL/R relational
// database management system's query processor, as described in
// Jarke & Schmidt, "Query Processing Strategies in the PASCAL/R
// Relational Database Management System", Proc. ACM SIGMOD 1982.
//
// A Database holds PASCAL/R relation variables declared with the
// paper's TYPE/VAR syntax and evaluates selections — first-order
// predicate calculus queries with free (EACH), existential (SOME), and
// universal (ALL) range-coupled variables — using the paper's
// phase-structured algorithm (collection, combination, construction)
// under any combination of its four optimization strategies:
//
//	S1  parallel evaluation of subexpressions (one scan per relation)
//	S2  one-step evaluation of nested subexpressions
//	S3  extended range expressions
//	S4  quantifier evaluation in the collection phase (value lists)
//
// Quickstart:
//
//	db := pascalr.New()
//	err := db.Exec(`
//	    TYPE statustype = (student, technician, assistant, professor);
//	    VAR employees : RELATION <enr> OF
//	        RECORD enr : 1..99; ename : PACKED ARRAY [1..10] OF char;
//	               estatus : statustype END;
//	    employees :+ [<1, 'Ada', professor>, <2, 'Bob', student>];
//	`)
//	res, err := db.Query(`[<e.ename> OF EACH e IN employees:
//	                        e.estatus = professor]`)
//	fmt.Println(res)
//
// Queries embedded in a host program are typically executed many times,
// so the API splits compile time from run time: Prepare parses,
// type-checks, optimizes, and plans once, and the returned Stmt
// re-executes the compiled plan. Results can be streamed through a
// cursor instead of materialized, with context cancellation observed
// throughout evaluation:
//
//	stmt, err := db.Prepare(`[<e.ename> OF EACH e IN employees:
//	                           e.estatus = professor]`)
//	rows, err := stmt.Rows(ctx)
//	defer rows.Close()
//	for rows.Next() {
//	    var name string
//	    if err := rows.Scan(&name); err != nil { ... }
//	    fmt.Println(name)
//	}
//	err = rows.Err() // ctx.Err() after a cancellation
//
// One-shot Query calls share the machinery through an LRU plan cache
// keyed by source and compile options, and every cached plan is
// revalidated against the database's content version, so mutations are
// always observed.
//
// A Database is safe for concurrent use: queries and prepared
// statements may run from many goroutines while Exec mutates contents —
// each execution reads a version-validated snapshot under the storage
// layer's reader lock. The collection phase's independent relation
// scans can additionally run in parallel within one query:
//
//	res, err := db.Query(src, pascalr.WithParallelism(4))
//
// (CLI: pascalr -parallel 4). Parallel execution returns exactly the
// serial result and cost counters, just faster on multi-core hardware.
package pascalr

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"pascalr/internal/baseline"
	"pascalr/internal/calculus"
	"pascalr/internal/engine"
	"pascalr/internal/obs"
	"pascalr/internal/parser"
	"pascalr/internal/relation"
	"pascalr/internal/schema"
	"pascalr/internal/stats"
	"pascalr/internal/storage"
	"pascalr/internal/value"
)

// Strategy selects the paper's optimization strategies as a bit set.
type Strategy uint8

// The optimization strategies of section 4 of the paper.
const (
	S1 Strategy = Strategy(engine.S1) // one scan per relation
	S2 Strategy = Strategy(engine.S2) // monadic terms restrict indirect joins
	S3 Strategy = Strategy(engine.S3) // extended range expressions
	S4 Strategy = Strategy(engine.S4) // collection-phase quantifier evaluation

	// SCNF is the conjunctive-normal-form range extension the paper
	// proposes as future work in section 4.3: ranges narrow by the OR of
	// the per-conjunction monadic restrictions.
	SCNF Strategy = Strategy(engine.SCNF)

	// NoStrategies is the unoptimized standard algorithm (section 3.3).
	NoStrategies Strategy = 0
	// AllStrategies enables every optimization.
	AllStrategies = S1 | S2 | S3 | S4
)

// String renders the strategy set, e.g. "S1+S3" or "S0".
func (s Strategy) String() string { return engine.Strategy(s).String() }

// ParseStrategy parses "s0", "all", or a combination like "s1+s3"
// (case-insensitive, also accepts comma separators).
func ParseStrategy(s string) (Strategy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "s0", "none", "0", "":
		return NoStrategies, nil
	case "all":
		return AllStrategies, nil
	}
	var out Strategy
	for _, part := range strings.FieldsFunc(strings.ToLower(s), func(r rune) bool {
		return r == '+' || r == ','
	}) {
		switch strings.TrimSpace(part) {
		case "s1":
			out |= S1
		case "s2":
			out |= S2
		case "s3":
			out |= S3
		case "s4":
			out |= S4
		case "scnf", "cnf":
			out |= SCNF
		default:
			return 0, fmt.Errorf("pascalr: unknown strategy %q", part)
		}
	}
	return out, nil
}

// Database is a PASCAL/R database instance: a catalog of types and
// relation variables plus their contents.
//
// A Database is safe for concurrent use: Exec (DDL and content
// mutations) serializes against query compilation through a
// database-level lock and against running executions through the
// storage layer's content lock, while Query, QueryRows, and prepared
// statements may run from many goroutines at once — each execution
// reads a version-validated snapshot and counts into a private sink
// merged on completion. The plan cache and the cost-statistics cache
// are individually synchronized.
type Database struct {
	db  *relation.DB
	eng *engine.Engine

	// mu guards the catalog-affecting surface: Exec (declarations
	// mutate the catalog the compile path reads) takes it exclusively;
	// parse/check/compile paths take it shared. Execution of compiled
	// plans runs outside it — the storage content lock covers that.
	mu         sync.RWMutex
	strategies Strategy
	parallel   int

	// plans is the LRU of prepared statements behind the one-shot Query
	// path.
	plans *planCache
}

// New returns an empty database with all optimization strategies
// enabled by default.
func New() *Database {
	db := relation.NewDB()
	return &Database{
		db:         db,
		eng:        engine.New(db, &stats.Counters{}),
		strategies: AllStrategies,
		plans:      newPlanCache(planCacheSize),
	}
}

// Open creates a database and executes the given PASCAL/R script.
func Open(script string) (*Database, error) {
	d := New()
	if err := d.Exec(script); err != nil {
		return nil, err
	}
	return d, nil
}

// DirOption configures a durable database opened with OpenDir.
type DirOption func(*storage.Options)

// WithFsyncNever skips the fsync after each write-ahead-log append.
// Mutations remain atomic and ordered, but a machine crash (not a mere
// process crash) may lose the most recent ones. Useful for bulk loads
// and tests.
func WithFsyncNever() DirOption {
	return func(o *storage.Options) { o.Fsync = storage.SyncNever }
}

// WithMemtableEntries sets how many occupied slots a relation buffers
// in memory before flushing them to an immutable SSTable.
func WithMemtableEntries(n int) DirOption {
	return func(o *storage.Options) { o.MemtableEntries = n }
}

// WithCheckpointWALBytes sets the write-ahead-log size that triggers a
// background checkpoint (bounding recovery replay). Negative disables
// automatic checkpoints; Checkpoint and Close still take them.
func WithCheckpointWALBytes(n int64) DirOption {
	return func(o *storage.Options) { o.CheckpointWALBytes = n }
}

// WithBlockCacheBytes sets the byte budget of the shared SSTable block
// cache fronting disk point reads (default 8 MiB). Negative disables
// the cache; reads then always hit the files.
func WithBlockCacheBytes(n int64) DirOption {
	return func(o *storage.Options) { o.BlockCacheBytes = n }
}

// WithReplayWorkers sets the worker count for parallel write-ahead-log
// replay on open (default GOMAXPROCS). Replay partitions records by
// relation, so the useful parallelism is bounded by the number of
// mutated relations; negative forces serial replay.
func WithReplayWorkers(n int) DirOption {
	return func(o *storage.Options) { o.ReplayWorkers = n }
}

// OpenDir opens (creating if needed) a durable database rooted at the
// given directory and recovers it to its last durable state: the
// checkpoint manifest restores schemas, disk-resident relation
// contents, permanent indexes, and cost statistics, and the
// write-ahead log replays every mutation recorded since. All
// optimization strategies are enabled by default. Close flushes and
// checkpoints; killing the process instead merely loses mutations
// after the last durable log record, never a prefix or a partial one.
func OpenDir(path string, opts ...DirOption) (*Database, error) {
	var o storage.Options
	for _, f := range opts {
		f(&o)
	}
	db, err := relation.OpenDB(path, o)
	if err != nil {
		return nil, err
	}
	return &Database{
		db:         db,
		eng:        engine.New(db, &stats.Counters{}),
		strategies: AllStrategies,
		plans:      newPlanCache(planCacheSize),
	}, nil
}

// Checkpoint persists the complete current state of a durable database
// and truncates its write-ahead log, bounding the replay work the next
// OpenDir performs. On an in-memory database it is a no-op.
func (d *Database) Checkpoint() error { return d.db.Checkpoint() }

// SetStrategies changes the default strategy set used by Exec and Query.
func (d *Database) SetStrategies(s Strategy) {
	d.mu.Lock()
	d.strategies = s
	d.mu.Unlock()
}

// SetParallelism changes the default collection-phase worker budget
// used by Exec and Query; per-call WithParallelism overrides it. Values
// below 2 (the initial default) evaluate serially.
func (d *Database) SetParallelism(n int) {
	d.mu.Lock()
	d.parallel = n
	d.mu.Unlock()
}

// config carries per-call options.
type config struct {
	strategies   Strategy
	useBaseline  bool
	maxRefTuples int64
	costBased    bool
	noCache      bool
	parallelism  int
}

// newConfig resolves options against the database defaults.
func (d *Database) newConfig(opts []Option) config {
	d.mu.RLock()
	c := config{strategies: d.strategies, parallelism: d.parallel}
	d.mu.RUnlock()
	for _, o := range opts {
		o(&c)
	}
	return c
}

// cacheKey identifies a compiled plan: the source text plus the options
// that influence compilation. Execution-time options (the
// reference-tuple budget) deliberately stay out.
func cacheKey(src string, c config) string {
	return fmt.Sprintf("%s|%s|cost=%v", src, c.strategies, c.costBased)
}

// Option customizes a single Query or Explain call.
type Option func(*config)

// WithStrategies overrides the database's default strategy set.
func WithStrategies(s Strategy) Option {
	return func(c *config) { c.strategies = s }
}

// WithBaseline evaluates by direct tuple substitution (nested loops over
// the abstract syntax) instead of the phase-structured engine. Useful
// for comparisons; the experiments use it as the paper's "evaluate
// queries directly as given by the user" reference point.
func WithBaseline() Option {
	return func(c *config) { c.useBaseline = true }
}

// WithMaxRefTuples bounds the reference tuples the combination phase may
// materialize; exceeding it aborts the query with an error.
func WithMaxRefTuples(n int64) Option {
	return func(c *config) { c.maxRefTuples = n }
}

// WithCostBased plans the evaluation from cardinality estimates: scan
// ordering, probe/index side selection, combination-phase join ordering,
// and the optimizer's extraction decisions all consult per-relation
// statistics collected just before planning, instead of the paper's
// static priorities.
func WithCostBased() Option {
	return func(c *config) { c.costBased = true }
}

// WithoutPlanCache makes a one-shot Query or QueryRows call bypass the
// LRU plan cache: the query is compiled from scratch and the plan is
// discarded afterwards. Useful for queries known to run once, and for
// measuring the cache's effect.
func WithoutPlanCache() Option {
	return func(c *config) { c.noCache = true }
}

// WithParallelism runs the collection phase's independent relation
// scans on up to n goroutines, splitting large scans into
// cost-balanced shards. n = 1 is the paper's serial schedule with
// bit-identical results and counters; higher n produces the same
// results and merged counters. It is an execution-time option: prepared
// statements accept it per call, and it does not key the plan cache.
func WithParallelism(n int) Option {
	return func(c *config) { c.parallelism = n }
}

// Exec parses and executes a PASCAL/R script: TYPE and VAR sections,
// assignments (:=), inserts (:+), and deletes (:-). Statements that
// mutate relation contents bump the database's content version, which
// transparently invalidates cached statistics and compiled plans;
// scripts containing only TYPE/VAR declarations leave both intact.
func (d *Database) Exec(src string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	prog, err := parser.Parse(src, d.db.Catalog())
	if err != nil {
		return err
	}
	for _, item := range prog.Items {
		switch it := item.(type) {
		case parser.TypeDecl:
			if err := d.db.DefineType(it.Type); err != nil {
				return err
			}
		case parser.RelDecl:
			if _, err := d.db.Create(it.Schema); err != nil {
				return err
			}
		case parser.Stmt:
			if err := d.execStmt(it); err != nil {
				return fmt.Errorf("line %d: %w", it.Line, err)
			}
		}
	}
	return nil
}

// MustExec is Exec that panics on error; for tests and examples.
func (d *Database) MustExec(src string) {
	if err := d.Exec(src); err != nil {
		panic(err)
	}
}

func (d *Database) execStmt(st parser.Stmt) error {
	switch st.Op {
	case parser.OpAssign:
		res, err := d.evalSelection(context.Background(), st.Sel, config{strategies: d.strategies})
		if err != nil {
			return err
		}
		return d.assign(st.Target, res)
	case parser.OpInsert:
		rel, ok := d.db.Relation(st.Target)
		if !ok {
			return fmt.Errorf("pascalr: unknown relation %s", st.Target)
		}
		if st.Sel != nil {
			res, err := d.evalSelection(context.Background(), st.Sel, config{strategies: d.strategies})
			if err != nil {
				return err
			}
			for _, tup := range res.Tuples() {
				if _, err := rel.Insert(tup); err != nil {
					return err
				}
			}
			return nil
		}
		for _, lit := range st.Tuples {
			tup, err := parser.ResolveTuple(lit, rel.Schema())
			if err != nil {
				return err
			}
			if _, err := rel.Insert(tup); err != nil {
				return err
			}
		}
		return nil
	case parser.OpDelete:
		rel, ok := d.db.Relation(st.Target)
		if !ok {
			return fmt.Errorf("pascalr: unknown relation %s", st.Target)
		}
		for _, lit := range st.Tuples {
			key, err := parser.KeyTuple(lit, rel.Schema())
			if err != nil {
				return err
			}
			rel.Delete(key)
		}
		return nil
	default:
		return fmt.Errorf("pascalr: unknown statement operator")
	}
}

// assign implements `target := selection-result`: the target relation is
// created on first assignment and replaced on subsequent ones.
func (d *Database) assign(target string, res *relation.Relation) error {
	rel, ok := d.db.Relation(target)
	if !ok {
		cols := append([]schema.Column(nil), res.Schema().Cols...)
		sch, err := schema.NewRelSchema(target, cols, res.Schema().Key)
		if err != nil {
			return err
		}
		rel, err = d.db.Create(sch)
		if err != nil {
			return err
		}
	} else {
		if len(rel.Schema().Cols) != len(res.Schema().Cols) {
			return fmt.Errorf("pascalr: cannot assign %d-component result to relation %s with %d components",
				len(res.Schema().Cols), target, len(rel.Schema().Cols))
		}
		for i, c := range rel.Schema().Cols {
			if !c.Type.Comparable(res.Schema().Cols[i].Type) {
				return fmt.Errorf("pascalr: component %s of %s has incompatible type", c.Name, target)
			}
		}
	}
	return rel.Assign(res.Tuples())
}

// evalSelection checks and evaluates a parsed selection. Callers hold
// the database lock (shared suffices for the engine path; Exec holds it
// exclusively) so checking reads a stable catalog.
func (d *Database) evalSelection(ctx context.Context, sel *calculus.Selection, c config) (*relation.Relation, error) {
	checked, info, err := calculus.Check(sel, d.db.Catalog())
	if err != nil {
		return nil, err
	}
	if c.useBaseline {
		// The oracle counts into a private sink merged on completion,
		// like engine executions, so concurrent baseline calls do not
		// race on the shared counters.
		local := &stats.Counters{}
		res, err := baseline.EvalStats(checked, info, d.db, local)
		d.eng.Stats(func(st *stats.Counters) { st.Merge(local) })
		return res, err
	}
	return d.eng.Eval(ctx, checked, info, engine.Options{
		Strategies:   engine.Strategy(c.strategies),
		MaxRefTuples: c.maxRefTuples,
		CostBased:    c.costBased,
		Parallelism:  c.parallelism,
	})
}

// preparedStmt returns the prepared statement the one-shot path should
// execute: a cache hit, or a freshly compiled (and, unless noCache,
// cached) statement. On a concurrent miss both goroutines compile and
// the later put wins — wasted work, never a wrong plan.
func (d *Database) preparedStmt(ctx context.Context, src string, c config) (*Stmt, error) {
	if c.noCache {
		mPlanCacheMisses.Inc()
		obs.SpanFrom(ctx).SetAttr("plan_cache", "bypass")
		return d.prepareShared(ctx, src, c)
	}
	key := cacheKey(src, c)
	if s, ok := d.plans.get(key); ok {
		mPlanCacheHits.Inc()
		obs.SpanFrom(ctx).SetAttr("plan_cache", "hit")
		return s, nil
	}
	mPlanCacheMisses.Inc()
	obs.SpanFrom(ctx).SetAttr("plan_cache", "miss")
	s, err := d.prepareShared(ctx, src, c)
	if err != nil {
		return nil, err
	}
	d.plans.put(key, s)
	return s, nil
}

// prepareShared compiles under the shared database lock, serializing
// against Exec's catalog mutations.
func (d *Database) prepareShared(ctx context.Context, src string, c config) (*Stmt, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.prepare(ctx, src, c)
}

// Query evaluates a selection expression and returns its result. Behind
// the scenes the compiled plan is kept in an LRU cache keyed by source
// and compile options, so repeated ad-hoc queries pay parsing, checking,
// and planning only once.
func (d *Database) Query(src string, opts ...Option) (*Result, error) {
	return d.QueryContext(context.Background(), src, opts...)
}

// QueryContext is Query with a context: cancellation and deadlines are
// observed between scanned tuples and combination-phase operations, and
// surface as ctx.Err(). The baseline evaluator (WithBaseline) does not
// observe the context.
func (d *Database) QueryContext(ctx context.Context, src string, opts ...Option) (*Result, error) {
	c := d.newConfig(opts)
	if c.useBaseline {
		sel, err := parser.ParseSelection(src)
		if err != nil {
			return nil, err
		}
		d.mu.RLock()
		res, err := d.evalSelection(ctx, sel, c)
		d.mu.RUnlock()
		if err != nil {
			return nil, err
		}
		return newResult(res), nil
	}
	s, err := d.preparedStmt(ctx, src, c)
	if err != nil {
		return nil, err
	}
	rel, err := s.plan.EvalWith(ctx, s.override(c))
	if err != nil {
		return nil, classifyErr(err)
	}
	return newResult(rel), nil
}

// QueryRows evaluates a selection expression and returns a streaming
// cursor over its result; see Rows. It shares the plan cache with
// Query. The baseline evaluator cannot stream, so WithBaseline is
// rejected here.
//
// A concurrent writer invalidating the stream mid-iteration is
// absorbed once: the query re-executes and the cursor resumes over the
// new contents without repeating yielded tuples. A writer winning the
// race a second time surfaces ErrStaleRead from Rows.Err.
func (d *Database) QueryRows(ctx context.Context, src string, opts ...Option) (*Rows, error) {
	c := d.newConfig(opts)
	if c.useBaseline {
		return nil, fmt.Errorf("pascalr: the baseline evaluator does not support cursors")
	}
	s, err := d.preparedStmt(ctx, src, c)
	if err != nil {
		return nil, err
	}
	cur, err := s.plan.RowsWith(ctx, s.override(c))
	if err != nil {
		return nil, classifyErr(err)
	}
	rows := newRows(cur)
	rows.enableRetry(func() (*engine.Cursor, error) {
		return s.plan.RowsWith(ctx, s.override(c))
	})
	return rows, nil
}

// MustQuery is Query that panics on error; for tests and examples.
func (d *Database) MustQuery(src string, opts ...Option) *Result {
	r, err := d.Query(src, opts...)
	if err != nil {
		panic(err)
	}
	return r
}

// Explain renders the logical transformations and the physical plan the
// engine would use for a selection, without running its combination
// phase.
func (d *Database) Explain(src string, opts ...Option) (string, error) {
	c := d.newConfig(opts)
	sel, err := parser.ParseSelection(src)
	if err != nil {
		return "", err
	}
	d.mu.RLock()
	checked, _, err := calculus.Check(sel, d.db.Catalog())
	d.mu.RUnlock()
	if err != nil {
		return "", err
	}
	eng := engine.New(d.db, nil)
	return eng.Explain(checked, engine.Options{
		Strategies:  engine.Strategy(c.strategies),
		CostBased:   c.costBased,
		Parallelism: c.parallelism,
	})
}

// ExplainAnalyze executes a selection once and reports estimated
// versus actual cardinalities per scan and per combination-phase join —
// the observable record of estimate quality. The query runs through the
// same plan cache as Query; counters accumulate as for any execution.
func (d *Database) ExplainAnalyze(ctx context.Context, src string, opts ...Option) (string, error) {
	c := d.newConfig(opts)
	if c.useBaseline {
		return "", fmt.Errorf("pascalr: the baseline evaluator has no plan to explain")
	}
	s, err := d.preparedStmt(ctx, src, c)
	if err != nil {
		return "", err
	}
	return s.plan.ExplainWith(ctx, s.override(c))
}

// Close quiesces background maintenance for shutdown: it waits for
// in-flight drift-triggered histogram rebuilds, checkpoints, and
// compactions to finish and rejects any scheduled afterwards, so no
// goroutine outlives Close. A durable database additionally takes a
// final checkpoint and closes its log and table files, and is not
// usable afterwards; an in-memory database remains usable (its
// degraded statistics simply stop re-bucketing). Close is idempotent.
// Server shutdown drains sessions first, then calls Close.
func (d *Database) Close() error { return d.db.Close() }

// CreateIndex declares a permanent index on one component of a
// relation. The engine's collection phase then probes it instead of
// building a transient index, and a scan that existed only to build
// that index disappears — the paper's "the first step can be omitted,
// if permanent indexes exist" (section 3.2).
func (d *Database) CreateIndex(rel, col string) error {
	r, ok := d.db.Relation(rel)
	if !ok {
		return fmt.Errorf("pascalr: unknown relation %s", rel)
	}
	_, err := r.CreateIndex(col)
	return err
}

// Relations returns the declared relation names in declaration order.
func (d *Database) Relations() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.db.Catalog().Relations()
}

// RelationLen returns the cardinality of a relation.
func (d *Database) RelationLen(name string) (int, error) {
	rel, ok := d.db.Relation(name)
	if !ok {
		return 0, fmt.Errorf("pascalr: unknown relation %s", name)
	}
	return rel.Len(), nil
}

// Dump returns the contents of a relation as a Result, in insertion
// order.
func (d *Database) Dump(name string) (*Result, error) {
	rel, ok := d.db.Relation(name)
	if !ok {
		return nil, fmt.Errorf("pascalr: unknown relation %s", name)
	}
	return newResult(rel), nil
}

// Stats reports the cost counters accumulated since the last ResetStats:
// base-relation scans, tuples read, index probes, comparisons, and
// reference tuples materialized.
type Stats struct {
	TotalScans     int
	ScansOf        map[string]int
	TuplesRead     int64
	IndexProbes    int64
	Comparisons    int64
	RefTuples      int64
	PeakRefTuples  int64
	HashJoins      int64
	CartesianJoins int64
	PlanOrder      []string // scan order of the most recent evaluation
}

// Stats returns a snapshot of the accumulated counters, taken under
// the counter lock so completing executions cannot tear it.
func (d *Database) Stats() Stats {
	var out Stats
	d.eng.Stats(func(st *stats.Counters) {
		scans := make(map[string]int, len(st.BaseScans))
		for k, v := range st.BaseScans {
			scans[k] = v
		}
		out = Stats{
			TotalScans:     st.TotalScans(),
			ScansOf:        scans,
			TuplesRead:     st.TuplesRead,
			IndexProbes:    st.IndexProbes,
			Comparisons:    st.Comparisons,
			RefTuples:      st.RefTuples,
			PeakRefTuples:  st.PeakRefTuples,
			HashJoins:      st.HashJoins,
			CartesianJoins: st.CartesianJoins,
			PlanOrder:      append([]string(nil), st.PlanOrder...),
		}
	})
	return out
}

// ResetStats clears the accumulated counters.
func (d *Database) ResetStats() {
	d.eng.Stats(func(st *stats.Counters) { st.Reset() })
}

// StatsFingerprint renders the accumulated counters as the engine's
// deterministic fingerprint string: two databases that executed the
// same work since their last ResetStats produce byte-identical
// fingerprints regardless of interleaving. The differential test
// harness compares it across in-process and network executions; it is
// also a cheap change detector for monitoring.
func (d *Database) StatsFingerprint() string {
	var fp string
	d.eng.Stats(func(st *stats.Counters) { fp = st.Fingerprint() })
	return fp
}

// TableStat is one relation's live-statistics headline, as exported by
// TableStats for monitoring surfaces (the server's /metrics endpoint).
type TableStat struct {
	Name    string       `json:"name"`
	Rows    int          `json:"rows"`
	Columns []ColumnStat `json:"columns"`
}

// ColumnStat summarizes one column's live statistics: the distinct
// count, the statistics representation currently maintained ("exact",
// "buckets", or "bounds"), and the observed value bounds.
type ColumnStat struct {
	Name     string `json:"name"`
	Distinct int    `json:"distinct"`
	Mode     string `json:"mode"`
	Lo       string `json:"lo,omitempty"`
	Hi       string `json:"hi,omitempty"`
}

// TableStats snapshots the live, incrementally maintained per-relation
// statistics (cardinalities, distinct counts, histogram modes) in
// declaration order. The snapshot is consistent per relation and
// requires no analyze pass.
func (d *Database) TableStats() []TableStat {
	rels := d.db.Relations()
	out := make([]TableStat, 0, len(rels))
	for _, r := range rels {
		sum := r.LiveStats().Summary()
		ts := TableStat{Name: sum.Name, Rows: sum.Rows, Columns: make([]ColumnStat, 0, len(sum.Columns))}
		for _, c := range sum.Columns {
			ts.Columns = append(ts.Columns, ColumnStat{Name: c.Name, Distinct: c.Distinct, Mode: c.Mode, Lo: c.Lo, Hi: c.Hi})
		}
		out = append(out, ts)
	}
	return out
}

// Result is a query result: a set of tuples with named components.
type Result struct {
	cols []string
	typs []*schema.Type
	rows [][]value.Value
}

func newResult(rel *relation.Relation) *Result {
	sch := rel.Schema()
	r := &Result{rows: rel.Tuples()}
	for _, c := range sch.Cols {
		r.cols = append(r.cols, c.Name)
		r.typs = append(r.typs, c.Type)
	}
	return r
}

// Columns returns the component names.
func (r *Result) Columns() []string { return append([]string(nil), r.cols...) }

// Len returns the number of tuples.
func (r *Result) Len() int { return len(r.rows) }

// Rows converts the tuples to native Go values: int64 for integers,
// string for character arrays and enumeration labels, bool for booleans.
func (r *Result) Rows() [][]any {
	out := make([][]any, len(r.rows))
	for i, row := range r.rows {
		conv := make([]any, len(row))
		for j, v := range row {
			conv[j] = convertValue(v, r.typs[j])
		}
		out[i] = conv
	}
	return out
}

// convertValue maps a PASCAL/R value to its native Go representation:
// int64 for integers, string for character arrays and enumeration
// labels, bool for booleans.
func convertValue(v value.Value, t *schema.Type) any {
	switch v.Kind() {
	case value.KindInt:
		return v.AsInt()
	case value.KindString:
		return v.AsString()
	case value.KindBool:
		return v.AsBool()
	case value.KindEnum:
		return t.Format(v)
	default:
		return v.String()
	}
}

// String renders the result as an aligned text table.
func (r *Result) String() string {
	rows := r.Rows()
	widths := make([]int, len(r.cols))
	for i, c := range r.cols {
		widths[i] = len(c)
	}
	cells := make([][]string, len(rows))
	for i, row := range rows {
		cells[i] = make([]string, len(row))
		for j, v := range row {
			s := fmt.Sprintf("%v", v)
			cells[i][j] = s
			if len(s) > widths[j] {
				widths[j] = len(s)
			}
		}
	}
	var b strings.Builder
	for j, c := range r.cols {
		fmt.Fprintf(&b, "%-*s  ", widths[j], c)
	}
	b.WriteString("\n")
	for j := range r.cols {
		b.WriteString(strings.Repeat("-", widths[j]) + "  ")
	}
	b.WriteString("\n")
	for _, row := range cells {
		for j, s := range row {
			fmt.Fprintf(&b, "%-*s  ", widths[j], s)
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "(%d tuples)\n", len(rows))
	return b.String()
}
