// Package client is the Go client for the pascald network server. It
// speaks the length-prefixed binary protocol of internal/protocol over
// a single TCP connection:
//
//	conn, err := client.Dial(addr)
//	if err != nil { ... }
//	defer conn.Close()
//	res, err := conn.Query("[each e in employees: e.status = active]", client.Options{})
//
// A Conn serializes its requests (the protocol is a strict
// request/response alternation), so share one Conn across goroutines
// only behind the embedded mutex it already holds, or open one Conn
// per worker — connections are cheap and the server admits up to its
// configured session limit.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"

	"pascalr/internal/protocol"
)

// Typed errors mapped back from server error codes, so callers can
// errors.Is instead of parsing messages.
var (
	// ErrStaleRead mirrors pascalr.ErrStaleRead: a concurrent writer
	// invalidated a streaming cursor; re-executing the statement is safe.
	ErrStaleRead = errors.New("client: stale read, retry the statement")
	// ErrCancelled reports a statement aborted by Cancel.
	ErrCancelled = errors.New("client: statement cancelled")
	// ErrKilled reports a session terminated by KILL.
	ErrKilled = errors.New("client: session killed")
	// ErrTooManySessions reports admission-control rejection.
	ErrTooManySessions = errors.New("client: server session limit reached")
	// ErrShuttingDown reports a server refusing new work while draining.
	ErrShuttingDown = errors.New("client: server shutting down")
)

// Error is a server-reported failure: a protocol error code plus the
// server's message. It unwraps to the matching typed error above.
type Error struct {
	Code    uint64
	Message string
}

func (e *Error) Error() string { return "pascald: " + e.Message }

// Unwrap maps the code to the package-level typed errors.
func (e *Error) Unwrap() error {
	switch e.Code {
	case protocol.CodeStale:
		return ErrStaleRead
	case protocol.CodeCancelled:
		return ErrCancelled
	case protocol.CodeKilled:
		return ErrKilled
	case protocol.CodeTooManySessions:
		return ErrTooManySessions
	case protocol.CodeShuttingDown:
		return ErrShuttingDown
	default:
		return nil
	}
}

// Options carries per-call execution options; the zero value defers
// everything to the session defaults.
type Options struct {
	// Strategies, when HasStrategies, fixes the optimization strategy
	// bitset (the pascalr.Strategy flags).
	HasStrategies bool
	Strategies    uint8
	// CostBased, when HasCostBased, selects the cost-based planner.
	HasCostBased bool
	CostBased    bool
	// Parallelism > 0 bounds collection-phase workers.
	Parallelism int
	// MaxRefTuples > 0 bounds the reference-tuple working set.
	MaxRefTuples int64
	// TraceID, when non-empty, names the server-side trace of this call,
	// so the caller can correlate it across the server's process list,
	// slow-query log, and metrics without asking the server for the
	// generated ID. Empty lets the server assign one (readable afterwards
	// via TraceLastQuery).
	TraceID string
}

func (o Options) wire() protocol.QueryOpts {
	return protocol.QueryOpts{
		HasStrategies: o.HasStrategies,
		Strategies:    o.Strategies,
		HasCostBased:  o.HasCostBased,
		CostBased:     o.CostBased,
		Parallelism:   uint32(o.Parallelism),
		MaxRefTuples:  uint64(o.MaxRefTuples),
		TraceID:       o.TraceID,
	}
}

// Conn is one client session.
type Conn struct {
	mu        sync.Mutex
	conn      net.Conn
	br        *bufio.Reader
	bw        *bufio.Writer
	sessionID uint64
	closed    bool
}

// Dial connects to a pascald server and performs the Hello handshake.
// An admission-control rejection surfaces as ErrTooManySessions.
func Dial(addr string) (*Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Conn{conn: nc, br: bufio.NewReader(nc), bw: bufio.NewWriter(nc)}
	op, payload, err := protocol.ReadFrame(c.br)
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("client: handshake: %w", err)
	}
	r := protocol.NewReader(payload)
	switch op {
	case protocol.OpHello:
		ver, err := r.Uvarint()
		if err != nil {
			nc.Close()
			return nil, err
		}
		if ver != protocol.Version {
			nc.Close()
			return nil, fmt.Errorf("client: protocol version %d, want %d", ver, protocol.Version)
		}
		if c.sessionID, err = r.Uvarint(); err != nil {
			nc.Close()
			return nil, err
		}
		return c, nil
	case protocol.OpErr:
		nc.Close()
		return nil, readErrPayload(r)
	default:
		nc.Close()
		return nil, fmt.Errorf("client: unexpected handshake opcode %#x", op)
	}
}

func readErrPayload(r *protocol.Reader) error {
	code, err := r.Uvarint()
	if err != nil {
		return err
	}
	msg, err := r.String()
	if err != nil {
		return err
	}
	return &Error{Code: code, Message: msg}
}

// SessionID returns the server-assigned session id (the KILL target).
func (c *Conn) SessionID() uint64 { return c.sessionID }

// Close closes the connection. Open statements on the server are
// released when the server notices the disconnect.
func (c *Conn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	return c.conn.Close()
}

// roundTrip sends one request frame and reads one response frame under
// the connection lock.
func (c *Conn) roundTrip(op byte, payload []byte) (byte, *protocol.Reader, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.roundTripLocked(op, payload)
}

func (c *Conn) roundTripLocked(op byte, payload []byte) (byte, *protocol.Reader, error) {
	if c.closed {
		return 0, nil, errors.New("client: connection closed")
	}
	if err := protocol.WriteFrame(c.bw, op, payload); err != nil {
		return 0, nil, err
	}
	rop, rp, err := protocol.ReadFrame(c.br)
	if err != nil {
		return 0, nil, err
	}
	r := protocol.NewReader(rp)
	if rop == protocol.OpErr {
		return 0, nil, readErrPayload(r)
	}
	return rop, r, nil
}

func (c *Conn) expect(op byte, payload []byte, want byte) (*protocol.Reader, error) {
	rop, r, err := c.roundTrip(op, payload)
	if err != nil {
		return nil, err
	}
	if rop != want {
		return nil, fmt.Errorf("client: unexpected response opcode %#x, want %#x", rop, want)
	}
	return r, nil
}

// Ping round-trips an empty frame.
func (c *Conn) Ping() error {
	_, err := c.expect(protocol.OpPing, nil, protocol.OpPong)
	return err
}

// Exec runs a PASCAL/R script (DDL and mutations) on the server.
func (c *Conn) Exec(src string) error {
	w := protocol.NewWriter()
	w.String(src)
	_, err := c.expect(protocol.OpExec, w.Bytes(), protocol.OpOK)
	return err
}

// Result is a materialized query result.
type Result struct {
	Columns []string
	Rows    [][]any
}

func readResult(r *protocol.Reader) (*Result, error) {
	cols, err := r.Strings()
	if err != nil {
		return nil, err
	}
	rows, err := r.Rows()
	if err != nil {
		return nil, err
	}
	return &Result{Columns: cols, Rows: rows}, nil
}

// Query evaluates a selection and returns the materialized result.
func (c *Conn) Query(src string, opts Options) (*Result, error) {
	w := protocol.NewWriter()
	w.String(src)
	w.Opts(opts.wire())
	r, err := c.expect(protocol.OpQuery, w.Bytes(), protocol.OpResult)
	if err != nil {
		return nil, err
	}
	return readResult(r)
}

// Stmt is a server-side prepared statement.
type Stmt struct {
	conn *Conn
	id   uint64
}

// Prepare compiles a selection on the server for repeated execution.
func (c *Conn) Prepare(src string, opts Options) (*Stmt, error) {
	w := protocol.NewWriter()
	w.String(src)
	w.Opts(opts.wire())
	r, err := c.expect(protocol.OpPrepare, w.Bytes(), protocol.OpStmtBound)
	if err != nil {
		return nil, err
	}
	id, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	return &Stmt{conn: c, id: id}, nil
}

// Execute re-executes the prepared statement, opening a server-side
// cursor drained through Rows.
func (s *Stmt) Execute() (*Rows, error) {
	w := protocol.NewWriter()
	w.Uvarint(s.id)
	r, err := s.conn.expect(protocol.OpExecStmt, w.Bytes(), protocol.OpCursor)
	if err != nil {
		return nil, err
	}
	cols, err := r.Strings()
	if err != nil {
		return nil, err
	}
	return &Rows{stmt: s, cols: cols}, nil
}

// Close releases the server-side statement and any open cursor.
func (s *Stmt) Close() error {
	w := protocol.NewWriter()
	w.Uvarint(s.id)
	_, err := s.conn.expect(protocol.OpCloseStmt, w.Bytes(), protocol.OpOK)
	return err
}

// Rows streams a cursor in fetch batches, in the database/sql idiom:
// Next, Values, then Err after Next returns false.
type Rows struct {
	stmt  *Stmt
	cols  []string
	batch [][]any
	i     int
	done  bool
	err   error

	// FetchSize overrides the per-Fetch row ask (default 256).
	FetchSize int
}

// Columns returns the component names of the result.
func (r *Rows) Columns() []string { return append([]string(nil), r.cols...) }

// Next advances to the next row, fetching the next batch from the
// server when the buffered one is drained.
func (r *Rows) Next() bool {
	if r.err != nil {
		return false
	}
	if r.i < len(r.batch) {
		r.i++
		return true
	}
	if r.done {
		return false
	}
	n := r.FetchSize
	if n <= 0 {
		n = 256
	}
	w := protocol.NewWriter()
	w.Uvarint(r.stmt.id)
	w.Uvarint(uint64(n))
	rd, err := r.stmt.conn.expect(protocol.OpFetch, w.Bytes(), protocol.OpRowBatch)
	if err != nil {
		r.err = err
		r.done = true
		return false
	}
	done, err := rd.Bool()
	if err != nil {
		r.err = err
		return false
	}
	rows, err := rd.Rows()
	if err != nil {
		r.err = err
		return false
	}
	r.done = done
	r.batch = rows
	r.i = 0
	if len(rows) == 0 {
		return false
	}
	r.i = 1
	return true
}

// Values returns the current row.
func (r *Rows) Values() []any {
	if r.i == 0 || r.i > len(r.batch) {
		return nil
	}
	return r.batch[r.i-1]
}

// Err returns the error that ended iteration, if any. A concurrent
// writer invalidating the stream surfaces as ErrStaleRead; a Cancel as
// ErrCancelled.
func (r *Rows) Err() error { return r.err }

// Close stops iteration client-side. The server cursor is released on
// Stmt.Close or when the statement is re-executed.
func (r *Rows) Close() error {
	r.done = true
	r.batch = nil
	r.i = 0
	return nil
}

// Cancel aborts the session's open statement contexts on the server: a
// cursor mid-fetch observes the cancellation on its next batch.
func (c *Conn) Cancel() error {
	_, err := c.expect(protocol.OpCancel, nil, protocol.OpOK)
	return err
}

// Kill terminates another session by id (see ProcessList). The
// victim's running statement aborts at the engine's next cancellation
// checkpoint and its connection closes.
func (c *Conn) Kill(sessionID uint64) error {
	w := protocol.NewWriter()
	w.Uvarint(sessionID)
	_, err := c.expect(protocol.OpKill, w.Bytes(), protocol.OpOK)
	return err
}

// ProcessList returns the live sessions as a result with columns
// id, addr, state, query, age_ms.
func (c *Conn) ProcessList() (*Result, error) {
	r, err := c.expect(protocol.OpProcessList, nil, protocol.OpResult)
	if err != nil {
		return nil, err
	}
	return readResult(r)
}

// ResetStats zeroes the server's evaluation counters.
func (c *Conn) ResetStats() error {
	_, err := c.expect(protocol.OpResetStats, nil, protocol.OpOK)
	return err
}

// StatsFingerprint returns the server's deterministic counter
// fingerprint (see pascalr.Database.StatsFingerprint).
func (c *Conn) StatsFingerprint() (string, error) {
	r, err := c.expect(protocol.OpFingerprint, nil, protocol.OpStr)
	if err != nil {
		return "", err
	}
	return r.String()
}

// ExplainAnalyze executes a selection on the server and returns the
// engine's estimated-versus-actual cardinality report — the same text
// in-process callers get from pascalr.Database.ExplainAnalyze. The
// execution is traced; TraceLastQuery afterwards returns its span tree.
func (c *Conn) ExplainAnalyze(src string, opts Options) (string, error) {
	w := protocol.NewWriter()
	w.String(src)
	w.Opts(opts.wire())
	r, err := c.expect(protocol.OpExplainAnalyze, w.Bytes(), protocol.OpStr)
	if err != nil {
		return "", err
	}
	return r.String()
}

// TraceLastQuery returns the span tree of the session's most recently
// traced statement as JSON: the trace ID, start time, and the nested
// spans with their durations and attributes (estimated and actual
// cardinalities on scan and join spans).
func (c *Conn) TraceLastQuery() (string, error) {
	r, err := c.expect(protocol.OpLastTrace, nil, protocol.OpStr)
	if err != nil {
		return "", err
	}
	return r.String()
}

// SetOption sets a session default on the server. Keys: "strategies",
// "cost_based" (1 to enable), "parallelism", "max_ref_tuples".
func (c *Conn) SetOption(key string, value int64) error {
	w := protocol.NewWriter()
	w.String(key)
	w.Int64(value)
	_, err := c.expect(protocol.OpSetOption, w.Bytes(), protocol.OpOK)
	return err
}
