package pascalr

import "pascalr/internal/obs"

// Engine-layer metrics owned by the public API surface: the plan cache
// and the cursor stale-retry path live here rather than in
// internal/engine, but report under the engine layer's metric prefix.
// Span tracing rides the context (internal/obs) and never touches
// stats.Counters, so counter fingerprints are identical with tracing on.
var (
	mPlanCacheHits = obs.GetCounter("pascal_engine_plan_cache_hits_total",
		"One-shot queries served from the LRU plan cache")
	mPlanCacheMisses = obs.GetCounter("pascal_engine_plan_cache_misses_total",
		"One-shot queries that compiled a fresh plan (including cache bypasses)")
	mStaleRetries = obs.GetCounter("pascal_engine_stale_retries_total",
		"Mid-stream stale-read retries absorbed by one-shot cursors")
)
