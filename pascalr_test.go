package pascalr

import (
	"sort"
	"strings"
	"testing"
)

// sampleScript declares the Figure 1 database and a hand-checkable
// population (the same instance the engine tests use).
const sampleScript = `
TYPE statustype = (student, technician, assistant, professor);
     nametype   = PACKED ARRAY [1..10] OF char;
     titletype  = PACKED ARRAY [1..40] OF char;
     roomtype   = PACKED ARRAY [1..5] OF char;
     yeartype   = 1900..1999;
     timetype   = 8000900..18002000;
     daytype    = (monday, tuesday, wednesday, thursday, friday);
     leveltype  = (freshman, sophomore, junior, senior);
     enumbertype = 1..99;
     cnumbertype = 1..99;

VAR employees : RELATION <enr> OF
      RECORD enr : enumbertype; ename : nametype; estatus : statustype END;
    papers : RELATION <ptitle, penr> OF
      RECORD penr : enumbertype; pyear : yeartype; ptitle : titletype END;
    courses : RELATION <cnr> OF
      RECORD cnr : cnumbertype; clevel : leveltype; ctitle : titletype END;
    timetable : RELATION <tenr, tcnr, tday> OF
      RECORD tenr : enumbertype; tcnr : cnumbertype; tday : daytype;
             ttime : timetype; troom : roomtype END;

employees :+ [<1, 'ada', professor>, <2, 'bob', student>,
              <3, 'cyd', professor>, <4, 'dan', professor>];
papers    :+ [<1, 1977, 't1'>, <3, 1980, 't2'>];
courses   :+ [<10, sophomore, 'c10'>, <11, senior, 'c11'>];
timetable :+ [<1, 11, monday, 9000900, 'R1'>, <3, 10, tuesday, 9000900, 'R2'>];
`

// example21 is the paper's sample query.
const example21 = `
[<e.ename> OF EACH e IN employees:
  (e.estatus = professor)
  AND
  (ALL p IN papers ((p.pyear <> 1977) OR (e.enr <> p.penr))
   OR
   SOME c IN courses ((c.clevel <= sophomore)
     AND SOME t IN timetable ((c.cnr = t.tcnr) AND (e.enr = t.tenr))))]
`

func names(t *testing.T, r *Result) []string {
	t.Helper()
	var out []string
	for _, row := range r.Rows() {
		out = append(out, row[0].(string))
	}
	sort.Strings(out)
	return out
}

func TestQuickstartFlow(t *testing.T) {
	db, err := Open(sampleScript)
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(example21)
	if err != nil {
		t.Fatal(err)
	}
	got := names(t, res)
	if len(got) != 2 || got[0] != "cyd" || got[1] != "dan" {
		t.Errorf("Example 2.1 = %v", got)
	}
	if cols := res.Columns(); len(cols) != 1 || cols[0] != "ename" {
		t.Errorf("columns = %v", cols)
	}
	if !strings.Contains(res.String(), "cyd") {
		t.Errorf("table rendering missing data:\n%s", res)
	}
}

func TestStrategySubsetsAgree(t *testing.T) {
	db, err := Open(sampleScript)
	if err != nil {
		t.Fatal(err)
	}
	want := names(t, db.MustQuery(example21, WithBaseline()))
	for _, s := range []Strategy{NoStrategies, S1, S1 | S2, S1 | S2 | S3, AllStrategies} {
		got := names(t, db.MustQuery(example21, WithStrategies(s)))
		if strings.Join(got, ",") != strings.Join(want, ",") {
			t.Errorf("%v: got %v, want %v", s, got, want)
		}
	}
}

// TestCostBasedThroughPublicAPI checks that WithCostBased yields the
// same result as the static planner and surfaces in EXPLAIN output.
func TestCostBasedThroughPublicAPI(t *testing.T) {
	db, err := Open(sampleScript)
	if err != nil {
		t.Fatal(err)
	}
	static := names(t, db.MustQuery(example21))
	cost := names(t, db.MustQuery(example21, WithCostBased()))
	if strings.Join(static, ",") != strings.Join(cost, ",") {
		t.Errorf("cost-based result %v differs from static %v", cost, static)
	}
	plan, err := db.Explain(example21, WithCostBased())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "cost-based") {
		t.Errorf("EXPLAIN under WithCostBased missing ordering note:\n%s", plan)
	}
}

func TestExecStatements(t *testing.T) {
	db, err := Open(sampleScript)
	if err != nil {
		t.Fatal(err)
	}
	// Assignment creates a result relation that can be queried again.
	err = db.Exec(`profs := [<e.ename> OF EACH e IN employees: e.estatus = professor];`)
	if err != nil {
		t.Fatal(err)
	}
	n, err := db.RelationLen("profs")
	if err != nil || n != 3 {
		t.Errorf("profs has %d rows, err %v", n, err)
	}
	// Delete and insert through the paper's operators.
	if err := db.Exec(`employees :- [<'t?', 0>];`); err == nil {
		t.Errorf("bad key tuple accepted")
	}
	if err := db.Exec(`employees :- [<2>];`); err != nil {
		t.Fatal(err)
	}
	n, _ = db.RelationLen("employees")
	if n != 3 {
		t.Errorf("employees after delete = %d", n)
	}
	// Insert from a selection.
	if err := db.Exec(`employees :+ [<e.enr, e.ename, e.estatus> OF EACH e IN employees: e.enr = 1];`); err != nil {
		t.Fatal(err)
	}
	// Re-assignment replaces contents.
	if err := db.Exec(`profs := [<e.ename> OF EACH e IN employees: e.enr = 1];`); err != nil {
		t.Fatal(err)
	}
	if n, _ := db.RelationLen("profs"); n != 1 {
		t.Errorf("reassigned profs = %d", n)
	}
}

func TestDumpAndRelations(t *testing.T) {
	db, _ := Open(sampleScript)
	rels := db.Relations()
	if len(rels) != 4 || rels[0] != "employees" {
		t.Errorf("Relations = %v", rels)
	}
	dump, err := db.Dump("courses")
	if err != nil || dump.Len() != 2 {
		t.Fatalf("Dump = %v, %v", dump, err)
	}
	// Enum labels render as labels, not ordinals.
	found := false
	for _, row := range dump.Rows() {
		if row[1] == "sophomore" {
			found = true
		}
	}
	if !found {
		t.Errorf("enum label not rendered: %v", dump.Rows())
	}
	if _, err := db.Dump("ghost"); err == nil {
		t.Errorf("Dump of unknown relation succeeded")
	}
}

func TestStatsAccumulateAndReset(t *testing.T) {
	db, _ := Open(sampleScript)
	db.ResetStats()
	db.MustQuery(example21, WithStrategies(AllStrategies))
	st := db.Stats()
	if st.TotalScans == 0 || st.TuplesRead == 0 {
		t.Errorf("stats empty after query: %+v", st)
	}
	db.ResetStats()
	if db.Stats().TotalScans != 0 {
		t.Errorf("ResetStats did not clear")
	}
}

func TestScanCountClaimThroughPublicAPI(t *testing.T) {
	// The paper's headline S1 claim, observable through the public API:
	// with S1 each relation is scanned at most once.
	db, _ := Open(sampleScript)
	db.ResetStats()
	db.MustQuery(example21, WithStrategies(S1))
	for rel, n := range db.Stats().ScansOf {
		if n > 1 {
			t.Errorf("S1 scanned %s %d times", rel, n)
		}
	}
	db.ResetStats()
	db.MustQuery(example21, WithStrategies(NoStrategies))
	if db.Stats().ScansOf["employees"] < 2 {
		t.Errorf("S0 scanned employees %d times, expected several", db.Stats().ScansOf["employees"])
	}
}

func TestExplain(t *testing.T) {
	db, _ := Open(sampleScript)
	for _, s := range []Strategy{NoStrategies, AllStrategies} {
		out, err := db.Explain(example21, WithStrategies(s))
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(out, "collection phase") {
			t.Errorf("explain output incomplete:\n%s", out)
		}
	}
}

func TestParseStrategy(t *testing.T) {
	cases := map[string]Strategy{
		"s0": NoStrategies, "": NoStrategies, "all": AllStrategies,
		"s1": S1, "s1+s3": S1 | S3, "S1,S2,S4": S1 | S2 | S4,
	}
	for in, want := range cases {
		got, err := ParseStrategy(in)
		if err != nil || got != want {
			t.Errorf("ParseStrategy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseStrategy("s9"); err == nil {
		t.Errorf("bad strategy accepted")
	}
}

func TestQueryErrors(t *testing.T) {
	db, _ := Open(sampleScript)
	if _, err := db.Query(`[<e.ename> OF EACH e IN nobody: TRUE]`); err == nil {
		t.Errorf("unknown relation accepted")
	}
	if _, err := db.Query(`[<e.ghost> OF EACH e IN employees: TRUE]`); err == nil {
		t.Errorf("unknown component accepted")
	}
	if _, err := db.Query(`syntax error`); err == nil {
		t.Errorf("syntax error accepted")
	}
	if err := db.Exec(`ghost :+ [<1>];`); err == nil {
		t.Errorf("insert into unknown relation accepted")
	}
	// Budget guard.
	if _, err := db.Query(example21, WithStrategies(NoStrategies), WithMaxRefTuples(1)); err == nil {
		t.Errorf("ref-tuple budget not enforced")
	}
}

func TestCreateIndexThroughPublicAPI(t *testing.T) {
	db, _ := Open(sampleScript)
	if err := db.CreateIndex("timetable", "tcnr"); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("timetable", "tcnr"); err == nil {
		t.Errorf("duplicate index accepted")
	}
	if err := db.CreateIndex("ghost", "x"); err == nil {
		t.Errorf("unknown relation accepted")
	}
	if err := db.CreateIndex("timetable", "ghost"); err == nil {
		t.Errorf("unknown component accepted")
	}
	// Queries still produce the same answers, and the index stays
	// consistent under subsequent inserts.
	db.MustExec(`timetable :+ [<4, 10, wednesday, 9000900, 'R9'>];`)
	got := names(t, db.MustQuery(example21))
	want := names(t, db.MustQuery(example21, WithBaseline()))
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("indexed query = %v, oracle = %v", got, want)
	}
}

func TestLemma1ThroughPublicAPI(t *testing.T) {
	db, _ := Open(sampleScript)
	// Empty papers: ALL over the empty relation is TRUE, so all three
	// professors qualify — the adapted standard form of Example 2.2.
	db.MustExec(`papers := [<p.penr, p.pyear, p.ptitle> OF EACH p IN papers: p.pyear = 1900];`)
	if n, _ := db.RelationLen("papers"); n != 0 {
		t.Fatalf("papers not emptied")
	}
	got := names(t, db.MustQuery(example21))
	if len(got) != 3 {
		t.Errorf("with papers=[]: %v, want 3 professors", got)
	}
}
