package pascalr

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"pascalr/internal/relation"
)

// concurrentSchema is a small standalone schema for concurrency tests.
const concurrentSchema = `
TYPE statustype = (student, technician, assistant, professor);
VAR staff : RELATION <snr> OF
      RECORD snr : 1..9999; sname : PACKED ARRAY [1..10] OF char; sstatus : statustype END;
    duties : RELATION <dnr, dsnr> OF
      RECORD dnr : 1..9999; dsnr : 1..9999 END;
`

func concurrentDB(t *testing.T, rows int) *Database {
	t.Helper()
	db := New()
	db.MustExec(concurrentSchema)
	var b strings.Builder
	for i := 1; i <= rows; i++ {
		status := "student"
		if i%4 == 0 {
			status = "professor"
		}
		fmt.Fprintf(&b, "staff :+ [<%d, 's%07d', %s>];\n", i, i, status)
		fmt.Fprintf(&b, "duties :+ [<%d, %d>];\n", i, (i%rows)+1)
	}
	db.MustExec(b.String())
	return db
}

// TestConcurrentStmtQuery runs one prepared statement from 8 goroutines
// over one Database — the acceptance bar for concurrency-safe query
// execution — asserting every execution returns the same result.
func TestConcurrentStmtQuery(t *testing.T) {
	db := concurrentDB(t, 60)
	stmt, err := db.Prepare(`[<s.sname, d.dnr> OF EACH s IN staff, EACH d IN duties:
		(s.sstatus = professor) AND (s.snr = d.dsnr)]`, WithCostBased())
	if err != nil {
		t.Fatal(err)
	}
	want, err := stmt.Query(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	const reps = 10
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < reps; r++ {
				par := 1 + (g+r)%4 // mix serial and parallel executions
				res, err := stmt.Query(context.Background(), WithParallelism(par))
				if err != nil {
					errs[g] = err
					return
				}
				if res.Len() != want.Len() {
					errs[g] = fmt.Errorf("goroutine %d rep %d: %d rows, want %d", g, r, res.Len(), want.Len())
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestConcurrentQueryAndExec interleaves one-shot queries (through the
// shared LRU plan cache), prepared statements, streamed cursors, and a
// writer goroutine mutating the database through Exec. Row counts may
// differ run to run — the writer interleaves — but every execution must
// complete without error, and under -race without data races.
func TestConcurrentQueryAndExec(t *testing.T) {
	db := concurrentDB(t, 80)
	src := `[<s.sname> OF EACH s IN staff: (s.sstatus = professor) AND
		SOME d IN duties ((d.dsnr = s.snr))]`
	stmt, err := db.Prepare(src)
	if err != nil {
		t.Fatal(err)
	}

	const readers = 6
	const reps = 12
	var wg sync.WaitGroup
	errCh := make(chan error, readers+1)

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < reps; i++ {
			ins := fmt.Sprintf("staff :+ [<%d, 'w%07d', professor>]; duties :+ [<%d, %d>];",
				1000+i, 1000+i, 1000+i, 1000+i)
			if err := db.Exec(ins); err != nil {
				errCh <- fmt.Errorf("writer: %w", err)
				return
			}
			del := fmt.Sprintf("staff :- [<%d>];", 1000+i)
			if err := db.Exec(del); err != nil {
				errCh <- fmt.Errorf("writer: %w", err)
				return
			}
		}
	}()

	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx := context.Background()
			for r := 0; r < reps; r++ {
				switch r % 3 {
				case 0:
					if _, err := db.Query(src, WithParallelism(4)); err != nil {
						errCh <- fmt.Errorf("reader %d query: %w", g, err)
						return
					}
				case 1:
					if _, err := stmt.Query(ctx, WithParallelism(2)); err != nil {
						errCh <- fmt.Errorf("reader %d stmt: %w", g, err)
						return
					}
				default:
					rows, err := db.QueryRows(ctx, src)
					if err != nil {
						errCh <- fmt.Errorf("reader %d rows: %w", g, err)
						return
					}
					for rows.Next() {
					}
					err = rows.Err()
					rows.Close()
					// A streaming cursor reads live data: a writer
					// deleting a referenced element mid-stream surfaces
					// as ErrStale, the documented optimistic outcome.
					// Anything else is a bug.
					if err != nil && !errors.Is(err, relation.ErrStale) {
						errCh <- fmt.Errorf("reader %d cursor: %w", g, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestConcurrentStmtQueryAndDDL races a cost-based prepared statement
// against a writer that both mutates content (forcing the statement's
// statistics-staleness path to re-capture every relation's mutation
// counter) and declares new relations (growing the unsynchronized
// catalog under the DB's registration lock). Run under -race: the
// counter capture must read the relation registry through a guarded
// snapshot, not the bare catalog.
func TestConcurrentStmtQueryAndDDL(t *testing.T) {
	db := concurrentDB(t, 40)
	stmt, err := db.Prepare(`[<s.sname, d.dnr> OF EACH s IN staff, EACH d IN duties:
		(s.sstatus = professor) AND (s.snr = d.dsnr)]`, WithCostBased())
	if err != nil {
		t.Fatal(err)
	}

	const reps = 12
	var wg sync.WaitGroup
	errCh := make(chan error, 4)

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < reps; i++ {
			ddl := fmt.Sprintf(`VAR extra%d : RELATION <xnr> OF RECORD xnr : 1..9999 END;
				staff :+ [<%d, 'd%07d', professor>];`, i, 2000+i, 2000+i)
			if err := db.Exec(ddl); err != nil {
				errCh <- fmt.Errorf("ddl writer: %w", err)
				return
			}
		}
	}()

	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < reps; r++ {
				if _, err := stmt.Query(context.Background()); err != nil {
					errCh <- fmt.Errorf("reader %d: %w", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestWithParallelismResultsMatch compares one-shot results across
// worker budgets on a join query, including through the plan cache.
func TestWithParallelismResultsMatch(t *testing.T) {
	db := concurrentDB(t, 50)
	src := `[<s.snr, d.dnr> OF EACH s IN staff, EACH d IN duties: (s.snr = d.dsnr)]`
	want, err := db.Query(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 4, 8} {
		got, err := db.Query(src, WithParallelism(n))
		if err != nil {
			t.Fatalf("parallelism %d: %v", n, err)
		}
		if got.Len() != want.Len() {
			t.Fatalf("parallelism %d: %d rows, want %d", n, got.Len(), want.Len())
		}
	}
}
