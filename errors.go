package pascalr

import (
	"errors"

	"pascalr/internal/relation"
)

// ErrStaleRead reports that a streaming cursor dereferenced a tuple a
// concurrent writer deleted between the combination phase and
// construction — the optimistic-concurrency outcome of reading through
// references while Exec mutates the database. It is retryable: the
// same query re-executed against the new contents succeeds (the
// one-shot QueryRows path performs one such retry transparently;
// prepared Stmt.Rows surfaces the error so callers control the retry).
// Match with errors.Is:
//
//	rows, _ := stmt.Rows(ctx)
//	for rows.Next() { ... }
//	if errors.Is(rows.Err(), pascalr.ErrStaleRead) {
//	    // re-execute stmt.Rows, or fall back to stmt.Query
//	}
var ErrStaleRead = errors.New("pascalr: stale read, retry the query")

// staleReadError classifies a storage-layer stale-reference error as
// the public retryable ErrStaleRead while keeping the original error
// in the chain.
type staleReadError struct{ err error }

func (e *staleReadError) Error() string { return "pascalr: stale read: " + e.err.Error() }

func (e *staleReadError) Unwrap() []error { return []error{ErrStaleRead, e.err} }

// classifyErr maps internal errors crossing the public API boundary to
// their documented public forms; today, stale references become
// ErrStaleRead.
func classifyErr(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, relation.ErrStale) && !errors.Is(err, ErrStaleRead) {
		return &staleReadError{err: err}
	}
	return err
}
