package pascalr

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

// TestPrepareAndRows drives the prepared-statement API end to end:
// prepared executions must match the one-shot result, and the cursor
// must stream the same tuples with working typed Scan.
func TestPrepareAndRows(t *testing.T) {
	ctx := context.Background()
	db := New()
	db.MustExec(sampleScript)

	want := names(t, db.MustQuery(example21))

	stmt, err := db.Prepare(example21)
	if err != nil {
		t.Fatal(err)
	}
	for run := 1; run <= 2; run++ {
		res, err := stmt.Query(ctx)
		if err != nil {
			t.Fatalf("prepared run %d: %v", run, err)
		}
		got := names(t, res)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("prepared run %d: got %v, want %v", run, got, want)
		}
	}

	rows, err := stmt.Rows(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if cols := rows.Columns(); len(cols) != 1 || cols[0] != "ename" {
		t.Fatalf("columns: got %v", cols)
	}
	var streamed []string
	for rows.Next() {
		var name string
		if err := rows.Scan(&name); err != nil {
			t.Fatal(err)
		}
		streamed = append(streamed, name)
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	sortAndCompare(t, streamed, want)
	// After exhaustion the current row is gone: Scan must error rather
	// than silently re-reading the final tuple, and Values returns nil.
	var stale string
	if err := rows.Scan(&stale); err == nil {
		t.Fatal("Scan after exhausted Next should error")
	}
	if vals := rows.Values(); vals != nil {
		t.Fatalf("Values after exhausted Next: got %v, want nil", vals)
	}
}

func sortAndCompare(t *testing.T, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	seen := map[string]int{}
	for _, g := range got {
		seen[g]++
	}
	for _, w := range want {
		seen[w]--
	}
	for k, n := range seen {
		if n != 0 {
			t.Fatalf("mismatch on %q: got %v, want %v", k, got, want)
		}
	}
}

// TestStmtObservesMutations: a prepared statement must see inserts,
// deletes, and emptied relations performed after Prepare.
func TestStmtObservesMutations(t *testing.T) {
	ctx := context.Background()
	db := New()
	db.MustExec(sampleScript)
	stmt, err := db.Prepare(`[<e.ename> OF EACH e IN employees: (e.estatus = professor)]`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := stmt.Query(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 {
		t.Fatalf("initial professors: got %d, want 3", res.Len())
	}
	db.MustExec(`employees :+ [<5, 'eve', professor>];`)
	if res, err = stmt.Query(ctx); err != nil {
		t.Fatal(err)
	}
	if res.Len() != 4 {
		t.Fatalf("after insert: got %d, want 4", res.Len())
	}
	// Emptying papers changes the Lemma 1 fold of example21; the sample
	// query must recompile and then match ALL-over-empty semantics.
	full, err := db.Prepare(example21)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := full.Query(ctx); err != nil {
		t.Fatal(err)
	}
	db.MustExec(`papers :- [<'t1', 1>, <'t2', 3>];`)
	got, err := full.Query(ctx)
	if err != nil {
		t.Fatal(err)
	}
	oneShot := db.MustQuery(example21, WithoutPlanCache())
	if fmt.Sprint(names(t, got)) != fmt.Sprint(names(t, oneShot)) {
		t.Fatalf("prepared after emptying papers: got %v, want %v", names(t, got), names(t, oneShot))
	}
}

// TestStmtRejectsCompileOptions: compile-time options on a prepared
// execution must error instead of silently running a different plan.
func TestStmtRejectsCompileOptions(t *testing.T) {
	db := New()
	db.MustExec(sampleScript)
	stmt, err := db.Prepare(example21)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stmt.Query(context.Background(), WithStrategies(S1)); err == nil {
		t.Fatal("WithStrategies on a prepared statement should error")
	}
	if _, err := stmt.Rows(context.Background(), WithCostBased()); err == nil {
		t.Fatal("WithCostBased on a prepared statement should error")
	}
	if _, err := db.Prepare(example21, WithBaseline()); err == nil {
		t.Fatal("Prepare(WithBaseline) should error")
	}
}

// TestQueryPlanCache: repeated one-shot queries must reuse one prepared
// statement, and WithoutPlanCache must bypass it.
func TestQueryPlanCache(t *testing.T) {
	db := New()
	db.MustExec(sampleScript)
	if _, err := db.Query(example21); err != nil {
		t.Fatal(err)
	}
	s1, ok := db.plans.get(cacheKey(example21, db.newConfig(nil)))
	if !ok {
		t.Fatal("query did not populate the plan cache")
	}
	if _, err := db.Query(example21); err != nil {
		t.Fatal(err)
	}
	s2, _ := db.plans.get(cacheKey(example21, db.newConfig(nil)))
	if s1 != s2 {
		t.Fatal("second query compiled a new statement instead of reusing the cached one")
	}
	// Different compile options get a distinct entry.
	if _, err := db.Query(example21, WithStrategies(S1)); err != nil {
		t.Fatal(err)
	}
	if db.plans.len() != 2 {
		t.Fatalf("plan cache has %d entries, want 2", db.plans.len())
	}
	before := db.plans.len()
	if _, err := db.Query(example21, WithoutPlanCache()); err != nil {
		t.Fatal(err)
	}
	if db.plans.len() != before {
		t.Fatal("WithoutPlanCache still touched the cache")
	}
}

// TestPlanCacheLRU: the cache must evict its least-recently-used entry
// at capacity.
func TestPlanCacheLRU(t *testing.T) {
	pc := newPlanCache(2)
	a, b, c := &Stmt{}, &Stmt{}, &Stmt{}
	pc.put("a", a)
	pc.put("b", b)
	if _, ok := pc.get("a"); !ok { // refresh a; b becomes LRU
		t.Fatal("a missing")
	}
	pc.put("c", c)
	if _, ok := pc.get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if got, ok := pc.get("a"); !ok || got != a {
		t.Fatal("a lost")
	}
	if got, ok := pc.get("c"); !ok || got != c {
		t.Fatal("c lost")
	}
}

// TestEstimatorPerRelationStaleness pins the statistics-cache
// granularity: TYPE/VAR declarations and no-op statements keep every
// relation's statistics snapshot; a content mutation of one relation
// refreshes that relation's snapshot and ONLY that one — an insert into
// papers must not discard the statistics of employees.
func TestEstimatorPerRelationStaleness(t *testing.T) {
	db := New()
	db.MustExec(sampleScript)
	if _, err := db.Query(example21, WithCostBased()); err != nil {
		t.Fatal(err)
	}
	before := db.db.Estimator()
	emp, pap := before.Table("employees"), before.Table("papers")
	if emp == nil || pap == nil {
		t.Fatal("cost-based query did not populate statistics")
	}
	db.MustExec(`TYPE gradetype = 1..5;`)
	db.MustExec(`VAR grades : RELATION <g> OF RECORD g : gradetype END;`)
	db.MustExec(`papers :- [<'absent', 99>];`) // deletes nothing
	if _, err := db.Query(example21, WithCostBased(), WithoutPlanCache()); err != nil {
		t.Fatal(err)
	}
	mid := db.db.Estimator()
	if mid.Table("employees") != emp || mid.Table("papers") != pap {
		t.Fatal("TYPE/VAR declarations or no-op statements invalidated statistics snapshots")
	}
	db.MustExec(`papers :+ [<4, 1981, 't9'>];`)
	if _, err := db.Query(example21, WithCostBased(), WithoutPlanCache()); err != nil {
		t.Fatal(err)
	}
	after := db.db.Estimator()
	if after.Table("papers") == pap {
		t.Fatal("papers mutation did not refresh the papers snapshot")
	}
	if after.Table("employees") != emp {
		t.Fatal("papers mutation discarded the employees snapshot (per-relation staleness broken)")
	}
	if got := after.Table("papers").Rows(); got != pap.Rows()+1 {
		t.Fatalf("refreshed papers snapshot has %d rows, want %d", got, pap.Rows()+1)
	}
}

// TestQueryRowsCancellation cancels a streaming query mid-iteration
// through the public API.
func TestQueryRowsCancellation(t *testing.T) {
	db := New()
	db.MustExec(sampleScript)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rows, err := db.QueryRows(ctx, example21)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if !rows.Next() {
		t.Fatalf("first Next failed: %v", rows.Err())
	}
	if vals := rows.Values(); len(vals) != 1 {
		t.Fatalf("Values: got %v", vals)
	}
	cancel()
	if rows.Next() {
		t.Fatal("Next succeeded after cancellation")
	}
	if !errors.Is(rows.Err(), context.Canceled) {
		t.Fatalf("rows error: got %v, want context.Canceled", rows.Err())
	}
	// A fresh context keeps working — cancellation is per call, not per
	// statement.
	if _, err := db.QueryContext(context.Background(), example21); err != nil {
		t.Fatal(err)
	}
}

// TestMaxRefTuplesPerExecution: the reference-tuple budget bounds each
// execution, not the shared counter's lifetime total — re-executing a
// prepared or cached plan within budget must never trip it.
func TestMaxRefTuplesPerExecution(t *testing.T) {
	ctx := context.Background()
	db := New()
	db.MustExec(sampleScript)
	// Measure one execution's materialization.
	db.ResetStats()
	if _, err := db.Query(example21, WithStrategies(NoStrategies), WithoutPlanCache()); err != nil {
		t.Fatal(err)
	}
	n := db.Stats().RefTuples
	if n == 0 {
		t.Fatal("query materialized no reference tuples; budget test is vacuous")
	}
	stmt, err := db.Prepare(example21, WithStrategies(NoStrategies))
	if err != nil {
		t.Fatal(err)
	}
	for run := 1; run <= 4; run++ {
		if _, err := stmt.Query(ctx, WithMaxRefTuples(2*n)); err != nil {
			t.Fatalf("run %d exceeded a budget every single execution fits in: %v", run, err)
		}
	}
	// A genuinely too-small budget must still abort.
	if _, err := stmt.Query(ctx, WithMaxRefTuples(n/2)); err == nil {
		t.Fatal("half-budget execution should fail")
	}
}
