package pascalr

// One benchmark per experiment of DESIGN.md / EXPERIMENTS.md. The
// benchmarks drive the same code paths as cmd/experiments but at fixed
// small scales so `go test -bench=.` stays fast; use cmd/experiments for
// scale sweeps.

import (
	"context"
	"fmt"
	"testing"

	"pascalr/internal/baseline"
	"pascalr/internal/calculus"
	"pascalr/internal/engine"
	"pascalr/internal/normalize"
	"pascalr/internal/obs"
	"pascalr/internal/optimizer"
	"pascalr/internal/relation"
	"pascalr/internal/stats"
	"pascalr/internal/value"
	"pascalr/internal/workload"
)

const benchScale = 25

func benchDB(b *testing.B) (*relation.DB, *calculus.Selection, *calculus.Info) {
	b.Helper()
	db := workload.MustUniversity(workload.DefaultConfig(benchScale))
	sel, info, err := calculus.Check(workload.SampleSelection(), db.Catalog())
	if err != nil {
		b.Fatal(err)
	}
	return db, sel, info
}

// BenchmarkE1_Load regenerates the Figure 1 database (experiment E1).
func BenchmarkE1_Load(b *testing.B) {
	for i := 0; i < b.N; i++ {
		workload.MustUniversity(workload.DefaultConfig(benchScale))
	}
}

// BenchmarkE2_Collection measures the collection phase structures of the
// sample query (experiment E2): scans, single lists, indexes, indirect
// joins under strategy 1; the combination phase is excluded by running
// with all logical optimizations so it stays negligible.
func BenchmarkE2_Collection(b *testing.B) {
	db, sel, info := benchDB(b)
	eng := engine.New(db, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Eval(context.Background(), sel, info, engine.Options{Strategies: engine.AllStrategies}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE3_Normalize standardizes Example 2.1 into Example 2.2
// (experiment E3).
func BenchmarkE3_Normalize(b *testing.B) {
	_, sel, _ := benchDB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := normalize.Standardize(sel, normalize.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE4_Adaptation evaluates the sample query against an empty
// papers relation, exercising the Lemma 1 adaptation (experiment E4).
func BenchmarkE4_Adaptation(b *testing.B) {
	db, sel, info := benchDB(b)
	if err := db.MustRelation("papers").Assign(nil); err != nil {
		b.Fatal(err)
	}
	eng := engine.New(db, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Eval(context.Background(), sel, info, engine.Options{Strategies: engine.AllStrategies}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE5_RefIndex measures selected-variable lookups rel[keyval]
// (experiment E5).
func BenchmarkE5_RefIndex(b *testing.B) {
	db, _, _ := benchDB(b)
	employees := db.MustRelation("employees")
	key := []value.Value{value.Int(1)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key[0] = value.Int(int64(i%benchScale) + 1)
		employees.Lookup(key)
	}
}

// BenchmarkE6_Phases runs the Example 3.2 fragment through all three
// phases (experiment E6).
func BenchmarkE6_Phases(b *testing.B) {
	db := workload.MustUniversity(workload.DefaultConfig(benchScale))
	sel, info, err := calculus.Check(workload.SubexprSelection(), db.Catalog())
	if err != nil {
		b.Fatal(err)
	}
	eng := engine.New(db, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Eval(context.Background(), sel, info, engine.Options{Strategies: engine.S1}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchStrategy runs the sample query under one strategy set.
func benchStrategy(b *testing.B, strat engine.Strategy) {
	b.Helper()
	db, sel, info := benchDB(b)
	eng := engine.New(db, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Eval(context.Background(), sel, info, engine.Options{Strategies: strat}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE7_S1 compares scan scheduling (experiment E7).
func BenchmarkE7_S1(b *testing.B) {
	b.Run("S0", func(b *testing.B) { benchStrategy(b, 0) })
	b.Run("S1", func(b *testing.B) { benchStrategy(b, engine.S1) })
}

// BenchmarkE8_S2 compares unrestricted and restricted indirect joins
// (experiment E8).
func BenchmarkE8_S2(b *testing.B) {
	b.Run("S1", func(b *testing.B) { benchStrategy(b, engine.S1) })
	b.Run("S1+S2", func(b *testing.B) { benchStrategy(b, engine.S1|engine.S2) })
}

// BenchmarkE9_S3 compares evaluation with and without extended range
// expressions (experiment E9).
func BenchmarkE9_S3(b *testing.B) {
	b.Run("S1+S2", func(b *testing.B) { benchStrategy(b, engine.S1|engine.S2) })
	b.Run("S1+S2+S3", func(b *testing.B) { benchStrategy(b, engine.S1|engine.S2|engine.S3) })
}

// BenchmarkE10_S4 compares evaluation with and without collection-phase
// quantifier evaluation (experiment E10).
func BenchmarkE10_S4(b *testing.B) {
	b.Run("S1+S2+S3", func(b *testing.B) { benchStrategy(b, engine.S1|engine.S2|engine.S3) })
	b.Run("All", func(b *testing.B) { benchStrategy(b, engine.AllStrategies) })
}

// BenchmarkE11_Ladder is the headline comparison (experiment E11):
// naive tuple substitution against the phase algorithm under the
// strategy ladder.
func BenchmarkE11_Ladder(b *testing.B) {
	b.Run("naive", func(b *testing.B) {
		db, sel, info := benchDB(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := baseline.Eval(sel, info, db); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("S0", func(b *testing.B) { benchStrategy(b, 0) })
	b.Run("S1", func(b *testing.B) { benchStrategy(b, engine.S1) })
	b.Run("S1+S2", func(b *testing.B) { benchStrategy(b, engine.S1|engine.S2) })
	b.Run("S1+S2+S3", func(b *testing.B) { benchStrategy(b, engine.S1|engine.S2|engine.S3) })
	b.Run("All", func(b *testing.B) { benchStrategy(b, engine.AllStrategies) })
}

// BenchmarkE12_ValueLists exercises the section 4.4 refinements: each
// operator/quantifier pair over a value list (experiment E12).
func BenchmarkE12_ValueLists(b *testing.B) {
	db := New()
	db.MustExec(`
TYPE dom = 0..1073741824;
VAR outer : RELATION <k> OF RECORD k : dom; v : dom END;
    inner : RELATION <k> OF RECORD k : dom; v : dom END;
`)
	var inserts string
	for i := 0; i < 300; i++ {
		inserts += fmt.Sprintf("outer :+ [<%d, %d>]; inner :+ [<%d, %d>];\n", i, i%97, i, i%89)
	}
	db.MustExec(inserts)
	for _, c := range []struct{ q, op string }{
		{"SOME", "<"}, {"ALL", "<"}, {"ALL", "="}, {"SOME", "<>"}, {"SOME", "="}, {"ALL", "<>"},
	} {
		src := fmt.Sprintf(`[<o.k> OF EACH o IN outer: %s i IN inner (o.v %s i.v)]`, c.q, c.op)
		b.Run(c.q+c.op, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := db.Query(src); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE14_CNF compares evaluation of the disjunctive query with
// and without the CNF range extension (experiment E14).
func BenchmarkE14_CNF(b *testing.B) {
	run := func(b *testing.B, strat engine.Strategy) {
		db := workload.MustUniversity(workload.DefaultConfig(benchScale))
		sel, info, err := calculus.Check(workload.DisjunctiveSelection(), db.Catalog())
		if err != nil {
			b.Fatal(err)
		}
		eng := engine.New(db, nil)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Eval(context.Background(), sel, info, engine.Options{Strategies: strat}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("S1+S2+S3", func(b *testing.B) { run(b, engine.S1|engine.S2|engine.S3) })
	b.Run("S1+S2+S3+SCNF", func(b *testing.B) { run(b, engine.S1|engine.S2|engine.S3|engine.SCNF) })
}

// neJoinSelection pairs professors with the timetable entries of OTHER
// employees: the <> probe scans the whole indexed side per probing
// tuple, so the comparison count is |probe side| × |index side| and the
// planner's choice of probe side dominates the cost.
func neJoinSelection() *calculus.Selection {
	return &calculus.Selection{
		Proj: []calculus.Field{{Var: "e", Col: "ename"}, {Var: "t", Col: "tcnr"}},
		Free: []calculus.Decl{
			{Var: "e", Range: &calculus.RangeExpr{Rel: "employees"}},
			{Var: "t", Range: &calculus.RangeExpr{Rel: "timetable"}},
		},
		Pred: calculus.NewAnd(
			&calculus.Cmp{L: calculus.Field{Var: "e", Col: "estatus"}, Op: value.OpEq, R: calculus.Label{Name: "professor"}},
			&calculus.Cmp{L: calculus.Field{Var: "e", Col: "enr"}, Op: value.OpNe, R: calculus.Field{Var: "t", Col: "tenr"}},
		),
	}
}

// BenchmarkCostBasedJoin compares the static and the cost-based
// combination phase on the join-heavy queries, reporting the
// plan-quality counters (index probes, comparisons, reference tuples)
// next to wall-clock time.
func BenchmarkCostBasedJoin(b *testing.B) {
	queries := []struct {
		name string
		sel  *calculus.Selection
	}{
		{"eq3way", workload.JoinHeavySelection()},
		{"ne", neJoinSelection()},
	}
	for _, q := range queries {
		for _, mode := range []struct {
			name      string
			costBased bool
		}{{"static", false}, {"cost", true}} {
			b.Run(q.name+"/"+mode.name, func(b *testing.B) {
				cfg := workload.DefaultConfig(2 * benchScale)
				cfg.ProfFrac = 0.1
				cfg.SophFrac = 0.1
				db := workload.MustUniversity(cfg)
				sel, info, err := calculus.Check(q.sel, db.Catalog())
				if err != nil {
					b.Fatal(err)
				}
				est := db.Analyze()
				st := &stats.Counters{}
				eng := engine.New(db, st)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					st.Reset()
					opts := engine.Options{Strategies: engine.S1 | engine.S2, CostBased: mode.costBased}
					if mode.costBased {
						opts.Estimator = est
					}
					if _, err := eng.Eval(context.Background(), sel, info, opts); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(st.IndexProbes), "probes/op")
				b.ReportMetric(float64(st.Comparisons), "cmps/op")
				b.ReportMetric(float64(st.RefTuples), "reftuples/op")
			})
		}
	}
}

// BenchmarkParallelCollection measures the parallel collection-phase
// scheduler: the join-heavy three-way join and its skewed variant at a
// scale where scans dominate, executed with 1 (serial), 2, 4, and 8
// workers from a precompiled plan. Results and merged counters are
// identical across worker counts (enginetest proves it); this benchmark
// tracks the wall-clock effect. On multi-core machines the 4-worker run
// is the headline number CI watches; under GOMAXPROCS=1 it degenerates
// to a scheduler-overhead measurement.
func BenchmarkParallelCollection(b *testing.B) {
	joinCfg := workload.DefaultConfig(2000)
	skewCfg := workload.DefaultConfig(2000)
	skewCfg.ProfFrac = 0.95
	skewCfg.SophFrac = 0.05
	workloads := []struct {
		name string
		cfg  workload.Config
	}{
		{"joinheavy", joinCfg},
		{"skewed", skewCfg},
	}
	for _, w := range workloads {
		db := workload.MustUniversity(w.cfg)
		sel, info, err := calculus.Check(workload.JoinHeavySelection(), db.Catalog())
		if err != nil {
			b.Fatal(err)
		}
		est := db.Analyze()
		for _, par := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/workers=%d", w.name, par), func(b *testing.B) {
				eng := engine.New(db, nil)
				plan, err := eng.Compile(sel, info, engine.Options{
					Strategies: engine.S1 | engine.S2, CostBased: true,
					Estimator: est, Parallelism: par,
				})
				if err != nil {
					b.Fatal(err)
				}
				ctx := context.Background()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := plan.Eval(ctx); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkHistogramPlanning compares the uniform (System R) and
// histogram estimators on the heavy-hitter join workload: the uniform
// model believes the filtered facts side is small (1/distinct) when it
// actually keeps ~90% of the rows, so it probes with the wrong side;
// the histogram plan probes with the genuinely smaller dims side. The
// probes/op and reftuples/op metrics are the plan-quality record CI
// tracks (see .github/workflows/ci.yml, BENCH_histogram_planning.json).
// The mutate-replan leg re-executes a prepared plan after a mutation
// every iteration — the path that used to re-Analyze (rescan every
// relation) per version change and now reads the incrementally
// maintained statistics: DB.Analyze is on no hot path here.
func BenchmarkHistogramPlanning(b *testing.B) {
	mk := func(b *testing.B) (*relation.DB, *calculus.Selection, *calculus.Info) {
		b.Helper()
		db := workload.MustSkewedJoin(workload.DefaultSkewedJoinConfig(2500))
		sel, info, err := calculus.Check(workload.SkewedJoinSelection(), db.Catalog())
		if err != nil {
			b.Fatal(err)
		}
		return db, sel, info
	}
	db, sel, info := mk(b)
	est := db.Estimator()
	for _, mode := range []struct {
		name string
		est  *stats.Estimator
	}{{"uniform", est.Uniform()}, {"histogram", est}} {
		b.Run(mode.name, func(b *testing.B) {
			st := &stats.Counters{}
			eng := engine.New(db, st)
			plan, err := eng.Compile(sel, info, engine.Options{
				Strategies: engine.S1 | engine.S2, CostBased: true, Estimator: mode.est,
			})
			if err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st.Reset()
				if _, err := plan.Eval(ctx); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(st.IndexProbes), "probes/op")
			b.ReportMetric(float64(st.RefTuples), "reftuples/op")
			b.ReportMetric(float64(st.Comparisons), "cmps/op")
		})
	}
	b.Run("mutate-replan", func(b *testing.B) {
		db, sel, info := mk(b)
		facts := db.MustRelation("facts")
		eng := engine.New(db, nil)
		// No explicit estimator: the plan derives statistics itself and
		// refreshes them on every version change.
		plan, err := eng.Compile(sel, info, engine.Options{
			Strategies: engine.S1 | engine.S2, CostBased: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := facts.Insert([]value.Value{
				value.Int(int64(1<<19 + i)), value.Int(0), value.Int(int64(i % 509)),
			}); err != nil {
				b.Fatal(err)
			}
			if _, err := plan.Eval(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkParser measures parsing of the full Figure 1 DDL plus the
// sample query.
func BenchmarkParser(b *testing.B) {
	db := New()
	db.MustExec(sampleScript)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(example21); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimizerTransforms measures strategies 3 and 4 as pure
// transformations.
func BenchmarkOptimizerTransforms(b *testing.B) {
	_, sel, _ := benchDB(b)
	sf, err := normalize.Standardize(sel, normalize.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("S3_Extract", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			optimizer.ExtractRanges(sf)
		}
	})
	b.Run("S4_Eliminate", func(b *testing.B) {
		extracted, _ := optimizer.ExtractRanges(sf)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			x := optimizer.FromStandardForm(extracted)
			optimizer.EliminateQuantifiers(x)
		}
	})
}

// BenchmarkPreparedRepeat measures the compile/execute split on the
// Figure 1 university workload running the paper's Example 2.1 query
// repeatedly: "oneshot" compiles from scratch every iteration
// (WithoutPlanCache), "cached" goes through the one-shot Query path and
// its LRU plan cache, and "prepared" re-executes a single Stmt.
// Prepared and cached executions skip parsing, checking,
// standardization, and logical optimization; the gap between "oneshot"
// and the other two is the amortized compilation cost that CI watches
// for plan-cache regressions.
func BenchmarkPreparedRepeat(b *testing.B) {
	mk := func(b *testing.B) *Database {
		b.Helper()
		db := New()
		db.MustExec(sampleScript)
		return db
	}
	b.Run("oneshot", func(b *testing.B) {
		db := mk(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := db.Query(example21, WithoutPlanCache()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		db := mk(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := db.Query(example21); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("prepared", func(b *testing.B) {
		db := mk(b)
		stmt, err := db.Prepare(example21)
		if err != nil {
			b.Fatal(err)
		}
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := stmt.Query(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
	// The traced leg re-executes the prepared statement with a live
	// span recorder per iteration; the delta against "prepared" is the
	// full cost of recording a span tree.
	b.Run("prepared_traced", func(b *testing.B) {
		db := mk(b)
		stmt, err := db.Prepare(example21)
		if err != nil {
			b.Fatal(err)
		}
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tr := obs.NewTrace("")
			if _, err := stmt.Query(obs.With(ctx, tr.Root())); err != nil {
				b.Fatal(err)
			}
			tr.Finish()
		}
	})
}

// batchScanSelection is the selective full-scan shape the vectorized
// path targets: the bulkiest relation (timetable, 2n rows) filtered by
// a conjunctive chain of monadic band restrictions — a schedule-window
// query: employees inside nested validity bands, lectures inside
// nested time windows, and finally a narrow employee band whose
// conjunction survives only a handful of rows. The wide bands run at
// nearly full density, so predicate evaluation dominates the scan and
// the delta between the path=tuple and path=batch legs is the per-row
// cost of a closure call and an interface Compare per predicate versus
// one word-at-a-time FilterOrdBits pass per predicate over an unboxed
// column the scan materialized once.
func batchScanSelection(n int64) *calculus.Selection {
	band := func(col string, op value.CmpOp, v int64) calculus.Formula {
		return &calculus.Cmp{L: calculus.Field{Var: "t", Col: col}, Op: op, R: calculus.Const{Val: value.Int(v)}}
	}
	lecture := func(k int64) int64 { return 8000900 + k*100000 } // the k-th timetable slot
	return &calculus.Selection{
		Proj: []calculus.Field{{Var: "t", Col: "tcnr"}, {Var: "t", Col: "troom"}},
		Free: []calculus.Decl{{Var: "t", Range: &calculus.RangeExpr{Rel: "timetable"}}},
		Pred: calculus.NewAnd(
			band("tenr", value.OpGe, n/50), // wide bands: ~80-98% pass each
			band("tenr", value.OpLt, n-n/50),
			band("ttime", value.OpGe, lecture(5)),
			band("ttime", value.OpLt, lecture(95)),
			band("tenr", value.OpGe, n/10),
			band("tenr", value.OpLt, n-n/10),
			band("ttime", value.OpGe, lecture(10)),
			band("ttime", value.OpLt, lecture(90)),
			band("tenr", value.OpGe, n/2), // narrow band on the survivors
			band("tenr", value.OpLt, n/2+n/250),
		),
	}
}

// BenchmarkBatchScan compares the forced tuple-at-a-time collection
// path against the default vectorized batch path on the selective full
// scan, from the same precompiled plan. Results and counters are
// bit-identical across the legs (enginetest and batch_test prove it);
// this benchmark tracks the wall-clock ratio CI records in
// BENCH_batch_exec.json — the batch leg is the one expected to hold a
// >=2x advantage.
func BenchmarkBatchScan(b *testing.B) {
	db := workload.MustUniversity(workload.DefaultConfig(25000))
	db.Quiesce() // drain the population's statistics rebuilds off the timed region
	sel, info, err := calculus.Check(batchScanSelection(25000), db.Catalog())
	if err != nil {
		b.Fatal(err)
	}
	for _, leg := range []struct {
		name string
		exec engine.ExecMode
	}{
		{"path=tuple", engine.ExecTuple},
		{"path=batch", engine.ExecAuto},
	} {
		b.Run(leg.name, func(b *testing.B) {
			eng := engine.New(db, nil)
			plan, err := eng.Compile(sel, info, engine.Options{
				Strategies: engine.AllStrategies, Exec: leg.exec,
			})
			if err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := plan.Eval(ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// parallelCombinationSelection fans the three-way join of
// JoinHeavySelection out over four weekday disjuncts. The standard
// (disjunctive normal) form lands each day test in its own conjunction,
// and every conjunction carries BOTH equi-joins (employees-timetable
// and courses-timetable), so the combination phase runs four
// independent greedy hash joins — exactly the per-conjunction jobs the
// parallel combination scheduler spreads across workers.
func parallelCombinationSelection() *calculus.Selection {
	day := func(ord int) calculus.Formula {
		return &calculus.Cmp{L: calculus.Field{Var: "t", Col: "tday"}, Op: value.OpEq,
			R: calculus.Const{Val: value.Enum("daytype", ord)}}
	}
	return &calculus.Selection{
		Proj: []calculus.Field{{Var: "e", Col: "ename"}, {Var: "c", Col: "cnr"}},
		Free: []calculus.Decl{
			{Var: "e", Range: &calculus.RangeExpr{Rel: "employees"}},
			{Var: "c", Range: &calculus.RangeExpr{Rel: "courses"}},
			{Var: "t", Range: &calculus.RangeExpr{Rel: "timetable"}},
		},
		Pred: calculus.NewAnd(
			&calculus.Cmp{L: calculus.Field{Var: "e", Col: "enr"}, Op: value.OpEq, R: calculus.Field{Var: "t", Col: "tenr"}},
			&calculus.Cmp{L: calculus.Field{Var: "c", Col: "cnr"}, Op: value.OpEq, R: calculus.Field{Var: "t", Col: "tcnr"}},
			calculus.NewOr(calculus.NewOr(day(0), day(1)), calculus.NewOr(day(2), day(3))),
		),
	}
}

// BenchmarkParallelCombination measures the parallel combination phase:
// the four-conjunction disjunctive join executed with 1 (serial), 2,
// and 4 workers from a precompiled plan. The collection phase is shared
// scans either way; the spread across workers is the per-conjunction
// greedy-join work. Results and merged counters are identical across
// worker counts (enginetest proves it); CI records the wall-clock
// effect in BENCH_batch_exec.json.
func BenchmarkParallelCombination(b *testing.B) {
	db := workload.MustUniversity(workload.DefaultConfig(4000))
	db.Quiesce() // drain the population's statistics rebuilds off the timed region
	sel, info, err := calculus.Check(parallelCombinationSelection(), db.Catalog())
	if err != nil {
		b.Fatal(err)
	}
	est := db.Analyze()
	for _, par := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", par), func(b *testing.B) {
			eng := engine.New(db, nil)
			plan, err := eng.Compile(sel, info, engine.Options{
				Strategies: engine.S1 | engine.S2, CostBased: true,
				Estimator: est, Parallelism: par,
			})
			if err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := plan.Eval(ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
