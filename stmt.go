package pascalr

import (
	"context"
	"fmt"

	"pascalr/internal/calculus"
	"pascalr/internal/engine"
	"pascalr/internal/obs"
	"pascalr/internal/parser"
)

// Stmt is a prepared selection: the query is parsed, type-checked,
// optimized, and planned once at Prepare, and each Query or Rows call
// re-executes the compiled plan against the database's current
// contents. Mutations between executions are observed — the plan is
// revalidated against the database's content version, refreshing
// statistics and recompiling only when the Lemma 1 empty-range
// adaptation demands it — so a Stmt trades no correctness for the
// amortized compilation.
//
// A Stmt is safe for concurrent use: executions revalidate and run the
// shared compiled plan under its own synchronization, each counting
// into a private sink.
type Stmt struct {
	d    *Database
	src  string
	c    config
	plan *engine.Plan
}

// Prepare compiles a selection expression for repeated execution.
// Compile-time options — WithStrategies and WithCostBased — are fixed
// here; WithBaseline cannot be prepared (the tuple-substitution oracle
// has no plan to cache).
func (d *Database) Prepare(src string, opts ...Option) (*Stmt, error) {
	return d.PrepareContext(context.Background(), src, opts...)
}

// PrepareContext is Prepare with a context: when the context carries a
// trace span (server sessions and the -trace CLI flag arrange this),
// the parse, check, and compile phases record child spans.
func (d *Database) PrepareContext(ctx context.Context, src string, opts ...Option) (*Stmt, error) {
	return d.prepareShared(ctx, src, d.newConfig(opts))
}

func (d *Database) prepare(ctx context.Context, src string, c config) (*Stmt, error) {
	if c.useBaseline {
		return nil, fmt.Errorf("pascalr: cannot prepare a baseline evaluation")
	}
	sp := obs.SpanFrom(ctx)
	psp := sp.Start("parse")
	sel, err := parser.ParseSelection(src)
	psp.End()
	if err != nil {
		return nil, err
	}
	csp := sp.Start("check")
	checked, info, err := calculus.Check(sel, d.db.Catalog())
	csp.End()
	if err != nil {
		return nil, err
	}
	// No explicit estimator: the engine derives statistics from the
	// database's live snapshots and refreshes them (recompiling the
	// template's cost-gated decisions) whenever they change.
	ksp := sp.Start("compile")
	plan, err := d.eng.CompileCtx(obs.With(ctx, ksp), checked, info, engine.Options{
		Strategies:   engine.Strategy(c.strategies),
		MaxRefTuples: c.maxRefTuples,
		CostBased:    c.costBased,
		Parallelism:  c.parallelism,
	})
	ksp.End()
	if err != nil {
		return nil, err
	}
	return &Stmt{d: d, src: src, c: c, plan: plan}, nil
}

// Src returns the selection source the statement was prepared from.
func (s *Stmt) Src() string { return s.src }

// execConfig merges per-execution options into the prepared
// configuration. Only execution-time options are accepted; the
// compile-time ones are baked into the plan, so changing them requires
// a new Prepare.
func (s *Stmt) execConfig(opts []Option) (config, error) {
	c := s.c
	for _, o := range opts {
		o(&c)
	}
	if c.strategies != s.c.strategies || c.costBased != s.c.costBased || c.useBaseline {
		return config{}, fmt.Errorf("pascalr: WithStrategies, WithCostBased, and WithBaseline are fixed at Prepare; prepare a new statement instead")
	}
	return c, nil
}

// override returns the per-execution option override for one call: the
// reference-tuple budget and the parallelism budget. Statistics need no
// override — the plan derives them from the database's live snapshots
// and refreshes them itself. The override applies to a private copy of
// the plan's options inside the execution, so concurrent calls with
// different execution-time options never contaminate each other.
func (s *Stmt) override(c config) func(*engine.Options) {
	return func(o *engine.Options) {
		o.MaxRefTuples = c.maxRefTuples
		o.Parallelism = c.parallelism
	}
}

// Query re-executes the compiled plan and returns the materialized
// result. The context cancels the evaluation between scanned tuples and
// combination-phase operations; the error is then ctx.Err().
func (s *Stmt) Query(ctx context.Context, opts ...Option) (*Result, error) {
	c, err := s.execConfig(opts)
	if err != nil {
		return nil, err
	}
	rel, err := s.plan.EvalWith(ctx, s.override(c))
	if err != nil {
		return nil, classifyErr(err)
	}
	return newResult(rel), nil
}

// Rows re-executes the compiled plan and returns a streaming cursor:
// the collection and combination phases run eagerly, and the
// construction phase is driven one tuple at a time by Next. Unlike the
// one-shot QueryRows, a prepared cursor performs no stale-read retry —
// a concurrent writer invalidating the stream surfaces ErrStaleRead
// from Rows.Err, and the caller decides whether to re-execute.
func (s *Stmt) Rows(ctx context.Context, opts ...Option) (*Rows, error) {
	c, err := s.execConfig(opts)
	if err != nil {
		return nil, err
	}
	cur, err := s.plan.RowsWith(ctx, s.override(c))
	if err != nil {
		return nil, classifyErr(err)
	}
	return newRows(cur), nil
}
