package pascalr

import (
	"context"
	"sync"
)

// Session is a session-scoped handle on a shared Database: it carries
// its own default execution options (strategy set, planner choice,
// parallelism budget, reference-tuple budget) that apply to every call
// made through it, without touching the database-wide defaults other
// sessions resolve against. The network server gives every connection
// one Session; embedded callers can use them to give independent
// workloads independent tuning.
//
// A Session adds no synchronization of its own beyond its option set:
// the underlying Database remains safe for concurrent use, and one
// Session may be used from multiple goroutines. Per-call Options still
// override the session defaults.
type Session struct {
	db *Database

	mu   sync.RWMutex
	opts []Option
}

// NewSession returns a session handle with the database's current
// defaults (an empty session-level option set).
func (d *Database) NewSession() *Session { return &Session{db: d} }

// SetOptions replaces the session's default options. They are applied
// before per-call options on every subsequent call, so a later
// WithParallelism in a Query call still wins over the session default.
func (s *Session) SetOptions(opts ...Option) {
	s.mu.Lock()
	s.opts = append(s.opts[:0], opts...)
	s.mu.Unlock()
}

// AddOptions appends to the session's default options.
func (s *Session) AddOptions(opts ...Option) {
	s.mu.Lock()
	s.opts = append(s.opts, opts...)
	s.mu.Unlock()
}

// merged returns session defaults followed by per-call options.
func (s *Session) merged(opts []Option) []Option {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.opts) == 0 {
		return opts
	}
	out := make([]Option, 0, len(s.opts)+len(opts))
	out = append(out, s.opts...)
	return append(out, opts...)
}

// Database returns the underlying shared database.
func (s *Session) Database() *Database { return s.db }

// Exec executes a PASCAL/R script; see Database.Exec.
func (s *Session) Exec(src string) error { return s.db.Exec(src) }

// Query evaluates a selection under the session defaults; see
// Database.QueryContext.
func (s *Session) Query(ctx context.Context, src string, opts ...Option) (*Result, error) {
	return s.db.QueryContext(ctx, src, s.merged(opts)...)
}

// QueryRows evaluates a selection into a streaming cursor under the
// session defaults; see Database.QueryRows.
func (s *Session) QueryRows(ctx context.Context, src string, opts ...Option) (*Rows, error) {
	return s.db.QueryRows(ctx, src, s.merged(opts)...)
}

// Prepare compiles a selection under the session defaults; see
// Database.Prepare.
func (s *Session) Prepare(src string, opts ...Option) (*Stmt, error) {
	return s.db.Prepare(src, s.merged(opts)...)
}

// PrepareContext is Prepare with a context; a trace span carried by the
// context records the parse, check, and compile phases.
func (s *Session) PrepareContext(ctx context.Context, src string, opts ...Option) (*Stmt, error) {
	return s.db.PrepareContext(ctx, src, s.merged(opts)...)
}

// ExplainAnalyze executes a selection under the session defaults and
// reports estimated versus actual cardinalities; see
// Database.ExplainAnalyze.
func (s *Session) ExplainAnalyze(ctx context.Context, src string, opts ...Option) (string, error) {
	return s.db.ExplainAnalyze(ctx, src, s.merged(opts)...)
}

// Explain renders the plan under the session defaults; see
// Database.Explain.
func (s *Session) Explain(src string, opts ...Option) (string, error) {
	return s.db.Explain(src, s.merged(opts)...)
}
