package pascalr

import (
	"context"
	"testing"
	"time"

	"pascalr/internal/obs"
)

// BenchmarkTraceOverhead isolates the tracing cost on the prepared
// Example 2.1 query: "off" runs with a bare context (the production
// default — every instrumentation site degenerates to a nil-span
// no-op), "on" records a full span tree per execution. CI publishes
// both legs as the BENCH_trace_overhead artifact.
func BenchmarkTraceOverhead(b *testing.B) {
	mk := func(b *testing.B) *Stmt {
		b.Helper()
		db := New()
		db.MustExec(sampleScript)
		stmt, err := db.Prepare(example21)
		if err != nil {
			b.Fatal(err)
		}
		return stmt
	}
	b.Run("off", func(b *testing.B) {
		stmt := mk(b)
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := stmt.Query(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("on", func(b *testing.B) {
		stmt := mk(b)
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tr := obs.NewTrace("")
			if _, err := stmt.Query(obs.With(ctx, tr.Root())); err != nil {
				b.Fatal(err)
			}
			tr.Finish()
		}
	})
}

// TestTraceOverheadGuard bounds the cost of *disabled* tracing below 5%
// of a prepared query. Comparing two noisy query wall-clocks directly
// is flaky, so the guard measures what actually runs on the disabled
// path — a context lookup plus nil-span method calls — and multiplies
// by a generous over-count of instrumentation sites per query; that
// product must stay under 5% of the untraced query time. The disabled
// path is also asserted allocation-free in internal/obs.
func TestTraceOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-based guard")
	}
	db := New()
	db.MustExec(sampleScript)
	stmt, err := db.Prepare(example21)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	probe := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sp := obs.SpanFrom(ctx)
			c := sp.Start("x")
			c.SetInt("k", 1)
			c.End()
		}
	})
	query := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := stmt.Query(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Example 2.1 touches well under 64 instrumentation sites (phases,
	// per-scan and per-join spans, counter attrs).
	const sitesPerQuery = 64
	overhead := time.Duration(probe.NsPerOp() * sitesPerQuery)
	limit := time.Duration(query.NsPerOp()) * 5 / 100
	if overhead > limit {
		t.Errorf("disabled tracing would cost %v per query (%d sites × %dns), above 5%% of the %v untraced query",
			overhead, sitesPerQuery, probe.NsPerOp(), time.Duration(query.NsPerOp()))
	}
}
