// Command benchjson converts `go test -bench` output on stdin into a
// JSON array on stdout, one object per benchmark result:
//
//	[{"name": "BenchmarkHistogramPlanning/histogram",
//	  "iterations": 30, "ns_per_op": 5352584,
//	  "metrics": {"probes/op": 2651, "reftuples/op": 6014}}]
//
// CI pipes benchmark runs through it to emit BENCH_*.json artifacts, so
// the performance trajectory is machine-readable run over run.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

type result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// benchLine matches one benchmark result line: name (with the
// trailing -GOMAXPROCS stripped), iteration count, ns/op, and any extra
// ReportMetric pairs.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op(.*)$`)

func main() {
	results := []result{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		r := result{Name: m[1], Iterations: iters, NsPerOp: ns}
		fields := strings.Fields(m[4])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[fields[i+1]] = v
		}
		results = append(results, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		// An empty artifact means the bench did not run or its output
		// format changed — fail loudly rather than upload nothing.
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results parsed from stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
