// Command pascalr is an interactive and batch front-end to the PASCAL/R
// query processor. It executes PASCAL/R scripts (TYPE/VAR declarations,
// :=, :+, :- statements) and evaluates selections, optionally printing
// EXPLAIN plans and cost statistics.
//
// Usage:
//
//	pascalr -f schema.pas -f data.pas -q "[<e.ename> OF EACH e IN employees: ...]"
//	pascalr -university 50 -q "..." -strategies s1+s3 -stats
//	pascalr -university 20 -i         # interactive: statements end with ';'
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"

	"pascalr"
	"pascalr/internal/obs"
	"pascalr/internal/workload"
)

type fileList []string

func (f *fileList) String() string     { return strings.Join(*f, ",") }
func (f *fileList) Set(s string) error { *f = append(*f, s); return nil }

func main() {
	var files fileList
	var indexes fileList
	flag.Var(&files, "f", "PASCAL/R script file (repeatable)")
	flag.Var(&indexes, "index", "permanent index rel.col (repeatable)")
	query := flag.String("q", "", "selection expression to evaluate")
	strategies := flag.String("strategies", "all", "strategy set: s0, all, or e.g. s1+s3")
	explain := flag.Bool("explain", false, "print the plan instead of evaluating")
	showStats := flag.Bool("stats", false, "print cost counters after each query")
	useBaseline := flag.Bool("baseline", false, "evaluate by tuple substitution instead of the engine")
	costBased := flag.Bool("cost", false, "plan from cardinality estimates instead of the static order")
	parallel := flag.Int("parallel", 1, "collection-phase scan workers (1 = serial)")
	university := flag.Int("university", 0, "populate the Figure 1 sample database at this scale")
	interactive := flag.Bool("i", false, "read statements and queries from stdin")
	trace := flag.Bool("trace", false, "print each query's span tree (phase and scan/join timings) after execution")
	flag.Parse()

	strat, err := pascalr.ParseStrategy(*strategies)
	if err != nil {
		fatal(err)
	}

	db := pascalr.New()
	db.SetStrategies(strat)
	if *university > 0 {
		if err := loadUniversity(db, *university); err != nil {
			fatal(err)
		}
		fmt.Printf("loaded Figure 1 university database at scale %d\n", *university)
	}
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			fatal(err)
		}
		if err := db.Exec(string(src)); err != nil {
			fatal(fmt.Errorf("%s: %w", f, err))
		}
	}
	for _, ix := range indexes {
		rel, col, ok := strings.Cut(ix, ".")
		if !ok {
			fatal(fmt.Errorf("bad -index %q, want rel.col", ix))
		}
		if err := db.CreateIndex(rel, col); err != nil {
			fatal(err)
		}
	}

	runQuery := func(q string) {
		opts := []pascalr.Option{pascalr.WithStrategies(strat)}
		if *useBaseline {
			opts = append(opts, pascalr.WithBaseline())
		}
		if *costBased {
			opts = append(opts, pascalr.WithCostBased())
		}
		if *parallel > 1 {
			opts = append(opts, pascalr.WithParallelism(*parallel))
		}
		if *explain {
			out, err := db.Explain(q, opts...)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			fmt.Print(out)
			if !*useBaseline {
				// Execute once and report estimated vs actual
				// cardinalities per scan and join, so estimate quality is
				// visible next to the plan. Ctrl-C cancels the run.
				ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
				rep, err := db.ExplainAnalyze(ctx, q, opts...)
				stop()
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					return
				}
				fmt.Println("-- executed --")
				fmt.Print(rep)
			}
			return
		}
		db.ResetStats()
		if *useBaseline {
			// The tuple-substitution oracle observes no context, so no
			// SIGINT handler is installed — Ctrl-C keeps its default
			// process-killing behaviour instead of being swallowed.
			res, err := db.Query(q, opts...)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			fmt.Print(res)
		} else {
			// Ctrl-C cancels the running query (and only it): the signal
			// context is cancelled by SIGINT and released when the query
			// finishes, so the next interrupt reaches the process again.
			ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
			var tr *obs.Trace
			if *trace {
				tr = obs.NewTrace("")
				ctx = obs.With(ctx, tr.Root())
			}
			err := streamQuery(ctx, db, q, opts)
			stop()
			if tr != nil {
				tr.Finish()
				fmt.Print(tr.Render())
			}
			if err != nil {
				if errors.Is(err, context.Canceled) {
					fmt.Fprintln(os.Stderr, "query cancelled")
				} else {
					fmt.Fprintln(os.Stderr, err)
				}
				return
			}
		}
		if *showStats {
			printStats(db.Stats())
		}
	}

	if *query != "" {
		runQuery(*query)
	}
	if *interactive {
		repl(db, runQuery)
	}
	if *query == "" && !*interactive && len(files) == 0 && *university == 0 {
		flag.Usage()
		os.Exit(2)
	}
}

// streamQuery evaluates q through the streaming cursor API, printing
// result tuples as the construction phase yields them — output starts
// before the full result is materialized, and a cancelled context stops
// mid-stream.
func streamQuery(ctx context.Context, db *pascalr.Database, q string, opts []pascalr.Option) error {
	rows, err := db.QueryRows(ctx, q, opts...)
	if err != nil {
		return err
	}
	defer rows.Close()
	cols := rows.Columns()
	fmt.Println(strings.Join(cols, "  "))
	dashes := make([]string, len(cols))
	for i, c := range cols {
		dashes[i] = strings.Repeat("-", len(c))
	}
	fmt.Println(strings.Join(dashes, "  "))
	n := 0
	for rows.Next() {
		parts := make([]string, 0, len(cols))
		for _, v := range rows.Values() {
			parts = append(parts, fmt.Sprintf("%v", v))
		}
		fmt.Println(strings.Join(parts, "  "))
		n++
	}
	if err := rows.Err(); err != nil {
		return err
	}
	fmt.Printf("(%d tuples)\n", n)
	return nil
}

func loadUniversity(db *pascalr.Database, scale int) error {
	// Render schema and data as one script and load it through the
	// public API, so the CLI exercises the same path users do.
	script, err := workload.UniversityScript(scale)
	if err != nil {
		return err
	}
	return db.Exec(script)
}

func printStats(st pascalr.Stats) {
	rels := make([]string, 0, len(st.ScansOf))
	for r := range st.ScansOf {
		rels = append(rels, r)
	}
	sort.Strings(rels)
	fmt.Printf("scans: total=%d", st.TotalScans)
	for _, r := range rels {
		fmt.Printf(" %s=%d", r, st.ScansOf[r])
	}
	fmt.Printf("\ntuples read=%d probes=%d comparisons=%d ref tuples=%d (peak %d)\n",
		st.TuplesRead, st.IndexProbes, st.Comparisons, st.RefTuples, st.PeakRefTuples)
	fmt.Printf("joins: hash=%d cartesian=%d\n", st.HashJoins, st.CartesianJoins)
	if len(st.PlanOrder) > 0 {
		fmt.Printf("scan order: %s\n", strings.Join(st.PlanOrder, " -> "))
	}
}

func repl(db *pascalr.Database, runQuery func(string)) {
	fmt.Println("PASCAL/R — statements end with ';', selections start with '[<'.")
	fmt.Println("Commands: \\q quit, \\d list relations, \\d NAME dump relation.")
	fmt.Println("Ctrl-C cancels the running query.")
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Print("pascalr> ")
		} else {
			fmt.Print("     ... ")
		}
	}
	prompt()
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			switch {
			case trimmed == "\\q":
				return
			case trimmed == "\\d":
				for _, r := range db.Relations() {
					n, _ := db.RelationLen(r)
					fmt.Printf("%s (%d tuples)\n", r, n)
				}
			case strings.HasPrefix(trimmed, "\\d "):
				res, err := db.Dump(strings.TrimSpace(trimmed[3:]))
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
				} else {
					fmt.Print(res)
				}
			default:
				fmt.Fprintln(os.Stderr, "unknown command", trimmed)
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteString("\n")
		full := strings.TrimSpace(buf.String())
		// A selection on its own evaluates as a query once brackets
		// balance; statements wait for the terminating semicolon.
		if strings.HasPrefix(full, "[<") && balanced(full) && !strings.HasSuffix(full, ";") {
			runQuery(full)
			buf.Reset()
		} else if strings.HasSuffix(full, ";") {
			if err := db.Exec(full); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
			buf.Reset()
		}
		prompt()
	}
}

func balanced(s string) bool {
	depth := 0
	for _, c := range s {
		switch c {
		case '[':
			depth++
		case ']':
			depth--
		}
	}
	return depth == 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
