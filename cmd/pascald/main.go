// Command pascald serves a PASCAL/R database over TCP: the binary
// request protocol on -addr, and HTTP monitoring (/metrics,
// /processlist) on -http. SIGINT/SIGTERM trigger a graceful shutdown —
// accepts stop, sessions drain their in-flight request, background
// statistics work quiesces — with a bounded grace period after which
// running statements are cancelled.
//
// Usage:
//
//	pascald -addr :7583 -http :7584 -university 200
//	pascald -addr 127.0.0.1:7583 -f schema.pas -f data.pas -max-sessions 64
//	pascald -data /var/lib/pascald -addr :7583
//
// With -data the database is durable: the directory is opened (or
// created) and recovered to its last durable state, every mutation is
// write-ahead logged, relation contents spill to on-disk SSTables, and
// shutdown takes a final checkpoint. -f scripts still run on startup —
// on a recovered database re-declaring an existing TYPE or VAR is an
// error, so either seed once into an empty directory or serve -data
// alone afterwards.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pascalr"
	"pascalr/internal/server"
	"pascalr/internal/workload"
)

type fileList []string

func (f *fileList) String() string     { return strings.Join(*f, ",") }
func (f *fileList) Set(s string) error { *f = append(*f, s); return nil }

func main() {
	var files fileList
	addr := flag.String("addr", "127.0.0.1:7583", "TCP listen address for the binary protocol")
	httpAddr := flag.String("http", "", "HTTP monitoring address (empty = disabled)")
	maxSessions := flag.Int("max-sessions", server.DefaultMaxSessions, "maximum concurrent sessions")
	university := flag.Int("university", 0, "populate the Figure 1 sample database at this scale")
	parallel := flag.Int("parallel", 0, "database-wide collection-phase parallelism default")
	grace := flag.Duration("grace", 10*time.Second, "graceful-shutdown drain budget")
	dataDir := flag.String("data", "", "durable data directory (empty = in-memory)")
	noFsync := flag.Bool("no-fsync", false, "with -data: skip the per-record WAL fsync")
	slowQuery := flag.Duration("slow-query", 0, "log statements slower than this threshold, e.g. 100ms (0 = disabled)")
	logFormat := flag.String("log-format", "text", "structured log format: text or json")
	flag.Parse()

	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		fatal(fmt.Errorf("bad -log-format %q, want text or json", *logFormat))
	}
	logger := slog.New(handler)

	var db *pascalr.Database
	if *dataDir != "" {
		var opts []pascalr.DirOption
		if *noFsync {
			opts = append(opts, pascalr.WithFsyncNever())
		}
		var err error
		if db, err = pascalr.OpenDir(*dataDir, opts...); err != nil {
			fatal(err)
		}
		defer db.Close()
		fmt.Printf("recovered durable database in %s\n", *dataDir)
	} else {
		db = pascalr.New()
	}
	if *parallel > 1 {
		db.SetParallelism(*parallel)
	}
	if *university > 0 {
		script, err := workload.UniversityScript(*university)
		if err != nil {
			fatal(err)
		}
		if err := db.Exec(script); err != nil {
			fatal(err)
		}
		fmt.Printf("loaded Figure 1 university database at scale %d\n", *university)
	}
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			fatal(err)
		}
		if err := db.Exec(string(src)); err != nil {
			fatal(fmt.Errorf("%s: %w", f, err))
		}
	}

	srv := server.New(db, server.Config{
		Addr:        *addr,
		MonitorAddr: *httpAddr,
		MaxSessions: *maxSessions,
		Logger:      logger,
		SlowQuery:   *slowQuery,
	})
	if err := srv.Start(); err != nil {
		fatal(err)
	}
	fmt.Printf("pascald listening on %s", srv.Addr())
	if m := srv.MonitorAddr(); m != nil {
		fmt.Printf(" (monitor http://%s)", m)
	}
	fmt.Println()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	fmt.Println("pascald: draining sessions")
	ctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "pascald: shutdown:", err)
		os.Exit(1)
	}
	fmt.Println("pascald: stopped")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
