// Command experiments regenerates the paper's evaluation artifacts —
// every figure and worked example of Jarke & Schmidt (SIGMOD 1982) —
// as measured tables. See DESIGN.md for the experiment index and
// EXPERIMENTS.md for recorded outputs.
//
// Usage:
//
//	go run ./cmd/experiments            # run everything at default scales
//	go run ./cmd/experiments -run E7    # one experiment
//	go run ./cmd/experiments -scales 20,50,100
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"pascalr/internal/experiments"
)

func main() {
	run := flag.String("run", "all", "experiment id (E1..E12) or 'all'")
	scalesArg := flag.String("scales", "20,50,100", "comma-separated database scales")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}
	var scales []int
	for _, s := range strings.Split(*scalesArg, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "bad scale %q\n", s)
			os.Exit(2)
		}
		scales = append(scales, n)
	}
	if err := experiments.Run(*run, os.Stdout, scales); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
