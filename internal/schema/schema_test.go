package schema

import (
	"strings"
	"testing"

	"pascalr/internal/value"
)

func TestEnumType(t *testing.T) {
	st, err := EnumType("statustype", "student", "technician", "assistant", "professor")
	if err != nil {
		t.Fatal(err)
	}
	ord, ok := st.Ordinal("professor")
	if !ok || ord != 3 {
		t.Errorf("Ordinal(professor) = %d,%v", ord, ok)
	}
	if _, ok := st.Ordinal("janitor"); ok {
		t.Errorf("unknown label resolved")
	}
	if st.Label(1) != "technician" || st.Label(9) != "" {
		t.Errorf("Label lookup wrong")
	}
}

func TestEnumTypeErrors(t *testing.T) {
	if _, err := EnumType("", "a"); err == nil {
		t.Errorf("anonymous enum accepted")
	}
	if _, err := EnumType("t"); err == nil {
		t.Errorf("empty enum accepted")
	}
	if _, err := EnumType("t", "a", "a"); err == nil {
		t.Errorf("duplicate label accepted")
	}
}

func TestTypeCheck(t *testing.T) {
	yr := IntType("yeartype", 1900, 1999)
	if err := yr.Check(value.Int(1977)); err != nil {
		t.Errorf("1977 rejected: %v", err)
	}
	if err := yr.Check(value.Int(2001)); err == nil {
		t.Errorf("2001 accepted in 1900..1999")
	}
	if err := yr.Check(value.String_("x")); err == nil {
		t.Errorf("string accepted for int type")
	}

	nm := StringType("nametype", 10)
	if err := nm.Check(value.String_("Highman")); err != nil {
		t.Errorf("short string rejected: %v", err)
	}
	if err := nm.Check(value.String_("longer than ten")); err == nil {
		t.Errorf("overlong string accepted")
	}

	st, _ := EnumType("statustype", "student", "professor")
	if err := st.Check(value.Enum("statustype", 1)); err != nil {
		t.Errorf("valid enum rejected: %v", err)
	}
	if err := st.Check(value.Enum("othertype", 1)); err == nil {
		t.Errorf("wrong enum type accepted")
	}
	if err := st.Check(value.Enum("statustype", 5)); err == nil {
		t.Errorf("out-of-range ordinal accepted")
	}

	if err := BoolType().Check(value.Bool(true)); err != nil {
		t.Errorf("bool rejected: %v", err)
	}

	rt := RefType("employees")
	if err := rt.Check(value.Ref(1, 2, 0)); err != nil {
		t.Errorf("ref rejected: %v", err)
	}
}

func TestComparable(t *testing.T) {
	a := IntType("", 1, 99)
	b := IntType("", 1900, 1999)
	if !a.Comparable(b) {
		t.Errorf("int subranges not comparable")
	}
	e1, _ := EnumType("t1", "x")
	e2, _ := EnumType("t2", "x")
	if e1.Comparable(e2) {
		t.Errorf("different enum types comparable")
	}
	if !e1.Comparable(e1) {
		t.Errorf("same enum type not comparable")
	}
	if a.Comparable(StringType("", 4)) {
		t.Errorf("int comparable with string")
	}
	r1, r2 := RefType("a"), RefType("b")
	if r1.Comparable(r2) || !r1.Comparable(RefType("a")) {
		t.Errorf("ref comparability wrong")
	}
}

func TestFormatUsesEnumLabels(t *testing.T) {
	st, _ := EnumType("statustype", "student", "professor")
	if got := st.Format(value.Enum("statustype", 1)); got != "professor" {
		t.Errorf("Format = %q", got)
	}
	if got := IntType("", 0, 9).Format(value.Int(7)); got != "7" {
		t.Errorf("int Format = %q", got)
	}
}

func employeesSchema(t *testing.T) *RelSchema {
	t.Helper()
	st, _ := EnumType("statustype", "student", "technician", "assistant", "professor")
	s, err := NewRelSchema("employees", []Column{
		{Name: "enr", Type: IntType("enumbertype", 1, 99)},
		{Name: "ename", Type: StringType("nametype", 10)},
		{Name: "estatus", Type: st},
	}, []string{"enr"})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRelSchema(t *testing.T) {
	s := employeesSchema(t)
	if i, ok := s.ColIndex("ename"); !ok || i != 1 {
		t.Errorf("ColIndex(ename) = %d,%v", i, ok)
	}
	if _, ok := s.ColIndex("nope"); ok {
		t.Errorf("unknown column resolved")
	}
	if got := s.KeyIndexes(); len(got) != 1 || got[0] != 0 {
		t.Errorf("KeyIndexes = %v", got)
	}
	tup := []value.Value{value.Int(20), value.String_("Highman"), value.Enum("statustype", 1)}
	if err := s.CheckTuple(tup); err != nil {
		t.Errorf("valid tuple rejected: %v", err)
	}
	if err := s.CheckTuple(tup[:2]); err == nil {
		t.Errorf("short tuple accepted")
	}
	bad := []value.Value{value.Int(200), value.String_("x"), value.Enum("statustype", 1)}
	if err := s.CheckTuple(bad); err == nil {
		t.Errorf("out-of-subrange key accepted")
	}
	key := s.KeyOf(tup)
	if len(key) != 1 || key[0].AsInt() != 20 {
		t.Errorf("KeyOf = %v", key)
	}
	if s.EncodeKeyOf(tup) != value.EncodeKey(key) {
		t.Errorf("EncodeKeyOf mismatch")
	}
}

func TestRelSchemaCompositeKey(t *testing.T) {
	it := IntType("", 1, 99)
	s, err := NewRelSchema("timetable", []Column{
		{Name: "tenr", Type: it},
		{Name: "tcnr", Type: it},
		{Name: "tday", Type: it},
		{Name: "ttime", Type: it},
	}, []string{"tenr", "tcnr", "tday"})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.KeyIndexes(); len(got) != 3 {
		t.Errorf("KeyIndexes = %v", got)
	}
	tup := []value.Value{value.Int(1), value.Int(2), value.Int(3), value.Int(4)}
	if k := s.KeyOf(tup); k[2].AsInt() != 3 {
		t.Errorf("composite KeyOf = %v", k)
	}
}

func TestRelSchemaErrors(t *testing.T) {
	it := IntType("", 0, 9)
	col := []Column{{Name: "a", Type: it}}
	cases := []struct {
		name string
		cols []Column
		key  []string
	}{
		{"", col, []string{"a"}},
		{"r", nil, []string{"a"}},
		{"r", col, nil},
		{"r", []Column{{Name: "", Type: it}}, []string{"a"}},
		{"r", []Column{{Name: "a", Type: nil}}, []string{"a"}},
		{"r", []Column{{Name: "a", Type: it}, {Name: "a", Type: it}}, []string{"a"}},
		{"r", col, []string{"b"}},
		{"r", col, []string{"a", "a"}},
	}
	for i, c := range cases {
		if _, err := NewRelSchema(c.name, c.cols, c.key); err == nil {
			t.Errorf("case %d: invalid schema accepted", i)
		}
	}
}

func TestCatalog(t *testing.T) {
	c := NewCatalog()
	st, _ := EnumType("statustype", "student", "professor")
	if err := c.DefineType(st); err != nil {
		t.Fatal(err)
	}
	if err := c.DefineType(st); err == nil {
		t.Errorf("duplicate type accepted")
	}
	if err := c.DefineType(IntType("", 0, 1)); err == nil {
		t.Errorf("anonymous type registered")
	}
	got, ok := c.Type("statustype")
	if !ok || got != st {
		t.Errorf("Type lookup failed")
	}

	s := employeesSchema(t)
	if err := c.DefineRelation(s); err != nil {
		t.Fatal(err)
	}
	if err := c.DefineRelation(s); err == nil {
		t.Errorf("duplicate relation accepted")
	}
	if rels := c.Relations(); len(rels) != 1 || rels[0] != "employees" {
		t.Errorf("Relations = %v", rels)
	}

	v, typ, ok := c.EnumValue("professor")
	if !ok || typ.Name != "statustype" || v.EnumOrd() != 1 {
		t.Errorf("EnumValue(professor) = %v %v %v", v, typ, ok)
	}
	if _, _, ok := c.EnumValue("nothing"); ok {
		t.Errorf("unknown label resolved")
	}
	// Ambiguity: same label in two types.
	dup, _ := EnumType("other", "professor")
	_ = c.DefineType(dup)
	if _, _, ok := c.EnumValue("professor"); ok {
		t.Errorf("ambiguous label resolved")
	}
}

func TestStringRendering(t *testing.T) {
	s := employeesSchema(t)
	str := s.String()
	for _, want := range []string{"employees", "<enr>", "ename", "statustype"} {
		if !strings.Contains(str, want) {
			t.Errorf("String() = %q missing %q", str, want)
		}
	}
}
