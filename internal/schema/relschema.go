package schema

import (
	"fmt"
	"strings"

	"pascalr/internal/value"
)

// Column is one component of a relation schema.
type Column struct {
	Name string
	Type *Type
}

// RelSchema describes a RELATION declaration: its component list and the
// key component identifiers (the list in angular brackets of Figure 1).
type RelSchema struct {
	Name string
	Cols []Column
	Key  []string

	colIdx map[string]int
	keyIdx []int
}

// NewRelSchema builds and validates a relation schema. Component names
// must be unique, and every key component must exist.
func NewRelSchema(name string, cols []Column, key []string) (*RelSchema, error) {
	if name == "" {
		return nil, fmt.Errorf("schema: relation must be named")
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("schema: relation %s has no components", name)
	}
	if len(key) == 0 {
		return nil, fmt.Errorf("schema: relation %s has no key", name)
	}
	s := &RelSchema{Name: name, Cols: cols, Key: key, colIdx: make(map[string]int, len(cols))}
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("schema: relation %s: component %d unnamed", name, i)
		}
		if c.Type == nil {
			return nil, fmt.Errorf("schema: relation %s: component %s has no type", name, c.Name)
		}
		if _, dup := s.colIdx[c.Name]; dup {
			return nil, fmt.Errorf("schema: relation %s: duplicate component %s", name, c.Name)
		}
		s.colIdx[c.Name] = i
	}
	seen := make(map[string]bool, len(key))
	for _, k := range key {
		i, ok := s.colIdx[k]
		if !ok {
			return nil, fmt.Errorf("schema: relation %s: key component %s not declared", name, k)
		}
		if seen[k] {
			return nil, fmt.Errorf("schema: relation %s: key component %s repeated", name, k)
		}
		seen[k] = true
		s.keyIdx = append(s.keyIdx, i)
	}
	return s, nil
}

// MustRelSchema is NewRelSchema that panics on error; for tests and
// built-in declarations.
func MustRelSchema(name string, cols []Column, key []string) *RelSchema {
	s, err := NewRelSchema(name, cols, key)
	if err != nil {
		panic(err)
	}
	return s
}

// ColIndex returns the position of the named component.
func (s *RelSchema) ColIndex(name string) (int, bool) {
	i, ok := s.colIdx[name]
	return i, ok
}

// Col returns the named column.
func (s *RelSchema) Col(name string) (Column, bool) {
	if i, ok := s.colIdx[name]; ok {
		return s.Cols[i], true
	}
	return Column{}, false
}

// KeyIndexes returns the column positions of the key components, in key
// declaration order.
func (s *RelSchema) KeyIndexes() []int { return s.keyIdx }

// KeyOf extracts the key values of a tuple, in key declaration order.
func (s *RelSchema) KeyOf(tuple []value.Value) []value.Value {
	key := make([]value.Value, len(s.keyIdx))
	for i, ci := range s.keyIdx {
		key[i] = tuple[ci]
	}
	return key
}

// EncodeKeyOf returns the map-key encoding of a tuple's key values.
func (s *RelSchema) EncodeKeyOf(tuple []value.Value) string {
	dst := make([]byte, 0, 16*len(s.keyIdx))
	for _, ci := range s.keyIdx {
		dst = value.AppendKey(dst, tuple[ci])
	}
	return string(dst)
}

// CheckTuple verifies arity and per-component types.
func (s *RelSchema) CheckTuple(tuple []value.Value) error {
	if len(tuple) != len(s.Cols) {
		return fmt.Errorf("schema: relation %s: tuple has %d components, want %d",
			s.Name, len(tuple), len(s.Cols))
	}
	for i, v := range tuple {
		if err := s.Cols[i].Type.Check(v); err != nil {
			return fmt.Errorf("schema: relation %s component %s: %w", s.Name, s.Cols[i].Name, err)
		}
	}
	return nil
}

// String renders the declaration in PASCAL/R style.
func (s *RelSchema) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s : RELATION <%s> OF RECORD ", s.Name, strings.Join(s.Key, ","))
	for i, c := range s.Cols {
		if i > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "%s : %s", c.Name, c.Type)
	}
	b.WriteString(" END")
	return b.String()
}

// Catalog holds a database's type and relation declarations.
type Catalog struct {
	types     map[string]*Type
	rels      map[string]*RelSchema
	relOrder  []string
	typeOrder []string
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{types: make(map[string]*Type), rels: make(map[string]*RelSchema)}
}

// DefineType registers a named type.
func (c *Catalog) DefineType(t *Type) error {
	if t.Name == "" {
		return fmt.Errorf("schema: cannot register anonymous type")
	}
	if _, dup := c.types[t.Name]; dup {
		return fmt.Errorf("schema: type %s already declared", t.Name)
	}
	c.types[t.Name] = t
	c.typeOrder = append(c.typeOrder, t.Name)
	return nil
}

// Types returns the declared type names in declaration order — the
// deterministic iteration the durable checkpoint serializer needs.
func (c *Catalog) Types() []string {
	out := make([]string, len(c.typeOrder))
	copy(out, c.typeOrder)
	return out
}

// Type looks up a named type.
func (c *Catalog) Type(name string) (*Type, bool) {
	t, ok := c.types[name]
	return t, ok
}

// DefineRelation registers a relation schema.
func (c *Catalog) DefineRelation(s *RelSchema) error {
	if _, dup := c.rels[s.Name]; dup {
		return fmt.Errorf("schema: relation %s already declared", s.Name)
	}
	c.rels[s.Name] = s
	c.relOrder = append(c.relOrder, s.Name)
	return nil
}

// Relation looks up a relation schema.
func (c *Catalog) Relation(name string) (*RelSchema, bool) {
	s, ok := c.rels[name]
	return s, ok
}

// Relations returns the relation names in declaration order.
func (c *Catalog) Relations() []string {
	out := make([]string, len(c.relOrder))
	copy(out, c.relOrder)
	return out
}

// EnumValue resolves a bare label against all declared enumeration types.
// It returns the value and its type if the label belongs to exactly one
// enumeration.
func (c *Catalog) EnumValue(label string) (value.Value, *Type, bool) {
	var found *Type
	var ord int
	for _, t := range c.types {
		if o, ok := t.Ordinal(label); ok {
			if found != nil {
				return value.Value{}, nil, false // ambiguous
			}
			found, ord = t, o
		}
	}
	if found == nil {
		return value.Value{}, nil, false
	}
	return value.Enum(found.Name, ord), found, true
}
