// Package schema models PASCAL/R data definitions: component types
// (subranges, packed character arrays, booleans, enumerations, and
// reference types), relation schemas with their key component lists, and
// the catalog that holds a database's declarations.
//
// It corresponds to the TYPE/VAR sections of Figure 1 of the paper: a
// RELATION holds a variable number of identically structured elements,
// the elements are defined by component types and denoted by component
// identifiers, and the component list in angular brackets denotes the
// key.
package schema

import (
	"fmt"
	"strings"

	"pascalr/internal/value"
)

// TypeKind classifies component types.
type TypeKind uint8

// The component type kinds.
const (
	TInt    TypeKind = iota // integer subrange, e.g. 1..99
	TString                 // packed array of char, e.g. PACKED ARRAY [1..10] OF char
	TBool                   // BOOLEAN
	TEnum                   // enumeration, e.g. (student, technician, assistant, professor)
	TRef                    // reference to elements of a relation, e.g. @employees
)

// Type describes one component type. Types are immutable after creation.
type Type struct {
	Kind   TypeKind
	Name   string   // declared type name; may be "" for anonymous types
	Lo, Hi int64    // TInt: inclusive subrange bounds
	MaxLen int      // TString: fixed length of the packed array
	Labels []string // TEnum: labels in declaration order
	RefRel string   // TRef: name of the referenced relation

	labelOrd map[string]int
}

// IntType returns an integer subrange type lo..hi.
func IntType(name string, lo, hi int64) *Type {
	return &Type{Kind: TInt, Name: name, Lo: lo, Hi: hi}
}

// StringType returns a packed-character-array type of the given length.
func StringType(name string, maxLen int) *Type {
	return &Type{Kind: TString, Name: name, MaxLen: maxLen}
}

// BoolType returns the boolean type.
func BoolType() *Type { return &Type{Kind: TBool, Name: "boolean"} }

// EnumType returns an enumeration type with the given labels. Enumeration
// values are ordered by declaration ordinal, as in PASCAL.
func EnumType(name string, labels ...string) (*Type, error) {
	if name == "" {
		return nil, fmt.Errorf("schema: enumeration type must be named")
	}
	if len(labels) == 0 {
		return nil, fmt.Errorf("schema: enumeration type %s has no labels", name)
	}
	ord := make(map[string]int, len(labels))
	for i, l := range labels {
		if _, dup := ord[l]; dup {
			return nil, fmt.Errorf("schema: enumeration type %s: duplicate label %s", name, l)
		}
		ord[l] = i
	}
	return &Type{Kind: TEnum, Name: name, Labels: labels, labelOrd: ord}, nil
}

// RefType returns a reference type @rel, as used by the auxiliary
// structures of Figure 2 (single lists, indirect joins, indexes).
func RefType(rel string) *Type {
	return &Type{Kind: TRef, Name: "@" + rel, RefRel: rel}
}

// Ordinal returns the declaration ordinal of an enumeration label.
func (t *Type) Ordinal(label string) (int, bool) {
	if t.Kind != TEnum {
		return 0, false
	}
	ord, ok := t.labelOrd[label]
	return ord, ok
}

// Label returns the enumeration label for an ordinal, or "" if out of
// range.
func (t *Type) Label(ord int) string {
	if t.Kind != TEnum || ord < 0 || ord >= len(t.Labels) {
		return ""
	}
	return t.Labels[ord]
}

// ValueKind returns the value.Kind that values of this type carry.
func (t *Type) ValueKind() value.Kind {
	switch t.Kind {
	case TInt:
		return value.KindInt
	case TString:
		return value.KindString
	case TBool:
		return value.KindBool
	case TEnum:
		return value.KindEnum
	case TRef:
		return value.KindRef
	default:
		return value.KindInvalid
	}
}

// Check reports whether v is a legal value of this type, including
// subrange bounds, string length, enum type identity and ordinal range.
func (t *Type) Check(v value.Value) error {
	if v.Kind() != t.ValueKind() {
		return fmt.Errorf("schema: %s value supplied for component type %s", v.Kind(), t)
	}
	switch t.Kind {
	case TInt:
		if n := v.AsInt(); n < t.Lo || n > t.Hi {
			return fmt.Errorf("schema: %d outside subrange %d..%d", n, t.Lo, t.Hi)
		}
	case TString:
		if s := v.AsString(); len(s) > t.MaxLen {
			return fmt.Errorf("schema: string %q longer than packed array length %d", s, t.MaxLen)
		}
	case TEnum:
		if v.EnumType() != t.Name {
			return fmt.Errorf("schema: enum value of type %s supplied for type %s", v.EnumType(), t.Name)
		}
		if ord := v.EnumOrd(); ord < 0 || ord >= len(t.Labels) {
			return fmt.Errorf("schema: enum ordinal %d out of range for type %s", ord, t.Name)
		}
	}
	return nil
}

// Comparable reports whether values of types t and u may appear on the
// two sides of a join term. The calculus is many-sorted: integers compare
// with integers (regardless of subrange), strings with strings, booleans
// with booleans, enums only within the same enumeration type, and
// references only to the same relation.
func (t *Type) Comparable(u *Type) bool {
	if t.Kind != u.Kind {
		return false
	}
	switch t.Kind {
	case TEnum:
		return t.Name == u.Name
	case TRef:
		return t.RefRel == u.RefRel
	default:
		return true
	}
}

// Format renders a value of this type for display, using enum labels.
func (t *Type) Format(v value.Value) string {
	if t.Kind == TEnum && v.Kind() == value.KindEnum {
		if l := t.Label(v.EnumOrd()); l != "" {
			return l
		}
	}
	return v.String()
}

// String renders the type declaration.
func (t *Type) String() string {
	switch t.Kind {
	case TInt:
		if t.Name != "" {
			return t.Name
		}
		return fmt.Sprintf("%d..%d", t.Lo, t.Hi)
	case TString:
		if t.Name != "" {
			return t.Name
		}
		return fmt.Sprintf("PACKED ARRAY [1..%d] OF char", t.MaxLen)
	case TBool:
		return "BOOLEAN"
	case TEnum:
		if t.Name != "" {
			return t.Name
		}
		return "(" + strings.Join(t.Labels, ", ") + ")"
	case TRef:
		return "@" + t.RefRel
	default:
		return "<invalid type>"
	}
}
