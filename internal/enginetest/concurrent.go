package enginetest

import (
	"context"
	"sync"
	"testing"

	"pascalr/internal/calculus"
	"pascalr/internal/engine"
	"pascalr/internal/parser"
	"pascalr/internal/relation"
	"pascalr/internal/stats"
)

// RunConcurrent is the concurrent-differential mode: one query runs
// under every strategy set × {static, cost-based} planner with
// `goroutines` goroutines sharing one engine and one compiled plan over
// one database. Every goroutine's result must equal the serial run's,
// and the engine's merged counters must equal exactly `goroutines`
// copies of the serial run's counters — executions may interleave
// arbitrarily but must neither lose nor duplicate work. Run it under
// -race: it drives every shared structure (plan revalidation, counter
// merging, index probe sorting, the database content lock) from many
// goroutines at once.
func RunConcurrent(t *testing.T, label string, db *relation.DB, src string, goroutines int) {
	t.Helper()
	ctx := context.Background()
	sel, err := parser.ParseSelection(src)
	if err != nil {
		t.Fatalf("%s: parse: %v", label, err)
	}
	checked, info, err := calculus.Check(sel, db.Catalog())
	if err != nil {
		t.Fatalf("%s: check: %v", label, err)
	}
	est := db.Estimator()
	for _, strat := range StrategySets() {
		for _, costBased := range []bool{false, true} {
			opts := engine.Options{Strategies: strat, CostBased: costBased, Parallelism: 2}
			if costBased {
				opts.Estimator = est
			}

			// Serial reference run, instrumented.
			serialOpts := opts
			serialOpts.Parallelism = 1
			stRef := &stats.Counters{}
			want, err := engine.New(db, stRef).Eval(ctx, checked, info, serialOpts)
			if err != nil {
				t.Fatalf("%s [%s cost=%v]: serial reference: %v", label, strat, costBased, err)
			}
			wantKey := RelKey(want)

			// Concurrent runs: one engine, one compiled plan, N
			// goroutines — each execution itself parallel.
			stShared := &stats.Counters{}
			eng := engine.New(db, stShared)
			plan, err := eng.Compile(checked, info, opts)
			if err != nil {
				t.Fatalf("%s [%s cost=%v]: compile: %v", label, strat, costBased, err)
			}
			keys := make([]string, goroutines)
			errs := make([]error, goroutines)
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					res, err := plan.Eval(ctx)
					if err != nil {
						errs[g] = err
						return
					}
					keys[g] = RelKey(res)
				}(g)
			}
			wg.Wait()
			for g := 0; g < goroutines; g++ {
				if errs[g] != nil {
					t.Fatalf("%s [%s cost=%v]: goroutine %d: %v", label, strat, costBased, g, errs[g])
				}
				if keys[g] != wantKey {
					t.Fatalf("%s [%s cost=%v]: goroutine %d result mismatch", label, strat, costBased, g)
				}
			}
			wantFP := stRef.Scale(goroutines).Fingerprint()
			if gotFP := stShared.Fingerprint(); gotFP != wantFP {
				t.Fatalf("%s [%s cost=%v]: merged counters of %d concurrent runs != %d× serial\nwant %s\ngot  %s",
					label, strat, costBased, goroutines, goroutines, wantFP, gotFP)
			}
		}
	}
}
