package enginetest

import (
	"context"
	"testing"

	"pascalr/internal/calculus"
	"pascalr/internal/engine"
	"pascalr/internal/obs"
	"pascalr/internal/parser"
	"pascalr/internal/stats"
)

// TestTracedFingerprintIdentity proves that span tracing is invisible
// to execution: for every table query under the full 32-combo strategy
// matrix × all planner modes × serial and parallel collection, a run
// with a live trace on the context produces the exact result AND the
// exact counter fingerprint of the untraced run. Tracing records into
// its own sink and never touches stats.Counters, so any divergence
// here is an instrumentation bug leaking into execution.
func TestTracedFingerprintIdentity(t *testing.T) {
	db := universityDB(t, 10)
	ctx := context.Background()
	modes := PlannerModes(db)
	for _, q := range UniversityQueries {
		q := q
		t.Run(q.Name, func(t *testing.T) {
			sel, err := parser.ParseSelection(q.Src)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			checked, info, err := calculus.Check(sel, db.Catalog())
			if err != nil {
				t.Fatalf("check: %v", err)
			}
			for _, strat := range StrategySets() {
				for _, mode := range modes {
					for _, par := range []int{1, 4} {
						opts := engine.Options{Strategies: strat, CostBased: mode.Est != nil, Estimator: mode.Est, Parallelism: par}

						plain := &stats.Counters{}
						got, err := engine.New(db, plain).Eval(ctx, checked, info, opts)
						if err != nil {
							t.Fatalf("[%s %s par=%d] untraced: %v", strat, mode.Name, par, err)
						}

						tr := obs.NewTrace("")
						traced := &stats.Counters{}
						gotTr, err := engine.New(db, traced).Eval(obs.With(ctx, tr.Root()), checked, info, opts)
						tr.Finish()
						if err != nil {
							t.Fatalf("[%s %s par=%d] traced: %v", strat, mode.Name, par, err)
						}

						if a, b := RelKey(got), RelKey(gotTr); a != b {
							t.Fatalf("[%s %s par=%d] traced result diverges\nuntraced: %d rows\ntraced:   %d rows",
								strat, mode.Name, par, got.Len(), gotTr.Len())
						}
						if a, b := plain.Fingerprint(), traced.Fingerprint(); a != b {
							t.Fatalf("[%s %s par=%d] traced counters diverge\nuntraced: %s\ntraced:   %s",
								strat, mode.Name, par, a, b)
						}
					}
				}
			}
		})
	}
}
