package enginetest

// QueryTest is one differential test case: a calculus query in the
// paper's concrete syntax, evaluated against the university schema of
// workload.DefineSchema (employees, papers, courses, timetable).
//
// To add a query: append an entry here. The harness automatically runs
// it under all 16 strategy combinations × {static, cost-based} planning
// against every workload database (populated, skewed, and the
// empty-relation variants) and compares each result with the
// tuple-substitution baseline.
type QueryTest struct {
	Name string
	Src  string
}

// UniversityQueries is the core differential table over the Figure 1
// schema. It covers monadic restriction, equi- and inequality joins,
// multi-way joins, both quantifiers, nesting, disjunction, negation via
// <>, self-joins over one relation, and contradictions.
var UniversityQueries = []QueryTest{
	{
		Name: "monadic-professors",
		Src:  `[<e.ename> OF EACH e IN employees: (e.estatus = professor)]`,
	},
	{
		Name: "monadic-range-scan",
		Src:  `[<c.cnr> OF EACH c IN courses: (c.cnr >= 1)]`,
	},
	{
		Name: "equi-join",
		Src:  `[<c.cnr, t.tenr> OF EACH c IN courses, EACH t IN timetable: (c.cnr = t.tcnr)]`,
	},
	{
		Name: "selective-equi-join",
		Src: `[<c.cnr, t.tenr, t.tday> OF EACH c IN courses, EACH t IN timetable:
			(c.clevel <= sophomore) AND (c.cnr = t.tcnr)]`,
	},
	{
		Name: "three-way-join",
		Src: `[<e.ename, c.cnr> OF EACH e IN employees, EACH c IN courses, EACH t IN timetable:
			(e.enr = t.tenr) AND (c.cnr = t.tcnr)]`,
	},
	{
		Name: "some-teaches",
		Src:  `[<e.ename> OF EACH e IN employees: SOME t IN timetable (e.enr = t.tenr)]`,
	},
	{
		Name: "some-nested",
		Src: `[<e.ename> OF EACH e IN employees:
			SOME c IN courses ((c.clevel <= sophomore)
				AND SOME t IN timetable ((c.cnr = t.tcnr) AND (e.enr = t.tenr)))]`,
	},
	{
		Name: "all-division",
		Src: `[<e.ename> OF EACH e IN employees:
			ALL c IN courses (SOME t IN timetable ((t.tenr = e.enr) AND (t.tcnr = c.cnr)))]`,
	},
	{
		Name: "all-no-1977-papers",
		Src: `[<e.ename> OF EACH e IN employees: (e.estatus = professor)
			AND ALL p IN papers ((p.pyear <> 1977) OR (e.enr <> p.penr))]`,
	},
	{
		Name: "sample-2.1",
		Src: `[<e.ename> OF EACH e IN employees:
			(e.estatus = professor)
			AND
			(ALL p IN papers ((p.pyear <> 1977) OR (e.enr <> p.penr))
			 OR
			 SOME c IN courses ((c.clevel <= sophomore)
				AND SOME t IN timetable ((c.cnr = t.tcnr) AND (e.enr = t.tenr))))]`,
	},
	{
		Name: "disjunctive-days",
		Src: `[<e.ename> OF EACH e IN employees:
			SOME t IN timetable (((t.tday = monday) OR (t.tday = friday)) AND (e.enr = t.tenr))]`,
	},
	{
		Name: "self-inequality-join",
		Src: `[<t.tenr, t.tcnr> OF EACH t IN timetable:
			SOME u IN timetable ((t.ttime < u.ttime) AND (t.tcnr = u.tcnr))]`,
	},
	{
		Name: "extended-range",
		Src: `[<c.cnr> OF EACH c IN [EACH x IN courses: (x.clevel <= sophomore)]:
			SOME t IN timetable (c.cnr = t.tcnr)]`,
	},
	{
		// Two variables probe one index column with different operators
		// (= and <): under parallelism the probing scans run
		// concurrently, exercising the shared index's lazily derived
		// equality map and sorted copy — emission order must stay
		// deterministic whichever probe builds first.
		Name: "mixed-op-shared-index",
		Src: `[<c.cnr, e.enr> OF EACH c IN courses, EACH e IN employees, EACH t IN timetable:
			(c.cnr = t.tcnr) AND (e.enr < t.tcnr)]`,
	},
	{
		Name: "contradiction",
		Src:  `[<e.enr> OF EACH e IN employees: (e.estatus = professor) AND (e.estatus = student)]`,
	},
	{
		Name: "negated-join",
		Src: `[<e.ename> OF EACH e IN employees:
			NOT SOME t IN timetable (e.enr = t.tenr)]`,
	},
}
