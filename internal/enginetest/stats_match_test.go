package enginetest

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"pascalr/internal/calculus"
	"pascalr/internal/engine"
	"pascalr/internal/relation"
	"pascalr/internal/stats"
	"pascalr/internal/value"
	"pascalr/internal/workload"
)

// planOrderFor evaluates one selection cost-based with the given
// estimator and returns the chosen scan order.
func planOrderFor(t *testing.T, db *relation.DB, sel *calculus.Selection, info *calculus.Info, strat engine.Strategy, est *stats.Estimator) string {
	t.Helper()
	st := &stats.Counters{}
	if _, err := engine.New(db, st).Eval(context.Background(), sel, info,
		engine.Options{Strategies: strat, CostBased: true, Estimator: est}); err != nil {
		t.Fatalf("[%s] eval: %v", strat, err)
	}
	return strings.Join(st.PlanOrder, ",")
}

// TestIncrementalStatsMatchAnalyzePlans is the no-analyze contract: on
// a mutated database, planning from the incrementally maintained
// statistics (never Analyzed) must choose the same plans as planning
// after a forced full rebuild — across the whole strategy matrix. The
// incremental statistics may differ internally (bucket boundaries,
// stale extrema); they must not differ in the decisions they drive.
func TestIncrementalStatsMatchAnalyzePlans(t *testing.T) {
	// Workload 1: the university database after an insert+delete wave.
	uni := workload.MustUniversity(workload.DefaultConfig(12))
	for i := 1; i <= 4; i++ { // delete a third of the employees
		uni.MustRelation("employees").Delete([]value.Value{value.Int(int64(i * 3))})
	}
	for i := 0; i < 10; i++ { // grow papers
		if _, err := uni.MustRelation("papers").Insert([]value.Value{
			value.Int(int64(1 + i%12)), value.Int(1977), value.String_(fmt.Sprintf("mut%05d", i)),
		}); err != nil {
			t.Fatal(err)
		}
	}

	// Workload 2: the heavy-hitter join after a deletion wave (its join
	// column lives in equi-depth buckets, so the incremental and rebuilt
	// histograms genuinely differ internally).
	skew := workload.MustSkewedJoin(workload.DefaultSkewedJoinConfig(1500))
	for i := 0; i < 300; i++ {
		skew.MustRelation("facts").Delete([]value.Value{value.Int(int64(i * 4))})
	}

	cases := []struct {
		name string
		db   *relation.DB
		sel  *calculus.Selection
	}{
		{"uni/join-heavy", uni, workload.JoinHeavySelection()},
		{"uni/sample-2.1", uni, workload.SampleSelection()},
		{"uni/subexpr", uni, workload.SubexprSelection()},
		{"uni/disjunctive", uni, workload.DisjunctiveSelection()},
		{"skew/join", skew, workload.SkewedJoinSelection()},
	}
	type key struct {
		c     int
		strat engine.Strategy
	}
	incremental := map[key]string{}
	for ci, c := range cases {
		sel, info, err := calculus.Check(c.sel, c.db.Catalog())
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		est := c.db.Estimator() // live — no Analyze has ever run
		for _, strat := range StrategySets() {
			incremental[key{ci, strat}] = planOrderFor(t, c.db, sel, info, strat, est)
		}
	}
	for ci, c := range cases {
		sel, info, err := calculus.Check(c.sel, c.db.Catalog())
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		est := c.db.Analyze() // forced rebuild
		for _, strat := range StrategySets() {
			got := planOrderFor(t, c.db, sel, info, strat, est)
			if want := incremental[key{ci, strat}]; got != want {
				t.Errorf("%s [%s]: post-Analyze plan order %q differs from incremental %q",
					c.name, strat, got, want)
			}
		}
	}
}
