package enginetest

import (
	"math/rand"
	"testing"

	"pascalr/internal/calculus"
	"pascalr/internal/workload"
)

// TestRandomizedDifferential is the property test: on seeded random
// databases (including empty relations) and random selections, the
// engine under every strategy combination and under both planners must
// reproduce the baseline exactly. The seed range is fixed, so failures
// are deterministic and the failing seed reproduces the case.
func TestRandomizedDifferential(t *testing.T) {
	seeds := int64(300)
	if testing.Short() {
		seeds = 60
	}
	for seed := int64(9000); seed < 9000+seeds; seed++ {
		rng := rand.New(rand.NewSource(seed))
		db := workload.RandomDB(rng, 6)
		sel := workload.RandomSelection(rng)
		checked, info, err := calculus.Check(sel, db.Catalog())
		if err != nil {
			t.Fatalf("seed %d: check: %v", seed, err)
		}
		RunSelection(t, checked.String(), db, checked, info)
	}
}
