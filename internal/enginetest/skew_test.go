package enginetest

import (
	"context"
	"math"
	"testing"

	"pascalr/internal/calculus"
	"pascalr/internal/engine"
	"pascalr/internal/relation"
	"pascalr/internal/stats"
	"pascalr/internal/value"
	"pascalr/internal/workload"
)

// actualFrac scans a relation and returns the fraction of tuples whose
// col satisfies "col op c".
func actualFrac(db *relation.DB, rel, col string, op value.CmpOp, c value.Value) float64 {
	r := db.MustRelation(rel)
	ci, _ := r.Schema().ColIndex(col)
	n, hits := 0, 0
	r.ScanStats(nil, func(_ value.Value, tuple []value.Value) bool {
		n++
		cmp, err := value.Compare(tuple[ci], c)
		if err == nil && op.Holds(cmp) {
			hits++
		}
		return true
	})
	if n == 0 {
		return 0
	}
	return float64(hits) / float64(n)
}

func relErr(est, actual float64) float64 {
	if actual == 0 {
		return math.Abs(est)
	}
	return math.Abs(est-actual) / actual
}

// TestSkewedSelectivityError pins the estimate quality on the
// heavy-hitter workload: the histogram estimator's relative error stays
// within a small bound where the uniform estimator's blows up — on
// equality and on range predicates, before and after a deletion wave.
func TestSkewedSelectivityError(t *testing.T) {
	db := workload.MustSkewedJoin(workload.DefaultSkewedJoinConfig(1500))
	check := func(phase string) {
		est := db.Estimator()
		uni := est.Uniform()
		for _, tc := range []struct {
			name string
			col  string
			op   value.CmpOp
			c    value.Value
		}{
			{"hot = 0 (heavy hitter)", "hot", value.OpEq, value.Int(0)},
			{"hot <= 0 (range at heavy hitter)", "hot", value.OpLe, value.Int(0)},
			{"hot <> 0", "hot", value.OpNe, value.Int(0)},
		} {
			actual := actualFrac(db, "facts", tc.col, tc.op, tc.c)
			h := est.SelectivityConst("facts", tc.col, tc.op, tc.c)
			u := uni.SelectivityConst("facts", tc.col, tc.op, tc.c)
			he, ue := relErr(h, actual), relErr(u, actual)
			if he > 0.15 {
				t.Errorf("%s %s: histogram estimate %.3f vs actual %.3f (rel err %.2f > 0.15)",
					phase, tc.name, h, actual, he)
			}
			if ue < 3*he+0.3 {
				t.Errorf("%s %s: uniform estimate %.3f unexpectedly good (err %.2f) vs histogram err %.2f — workload no longer skewed?",
					phase, tc.name, u, ue, he)
			}
		}
		// The bucketed join column: both models should be in the right
		// ballpark on an actually-uniform column — histograms must not
		// make non-skewed estimates worse.
		actual := actualFrac(db, "facts", "v", value.OpLt, value.Int(100))
		h := est.SelectivityConst("facts", "v", value.OpLt, value.Int(100))
		if relErr(h, actual) > 0.5 {
			t.Errorf("%s v < 100: bucketed estimate %.3f vs actual %.3f", phase, h, actual)
		}
	}
	check("initial")
	// Deletion wave: remove a third of the facts and re-check — the
	// statistics are maintained incrementally, no Analyze call.
	facts := db.MustRelation("facts")
	for i := 0; i < 500; i++ {
		facts.Delete([]value.Value{value.Int(int64(i * 3))})
	}
	check("after deletes")
}

// TestSkewedDifferentialMatrix runs the heavy-hitter join through the
// full strategy × planner matrix: whatever the estimates say, every
// plan must produce the baseline's relation.
func TestSkewedDifferentialMatrix(t *testing.T) {
	db := workload.MustSkewedJoin(workload.DefaultSkewedJoinConfig(600))
	sel, info, err := calculus.Check(workload.SkewedJoinSelection(), db.Catalog())
	if err != nil {
		t.Fatal(err)
	}
	if n := RunSelection(t, "skewjoin", db, sel, info); n == 0 {
		t.Fatal("skewed join produced no rows; workload mis-sized")
	}
}

// TestHistogramBeatsUniformPlan is the plan-quality claim itself: on
// the heavy-hitter join the histogram-cost plan issues fewer index
// probes (it probes with the genuinely smaller side) than the
// uniform-cost plan, at an identical result.
func TestHistogramBeatsUniformPlan(t *testing.T) {
	// Scale matters: the histogram plan materializes the bulky side's
	// single list, so its ref-tuple win only dominates once the
	// indirect-join size (∝ facts·dims/distinct) outgrows the facts
	// count. 2500 facts is comfortably past the crossover.
	db := workload.MustSkewedJoin(workload.DefaultSkewedJoinConfig(2500))
	sel, info, err := calculus.Check(workload.SkewedJoinSelection(), db.Catalog())
	if err != nil {
		t.Fatal(err)
	}
	est := db.Estimator()
	run := func(e *stats.Estimator) (*stats.Counters, string) {
		st := &stats.Counters{}
		res, err := engine.New(db, st).Eval(context.Background(), sel, info,
			engine.Options{Strategies: engine.S1 | engine.S2, CostBased: true, Estimator: e})
		if err != nil {
			t.Fatal(err)
		}
		return st, RelKey(res)
	}
	stHist, keyHist := run(est)
	stUni, keyUni := run(est.Uniform())
	if keyHist != keyUni {
		t.Fatal("histogram and uniform plans disagree on the result")
	}
	if stHist.IndexProbes >= stUni.IndexProbes {
		t.Errorf("histogram plan probes = %d, want < uniform plan probes = %d",
			stHist.IndexProbes, stUni.IndexProbes)
	}
	if stHist.RefTuples > stUni.RefTuples {
		t.Errorf("histogram plan ref tuples = %d, want <= uniform %d",
			stHist.RefTuples, stUni.RefTuples)
	}
}
