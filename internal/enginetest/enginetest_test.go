package enginetest

import (
	"testing"

	"pascalr/internal/relation"
	"pascalr/internal/workload"
)

// universityDB builds the Figure 1 database at a small scale.
func universityDB(t *testing.T, scale int) *relation.DB {
	t.Helper()
	db, err := workload.University(workload.DefaultConfig(scale))
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestUniversityWorkload is the headline differential matrix: every
// table query × all 32 strategy combinations (including SCNF) ×
// {static, cost-based} planning × {one-shot, prepared-twice} execution
// against the populated university database.
func TestUniversityWorkload(t *testing.T) {
	db := universityDB(t, 12)
	RunTable(t, "university", db, UniversityQueries)
}

// TestSkewedWorkload repeats the matrix on a skewed database — almost
// everyone a professor, almost no sophomore courses — where the
// cost-based planner picks different scan orders than the static one.
func TestSkewedWorkload(t *testing.T) {
	cfg := workload.DefaultConfig(12)
	cfg.ProfFrac = 0.95
	cfg.SophFrac = 0.05
	cfg.Seed = 7
	db, err := workload.University(cfg)
	if err != nil {
		t.Fatal(err)
	}
	RunTable(t, "skewed", db, UniversityQueries)
}

// TestEmptyRelationWorkloads covers the Lemma 1 adaptation cases: each
// relation emptied in turn, plus the fully empty database. The baseline
// implements the calculus semantics directly (SOME over empty is false,
// ALL over empty is true), so agreement here proves the engine's
// runtime adaptation under every configuration.
func TestEmptyRelationWorkloads(t *testing.T) {
	for _, empty := range [][]string{
		{"papers"},
		{"courses"},
		{"timetable"},
		{"employees"},
		{"papers", "courses"},
		{"employees", "papers", "courses", "timetable"},
	} {
		db := universityDB(t, 10)
		name := "empty"
		for _, rel := range empty {
			if err := db.MustRelation(rel).Assign(nil); err != nil {
				t.Fatal(err)
			}
			name += "-" + rel
		}
		RunTable(t, name, db, UniversityQueries)
	}
}

// TestPermanentIndexWorkload repeats the matrix with permanent access
// paths declared on the join columns, exercising the filtered and
// unfiltered permanent-index probe paths under both planners.
func TestPermanentIndexWorkload(t *testing.T) {
	db := universityDB(t, 10)
	for _, ix := range []struct{ rel, col string }{
		{"courses", "cnr"}, {"timetable", "tcnr"}, {"employees", "enr"},
	} {
		if _, err := db.MustRelation(ix.rel).CreateIndex(ix.col); err != nil {
			t.Fatal(err)
		}
	}
	RunTable(t, "permindex", db, UniversityQueries)
}

// TestPermanentIndexEmptyRelationCross crosses the two workloads above:
// permanent access paths declared on the join columns while relations
// are emptied in turn. This hits the paths where a scan was elided
// because a permanent index serves the variable, yet the Lemma 1
// adaptation must still see the relation as empty — and where an empty
// permanent index is probed directly.
func TestPermanentIndexEmptyRelationCross(t *testing.T) {
	for _, empty := range [][]string{
		{"timetable"},
		{"courses"},
		{"employees"},
		{"papers"},
		{"courses", "timetable"},
		{"employees", "papers", "courses", "timetable"},
	} {
		db := universityDB(t, 10)
		for _, ix := range []struct{ rel, col string }{
			{"courses", "cnr"}, {"timetable", "tcnr"}, {"employees", "enr"},
		} {
			if _, err := db.MustRelation(ix.rel).CreateIndex(ix.col); err != nil {
				t.Fatal(err)
			}
		}
		name := "permindex-empty"
		for _, rel := range empty {
			if err := db.MustRelation(rel).Assign(nil); err != nil {
				t.Fatal(err)
			}
			name += "-" + rel
		}
		RunTable(t, name, db, UniversityQueries)
	}
}
