// Package enginetest is the differential test harness for the query
// engine: every query in the table of queries.go runs under every
// strategy combination — and under both the static and the cost-based
// planner — and must produce exactly the relation the tuple-substitution
// baseline produces. The pattern follows go-mysql-server's enginetest:
// a declarative query table, a set of workload databases, and one
// runner that cross-checks all engine configurations against the
// oracle, so a new query or a new planner feature is covered by adding
// one table entry.
package enginetest

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"pascalr/internal/baseline"
	"pascalr/internal/calculus"
	"pascalr/internal/engine"
	"pascalr/internal/parser"
	"pascalr/internal/relation"
	"pascalr/internal/value"
)

// StrategySets returns all 16 combinations of the paper's four
// optimization strategies, S0 through S1+S2+S3+S4.
func StrategySets() []engine.Strategy {
	out := make([]engine.Strategy, 0, 16)
	for s := engine.Strategy(0); s <= engine.AllStrategies; s++ {
		out = append(out, s)
	}
	return out
}

// RelKey renders a relation's contents as a sorted string, for
// order-independent equality.
func RelKey(rel *relation.Relation) string {
	var keys []string
	for _, tup := range rel.Tuples() {
		keys = append(keys, value.EncodeKey(tup))
	}
	sort.Strings(keys)
	return strings.Join(keys, "|")
}

// RunSelection evaluates one checked selection against the baseline and
// against every strategy set × {static, cost-based} planner, failing the
// test on any disagreement. It returns the baseline's row count so
// callers can assert workload coverage.
func RunSelection(t *testing.T, label string, db *relation.DB, sel *calculus.Selection, info *calculus.Info) int {
	t.Helper()
	want, err := baseline.Eval(sel, info, db)
	if err != nil {
		t.Fatalf("%s: baseline: %v", label, err)
	}
	wantKey := RelKey(want)
	est := db.Analyze()
	for _, strat := range StrategySets() {
		for _, costBased := range []bool{false, true} {
			opts := engine.Options{Strategies: strat, CostBased: costBased}
			if costBased {
				opts.Estimator = est
			}
			got, err := engine.New(db, nil).Eval(sel, info, opts)
			if err != nil {
				t.Fatalf("%s [%s cost=%v]: engine: %v", label, strat, costBased, err)
			}
			if gotKey := RelKey(got); gotKey != wantKey {
				t.Fatalf("%s [%s cost=%v]: result mismatch\nwant %d rows, got %d rows\nquery: %s",
					label, strat, costBased, want.Len(), got.Len(), sel)
			}
		}
	}
	return want.Len()
}

// RunQuery parses a query source against db's catalog, checks it, and
// runs the full differential matrix.
func RunQuery(t *testing.T, label string, db *relation.DB, src string) int {
	t.Helper()
	sel, err := parser.ParseSelection(src)
	if err != nil {
		t.Fatalf("%s: parse: %v", label, err)
	}
	checked, info, err := calculus.Check(sel, db.Catalog())
	if err != nil {
		t.Fatalf("%s: check: %v", label, err)
	}
	return RunSelection(t, label, db, checked, info)
}

// RunTable runs every table query against one workload database.
func RunTable(t *testing.T, workload string, db *relation.DB, queries []QueryTest) {
	t.Helper()
	for _, q := range queries {
		q := q
		t.Run(fmt.Sprintf("%s/%s", workload, q.Name), func(t *testing.T) {
			RunQuery(t, q.Name, db, q.Src)
		})
	}
}
