// Package enginetest is the differential test harness for the query
// engine: every query in the table of queries.go runs under every
// strategy combination — and under the static, uniform-cost, and
// histogram-cost planners, the latter two fed by the live incremental
// statistics with no Analyze pass — and must produce exactly the
// relation the tuple-substitution baseline produces. Each configuration
// is exercised six ways: as a one-shot Eval (the vectorized batch
// path), twice through a compiled Plan (the second time via the
// streaming cursor), once with a parallel collection + combination
// phase, and twice on the forced tuple-at-a-time path (serial and
// parallel) — proving that plan reuse, streaming construction,
// parallel scans, and the batch/tuple execution paths are result- and
// counter-identical to compile-and-run. The pattern
// follows go-mysql-server's enginetest: a declarative query table, a set
// of workload databases, and one runner that cross-checks all engine
// configurations against the oracle, so a new query or a new planner
// feature is covered by adding one table entry.
package enginetest

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"

	"pascalr/internal/baseline"
	"pascalr/internal/calculus"
	"pascalr/internal/engine"
	"pascalr/internal/parser"
	"pascalr/internal/relation"
	"pascalr/internal/stats"
	"pascalr/internal/value"
)

// StrategySets returns all 32 combinations of the paper's four
// optimization strategies — S0 through S1+S2+S3+S4 — each with and
// without the CNF range extension of section 4.3.
func StrategySets() []engine.Strategy {
	out := make([]engine.Strategy, 0, 32)
	for s := engine.Strategy(0); s <= engine.AllStrategies; s++ {
		out = append(out, s, s|engine.SCNF)
	}
	return out
}

// RelKey renders a relation's contents as a sorted string, for
// order-independent equality.
func RelKey(rel *relation.Relation) string {
	var keys []string
	for _, tup := range rel.Tuples() {
		keys = append(keys, value.EncodeKey(tup))
	}
	sort.Strings(keys)
	return strings.Join(keys, "|")
}

// PlannerModes returns the three planner configurations the harness
// cross-checks: the paper's static plan, the cost-based plan restricted
// to the System R uniformity formulas, and the cost-based plan reading
// the histograms. The statistics are the database's live, incrementally
// maintained ones — deliberately NOT an Analyze pass, so every matrix
// run also proves the incremental maintenance yields working plans.
func PlannerModes(db *relation.DB) []PlannerMode {
	est := db.Estimator()
	return []PlannerMode{
		{Name: "static", Est: nil},
		{Name: "uniform", Est: est.Uniform()},
		{Name: "hist", Est: est},
	}
}

// PlannerMode is one planner configuration of the differential matrix.
type PlannerMode struct {
	Name string
	Est  *stats.Estimator
}

// RunSelection evaluates one checked selection against the baseline and
// against every strategy set × {static, uniform-cost, histogram-cost}
// planner, failing the test on any disagreement. Each configuration
// runs four times: once through the one-shot Eval (serially, with
// instrumented counters), twice against a single compiled Plan — the
// first reuse materialized, the second streamed through the cursor —
// and once with a parallel collection phase (four workers), whose
// result and merged counters must equal the serial run's exactly. It
// returns the baseline's row count so callers can assert workload
// coverage.
func RunSelection(t *testing.T, label string, db *relation.DB, sel *calculus.Selection, info *calculus.Info) int {
	t.Helper()
	ctx := context.Background()
	want, err := baseline.Eval(sel, info, db)
	if err != nil {
		t.Fatalf("%s: baseline: %v", label, err)
	}
	wantKey := RelKey(want)
	modes := PlannerModes(db) // the DB is not mutated during the matrix
	for _, strat := range StrategySets() {
		for _, mode := range modes {
			opts := engine.Options{Strategies: strat, CostBased: mode.Est != nil, Estimator: mode.Est, Parallelism: 1}
			stSerial := &stats.Counters{}
			eng := engine.New(db, stSerial)
			got, err := eng.Eval(ctx, sel, info, opts)
			if err != nil {
				t.Fatalf("%s [%s %s]: engine: %v", label, strat, mode.Name, err)
			}
			if gotKey := RelKey(got); gotKey != wantKey {
				t.Fatalf("%s [%s %s]: result mismatch\nwant %d rows, got %d rows\nquery: %s",
					label, strat, mode.Name, want.Len(), got.Len(), sel)
			}
			// Snapshot before the prepared re-runs accumulate into the
			// same engine sink.
			serialFP := stSerial.Fingerprint()
			plan, err := eng.Compile(sel, info, opts)
			if err != nil {
				t.Fatalf("%s [%s %s]: compile: %v", label, strat, mode.Name, err)
			}
			prepared, err := plan.Eval(ctx)
			if err != nil {
				t.Fatalf("%s [%s %s]: prepared run 1: %v", label, strat, mode.Name, err)
			}
			if gotKey := RelKey(prepared); gotKey != wantKey {
				t.Fatalf("%s [%s %s]: prepared run 1 mismatch\nwant %d rows, got %d rows\nquery: %s",
					label, strat, mode.Name, want.Len(), prepared.Len(), sel)
			}
			if gotKey, err := cursorKey(plan, ctx); err != nil {
				t.Fatalf("%s [%s %s]: prepared run 2 (cursor): %v", label, strat, mode.Name, err)
			} else if gotKey != wantKey {
				t.Fatalf("%s [%s %s]: prepared run 2 (cursor) mismatch\nquery: %s",
					label, strat, mode.Name, sel)
			}
			// Parallel leg: same results AND the same merged counters
			// as the serial run — the scheduler's determinism contract.
			optsPar := opts
			optsPar.Parallelism = 4
			stPar := &stats.Counters{}
			gotPar, err := engine.New(db, stPar).Eval(ctx, sel, info, optsPar)
			if err != nil {
				t.Fatalf("%s [%s %s]: parallel: %v", label, strat, mode.Name, err)
			}
			if gotKey := RelKey(gotPar); gotKey != wantKey {
				t.Fatalf("%s [%s %s]: parallel result mismatch\nwant %d rows, got %d rows\nquery: %s",
					label, strat, mode.Name, want.Len(), gotPar.Len(), sel)
			}
			if sk, pk := serialFP, stPar.Fingerprint(); sk != pk {
				t.Fatalf("%s [%s %s]: parallel counters diverge from serial\nserial:   %s\nparallel: %s",
					label, strat, mode.Name, sk, pk)
			}
			// Tuple-path legs: forcing the legacy tuple-at-a-time
			// collection (serially and with a parallel collection +
			// combination) must reproduce the vectorized runs above
			// bit-identically — results and counter fingerprints.
			for _, par := range []int{1, 4} {
				optsTup := opts
				optsTup.Exec = engine.ExecTuple
				optsTup.Parallelism = par
				stTup := &stats.Counters{}
				gotTup, err := engine.New(db, stTup).Eval(ctx, sel, info, optsTup)
				if err != nil {
					t.Fatalf("%s [%s %s]: tuple-path par=%d: %v", label, strat, mode.Name, par, err)
				}
				if gotKey := RelKey(gotTup); gotKey != wantKey {
					t.Fatalf("%s [%s %s]: tuple-path par=%d result mismatch\nwant %d rows, got %d rows\nquery: %s",
						label, strat, mode.Name, par, want.Len(), gotTup.Len(), sel)
				}
				if sk, tk := serialFP, stTup.Fingerprint(); sk != tk {
					t.Fatalf("%s [%s %s]: tuple-path par=%d counters diverge from batch path\nbatch: %s\ntuple: %s",
						label, strat, mode.Name, par, sk, tk)
				}
			}
		}
	}
	return want.Len()
}

// cursorKey re-executes a compiled plan through the streaming cursor and
// renders the yielded tuples as a sorted key.
func cursorKey(plan *engine.Plan, ctx context.Context) (string, error) {
	cur, err := plan.Rows(ctx)
	if err != nil {
		return "", err
	}
	defer cur.Close()
	var keys []string
	for cur.Next() {
		keys = append(keys, value.EncodeKey(cur.Row()))
	}
	if err := cur.Err(); err != nil {
		return "", err
	}
	sort.Strings(keys)
	return strings.Join(keys, "|"), nil
}

// RunQuery parses a query source against db's catalog, checks it, and
// runs the full differential matrix.
func RunQuery(t *testing.T, label string, db *relation.DB, src string) int {
	t.Helper()
	sel, err := parser.ParseSelection(src)
	if err != nil {
		t.Fatalf("%s: parse: %v", label, err)
	}
	checked, info, err := calculus.Check(sel, db.Catalog())
	if err != nil {
		t.Fatalf("%s: check: %v", label, err)
	}
	return RunSelection(t, label, db, checked, info)
}

// RunTable runs every table query against one workload database.
func RunTable(t *testing.T, workload string, db *relation.DB, queries []QueryTest) {
	t.Helper()
	for _, q := range queries {
		q := q
		t.Run(fmt.Sprintf("%s/%s", workload, q.Name), func(t *testing.T) {
			RunQuery(t, q.Name, db, q.Src)
		})
	}
}
