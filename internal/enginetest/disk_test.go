package enginetest

import (
	"context"
	"testing"

	"pascalr/internal/engine"
	"pascalr/internal/parser"
	"pascalr/internal/relation"
	"pascalr/internal/stats"
	"pascalr/internal/storage"
	"pascalr/internal/workload"

	"pascalr/internal/calculus"
)

// diskDB builds the Figure 1 database on the durable SSTable backend
// with a tiny memtable, so every relation's contents spill to disk
// tables mid-population and the engine's scans run against the merging
// LSM read path instead of in-memory slots.
func diskDB(t *testing.T, scale int) *relation.DB {
	t.Helper()
	db, err := relation.OpenDB(t.TempDir(), storage.Options{
		Fsync:              storage.SyncNever,
		MemtableEntries:    8,
		CheckpointWALBytes: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	cfg := workload.DefaultConfig(scale)
	if err := workload.DefineSchema(db, cfg); err != nil {
		t.Fatal(err)
	}
	if err := workload.Populate(db, cfg); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestDiskBackendWorkload runs the full differential matrix — every
// table query × all 32 strategy combinations × {static, uniform-cost,
// histogram-cost} planning — against the disk backend. Agreement with
// the tuple-substitution baseline proves the LSM read path presents
// exactly the relational contents.
func TestDiskBackendWorkload(t *testing.T) {
	db := diskDB(t, 10)
	RunTable(t, "disk", db, UniversityQueries)
}

// TestDiskMemoryBitIdentity runs every query under every strategy ×
// planner mode against the memory backend and the spilled disk backend
// and requires bit-identical results AND counter fingerprints: the
// backend may change where tuples live, never what the engine does.
func TestDiskMemoryBitIdentity(t *testing.T) {
	memDB := universityDB(t, 10)
	dskDB := diskDB(t, 10)
	ctx := context.Background()

	for _, q := range UniversityQueries {
		q := q
		t.Run(q.Name, func(t *testing.T) {
			sel, err := parser.ParseSelection(q.Src)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			memSel, memInfo, err := calculus.Check(sel, memDB.Catalog())
			if err != nil {
				t.Fatalf("check (mem): %v", err)
			}
			sel2, _ := parser.ParseSelection(q.Src)
			dskSel, dskInfo, err := calculus.Check(sel2, dskDB.Catalog())
			if err != nil {
				t.Fatalf("check (disk): %v", err)
			}
			memModes := PlannerModes(memDB)
			dskModes := PlannerModes(dskDB)
			for _, strat := range StrategySets() {
				for mi := range memModes {
					runOne := func(db *relation.DB, sel *calculus.Selection, info *calculus.Info, est *stats.Estimator, par int) (string, string) {
						opts := engine.Options{Strategies: strat, CostBased: est != nil, Estimator: est, Parallelism: par}
						st := &stats.Counters{}
						got, err := engine.New(db, st).Eval(ctx, sel, info, opts)
						if err != nil {
							t.Fatalf("[%s %s par=%d]: %v", strat, memModes[mi].Name, par, err)
						}
						return RelKey(got), st.Fingerprint()
					}
					memKey, memFP := runOne(memDB, memSel, memInfo, memModes[mi].Est, 1)
					dskKey, dskFP := runOne(dskDB, dskSel, dskInfo, dskModes[mi].Est, 1)
					if memKey != dskKey {
						t.Fatalf("[%s %s]: results diverge between backends", strat, memModes[mi].Name)
					}
					if memFP != dskFP {
						t.Fatalf("[%s %s]: counter fingerprints diverge\nmem:  %s\ndisk: %s",
							strat, memModes[mi].Name, memFP, dskFP)
					}
					// Parallel disk leg: sharding thresholds scale with the
					// backend's access costs, but boundaries must stay
					// counter-invisible — the merged counters still equal
					// the memory backend's serial run bit for bit.
					dskKeyPar, dskFPPar := runOne(dskDB, dskSel, dskInfo, dskModes[mi].Est, 4)
					if dskKeyPar != memKey || dskFPPar != memFP {
						t.Fatalf("[%s %s]: parallel disk run diverges from serial memory run",
							strat, memModes[mi].Name)
					}
				}
			}
		})
	}
}

// TestDiskBackendRecoveredWorkload kills the populated disk database
// without a checkpoint (WAL replay recovery) and runs a slice of the
// matrix on the recovered state: recovered contents must answer queries
// exactly like the original.
func TestDiskBackendRecoveredWorkload(t *testing.T) {
	dir := t.TempDir()
	opts := storage.Options{
		Fsync:              storage.SyncNever,
		MemtableEntries:    8,
		CheckpointWALBytes: -1,
	}
	db, err := relation.OpenDB(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	cfg := workload.DefaultConfig(10)
	if err := workload.DefineSchema(db, cfg); err != nil {
		t.Fatal(err)
	}
	if err := workload.Populate(db, cfg); err != nil {
		t.Fatal(err)
	}
	// No Close: recovery must rebuild from manifest-less WAL alone.
	// Drain the abandoned database's background maintenance so it
	// stops touching the directory the recovered one reads.
	db.Quiesce()
	recovered, err := relation.OpenDB(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { recovered.Close() })
	RunTable(t, "disk-recovered", recovered, UniversityQueries[:4])
}
