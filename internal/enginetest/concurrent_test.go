package enginetest

import (
	"testing"
)

// TestConcurrentDifferential runs the concurrent-differential mode over
// the full strategy matrix: 8 goroutines share one engine and one
// compiled plan per configuration, every result must match the serial
// run, and the merged counters must equal 8× the serial counters. The
// join query exercises index builds, probes, and the combination phase;
// the quantified query exercises strategy-4 value lists; the permanent
// index variant exercises shared permanent-index probing (including the
// concurrent lazy sort).
func TestConcurrentDifferential(t *testing.T) {
	const goroutines = 8
	join := `[<c.cnr, t.tenr> OF EACH c IN courses, EACH t IN timetable: (c.cnr = t.tcnr)]`
	quantified := `[<e.ename> OF EACH e IN employees:
		(e.estatus = professor) AND SOME t IN timetable ((t.tenr = e.enr) AND (t.tday = monday))]`

	mixedOp := `[<c.cnr, e.enr> OF EACH c IN courses, EACH e IN employees, EACH t IN timetable:
		(c.cnr = t.tcnr) AND (e.enr < t.tcnr)]`

	db := universityDB(t, 10)
	RunConcurrent(t, "concurrent/join", db, join, goroutines)
	RunConcurrent(t, "concurrent/quantified", db, quantified, goroutines)
	RunConcurrent(t, "concurrent/mixed-op-shared-index", db, mixedOp, goroutines)

	ixdb := universityDB(t, 10)
	for _, ix := range []struct{ rel, col string }{
		{"courses", "cnr"}, {"timetable", "tcnr"},
	} {
		if _, err := ixdb.MustRelation(ix.rel).CreateIndex(ix.col); err != nil {
			t.Fatal(err)
		}
	}
	RunConcurrent(t, "concurrent/permindex", ixdb, join, goroutines)
}
