package sched

// ShardCount decides how many shards a scan of estimated cardinality
// card should split into: one shard per minPerShard elements, capped at
// maxShards. Cardinalities come from the cost estimator when available
// (the planner's statistics already price every scan) and from the
// relation's exact length otherwise, so small scans never pay the
// fork/merge overhead.
func ShardCount(card float64, minPerShard, maxShards int) int {
	if maxShards < 1 {
		maxShards = 1
	}
	if minPerShard < 1 {
		minPerShard = 1
	}
	n := int(card) / minPerShard
	if n < 1 {
		return 1
	}
	if n > maxShards {
		return maxShards
	}
	return n
}

// Shards splits the half-open range [0, n) into count balanced
// contiguous sub-ranges. The first n%count shards are one element
// longer, so shard sizes differ by at most one. count is clamped to
// [1, n] (an empty range yields a single empty shard).
func Shards(n, count int) [][2]int {
	if count < 1 {
		count = 1
	}
	if n < 1 {
		return [][2]int{{0, n}}
	}
	if count > n {
		count = n
	}
	out := make([][2]int, 0, count)
	base, rem := n/count, n%count
	lo := 0
	for i := 0; i < count; i++ {
		size := base
		if i < rem {
			size++
		}
		out = append(out, [2]int{lo, lo + size})
		lo += size
	}
	return out
}
