package sched

// ShardCount decides how many shards a scan of estimated cardinality
// card should split into: one shard per minPerShard elements, capped at
// maxShards. Cardinalities come from the cost estimator when available
// (the planner's statistics already price every scan) and from the
// relation's exact length otherwise, so small scans never pay the
// fork/merge overhead.
func ShardCount(card float64, minPerShard, maxShards int) int {
	if maxShards < 1 {
		maxShards = 1
	}
	if minPerShard < 1 {
		minPerShard = 1
	}
	n := int(card) / minPerShard
	if n < 1 {
		return 1
	}
	if n > maxShards {
		return maxShards
	}
	return n
}

// WeightedShards splits the half-open range [0, n) into count
// contiguous sub-ranges balanced by per-stripe weights: weights[i]
// covers the slot range [i·stripe, (i+1)·stripe). Shard boundaries
// interpolate linearly inside a stripe, so each shard carries
// approximately total/count weight — with the weights coming from the
// statistics subsystem's slot density, shards balance by estimated
// surviving tuples instead of raw slot counts, which matters once
// deletions leave some slot regions dead. Zero total weight (or no
// weights) falls back to uniform Shards.
func WeightedShards(n, count int, weights []int32, stripe int) [][2]int {
	if count < 1 {
		count = 1
	}
	if n < 1 {
		return [][2]int{{0, n}}
	}
	if count > n {
		count = n
	}
	total := int64(0)
	for _, w := range weights {
		total += int64(w)
	}
	if total <= 0 || stripe <= 0 {
		return Shards(n, count)
	}
	// Walk the stripes once, emitting a boundary each time the running
	// weight crosses the next target quantile.
	out := make([][2]int, 0, count)
	lo := 0
	cum := int64(0)
	si := 0
	for k := 1; k < count; k++ {
		target := total * int64(k) / int64(count)
		for si < len(weights) && cum+int64(weights[si]) < target {
			cum += int64(weights[si])
			si++
		}
		pos := n
		if si < len(weights) {
			within := 0
			if w := int64(weights[si]); w > 0 {
				within = int(int64(stripe) * (target - cum) / w)
				if within > stripe {
					within = stripe
				}
			}
			pos = si*stripe + within
		}
		if pos > n {
			pos = n
		}
		if pos < lo {
			pos = lo
		}
		out = append(out, [2]int{lo, pos})
		lo = pos
	}
	return append(out, [2]int{lo, n})
}

// Shards splits the half-open range [0, n) into count balanced
// contiguous sub-ranges. The first n%count shards are one element
// longer, so shard sizes differ by at most one. count is clamped to
// [1, n] (an empty range yields a single empty shard).
func Shards(n, count int) [][2]int {
	if count < 1 {
		count = 1
	}
	if n < 1 {
		return [][2]int{{0, n}}
	}
	if count > n {
		count = n
	}
	out := make([][2]int, 0, count)
	base, rem := n/count, n%count
	lo := 0
	for i := 0; i < count; i++ {
		size := base
		if i < rem {
			size++
		}
		out = append(out, [2]int{lo, lo + size})
		lo += size
	}
	return out
}
