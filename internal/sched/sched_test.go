package sched

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestRunRespectsDependencies runs a diamond DAG many times and checks
// that every job observes its dependencies' effects.
func TestRunRespectsDependencies(t *testing.T) {
	for round := 0; round < 50; round++ {
		var mu sync.Mutex
		doneSet := map[int]bool{}
		mark := func(i int, deps ...int) func(context.Context) error {
			return func(context.Context) error {
				mu.Lock()
				defer mu.Unlock()
				for _, d := range deps {
					if !doneSet[d] {
						return fmt.Errorf("job %d ran before dependency %d", i, d)
					}
				}
				doneSet[i] = true
				return nil
			}
		}
		jobs := []Job{
			{Name: "a", Run: mark(0)},
			{Name: "b", Deps: []int{0}, Run: mark(1, 0)},
			{Name: "c", Deps: []int{0}, Run: mark(2, 0)},
			{Name: "d", Deps: []int{1, 2}, Run: mark(3, 1, 2)},
		}
		if err := Run(context.Background(), 4, jobs); err != nil {
			t.Fatal(err)
		}
		if len(doneSet) != 4 {
			t.Fatalf("completed %d jobs, want 4", len(doneSet))
		}
	}
}

// TestRunBoundsConcurrency checks that no more than `workers` jobs are
// in flight at once.
func TestRunBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	jobs := make([]Job, 16)
	for i := range jobs {
		jobs[i] = Job{Name: fmt.Sprint(i), Run: func(context.Context) error {
			n := cur.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			return nil
		}}
	}
	if err := Run(context.Background(), workers, jobs); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent jobs, want at most %d", p, workers)
	}
}

// TestRunDeterministicError makes two independent jobs fail and checks
// the lowest-indexed job's error wins, whatever the interleaving.
func TestRunDeterministicError(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for round := 0; round < 50; round++ {
		jobs := []Job{
			{Name: "ok", Run: func(context.Context) error { return nil }},
			{Name: "low", Run: func(context.Context) error { return errLow }},
			{Name: "high", Run: func(context.Context) error { return errHigh }},
		}
		err := Run(context.Background(), 3, jobs)
		if !errors.Is(err, errLow) {
			t.Fatalf("round %d: got %v, want %v", round, err, errLow)
		}
	}
}

// TestRunErrorSkipsDependents checks that jobs downstream of a failure
// never start.
func TestRunErrorSkipsDependents(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Bool
	jobs := []Job{
		{Name: "fail", Run: func(context.Context) error { return boom }},
		{Name: "dep", Deps: []int{0}, Run: func(context.Context) error { ran.Store(true); return nil }},
	}
	if err := Run(context.Background(), 2, jobs); !errors.Is(err, boom) {
		t.Fatalf("got %v, want %v", err, boom)
	}
	if ran.Load() {
		t.Fatal("dependent of a failed job ran")
	}
}

// TestRunCancellation cancels mid-schedule: Run must return ctx.Err()
// and leave no goroutines behind.
func TestRunCancellation(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var once sync.Once
	jobs := make([]Job, 8)
	for i := range jobs {
		jobs[i] = Job{Name: fmt.Sprint(i), Run: func(c context.Context) error {
			once.Do(func() { close(started) })
			<-c.Done()
			return c.Err()
		}}
	}
	go func() {
		<-started
		cancel()
	}()
	if err := Run(ctx, 2, jobs); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	waitForGoroutines(t, before)
}

// TestRunPreCancelled returns immediately on an already-cancelled
// context.
func TestRunPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Bool
	jobs := []Job{{Name: "x", Run: func(context.Context) error { ran.Store(true); return nil }}}
	if err := Run(ctx, 1, jobs); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestRunDetectsCycles reports cyclic dependencies instead of hanging.
func TestRunDetectsCycles(t *testing.T) {
	jobs := []Job{
		{Name: "a", Deps: []int{1}, Run: func(context.Context) error { return nil }},
		{Name: "b", Deps: []int{0}, Run: func(context.Context) error { return nil }},
	}
	err := Run(context.Background(), 2, jobs)
	if err == nil {
		t.Fatal("cycle went undetected")
	}
}

// TestRunValidatesDeps rejects out-of-range and self dependencies.
func TestRunValidatesDeps(t *testing.T) {
	nop := func(context.Context) error { return nil }
	if err := Run(context.Background(), 1, []Job{{Name: "a", Deps: []int{5}, Run: nop}}); err == nil {
		t.Fatal("out-of-range dependency accepted")
	}
	if err := Run(context.Background(), 1, []Job{{Name: "a", Deps: []int{0}, Run: nop}}); err == nil {
		t.Fatal("self dependency accepted")
	}
}

// TestRunSerialOrder checks that a single worker executes independent
// jobs in index order — the deterministic schedule the serial engine
// produces.
func TestRunSerialOrder(t *testing.T) {
	var mu sync.Mutex
	var order []int
	jobs := make([]Job, 6)
	for i := range jobs {
		i := i
		jobs[i] = Job{Name: fmt.Sprint(i), Run: func(context.Context) error {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			return nil
		}}
	}
	if err := Run(context.Background(), 1, jobs); err != nil {
		t.Fatal(err)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("single-worker order %v, want ascending", order)
		}
	}
}

func waitForGoroutines(t *testing.T, before int) {
	t.Helper()
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines leaked: %d -> %d", before, after)
	}
}

// TestShards checks balanced contiguous splitting.
func TestShards(t *testing.T) {
	for _, tc := range []struct {
		n, count int
		want     int // number of shards
	}{
		{10, 3, 3}, {10, 1, 1}, {3, 8, 3}, {0, 4, 1}, {1000, 4, 4},
	} {
		got := Shards(tc.n, tc.count)
		if len(got) != tc.want {
			t.Fatalf("Shards(%d,%d) = %v, want %d shards", tc.n, tc.count, got, tc.want)
		}
		lo, total, minSz, maxSz := 0, 0, int(^uint(0)>>1), 0
		for _, s := range got {
			if s[0] != lo {
				t.Fatalf("Shards(%d,%d) = %v: not contiguous", tc.n, tc.count, got)
			}
			sz := s[1] - s[0]
			total += sz
			lo = s[1]
			if sz < minSz {
				minSz = sz
			}
			if sz > maxSz {
				maxSz = sz
			}
		}
		if total != tc.n {
			t.Fatalf("Shards(%d,%d) covers %d elements", tc.n, tc.count, total)
		}
		if tc.n > 0 && maxSz-minSz > 1 {
			t.Fatalf("Shards(%d,%d) = %v: unbalanced", tc.n, tc.count, got)
		}
	}
}

// TestShardCount checks the cost-guided shard heuristic.
func TestShardCount(t *testing.T) {
	for _, tc := range []struct {
		card     float64
		min, max int
		want     int
	}{
		{100, 512, 8, 1},    // too small to shard
		{2048, 512, 8, 4},   // one shard per 512 elements
		{100000, 512, 8, 8}, // capped at the worker count
		{0, 512, 8, 1},
	} {
		if got := ShardCount(tc.card, tc.min, tc.max); got != tc.want {
			t.Fatalf("ShardCount(%v,%d,%d) = %d, want %d", tc.card, tc.min, tc.max, got, tc.want)
		}
	}
}
