package sched

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestAsyncRunsSubmittedJobs(t *testing.T) {
	a := NewAsync(2)
	var n atomic.Int32
	for i := 0; i < 20; i++ {
		key := string(rune('a' + i))
		if !a.Submit(key, func() { n.Add(1) }) {
			t.Fatalf("submit %q rejected", key)
		}
	}
	a.Wait()
	if got := n.Load(); got != 20 {
		t.Fatalf("ran %d jobs, want 20", got)
	}
}

func TestAsyncSingleFlightPerKey(t *testing.T) {
	a := NewAsync(1)
	var mu sync.Mutex
	started := make(chan struct{})
	release := make(chan struct{})
	runs := 0
	ok := a.Submit("k", func() {
		close(started)
		<-release
		mu.Lock()
		runs++
		mu.Unlock()
	})
	if !ok {
		t.Fatal("first submit rejected")
	}
	<-started
	// While "k" is running, resubmissions are dropped.
	for i := 0; i < 5; i++ {
		if a.Submit("k", func() { t.Error("duplicate ran") }) {
			t.Fatal("duplicate submit accepted while running")
		}
	}
	close(release)
	a.Wait()
	mu.Lock()
	defer mu.Unlock()
	if runs != 1 {
		t.Fatalf("job ran %d times, want 1", runs)
	}
	// After completion the key is free again.
	if !a.Submit("k", func() {}) {
		t.Fatal("submit after completion rejected")
	}
	a.Wait()
}

func TestWeightedShardsBalance(t *testing.T) {
	// 1000 slots, stripe 100; all the weight in the second half.
	weights := []int32{0, 0, 0, 0, 0, 100, 100, 100, 100, 100}
	spans := WeightedShards(1000, 2, weights, 100)
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0][0] != 0 || spans[1][1] != 1000 {
		t.Fatalf("spans %v do not cover [0,1000)", spans)
	}
	// The boundary should land near slot 750 (half the live weight),
	// not 500 (half the slots).
	b := spans[0][1]
	if b < 700 || b > 800 {
		t.Errorf("weighted boundary at %d, want ~750", b)
	}
	// Spans must be contiguous.
	if spans[0][1] != spans[1][0] {
		t.Errorf("spans %v not contiguous", spans)
	}
}

func TestWeightedShardsFallsBackUniform(t *testing.T) {
	spans := WeightedShards(100, 4, nil, 0)
	want := Shards(100, 4)
	if len(spans) != len(want) {
		t.Fatalf("fallback spans %v, want %v", spans, want)
	}
	for i := range spans {
		if spans[i] != want[i] {
			t.Fatalf("fallback spans %v, want %v", spans, want)
		}
	}
	// Zero weights behave the same.
	spans = WeightedShards(100, 4, []int32{0, 0}, 50)
	for i := range spans {
		if spans[i] != want[i] {
			t.Fatalf("zero-weight spans %v, want %v", spans, want)
		}
	}
}

func TestWeightedShardsCoverAndMonotone(t *testing.T) {
	weights := []int32{5, 0, 90, 1, 0, 4}
	for count := 1; count <= 8; count++ {
		spans := WeightedShards(600, count, weights, 100)
		if spans[0][0] != 0 || spans[len(spans)-1][1] != 600 {
			t.Fatalf("count=%d: spans %v do not cover [0,600)", count, spans)
		}
		for i := range spans {
			if spans[i][0] > spans[i][1] {
				t.Fatalf("count=%d: span %d inverted: %v", count, i, spans)
			}
			if i > 0 && spans[i][0] != spans[i-1][1] {
				t.Fatalf("count=%d: spans %v not contiguous", count, spans)
			}
		}
	}
}
