// Package sched is the run-time scheduler of the parallel collection
// phase: a bounded worker pool executing a dependency DAG of jobs.
//
// The paper observes that the collection phase decomposes into
// independent relation scans ("parallel evaluation of subexpressions",
// strategy 1 of section 4.1): scans of different relations share no
// state except the indexes a probing scan consumes, which induces a
// partial order. The scheduler runs that partial order with a fixed
// number of worker goroutines, so intra-query parallelism is bounded by
// the caller (typically GOMAXPROCS or an explicit Parallelism option)
// rather than by the number of jobs.
//
// Guarantees:
//
//   - A job starts only after all of its dependencies completed
//     successfully (completion of job i happens-before the start of any
//     job depending on i, so jobs need no locking for structures handed
//     across a dependency edge).
//   - At most `workers` jobs run at any moment.
//   - Run returns only after every started job has returned — no
//     goroutine outlives the call, regardless of errors or
//     cancellation.
//   - Errors are reported deterministically: when several jobs fail,
//     the error of the lowest-indexed failed job wins, so concurrent
//     schedules surface the same error a serial left-to-right execution
//     would.
package sched

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Job is one schedulable unit of work.
type Job struct {
	// Name labels the job in cycle errors and debugging output.
	Name string
	// Deps lists the indexes (into the slice passed to Run) of jobs
	// that must complete before this one starts.
	Deps []int
	// Run does the work. It must observe ctx: once the schedule is
	// cancelled (externally or by another job's error), long-running
	// jobs are expected to return promptly with ctx.Err().
	Run func(ctx context.Context) error
}

// state tracks one scheduled run under its mutex.
type state struct {
	mu   sync.Mutex
	cond *sync.Cond

	jobs    []Job
	waiting []int   // unresolved dependency count per job
	rdeps   [][]int // reverse edges: rdeps[i] = jobs waiting on i
	ready   []int   // runnable job indexes, kept sorted ascending
	pending int     // jobs neither started nor abandoned
	running int

	stopped bool // error or cancellation: start no new jobs
	errIdx  int  // index of the lowest-indexed failed job
	err     error
}

// Run executes the job DAG with at most `workers` concurrent jobs and
// returns the first (lowest-indexed) job error, ctx.Err() if the
// context was cancelled before completion, or an error describing a
// dependency cycle. workers < 1 is treated as 1.
func Run(ctx context.Context, workers int, jobs []Job) error {
	if len(jobs) == 0 {
		return ctx.Err()
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	s := &state{
		jobs:    jobs,
		waiting: make([]int, len(jobs)),
		rdeps:   make([][]int, len(jobs)),
		pending: len(jobs),
		errIdx:  len(jobs),
	}
	s.cond = sync.NewCond(&s.mu)
	for i, j := range jobs {
		seen := make(map[int]bool, len(j.Deps))
		for _, d := range j.Deps {
			if d < 0 || d >= len(jobs) {
				return fmt.Errorf("sched: job %d (%s) depends on out-of-range job %d", i, j.Name, d)
			}
			if d == i {
				return fmt.Errorf("sched: job %d (%s) depends on itself", i, j.Name)
			}
			if seen[d] {
				continue
			}
			seen[d] = true
			s.waiting[i]++
			s.rdeps[d] = append(s.rdeps[d], i)
		}
	}
	for i := range jobs {
		if s.waiting[i] == 0 {
			s.ready = append(s.ready, i)
		}
	}
	mQueueDepth.Add(int64(len(s.ready)))

	// A cancelled parent context stops the schedule; a failing job
	// cancels the derived context so sibling jobs abort promptly.
	jctx, cancel := context.WithCancel(ctx)
	defer cancel()
	stopWatch := make(chan struct{})
	watcherDone := make(chan struct{})
	go func() {
		defer close(watcherDone)
		select {
		case <-jctx.Done():
			s.mu.Lock()
			s.stopped = true
			s.cond.Broadcast()
			s.mu.Unlock()
		case <-stopWatch:
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.work(jctx, cancel)
		}()
	}
	wg.Wait()
	close(stopWatch)
	cancel()
	<-watcherDone

	s.mu.Lock()
	defer s.mu.Unlock()
	// Jobs abandoned by a stop (error or cancellation) never get claimed;
	// drop them from the queue-depth gauge so it returns to zero.
	mQueueDepth.Add(-int64(len(s.ready)))
	s.ready = nil
	if s.err != nil {
		return s.err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if s.pending > 0 {
		// Nothing failed, nothing was cancelled, yet jobs never became
		// ready: the dependency graph has a cycle.
		stuck := make([]string, 0, s.pending)
		for i := range s.jobs {
			if s.waiting[i] > 0 {
				stuck = append(stuck, s.jobs[i].Name)
			}
		}
		return fmt.Errorf("sched: dependency cycle among jobs %v", stuck)
	}
	return nil
}

// work is one worker's loop: claim the lowest-indexed ready job, run it
// outside the lock, release its dependents.
func (s *state) work(ctx context.Context, cancel context.CancelFunc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		for !s.stopped && len(s.ready) == 0 && s.pending > 0 && s.running > 0 {
			s.cond.Wait()
		}
		if s.stopped || s.pending == 0 || (len(s.ready) == 0 && s.running == 0) {
			// Stopped, finished, or deadlocked (cycle): either way this
			// worker has nothing left to claim. Wake the others so they
			// reach the same conclusion.
			s.cond.Broadcast()
			return
		}
		if len(s.ready) == 0 {
			continue
		}
		idx := s.ready[0]
		s.ready = s.ready[1:]
		s.pending--
		s.running++
		mQueueDepth.Add(-1)
		s.mu.Unlock()

		start := time.Now()
		err := s.jobs[idx].Run(ctx)
		mJobLatency.Observe(time.Since(start))
		mJobs.Inc()

		s.mu.Lock()
		s.running--
		if err != nil {
			if idx < s.errIdx {
				s.errIdx, s.err = idx, err
			}
			s.stopped = true
			cancel()
		} else {
			for _, dep := range s.rdeps[idx] {
				if s.waiting[dep]--; s.waiting[dep] == 0 {
					s.ready = insertSorted(s.ready, dep)
					mQueueDepth.Add(1)
				}
			}
		}
		s.cond.Broadcast()
	}
}

// insertSorted inserts idx into the ascending slice, preserving order —
// workers always claim the lowest-indexed ready job, which keeps the
// schedule close to the deterministic serial order and makes error
// attribution reproducible.
func insertSorted(a []int, idx int) []int {
	i := sort.SearchInts(a, idx)
	a = append(a, 0)
	copy(a[i+1:], a[i:])
	a[i] = idx
	return a
}
