package sched

import "pascalr/internal/obs"

// Scheduler metrics. The gauges are updated under the existing state
// mutexes (the values they report are defined by that state), while the
// counters are plain atomics; neither adds a lock to any path that did
// not already hold one.
var (
	mJobs = obs.GetCounter("pascal_sched_jobs_total",
		"Jobs executed by the bounded-worker DAG scheduler")
	mQueueDepth = obs.GetGauge("pascal_sched_queue_depth_count",
		"Ready-to-run jobs currently queued across active schedules")
	mJobLatency = obs.GetHistogram("pascal_sched_job_seconds",
		"Per-job run time on scheduler workers; the _sum is cumulative worker busy time")
	mAsyncJobs = obs.GetCounter("pascal_sched_async_jobs_total",
		"Background maintenance jobs accepted by the async executor")
	mAsyncBacklog = obs.GetGauge("pascal_sched_async_backlog_count",
		"Background maintenance jobs pending on the async executor")
)
