package sched

import "sync"

// Async is a small background executor for maintenance work the
// query path must not wait for — today, drift-triggered histogram
// re-bucketing. Jobs are keyed and single-flight: submitting a key
// that is already queued or running is a no-op, so a burst of
// mutations schedules at most one rebuild per relation. At most
// `workers` jobs run concurrently; no worker goroutine exists while
// the queue is empty.
type Async struct {
	mu      sync.Mutex
	cond    *sync.Cond // signalled when the executor drains empty
	workers int
	running int
	closed  bool
	pending map[string]func()
	order   []string // FIFO over pending keys
}

// NewAsync returns an executor running at most workers jobs at once
// (workers < 1 is treated as 1).
func NewAsync(workers int) *Async {
	if workers < 1 {
		workers = 1
	}
	a := &Async{workers: workers, pending: make(map[string]func())}
	a.cond = sync.NewCond(&a.mu)
	return a
}

// Submit enqueues fn under key unless a job with that key is already
// pending or running, or the executor is closed. It returns whether the
// job was accepted.
func (a *Async) Submit(key string, fn func()) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return false
	}
	if _, dup := a.pending[key]; dup {
		return false
	}
	a.pending[key] = fn
	a.order = append(a.order, key)
	mAsyncJobs.Inc()
	mAsyncBacklog.Add(1)
	if a.running < a.workers {
		a.running++
		go a.drain()
	}
	return true
}

// drain runs pending jobs until the queue empties, then exits — the
// goroutine's lifetime is bounded by the queued work.
func (a *Async) drain() {
	for {
		a.mu.Lock()
		if len(a.order) == 0 {
			a.running--
			if a.running == 0 && len(a.pending) == 0 {
				a.cond.Broadcast()
			}
			a.mu.Unlock()
			return
		}
		key := a.order[0]
		a.order = a.order[1:]
		fn := a.pending[key]
		a.mu.Unlock()

		fn()

		a.mu.Lock()
		delete(a.pending, key)
		mAsyncBacklog.Add(-1)
		a.mu.Unlock()
	}
}

// Wait blocks until no job is pending or running. Jobs submitted while
// waiting are waited for too. Unlike a WaitGroup, concurrent Submit and
// Wait are safe: both operate under the executor's mutex.
func (a *Async) Wait() {
	a.mu.Lock()
	for a.running > 0 || len(a.pending) > 0 {
		a.cond.Wait()
	}
	a.mu.Unlock()
}

// Close quiesces the executor for shutdown: submissions from this point
// on are rejected (Submit returns false), and Close blocks until every
// already-accepted job has finished. Unlike Wait alone, the rejection
// guarantees that no job can slip in between the drain and the caller's
// teardown — the race Wait-then-teardown would otherwise leave open.
// Close is idempotent and safe to call concurrently with Submit.
func (a *Async) Close() {
	a.mu.Lock()
	a.closed = true
	for a.running > 0 || len(a.pending) > 0 {
		a.cond.Wait()
	}
	a.mu.Unlock()
}
