package sched

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestAsyncClose: Close waits for accepted jobs, rejects later ones,
// and is idempotent.
func TestAsyncClose(t *testing.T) {
	a := NewAsync(2)
	var ran atomic.Int32
	release := make(chan struct{})
	if !a.Submit("slow", func() { <-release; ran.Add(1) }) {
		t.Fatal("submit rejected on open executor")
	}
	if !a.Submit("fast", func() { ran.Add(1) }) {
		t.Fatal("second submit rejected")
	}
	closed := make(chan struct{})
	go func() { a.Close(); close(closed) }()
	select {
	case <-closed:
		t.Fatal("Close returned while an accepted job was still running")
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	<-closed
	if got := ran.Load(); got != 2 {
		t.Fatalf("ran %d accepted jobs, want 2", got)
	}
	if a.Submit("late", func() { ran.Add(1) }) {
		t.Fatal("Submit accepted after Close")
	}
	a.Close() // idempotent
	if got := ran.Load(); got != 2 {
		t.Fatalf("late job ran; count = %d, want 2", got)
	}
}

// TestAsyncCloseConcurrentSubmit hammers Submit from many goroutines
// while Close runs: every accepted job must complete before Close
// returns, and nothing accepted after it runs at all. Run under -race.
func TestAsyncCloseConcurrentSubmit(t *testing.T) {
	a := NewAsync(4)
	var accepted, ran atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := string(rune('a'+g)) + string(rune('0'+i%10))
				if a.Submit(key, func() { ran.Add(1) }) {
					accepted.Add(1)
				}
			}
		}(g)
	}
	a.Close()
	wg.Wait()
	// Jobs accepted after Close started cannot exist; jobs accepted
	// before must all have run by the time the executor drained. Between
	// Close returning and wg.Wait, Submit only rejects, so the counts
	// are final.
	if accepted.Load() != ran.Load() {
		t.Fatalf("accepted %d jobs but ran %d", accepted.Load(), ran.Load())
	}
}
