package normalize

import (
	"fmt"
	"sort"
	"strings"

	"pascalr/internal/calculus"
)

// DNF converts a quantifier-free NNF matrix into disjunctive normal
// form: a slice of conjunctions, each a slice of join terms. It returns
// a non-nil constant when the matrix is TRUE or FALSE regardless of
// variable bindings: (conjs=nil, const=&true) for a tautologous matrix
// and (conjs=empty, const=&false) for a contradictory one.
//
// Light simplifications are applied: duplicate terms within a
// conjunction collapse, conjunctions containing a term and its exact
// complement (same operands, negated operator) are dropped, and
// duplicate conjunctions collapse. maxConj bounds the distribution
// blow-up.
func DNF(f calculus.Formula, maxConj int) ([][]*calculus.Cmp, *bool, error) {
	conjs, isTrue, err := dnf(f, maxConj)
	if err != nil {
		return nil, nil, err
	}
	if isTrue {
		v := true
		return nil, &v, nil
	}
	conjs = simplifyDNF(conjs)
	if len(conjs) == 0 {
		v := false
		return nil, &v, nil
	}
	return conjs, nil, nil
}

func dnf(f calculus.Formula, maxConj int) ([][]*calculus.Cmp, bool, error) {
	switch g := f.(type) {
	case *calculus.Lit:
		if g.Val {
			return nil, true, nil
		}
		return [][]*calculus.Cmp{}, false, nil
	case *calculus.Cmp:
		return [][]*calculus.Cmp{{g}}, false, nil
	case *calculus.Or:
		var out [][]*calculus.Cmp
		for _, sub := range g.Fs {
			cs, isTrue, err := dnf(sub, maxConj)
			if err != nil {
				return nil, false, err
			}
			if isTrue {
				return nil, true, nil
			}
			out = append(out, cs...)
			if len(out) > maxConj {
				return nil, false, fmt.Errorf("normalize: DNF exceeds %d conjunctions", maxConj)
			}
		}
		return out, false, nil
	case *calculus.And:
		// Start from the single empty conjunction and distribute each
		// child across the accumulated set.
		acc := [][]*calculus.Cmp{{}}
		for _, sub := range g.Fs {
			cs, isTrue, err := dnf(sub, maxConj)
			if err != nil {
				return nil, false, err
			}
			if isTrue {
				continue // AND with TRUE
			}
			if len(cs) == 0 {
				return [][]*calculus.Cmp{}, false, nil // AND with FALSE
			}
			next := make([][]*calculus.Cmp, 0, len(acc)*len(cs))
			for _, a := range acc {
				for _, c := range cs {
					merged := make([]*calculus.Cmp, 0, len(a)+len(c))
					merged = append(merged, a...)
					merged = append(merged, c...)
					next = append(next, merged)
					if len(next) > maxConj {
						return nil, false, fmt.Errorf("normalize: DNF exceeds %d conjunctions", maxConj)
					}
				}
			}
			acc = next
		}
		if len(acc) == 1 && len(acc[0]) == 0 {
			return nil, true, nil // every child was TRUE
		}
		return acc, false, nil
	case *calculus.Not:
		return nil, false, fmt.Errorf("normalize: DNF requires NNF input, found NOT")
	case *calculus.Quant:
		return nil, false, fmt.Errorf("normalize: DNF input contains a quantifier; run Prenex first")
	default:
		return nil, false, fmt.Errorf("normalize: unknown formula %T", f)
	}
}

// simplifyDNF deduplicates terms within conjunctions, drops
// contradictory conjunctions, and deduplicates whole conjunctions.
func simplifyDNF(conjs [][]*calculus.Cmp) [][]*calculus.Cmp {
	out := make([][]*calculus.Cmp, 0, len(conjs))
	seenConj := map[string]bool{}
	for _, conj := range conjs {
		terms := make([]*calculus.Cmp, 0, len(conj))
		seen := map[string]bool{}
		contradictory := false
		for _, c := range conj {
			key := c.String()
			if seen[key] {
				continue
			}
			// Exact complement present? (same operands, negated operator)
			neg := (&calculus.Cmp{L: c.L, Op: c.Op.Negate(), R: c.R}).String()
			if seen[neg] {
				contradictory = true
				break
			}
			seen[key] = true
			terms = append(terms, c)
		}
		if contradictory {
			continue
		}
		ck := conjKey(terms)
		if seenConj[ck] {
			continue
		}
		seenConj[ck] = true
		out = append(out, terms)
	}
	return out
}

func conjKey(terms []*calculus.Cmp) string {
	keys := make([]string, len(terms))
	for i, c := range terms {
		keys[i] = c.String()
	}
	sort.Strings(keys)
	return strings.Join(keys, "&")
}
