package normalize

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"pascalr/internal/baseline"
	"pascalr/internal/calculus"
	"pascalr/internal/relation"
	"pascalr/internal/value"
	"pascalr/internal/workload"
)

// checkedSample returns the checked Example 2.1 selection and its
// university database.
func checkedSample(t *testing.T, scale int) (*calculus.Selection, *calculus.Info, *relation.DB) {
	t.Helper()
	db := workload.MustUniversity(workload.DefaultConfig(scale))
	sel, info, err := calculus.Check(workload.SampleSelection(), db.Catalog())
	if err != nil {
		t.Fatal(err)
	}
	return sel, info, db
}

// TestExample22 reproduces the paper's Example 2.2: standardizing the
// sample query yields the prefix ALL p, SOME c, SOME t over a DNF matrix
// of exactly three conjunctions.
func TestExample22(t *testing.T) {
	sel, _, _ := checkedSample(t, 10)
	sf, err := Standardize(sel, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sf.Prefix) != 3 {
		t.Fatalf("prefix = %v", sf.Prefix)
	}
	wantPrefix := []string{"ALL p IN papers", "SOME c IN courses", "SOME t IN timetable"}
	for i, q := range sf.Prefix {
		if q.String() != wantPrefix[i] {
			t.Errorf("prefix[%d] = %s, want %s", i, q, wantPrefix[i])
		}
	}
	if sf.Const != nil {
		t.Fatalf("matrix is constant %v", *sf.Const)
	}
	if len(sf.Matrix) != 3 {
		t.Fatalf("matrix has %d conjunctions, want 3:\n%s", len(sf.Matrix), sf)
	}
	wantLens := []int{2, 2, 4}
	for i, conj := range sf.Matrix {
		if len(conj) != wantLens[i] {
			t.Errorf("conjunction %d has %d terms, want %d", i, len(conj), wantLens[i])
		}
	}
	s := sf.String()
	for _, want := range []string{
		"p.pyear <> 1977",
		"e.enr <> p.penr",
		"c.clevel <= leveltype#1",
		"e.enr = t.tenr",
		"c.cnr = t.tcnr",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("standard form missing %q:\n%s", want, s)
		}
	}
	// Every conjunction carries the professor restriction — the
	// redundancy strategy 3 later removes.
	for i, conj := range sf.Matrix {
		found := false
		for _, c := range conj {
			if strings.Contains(c.String(), "estatus") {
				found = true
			}
		}
		if !found {
			t.Errorf("conjunction %d lost the professor term", i)
		}
	}
}

// TestExample22EmptyPapersAdaptation reproduces the paper's adaptation
// requirement: with papers = [], the standard form must reduce to
// "employees with estatus = professor", whereas the unadapted form would
// return all employees.
func TestExample22EmptyPapersAdaptation(t *testing.T) {
	sel, _, db := checkedSample(t, 10)
	if err := db.MustRelation("papers").Assign(nil); err != nil {
		t.Fatal(err)
	}
	folded := Fold(sel.Pred, baseline.Emptiness(db))
	adapted := &calculus.Selection{Proj: sel.Proj, Free: sel.Free, Pred: folded}
	sf, err := Standardize(adapted, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// ALL p collapses to TRUE, so the whole OR collapses, leaving the
	// monadic professor restriction with no quantifiers.
	if len(sf.Prefix) != 0 {
		t.Errorf("adapted prefix = %v, want empty", sf.Prefix)
	}
	if len(sf.Matrix) != 1 || len(sf.Matrix[0]) != 1 {
		t.Fatalf("adapted matrix = %v", sf.Matrix)
	}
	if got := sf.Matrix[0][0].String(); !strings.Contains(got, "estatus") {
		t.Errorf("adapted term = %s", got)
	}
}

func TestNNF(t *testing.T) {
	a := &calculus.Cmp{L: calculus.Field{Var: "x", Col: "a"}, Op: value.OpLt, R: calculus.Const{Val: value.Int(3)}}
	b := &calculus.Cmp{L: calculus.Field{Var: "x", Col: "b"}, Op: value.OpEq, R: calculus.Const{Val: value.Int(1)}}

	// NOT over a comparison flips the operator.
	got := NNF(&calculus.Not{F: a})
	if got.String() != "x.a >= 3" {
		t.Errorf("NNF(NOT a<3) = %s", got)
	}
	// De Morgan.
	got = NNF(&calculus.Not{F: calculus.NewAnd(a, b)})
	if got.String() != "x.a >= 3 OR x.b <> 1" {
		t.Errorf("NNF(NOT (a AND b)) = %s", got)
	}
	got = NNF(&calculus.Not{F: calculus.NewOr(a, b)})
	if got.String() != "x.a >= 3 AND x.b <> 1" {
		t.Errorf("NNF(NOT (a OR b)) = %s", got)
	}
	// Double negation.
	got = NNF(&calculus.Not{F: &calculus.Not{F: a}})
	if got.String() != "x.a < 3" {
		t.Errorf("NNF(NOT NOT a) = %s", got)
	}
	// Quantifier dualization.
	q := &calculus.Quant{All: true, Var: "y", Range: &calculus.RangeExpr{Rel: "r"}, Body: a}
	got = NNF(&calculus.Not{F: q})
	gq, ok := got.(*calculus.Quant)
	if !ok || gq.All || gq.Body.String() != "x.a >= 3" {
		t.Errorf("NNF(NOT ALL) = %s", got)
	}
	// NOT of literal.
	if NNF(&calculus.Not{F: &calculus.Lit{Val: true}}).String() != "FALSE" {
		t.Errorf("NNF(NOT TRUE) wrong")
	}
	// No Not nodes remain on a deeply negated formula.
	deep := &calculus.Not{F: calculus.NewOr(&calculus.Not{F: a}, calculus.NewAnd(b, &calculus.Not{F: q}))}
	res := NNF(deep)
	calculus.Walk(res, func(f calculus.Formula) bool {
		if _, isNot := f.(*calculus.Not); isNot {
			t.Errorf("NNF left a NOT: %s", res)
		}
		return true
	})
}

func TestSimplifyConsts(t *testing.T) {
	tr := &calculus.Cmp{L: calculus.Const{Val: value.Int(1)}, Op: value.OpLt, R: calculus.Const{Val: value.Int(2)}}
	fa := &calculus.Cmp{L: calculus.Const{Val: value.Int(2)}, Op: value.OpEq, R: calculus.Const{Val: value.Int(3)}}
	x := &calculus.Cmp{L: calculus.Field{Var: "x", Col: "a"}, Op: value.OpEq, R: calculus.Const{Val: value.Int(1)}}

	if got := SimplifyConsts(tr); got.String() != "TRUE" {
		t.Errorf("1<2 = %s", got)
	}
	if got := SimplifyConsts(calculus.NewAnd(x, fa)); got.String() != "FALSE" {
		t.Errorf("x AND false = %s", got)
	}
	if got := SimplifyConsts(calculus.NewOr(x, tr)); got.String() != "TRUE" {
		t.Errorf("x OR true = %s", got)
	}
	if got := SimplifyConsts(&calculus.Not{F: fa}); got.String() != "TRUE" {
		t.Errorf("NOT false = %s", got)
	}
	if got := SimplifyConsts(nil); got.String() != "TRUE" {
		t.Errorf("nil = %s", got)
	}
	// Quantifier body simplifies but the quantifier survives.
	q := &calculus.Quant{Var: "v", Range: &calculus.RangeExpr{Rel: "r"}, Body: calculus.NewAnd(tr, x)}
	got := SimplifyConsts(q).(*calculus.Quant)
	if got.Body.String() != "x.a = 1" {
		t.Errorf("quant body = %s", got.Body)
	}
}

func TestFoldEmptyRanges(t *testing.T) {
	x := &calculus.Cmp{L: calculus.Field{Var: "v", Col: "a"}, Op: value.OpEq, R: calculus.Const{Val: value.Int(1)}}
	isEmpty := func(r *calculus.RangeExpr) bool { return r.Rel == "empty" }

	someEmpty := &calculus.Quant{Var: "v", Range: &calculus.RangeExpr{Rel: "empty"}, Body: x}
	if got := Fold(someEmpty, isEmpty); got.String() != "FALSE" {
		t.Errorf("SOME over empty = %s", got)
	}
	allEmpty := &calculus.Quant{All: true, Var: "v", Range: &calculus.RangeExpr{Rel: "empty"}, Body: x}
	if got := Fold(allEmpty, isEmpty); got.String() != "TRUE" {
		t.Errorf("ALL over empty = %s", got)
	}
	// Nested: inner empty quantifier decides the outer one.
	outer := &calculus.Quant{All: true, Var: "w", Range: &calculus.RangeExpr{Rel: "full"},
		Body: &calculus.Quant{Var: "v", Range: &calculus.RangeExpr{Rel: "empty"}, Body: x}}
	if got := Fold(outer, isEmpty); got.String() != "FALSE" {
		t.Errorf("ALL w (SOME v-empty) = %s", got)
	}
	// Non-empty quantifier with undecided body survives.
	live := &calculus.Quant{Var: "v", Range: &calculus.RangeExpr{Rel: "full"}, Body: x}
	if _, ok := Fold(live, isEmpty).(*calculus.Quant); !ok {
		t.Errorf("live quantifier folded away")
	}
}

func TestPrenexOrder(t *testing.T) {
	sel, _, _ := checkedSample(t, 5)
	prefix, matrix, err := Prenex(NNF(SimplifyConsts(sel.Pred)))
	if err != nil {
		t.Fatal(err)
	}
	if len(prefix) != 3 || prefix[0].Var != "p" || prefix[1].Var != "c" || prefix[2].Var != "t" {
		t.Errorf("prefix = %v", prefix)
	}
	if calculus.QuantCount(matrix) != 0 {
		t.Errorf("matrix still has quantifiers: %s", matrix)
	}
}

func TestPrenexErrors(t *testing.T) {
	x := &calculus.Cmp{L: calculus.Field{Var: "v", Col: "a"}, Op: value.OpEq, R: calculus.Const{Val: value.Int(1)}}
	if _, _, err := Prenex(&calculus.Not{F: x}); err == nil {
		t.Errorf("Prenex accepted NOT")
	}
	dup := calculus.NewAnd(
		&calculus.Quant{Var: "v", Range: &calculus.RangeExpr{Rel: "r"}, Body: x},
		&calculus.Quant{Var: "v", Range: &calculus.RangeExpr{Rel: "r"}, Body: x},
	)
	if _, _, err := Prenex(dup); err == nil {
		t.Errorf("Prenex accepted duplicate variable names")
	}
}

func TestDNF(t *testing.T) {
	mk := func(v string, n int64) *calculus.Cmp {
		return &calculus.Cmp{L: calculus.Field{Var: v, Col: "a"}, Op: value.OpEq, R: calculus.Const{Val: value.Int(n)}}
	}
	a, b, c, d := mk("w", 1), mk("x", 2), mk("y", 3), mk("z", 4)

	// (a OR b) AND (c OR d) -> 4 conjunctions.
	conjs, cnst, err := DNF(calculus.NewAnd(calculus.NewOr(a, b), calculus.NewOr(c, d)), 100)
	if err != nil || cnst != nil {
		t.Fatalf("DNF error %v const %v", err, cnst)
	}
	if len(conjs) != 4 {
		t.Errorf("distribution produced %d conjunctions", len(conjs))
	}
	// Duplicate atom collapses.
	conjs, _, err = DNF(calculus.NewAnd(a, a), 100)
	if err != nil || len(conjs) != 1 || len(conjs[0]) != 1 {
		t.Errorf("duplicate atom not collapsed: %v", conjs)
	}
	// Contradiction drops the conjunction; whole formula becomes FALSE.
	notA := &calculus.Cmp{L: a.L, Op: a.Op.Negate(), R: a.R}
	conjs, cnst, err = DNF(calculus.NewAnd(a, notA), 100)
	if err != nil || cnst == nil || *cnst {
		t.Errorf("contradiction = %v const %v", conjs, cnst)
	}
	// TRUE matrix.
	_, cnst, err = DNF(&calculus.Lit{Val: true}, 100)
	if err != nil || cnst == nil || !*cnst {
		t.Errorf("TRUE matrix const = %v", cnst)
	}
	// Duplicate conjunctions collapse.
	conjs, _, err = DNF(calculus.NewOr(calculus.NewAnd(a, b), calculus.NewAnd(b, a)), 100)
	if err != nil || len(conjs) != 1 {
		t.Errorf("duplicate conjunctions kept: %v", conjs)
	}
	// Explosion guard.
	big := calculus.NewAnd(calculus.NewOr(a, b), calculus.NewOr(c, d))
	if _, _, err := DNF(big, 2); err == nil {
		t.Errorf("maxConj not enforced")
	}
}

func TestStandardFormRoundTrip(t *testing.T) {
	sel, info, db := checkedSample(t, 8)
	sf, err := Standardize(sel, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rebuilt := sf.Selection()
	// The rebuilt selection must evaluate identically (all ranges in the
	// default university are non-empty, so the standardization
	// assumption holds).
	want := resultKey(t, evalSel(t, db, sel, info))
	got := resultKey(t, evalSel(t, db, rebuilt, nil))
	if want != got {
		t.Errorf("standard form changes semantics:\noriginal: %s\nstandard: %s", want, got)
	}
}

func TestStandardFormHelpers(t *testing.T) {
	sel, _, _ := checkedSample(t, 5)
	sf, err := Standardize(sel, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if vars := sf.Vars(); len(vars) != 4 || vars[0] != "e" {
		t.Errorf("Vars = %v", vars)
	}
	if r, ok := sf.RangeOf("p"); !ok || r.Rel != "papers" {
		t.Errorf("RangeOf(p) = %v,%v", r, ok)
	}
	if _, ok := sf.RangeOf("zz"); ok {
		t.Errorf("RangeOf(zz) resolved")
	}
	// p occurs in conjunctions 0 and 1 (Example 4.6's observation).
	if got := sf.ConjunctionsWith("p"); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("ConjunctionsWith(p) = %v", got)
	}
	if got := sf.ConjunctionsWith("c"); len(got) != 1 || got[0] != 2 {
		t.Errorf("ConjunctionsWith(c) = %v", got)
	}
	if sf.NumTerms() != 8 {
		t.Errorf("NumTerms = %d", sf.NumTerms())
	}
	cp := sf.Clone()
	cp.Matrix[0][0].Op = cp.Matrix[0][0].Op.Negate()
	if sf.String() == cp.String() {
		t.Errorf("Clone shares term storage")
	}
}

func evalSel(t *testing.T, db *relation.DB, sel *calculus.Selection, info *calculus.Info) *relation.Relation {
	t.Helper()
	if info == nil {
		var err error
		// Re-check to compute the result schema; labels are already
		// resolved so this is idempotent.
		sel, info, err = calculus.Check(sel, db.Catalog())
		if err != nil {
			t.Fatal(err)
		}
	}
	res, err := baseline.Eval(sel, info, db)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func resultKey(t *testing.T, rel *relation.Relation) string {
	t.Helper()
	var keys []string
	for _, tup := range rel.Tuples() {
		keys = append(keys, value.EncodeKey(tup))
	}
	sort.Strings(keys)
	return strings.Join(keys, "|")
}

// TestStandardizeIdempotent: standardizing an already-standard selection
// reproduces the same prefix and matrix.
func TestStandardizeIdempotent(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		db := workload.RandomDB(rng, 4)
		sel := workload.RandomSelection(rng)
		checked, _, err := calculus.Check(sel, db.Catalog())
		if err != nil {
			t.Fatal(err)
		}
		sf1, err := Standardize(checked, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		sf2, err := Standardize(sf1.Selection(), Options{})
		if err != nil {
			t.Fatalf("seed %d: re-standardize: %v", seed, err)
		}
		if sf1.String() != sf2.String() {
			t.Fatalf("seed %d: standardization not idempotent:\n%s\n%s", seed, sf1, sf2)
		}
	}
}

// TestPipelineEquivalenceRandom is the differential property test of the
// whole section 2 pipeline: for random databases (with empty relations)
// and random selections, Fold + Standardize must preserve semantics
// exactly, per Lemma 1.
func TestPipelineEquivalenceRandom(t *testing.T) {
	for seed := int64(0); seed < 400; seed++ {
		rng := rand.New(rand.NewSource(seed))
		db := workload.RandomDB(rng, 5)
		sel := workload.RandomSelection(rng)
		checked, info, err := calculus.Check(sel, db.Catalog())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want, err := baseline.Eval(checked, info, db)
		if err != nil {
			t.Fatalf("seed %d: baseline: %v", seed, err)
		}

		// NNF alone is unconditionally equivalent.
		nnfSel := &calculus.Selection{Proj: checked.Proj, Free: checked.Free, Pred: NNF(checked.Pred)}
		got, err := baseline.Eval(nnfSel, info, db)
		if err != nil {
			t.Fatalf("seed %d: nnf eval: %v", seed, err)
		}
		if resultKey(t, want) != resultKey(t, got) {
			t.Fatalf("seed %d: NNF changed semantics\nquery: %s", seed, checked)
		}

		// Fold + full standardization.
		folded := Fold(checked.Pred, baseline.Emptiness(db))
		foldedSel := &calculus.Selection{Proj: checked.Proj, Free: checked.Free, Pred: folded}
		sf, err := Standardize(foldedSel, Options{})
		if err != nil {
			t.Fatalf("seed %d: standardize: %v\nquery: %s", seed, err, checked)
		}
		got, err = baseline.Eval(sf.Selection(), info, db)
		if err != nil {
			t.Fatalf("seed %d: standard eval: %v", seed, err)
		}
		if resultKey(t, want) != resultKey(t, got) {
			t.Fatalf("seed %d: standardization changed semantics\nquery: %s\nstandard:\n%s",
				seed, checked, sf)
		}
	}
}
