package normalize

import (
	"fmt"

	"pascalr/internal/calculus"
)

// Prenex pulls all quantifiers of an NNF formula into a prefix,
// preserving their nesting order left-to-right. The result is equivalent
// to the input under the assumption that every quantifier's range is
// non-empty:
//
//	A AND SOME v IN rel (B) = SOME v IN rel (A AND B)   (Lemma 1 rule 1, always)
//	A OR  SOME v IN rel (B) = SOME v IN rel (A OR B)    (rule 2, rel non-empty)
//	A AND ALL  v IN rel (B) = ALL  v IN rel (A AND B)   (rule 3, rel non-empty)
//	A OR  ALL  v IN rel (B) = ALL  v IN rel (A OR B)    (rule 4, always)
//
// The engine re-establishes the assumption at runtime by Folding empty
// ranges out of the original formula first.
//
// The input must be in NNF (no Not nodes) with globally unique variable
// names, as calculus.Check enforces.
func Prenex(f calculus.Formula) ([]QDecl, calculus.Formula, error) {
	prefix, matrix, err := prenex(f)
	if err != nil {
		return nil, nil, err
	}
	seen := map[string]bool{}
	for _, q := range prefix {
		if seen[q.Var] {
			return nil, nil, fmt.Errorf("normalize: duplicate quantified variable %s (input not uniquely named)", q.Var)
		}
		seen[q.Var] = true
	}
	return prefix, matrix, nil
}

func prenex(f calculus.Formula) ([]QDecl, calculus.Formula, error) {
	switch g := f.(type) {
	case nil:
		return nil, &calculus.Lit{Val: true}, nil
	case *calculus.Cmp, *calculus.Lit:
		return nil, g, nil
	case *calculus.Not:
		return nil, nil, fmt.Errorf("normalize: Prenex requires NNF input, found NOT")
	case *calculus.And:
		var prefix []QDecl
		matrix := make([]calculus.Formula, 0, len(g.Fs))
		for _, sub := range g.Fs {
			p, m, err := prenex(sub)
			if err != nil {
				return nil, nil, err
			}
			prefix = append(prefix, p...)
			matrix = append(matrix, m)
		}
		return prefix, calculus.NewAnd(matrix...), nil
	case *calculus.Or:
		var prefix []QDecl
		matrix := make([]calculus.Formula, 0, len(g.Fs))
		for _, sub := range g.Fs {
			p, m, err := prenex(sub)
			if err != nil {
				return nil, nil, err
			}
			prefix = append(prefix, p...)
			matrix = append(matrix, m)
		}
		return prefix, calculus.NewOr(matrix...), nil
	case *calculus.Quant:
		p, m, err := prenex(g.Body)
		if err != nil {
			return nil, nil, err
		}
		prefix := append([]QDecl{{All: g.All, Var: g.Var, Range: calculus.CloneRange(g.Range)}}, p...)
		return prefix, m, nil
	default:
		return nil, nil, fmt.Errorf("normalize: unknown formula %T", f)
	}
}
