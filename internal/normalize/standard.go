package normalize

import (
	"fmt"
	"strings"

	"pascalr/internal/calculus"
)

// Formula reconstructs the standard form as a calculus formula:
// the quantifier prefix wrapped around the DNF matrix. Useful for
// re-evaluating a standard form with the baseline evaluator and for
// EXPLAIN output.
func (sf *StandardForm) Formula() calculus.Formula {
	var matrix calculus.Formula
	if sf.Const != nil {
		matrix = &calculus.Lit{Val: *sf.Const}
	} else {
		disjuncts := make([]calculus.Formula, 0, len(sf.Matrix))
		for _, conj := range sf.Matrix {
			terms := make([]calculus.Formula, 0, len(conj))
			for _, c := range conj {
				terms = append(terms, &calculus.Cmp{L: c.L, Op: c.Op, R: c.R})
			}
			disjuncts = append(disjuncts, calculus.NewAnd(terms...))
		}
		matrix = calculus.NewOr(disjuncts...)
	}
	f := matrix
	for i := len(sf.Prefix) - 1; i >= 0; i-- {
		q := sf.Prefix[i]
		f = &calculus.Quant{All: q.All, Var: q.Var, Range: calculus.CloneRange(q.Range), Body: f}
	}
	return f
}

// Selection reconstructs a full selection from the standard form.
func (sf *StandardForm) Selection() *calculus.Selection {
	return &calculus.Selection{
		Proj: append([]calculus.Field(nil), sf.Proj...),
		Free: cloneDecls(sf.Free),
		Pred: sf.Formula(),
	}
}

// Vars returns all variables of the standard form: free variables first
// (in declaration order), then the quantifier prefix left-to-right.
func (sf *StandardForm) Vars() []string {
	out := make([]string, 0, len(sf.Free)+len(sf.Prefix))
	for _, d := range sf.Free {
		out = append(out, d.Var)
	}
	for _, q := range sf.Prefix {
		out = append(out, q.Var)
	}
	return out
}

// RangeOf returns the range expression of a variable (free or
// quantified).
func (sf *StandardForm) RangeOf(v string) (*calculus.RangeExpr, bool) {
	for _, d := range sf.Free {
		if d.Var == v {
			return d.Range, true
		}
	}
	for _, q := range sf.Prefix {
		if q.Var == v {
			return q.Range, true
		}
	}
	return nil, false
}

// ConjunctionsWith returns the indexes of the matrix conjunctions that
// contain at least one term mentioning v. Strategy 4's splitting rule
// for universal quantifiers depends on this count.
func (sf *StandardForm) ConjunctionsWith(v string) []int {
	var out []int
	for i, conj := range sf.Matrix {
		for _, c := range conj {
			if mentions(c, v) {
				out = append(out, i)
				break
			}
		}
	}
	return out
}

func mentions(c *calculus.Cmp, v string) bool {
	for _, mv := range calculus.VarsOfCmp(c) {
		if mv == v {
			return true
		}
	}
	return false
}

// NumTerms returns the total number of join terms in the matrix.
func (sf *StandardForm) NumTerms() int {
	n := 0
	for _, conj := range sf.Matrix {
		n += len(conj)
	}
	return n
}

// Clone returns a deep copy of the standard form.
func (sf *StandardForm) Clone() *StandardForm {
	cp := &StandardForm{
		Proj: append([]calculus.Field(nil), sf.Proj...),
		Free: cloneDecls(sf.Free),
	}
	for _, q := range sf.Prefix {
		cp.Prefix = append(cp.Prefix, QDecl{All: q.All, Var: q.Var, Range: calculus.CloneRange(q.Range)})
	}
	for _, conj := range sf.Matrix {
		nc := make([]*calculus.Cmp, len(conj))
		for i, c := range conj {
			nc[i] = &calculus.Cmp{L: c.L, Op: c.Op, R: c.R}
		}
		cp.Matrix = append(cp.Matrix, nc)
	}
	if sf.Const != nil {
		v := *sf.Const
		cp.Const = &v
	}
	return cp
}

// String renders the standard form in the style of Example 2.2 of the
// paper.
func (sf *StandardForm) String() string {
	var b strings.Builder
	b.WriteString("[<")
	for i, p := range sf.Proj {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(p.String())
	}
	b.WriteString("> OF\n")
	for _, d := range sf.Free {
		fmt.Fprintf(&b, "  EACH %s IN %s\n", d.Var, d.Range)
	}
	b.WriteString(" :\n")
	for _, q := range sf.Prefix {
		fmt.Fprintf(&b, "  %s\n", q)
	}
	if sf.Const != nil {
		fmt.Fprintf(&b, "    %v\n", map[bool]string{true: "TRUE", false: "FALSE"}[*sf.Const])
		return b.String()
	}
	for i, conj := range sf.Matrix {
		if i > 0 {
			b.WriteString("   OR\n")
		}
		parts := make([]string, len(conj))
		for j, c := range conj {
			parts[j] = "(" + c.String() + ")"
		}
		fmt.Fprintf(&b, "    %s\n", strings.Join(parts, " AND "))
	}
	return b.String()
}
