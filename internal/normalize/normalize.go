// Package normalize implements the paper's standardization pipeline
// (section 2): every selection expression is transformed into prenex
// normal form with a matrix in disjunctive normal form, assuming all
// range relations are non-empty. The Lemma 1 runtime adaptation for
// empty ranges is provided by Fold, which the engine applies to the
// original formula before standardizing whenever a range turns out to
// be empty.
//
// The pipeline is: SimplifyConsts (constant folding) -> NNF (negation
// normal form; NOT disappears entirely because every comparison operator
// has an exact complement) -> Prenex (quantifiers pulled to a prefix,
// valid under the non-emptiness assumption per Lemma 1) -> DNF (the
// matrix becomes a disjunction of conjunctions of join terms).
package normalize

import (
	"fmt"

	"pascalr/internal/calculus"
)

// QDecl is one quantifier of the prenex prefix, in left-to-right order.
type QDecl struct {
	All   bool
	Var   string
	Range *calculus.RangeExpr
}

// String renders the quantifier declaration.
func (q QDecl) String() string {
	if q.All {
		return fmt.Sprintf("ALL %s IN %s", q.Var, q.Range)
	}
	return fmt.Sprintf("SOME %s IN %s", q.Var, q.Range)
}

// StandardForm is the paper's standardized query: free variables, a
// quantifier prefix, and a DNF matrix of join terms. It is equivalent to
// the original selection only under the assumption that every range
// relation (including extended ranges) is non-empty; the engine
// re-derives it through Fold when that assumption fails.
type StandardForm struct {
	Proj   []calculus.Field
	Free   []calculus.Decl
	Prefix []QDecl
	Matrix [][]*calculus.Cmp

	// Const is non-nil when the matrix reduced to a constant: the
	// selection predicate is TRUE or FALSE for every binding (still under
	// the non-emptiness assumption for the prefix).
	Const *bool
}

// Options bounds the standardization.
type Options struct {
	// MaxConjunctions limits DNF growth; 0 means DefaultMaxConjunctions.
	MaxConjunctions int
}

// DefaultMaxConjunctions bounds the DNF matrix size.
const DefaultMaxConjunctions = 4096

func (o Options) maxConj() int {
	if o.MaxConjunctions > 0 {
		return o.MaxConjunctions
	}
	return DefaultMaxConjunctions
}

// Standardize converts a checked selection into standard form. The
// selection's predicate must be fully resolved (no Labels), as
// calculus.Check guarantees.
func Standardize(sel *calculus.Selection, opts Options) (*StandardForm, error) {
	pred := calculus.Clone(sel.Pred)
	pred = SimplifyConsts(pred)
	pred = NNF(pred)
	prefix, matrix, err := Prenex(pred)
	if err != nil {
		return nil, err
	}
	conjs, constVal, err := DNF(matrix, opts.maxConj())
	if err != nil {
		return nil, err
	}
	sf := &StandardForm{
		Proj:   append([]calculus.Field(nil), sel.Proj...),
		Free:   cloneDecls(sel.Free),
		Prefix: prefix,
		Matrix: conjs,
		Const:  constVal,
	}
	return sf, nil
}

func cloneDecls(ds []calculus.Decl) []calculus.Decl {
	out := make([]calculus.Decl, len(ds))
	for i, d := range ds {
		out[i] = calculus.Decl{Var: d.Var, Range: calculus.CloneRange(d.Range)}
	}
	return out
}

// SimplifyConsts folds comparisons between two constants into boolean
// literals and propagates literals through the connectives and
// quantifier bodies. Quantifiers themselves are preserved: SOME v (TRUE)
// is "v's range is non-empty", which only Fold may decide.
func SimplifyConsts(f calculus.Formula) calculus.Formula {
	switch g := f.(type) {
	case nil:
		return &calculus.Lit{Val: true}
	case *calculus.Cmp:
		l, lok := g.L.(calculus.Const)
		r, rok := g.R.(calculus.Const)
		if lok && rok {
			ok, err := g.Op.Apply(l.Val, r.Val)
			if err == nil {
				return &calculus.Lit{Val: ok}
			}
		}
		return &calculus.Cmp{L: g.L, Op: g.Op, R: g.R}
	case *calculus.Not:
		sub := SimplifyConsts(g.F)
		if lit, ok := sub.(*calculus.Lit); ok {
			return &calculus.Lit{Val: !lit.Val}
		}
		return &calculus.Not{F: sub}
	case *calculus.And:
		fs := make([]calculus.Formula, 0, len(g.Fs))
		for _, sub := range g.Fs {
			fs = append(fs, SimplifyConsts(sub))
		}
		return calculus.NewAnd(fs...)
	case *calculus.Or:
		fs := make([]calculus.Formula, 0, len(g.Fs))
		for _, sub := range g.Fs {
			fs = append(fs, SimplifyConsts(sub))
		}
		return calculus.NewOr(fs...)
	case *calculus.Lit:
		return &calculus.Lit{Val: g.Val}
	case *calculus.Quant:
		return &calculus.Quant{All: g.All, Var: g.Var,
			Range: calculus.CloneRange(g.Range), Body: SimplifyConsts(g.Body)}
	default:
		panic(fmt.Sprintf("normalize: unknown formula %T", f))
	}
}

// Fold applies the Lemma 1 empty-range adaptation: a quantifier whose
// range is empty is replaced by its truth value (SOME over the empty
// relation is FALSE, ALL over the empty relation is TRUE), and boolean
// structure is simplified. isEmpty decides emptiness of a range
// expression — for base ranges it checks the relation, for extended
// ranges it must account for the filter.
//
// Folding proceeds innermost-first so that a quantifier made trivial by
// a folded inner quantifier is itself simplified.
func Fold(f calculus.Formula, isEmpty func(*calculus.RangeExpr) bool) calculus.Formula {
	switch g := f.(type) {
	case nil:
		return &calculus.Lit{Val: true}
	case *calculus.Cmp:
		return SimplifyConsts(g)
	case *calculus.Lit:
		return &calculus.Lit{Val: g.Val}
	case *calculus.Not:
		sub := Fold(g.F, isEmpty)
		if lit, ok := sub.(*calculus.Lit); ok {
			return &calculus.Lit{Val: !lit.Val}
		}
		return &calculus.Not{F: sub}
	case *calculus.And:
		fs := make([]calculus.Formula, 0, len(g.Fs))
		for _, sub := range g.Fs {
			fs = append(fs, Fold(sub, isEmpty))
		}
		return calculus.NewAnd(fs...)
	case *calculus.Or:
		fs := make([]calculus.Formula, 0, len(g.Fs))
		for _, sub := range g.Fs {
			fs = append(fs, Fold(sub, isEmpty))
		}
		return calculus.NewOr(fs...)
	case *calculus.Quant:
		if isEmpty(g.Range) {
			return &calculus.Lit{Val: g.All}
		}
		body := Fold(g.Body, isEmpty)
		if lit, ok := body.(*calculus.Lit); ok {
			// The range is known non-empty here, so the quantifier is
			// decided by its body alone: SOME v (TRUE) = TRUE,
			// ALL v (FALSE) = FALSE, and both agree with the literal.
			return &calculus.Lit{Val: lit.Val}
		}
		return &calculus.Quant{All: g.All, Var: g.Var, Range: calculus.CloneRange(g.Range), Body: body}
	default:
		panic(fmt.Sprintf("normalize: unknown formula %T", f))
	}
}

// NNF converts a formula to negation normal form. Because the atomic
// formulae are comparisons over totally ordered domains, NOT is
// eliminated entirely: NOT (a op b) becomes a (negate op) b, and
// quantifiers dualize (NOT SOME = ALL NOT, NOT ALL = SOME NOT).
func NNF(f calculus.Formula) calculus.Formula {
	return nnf(f, false)
}

func nnf(f calculus.Formula, neg bool) calculus.Formula {
	switch g := f.(type) {
	case nil:
		return &calculus.Lit{Val: !neg}
	case *calculus.Cmp:
		op := g.Op
		if neg {
			op = op.Negate()
		}
		return &calculus.Cmp{L: g.L, Op: op, R: g.R}
	case *calculus.Lit:
		return &calculus.Lit{Val: g.Val != neg}
	case *calculus.Not:
		return nnf(g.F, !neg)
	case *calculus.And:
		fs := make([]calculus.Formula, 0, len(g.Fs))
		for _, sub := range g.Fs {
			fs = append(fs, nnf(sub, neg))
		}
		if neg {
			return calculus.NewOr(fs...)
		}
		return calculus.NewAnd(fs...)
	case *calculus.Or:
		fs := make([]calculus.Formula, 0, len(g.Fs))
		for _, sub := range g.Fs {
			fs = append(fs, nnf(sub, neg))
		}
		if neg {
			return calculus.NewAnd(fs...)
		}
		return calculus.NewOr(fs...)
	case *calculus.Quant:
		// NOT SOME v IN [S] (B) = ALL v IN [S] (NOT B): the range (and its
		// filter) is untouched by the negation, per the one-sorted
		// translation NOT SOME v (S(v) AND B) = ALL v (NOT S(v) OR NOT B).
		return &calculus.Quant{
			All:   g.All != neg, // negation dualizes the quantifier
			Var:   g.Var,
			Range: calculus.CloneRange(g.Range),
			Body:  nnf(g.Body, neg),
		}
	default:
		panic(fmt.Sprintf("normalize: unknown formula %T", f))
	}
}
