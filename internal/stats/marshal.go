// Checkpoint serialization of TableStats. A durable database persists
// each relation's live statistics in its checkpoint manifest, so
// recovery resumes with the histograms, distinct counts, and slot
// density the process had built — instead of resetting to empty and
// replanning blind until enough mutations re-teach it. The linear
// distinct sketch is deliberately not persisted (2 KiB per high-
// distinct column of mostly-zero bits): the serialized distinct count
// acts as a floor estimate and the recreated sketch re-learns, which a
// later drift rebuild trues up.
package stats

import (
	"fmt"
	"math"
	"sort"

	"pascalr/internal/protocol"
	"pascalr/internal/value"
)

const statsMarshalVersion = 1

// Column-statistics mode tags in the serialized form.
const (
	marshalModeExact  = 0
	marshalModeDepth  = 1
	marshalModeBounds = 2
)

// Marshal serializes the statistics (deterministically — map iteration
// is sorted) for a checkpoint manifest.
func (t *TableStats) Marshal() ([]byte, error) {
	if t == nil {
		return nil, nil
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	w := protocol.NewWriter()
	w.Uvarint(statsMarshalVersion)
	w.String(t.Name)
	w.Uvarint(uint64(t.rows))
	w.Uvarint(uint64(t.drift))
	w.Uvarint(uint64(t.baseRows))
	w.Strings(t.colList)
	w.Uvarint(math.Float64bits(t.access.ScanTuple))
	w.Uvarint(math.Float64bits(t.access.Probe))
	w.Uvarint(uint64(t.slots.stripe))
	w.Uvarint(uint64(len(t.slots.live)))
	for _, n := range t.slots.live {
		w.Uvarint(uint64(n))
	}
	for _, name := range t.colList {
		if err := marshalCol(w, t.cols[name]); err != nil {
			return nil, fmt.Errorf("stats: column %s: %w", name, err)
		}
	}
	return w.Bytes(), nil
}

func marshalCol(w *protocol.Writer, c *colStats) error {
	w.Uvarint(uint64(c.n))
	w.Bool(c.ordered && c.min.IsValid())
	if c.ordered && c.min.IsValid() {
		if err := w.Val(c.min); err != nil {
			return err
		}
		if err := w.Val(c.max); err != nil {
			return err
		}
	}
	switch {
	case c.counts != nil:
		w.Uvarint(marshalModeExact)
		keys := make([]string, 0, len(c.counts))
		for k := range c.counts {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		w.Uvarint(uint64(len(keys)))
		for _, k := range keys {
			vc := c.counts[k]
			if err := w.Val(vc.v); err != nil {
				return err
			}
			w.Uvarint(uint64(vc.n))
		}
	case len(c.buckets) > 0:
		w.Uvarint(marshalModeDepth)
		w.Uvarint(uint64(c.distinctCount()))
		w.Uvarint(math.Float64bits(c.lo))
		w.Uvarint(uint64(len(c.buckets)))
		for _, b := range c.buckets {
			w.Uvarint(math.Float64bits(b.upper))
			w.Uvarint(uint64(b.count))
			w.Uvarint(uint64(b.distinct))
		}
	default:
		w.Uvarint(marshalModeBounds)
		w.Uvarint(uint64(c.distinctCount()))
	}
	return nil
}

// Unmarshal reconstitutes checkpointed statistics, ready to keep
// observing mutations (WAL replay feeds it exactly like live traffic).
func Unmarshal(data []byte) (*TableStats, error) {
	r := protocol.NewReader(data)
	ver, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if ver != statsMarshalVersion {
		return nil, fmt.Errorf("stats: unsupported serialization version %d", ver)
	}
	name, err := r.String()
	if err != nil {
		return nil, err
	}
	rows, err1 := r.Uvarint()
	drift, err2 := r.Uvarint()
	baseRows, err3 := r.Uvarint()
	if err1 != nil || err2 != nil || err3 != nil {
		return nil, fmt.Errorf("stats: truncated header")
	}
	colList, err := r.Strings()
	if err != nil {
		return nil, err
	}
	scanBits, err1 := r.Uvarint()
	probeBits, err2 := r.Uvarint()
	if err1 != nil || err2 != nil {
		return nil, fmt.Errorf("stats: truncated access profile")
	}
	t := NewTableStats(name, colList)
	t.rows, t.drift, t.baseRows = int(rows), int(drift), int(baseRows)
	t.access = CostProfile{ScanTuple: math.Float64frombits(scanBits), Probe: math.Float64frombits(probeBits)}
	stripe, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	nStripes, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if nStripes > maxStripes {
		return nil, fmt.Errorf("stats: stripe count %d out of range", nStripes)
	}
	t.slots.stripe = int(stripe)
	for range nStripes {
		n, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		t.slots.live = append(t.slots.live, int32(n))
	}
	for _, cn := range colList {
		c, err := unmarshalCol(r)
		if err != nil {
			return nil, fmt.Errorf("stats: column %s: %w", cn, err)
		}
		t.cols[cn] = c
	}
	t.degradedCols = 0
	for _, c := range t.cols {
		if c.counts == nil {
			t.degradedCols++
		}
	}
	return t, nil
}

func unmarshalCol(r *protocol.Reader) (*colStats, error) {
	c := &colStats{}
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	c.n = int(n)
	hasBounds, err := r.Bool()
	if err != nil {
		return nil, err
	}
	if hasBounds {
		if c.min, err = r.Val(); err != nil {
			return nil, err
		}
		if c.max, err = r.Val(); err != nil {
			return nil, err
		}
		c.ordered = true
	}
	mode, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	switch mode {
	case marshalModeExact:
		nVals, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		if nVals > MaxExactValues {
			return nil, fmt.Errorf("exact table of %d values out of range", nVals)
		}
		c.counts = make(map[string]*valCount, nVals)
		for range nVals {
			v, err := r.Val()
			if err != nil {
				return nil, err
			}
			cnt, err := r.Uvarint()
			if err != nil {
				return nil, err
			}
			c.counts[encVal(v)] = &valCount{v: v, n: int(cnt)}
		}
		c.distinct = len(c.counts)
	case marshalModeDepth:
		distinct, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		loBits, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		nBuckets, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		if nBuckets > 4*HistBuckets {
			return nil, fmt.Errorf("bucket count %d out of range", nBuckets)
		}
		c.distinct = int(distinct)
		c.lo = math.Float64frombits(loBits)
		for range nBuckets {
			upBits, err1 := r.Uvarint()
			cnt, err2 := r.Uvarint()
			dst, err3 := r.Uvarint()
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("truncated bucket")
			}
			c.buckets = append(c.buckets, bucket{upper: math.Float64frombits(upBits), count: int(cnt), distinct: int(dst)})
		}
		// Fresh sketch: the persisted distinct count floors the estimate
		// until the sketch (or a drift rebuild) re-learns.
		c.sketch = newLinearSketch()
	case marshalModeBounds:
		distinct, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		c.distinct = int(distinct)
		c.sketch = newLinearSketch()
	default:
		return nil, fmt.Errorf("unknown column mode %d", mode)
	}
	return c, nil
}

var _ = value.Value{} // keep the import: Val round-trips value.Value
