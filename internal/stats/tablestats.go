// TableStats: live, incrementally maintained relation statistics.
// Formerly a write-once summary produced by DB.Analyze rescans; now the
// storage layer's mutators feed it on every insert, delete, and
// assignment, so cost-based planning never needs an analyze pass —
// Analyze survives only as a forced rebuild.
package stats

import (
	"fmt"
	"strings"
	"sync"

	"pascalr/internal/value"
)

const (
	// slotStripe0 is the initial slot-density stripe width; maxStripes
	// bounds the density array, doubling the stripe beyond it.
	slotStripe0 = 64
	maxStripes  = 1024

	// minDriftMutations and driftFraction set the re-bucketing trigger:
	// a table in histogram mode re-buckets after
	// max(minDriftMutations, driftFraction·rows) mutations.
	minDriftMutations = 256
	driftFraction     = 0.2
)

// slotDensity tracks live-tuple counts per contiguous stripe of slot
// indexes — the per-range surviving-tuple estimate shard balancing
// consults instead of assuming uniform slot occupancy.
type slotDensity struct {
	stripe int
	live   []int32
}

func (s *slotDensity) add(slot int, delta int32) {
	if slot < 0 {
		return
	}
	if s.stripe == 0 {
		s.stripe = slotStripe0
	}
	for slot/s.stripe >= maxStripes {
		s.coarsen()
	}
	i := slot / s.stripe
	for len(s.live) <= i {
		s.live = append(s.live, 0)
	}
	s.live[i] += delta
	if s.live[i] < 0 {
		s.live[i] = 0
	}
}

// coarsen doubles the stripe width, merging stripe pairs.
func (s *slotDensity) coarsen() {
	merged := make([]int32, (len(s.live)+1)/2)
	for i, n := range s.live {
		merged[i/2] += n
	}
	s.live = merged
	s.stripe *= 2
}

func (s *slotDensity) clone() slotDensity {
	return slotDensity{stripe: s.stripe, live: append([]int32(nil), s.live...)}
}

// CostProfile describes the relative per-tuple access costs of the
// storage backend holding a relation: how expensive one scanned tuple
// and one point lookup are, in units where the in-memory backend is
// 1.0. The planner's shard balancer consults it so a disk-resident
// relation splits into proportionally finer work units; plan *shape*
// (index choice, scan order) deliberately does not read it, because
// index and range structures are RAM-resident on every backend.
type CostProfile struct {
	ScanTuple float64
	Probe     float64
}

// TableStats is one relation's live statistics: cardinality, per-column
// histograms, and slot density. All methods are safe for concurrent
// use; mutators are expected to be serialized by the storage layer's
// content write lock, readers may run anywhere (including with no
// database lock held — compile-time planning reads snapshots).
type TableStats struct {
	Name string

	mu      sync.RWMutex
	rows    int
	cols    map[string]*colStats
	colList []string
	slots   slotDensity
	access  CostProfile // backend access costs; zero until SetAccessCost

	drift    int // mutations since the last (re)build
	baseRows int // rows at the last (re)build
	// degradedCols counts columns that degraded out of exact mode, so
	// the per-mutation drift check needs no column iteration.
	degradedCols int
}

// NewTableStats creates empty statistics for a relation with the given
// columns, ready to observe mutations.
func NewTableStats(name string, cols []string) *TableStats {
	t := &TableStats{Name: name, cols: make(map[string]*colStats, len(cols)), colList: append([]string(nil), cols...)}
	for _, c := range cols {
		t.cols[c] = newColStats()
	}
	return t
}

// SetAccessCost records the access-cost profile of the storage backend
// currently holding the relation. The relation layer calls it when a
// relation is attached to (or migrated between) backends.
func (t *TableStats) SetAccessCost(p CostProfile) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.access = p
	t.mu.Unlock()
}

// AccessCost returns the backend access-cost profile, defaulting to
// in-memory units (1.0/1.0) when none was recorded.
func (t *TableStats) AccessCost() CostProfile {
	if t == nil {
		return CostProfile{ScanTuple: 1, Probe: 1}
	}
	t.mu.RLock()
	p := t.access
	t.mu.RUnlock()
	if p.ScanTuple <= 0 {
		p.ScanTuple = 1
	}
	if p.Probe <= 0 {
		p.Probe = 1
	}
	return p
}

// Rows returns the live cardinality.
func (t *TableStats) Rows() int {
	if t == nil {
		return 0
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rows
}

// Columns returns the column names in schema order.
func (t *TableStats) Columns() []string {
	if t == nil {
		return nil
	}
	return append([]string(nil), t.colList...)
}

// Col returns the statistics of a column, or nil when unknown.
func (t *TableStats) Col(name string) ColumnStats {
	if t == nil {
		return nil
	}
	t.mu.RLock()
	cs := t.cols[name]
	t.mu.RUnlock()
	if cs == nil {
		return nil
	}
	return colView{t: t, cs: cs}
}

// col returns the concrete column statistics for package-internal use
// (join selectivity needs the frequency tables).
func (t *TableStats) col(name string) *colStats {
	if t == nil {
		return nil
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.cols[name]
}

// ObserveInsert folds one inserted tuple (in column order, stored at
// the given slot index; slot < 0 skips density tracking) into the
// statistics. It reports whether the table has drifted past its
// rebuild threshold — computed under the lock already held, so the
// mutation path needs no second acquisition.
func (t *TableStats) ObserveInsert(slot int, tuple []value.Value) bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rows++
	t.drift++
	t.slots.add(slot, 1)
	wasExact := t.degradedCols == 0
	for i, c := range t.colList {
		if i >= len(tuple) {
			break
		}
		if t.cols[c].observeInsert(tuple[i]) {
			t.degradedCols++
		}
	}
	if wasExact && t.degradedCols > 0 {
		// The first column just degraded out of exact mode. degrade()
		// builds its buckets (or, for non-ordinal values, its distinct
		// sketch) from the complete frequency table — exactly what a
		// rebuild would produce — so drift restarts here. Counting from relation
		// creation instead would trip the threshold on this very
		// mutation and schedule a full rescan that reproduces what
		// degrade() just computed.
		t.drift, t.baseRows = 0, t.rows
	}
	return t.drifted()
}

// Observe is ObserveInsert without a slot position, for summaries built
// outside slotted storage (tests, ad-hoc analysis).
func (t *TableStats) Observe(tuple []value.Value) { t.ObserveInsert(-1, tuple) }

// ObserveDelete removes one tuple's contribution; like ObserveInsert
// it reports the drift state.
func (t *TableStats) ObserveDelete(slot int, tuple []value.Value) bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.rows > 0 {
		t.rows--
	}
	t.drift++
	t.slots.add(slot, -1)
	for i, c := range t.colList {
		if i >= len(tuple) {
			break
		}
		t.cols[c].observeDelete(tuple[i])
	}
	return t.drifted()
}

// Reset clears the statistics (an assignment replaced the contents).
func (t *TableStats) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rows, t.drift, t.baseRows, t.degradedCols = 0, 0, 0, 0
	t.slots = slotDensity{}
	for _, c := range t.colList {
		t.cols[c] = newColStats()
	}
}

// Drifted reports whether enough mutations accumulated since the last
// rebuild that the degraded statistics should be rebuilt. Exact-mode
// statistics maintain themselves (a rescan would reproduce them) and
// never drift; degraded columns — bucketed histograms whose boundary
// quality decays with churn, and bounds-only sketches that overcount
// deletes — need the rescan.
func (t *TableStats) Drifted() bool {
	if t == nil {
		return false
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.drifted()
}

// drifted is Drifted for callers already holding the lock.
func (t *TableStats) drifted() bool {
	if t.degradedCols == 0 {
		return false
	}
	thr := int(driftFraction * float64(t.baseRows))
	if thr < minDriftMutations {
		thr = minDriftMutations
	}
	return t.drift >= thr
}

// SlotWeights returns the live-tuple counts per slot stripe and the
// stripe width, for density-balanced shard splitting; nil when no
// density was tracked.
func (t *TableStats) SlotWeights() ([]int32, int) {
	if t == nil {
		return nil, 0
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	if len(t.slots.live) == 0 {
		return nil, 0
	}
	return append([]int32(nil), t.slots.live...), t.slots.stripe
}

// Snapshot returns an immutable deep copy for planning: compile-time
// consumers read it without holding any database lock.
func (t *TableStats) Snapshot() *TableStats {
	if t == nil {
		return nil
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	cp := &TableStats{
		Name:         t.Name,
		rows:         t.rows,
		cols:         make(map[string]*colStats, len(t.cols)),
		colList:      append([]string(nil), t.colList...),
		slots:        t.slots.clone(),
		access:       t.access,
		drift:        t.drift,
		baseRows:     t.baseRows,
		degradedCols: t.degradedCols,
	}
	for name, cs := range t.cols {
		cp.cols[name] = cs.clone()
	}
	return cp
}

// colView adapts one column's statistics to the ColumnStats interface,
// taking the table lock around every read so views handed to planners
// stay safe while mutators run.
type colView struct {
	t  *TableStats
	cs *colStats
}

func (v colView) DistinctCount() int {
	v.t.mu.RLock()
	defer v.t.mu.RUnlock()
	return v.cs.distinctCount()
}

func (v colView) Bounds() (value.Value, value.Value, bool) {
	v.t.mu.RLock()
	defer v.t.mu.RUnlock()
	return v.cs.bounds()
}

func (v colView) EqFraction(val value.Value) (float64, bool) {
	v.t.mu.RLock()
	defer v.t.mu.RUnlock()
	return v.cs.eqFraction(val)
}

func (v colView) CmpFraction(op value.CmpOp, val value.Value) (float64, bool) {
	v.t.mu.RLock()
	defer v.t.mu.RUnlock()
	return v.cs.cmpFraction(op, val)
}

func (v colView) Mode() string {
	v.t.mu.RLock()
	defer v.t.mu.RUnlock()
	return v.cs.mode()
}

// Rebuild accumulates one full pass over a relation's live tuples and
// swaps fresh statistics into the target table: exact frequency tables
// where the distinct count permits, equi-depth buckets built from the
// complete value distribution otherwise. The storage layer runs it
// under its content read lock (writers blocked), so the scan and the
// swap see one consistent state.
type Rebuild struct {
	t     *TableStats
	rows  int
	vals  []map[string]*valCount
	slots slotDensity
}

// NewRebuild returns an empty rebuild accumulator for t.
func (t *TableStats) NewRebuild() *Rebuild {
	rb := &Rebuild{t: t, vals: make([]map[string]*valCount, len(t.colList))}
	for i := range rb.vals {
		rb.vals[i] = make(map[string]*valCount)
	}
	return rb
}

// Add folds one live tuple into the accumulator.
func (rb *Rebuild) Add(slot int, tuple []value.Value) {
	rb.rows++
	rb.slots.add(slot, 1)
	for i := range rb.vals {
		if i >= len(tuple) {
			break
		}
		k := encVal(tuple[i])
		if vc := rb.vals[i][k]; vc != nil {
			vc.n++
		} else {
			rb.vals[i][k] = &valCount{v: tuple[i], n: 1}
		}
	}
}

// Commit builds the per-column statistics and swaps them into the
// target table, resetting its drift.
func (rb *Rebuild) Commit() {
	cols := make(map[string]*colStats, len(rb.t.colList))
	for i, name := range rb.t.colList {
		cols[name] = buildColStats(rb.vals[i])
	}
	t := rb.t
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rows = rb.rows
	t.cols = cols
	t.slots = rb.slots
	t.drift = 0
	t.baseRows = rb.rows
	t.degradedCols = 0
	for _, cs := range cols {
		if cs.counts == nil {
			t.degradedCols++
		}
	}
}

// buildColStats turns one column's aggregated (value, count) table into
// fresh statistics: exact mode when small enough, equi-depth buckets
// (built from the full distribution, so boundaries are true quantiles)
// otherwise.
func buildColStats(agg map[string]*valCount) *colStats {
	c := &colStats{}
	pairs := make([]valCount, 0, len(agg))
	for _, vc := range agg {
		pairs = append(pairs, *vc)
		c.n += vc.n
		c.updateBounds(vc.v)
	}
	c.distinct = len(pairs)
	if len(pairs) <= MaxExactValues {
		c.counts = make(map[string]*valCount, len(pairs))
		for _, p := range pairs {
			p := p
			c.counts[encVal(p.v)] = &p
		}
		return c
	}
	c.buckets, c.lo = buildBuckets(pairs, c.n)
	c.sketch = newLinearSketch()
	for _, p := range pairs {
		c.sketch.add(encVal(p.v))
	}
	return c
}

// String renders a compact per-column summary.
func (t *TableStats) String() string {
	if t == nil {
		return "<nil>"
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	var b strings.Builder
	fmt.Fprintf(&b, "%s: rows=%d", t.Name, t.rows)
	for _, name := range t.colList {
		cs := t.cols[name]
		fmt.Fprintf(&b, " %s(d=%d,%s)", name, cs.distinctCount(), cs.mode())
	}
	return b.String()
}
