// Package stats counts the quantities the paper's cost arguments are
// about: how many times each database relation is scanned, how many
// tuples those scans read, how many index probes and comparisons the
// collection phase performs, and how many intermediate reference tuples
// the combination phase materializes.
//
// The 1982 paper reports no absolute timings; its claims are about scan
// counts and intermediate cardinalities ("each range relation is read no
// more than once", "the size of indirect joins is reduced considerably").
// These counters reproduce exactly those measures, and the experiment
// harness prints them next to wall-clock time.
package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Counters accumulates cost measures for one query evaluation. The zero
// value is ready to use. A nil *Counters is accepted by every method and
// ignored, so hot paths can be instrumented unconditionally.
type Counters struct {
	BaseScans  map[string]int // relation name -> number of full scans started
	TuplesRead int64          // tuples delivered by base relation scans

	IndexProbes int64 // lookups into collection-phase indexes
	Comparisons int64 // join-term comparisons evaluated

	RefTuples     int64 // reference tuples materialized in the combination phase
	PeakRefTuples int64 // largest single reference relation built

	HashJoins      int64 // combination-phase joins resolved through a hash table
	CartesianJoins int64 // combination-phase joins with no shared variable (cross products)

	// PlanOrder is the scan order the planner chose for the most recent
	// evaluation, for plan-quality reporting.
	PlanOrder []string
	// CostBasedPlans counts physical plans built with the cost-based
	// ordering (vs the static tie-break); one evaluation may build
	// several when the Lemma 1 adaptation re-plans.
	CostBasedPlans int64

	Structures []StructStat // sizes of named intermediate structures
}

// StructStat records the final size of one intermediate structure
// (single list, index, indirect join, value list, or combination result).
type StructStat struct {
	Name string // e.g. "sl_csoph", "ij_c_t", "conj1", "union"
	Kind string // "single-list", "index", "indirect-join", "value-list", "refrel"
	Size int
}

// CountScan records the start of a full scan of the named base relation.
func (c *Counters) CountScan(rel string) {
	if c == nil {
		return
	}
	if c.BaseScans == nil {
		c.BaseScans = make(map[string]int)
	}
	c.BaseScans[rel]++
}

// CountTuples adds n to the number of tuples read from base relations.
func (c *Counters) CountTuples(n int) {
	if c == nil {
		return
	}
	c.TuplesRead += int64(n)
}

// CountProbes adds n index probes.
func (c *Counters) CountProbes(n int) {
	if c == nil {
		return
	}
	c.IndexProbes += int64(n)
}

// CountComparisons adds n join-term comparisons.
func (c *Counters) CountComparisons(n int) {
	if c == nil {
		return
	}
	c.Comparisons += int64(n)
}

// CountRefTuples adds n materialized reference tuples and updates the
// peak if sz (the size of the structure being built) exceeds it.
func (c *Counters) CountRefTuples(n, sz int) {
	if c == nil {
		return
	}
	c.RefTuples += int64(n)
	if int64(sz) > c.PeakRefTuples {
		c.PeakRefTuples = int64(sz)
	}
}

// CountHashJoin records one hash-resolved combination-phase join.
func (c *Counters) CountHashJoin() {
	if c == nil {
		return
	}
	c.HashJoins++
}

// CountCartesianJoin records one variable-disjoint (cross product) join.
func (c *Counters) CountCartesianJoin() {
	if c == nil {
		return
	}
	c.CartesianJoins++
}

// RecordPlanOrder notes the scan order the planner chose; costBased
// reports whether the cost-based ordering produced it.
func (c *Counters) RecordPlanOrder(order []string, costBased bool) {
	if c == nil {
		return
	}
	c.PlanOrder = append(c.PlanOrder[:0], order...)
	if costBased {
		c.CostBasedPlans++
	}
}

// RecordStructure notes the final size of a named intermediate structure.
func (c *Counters) RecordStructure(name, kind string, size int) {
	if c == nil {
		return
	}
	c.Structures = append(c.Structures, StructStat{Name: name, Kind: kind, Size: size})
}

// TotalScans returns the number of base-relation scans across all
// relations.
func (c *Counters) TotalScans() int {
	if c == nil {
		return 0
	}
	n := 0
	for _, v := range c.BaseScans {
		n += v
	}
	return n
}

// Merge adds other's counts into c.
func (c *Counters) Merge(other *Counters) {
	if c == nil || other == nil {
		return
	}
	for rel, n := range other.BaseScans {
		if c.BaseScans == nil {
			c.BaseScans = make(map[string]int)
		}
		c.BaseScans[rel] += n
	}
	c.TuplesRead += other.TuplesRead
	c.IndexProbes += other.IndexProbes
	c.Comparisons += other.Comparisons
	c.RefTuples += other.RefTuples
	if other.PeakRefTuples > c.PeakRefTuples {
		c.PeakRefTuples = other.PeakRefTuples
	}
	c.HashJoins += other.HashJoins
	c.CartesianJoins += other.CartesianJoins
	c.CostBasedPlans += other.CostBasedPlans
	if len(other.PlanOrder) > 0 {
		c.PlanOrder = append(c.PlanOrder[:0], other.PlanOrder...)
	}
	c.Structures = append(c.Structures, other.Structures...)
}

// Fingerprint renders the counters as a deterministic string: map keys
// sorted, structure records sorted (their natural order follows map
// iteration in parts of the engine, so only the multiset is
// meaningful). Two runs of the same work — serial or parallel, in any
// interleaving — must produce equal fingerprints; the differential
// harness compares them.
func (c *Counters) Fingerprint() string {
	if c == nil {
		return ""
	}
	var b strings.Builder
	rels := make([]string, 0, len(c.BaseScans))
	for rel := range c.BaseScans {
		rels = append(rels, rel)
	}
	sort.Strings(rels)
	for _, rel := range rels {
		fmt.Fprintf(&b, "scan %s=%d;", rel, c.BaseScans[rel])
	}
	fmt.Fprintf(&b, "tuples=%d;probes=%d;cmps=%d;ref=%d;peak=%d;hash=%d;cart=%d;costplans=%d;",
		c.TuplesRead, c.IndexProbes, c.Comparisons, c.RefTuples, c.PeakRefTuples,
		c.HashJoins, c.CartesianJoins, c.CostBasedPlans)
	fmt.Fprintf(&b, "order=%s;", strings.Join(c.PlanOrder, ","))
	structs := make([]string, 0, len(c.Structures))
	for _, s := range c.Structures {
		structs = append(structs, fmt.Sprintf("%s|%s|%d", s.Name, s.Kind, s.Size))
	}
	sort.Strings(structs)
	b.WriteString(strings.Join(structs, ";"))
	return b.String()
}

// Scale multiplies every additive counter by n (peaks stay, the plan
// order stays, structure records replicate) — the expected merged sink
// after n identical executions.
func (c *Counters) Scale(n int) *Counters {
	if c == nil {
		return nil
	}
	out := &Counters{}
	for i := 0; i < n; i++ {
		out.Merge(c)
	}
	return out
}

// Reset clears all counters for reuse.
func (c *Counters) Reset() {
	if c == nil {
		return
	}
	*c = Counters{}
}

// String renders a compact multi-line report.
func (c *Counters) String() string {
	if c == nil {
		return "stats: disabled"
	}
	var b strings.Builder
	rels := make([]string, 0, len(c.BaseScans))
	for rel := range c.BaseScans {
		rels = append(rels, rel)
	}
	sort.Strings(rels)
	fmt.Fprintf(&b, "scans: total=%d", c.TotalScans())
	for _, rel := range rels {
		fmt.Fprintf(&b, " %s=%d", rel, c.BaseScans[rel])
	}
	fmt.Fprintf(&b, "\ntuples read: %d, index probes: %d, comparisons: %d\n",
		c.TuplesRead, c.IndexProbes, c.Comparisons)
	fmt.Fprintf(&b, "ref tuples built: %d (peak structure %d)\n", c.RefTuples, c.PeakRefTuples)
	fmt.Fprintf(&b, "combination joins: hash=%d cartesian=%d\n", c.HashJoins, c.CartesianJoins)
	if len(c.PlanOrder) > 0 {
		fmt.Fprintf(&b, "scan order: %s\n", strings.Join(c.PlanOrder, " -> "))
	}
	for _, s := range c.Structures {
		fmt.Fprintf(&b, "  %-16s %-13s size=%d\n", s.Name, s.Kind, s.Size)
	}
	return b.String()
}
