package stats

// TableSummary is an immutable, marshal-friendly snapshot of one
// relation's live statistics, for export surfaces (the server's
// /metrics endpoint, monitoring dashboards). Unlike Snapshot it carries
// no histograms — just the headline numbers a dashboard plots — so it
// is cheap to take under the statistics lock and safe to hand across
// API boundaries.
type TableSummary struct {
	Name    string          `json:"name"`
	Rows    int             `json:"rows"`
	Columns []ColumnSummary `json:"columns"`
}

// ColumnSummary is one column's statistics headline.
type ColumnSummary struct {
	Name     string `json:"name"`
	Distinct int    `json:"distinct"`
	// Mode reports the statistics representation currently maintained
	// for the column: "exact" (frequency table), "buckets" (equi-depth
	// histogram + distinct sketch), or "bounds" (min/max only).
	Mode string `json:"mode"`
	// Lo and Hi render the observed value bounds; empty when the column
	// has no ordinal bounds (or no rows).
	Lo string `json:"lo,omitempty"`
	Hi string `json:"hi,omitempty"`
}

// Summary takes a consistent snapshot of the table's headline
// statistics under one lock acquisition.
func (t *TableStats) Summary() TableSummary {
	if t == nil {
		return TableSummary{}
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := TableSummary{Name: t.Name, Rows: t.rows, Columns: make([]ColumnSummary, 0, len(t.colList))}
	for _, name := range t.colList {
		cs := t.cols[name]
		col := ColumnSummary{Name: name, Distinct: cs.distinctCount(), Mode: cs.mode()}
		if lo, hi, ok := cs.bounds(); ok {
			col.Lo, col.Hi = lo.String(), hi.String()
		}
		out.Columns = append(out.Columns, col)
	}
	return out
}
