// Incremental per-column histograms. The estimator's original
// statistics (distinct count, min/max) assume values spread uniformly
// between the extrema — the System R model, and the known weak point on
// skewed data: a heavy-hitter value takes 1/distinct of the rows in the
// model and 90% of them in reality, and every plan decision downstream
// of that estimate inherits the error.
//
// A column's statistics live in one of three modes, degrading as the
// column grows:
//
//   - exact: a per-value frequency table (at most MaxExactValues
//     entries). Equivalent to a width-one equi-width histogram; =, <>,
//     and range fractions are computed exactly, and the table is
//     maintained exactly under inserts AND deletes, so low-distinct
//     columns (enums, flags, small domains — where skew hurts most)
//     never need a rebuild.
//   - equi-depth: when the distinct count outgrows the frequency
//     table, the tracked values fold into HistBuckets equi-depth
//     buckets (each holding ~n/HistBuckets rows, so heavy hitters get
//     narrow buckets of their own). Buckets absorb inserts and deletes
//     by count deltas; boundary quality decays with churn, which the
//     drift threshold repairs by re-bucketing from a fresh scan.
//     Distinct counts in this mode come from a linear-counting sketch.
//   - bounds-only: columns whose values have no numeric ordinal
//     (strings) keep distinct and min/max only — the pre-histogram
//     behavior.
//
// All mutation and query entry points are on TableStats, which holds
// the lock; colStats itself is unsynchronized.
package stats

import (
	"hash/fnv"
	"math"
	"math/bits"
	"sort"

	"pascalr/internal/value"
)

const (
	// MaxExactValues bounds the per-value frequency table of one column;
	// columns with more distinct values degrade to equi-depth buckets.
	MaxExactValues = 256
	// HistBuckets is the equi-depth bucket budget per column.
	HistBuckets = 32
)

// Column statistic modes, reported by ColumnStats.Mode.
const (
	ModeExact     = "exact"      // per-value frequency table
	ModeEquiDepth = "equi-depth" // bucketed histogram
	ModeBounds    = "bounds"     // distinct + min/max only
)

// ColumnStats is the read interface to one column's statistics — what
// the estimator (and through it every cost-based planning decision)
// consults. It replaces direct access to the old min/max/distinct
// struct so call sites cannot tell a frequency table from an equi-depth
// histogram from a bounds-only summary.
type ColumnStats interface {
	// DistinctCount returns the (possibly estimated) number of distinct
	// live values; 0 when nothing was observed.
	DistinctCount() int
	// Bounds returns the observed extrema. ok is false when the column
	// is empty or holds values of mixed kinds.
	Bounds() (min, max value.Value, ok bool)
	// EqFraction estimates the fraction of rows whose value equals v.
	// ok is false when no histogram backs the answer (bounds-only mode).
	EqFraction(v value.Value) (float64, bool)
	// CmpFraction estimates the fraction of rows satisfying "col op v"
	// for the ordered operators (<, <=, >, >=).
	CmpFraction(op value.CmpOp, v value.Value) (float64, bool)
	// Mode reports which representation backs the estimates: ModeExact,
	// ModeEquiDepth, or ModeBounds.
	Mode() string
}

// valCount is one entry of the exact-mode frequency table.
type valCount struct {
	v value.Value
	n int
}

// bucket is one equi-depth bucket: rows whose ordinal falls in
// (lower, upper] where lower is the previous bucket's upper (or the
// histogram's lo for the first bucket, inclusive).
type bucket struct {
	upper    float64
	count    int
	distinct int
}

// colStats is the mutable statistics of one column. Callers synchronize
// through the owning TableStats.
type colStats struct {
	n        int // live values observed
	min, max value.Value
	ordered  bool // min/max comparable (no mixed kinds seen)

	distinct int                  // exact in exact mode; floor estimate otherwise
	counts   map[string]*valCount // exact mode; nil once degraded
	buckets  []bucket             // equi-depth mode; nil in bounds-only mode
	lo       float64              // ordinal lower bound of buckets[0]
	sketch   *linearSketch        // distinct estimator once counts is gone
}

func newColStats() *colStats {
	return &colStats{counts: make(map[string]*valCount)}
}

func encVal(v value.Value) string { return value.EncodeKey([]value.Value{v}) }

// observeInsert folds one value in; it reports whether the column just
// degraded out of exact mode (the owning table counts degraded columns
// so the drift check stays O(1) on the mutation path).
func (c *colStats) observeInsert(v value.Value) (degraded bool) {
	c.n++
	c.updateBounds(v)
	if c.counts != nil {
		k := encVal(v)
		if vc := c.counts[k]; vc != nil {
			vc.n++
			return false
		}
		if len(c.counts) < MaxExactValues {
			c.counts[k] = &valCount{v: v, n: 1}
			c.distinct++
			return false
		}
		c.degrade()
		// Every degraded column arms the drift rebuild — including a
		// bounds-only one (non-ordinal values, no buckets): its
		// insert-only sketch overcounts under deletes and its extrema go
		// stale-wide, both of which only a rescan repairs.
		degraded = true
		// fall through: the new value lands in a bucket
	}
	c.sketch.add(encVal(v))
	c.bucketAdd(v)
	return degraded
}

func (c *colStats) observeDelete(v value.Value) {
	if c.n > 0 {
		c.n--
	}
	if c.counts != nil {
		k := encVal(v)
		if vc := c.counts[k]; vc != nil {
			vc.n--
			if vc.n <= 0 {
				delete(c.counts, k)
				c.distinct--
				// The frequency table holds every live value, so when an
				// extremum vanishes the bounds can be recomputed exactly —
				// exact mode stays exact under deletes, bounds included.
				if c.ordered && c.min.IsValid() && (value.Equal(v, c.min) || value.Equal(v, c.max)) {
					c.recomputeBounds()
				}
			}
		}
		return
	}
	// Bucketed: decrement the covering bucket; extrema and the sketch go
	// stale-wide, which the drift rebuild repairs.
	if ord, ok := ordinal(v); ok && len(c.buckets) > 0 {
		bi := c.bucketFor(ord)
		if c.buckets[bi].count > 0 {
			c.buckets[bi].count--
		}
	}
}

// recomputeBounds rebuilds min/max from the frequency table (exact
// mode only — it is the complete live-value set).
func (c *colStats) recomputeBounds() {
	c.min, c.max = value.Value{}, value.Value{}
	c.ordered = false
	for _, vc := range c.counts {
		c.updateBounds(vc.v)
	}
}

func (c *colStats) updateBounds(v value.Value) {
	if !c.min.IsValid() {
		c.min, c.max, c.ordered = v, v, true
		return
	}
	if !c.ordered {
		return
	}
	cmpMin, err1 := value.Compare(v, c.min)
	cmpMax, err2 := value.Compare(v, c.max)
	if err1 != nil || err2 != nil {
		c.ordered = false // mixed kinds: extrema unusable
		return
	}
	if cmpMin < 0 {
		c.min = v
	}
	if cmpMax > 0 {
		c.max = v
	}
}

// degrade folds the exact frequency table into equi-depth buckets (for
// ordinal-able values) and a distinct sketch, then drops the table.
func (c *colStats) degrade() {
	c.sketch = newLinearSketch()
	pairs := make([]valCount, 0, len(c.counts))
	for k, vc := range c.counts {
		c.sketch.add(k)
		pairs = append(pairs, *vc)
	}
	c.buckets, c.lo = buildBuckets(pairs, c.n)
	c.counts = nil
}

// buildBuckets builds equi-depth buckets from (value, count) pairs.
// Returns nil when the values have no ordinal (bounds-only mode).
func buildBuckets(pairs []valCount, total int) ([]bucket, float64) {
	type op struct {
		ord float64
		n   int
	}
	ords := make([]op, 0, len(pairs))
	for _, p := range pairs {
		o, ok := ordinal(p.v)
		if !ok {
			return nil, 0
		}
		ords = append(ords, op{o, p.n})
	}
	if len(ords) == 0 {
		return nil, 0
	}
	sort.Slice(ords, func(i, j int) bool { return ords[i].ord < ords[j].ord })
	depth := (total + HistBuckets - 1) / HistBuckets
	if depth < 1 {
		depth = 1
	}
	var out []bucket
	cur := bucket{}
	for i, o := range ords {
		// A value carrying a full bucket's worth of rows gets a bucket
		// of its own (compressed-histogram rule): heavy hitters must not
		// share their mass with neighbors, or point estimates divide it
		// across the bucket's distinct values.
		if o.n >= depth && cur.distinct > 0 {
			out = append(out, cur)
			cur = bucket{}
		}
		cur.count += o.n
		cur.distinct++
		cur.upper = o.ord
		if cur.count >= depth && i < len(ords)-1 {
			out = append(out, cur)
			cur = bucket{}
		}
	}
	if cur.distinct > 0 {
		out = append(out, cur)
	}
	return out, ords[0].ord
}

// bucketFor returns the index of the bucket covering ord (clamped to
// the first/last bucket for out-of-range ordinals).
func (c *colStats) bucketFor(ord float64) int {
	lo, hi := 0, len(c.buckets)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if c.buckets[mid].upper < ord {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func (c *colStats) bucketAdd(v value.Value) {
	if len(c.buckets) == 0 {
		return
	}
	ord, ok := ordinal(v)
	if !ok {
		return
	}
	bi := c.bucketFor(ord)
	if bi == len(c.buckets)-1 && ord > c.buckets[bi].upper {
		c.buckets[bi].upper = ord // domain grew upward: stretch the last bucket
	}
	if bi == 0 && ord < c.lo {
		c.lo = ord
	}
	c.buckets[bi].count++
}

func (c *colStats) distinctCount() int {
	if c.counts != nil {
		return c.distinct
	}
	d := c.distinct
	if c.sketch != nil {
		if s := c.sketch.estimate(); s > d {
			d = s
		}
	}
	if d > c.n {
		d = c.n
	}
	if d < 1 && c.n > 0 {
		d = 1
	}
	return d
}

func (c *colStats) bounds() (value.Value, value.Value, bool) {
	if !c.ordered || !c.min.IsValid() {
		return value.Value{}, value.Value{}, false
	}
	return c.min, c.max, true
}

func (c *colStats) eqFraction(v value.Value) (float64, bool) {
	if c.n == 0 {
		return 0, false
	}
	n := float64(c.n)
	if c.counts != nil {
		if vc := c.counts[encVal(v)]; vc != nil {
			return float64(vc.n) / n, true
		}
		// Unseen value: near zero, but never exactly zero — cost products
		// must stay comparable.
		return 0.5 / n, true
	}
	if len(c.buckets) == 0 {
		return 0, false
	}
	ord, ok := ordinal(v)
	if !ok {
		return 0, false
	}
	if ord < c.lo || ord > c.buckets[len(c.buckets)-1].upper {
		return 0.5 / n, true
	}
	b := c.buckets[c.bucketFor(ord)]
	d := b.distinct
	if d < 1 {
		d = 1
	}
	return float64(b.count) / n / float64(d), true
}

func (c *colStats) cmpFraction(op value.CmpOp, v value.Value) (float64, bool) {
	if c.n == 0 {
		return 0, false
	}
	if c.counts != nil {
		below, at := 0, 0
		for _, vc := range c.counts {
			cmp, err := value.Compare(vc.v, v)
			if err != nil {
				return 0, false // mixed kinds: no usable order
			}
			switch {
			case cmp < 0:
				below += vc.n
			case cmp == 0:
				at += vc.n
			}
		}
		return fractionFromBelowAt(op, float64(below), float64(at), float64(c.n))
	}
	if len(c.buckets) == 0 {
		return 0, false
	}
	ord, ok := ordinal(v)
	if !ok {
		return 0, false
	}
	n := float64(c.n)
	hi := c.buckets[len(c.buckets)-1].upper
	switch {
	case ord < c.lo:
		return fractionFromBelowAt(op, 0, 0, n)
	case ord > hi:
		return fractionFromBelowAt(op, n, 0, n)
	}
	bi := c.bucketFor(ord)
	below := 0.0
	for i := 0; i < bi; i++ {
		below += float64(c.buckets[i].count)
	}
	b := c.buckets[bi]
	bLo := c.lo
	if bi > 0 {
		bLo = c.buckets[bi-1].upper
	}
	frac := 1.0
	if b.upper > bLo {
		frac = (ord - bLo) / (b.upper - bLo)
	}
	d := b.distinct
	if d < 1 {
		d = 1
	}
	at := float64(b.count) / float64(d) // point mass of v's own value
	inBelow := frac * (float64(b.count) - at)
	return fractionFromBelowAt(op, below+inBelow, at, n)
}

// fractionFromBelowAt turns "rows strictly below v" and "rows equal to
// v" into the fraction satisfying an ordered comparison.
func fractionFromBelowAt(op value.CmpOp, below, at, n float64) (float64, bool) {
	if n <= 0 {
		return 0, false
	}
	switch op {
	case value.OpLt:
		return below / n, true
	case value.OpLe:
		return (below + at) / n, true
	case value.OpGt:
		return (n - below - at) / n, true
	case value.OpGe:
		return (n - below) / n, true
	}
	return 0, false
}

func (c *colStats) mode() string {
	switch {
	case c.counts != nil:
		return ModeExact
	case len(c.buckets) > 0:
		return ModeEquiDepth
	default:
		return ModeBounds
	}
}

func (c *colStats) clone() *colStats {
	cp := *c
	if c.counts != nil {
		cp.counts = make(map[string]*valCount, len(c.counts))
		for k, vc := range c.counts {
			v := *vc
			cp.counts[k] = &v
		}
	}
	cp.buckets = append([]bucket(nil), c.buckets...)
	if c.sketch != nil {
		cp.sketch = c.sketch.clone()
	}
	return &cp
}

// linearSketch is a linear-counting distinct estimator: a fixed bitmap
// indexed by a hash of the value. Insert-only; deletions make it
// overcount, which the drift rebuild repairs.
type linearSketch struct {
	bits []uint64
}

const sketchBits = 1 << 14 // 16384 bits = 2 KiB per high-distinct column

func newLinearSketch() *linearSketch {
	return &linearSketch{bits: make([]uint64, sketchBits/64)}
}

func (s *linearSketch) add(key string) {
	h := fnv.New64a()
	h.Write([]byte(key))
	bit := h.Sum64() % sketchBits
	s.bits[bit/64] |= 1 << (bit % 64)
}

func (s *linearSketch) estimate() int {
	ones := 0
	for _, w := range s.bits {
		ones += bits.OnesCount64(w)
	}
	zeros := sketchBits - ones
	if zeros == 0 {
		return sketchBits
	}
	return int(sketchBits * math.Log(float64(sketchBits)/float64(zeros)))
}

func (s *linearSketch) clone() *linearSketch {
	return &linearSketch{bits: append([]uint64(nil), s.bits...)}
}

// ordinal maps a value onto the number line for interpolation.
func ordinal(v value.Value) (float64, bool) {
	switch v.Kind() {
	case value.KindInt:
		return float64(v.AsInt()), true
	case value.KindEnum:
		return float64(v.EnumOrd()), true
	case value.KindBool:
		if v.AsBool() {
			return 1, true
		}
		return 0, true
	}
	return 0, false
}
