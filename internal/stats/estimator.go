// Selectivity estimation for the cost-based combination phase. The
// paper's processor picks its scan order statically (spec priority,
// prefix right-to-left, declaration order); section 5 names smarter
// ordering as the limiting factor once relations grow skewed. The
// estimator holds the per-relation statistics — cardinality, per-column
// histograms — that the planner's greedy ordering and the optimizer's
// extraction gate consult.
//
// Estimates read the column histograms first (exact frequency tables or
// equi-depth buckets, see histogram.go) and fall back to the classic
// System R formulas — 1/distinct for equality against a constant,
// linear interpolation over [min, max] for ordered comparisons,
// 1/max(distinct_l, distinct_r) for equi-joins, fixed fractions where
// nothing better is known. Uniform() returns a view restricted to the
// System R formulas, for measuring what the histograms buy.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"pascalr/internal/value"
)

// Default selectivities when no statistic applies (System R's magic
// numbers, still the standard fallbacks).
const (
	DefaultEqSel    = 0.1       // equality with no distinct count
	DefaultRangeSel = 1.0 / 3.0 // ordered comparison with no min/max
	DefaultNeSel    = 0.9       // inequality (<>)
	DefaultSemiSel  = 0.5       // derived (value-list) predicates
)

// Estimator answers cardinality and selectivity questions from table
// statistics. A nil Estimator answers every question with its default,
// so call sites need no guards.
type Estimator struct {
	tables map[string]*TableStats
	// uniform disables the histogram reads, restricting answers to the
	// System R formulas over distinct counts and extrema.
	uniform bool
}

// NewEstimator creates an empty estimator.
func NewEstimator() *Estimator {
	return &Estimator{tables: make(map[string]*TableStats)}
}

// AddTable registers (or replaces) one relation's statistics.
func (e *Estimator) AddTable(t *TableStats) {
	e.tables[t.Name] = t
}

// Uniform returns a view of the same statistics restricted to the
// uniformity assumptions (1/distinct, min/max interpolation) — the
// estimator's behavior before histograms, kept for comparison
// benchmarks and tests.
func (e *Estimator) Uniform() *Estimator {
	if e == nil {
		return nil
	}
	return &Estimator{tables: e.tables, uniform: true}
}

// Table returns the named relation's statistics, or nil.
func (e *Estimator) Table(rel string) *TableStats {
	if e == nil {
		return nil
	}
	return e.tables[rel]
}

// Card returns the estimated cardinality of a relation; unknown
// relations estimate as 1 so products stay meaningful.
func (e *Estimator) Card(rel string) float64 {
	if t := e.Table(rel); t != nil {
		return float64(t.Rows())
	}
	return 1
}

// DistinctValues returns the number of distinct values of rel.col, or 0
// when unknown.
func (e *Estimator) DistinctValues(rel, col string) float64 {
	if cs := e.Table(rel).Col(col); cs != nil {
		return float64(cs.DistinctCount())
	}
	return 0
}

// SelectivityConst estimates the fraction of rel's tuples whose column
// satisfies "col op c". Histogram-backed columns answer from their
// frequency tables or buckets; otherwise the System R formulas apply.
func (e *Estimator) SelectivityConst(rel, col string, op value.CmpOp, c value.Value) float64 {
	var cs ColumnStats
	if e != nil {
		cs = e.Table(rel).Col(col)
	}
	switch op {
	case value.OpEq:
		if cs != nil {
			if !e.uniform {
				if f, ok := cs.EqFraction(c); ok {
					return clampSel(f)
				}
			}
			if d := cs.DistinctCount(); d > 0 {
				return clampSel(1 / float64(d))
			}
		}
		return DefaultEqSel
	case value.OpNe:
		if cs != nil {
			if !e.uniform {
				if f, ok := cs.EqFraction(c); ok {
					return clampSel(1 - f)
				}
			}
			if d := cs.DistinctCount(); d > 0 {
				return clampSel(1 - 1/float64(d))
			}
		}
		return DefaultNeSel
	default:
		if cs != nil {
			if !e.uniform {
				if f, ok := cs.CmpFraction(op, c); ok {
					return clampSel(f)
				}
			}
			if f, ok := uniformRangeFraction(cs, op, c); ok {
				return clampSel(f)
			}
		}
		return DefaultRangeSel
	}
}

// uniformRangeFraction interpolates an ordered comparison over
// [Min, Max] assuming uniform spread — the System R model, used when no
// histogram backs the column (and by the Uniform view always).
func uniformRangeFraction(cs ColumnStats, op value.CmpOp, c value.Value) (float64, bool) {
	mn, mx, ok := cs.Bounds()
	if !ok {
		return 0, false
	}
	lo, ok1 := ordinal(mn)
	hi, ok2 := ordinal(mx)
	v, ok3 := ordinal(c)
	if !ok1 || !ok2 || !ok3 {
		return 0, false
	}
	if hi <= lo {
		// Single-point column: the comparison either always or never holds.
		if op.Holds(cmpFloat(lo, v)) {
			return 1, true
		}
		return 0, true
	}
	// Model c's own value as one "bucket" of 1/distinct probability and
	// interpolate the rest: below = frac·(1-bucket). This keeps the
	// boundaries honest — an inclusive comparison at a domain extremum
	// ("col <= Min", "col >= Max") estimates one bucket, not zero rows.
	frac := (v - lo) / (hi - lo)
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	bucket := 1.0
	if d := cs.DistinctCount(); d > 0 {
		bucket = 1 / float64(d)
	}
	below := frac * (1 - bucket)
	switch op {
	case value.OpLt:
		return below, true
	case value.OpLe:
		return below + bucket, true
	case value.OpGt:
		return 1 - below - bucket, true
	case value.OpGe:
		return 1 - below, true
	}
	return 0, false
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// JoinSelectivity estimates the fraction of the cross product of two
// relations surviving "l.lcol op r.rcol". For equi-joins over columns
// with exact frequency tables the match probability is computed from
// the distributions directly (Σ f_l(v)·f_r(v)); columns with disjoint
// value ranges join to (almost) nothing; otherwise the System R
// 1/max(distinct) applies.
func (e *Estimator) JoinSelectivity(lrel, lcol string, op value.CmpOp, rrel, rcol string) float64 {
	switch op {
	case value.OpEq:
		if e != nil && !e.uniform {
			if f, ok := e.histEqJoin(lrel, lcol, rrel, rcol); ok {
				return clampSel(f)
			}
		}
		dl, dr := e.DistinctValues(lrel, lcol), e.DistinctValues(rrel, rcol)
		d := dl
		if dr > d {
			d = dr
		}
		if d > 0 {
			return clampSel(1 / d)
		}
		return DefaultEqSel
	case value.OpNe:
		return DefaultNeSel
	default:
		return DefaultRangeSel
	}
}

// histEqJoin computes the equi-join selectivity from the two columns'
// distributions. Exact mode on both sides gives the true match
// probability of the observed distributions; exact against equi-depth
// probes each frequency-table value into the other side's buckets; two
// equi-depth histograms convolve bucket against bucket; disjoint
// observed bounds short-circuit to near zero.
func (e *Estimator) histEqJoin(lrel, lcol, rrel, rcol string) (float64, bool) {
	lt, rt := e.Table(lrel), e.Table(rrel)
	lc, rc := lt.col(lcol), rt.col(rcol)
	if lc == nil || rc == nil {
		return 0, false
	}
	// Copy each side's distribution under its own lock, one at a time —
	// never holding both locks. Frequency tables are bounded by
	// MaxExactValues entries, histograms by their bucket budget.
	lPairs, lN, lok := snapshotExact(lt, lc)
	rPairs, rN, rok := snapshotExact(rt, rc)
	if lok && rok && lN > 0 && rN > 0 {
		small, big := lPairs, rPairs
		smallN, bigN := float64(lN), float64(rN)
		if len(rPairs) < len(lPairs) {
			small, big = rPairs, lPairs
			smallN, bigN = float64(rN), float64(lN)
		}
		bigByKey := make(map[string]int, len(big))
		for _, p := range big {
			bigByKey[encVal(p.v)] = p.n
		}
		sel := 0.0
		for _, p := range small {
			if bn, ok := bigByKey[encVal(p.v)]; ok {
				sel += (float64(p.n) / smallN) * (float64(bn) / bigN)
			}
		}
		if sel <= 0 {
			sel = 1 / (smallN * bigN) // disjoint distributions: near zero, never zero
		}
		return sel, true
	}
	lB, lLo, lbN, lbok := snapshotBuckets(lt, lc)
	rB, rLo, rbN, rbok := snapshotBuckets(rt, rc)
	switch {
	case lok && rbok && lN > 0 && rbN > 0:
		// Exact against equi-depth: Σ f_l(v)·f̂_r(v), probing each known
		// value into the other side's covering bucket.
		return probeBuckets(lPairs, lN, rB, rLo, rbN), true
	case rok && lbok && rN > 0 && lbN > 0:
		return probeBuckets(rPairs, rN, lB, lLo, lbN), true
	case lbok && rbok && lbN > 0 && rbN > 0:
		return convolveBuckets(lB, lLo, lbN, rB, rLo, rbN), true
	}
	// Bounds disjointness: if the observed value ranges cannot overlap,
	// almost nothing joins.
	lmn, lmx, ok1 := e.Table(lrel).Col(lcol).Bounds()
	rmn, rmx, ok2 := e.Table(rrel).Col(rcol).Bounds()
	if ok1 && ok2 {
		lo1, a1 := ordinal(lmn)
		hi1, a2 := ordinal(lmx)
		lo2, a3 := ordinal(rmn)
		hi2, a4 := ordinal(rmx)
		if a1 && a2 && a3 && a4 && (hi1 < lo2 || hi2 < lo1) {
			return 1e-9, true
		}
	}
	return 0, false
}

// snapshotBuckets copies a column's equi-depth histogram under the
// table lock; ok is false when the column has no buckets (exact or
// bounds-only mode).
func snapshotBuckets(t *TableStats, c *colStats) ([]bucket, float64, int, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if c.counts != nil || len(c.buckets) == 0 {
		return nil, 0, 0, false
	}
	return append([]bucket(nil), c.buckets...), c.lo, c.n, true
}

// probeBuckets estimates Σ f_exact(v)·f̂_bucketed(v): each frequency-
// table value contributes its own fraction times the bucketed side's
// point estimate at that value (bucket count spread over the bucket's
// distinct values — the same model eqFraction uses).
func probeBuckets(pairs []valCount, pn int, bkts []bucket, blo float64, bn int) float64 {
	n := float64(bn)
	hi := bkts[len(bkts)-1].upper
	sel := 0.0
	for _, p := range pairs {
		ord, ok := ordinal(p.v)
		if !ok {
			continue // non-ordinal value cannot be in an ordinal histogram
		}
		fl := float64(p.n) / float64(pn)
		var fr float64
		if ord < blo || ord > hi {
			fr = 0.5 / n // outside the observed domain: near zero, never zero
		} else {
			b := bkts[bucketIndex(bkts, ord)]
			d := b.distinct
			if d < 1 {
				d = 1
			}
			fr = float64(b.count) / n / float64(d)
		}
		sel += fl * fr
	}
	if sel <= 0 {
		sel = 1 / (float64(pn) * n)
	}
	return sel
}

// histSeg is one equi-depth bucket prepared for convolution: either a
// point mass (all rows at one value) or an interval (lo, up] whose rows
// and distinct values smear uniformly.
type histSeg struct {
	lo, up   float64
	count    int
	distinct int
	point    bool
}

// histSegs expands buckets into segments, recovering each bucket's
// lower bound from its predecessor. Single-distinct buckets — the
// heavy hitters the equi-depth build isolates — become point masses, so
// partial overlaps cannot dilute them.
func histSegs(bkts []bucket, lo float64) []histSeg {
	segs := make([]histSeg, 0, len(bkts))
	prev := lo
	for _, b := range bkts {
		s := histSeg{lo: prev, up: b.upper, count: b.count, distinct: b.distinct}
		if b.distinct <= 1 || b.upper <= s.lo {
			s.point, s.lo = true, b.upper
		}
		segs = append(segs, s)
		prev = b.upper
	}
	return segs
}

// convolveBuckets estimates the equi-join selectivity of two equi-depth
// histograms: every bucket pair's ordinal overlap contributes the rows
// both sides place there, matched through the overlap's distinct-value
// count (containment assumption — each value on the sparser side finds
// a partner). Each join value lies in exactly one bucket per side, so
// summing over pairs counts nothing twice. O(HistBuckets²).
func convolveBuckets(lb []bucket, llo float64, ln int, rb []bucket, rlo float64, rn int) float64 {
	ls, rs := histSegs(lb, llo), histSegs(rb, rlo)
	nl, nr := float64(ln), float64(rn)
	sel := 0.0
	for _, a := range ls {
		for _, b := range rs {
			sel += segMatch(a, b, nl, nr)
		}
	}
	if sel <= 0 {
		sel = 1 / (nl * nr) // disjoint histograms: near zero, never zero
	}
	return sel
}

// segMatch is one bucket pair's contribution to the join selectivity.
func segMatch(a, b histSeg, nl, nr float64) float64 {
	switch {
	case a.point && b.point:
		if a.up == b.up {
			return (float64(a.count) / nl) * (float64(b.count) / nr)
		}
		return 0
	case a.point:
		return pointInSeg(a, b, nl, nr)
	case b.point:
		return pointInSeg(b, a, nr, nl)
	}
	lo := math.Max(a.lo, b.lo)
	up := math.Min(a.up, b.up)
	if up <= lo {
		return 0
	}
	fa := (up - lo) / (a.up - a.lo)
	fb := (up - lo) / (b.up - b.lo)
	rowsA := float64(a.count) * fa / nl
	rowsB := float64(b.count) * fb / nr
	d := math.Max(float64(a.distinct)*fa, float64(b.distinct)*fb)
	if d < 1 {
		d = 1
	}
	return rowsA * rowsB / d
}

// pointInSeg matches a point-mass bucket against an interval bucket.
func pointInSeg(p, s histSeg, np, ns float64) float64 {
	if p.up <= s.lo || p.up > s.up {
		return 0
	}
	d := s.distinct
	if d < 1 {
		d = 1
	}
	return (float64(p.count) / np) * (float64(s.count) / ns / float64(d))
}

// bucketIndex returns the index of the bucket covering ord (clamped to
// the last bucket), mirroring colStats.bucketFor for snapshot slices.
func bucketIndex(bkts []bucket, ord float64) int {
	lo, hi := 0, len(bkts)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if bkts[mid].upper < ord {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// snapshotExact copies a column's exact frequency table under the table
// lock; ok is false when the column is not in exact mode.
func snapshotExact(t *TableStats, c *colStats) ([]valCount, int, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if c.counts == nil {
		return nil, 0, false
	}
	out := make([]valCount, 0, len(c.counts))
	for _, vc := range c.counts {
		out = append(out, *vc)
	}
	return out, c.n, true
}

// clampSel keeps selectivities inside [0, 1].
func clampSel(s float64) float64 {
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// String renders the collected statistics for EXPLAIN-style output.
func (e *Estimator) String() string {
	if e == nil {
		return "estimator: none"
	}
	names := make([]string, 0, len(e.tables))
	for n := range e.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	if e.uniform {
		b.WriteString("(uniform view)\n")
	}
	for _, n := range names {
		fmt.Fprintf(&b, "%s\n", e.tables[n])
	}
	return b.String()
}
