// Selectivity estimation for the cost-based combination phase. The
// paper's processor picks its scan order statically (spec priority,
// prefix right-to-left, declaration order); section 5 names smarter
// ordering as the limiting factor once relations grow skewed. The
// estimator holds the per-relation statistics — cardinality, per-column
// distinct counts and min/max — that the planner's greedy ordering and
// the optimizer's extraction gate consult.
//
// The formulas are the classic System R ones: 1/distinct for equality
// against a constant, linear interpolation over [min, max] for ordered
// comparisons, 1/max(distinct_l, distinct_r) for equi-joins, and fixed
// fractions where nothing better is known.
package stats

import (
	"fmt"
	"sort"
	"strings"

	"pascalr/internal/value"
)

// Default selectivities when no statistic applies (System R's magic
// numbers, still the standard fallbacks).
const (
	DefaultEqSel    = 0.1       // equality with no distinct count
	DefaultRangeSel = 1.0 / 3.0 // ordered comparison with no min/max
	DefaultNeSel    = 0.9       // inequality (<>)
	DefaultSemiSel  = 0.5       // derived (value-list) predicates
)

// ColStats summarizes one column of one relation.
type ColStats struct {
	Distinct int         // number of distinct values observed
	Min, Max value.Value // extrema; invalid when the column is empty
	ordered  bool        // Min/Max comparable (int, enum, bool, string)

	seen map[string]struct{} // distinct-value builder; nil once finished
}

// TableStats summarizes one relation: its cardinality and per-column
// statistics.
type TableStats struct {
	Name string
	Rows int

	cols    map[string]*ColStats
	colList []string
}

// NewTableStats creates an empty summary for a relation with the given
// columns, ready to Observe tuples.
func NewTableStats(name string, cols []string) *TableStats {
	t := &TableStats{Name: name, cols: make(map[string]*ColStats, len(cols)), colList: append([]string(nil), cols...)}
	for _, c := range cols {
		t.cols[c] = &ColStats{seen: make(map[string]struct{})}
	}
	return t
}

// Observe folds one tuple (in column order) into the statistics.
func (t *TableStats) Observe(tuple []value.Value) {
	t.Rows++
	for i, c := range t.colList {
		if i >= len(tuple) {
			break
		}
		cs := t.cols[c]
		v := tuple[i]
		if cs.seen != nil {
			k := value.EncodeKey([]value.Value{v})
			if _, dup := cs.seen[k]; !dup {
				cs.seen[k] = struct{}{}
				cs.Distinct++
			}
		}
		if !cs.Min.IsValid() {
			cs.Min, cs.Max, cs.ordered = v, v, true
			continue
		}
		if !cs.ordered {
			continue
		}
		cmpMin, err1 := value.Compare(v, cs.Min)
		cmpMax, err2 := value.Compare(v, cs.Max)
		if err1 != nil || err2 != nil {
			cs.ordered = false // mixed kinds: extrema unusable
			continue
		}
		if cmpMin < 0 {
			cs.Min = v
		}
		if cmpMax > 0 {
			cs.Max = v
		}
	}
}

// Finish releases the distinct-value builders; further Observe calls
// stop updating distinct counts.
func (t *TableStats) Finish() {
	for _, cs := range t.cols {
		cs.seen = nil
	}
}

// Col returns the statistics of a column, or nil.
func (t *TableStats) Col(name string) *ColStats {
	if t == nil {
		return nil
	}
	return t.cols[name]
}

// Estimator answers cardinality and selectivity questions from collected
// table statistics. A nil Estimator answers every question with its
// default, so call sites need no guards.
type Estimator struct {
	tables map[string]*TableStats
}

// NewEstimator creates an empty estimator.
func NewEstimator() *Estimator {
	return &Estimator{tables: make(map[string]*TableStats)}
}

// AddTable registers (or replaces) one relation's statistics.
func (e *Estimator) AddTable(t *TableStats) {
	t.Finish()
	e.tables[t.Name] = t
}

// Table returns the named relation's statistics, or nil.
func (e *Estimator) Table(rel string) *TableStats {
	if e == nil {
		return nil
	}
	return e.tables[rel]
}

// Card returns the estimated cardinality of a relation; unknown
// relations estimate as 1 so products stay meaningful.
func (e *Estimator) Card(rel string) float64 {
	if t := e.Table(rel); t != nil {
		return float64(t.Rows)
	}
	return 1
}

// DistinctValues returns the number of distinct values of rel.col, or 0
// when unknown.
func (e *Estimator) DistinctValues(rel, col string) float64 {
	if cs := e.Table(rel).Col(col); cs != nil {
		return float64(cs.Distinct)
	}
	return 0
}

// SelectivityConst estimates the fraction of rel's tuples whose column
// satisfies "col op c".
func (e *Estimator) SelectivityConst(rel, col string, op value.CmpOp, c value.Value) float64 {
	cs := e.Table(rel).Col(col)
	switch op {
	case value.OpEq:
		if cs != nil && cs.Distinct > 0 {
			return clampSel(1 / float64(cs.Distinct))
		}
		return DefaultEqSel
	case value.OpNe:
		if cs != nil && cs.Distinct > 0 {
			return clampSel(1 - 1/float64(cs.Distinct))
		}
		return DefaultNeSel
	default:
		if f, ok := rangeFraction(cs, op, c); ok {
			return clampSel(f)
		}
		return DefaultRangeSel
	}
}

// rangeFraction interpolates an ordered comparison over [Min, Max] for
// kinds with a usable numeric ordinal (int, enum, bool).
func rangeFraction(cs *ColStats, op value.CmpOp, c value.Value) (float64, bool) {
	if cs == nil || !cs.ordered || !cs.Min.IsValid() {
		return 0, false
	}
	lo, ok1 := ordinal(cs.Min)
	hi, ok2 := ordinal(cs.Max)
	v, ok3 := ordinal(c)
	if !ok1 || !ok2 || !ok3 {
		return 0, false
	}
	if hi <= lo {
		// Single-point column: the comparison either always or never holds.
		holds := op.Holds(cmpFloat(lo, v))
		if holds {
			return 1, true
		}
		return 0, true
	}
	// Model c's own value as one "bucket" of 1/distinct probability and
	// interpolate the rest: below = frac·(1-bucket). This keeps the
	// boundaries honest — an inclusive comparison at a domain extremum
	// ("col <= Min", "col >= Max") estimates one bucket, not zero rows.
	frac := (v - lo) / (hi - lo)
	bucket := 1.0
	if cs.Distinct > 0 {
		bucket = 1 / float64(cs.Distinct)
	}
	below := frac * (1 - bucket)
	switch op {
	case value.OpLt:
		return below, true
	case value.OpLe:
		return below + bucket, true
	case value.OpGt:
		return 1 - below - bucket, true
	case value.OpGe:
		return 1 - below, true
	}
	return 0, false
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// ordinal maps a value onto the number line for interpolation.
func ordinal(v value.Value) (float64, bool) {
	switch v.Kind() {
	case value.KindInt:
		return float64(v.AsInt()), true
	case value.KindEnum:
		return float64(v.EnumOrd()), true
	case value.KindBool:
		if v.AsBool() {
			return 1, true
		}
		return 0, true
	}
	return 0, false
}

// JoinSelectivity estimates the fraction of the cross product of two
// relations surviving "l.lcol op r.rcol".
func (e *Estimator) JoinSelectivity(lrel, lcol string, op value.CmpOp, rrel, rcol string) float64 {
	switch op {
	case value.OpEq:
		dl, dr := e.DistinctValues(lrel, lcol), e.DistinctValues(rrel, rcol)
		d := dl
		if dr > d {
			d = dr
		}
		if d > 0 {
			return clampSel(1 / d)
		}
		return DefaultEqSel
	case value.OpNe:
		return DefaultNeSel
	default:
		return DefaultRangeSel
	}
}

// clampSel keeps selectivities inside [0, 1].
func clampSel(s float64) float64 {
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// String renders the collected statistics for EXPLAIN-style output.
func (e *Estimator) String() string {
	if e == nil {
		return "estimator: none"
	}
	names := make([]string, 0, len(e.tables))
	for n := range e.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		t := e.tables[n]
		fmt.Fprintf(&b, "%s: rows=%d", n, t.Rows)
		for _, c := range t.colList {
			fmt.Fprintf(&b, " %s(d=%d)", c, t.cols[c].Distinct)
		}
		b.WriteString("\n")
	}
	return b.String()
}
