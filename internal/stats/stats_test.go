package stats

import (
	"strings"
	"testing"
)

func TestNilSafety(t *testing.T) {
	var c *Counters
	c.CountScan("r")
	c.CountTuples(3)
	c.CountProbes(1)
	c.CountComparisons(2)
	c.CountRefTuples(5, 5)
	c.RecordStructure("x", "index", 1)
	c.Merge(&Counters{})
	c.Reset()
	if c.TotalScans() != 0 {
		t.Errorf("nil TotalScans != 0")
	}
	if c.String() != "stats: disabled" {
		t.Errorf("nil String = %q", c.String())
	}
}

func TestCounting(t *testing.T) {
	c := &Counters{}
	c.CountScan("employees")
	c.CountScan("employees")
	c.CountScan("papers")
	c.CountTuples(10)
	c.CountProbes(4)
	c.CountComparisons(7)
	c.CountRefTuples(3, 3)
	c.CountRefTuples(2, 9)
	c.RecordStructure("sl_prof", "single-list", 3)

	if c.TotalScans() != 3 {
		t.Errorf("TotalScans = %d", c.TotalScans())
	}
	if c.BaseScans["employees"] != 2 || c.BaseScans["papers"] != 1 {
		t.Errorf("BaseScans = %v", c.BaseScans)
	}
	if c.TuplesRead != 10 || c.IndexProbes != 4 || c.Comparisons != 7 {
		t.Errorf("counters wrong: %+v", c)
	}
	if c.RefTuples != 5 || c.PeakRefTuples != 9 {
		t.Errorf("ref tuples = %d peak %d", c.RefTuples, c.PeakRefTuples)
	}
}

func TestMerge(t *testing.T) {
	a := &Counters{}
	a.CountScan("x")
	a.CountRefTuples(1, 10)
	b := &Counters{}
	b.CountScan("x")
	b.CountScan("y")
	b.CountTuples(5)
	b.CountRefTuples(2, 4)
	b.RecordStructure("s", "index", 2)

	a.Merge(b)
	if a.BaseScans["x"] != 2 || a.BaseScans["y"] != 1 {
		t.Errorf("merged scans = %v", a.BaseScans)
	}
	if a.TuplesRead != 5 || a.RefTuples != 3 || a.PeakRefTuples != 10 {
		t.Errorf("merged counters wrong: %+v", a)
	}
	if len(a.Structures) != 1 {
		t.Errorf("merged structures = %v", a.Structures)
	}
	a.Merge(nil) // must not panic
}

func TestReset(t *testing.T) {
	c := &Counters{}
	c.CountScan("x")
	c.Reset()
	if c.TotalScans() != 0 || c.TuplesRead != 0 {
		t.Errorf("Reset left data: %+v", c)
	}
}

func TestStringReport(t *testing.T) {
	c := &Counters{}
	c.CountScan("courses")
	c.CountTuples(15)
	c.RecordStructure("ij_c_t", "indirect-join", 12)
	s := c.String()
	for _, want := range []string{"courses=1", "tuples read: 15", "ij_c_t", "indirect-join"} {
		if !strings.Contains(s, want) {
			t.Errorf("report %q missing %q", s, want)
		}
	}
}
