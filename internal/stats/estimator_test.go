package stats

import (
	"fmt"
	"math"
	"testing"

	"pascalr/internal/value"
)

func almost(t *testing.T, what string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("%s = %v, want %v", what, got, want)
	}
}

func buildEstimator() *Estimator {
	e := NewEstimator()
	ts := NewTableStats("emp", []string{"id", "grade"})
	for i := 0; i < 100; i++ {
		ts.Observe([]value.Value{value.Int(int64(i)), value.Int(int64(i % 4))})
	}
	e.AddTable(ts)
	return e
}

func TestTableStatsCollection(t *testing.T) {
	e := buildEstimator()
	ts := e.Table("emp")
	if ts.Rows() != 100 {
		t.Fatalf("rows = %d, want 100", ts.Rows())
	}
	if d := ts.Col("id").DistinctCount(); d != 100 {
		t.Errorf("distinct(id) = %d, want 100", d)
	}
	if d := ts.Col("grade").DistinctCount(); d != 4 {
		t.Errorf("distinct(grade) = %d, want 4", d)
	}
	mn, mx, ok := ts.Col("id").Bounds()
	if !ok || mn.AsInt() != 0 || mx.AsInt() != 99 {
		t.Errorf("id extrema = [%v, %v] ok=%v, want [0, 99]", mn, mx, ok)
	}
	if m := ts.Col("grade").Mode(); m != ModeExact {
		t.Errorf("grade mode = %s, want exact", m)
	}
}

func TestCardAndDistinct(t *testing.T) {
	e := buildEstimator()
	almost(t, "Card(emp)", e.Card("emp"), 100)
	almost(t, "Card(unknown)", e.Card("nope"), 1)
	almost(t, "DistinctValues(emp.grade)", e.DistinctValues("emp", "grade"), 4)
	almost(t, "DistinctValues(unknown)", e.DistinctValues("emp", "nope"), 0)
}

func TestSelectivityConst(t *testing.T) {
	e := buildEstimator()
	almost(t, "grade = c", e.SelectivityConst("emp", "grade", value.OpEq, value.Int(2)), 0.25)
	almost(t, "grade <> c", e.SelectivityConst("emp", "grade", value.OpNe, value.Int(2)), 0.75)
	// id ranges over [0, 99]: id < 50 is exactly half the rows.
	got := e.SelectivityConst("emp", "id", value.OpLt, value.Int(50))
	if got < 0.4 || got > 0.6 {
		t.Errorf("id < 50 selectivity = %v, want ~0.5", got)
	}
	// Beyond the observed maximum everything qualifies.
	almost(t, "id <= 200", e.SelectivityConst("emp", "id", value.OpLe, value.Int(200)), 1)
	// Inclusive comparisons at the domain extrema are exact from the
	// frequency table.
	almost(t, "grade <= 0", e.SelectivityConst("emp", "grade", value.OpLe, value.Int(0)), 0.25)
	almost(t, "grade >= 3", e.SelectivityConst("emp", "grade", value.OpGe, value.Int(3)), 0.25)
	// Unknown column falls back to the defaults.
	almost(t, "unknown =", e.SelectivityConst("emp", "nope", value.OpEq, value.Int(1)), DefaultEqSel)
	almost(t, "unknown <", e.SelectivityConst("emp", "nope", value.OpLt, value.Int(1)), DefaultRangeSel)
}

func TestJoinSelectivity(t *testing.T) {
	e := buildEstimator()
	other := NewTableStats("dept", []string{"gid"})
	for i := 0; i < 10; i++ {
		other.Observe([]value.Value{value.Int(int64(i % 2))})
	}
	e.AddTable(other)
	// Exact distributions: grade uniform over {0..3} (f=0.25 each), gid
	// uniform over {0,1} (f=0.5 each); match probability
	// 0.25·0.5 + 0.25·0.5 = 0.25.
	almost(t, "equi-join", e.JoinSelectivity("emp", "grade", value.OpEq, "dept", "gid"), 0.25)
	almost(t, "ne-join", e.JoinSelectivity("emp", "grade", value.OpNe, "dept", "gid"), DefaultNeSel)
	almost(t, "range-join", e.JoinSelectivity("emp", "grade", value.OpLt, "dept", "gid"), DefaultRangeSel)
}

func TestJoinSelectivitySkewAndDisjoint(t *testing.T) {
	e := NewEstimator()
	l := NewTableStats("l", []string{"v"})
	for i := 0; i < 100; i++ {
		l.Observe([]value.Value{value.Int(0)}) // all rows the heavy hitter
	}
	r := NewTableStats("r", []string{"v"})
	for i := 0; i < 100; i++ {
		r.Observe([]value.Value{value.Int(int64(i % 10))})
	}
	e.AddTable(l)
	e.AddTable(r)
	// Every left row matches the 10% of right rows with v=0: true join
	// selectivity 0.1; the uniform model says 1/max(1,10) = 0.1 here
	// too, but skew the right side and they diverge:
	almost(t, "hh-join", e.JoinSelectivity("l", "v", value.OpEq, "r", "v"), 0.1)

	d := NewTableStats("d", []string{"v"})
	for i := 0; i < 50; i++ {
		d.Observe([]value.Value{value.Int(int64(1000 + i))}) // disjoint range
	}
	e.AddTable(d)
	if got := e.JoinSelectivity("l", "v", value.OpEq, "d", "v"); got > 1e-3 {
		t.Errorf("disjoint equi-join selectivity = %v, want ~0", got)
	}
	// The uniform view cannot see the disjointness.
	if got := e.Uniform().JoinSelectivity("l", "v", value.OpEq, "d", "v"); got < 0.01 {
		t.Errorf("uniform disjoint equi-join = %v, want 1/max(d)", got)
	}
}

func TestNilEstimatorDefaults(t *testing.T) {
	var e *Estimator
	almost(t, "nil Card", e.Card("x"), 1)
	almost(t, "nil eq", e.SelectivityConst("x", "y", value.OpEq, value.Int(1)), DefaultEqSel)
	if e.Table("x") != nil {
		t.Error("nil estimator returned a table")
	}
	if e.Uniform() != nil {
		t.Error("nil estimator's uniform view is non-nil")
	}
}

func TestSinglePointColumn(t *testing.T) {
	e := NewEstimator()
	ts := NewTableStats("one", []string{"k"})
	for i := 0; i < 5; i++ {
		ts.Observe([]value.Value{value.Int(7)})
	}
	e.AddTable(ts)
	almost(t, "k < 7", e.SelectivityConst("one", "k", value.OpLt, value.Int(7)), 0)
	almost(t, "k <= 7", e.SelectivityConst("one", "k", value.OpLe, value.Int(7)), 1)
	almost(t, "k > 3", e.SelectivityConst("one", "k", value.OpGt, value.Int(3)), 1)
}

func TestMixedKindColumnFallsBack(t *testing.T) {
	e := NewEstimator()
	ts := NewTableStats("mix", []string{"k"})
	ts.Observe([]value.Value{value.Int(1)})
	ts.Observe([]value.Value{value.String_("a")})
	e.AddTable(ts)
	almost(t, "mixed <", e.SelectivityConst("mix", "k", value.OpLt, value.Int(5)), DefaultRangeSel)
}

// TestSkewedEqualitySelectivity is the histogram's reason to exist: a
// heavy-hitter value takes most of the rows, the frequency table knows
// it, and the uniform view does not.
func TestSkewedEqualitySelectivity(t *testing.T) {
	e := NewEstimator()
	ts := NewTableStats("ev", []string{"kind"})
	for i := 0; i < 1000; i++ {
		k := int64(0) // 90% heavy hitter
		if i%10 == 9 {
			k = int64(1 + i%7)
		}
		ts.Observe([]value.Value{value.Int(k)})
	}
	e.AddTable(ts)
	hist := e.SelectivityConst("ev", "kind", value.OpEq, value.Int(0))
	if hist < 0.85 || hist > 0.95 {
		t.Errorf("histogram heavy-hitter selectivity = %v, want ~0.9", hist)
	}
	uni := e.Uniform().SelectivityConst("ev", "kind", value.OpEq, value.Int(0))
	if uni > 0.2 {
		t.Errorf("uniform heavy-hitter selectivity = %v, want 1/distinct (small)", uni)
	}
}

// TestDeletesKeepExactStats verifies the frequency table stays exact
// under deletions — low-distinct columns never need a rebuild.
func TestDeletesKeepExactStats(t *testing.T) {
	e := NewEstimator()
	ts := NewTableStats("d", []string{"v"})
	for i := 0; i < 100; i++ {
		ts.ObserveInsert(i, []value.Value{value.Int(int64(i % 4))})
	}
	for i := 0; i < 50; i++ { // delete every v=0 and v=1 tuple's worth
		ts.ObserveDelete(i, []value.Value{value.Int(int64(i % 2))})
	}
	e.AddTable(ts)
	if ts.Rows() != 50 {
		t.Fatalf("rows after deletes = %d, want 50", ts.Rows())
	}
	// 25 of each value remained for v=2,3; v=0,1 dropped to 0 live... the
	// arithmetic: inserts gave 25 each; deletes removed 25 of v=0 and 25
	// of v=1.
	almost(t, "v = 2 after deletes", e.SelectivityConst("d", "v", value.OpEq, value.Int(2)), 0.5)
	if d := ts.Col("v").DistinctCount(); d != 2 {
		t.Errorf("distinct after deletes = %d, want 2", d)
	}
	if ts.Drifted() {
		t.Error("exact-mode table reported drift")
	}
	// Bounds shrink too: only v ∈ {2, 3} remain live.
	mn, mx, ok := ts.Col("v").Bounds()
	if !ok || mn.AsInt() != 2 || mx.AsInt() != 3 {
		t.Errorf("bounds after deletes = [%v, %v] ok=%v, want [2, 3]", mn, mx, ok)
	}
}

// TestEquiDepthDegrade pushes a column past MaxExactValues and checks
// the bucketed estimates stay close on a skewed distribution.
func TestEquiDepthDegrade(t *testing.T) {
	e := NewEstimator()
	ts := NewTableStats("big", []string{"v"})
	n := 4000
	for i := 0; i < n; i++ {
		v := int64(i % 1000) // 1000 distinct > MaxExactValues
		if i%2 == 0 {
			v = 7 // heavy hitter: half the rows
		}
		ts.Observe([]value.Value{value.Int(v)})
	}
	e.AddTable(ts)
	cs := ts.Col("v")
	if m := cs.Mode(); m != ModeEquiDepth {
		t.Fatalf("mode = %s, want equi-depth", m)
	}
	hh := e.SelectivityConst("big", "v", value.OpEq, value.Int(7))
	if hh < 0.3 || hh > 0.7 {
		t.Errorf("bucketed heavy-hitter selectivity = %v, want ~0.5", hh)
	}
	uni := e.Uniform().SelectivityConst("big", "v", value.OpEq, value.Int(7))
	if uni > 0.05 {
		t.Errorf("uniform heavy-hitter selectivity = %v, want tiny", uni)
	}
	// Range fraction: v < 500 covers the heavy hitter plus ~half the
	// tail ≈ 0.5 + 0.25.
	r := e.SelectivityConst("big", "v", value.OpLt, value.Int(500))
	if r < 0.55 || r > 0.95 {
		t.Errorf("bucketed range selectivity = %v, want ~0.75", r)
	}
	d := cs.DistinctCount()
	if d < 500 || d > 2000 {
		t.Errorf("sketched distinct = %d, want ~1000", d)
	}
}

// TestRebuildFromScan checks the rebuild accumulator: true quantile
// boundaries, exact distinct, reset drift.
func TestRebuildFromScan(t *testing.T) {
	ts := NewTableStats("r", []string{"v"})
	// Dirty the live stats with a different distribution first.
	for i := 0; i < 600; i++ {
		ts.ObserveInsert(i, []value.Value{value.Int(int64(i))})
	}
	rb := ts.NewRebuild()
	for i := 0; i < 2000; i++ {
		rb.Add(i, []value.Value{value.Int(int64(i % 300 * 10))})
	}
	rb.Commit()
	if ts.Rows() != 2000 {
		t.Fatalf("rows after rebuild = %d, want 2000", ts.Rows())
	}
	cs := ts.Col("v")
	if m := cs.Mode(); m != ModeEquiDepth {
		t.Fatalf("mode after rebuild = %s, want equi-depth", m)
	}
	if d := cs.DistinctCount(); d < 250 || d > 350 {
		t.Errorf("distinct after rebuild = %d, want 300", d)
	}
	if ts.Drifted() {
		t.Error("freshly rebuilt table reported drift")
	}
	e := NewEstimator()
	e.AddTable(ts)
	got := e.SelectivityConst("r", "v", value.OpLt, value.Int(1500))
	if got < 0.4 || got > 0.6 {
		t.Errorf("post-rebuild range selectivity = %v, want ~0.5", got)
	}
}

// TestDriftTrigger checks the drift threshold fires only for bucketed
// tables with enough churn.
func TestDriftTrigger(t *testing.T) {
	ts := NewTableStats("t", []string{"v"})
	rb := ts.NewRebuild()
	for i := 0; i < 2000; i++ {
		rb.Add(i, []value.Value{value.Int(int64(i))})
	}
	rb.Commit()
	if ts.Drifted() {
		t.Fatal("no mutations yet, but drifted")
	}
	for i := 0; i < 500; i++ {
		ts.ObserveInsert(2000+i, []value.Value{value.Int(int64(3000 + i))})
	}
	if !ts.Drifted() {
		t.Error("500 mutations on a 2000-row bucketed table should drift")
	}
}

// TestDegradeResetsDrift checks the insert that degrades a column out
// of exact mode does not itself trip the drift threshold: degrade()
// builds true quantiles from the complete frequency table, so the table
// is as fresh as a rebuild at that instant and an organically growing
// relation must not pay a redundant full rescan at the degrade point.
func TestDegradeResetsDrift(t *testing.T) {
	ts := NewTableStats("g", []string{"v"})
	for i := 0; i <= MaxExactValues; i++ {
		if ts.ObserveInsert(i, []value.Value{value.Int(int64(i))}) {
			t.Fatalf("insert %d reported drift during organic growth", i)
		}
	}
	if m := ts.Col("v").Mode(); m != ModeEquiDepth {
		t.Fatalf("mode after %d distinct values = %s, want equi-depth", MaxExactValues+1, m)
	}
	if ts.Drifted() {
		t.Fatal("freshly degraded table reported drift")
	}
	// Enough further churn must still trigger the rebuild.
	for i := 0; i < minDriftMutations; i++ {
		ts.ObserveInsert(MaxExactValues+1+i, []value.Value{value.Int(int64(MaxExactValues + 1 + i))})
	}
	if !ts.Drifted() {
		t.Errorf("%d mutations after the degrade point should drift", minDriftMutations)
	}
}

// TestNonOrdinalDegradeArmsDrift checks a high-distinct string column
// (bounds-only after degrading: no buckets) still arms the drift
// rebuild — its insert-only sketch overcounts under deletion churn,
// which only a rescan repairs — and that the rebuild restores an exact
// distinct count.
func TestNonOrdinalDegradeArmsDrift(t *testing.T) {
	ts := NewTableStats("s", []string{"name"})
	name := func(i int) []value.Value {
		return []value.Value{value.String_(fmt.Sprintf("v%03d", i))}
	}
	for i := 0; i < 500; i++ {
		ts.ObserveInsert(i, name(i))
	}
	if m := ts.Col("name").Mode(); m != ModeBounds {
		t.Fatalf("mode after 500 distinct strings = %s, want bounds", m)
	}
	drifted := false
	for i := 0; i < 400; i++ {
		if ts.ObserveDelete(i, name(i)) {
			drifted = true
		}
	}
	if !drifted {
		t.Fatal("deletion churn on a degraded non-ordinal column never armed the rebuild")
	}
	rb := ts.NewRebuild()
	for i := 400; i < 500; i++ {
		rb.Add(i, name(i))
	}
	rb.Commit()
	if d := ts.Col("name").DistinctCount(); d != 100 {
		t.Errorf("distinct after rebuild = %d, want 100 exactly", d)
	}
	if ts.Drifted() {
		t.Error("freshly rebuilt table reported drift")
	}
}

// TestSnapshotIsolation checks a snapshot is unaffected by later
// mutations of the live statistics.
func TestSnapshotIsolation(t *testing.T) {
	ts := NewTableStats("s", []string{"v"})
	for i := 0; i < 10; i++ {
		ts.ObserveInsert(i, []value.Value{value.Int(int64(i))})
	}
	snap := ts.Snapshot()
	for i := 10; i < 100; i++ {
		ts.ObserveInsert(i, []value.Value{value.Int(int64(i))})
	}
	if snap.Rows() != 10 {
		t.Errorf("snapshot rows = %d, want 10", snap.Rows())
	}
	if ts.Rows() != 100 {
		t.Errorf("live rows = %d, want 100", ts.Rows())
	}
	if d := snap.Col("v").DistinctCount(); d != 10 {
		t.Errorf("snapshot distinct = %d, want 10", d)
	}
}

// TestSlotWeights checks the slot-density summary tracks live counts
// per stripe through inserts and deletes.
func TestSlotWeights(t *testing.T) {
	ts := NewTableStats("w", []string{"v"})
	for i := 0; i < 200; i++ {
		ts.ObserveInsert(i, []value.Value{value.Int(int64(i))})
	}
	// Delete everything in the first stripe region.
	for i := 0; i < 64; i++ {
		ts.ObserveDelete(i, []value.Value{value.Int(int64(i))})
	}
	w, stripe := ts.SlotWeights()
	if stripe == 0 || len(w) == 0 {
		t.Fatal("no slot weights tracked")
	}
	total := int32(0)
	for _, n := range w {
		total += n
	}
	if total != int32(ts.Rows()) {
		t.Errorf("slot weights total %d != rows %d", total, ts.Rows())
	}
	if w[0] != 0 {
		t.Errorf("first stripe weight = %d, want 0 after deletes", w[0])
	}
}
