package stats

import (
	"math"
	"testing"

	"pascalr/internal/value"
)

func almost(t *testing.T, what string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("%s = %v, want %v", what, got, want)
	}
}

func buildEstimator() *Estimator {
	e := NewEstimator()
	ts := NewTableStats("emp", []string{"id", "grade"})
	for i := 0; i < 100; i++ {
		ts.Observe([]value.Value{value.Int(int64(i)), value.Int(int64(i % 4))})
	}
	e.AddTable(ts)
	return e
}

func TestTableStatsCollection(t *testing.T) {
	e := buildEstimator()
	ts := e.Table("emp")
	if ts.Rows != 100 {
		t.Fatalf("rows = %d, want 100", ts.Rows)
	}
	if d := ts.Col("id").Distinct; d != 100 {
		t.Errorf("distinct(id) = %d, want 100", d)
	}
	if d := ts.Col("grade").Distinct; d != 4 {
		t.Errorf("distinct(grade) = %d, want 4", d)
	}
	if mn, mx := ts.Col("id").Min.AsInt(), ts.Col("id").Max.AsInt(); mn != 0 || mx != 99 {
		t.Errorf("id extrema = [%d, %d], want [0, 99]", mn, mx)
	}
}

func TestCardAndDistinct(t *testing.T) {
	e := buildEstimator()
	almost(t, "Card(emp)", e.Card("emp"), 100)
	almost(t, "Card(unknown)", e.Card("nope"), 1)
	almost(t, "DistinctValues(emp.grade)", e.DistinctValues("emp", "grade"), 4)
	almost(t, "DistinctValues(unknown)", e.DistinctValues("emp", "nope"), 0)
}

func TestSelectivityConst(t *testing.T) {
	e := buildEstimator()
	almost(t, "grade = c", e.SelectivityConst("emp", "grade", value.OpEq, value.Int(2)), 0.25)
	almost(t, "grade <> c", e.SelectivityConst("emp", "grade", value.OpNe, value.Int(2)), 0.75)
	// id ranges over [0, 99]: id < 50 interpolates to ~half.
	got := e.SelectivityConst("emp", "id", value.OpLt, value.Int(50))
	if got < 0.4 || got > 0.6 {
		t.Errorf("id < 50 selectivity = %v, want ~0.5", got)
	}
	// Beyond the observed maximum everything qualifies.
	almost(t, "id <= 200", e.SelectivityConst("emp", "id", value.OpLe, value.Int(200)), 1)
	// An inclusive comparison at the domain minimum still matches the
	// boundary bucket, not zero rows.
	almost(t, "grade <= 0", e.SelectivityConst("emp", "grade", value.OpLe, value.Int(0)), 0.25)
	almost(t, "grade >= 3", e.SelectivityConst("emp", "grade", value.OpGe, value.Int(3)), 0.25)
	// Unknown column falls back to the defaults.
	almost(t, "unknown =", e.SelectivityConst("emp", "nope", value.OpEq, value.Int(1)), DefaultEqSel)
	almost(t, "unknown <", e.SelectivityConst("emp", "nope", value.OpLt, value.Int(1)), DefaultRangeSel)
}

func TestJoinSelectivity(t *testing.T) {
	e := buildEstimator()
	other := NewTableStats("dept", []string{"gid"})
	for i := 0; i < 10; i++ {
		other.Observe([]value.Value{value.Int(int64(i % 2))})
	}
	e.AddTable(other)
	// max(distinct) = max(4, 2) = 4.
	almost(t, "equi-join", e.JoinSelectivity("emp", "grade", value.OpEq, "dept", "gid"), 0.25)
	almost(t, "ne-join", e.JoinSelectivity("emp", "grade", value.OpNe, "dept", "gid"), DefaultNeSel)
	almost(t, "range-join", e.JoinSelectivity("emp", "grade", value.OpLt, "dept", "gid"), DefaultRangeSel)
}

func TestNilEstimatorDefaults(t *testing.T) {
	var e *Estimator
	almost(t, "nil Card", e.Card("x"), 1)
	almost(t, "nil eq", e.SelectivityConst("x", "y", value.OpEq, value.Int(1)), DefaultEqSel)
	if e.Table("x") != nil {
		t.Error("nil estimator returned a table")
	}
}

func TestSinglePointColumn(t *testing.T) {
	e := NewEstimator()
	ts := NewTableStats("one", []string{"k"})
	for i := 0; i < 5; i++ {
		ts.Observe([]value.Value{value.Int(7)})
	}
	e.AddTable(ts)
	almost(t, "k < 7", e.SelectivityConst("one", "k", value.OpLt, value.Int(7)), 0)
	almost(t, "k <= 7", e.SelectivityConst("one", "k", value.OpLe, value.Int(7)), 1)
	almost(t, "k > 3", e.SelectivityConst("one", "k", value.OpGt, value.Int(3)), 1)
}

func TestMixedKindColumnFallsBack(t *testing.T) {
	e := NewEstimator()
	ts := NewTableStats("mix", []string{"k"})
	ts.Observe([]value.Value{value.Int(1)})
	ts.Observe([]value.Value{value.String_("a")})
	e.AddTable(ts)
	almost(t, "mixed <", e.SelectivityConst("mix", "k", value.OpLt, value.Int(5)), DefaultRangeSel)
}
