package parser

import (
	"pascalr/internal/calculus"
	"pascalr/internal/value"
)

// Selection grammar, following the paper's concrete syntax:
//
//	selection  = "[" "<" field {"," field} ">" OF decl {"," decl} [":" wff] "]" .
//	decl       = EACH name IN range .
//	range      = name | "[" EACH name IN name ":" wff "]" .
//	wff        = conj {OR conj} .
//	conj       = unary {AND unary} .
//	unary      = NOT unary | quant | "(" wff ")" | TRUE | FALSE | atom .
//	quant      = (SOME|ALL) name IN range "(" wff ")" .
//	atom       = operand relop operand .
//	operand    = name "." name | name | integer | string .
//	relop      = "=" | "<>" | "<" | "<=" | ">" | ">=" .
//
// Bare identifiers in operand position are enumeration labels, resolved
// later by calculus.Check against the comparison's other side.

func (p *parser) parseSelection() (*calculus.Selection, error) {
	if err := p.expectSym("["); err != nil {
		return nil, err
	}
	if err := p.expectSym("<"); err != nil {
		return nil, err
	}
	sel := &calculus.Selection{}
	for {
		v, err := p.expectName()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym("."); err != nil {
			return nil, err
		}
		col, err := p.expectName()
		if err != nil {
			return nil, err
		}
		sel.Proj = append(sel.Proj, calculus.Field{Var: v, Col: col})
		if p.peekSym(",") {
			p.next()
			continue
		}
		break
	}
	if err := p.expectSym(">"); err != nil {
		return nil, err
	}
	if err := p.expectIdentKw("of"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectIdentKw("each"); err != nil {
			return nil, err
		}
		v, err := p.expectName()
		if err != nil {
			return nil, err
		}
		if err := p.expectIdentKw("in"); err != nil {
			return nil, err
		}
		rng, err := p.parseRange()
		if err != nil {
			return nil, err
		}
		sel.Free = append(sel.Free, calculus.Decl{Var: v, Range: rng})
		if p.peekSym(",") {
			p.next()
			continue
		}
		break
	}
	if p.peekSym(":") {
		p.next()
		pred, err := p.parseWff()
		if err != nil {
			return nil, err
		}
		sel.Pred = pred
	}
	if err := p.expectSym("]"); err != nil {
		return nil, err
	}
	return sel, nil
}

// parseRange parses a bare relation name or an extended range
// [EACH v IN rel: wff].
func (p *parser) parseRange() (*calculus.RangeExpr, error) {
	if !p.peekSym("[") {
		rel, err := p.expectName()
		if err != nil {
			return nil, err
		}
		return &calculus.RangeExpr{Rel: rel}, nil
	}
	p.next()
	if err := p.expectIdentKw("each"); err != nil {
		return nil, err
	}
	v, err := p.expectName()
	if err != nil {
		return nil, err
	}
	if err := p.expectIdentKw("in"); err != nil {
		return nil, err
	}
	rel, err := p.expectName()
	if err != nil {
		return nil, err
	}
	if err := p.expectSym(":"); err != nil {
		return nil, err
	}
	filter, err := p.parseWff()
	if err != nil {
		return nil, err
	}
	if err := p.expectSym("]"); err != nil {
		return nil, err
	}
	return &calculus.RangeExpr{Rel: rel, FilterVar: v, Filter: filter}, nil
}

func (p *parser) parseWff() (calculus.Formula, error) {
	left, err := p.parseConj()
	if err != nil {
		return nil, err
	}
	fs := []calculus.Formula{left}
	for p.peekIdent("or") {
		p.next()
		right, err := p.parseConj()
		if err != nil {
			return nil, err
		}
		fs = append(fs, right)
	}
	if len(fs) == 1 {
		return fs[0], nil
	}
	return &calculus.Or{Fs: fs}, nil
}

func (p *parser) parseConj() (calculus.Formula, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	fs := []calculus.Formula{left}
	for p.peekIdent("and") {
		p.next()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		fs = append(fs, right)
	}
	if len(fs) == 1 {
		return fs[0], nil
	}
	return &calculus.And{Fs: fs}, nil
}

func (p *parser) parseUnary() (calculus.Formula, error) {
	switch {
	case p.peekIdent("not"):
		p.next()
		sub, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &calculus.Not{F: sub}, nil
	case p.peekIdent("some"), p.peekIdent("all"):
		all := p.cur().text == "all"
		p.next()
		v, err := p.expectName()
		if err != nil {
			return nil, err
		}
		if err := p.expectIdentKw("in"); err != nil {
			return nil, err
		}
		rng, err := p.parseRange()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym("("); err != nil {
			return nil, err
		}
		body, err := p.parseWff()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		return &calculus.Quant{All: all, Var: v, Range: rng, Body: body}, nil
	case p.peekSym("("):
		p.next()
		sub, err := p.parseWff()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		return sub, nil
	case p.peekIdent("true"):
		p.next()
		return &calculus.Lit{Val: true}, nil
	case p.peekIdent("false"):
		p.next()
		return &calculus.Lit{Val: false}, nil
	default:
		return p.parseAtom()
	}
}

func (p *parser) parseAtom() (calculus.Formula, error) {
	l, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	op, ok := value.CmpOp(0), false
	if t.kind == tokSym {
		op, ok = value.ParseOp(t.text)
	}
	if !ok {
		return nil, p.errf("expected comparison operator, found %q", t.text)
	}
	p.next()
	r, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	return &calculus.Cmp{L: l, Op: op, R: r}, nil
}

func (p *parser) parseOperand() (calculus.Operand, error) {
	t := p.cur()
	switch {
	case t.kind == tokInt:
		p.next()
		return calculus.Const{Val: value.Int(t.ival)}, nil
	case p.peekSym("-"):
		n, err := p.parseSignedInt()
		if err != nil {
			return nil, err
		}
		return calculus.Const{Val: value.Int(n)}, nil
	case t.kind == tokString:
		p.next()
		return calculus.Const{Val: value.String_(t.text)}, nil
	case t.kind == tokIdent && !keywords[t.text]:
		p.next()
		if p.peekSym(".") {
			p.next()
			col, err := p.expectName()
			if err != nil {
				return nil, err
			}
			return calculus.Field{Var: t.text, Col: col}, nil
		}
		return calculus.Label{Name: t.text}, nil
	case p.peekIdent("true"), p.peekIdent("false"):
		p.next()
		return calculus.Const{Val: value.Bool(t.text == "true")}, nil
	default:
		return nil, p.errf("expected operand, found %q", t.text)
	}
}
