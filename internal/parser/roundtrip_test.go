package parser

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"pascalr/internal/baseline"
	"pascalr/internal/calculus"
	"pascalr/internal/value"
	"pascalr/internal/workload"
)

// TestRandomSelectionRoundTrip is the parser's differential property:
// printing a random selection and re-parsing it must preserve semantics
// exactly (evaluated by the oracle on a random database).
func TestRandomSelectionRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		rng := rand.New(rand.NewSource(seed))
		db := workload.RandomDB(rng, 5)
		sel := workload.RandomSelection(rng)

		reparsed, err := ParseSelection(sel.String())
		if err != nil {
			t.Fatalf("seed %d: cannot re-parse printout: %v\n%s", seed, err, sel)
		}
		// Printing the re-parse reproduces the same text (idempotence).
		if reparsed.String() != sel.String() {
			t.Fatalf("seed %d: print not idempotent:\n%s\n%s", seed, sel, reparsed)
		}

		c1, i1, err := calculus.Check(sel, db.Catalog())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		c2, i2, err := calculus.Check(reparsed, db.Catalog())
		if err != nil {
			t.Fatalf("seed %d: re-parsed selection fails check: %v", seed, err)
		}
		r1, err := baseline.Eval(c1, i1, db)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		r2, err := baseline.Eval(c2, i2, db)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if key(r1) != key(r2) {
			t.Fatalf("seed %d: round trip changed semantics\n%s", seed, sel)
		}
	}
}

func key(rel interface{ Tuples() [][]value.Value }) string {
	var keys []string
	for _, tup := range rel.Tuples() {
		keys = append(keys, value.EncodeKey(tup))
	}
	sort.Strings(keys)
	return strings.Join(keys, "|")
}
