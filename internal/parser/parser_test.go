package parser

import (
	"strings"
	"testing"

	"pascalr/internal/calculus"
	"pascalr/internal/schema"
	"pascalr/internal/value"
)

// figure1DDL is the paper's Figure 1, verbatim modulo whitespace.
const figure1DDL = `
TYPE statustype = (student, technician, assistant, professor);
     nametype   = PACKED ARRAY [1..10] OF char;
     titletype  = PACKED ARRAY [1..40] OF char;
     roomtype   = PACKED ARRAY [1..5] OF char;
     yeartype   = 1900..1999;
     timetype   = 8000900..18002000;
     daytype    = (monday, tuesday, wednesday, thursday, friday);
     leveltype  = (freshman, sophomore, junior, senior);
     enumbertype = 1..99;
     cnumbertype = 1..99;

VAR employees : RELATION <enr> OF
      RECORD
        enr : enumbertype;
        ename : nametype;
        estatus : statustype
      END;
    papers : RELATION <ptitle, penr> OF
      RECORD
        penr : enumbertype;
        pyear : yeartype;
        ptitle : titletype
      END;
    courses : RELATION <cnr> OF
      RECORD
        cnr : cnumbertype;
        clevel : leveltype;
        ctitle : titletype
      END;
    timetable : RELATION <tenr, tcnr, tday> OF
      RECORD
        tenr : enumbertype;
        tcnr : cnumbertype;
        tday : daytype;
        ttime : timetype;
        troom : roomtype
      END;
`

func TestParseFigure1(t *testing.T) {
	prog, err := Parse(figure1DDL, nil)
	if err != nil {
		t.Fatal(err)
	}
	var types, rels int
	for _, item := range prog.Items {
		switch it := item.(type) {
		case TypeDecl:
			types++
			if it.Name == "statustype" {
				if ord, ok := it.Type.Ordinal("professor"); !ok || ord != 3 {
					t.Errorf("statustype professor ordinal = %d, %v", ord, ok)
				}
			}
			if it.Name == "yeartype" && (it.Type.Lo != 1900 || it.Type.Hi != 1999) {
				t.Errorf("yeartype bounds = %d..%d", it.Type.Lo, it.Type.Hi)
			}
			if it.Name == "nametype" && it.Type.MaxLen != 10 {
				t.Errorf("nametype length = %d", it.Type.MaxLen)
			}
		case RelDecl:
			rels++
			switch it.Schema.Name {
			case "timetable":
				if len(it.Schema.Key) != 3 || len(it.Schema.Cols) != 5 {
					t.Errorf("timetable schema wrong: %v", it.Schema)
				}
			case "papers":
				if len(it.Schema.Key) != 2 {
					t.Errorf("papers key = %v", it.Schema.Key)
				}
			}
		}
	}
	if types != 10 || rels != 4 {
		t.Errorf("parsed %d types and %d relations, want 10 and 4", types, rels)
	}
}

// example21 is the paper's Example 2.1, verbatim modulo whitespace.
const example21 = `
[<e.ename> OF EACH e IN employees:
  (e.estatus = professor)
  AND
  (ALL p IN papers
     ((p.pyear <> 1977) OR (e.enr <> p.penr))
   OR
   SOME c IN courses ((c.clevel <= sophomore)
     AND
     SOME t IN timetable
       ((c.cnr = t.tcnr) AND (e.enr = t.tenr))))]
`

func TestParseExample21(t *testing.T) {
	sel, err := ParseSelection(example21)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Proj) != 1 || sel.Proj[0].Var != "e" || sel.Proj[0].Col != "ename" {
		t.Errorf("projection = %v", sel.Proj)
	}
	if len(sel.Free) != 1 || sel.Free[0].Range.Rel != "employees" {
		t.Errorf("free decls = %v", sel.Free)
	}
	if calculus.QuantCount(sel.Pred) != 3 {
		t.Errorf("quantifiers = %d", calculus.QuantCount(sel.Pred))
	}
	if !calculus.HasUniversal(sel.Pred) {
		t.Errorf("missing universal quantifier")
	}
	// Key structural pieces survive a round-trip through printing.
	s := sel.String()
	for _, want := range []string{"ALL p IN papers", "SOME t IN timetable", "p.pyear <> 1977"} {
		if !strings.Contains(s, want) {
			t.Errorf("parsed selection missing %q:\n%s", want, s)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	// Printing a parsed selection and re-parsing it yields the same tree.
	sel1, err := ParseSelection(example21)
	if err != nil {
		t.Fatal(err)
	}
	sel2, err := ParseSelection(sel1.String())
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, sel1)
	}
	if sel1.String() != sel2.String() {
		t.Errorf("round trip changed selection:\n%s\n%s", sel1, sel2)
	}
}

func TestParseExtendedRange(t *testing.T) {
	src := `[<e.ename> OF EACH e IN [EACH x IN employees: x.estatus = professor]:
	          SOME p IN [EACH q IN papers: q.pyear = 1977] (p.penr = e.enr)]`
	sel, err := ParseSelection(src)
	if err != nil {
		t.Fatal(err)
	}
	if !sel.Free[0].Range.Extended() || sel.Free[0].Range.FilterVar != "x" {
		t.Errorf("free extended range = %v", sel.Free[0].Range)
	}
	q := sel.Pred.(*calculus.Quant)
	if !q.Range.Extended() || q.Range.Rel != "papers" {
		t.Errorf("quantifier range = %v", q.Range)
	}
}

func TestParseStatements(t *testing.T) {
	src := figure1DDL + `
employees :+ [<20, 'Highman', technician>];
employees :+ [<21, 'Jones', professor>, <22, 'Wu', student>];
employees :- [<20>];
enames := [<e.ename> OF EACH e IN employees: e.estatus = professor];
`
	prog, err := Parse(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	var stmts []Stmt
	for _, item := range prog.Items {
		if s, ok := item.(Stmt); ok {
			stmts = append(stmts, s)
		}
	}
	if len(stmts) != 4 {
		t.Fatalf("parsed %d statements, want 4", len(stmts))
	}
	if stmts[0].Op != OpInsert || len(stmts[0].Tuples) != 1 {
		t.Errorf("stmt 0 = %+v", stmts[0])
	}
	if len(stmts[1].Tuples) != 2 {
		t.Errorf("stmt 1 tuples = %d", len(stmts[1].Tuples))
	}
	if stmts[2].Op != OpDelete || len(stmts[2].Tuples[0]) != 1 {
		t.Errorf("stmt 2 = %+v", stmts[2])
	}
	if stmts[3].Op != OpAssign || stmts[3].Sel == nil || stmts[3].Target != "enames" {
		t.Errorf("stmt 3 = %+v", stmts[3])
	}
}

func TestResolveTuple(t *testing.T) {
	st, _ := schema.EnumType("statustype", "student", "technician", "assistant", "professor")
	sch := schema.MustRelSchema("employees", []schema.Column{
		{Name: "enr", Type: schema.IntType("", 1, 99)},
		{Name: "ename", Type: schema.StringType("", 10)},
		{Name: "estatus", Type: st},
	}, []string{"enr"})

	tup, err := ResolveTuple([]Literal{
		{Kind: value.KindInt, I: 20},
		{Kind: value.KindString, S: "Highman"},
		{Label: "technician"},
	}, sch)
	if err != nil {
		t.Fatal(err)
	}
	if tup[0].AsInt() != 20 || tup[2].EnumOrd() != 1 {
		t.Errorf("resolved tuple = %v", tup)
	}
	// Errors: arity, bad label, label for non-enum, subrange violation.
	if _, err := ResolveTuple([]Literal{{Kind: value.KindInt, I: 1}}, sch); err == nil {
		t.Errorf("short tuple accepted")
	}
	if _, err := ResolveTuple([]Literal{
		{Kind: value.KindInt, I: 20}, {Kind: value.KindString, S: "x"}, {Label: "janitor"},
	}, sch); err == nil {
		t.Errorf("unknown label accepted")
	}
	if _, err := ResolveTuple([]Literal{
		{Kind: value.KindInt, I: 20}, {Label: "professor"}, {Label: "professor"},
	}, sch); err == nil {
		t.Errorf("label for string column accepted")
	}
	if _, err := ResolveTuple([]Literal{
		{Kind: value.KindInt, I: 500}, {Kind: value.KindString, S: "x"}, {Label: "student"},
	}, sch); err == nil {
		t.Errorf("subrange violation accepted")
	}

	key, err := KeyTuple([]Literal{{Kind: value.KindInt, I: 20}}, sch)
	if err != nil || key[0].AsInt() != 20 {
		t.Errorf("KeyTuple = %v, %v", key, err)
	}
	if _, err := KeyTuple([]Literal{{Kind: value.KindInt, I: 1}, {Kind: value.KindInt, I: 2}}, sch); err == nil {
		t.Errorf("oversized key accepted")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"unterminated string", `x := [<e.a> OF EACH e IN r: e.b = 'oops];`},
		{"missing bracket", `[<e.a> OF EACH e IN r: e.b = 1`},
		{"reserved word as name", `[<each.a> OF EACH each IN r: TRUE]`},
		{"bad operator", `[<e.a> OF EACH e IN r: e.a == 1]`},
		{"empty subrange", `TYPE t = 9..1;`},
		{"unknown named type", `VAR r : RELATION <a> OF RECORD a : ghost END;`},
		{"delete with selection", `r :- [<e.a> OF EACH e IN r: TRUE];`},
		{"assign tuple list", `r := [<1, 2>];`},
		{"missing relop", `[<e.a> OF EACH e IN r: e.a 1]`},
		{"stray character", `[<e.a> OF EACH e IN r: e.a = 1] $`},
	}
	for _, c := range cases {
		if _, err := Parse(c.src, nil); err == nil {
			if _, err := ParseSelection(c.src); err == nil {
				t.Errorf("%s: accepted", c.name)
			}
		}
	}
}

func TestParseComments(t *testing.T) {
	src := `
(* the sample database *)
TYPE t = 1..9; { a subrange }
VAR r : RELATION <a> OF RECORD a : t END;
r :+ [<3>]; (* insert *)
`
	prog, err := Parse(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Items) != 3 {
		t.Errorf("parsed %d items, want 3", len(prog.Items))
	}
}

func TestParseWithCatalogFallback(t *testing.T) {
	cat := schema.NewCatalog()
	cat.DefineType(schema.IntType("oldtype", 0, 5))
	src := `VAR r : RELATION <a> OF RECORD a : oldtype END;`
	prog, err := Parse(src, cat)
	if err != nil {
		t.Fatal(err)
	}
	rd := prog.Items[0].(RelDecl)
	if rd.Schema.Cols[0].Type.Name != "oldtype" {
		t.Errorf("fallback type not used")
	}
}

func TestParseRefType(t *testing.T) {
	// Figure 2 style auxiliary structure declarations.
	src := `VAR sl_prof : RELATION <eref> OF RECORD eref : @employees END;`
	prog, err := Parse(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	rd := prog.Items[0].(RelDecl)
	if rd.Schema.Cols[0].Type.Kind != schema.TRef || rd.Schema.Cols[0].Type.RefRel != "employees" {
		t.Errorf("ref type = %v", rd.Schema.Cols[0].Type)
	}
}

func TestOperatorPrecedence(t *testing.T) {
	sel, err := ParseSelection(`[<e.a> OF EACH e IN r: e.a = 1 OR e.a = 2 AND e.b = 3]`)
	if err != nil {
		t.Fatal(err)
	}
	or, ok := sel.Pred.(*calculus.Or)
	if !ok || len(or.Fs) != 2 {
		t.Fatalf("top level = %T %s", sel.Pred, sel.Pred)
	}
	if _, ok := or.Fs[1].(*calculus.And); !ok {
		t.Errorf("AND does not bind tighter than OR: %s", sel.Pred)
	}
	// NOT binds tighter than AND.
	sel, err = ParseSelection(`[<e.a> OF EACH e IN r: NOT e.a = 1 AND e.b = 2]`)
	if err != nil {
		t.Fatal(err)
	}
	and, ok := sel.Pred.(*calculus.And)
	if !ok {
		t.Fatalf("top level = %T", sel.Pred)
	}
	if _, ok := and.Fs[0].(*calculus.Not); !ok {
		t.Errorf("NOT does not bind tighter than AND: %s", sel.Pred)
	}
}
