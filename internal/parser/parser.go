package parser

import (
	"fmt"

	"pascalr/internal/calculus"
	"pascalr/internal/schema"
	"pascalr/internal/value"
)

// Program is a parsed PASCAL/R script: type declarations, relation
// declarations, and statements, in source order.
type Program struct {
	Items []Item
}

// Item is one program element.
type Item interface{ isItem() }

// TypeDecl declares a named component type.
type TypeDecl struct {
	Name string
	Type *schema.Type
}

// RelDecl declares a relation variable.
type RelDecl struct {
	Schema *schema.RelSchema
}

// StmtOp distinguishes the relation operators.
type StmtOp uint8

// The statement operators.
const (
	OpAssign StmtOp = iota // :=
	OpInsert               // :+
	OpDelete               // :-
)

func (op StmtOp) String() string {
	switch op {
	case OpAssign:
		return ":="
	case OpInsert:
		return ":+"
	default:
		return ":-"
	}
}

// Stmt is `target := selection;`, `target :+ tuples;`, or
// `target :- tuples;`. Exactly one of Sel and Tuples is set (insert
// accepts either).
type Stmt struct {
	Op     StmtOp
	Target string
	Sel    *calculus.Selection
	Tuples [][]Literal
	Line   int
}

func (TypeDecl) isItem() {}
func (RelDecl) isItem()  {}
func (Stmt) isItem()     {}

// Literal is an unresolved tuple-component literal; ResolveTuple types
// it against a relation schema.
type Literal struct {
	Kind  value.Kind // KindInt, KindString, KindBool; KindInvalid for labels
	I     int64
	S     string
	Label string
}

// parser walks the token stream.
type parser struct {
	toks           []token
	pos            int
	types          map[string]*schema.Type // named types declared in this program
	lookupFallback lookupFn                // catalog lookup for older declarations
}

type lookupFn func(string) (*schema.Type, bool)

// Parse parses a full program. Named types referenced by declarations
// are resolved against earlier declarations in the same program and the
// supplied catalog (which may be nil).
func Parse(src string, cat *schema.Catalog) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, types: map[string]*schema.Type{}}
	if cat != nil {
		p.lookupFallback = func(name string) (*schema.Type, bool) { return cat.Type(name) }
	}
	prog := &Program{}
	for !p.atEOF() {
		switch {
		case p.peekIdent("type"):
			p.next()
			for {
				decl, err := p.parseTypeDecl()
				if err != nil {
					return nil, err
				}
				prog.Items = append(prog.Items, decl)
				if !p.peekTypeDeclStart() {
					break
				}
			}
		case p.peekIdent("var"):
			p.next()
			for {
				decl, err := p.parseRelDecl()
				if err != nil {
					return nil, err
				}
				prog.Items = append(prog.Items, decl)
				if !p.peekRelDeclStart() {
					break
				}
			}
		default:
			stmt, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			prog.Items = append(prog.Items, stmt)
		}
	}
	return prog, nil
}

// ParseSelection parses a single selection expression
// [<fields> OF EACH v IN range, ...: wff].
func ParseSelection(src string) (*calculus.Selection, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, types: map[string]*schema.Type{}}
	sel, err := p.parseSelection()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errf("trailing input after selection")
	}
	return sel, nil
}

func (p *parser) lookupType(name string) (*schema.Type, bool) {
	if t, ok := p.types[name]; ok {
		return t, true
	}
	if p.lookupFallback != nil {
		return p.lookupFallback(name)
	}
	return nil, false
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("parser: line %d: %s", p.cur().line, fmt.Sprintf(format, args...))
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) atEOF() bool { return p.cur().kind == tokEOF }
func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) peekSym(s string) bool {
	t := p.cur()
	return t.kind == tokSym && t.text == s
}

func (p *parser) peekIdent(id string) bool {
	t := p.cur()
	return t.kind == tokIdent && t.text == id
}

func (p *parser) expectSym(s string) error {
	if !p.peekSym(s) {
		return p.errf("expected %q, found %q", s, p.cur().text)
	}
	p.next()
	return nil
}

func (p *parser) expectIdentKw(id string) error {
	if !p.peekIdent(id) {
		return p.errf("expected %s, found %q", id, p.cur().text)
	}
	p.next()
	return nil
}

func (p *parser) expectName() (string, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return "", p.errf("expected identifier, found %q", t.text)
	}
	if keywords[t.text] {
		return "", p.errf("reserved word %q used as identifier", t.text)
	}
	p.next()
	return t.text, nil
}

var keywords = map[string]bool{
	"type": true, "var": true, "relation": true, "of": true, "record": true,
	"end": true, "each": true, "in": true, "some": true, "all": true,
	"and": true, "or": true, "not": true, "true": true, "false": true,
	"packed": true, "array": true, "char": true, "boolean": true,
}

// peekTypeDeclStart reports whether the stream continues with another
// `name = typeexpr ;` inside a TYPE section.
func (p *parser) peekTypeDeclStart() bool {
	t := p.cur()
	if t.kind != tokIdent || keywords[t.text] {
		return false
	}
	return p.pos+1 < len(p.toks) && p.toks[p.pos+1].kind == tokSym && p.toks[p.pos+1].text == "="
}

// peekRelDeclStart reports whether the stream continues with another
// `name : RELATION ...` inside a VAR section.
func (p *parser) peekRelDeclStart() bool {
	t := p.cur()
	if t.kind != tokIdent || keywords[t.text] {
		return false
	}
	return p.pos+1 < len(p.toks) && p.toks[p.pos+1].kind == tokSym && p.toks[p.pos+1].text == ":"
}

func (p *parser) parseTypeDecl() (TypeDecl, error) {
	name, err := p.expectName()
	if err != nil {
		return TypeDecl{}, err
	}
	if err := p.expectSym("="); err != nil {
		return TypeDecl{}, err
	}
	t, err := p.parseTypeExpr(name)
	if err != nil {
		return TypeDecl{}, err
	}
	if err := p.expectSym(";"); err != nil {
		return TypeDecl{}, err
	}
	p.types[name] = t
	return TypeDecl{Name: name, Type: t}, nil
}

// parseTypeExpr parses enumerations, subranges, packed character
// arrays, BOOLEAN, reference types, and named type references. declName
// names anonymous enumerations.
func (p *parser) parseTypeExpr(declName string) (*schema.Type, error) {
	t := p.cur()
	switch {
	case p.peekSym("("): // enumeration
		p.next()
		var labels []string
		for {
			l, err := p.expectName()
			if err != nil {
				return nil, err
			}
			labels = append(labels, l)
			if p.peekSym(",") {
				p.next()
				continue
			}
			break
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		et, err := schema.EnumType(declName, labels...)
		if err != nil {
			return nil, p.errf("%v", err)
		}
		return et, nil
	case t.kind == tokInt || p.peekSym("-"):
		lo, err := p.parseSignedInt()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym(".."); err != nil {
			return nil, err
		}
		hi, err := p.parseSignedInt()
		if err != nil {
			return nil, err
		}
		if hi < lo {
			return nil, p.errf("empty subrange %d..%d", lo, hi)
		}
		return schema.IntType(declName, lo, hi), nil
	case p.peekIdent("packed"):
		p.next()
		if err := p.expectIdentKw("array"); err != nil {
			return nil, err
		}
		if err := p.expectSym("["); err != nil {
			return nil, err
		}
		lo, err := p.parseSignedInt()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym(".."); err != nil {
			return nil, err
		}
		hi, err := p.parseSignedInt()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym("]"); err != nil {
			return nil, err
		}
		if err := p.expectIdentKw("of"); err != nil {
			return nil, err
		}
		if err := p.expectIdentKw("char"); err != nil {
			return nil, err
		}
		if lo != 1 || hi < 1 {
			return nil, p.errf("packed array bounds must be 1..n")
		}
		return schema.StringType(declName, int(hi)), nil
	case p.peekIdent("boolean"):
		p.next()
		bt := schema.BoolType()
		if declName != "" {
			named := *bt
			named.Name = declName
			return &named, nil
		}
		return bt, nil
	case p.peekSym("@"):
		p.next()
		rel, err := p.expectName()
		if err != nil {
			return nil, err
		}
		return schema.RefType(rel), nil
	case t.kind == tokIdent && !keywords[t.text]:
		p.next()
		named, ok := p.lookupType(t.text)
		if !ok {
			return nil, p.errf("unknown type %s", t.text)
		}
		return named, nil
	default:
		return nil, p.errf("expected type expression, found %q", t.text)
	}
}

func (p *parser) parseSignedInt() (int64, error) {
	neg := false
	if p.peekSym("-") {
		p.next()
		neg = true
	}
	t := p.cur()
	if t.kind != tokInt {
		return 0, p.errf("expected integer, found %q", t.text)
	}
	p.next()
	if neg {
		return -t.ival, nil
	}
	return t.ival, nil
}

// parseRelDecl parses `name : RELATION <k1,k2> OF RECORD f : t; ... END ;`.
func (p *parser) parseRelDecl() (RelDecl, error) {
	name, err := p.expectName()
	if err != nil {
		return RelDecl{}, err
	}
	if err := p.expectSym(":"); err != nil {
		return RelDecl{}, err
	}
	if err := p.expectIdentKw("relation"); err != nil {
		return RelDecl{}, err
	}
	if err := p.expectSym("<"); err != nil {
		return RelDecl{}, err
	}
	var key []string
	for {
		k, err := p.expectName()
		if err != nil {
			return RelDecl{}, err
		}
		key = append(key, k)
		if p.peekSym(",") {
			p.next()
			continue
		}
		break
	}
	if err := p.expectSym(">"); err != nil {
		return RelDecl{}, err
	}
	if err := p.expectIdentKw("of"); err != nil {
		return RelDecl{}, err
	}
	if err := p.expectIdentKw("record"); err != nil {
		return RelDecl{}, err
	}
	var cols []schema.Column
	for {
		cn, err := p.expectName()
		if err != nil {
			return RelDecl{}, err
		}
		if err := p.expectSym(":"); err != nil {
			return RelDecl{}, err
		}
		ct, err := p.parseTypeExpr("")
		if err != nil {
			return RelDecl{}, err
		}
		cols = append(cols, schema.Column{Name: cn, Type: ct})
		if p.peekSym(";") {
			p.next()
			if p.peekIdent("end") {
				break
			}
			continue
		}
		break
	}
	if err := p.expectIdentKw("end"); err != nil {
		return RelDecl{}, err
	}
	if err := p.expectSym(";"); err != nil {
		return RelDecl{}, err
	}
	rs, err := schema.NewRelSchema(name, cols, key)
	if err != nil {
		return RelDecl{}, p.errf("%v", err)
	}
	return RelDecl{Schema: rs}, nil
}

// parseStmt parses `target := selection ;` or `target :+/:- tuples ;`.
func (p *parser) parseStmt() (Stmt, error) {
	line := p.cur().line
	target, err := p.expectName()
	if err != nil {
		return Stmt{}, err
	}
	var op StmtOp
	switch {
	case p.peekSym(":="):
		op = OpAssign
	case p.peekSym(":+"):
		op = OpInsert
	case p.peekSym(":-"):
		op = OpDelete
	default:
		return Stmt{}, p.errf("expected :=, :+ or :- after %s", target)
	}
	p.next()
	st := Stmt{Op: op, Target: target, Line: line}
	// A selection starts with [< ; a tuple list with [< too — they are
	// distinguished by what follows: a selection has `ident . ident` or
	// the OF keyword after the field list, a tuple literal has literal
	// values. We look ahead for `OF` at the matching `>`.
	if p.looksLikeSelection() {
		sel, err := p.parseSelection()
		if err != nil {
			return Stmt{}, err
		}
		st.Sel = sel
	} else {
		tuples, err := p.parseTupleList()
		if err != nil {
			return Stmt{}, err
		}
		st.Tuples = tuples
	}
	if err := p.expectSym(";"); err != nil {
		return Stmt{}, err
	}
	if st.Op == OpAssign && st.Sel == nil {
		return Stmt{}, p.errf(":= requires a selection")
	}
	if st.Op == OpDelete && st.Sel != nil {
		return Stmt{}, p.errf(":- requires a tuple list")
	}
	return st, nil
}

// looksLikeSelection distinguishes `[<e.ename> OF ...` from a tuple list
// `[<1, 'x', professor>]` by scanning ahead for the OF keyword right
// after the closing `>` of the first bracketed group.
func (p *parser) looksLikeSelection() bool {
	i := p.pos
	if !(p.toks[i].kind == tokSym && p.toks[i].text == "[") {
		return false
	}
	i++
	if !(p.toks[i].kind == tokSym && p.toks[i].text == "<") {
		return false
	}
	depth := 1
	for ; p.toks[i].kind != tokEOF; i++ {
		t := p.toks[i]
		if t.kind == tokSym && t.text == "<" {
			continue
		}
		if t.kind == tokSym && t.text == ">" {
			depth--
			if depth == 0 {
				return p.toks[i+1].kind == tokIdent && p.toks[i+1].text == "of"
			}
		}
	}
	return false
}

// parseTupleList parses `[ <lit, lit, ...>, <...> ]`.
func (p *parser) parseTupleList() ([][]Literal, error) {
	if err := p.expectSym("["); err != nil {
		return nil, err
	}
	var tuples [][]Literal
	for {
		if err := p.expectSym("<"); err != nil {
			return nil, err
		}
		var tup []Literal
		for {
			lit, err := p.parseLiteral()
			if err != nil {
				return nil, err
			}
			tup = append(tup, lit)
			if p.peekSym(",") {
				p.next()
				continue
			}
			break
		}
		if err := p.expectSym(">"); err != nil {
			return nil, err
		}
		tuples = append(tuples, tup)
		if p.peekSym(",") {
			p.next()
			continue
		}
		break
	}
	if err := p.expectSym("]"); err != nil {
		return nil, err
	}
	return tuples, nil
}

func (p *parser) parseLiteral() (Literal, error) {
	t := p.cur()
	switch {
	case t.kind == tokInt:
		p.next()
		return Literal{Kind: value.KindInt, I: t.ival}, nil
	case p.peekSym("-"):
		n, err := p.parseSignedInt()
		if err != nil {
			return Literal{}, err
		}
		return Literal{Kind: value.KindInt, I: n}, nil
	case t.kind == tokString:
		p.next()
		return Literal{Kind: value.KindString, S: t.text}, nil
	case p.peekIdent("true"), p.peekIdent("false"):
		p.next()
		return Literal{Kind: value.KindBool, I: boolToInt(t.text == "true")}, nil
	case t.kind == tokIdent && !keywords[t.text]:
		p.next()
		return Literal{Label: t.text}, nil
	default:
		return Literal{}, p.errf("expected literal, found %q", t.text)
	}
}

func boolToInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// ResolveTuple types a literal tuple against a relation schema,
// resolving enumeration labels through the column types.
func ResolveTuple(tup []Literal, sch *schema.RelSchema) ([]value.Value, error) {
	if len(tup) != len(sch.Cols) {
		return nil, fmt.Errorf("parser: tuple has %d components, relation %s wants %d",
			len(tup), sch.Name, len(sch.Cols))
	}
	out := make([]value.Value, len(tup))
	for i, lit := range tup {
		col := sch.Cols[i]
		switch {
		case lit.Label != "":
			if col.Type.Kind != schema.TEnum {
				return nil, fmt.Errorf("parser: label %s supplied for non-enumeration component %s", lit.Label, col.Name)
			}
			ord, ok := col.Type.Ordinal(lit.Label)
			if !ok {
				return nil, fmt.Errorf("parser: %s is not a label of %s", lit.Label, col.Type.Name)
			}
			out[i] = value.Enum(col.Type.Name, ord)
		case lit.Kind == value.KindInt:
			out[i] = value.Int(lit.I)
		case lit.Kind == value.KindString:
			out[i] = value.String_(lit.S)
		case lit.Kind == value.KindBool:
			out[i] = value.Bool(lit.I != 0)
		default:
			return nil, fmt.Errorf("parser: invalid literal for component %s", col.Name)
		}
		if err := col.Type.Check(out[i]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// KeyTuple types a literal tuple against a relation's key components
// (for the :- operator).
func KeyTuple(tup []Literal, sch *schema.RelSchema) ([]value.Value, error) {
	if len(tup) != len(sch.Key) {
		return nil, fmt.Errorf("parser: key tuple has %d components, relation %s key wants %d",
			len(tup), sch.Name, len(sch.Key))
	}
	out := make([]value.Value, len(tup))
	for i, lit := range tup {
		col, _ := sch.Col(sch.Key[i])
		switch {
		case lit.Label != "":
			if col.Type.Kind != schema.TEnum {
				return nil, fmt.Errorf("parser: label %s supplied for non-enumeration key %s", lit.Label, col.Name)
			}
			ord, ok := col.Type.Ordinal(lit.Label)
			if !ok {
				return nil, fmt.Errorf("parser: %s is not a label of %s", lit.Label, col.Type.Name)
			}
			out[i] = value.Enum(col.Type.Name, ord)
		case lit.Kind == value.KindInt:
			out[i] = value.Int(lit.I)
		case lit.Kind == value.KindString:
			out[i] = value.String_(lit.S)
		case lit.Kind == value.KindBool:
			out[i] = value.Bool(lit.I != 0)
		default:
			return nil, fmt.Errorf("parser: invalid key literal for %s", col.Name)
		}
	}
	return out, nil
}
