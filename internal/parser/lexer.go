// Package parser implements the concrete PASCAL/R syntax used by the
// paper: TYPE and VAR sections declaring enumerations, subranges, packed
// character arrays and RELATION variables, and statements built from
// selections ([<e.ename> OF EACH e IN employees: wff]) with the
// assignment (:=), insert (:+), and delete (:-) operators.
package parser

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokString
	tokSym // single or multi character symbol, in text
)

type token struct {
	kind tokKind
	text string // identifier (lower-cased), symbol, or string body
	ival int64
	pos  int // byte offset, for error messages
	line int
}

type lexer struct {
	src    string
	off    int
	line   int
	tokens []token
}

// lex tokenizes the whole input up front. PASCAL identifiers and
// keywords are case-insensitive and are lower-cased here; string
// literals are single-quoted with ” as the escaped quote. Comments use
// the PASCAL (* ... *) and { ... } forms.
func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1}
	for {
		l.skipSpace()
		if l.off >= len(l.src) {
			l.emit(token{kind: tokEOF, pos: l.off, line: l.line})
			return l.tokens, nil
		}
		c := l.src[l.off]
		switch {
		case isIdentStart(rune(c)):
			l.lexIdent()
		case c >= '0' && c <= '9':
			if err := l.lexInt(); err != nil {
				return nil, err
			}
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		default:
			if err := l.lexSym(); err != nil {
				return nil, err
			}
		}
	}
}

func (l *lexer) emit(t token) { l.tokens = append(l.tokens, t) }

func (l *lexer) skipSpace() {
	for l.off < len(l.src) {
		c := l.src[l.off]
		switch {
		case c == '\n':
			l.line++
			l.off++
		case c == ' ' || c == '\t' || c == '\r':
			l.off++
		case c == '{':
			end := strings.IndexByte(l.src[l.off:], '}')
			if end < 0 {
				l.off = len(l.src)
				return
			}
			l.line += strings.Count(l.src[l.off:l.off+end], "\n")
			l.off += end + 1
		case c == '(' && l.off+1 < len(l.src) && l.src[l.off+1] == '*':
			end := strings.Index(l.src[l.off+2:], "*)")
			if end < 0 {
				l.off = len(l.src)
				return
			}
			l.line += strings.Count(l.src[l.off:l.off+2+end+2], "\n")
			l.off += 2 + end + 2
		default:
			return
		}
	}
}

func isIdentStart(c rune) bool {
	return unicode.IsLetter(c) || c == '_'
}

func (l *lexer) lexIdent() {
	start := l.off
	for l.off < len(l.src) {
		c := rune(l.src[l.off])
		if !isIdentStart(c) && !unicode.IsDigit(c) {
			break
		}
		l.off++
	}
	l.emit(token{kind: tokIdent, text: strings.ToLower(l.src[start:l.off]), pos: start, line: l.line})
}

func (l *lexer) lexInt() error {
	start := l.off
	for l.off < len(l.src) && l.src[l.off] >= '0' && l.src[l.off] <= '9' {
		// Stop before ".." so subranges like 1..99 lex as INT DOTDOT INT.
		l.off++
	}
	var n int64
	if _, err := fmt.Sscanf(l.src[start:l.off], "%d", &n); err != nil {
		return fmt.Errorf("parser: line %d: bad integer literal %q", l.line, l.src[start:l.off])
	}
	l.emit(token{kind: tokInt, ival: n, text: l.src[start:l.off], pos: start, line: l.line})
	return nil
}

func (l *lexer) lexString() error {
	start := l.off
	l.off++ // opening quote
	var b strings.Builder
	for {
		if l.off >= len(l.src) {
			return fmt.Errorf("parser: line %d: unterminated string literal", l.line)
		}
		c := l.src[l.off]
		if c == '\n' {
			return fmt.Errorf("parser: line %d: newline in string literal", l.line)
		}
		if c == '\'' {
			if l.off+1 < len(l.src) && l.src[l.off+1] == '\'' {
				b.WriteByte('\'')
				l.off += 2
				continue
			}
			l.off++
			break
		}
		b.WriteByte(c)
		l.off++
	}
	l.emit(token{kind: tokString, text: b.String(), pos: start, line: l.line})
	return nil
}

// multi-character symbols, longest first.
var symbols = []string{
	":=", ":+", ":-", "<=", ">=", "<>", "..",
	"(", ")", "[", "]", "<", ">", ",", ";", ":", ".", "=", "@",
}

func (l *lexer) lexSym() error {
	rest := l.src[l.off:]
	for _, s := range symbols {
		if strings.HasPrefix(rest, s) {
			l.emit(token{kind: tokSym, text: s, pos: l.off, line: l.line})
			l.off += len(s)
			return nil
		}
	}
	return fmt.Errorf("parser: line %d: unexpected character %q", l.line, rest[0])
}
