package workload

import (
	"fmt"
	"math/rand"

	"pascalr/internal/calculus"
	"pascalr/internal/relation"
	"pascalr/internal/schema"
	"pascalr/internal/value"
)

// SkewedJoinConfig sizes the heavy-hitter join workload.
type SkewedJoinConfig struct {
	Facts   int     // cardinality of facts
	Dims    int     // cardinality of dims
	HotFrac float64 // fraction of facts with hot = 0 (the heavy hitter)
	Seed    int64
}

// DefaultSkewedJoinConfig returns the standard shape: facts 2.5× dims,
// 90% of facts carrying the heavy-hitter value.
func DefaultSkewedJoinConfig(n int) SkewedJoinConfig {
	return SkewedJoinConfig{Facts: n, Dims: 2 * n / 5, HotFrac: 0.9, Seed: 11}
}

// SkewedJoin builds the workload the uniform estimator misplans: facts
// with a heavy-hitter filter column ("hot", HotFrac of the rows share
// value 0 but ten values exist, so the uniformity assumption predicts
// 1/10 where the truth is ~9/10) joined to dims under a moderately
// selective dims filter. The uniform plan believes the filtered facts
// side is small and probes with it — issuing one index probe per
// surviving fact tuple — while the histogram plan knows better and
// probes with the genuinely smaller dims side. The "val" join column
// carries more distinct values than the frequency-table bound, so its
// statistics exercise the equi-depth bucket path.
func SkewedJoin(cfg SkewedJoinConfig) (*relation.DB, error) {
	db := relation.NewDB()
	// The key domain leaves ample headroom above the populated range so
	// benchmarks can keep inserting fresh keys for millions of
	// iterations (BenchmarkHistogramPlanning/mutate-replan starts at
	// 1<<19).
	keyt := schema.IntType("skeyt", 0, 1<<40)
	hott := schema.IntType("shott", 0, 9)
	valt := schema.IntType("svalt", 0, 1<<20)
	facts := db.MustCreate(schema.MustRelSchema("facts", []schema.Column{
		{Name: "k", Type: keyt},
		{Name: "hot", Type: hott},
		{Name: "v", Type: valt},
	}, []string{"k"}))
	dims := db.MustCreate(schema.MustRelSchema("dims", []schema.Column{
		{Name: "k", Type: keyt},
		{Name: "b", Type: hott},
		{Name: "v", Type: valt},
	}, []string{"k"}))
	rng := rand.New(rand.NewSource(cfg.Seed))
	for i := 0; i < cfg.Facts; i++ {
		hot := int64(0)
		if rng.Float64() >= cfg.HotFrac {
			hot = int64(1 + rng.Intn(9))
		}
		// More distinct join values than MaxExactValues, so the column's
		// statistics live in equi-depth buckets.
		v := int64(i % 509)
		if _, err := facts.Insert([]value.Value{value.Int(int64(i)), value.Int(hot), value.Int(v)}); err != nil {
			return nil, err
		}
	}
	for i := 0; i < cfg.Dims; i++ {
		if _, err := dims.Insert([]value.Value{
			value.Int(int64(i)), value.Int(int64(i % 10)), value.Int(int64(i % 509)),
		}); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// MustSkewedJoin is SkewedJoin that panics on error.
func MustSkewedJoin(cfg SkewedJoinConfig) *relation.DB {
	db, err := SkewedJoin(cfg)
	if err != nil {
		panic(fmt.Sprintf("workload: %v", err))
	}
	return db
}

// SkewedJoinSelection is the query over SkewedJoin's schema whose plan
// quality separates the estimators: the heavy-hitter filter keeps ~90%
// of facts (uniform model: 10%), the dims filter keeps ~40% of dims, so
// the histogram plan probes with the small dims side while the uniform
// plan probes with the large filtered facts side.
func SkewedJoinSelection() *calculus.Selection {
	return &calculus.Selection{
		Proj: []calculus.Field{{Var: "f", Col: "k"}, {Var: "d", Col: "k"}},
		Free: []calculus.Decl{
			{Var: "f", Range: &calculus.RangeExpr{Rel: "facts"}},
			{Var: "d", Range: &calculus.RangeExpr{Rel: "dims"}},
		},
		Pred: calculus.NewAnd(
			&calculus.Cmp{L: calculus.Field{Var: "f", Col: "hot"}, Op: value.OpEq, R: calculus.Const{Val: value.Int(0)}},
			&calculus.Cmp{L: calculus.Field{Var: "d", Col: "b"}, Op: value.OpLe, R: calculus.Const{Val: value.Int(3)}},
			&calculus.Cmp{L: calculus.Field{Var: "f", Col: "v"}, Op: value.OpEq, R: calculus.Field{Var: "d", Col: "v"}},
		),
	}
}
