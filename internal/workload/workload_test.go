package workload

import (
	"math/rand"
	"testing"

	"pascalr/internal/baseline"
	"pascalr/internal/calculus"
	"pascalr/internal/value"
)

func TestUniversityCardinalities(t *testing.T) {
	cfg := DefaultConfig(30)
	db := MustUniversity(cfg)
	for rel, want := range map[string]int{
		"employees": cfg.Employees,
		"papers":    cfg.Papers,
		"courses":   cfg.Courses,
		"timetable": cfg.Timetable,
	} {
		r := db.MustRelation(rel)
		if r.Len() != want {
			t.Errorf("%s has %d rows, want %d", rel, r.Len(), want)
		}
	}
}

func TestUniversityDeterministic(t *testing.T) {
	a := MustUniversity(DefaultConfig(20))
	b := MustUniversity(DefaultConfig(20))
	for _, rel := range []string{"employees", "papers", "courses", "timetable"} {
		at := a.MustRelation(rel).Tuples()
		bt := b.MustRelation(rel).Tuples()
		if len(at) != len(bt) {
			t.Fatalf("%s: %d vs %d rows", rel, len(at), len(bt))
		}
		for i := range at {
			for j := range at[i] {
				if at[i][j] != bt[i][j] {
					t.Fatalf("%s row %d differs", rel, i)
				}
			}
		}
	}
}

func TestUniversitySelectivities(t *testing.T) {
	cfg := DefaultConfig(400)
	db := MustUniversity(cfg)
	profs, y77, soph := 0, 0, 0
	db.MustRelation("employees").Scan(func(_ value.Value, tup []value.Value) bool {
		if tup[2].EnumOrd() == StatusProfessor {
			profs++
		}
		return true
	})
	db.MustRelation("papers").Scan(func(_ value.Value, tup []value.Value) bool {
		if tup[1].AsInt() == 1977 {
			y77++
		}
		return true
	})
	db.MustRelation("courses").Scan(func(_ value.Value, tup []value.Value) bool {
		if tup[1].EnumOrd() <= LevelSophomore {
			soph++
		}
		return true
	})
	within := func(got int, total int, frac float64) bool {
		f := float64(got) / float64(total)
		return f > frac-0.12 && f < frac+0.12
	}
	if !within(profs, cfg.Employees, cfg.ProfFrac) {
		t.Errorf("professor fraction %d/%d far from %.2f", profs, cfg.Employees, cfg.ProfFrac)
	}
	if !within(y77, cfg.Papers, cfg.Year77Frac) {
		t.Errorf("1977 fraction %d/%d far from %.2f", y77, cfg.Papers, cfg.Year77Frac)
	}
	if !within(soph, cfg.Courses, cfg.SophFrac) {
		t.Errorf("sophomore fraction %d/%d far from %.2f", soph, cfg.Courses, cfg.SophFrac)
	}
}

func TestUniversityScaleBeyondSubrange(t *testing.T) {
	// More than 99 employees must widen enumbertype instead of failing.
	cfg := DefaultConfig(150)
	db := MustUniversity(cfg)
	if db.MustRelation("employees").Len() != 150 {
		t.Errorf("failed to scale past 99 employees")
	}
}

func TestSampleSelectionChecks(t *testing.T) {
	db := MustUniversity(DefaultConfig(10))
	for _, sel := range []*calculus.Selection{SampleSelection(), SubexprSelection(), ProfessorsSelection()} {
		if _, _, err := calculus.Check(sel, db.Catalog()); err != nil {
			t.Errorf("%s: %v", sel, err)
		}
	}
}

func TestRandomSelectionsCheckAndEvaluate(t *testing.T) {
	for seed := int64(0); seed < 150; seed++ {
		rng := rand.New(rand.NewSource(seed))
		db := RandomDB(rng, 6)
		sel := RandomSelection(rng)
		checked, info, err := calculus.Check(sel, db.Catalog())
		if err != nil {
			t.Fatalf("seed %d: generated selection does not check: %v\n%s", seed, err, sel)
		}
		if _, err := baseline.Eval(checked, info, db); err != nil {
			t.Fatalf("seed %d: baseline evaluation failed: %v\n%s", seed, err, sel)
		}
	}
}

func TestRandomDBAllowsEmptyRelations(t *testing.T) {
	sawEmpty := false
	for seed := int64(0); seed < 50 && !sawEmpty; seed++ {
		rng := rand.New(rand.NewSource(seed))
		db := RandomDB(rng, 3)
		for i := 0; i < 3; i++ {
			if db.MustRelation("r"+string(rune('0'+i))).Len() == 0 {
				sawEmpty = true
			}
		}
	}
	if !sawEmpty {
		t.Errorf("random databases never produce empty relations; Lemma 1 cases untested")
	}
}
