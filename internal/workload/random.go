package workload

import (
	"fmt"
	"math/rand"

	"pascalr/internal/calculus"
	"pascalr/internal/relation"
	"pascalr/internal/schema"
	"pascalr/internal/value"
)

// Random databases and selections for differential testing: the
// phase-structured engine under every strategy subset must agree with
// the tuple-substitution baseline on whatever these generate, including
// empty relations (the Lemma 1 cases).

// RandomDB builds a database with three small integer relations r0, r1,
// r2, each with key column a and payload column b over the tiny domain
// 0..7 (to force plenty of join matches). Relations may be empty.
func RandomDB(rng *rand.Rand, maxRows int) *relation.DB {
	db := relation.NewDB()
	dom := schema.IntType("dom", 0, 7)
	keyt := schema.IntType("keyt", 0, 1023)
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("r%d", i)
		rs := schema.MustRelSchema(name, []schema.Column{
			{Name: "a", Type: keyt},
			{Name: "b", Type: dom},
		}, []string{"a"})
		rel := db.MustCreate(rs)
		n := rng.Intn(maxRows + 1)
		for j := 0; j < n; j++ {
			// Key drawn from a small space so sizes vary; collisions are
			// silently tolerated (identical tuple => no-op, different =>
			// retry with payload change is unnecessary, just skip).
			k := int64(rng.Intn(4 * (maxRows + 1)))
			tup := []value.Value{value.Int(k), value.Int(int64(rng.Intn(8)))}
			if _, err := rel.Insert(tup); err != nil {
				continue
			}
		}
	}
	return db
}

// randSelCfg bounds the shape of random selections.
type randSelCfg struct {
	maxQuants int
	maxDepth  int
}

// RandomSelection generates a type-correct selection over a RandomDB:
// one or two free variables, up to three quantifiers placed anywhere in
// the formula tree, random comparison operators, and occasional extended
// ranges. All variable names are unique, as calculus.Check requires.
func RandomSelection(rng *rand.Rand) *calculus.Selection {
	g := &randGen{rng: rng, cfg: randSelCfg{maxQuants: 3, maxDepth: 4}}
	nFree := 1 + rng.Intn(2)
	sel := &calculus.Selection{}
	var visible []string
	for i := 0; i < nFree; i++ {
		v := fmt.Sprintf("f%d", i)
		sel.Free = append(sel.Free, calculus.Decl{Var: v, Range: g.randRange(v)})
		visible = append(visible, v)
		sel.Proj = append(sel.Proj, calculus.Field{Var: v, Col: "a"})
	}
	sel.Pred = g.formula(visible, g.cfg.maxDepth)
	return sel
}

type randGen struct {
	rng     *rand.Rand
	cfg     randSelCfg
	nQuants int
	nVars   int
}

func (g *randGen) randRel() string {
	return fmt.Sprintf("r%d", g.rng.Intn(3))
}

// randRange builds a range over a random relation; one in four ranges is
// extended with a monadic filter over the given variable name.
func (g *randGen) randRange(v string) *calculus.RangeExpr {
	r := &calculus.RangeExpr{Rel: g.randRel()}
	if g.rng.Intn(4) == 0 {
		r.FilterVar = v
		r.Filter = &calculus.Cmp{
			L:  calculus.Field{Var: v, Col: g.randCol()},
			Op: g.randOp(),
			R:  calculus.Const{Val: value.Int(int64(g.rng.Intn(8)))},
		}
	}
	return r
}

func (g *randGen) randCol() string {
	if g.rng.Intn(2) == 0 {
		return "a"
	}
	return "b"
}

func (g *randGen) randOp() value.CmpOp {
	return value.AllOps[g.rng.Intn(len(value.AllOps))]
}

func (g *randGen) formula(visible []string, depth int) calculus.Formula {
	if depth == 0 {
		return g.atom(visible)
	}
	switch g.rng.Intn(10) {
	case 0, 1, 2:
		return g.atom(visible)
	case 3, 4:
		n := 2 + g.rng.Intn(2)
		fs := make([]calculus.Formula, n)
		for i := range fs {
			fs[i] = g.formula(visible, depth-1)
		}
		return &calculus.And{Fs: fs}
	case 5, 6:
		n := 2 + g.rng.Intn(2)
		fs := make([]calculus.Formula, n)
		for i := range fs {
			fs[i] = g.formula(visible, depth-1)
		}
		return &calculus.Or{Fs: fs}
	case 7:
		return &calculus.Not{F: g.formula(visible, depth-1)}
	default:
		if g.nQuants >= g.cfg.maxQuants {
			return g.atom(visible)
		}
		g.nQuants++
		g.nVars++
		v := fmt.Sprintf("q%d", g.nVars)
		inner := append(append([]string(nil), visible...), v)
		return &calculus.Quant{
			All:   g.rng.Intn(2) == 0,
			Var:   v,
			Range: g.randRange(v),
			Body:  g.formula(inner, depth-1),
		}
	}
}

// atom builds a random comparison over the visible variables. Roughly a
// third are monadic against a constant, a third compare two fields, and
// the rest mix in constant-constant terms and same-variable field pairs.
func (g *randGen) atom(visible []string) calculus.Formula {
	v1 := visible[g.rng.Intn(len(visible))]
	switch g.rng.Intn(6) {
	case 0, 1:
		return &calculus.Cmp{
			L:  calculus.Field{Var: v1, Col: g.randCol()},
			Op: g.randOp(),
			R:  calculus.Const{Val: value.Int(int64(g.rng.Intn(8)))},
		}
	case 2, 3:
		v2 := visible[g.rng.Intn(len(visible))]
		return &calculus.Cmp{
			L:  calculus.Field{Var: v1, Col: g.randCol()},
			Op: g.randOp(),
			R:  calculus.Field{Var: v2, Col: g.randCol()},
		}
	case 4:
		return &calculus.Cmp{
			L:  calculus.Field{Var: v1, Col: "a"},
			Op: g.randOp(),
			R:  calculus.Field{Var: v1, Col: "b"},
		}
	default:
		return &calculus.Cmp{
			L:  calculus.Const{Val: value.Int(int64(g.rng.Intn(8)))},
			Op: g.randOp(),
			R:  calculus.Const{Val: value.Int(int64(g.rng.Intn(8)))},
		}
	}
}
