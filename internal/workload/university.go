// Package workload builds the paper's sample database (Figure 1: a
// computer science department with employees, papers, courses, and a
// timetable) at configurable scale, constructs the paper's example
// queries, and generates random databases and selections for
// differential testing.
//
// The authors' actual data is not available (the system ran in Hamburg
// in 1978); the generator substitutes synthetic data with the exact
// Figure 1 schema and tunable cardinalities and selectivities, which is
// what the paper's cost arguments depend on.
package workload

import (
	"fmt"
	"math/rand"

	"pascalr/internal/calculus"
	"pascalr/internal/relation"
	"pascalr/internal/schema"
	"pascalr/internal/value"
)

// Config controls the size and selectivities of the generated university
// database.
type Config struct {
	Employees int // cardinality of employees
	Papers    int // cardinality of papers
	Courses   int // cardinality of courses
	Timetable int // cardinality of timetable

	ProfFrac   float64 // fraction of employees with estatus = professor
	Year77Frac float64 // fraction of papers with pyear = 1977
	SophFrac   float64 // fraction of courses with clevel <= sophomore

	Seed int64
}

// DefaultConfig returns a configuration proportional to scale n:
// n employees, 2n papers, n/2+1 courses, and 2n timetable entries, with
// the selectivities the paper's examples suggest.
func DefaultConfig(n int) Config {
	return Config{
		Employees:  n,
		Papers:     2 * n,
		Courses:    n/2 + 1,
		Timetable:  2 * n,
		ProfFrac:   0.3,
		Year77Frac: 0.3,
		SophFrac:   0.4,
		Seed:       42,
	}
}

// Status ordinals of statustype, in declaration order.
const (
	StatusStudent = iota
	StatusTechnician
	StatusAssistant
	StatusProfessor
)

// Level ordinals of leveltype, in declaration order.
const (
	LevelFreshman = iota
	LevelSophomore
	LevelJunior
	LevelSenior
)

// DefineSchema declares the Figure 1 types and relations in db's
// catalog. Subranges widen automatically when the configured
// cardinalities exceed the paper's 1..99 bounds.
func DefineSchema(db *relation.DB, cfg Config) error {
	cat := db.Catalog()
	status, err := schema.EnumType("statustype", "student", "technician", "assistant", "professor")
	if err != nil {
		return err
	}
	level, err := schema.EnumType("leveltype", "freshman", "sophomore", "junior", "senior")
	if err != nil {
		return err
	}
	day, err := schema.EnumType("daytype", "monday", "tuesday", "wednesday", "thursday", "friday")
	if err != nil {
		return err
	}
	maxENr := int64(99)
	if int64(cfg.Employees) > maxENr {
		maxENr = int64(cfg.Employees)
	}
	maxCNr := int64(99)
	if int64(cfg.Courses) > maxCNr {
		maxCNr = int64(cfg.Courses)
	}
	enumber := schema.IntType("enumbertype", 1, maxENr)
	cnumber := schema.IntType("cnumbertype", 1, maxCNr)
	year := schema.IntType("yeartype", 1900, 1999)
	timet := schema.IntType("timetype", 8000900, 18002000)
	name := schema.StringType("nametype", 10)
	title := schema.StringType("titletype", 40)
	room := schema.StringType("roomtype", 5)
	for _, t := range []*schema.Type{status, level, day, enumber, cnumber, year, timet, name, title, room} {
		if err := cat.DefineType(t); err != nil {
			return err
		}
	}

	rels := []*schema.RelSchema{
		schema.MustRelSchema("employees", []schema.Column{
			{Name: "enr", Type: enumber},
			{Name: "ename", Type: name},
			{Name: "estatus", Type: status},
		}, []string{"enr"}),
		schema.MustRelSchema("papers", []schema.Column{
			{Name: "penr", Type: enumber},
			{Name: "pyear", Type: year},
			{Name: "ptitle", Type: title},
		}, []string{"ptitle", "penr"}),
		schema.MustRelSchema("courses", []schema.Column{
			{Name: "cnr", Type: cnumber},
			{Name: "clevel", Type: level},
			{Name: "ctitle", Type: title},
		}, []string{"cnr"}),
		schema.MustRelSchema("timetable", []schema.Column{
			{Name: "tenr", Type: enumber},
			{Name: "tcnr", Type: cnumber},
			{Name: "tday", Type: day},
			{Name: "ttime", Type: timet},
			{Name: "troom", Type: room},
		}, []string{"tenr", "tcnr", "tday"}),
	}
	for _, rs := range rels {
		if _, err := db.Create(rs); err != nil {
			return err
		}
	}
	return nil
}

// University builds a populated Figure 1 database.
func University(cfg Config) (*relation.DB, error) {
	db := relation.NewDB()
	if err := DefineSchema(db, cfg); err != nil {
		return nil, err
	}
	if err := Populate(db, cfg); err != nil {
		return nil, err
	}
	return db, nil
}

// MustUniversity is University that panics on error, for tests and
// benchmarks.
func MustUniversity(cfg Config) *relation.DB {
	db, err := University(cfg)
	if err != nil {
		panic(err)
	}
	return db
}

// Populate fills a database whose schema was defined by DefineSchema.
func Populate(db *relation.DB, cfg Config) error {
	rng := rand.New(rand.NewSource(cfg.Seed))

	employees := db.MustRelation("employees")
	for i := 1; i <= cfg.Employees; i++ {
		status := StatusStudent + rng.Intn(3) // student..assistant
		if rng.Float64() < cfg.ProfFrac {
			status = StatusProfessor
		}
		_, err := employees.Insert([]value.Value{
			value.Int(int64(i)),
			value.String_(fmt.Sprintf("emp%06d", i)),
			value.Enum("statustype", status),
		})
		if err != nil {
			return err
		}
	}

	papers := db.MustRelation("papers")
	for i := 1; i <= cfg.Papers; i++ {
		yr := int64(1960 + rng.Intn(40))
		if rng.Float64() < cfg.Year77Frac {
			yr = 1977
		} else if yr == 1977 {
			yr = 1976
		}
		penr := int64(1 + rng.Intn(max(cfg.Employees, 1)))
		_, err := papers.Insert([]value.Value{
			value.Int(penr),
			value.Int(yr),
			value.String_(fmt.Sprintf("paper%06d", i)),
		})
		if err != nil {
			return err
		}
	}

	courses := db.MustRelation("courses")
	for i := 1; i <= cfg.Courses; i++ {
		lvl := LevelJunior + rng.Intn(2) // junior or senior
		if rng.Float64() < cfg.SophFrac {
			lvl = rng.Intn(2) // freshman or sophomore
		}
		_, err := courses.Insert([]value.Value{
			value.Int(int64(i)),
			value.Enum("leveltype", lvl),
			value.String_(fmt.Sprintf("course%06d", i)),
		})
		if err != nil {
			return err
		}
	}

	timetable := db.MustRelation("timetable")
	seen := make(map[[3]int64]bool)
	maxTriples := cfg.Employees * cfg.Courses * 5
	want := cfg.Timetable
	if want > maxTriples {
		want = maxTriples
	}
	for len(seen) < want {
		triple := [3]int64{
			int64(1 + rng.Intn(max(cfg.Employees, 1))),
			int64(1 + rng.Intn(max(cfg.Courses, 1))),
			int64(rng.Intn(5)),
		}
		if seen[triple] {
			continue
		}
		seen[triple] = true
		_, err := timetable.Insert([]value.Value{
			value.Int(triple[0]),
			value.Int(triple[1]),
			value.Enum("daytype", int(triple[2])),
			value.Int(int64(8000900 + rng.Intn(100)*100000)),
			value.String_(fmt.Sprintf("R%03d", rng.Intn(1000))),
		})
		if err != nil {
			return err
		}
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// SampleSelection builds Example 2.1 of the paper: the names of the
// professors who did not publish any papers in 1977 or who currently
// offer courses at a level of sophomore or lower. Labels are left
// unresolved; run calculus.Check before evaluating.
func SampleSelection() *calculus.Selection {
	return &calculus.Selection{
		Proj: []calculus.Field{{Var: "e", Col: "ename"}},
		Free: []calculus.Decl{{Var: "e", Range: &calculus.RangeExpr{Rel: "employees"}}},
		Pred: calculus.NewAnd(
			&calculus.Cmp{L: calculus.Field{Var: "e", Col: "estatus"}, Op: value.OpEq, R: calculus.Label{Name: "professor"}},
			calculus.NewOr(
				&calculus.Quant{All: true, Var: "p", Range: &calculus.RangeExpr{Rel: "papers"},
					Body: calculus.NewOr(
						&calculus.Cmp{L: calculus.Field{Var: "p", Col: "pyear"}, Op: value.OpNe, R: calculus.Const{Val: value.Int(1977)}},
						&calculus.Cmp{L: calculus.Field{Var: "e", Col: "enr"}, Op: value.OpNe, R: calculus.Field{Var: "p", Col: "penr"}},
					)},
				&calculus.Quant{Var: "c", Range: &calculus.RangeExpr{Rel: "courses"},
					Body: calculus.NewAnd(
						&calculus.Cmp{L: calculus.Field{Var: "c", Col: "clevel"}, Op: value.OpLe, R: calculus.Label{Name: "sophomore"}},
						&calculus.Quant{Var: "t", Range: &calculus.RangeExpr{Rel: "timetable"},
							Body: calculus.NewAnd(
								&calculus.Cmp{L: calculus.Field{Var: "c", Col: "cnr"}, Op: value.OpEq, R: calculus.Field{Var: "t", Col: "tcnr"}},
								&calculus.Cmp{L: calculus.Field{Var: "e", Col: "enr"}, Op: value.OpEq, R: calculus.Field{Var: "t", Col: "tenr"}},
							)},
					)},
			),
		),
	}
}

// SubexprSelection builds the Example 3.2 fragment: pairs of sophomore
// courses and their timetable entries,
// (c.clevel <= sophomore) AND (c.cnr = t.tcnr).
func SubexprSelection() *calculus.Selection {
	return &calculus.Selection{
		Proj: []calculus.Field{{Var: "c", Col: "cnr"}, {Var: "t", Col: "tenr"}, {Var: "t", Col: "tday"}},
		Free: []calculus.Decl{
			{Var: "c", Range: &calculus.RangeExpr{Rel: "courses"}},
			{Var: "t", Range: &calculus.RangeExpr{Rel: "timetable"}},
		},
		Pred: calculus.NewAnd(
			&calculus.Cmp{L: calculus.Field{Var: "c", Col: "clevel"}, Op: value.OpLe, R: calculus.Label{Name: "sophomore"}},
			&calculus.Cmp{L: calculus.Field{Var: "c", Col: "cnr"}, Op: value.OpEq, R: calculus.Field{Var: "t", Col: "tcnr"}},
		),
	}
}

// DisjunctiveSelection builds a query whose quantified variable carries
// *different* monadic restrictions per disjunct — the shape the paper's
// proposed CNF range extension (section 4.3 outlook) targets: employees
// who teach on Monday or on Friday. In the standard form the day tests
// land in separate conjunctions, so plain extraction cannot move either;
// the CNF form narrows timetable's range to [monday OR friday], which
// shrinks the index and the indirect joins built on the timetable side.
func DisjunctiveSelection() *calculus.Selection {
	day := func(ord int) *calculus.Cmp {
		return &calculus.Cmp{L: calculus.Field{Var: "t", Col: "tday"}, Op: value.OpEq,
			R: calculus.Const{Val: value.Enum("daytype", ord)}}
	}
	return &calculus.Selection{
		Proj: []calculus.Field{{Var: "e", Col: "ename"}},
		Free: []calculus.Decl{{Var: "e", Range: &calculus.RangeExpr{Rel: "employees"}}},
		Pred: &calculus.Quant{Var: "t", Range: &calculus.RangeExpr{Rel: "timetable"},
			Body: calculus.NewAnd(
				calculus.NewOr(day(0), day(4)), // monday or friday
				&calculus.Cmp{L: calculus.Field{Var: "e", Col: "enr"}, Op: value.OpEq, R: calculus.Field{Var: "t", Col: "tenr"}},
			)},
	}
}

// JoinHeavySelection builds the cost-ordering showcase: a three-way
// join whose selective variables (professors, sophomore courses) are
// declared BEFORE the bulky timetable, so the static planner indexes
// the selective sides and probes with every timetable tuple while the
// cost-based planner scans timetable first and probes with the few
// restricted tuples. BenchmarkCostBasedJoin and experiment E15 share it.
func JoinHeavySelection() *calculus.Selection {
	return &calculus.Selection{
		Proj: []calculus.Field{{Var: "e", Col: "ename"}, {Var: "c", Col: "cnr"}},
		Free: []calculus.Decl{
			{Var: "e", Range: &calculus.RangeExpr{Rel: "employees"}},
			{Var: "c", Range: &calculus.RangeExpr{Rel: "courses"}},
			{Var: "t", Range: &calculus.RangeExpr{Rel: "timetable"}},
		},
		Pred: calculus.NewAnd(
			&calculus.Cmp{L: calculus.Field{Var: "e", Col: "estatus"}, Op: value.OpEq, R: calculus.Label{Name: "professor"}},
			&calculus.Cmp{L: calculus.Field{Var: "c", Col: "clevel"}, Op: value.OpLe, R: calculus.Label{Name: "sophomore"}},
			&calculus.Cmp{L: calculus.Field{Var: "e", Col: "enr"}, Op: value.OpEq, R: calculus.Field{Var: "t", Col: "tenr"}},
			&calculus.Cmp{L: calculus.Field{Var: "c", Col: "cnr"}, Op: value.OpEq, R: calculus.Field{Var: "t", Col: "tcnr"}},
		),
	}
}

// ProfessorsSelection builds the trivial monadic query the adapted form
// of Example 2.2 reduces to when papers is empty:
// the names of all professors.
func ProfessorsSelection() *calculus.Selection {
	return &calculus.Selection{
		Proj: []calculus.Field{{Var: "e", Col: "ename"}},
		Free: []calculus.Decl{{Var: "e", Range: &calculus.RangeExpr{Rel: "employees"}}},
		Pred: &calculus.Cmp{L: calculus.Field{Var: "e", Col: "estatus"}, Op: value.OpEq, R: calculus.Label{Name: "professor"}},
	}
}
