package workload

import (
	"fmt"
	"strings"

	"pascalr/internal/value"
)

// UniversityScript renders the Figure 1 university database at the
// given scale as one PASCAL/R script: the DDL followed by one :+
// insertion per generated tuple. Executing the script through the
// public API reproduces the exact generator contents — and, because
// the mutation history is identical, the same live statistics — so two
// databases populated from the same script plan and count identically.
// The CLI, the pascald daemon, and the loopback differential tests all
// load through this one path.
func UniversityScript(scale int) (string, error) {
	gen, err := University(DefaultConfig(scale))
	if err != nil {
		return "", err
	}
	maxN := max(scale, 99)
	courses := scale/2 + 1
	maxC := max(courses, 99)
	var b strings.Builder
	fmt.Fprintf(&b, `
TYPE statustype = (student, technician, assistant, professor);
     nametype   = PACKED ARRAY [1..10] OF char;
     titletype  = PACKED ARRAY [1..40] OF char;
     roomtype   = PACKED ARRAY [1..5] OF char;
     yeartype   = 1900..1999;
     timetype   = 8000900..18002000;
     daytype    = (monday, tuesday, wednesday, thursday, friday);
     leveltype  = (freshman, sophomore, junior, senior);
     enumbertype = 1..%d;
     cnumbertype = 1..%d;
VAR employees : RELATION <enr> OF
      RECORD enr : enumbertype; ename : nametype; estatus : statustype END;
    papers : RELATION <ptitle, penr> OF
      RECORD penr : enumbertype; pyear : yeartype; ptitle : titletype END;
    courses : RELATION <cnr> OF
      RECORD cnr : cnumbertype; clevel : leveltype; ctitle : titletype END;
    timetable : RELATION <tenr, tcnr, tday> OF
      RECORD tenr : enumbertype; tcnr : cnumbertype; tday : daytype;
             ttime : timetype; troom : roomtype END;
`, maxN, maxC)
	// Render generated tuples as :+ statements, mapping enumeration
	// ordinals back to labels through the generator's catalog.
	for _, relName := range []string{"employees", "papers", "courses", "timetable"} {
		rel, _ := gen.Relation(relName)
		for _, tup := range rel.Tuples() {
			b.WriteString(relName + " :+ [<")
			for i, v := range tup {
				if i > 0 {
					b.WriteString(", ")
				}
				switch v.Kind() {
				case value.KindInt:
					fmt.Fprintf(&b, "%d", v.AsInt())
				case value.KindString:
					fmt.Fprintf(&b, "'%s'", strings.ReplaceAll(v.AsString(), "'", "''"))
				case value.KindEnum:
					t, _ := gen.Catalog().Type(v.EnumType())
					b.WriteString(t.Label(v.EnumOrd()))
				}
			}
			b.WriteString(">];\n")
		}
	}
	return b.String(), nil
}
