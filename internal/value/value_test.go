package value

import (
	"testing"
	"testing/quick"
)

func TestConstructorsAndAccessors(t *testing.T) {
	if got := Int(42).AsInt(); got != 42 {
		t.Errorf("Int(42).AsInt() = %d", got)
	}
	if got := String_("abc").AsString(); got != "abc" {
		t.Errorf("String_ round trip = %q", got)
	}
	if !Bool(true).AsBool() || Bool(false).AsBool() {
		t.Errorf("Bool round trip failed")
	}
	e := Enum("statustype", 3)
	if e.EnumOrd() != 3 || e.EnumType() != "statustype" {
		t.Errorf("Enum round trip = %d %q", e.EnumOrd(), e.EnumType())
	}
	r := Ref(7, 123456, 9)
	rel, slot, gen := r.AsRef()
	if rel != 7 || slot != 123456 || gen != 9 {
		t.Errorf("Ref round trip = (%d,%d,%d)", rel, slot, gen)
	}
}

func TestRefPackingBounds(t *testing.T) {
	r := Ref(0xFFFF, 0x7FFFFFFF, 0xFFFF)
	rel, slot, gen := r.AsRef()
	if rel != 0xFFFF || slot != 0x7FFFFFFF || gen != 0xFFFF {
		t.Errorf("max ref round trip = (%d,%d,%d)", rel, slot, gen)
	}
	defer func() {
		if recover() == nil {
			t.Errorf("out-of-range ref did not panic")
		}
	}()
	Ref(0x10000, 0, 0)
}

func TestRefRoundTripProperty(t *testing.T) {
	f := func(rel uint16, slot uint32, gen uint16) bool {
		s := int(slot & 0x7FFFFFFF)
		r := Ref(int(rel), s, int(gen))
		gr, gs, gg := r.AsRef()
		return gr == int(rel) && gs == s && gg == int(gen)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("AsInt on string did not panic")
		}
	}()
	String_("x").AsInt()
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Int(2), 1},
		{String_("a"), String_("b"), -1},
		{String_("b"), String_("b"), 0},
		{Bool(false), Bool(true), -1},
		{Bool(true), Bool(true), 0},
		{Enum("t", 0), Enum("t", 1), -1},
		{Enum("t", 2), Enum("t", 2), 0},
	}
	for _, c := range cases {
		got, err := Compare(c.a, c.b)
		if err != nil {
			t.Errorf("Compare(%v,%v): %v", c.a, c.b, err)
			continue
		}
		if got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareErrors(t *testing.T) {
	if _, err := Compare(Int(1), String_("a")); err == nil {
		t.Errorf("cross-kind compare did not error")
	}
	if _, err := Compare(Enum("a", 0), Enum("b", 0)); err == nil {
		t.Errorf("cross-enum-type compare did not error")
	}
	if _, err := Compare(Value{}, Value{}); err == nil {
		t.Errorf("invalid-value compare did not error")
	}
}

func TestEqual(t *testing.T) {
	if !Equal(Int(5), Int(5)) {
		t.Errorf("Equal(5,5) = false")
	}
	if Equal(Int(5), Int(6)) || Equal(Int(5), String_("5")) {
		t.Errorf("unequal values reported equal")
	}
	if Equal(Enum("a", 0), Enum("b", 0)) {
		t.Errorf("different enum types reported equal")
	}
}

func TestCompareAntisymmetryProperty(t *testing.T) {
	f := func(a, b int64) bool {
		x, y := Int(a), Int(b)
		c1 := MustCompare(x, y)
		c2 := MustCompare(y, x)
		return c1 == -c2 && (c1 == 0) == (a == b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeKeyInjective(t *testing.T) {
	// Distinct values must have distinct encodings, including tricky
	// string/int boundary cases.
	vals := []Value{
		Int(0), Int(1), Int(-1), Int(1 << 40),
		String_(""), String_("a"), String_("ab"), String_("a\x00b"),
		Bool(false), Bool(true),
		Enum("t", 0), Enum("t", 1), Enum("u", 0),
		Ref(1, 2, 3), Ref(1, 2, 4),
	}
	seen := make(map[string]Value)
	for _, v := range vals {
		k := EncodeKey([]Value{v})
		if prev, dup := seen[k]; dup {
			t.Errorf("EncodeKey collision between %v and %v", prev, v)
		}
		seen[k] = v
	}
	// Tuple encodings must not collide across boundaries.
	a := EncodeKey([]Value{String_("ab"), String_("c")})
	b := EncodeKey([]Value{String_("a"), String_("bc")})
	if a == b {
		t.Errorf("tuple key encoding is ambiguous across string boundaries")
	}
}

func TestEncodeKeyEqualityProperty(t *testing.T) {
	f := func(a, b int64, s1, s2 string) bool {
		va := []Value{Int(a), String_(s1)}
		vb := []Value{Int(b), String_(s2)}
		same := a == b && s1 == s2
		return (EncodeKey(va) == EncodeKey(vb)) == same
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Int(7), "7"},
		{String_("hi"), "'hi'"},
		{Bool(true), "TRUE"},
		{Bool(false), "FALSE"},
		{Enum("status", 2), "status#2"},
		{Value{}, "<invalid>"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}
