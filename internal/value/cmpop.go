package value

import "fmt"

// CmpOp is one of the six comparison operators of the PASCAL/R calculus:
// =, <>, <, <=, >, >=. Join terms (the atomic formulae of selection
// expressions) are built from exactly these operators.
type CmpOp uint8

// The comparison operators, in the paper's order.
const (
	OpEq CmpOp = iota // =
	OpNe              // <>
	OpLt              // <
	OpLe              // <=
	OpGt              // >
	OpGe              // >=
)

// AllOps lists every comparison operator; useful for exhaustive tests and
// for the random query generator.
var AllOps = []CmpOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}

// String returns the PASCAL/R spelling of the operator.
func (op CmpOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return fmt.Sprintf("CmpOp(%d)", uint8(op))
	}
}

// Negate returns the operator whose result is the logical negation:
// NOT (a = b) is a <> b, NOT (a < b) is a >= b, and so on. Because every
// domain is totally ordered this is exact, so negation normal form never
// needs negated atoms.
func (op CmpOp) Negate() CmpOp {
	switch op {
	case OpEq:
		return OpNe
	case OpNe:
		return OpEq
	case OpLt:
		return OpGe
	case OpLe:
		return OpGt
	case OpGt:
		return OpLe
	case OpGe:
		return OpLt
	default:
		panic(fmt.Sprintf("value: negate of invalid operator %d", uint8(op)))
	}
}

// Flip returns the operator for swapped operands: a < b iff b > a.
func (op CmpOp) Flip() CmpOp {
	switch op {
	case OpLt:
		return OpGt
	case OpLe:
		return OpGe
	case OpGt:
		return OpLt
	case OpGe:
		return OpLe
	default: // = and <> are symmetric
		return op
	}
}

// Holds reports whether the operator is satisfied by a three-way
// comparison result c (negative, zero, positive as in Compare).
func (op CmpOp) Holds(c int) bool {
	switch op {
	case OpEq:
		return c == 0
	case OpNe:
		return c != 0
	case OpLt:
		return c < 0
	case OpLe:
		return c <= 0
	case OpGt:
		return c > 0
	case OpGe:
		return c >= 0
	default:
		panic(fmt.Sprintf("value: Holds on invalid operator %d", uint8(op)))
	}
}

// Apply evaluates "a op b" for two values of the same kind. It reports an
// error exactly when Compare would.
func (op CmpOp) Apply(a, b Value) (bool, error) {
	c, err := Compare(a, b)
	if err != nil {
		return false, err
	}
	return op.Holds(c), nil
}

// ParseOp converts the PASCAL/R spelling of a comparison operator.
func ParseOp(s string) (CmpOp, bool) {
	switch s {
	case "=":
		return OpEq, true
	case "<>":
		return OpNe, true
	case "<":
		return OpLt, true
	case "<=":
		return OpLe, true
	case ">":
		return OpGt, true
	case ">=":
		return OpGe, true
	default:
		return 0, false
	}
}
