package value

import (
	"fmt"
	"math/bits"
	"strings"
)

// CmpOp is one of the six comparison operators of the PASCAL/R calculus:
// =, <>, <, <=, >, >=. Join terms (the atomic formulae of selection
// expressions) are built from exactly these operators.
type CmpOp uint8

// The comparison operators, in the paper's order.
const (
	OpEq CmpOp = iota // =
	OpNe              // <>
	OpLt              // <
	OpLe              // <=
	OpGt              // >
	OpGe              // >=
)

// AllOps lists every comparison operator; useful for exhaustive tests and
// for the random query generator.
var AllOps = []CmpOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}

// String returns the PASCAL/R spelling of the operator.
func (op CmpOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return fmt.Sprintf("CmpOp(%d)", uint8(op))
	}
}

// Negate returns the operator whose result is the logical negation:
// NOT (a = b) is a <> b, NOT (a < b) is a >= b, and so on. Because every
// domain is totally ordered this is exact, so negation normal form never
// needs negated atoms.
func (op CmpOp) Negate() CmpOp {
	switch op {
	case OpEq:
		return OpNe
	case OpNe:
		return OpEq
	case OpLt:
		return OpGe
	case OpLe:
		return OpGt
	case OpGt:
		return OpLe
	case OpGe:
		return OpLt
	default:
		panic(fmt.Sprintf("value: negate of invalid operator %d", uint8(op)))
	}
}

// Flip returns the operator for swapped operands: a < b iff b > a.
func (op CmpOp) Flip() CmpOp {
	switch op {
	case OpLt:
		return OpGt
	case OpLe:
		return OpGe
	case OpGt:
		return OpLt
	case OpGe:
		return OpLe
	default: // = and <> are symmetric
		return op
	}
}

// Holds reports whether the operator is satisfied by a three-way
// comparison result c (negative, zero, positive as in Compare).
func (op CmpOp) Holds(c int) bool {
	switch op {
	case OpEq:
		return c == 0
	case OpNe:
		return c != 0
	case OpLt:
		return c < 0
	case OpLe:
		return c <= 0
	case OpGt:
		return c > 0
	case OpGe:
		return c >= 0
	default:
		panic(fmt.Sprintf("value: Holds on invalid operator %d", uint8(op)))
	}
}

// Apply evaluates "a op b" for two values of the same kind. It reports an
// error exactly when Compare would.
func (op CmpOp) Apply(a, b Value) (bool, error) {
	c, err := Compare(a, b)
	if err != nil {
		return false, err
	}
	return op.Holds(c), nil
}

// FilterBits evaluates "col[i] op rhs" in bulk over the rows whose bit
// is set in words (bit i of words selects col[i]) and clears the bits
// of rows where the comparison does not hold. Bits at positions >=
// len(col) must be zero. It errors exactly where a row-at-a-time
// Compare would, at the first offending selected row in ascending
// order; the words are left partially filtered in that case.
//
// The payload-typed fast paths below are the point: one kind switch
// per column instead of per row, no closures, and word-sized writes,
// which is what makes bitmap predicate evaluation worth batching for.
func (op CmpOp) FilterBits(col []Value, rhs Value, words []uint64) error {
	switch rhs.kind {
	case KindInt, KindBool, KindRef:
		r, k := rhs.i, rhs.kind
		for wi, w := range words {
			// Dense word: most rows selected, so walk all 64 values
			// sequentially — perfectly predicted branches and hardware
			// prefetch — and mask the result with the selection,
			// instead of extracting set bits one by one. The early
			// predicates of a conjunctive chain run at near-full
			// density, which makes this the hot loop of a scan. A kind
			// mismatch anywhere in the word (which row-at-a-time
			// evaluation might not even reach) falls back to the
			// sparse path, so errors surface exactly where a per-row
			// Compare would raise them.
			if bits.OnesCount64(w) >= 32 && wi*64+64 <= len(col) {
				var res uint64
				mixed := false
				for j, v := range col[wi*64 : wi*64+64] {
					if v.kind != k {
						mixed = true
						break
					}
					if op.Holds(cmpInt64(v.i, r)) {
						res |= uint64(1) << uint(j)
					}
				}
				if !mixed {
					words[wi] = w & res
					continue
				}
			}
			keep := w
			for m := w; m != 0; m &= m - 1 {
				v := col[wi*64+bits.TrailingZeros64(m)]
				if v.kind != k {
					return fmt.Errorf("value: cannot compare %s with %s", v.kind, k)
				}
				if !op.Holds(cmpInt64(v.i, r)) {
					keep &^= m & -m
				}
			}
			words[wi] = keep
		}
		return nil
	case KindString:
		r := rhs.s
		for wi, w := range words {
			keep := w
			for m := w; m != 0; m &= m - 1 {
				v := col[wi*64+bits.TrailingZeros64(m)]
				if v.kind != KindString {
					return fmt.Errorf("value: cannot compare %s with %s", v.kind, KindString)
				}
				if !op.Holds(strings.Compare(v.s, r)) {
					keep &^= m & -m
				}
			}
			words[wi] = keep
		}
		return nil
	case KindEnum:
		for wi, w := range words {
			// Dense word, see the int case; the mismatch fallback here
			// also covers enum-type mismatches.
			if bits.OnesCount64(w) >= 32 && wi*64+64 <= len(col) {
				var res uint64
				mixed := false
				for j, v := range col[wi*64 : wi*64+64] {
					if v.kind != KindEnum || v.s != rhs.s {
						mixed = true
						break
					}
					if op.Holds(cmpInt64(v.i, rhs.i)) {
						res |= uint64(1) << uint(j)
					}
				}
				if !mixed {
					words[wi] = w & res
					continue
				}
			}
			keep := w
			for m := w; m != 0; m &= m - 1 {
				v := col[wi*64+bits.TrailingZeros64(m)]
				if v.kind != KindEnum {
					return fmt.Errorf("value: cannot compare %s with %s", v.kind, KindEnum)
				}
				if v.s != rhs.s {
					return fmt.Errorf("value: cannot compare enum %s with enum %s", v.s, rhs.s)
				}
				if !op.Holds(cmpInt64(v.i, rhs.i)) {
					keep &^= m & -m
				}
			}
			words[wi] = keep
		}
		return nil
	default:
		for wi, w := range words {
			keep := w
			for m := w; m != 0; m &= m - 1 {
				ok, err := op.Apply(col[wi*64+bits.TrailingZeros64(m)], rhs)
				if err != nil {
					return err
				}
				if !ok {
					keep &^= m & -m
				}
			}
			words[wi] = keep
		}
		return nil
	}
}

// HoldsOrd reports whether "a op b" holds for two Ord payloads of the
// same (compile-time-checked) int-backed kind.
func (op CmpOp) HoldsOrd(a, b int64) bool {
	return op.Holds(cmpInt64(a, b))
}

// FilterOrdBits is FilterBits over an unboxed ordinal column: it
// evaluates "col[i] op r" for the rows whose bit is set in words and
// clears the bits where the comparison does not hold. The caller (the
// vectorized predicate compiler) has type-checked the column against
// the constant at compile time, so no per-row kind checks remain and
// the function cannot fail. Dense words run a sequential compare over
// all 64 values — branch-predictable, prefetch-friendly, and free of
// bit-extraction arithmetic — with the operator dispatched once per
// word; sparse words extract set bits one at a time.
func (op CmpOp) FilterOrdBits(col []int64, r int64, words []uint64) {
	for wi, w := range words {
		if w == 0 {
			continue
		}
		base := wi * 64
		if bits.OnesCount64(w) >= 16 && base+64 <= len(col) {
			span := col[base : base+64 : base+64]
			var res uint64
			switch op {
			case OpEq:
				for j, v := range span {
					if v == r {
						res |= uint64(1) << uint(j)
					}
				}
			case OpNe:
				for j, v := range span {
					if v != r {
						res |= uint64(1) << uint(j)
					}
				}
			case OpLt:
				for j, v := range span {
					if v < r {
						res |= uint64(1) << uint(j)
					}
				}
			case OpLe:
				for j, v := range span {
					if v <= r {
						res |= uint64(1) << uint(j)
					}
				}
			case OpGt:
				for j, v := range span {
					if v > r {
						res |= uint64(1) << uint(j)
					}
				}
			case OpGe:
				for j, v := range span {
					if v >= r {
						res |= uint64(1) << uint(j)
					}
				}
			}
			words[wi] = w & res
			continue
		}
		keep := w
		for m := w; m != 0; m &= m - 1 {
			if !op.Holds(cmpInt64(col[base+bits.TrailingZeros64(m)], r)) {
				keep &^= m & -m
			}
		}
		words[wi] = keep
	}
}

// ParseOp converts the PASCAL/R spelling of a comparison operator.
func ParseOp(s string) (CmpOp, bool) {
	switch s {
	case "=":
		return OpEq, true
	case "<>":
		return OpNe, true
	case "<":
		return OpLt, true
	case "<=":
		return OpLe, true
	case ">":
		return OpGt, true
	case ">=":
		return OpGe, true
	default:
		return 0, false
	}
}
