package value

import (
	"testing"
	"testing/quick"
)

func TestOpStringsAndParse(t *testing.T) {
	for _, op := range AllOps {
		s := op.String()
		back, ok := ParseOp(s)
		if !ok || back != op {
			t.Errorf("ParseOp(%q) = %v,%v, want %v", s, back, ok, op)
		}
	}
	if _, ok := ParseOp("=="); ok {
		t.Errorf("ParseOp accepted ==")
	}
}

func TestNegateIsExactComplement(t *testing.T) {
	f := func(a, b int64) bool {
		for _, op := range AllOps {
			r1, _ := op.Apply(Int(a), Int(b))
			r2, _ := op.Negate().Apply(Int(a), Int(b))
			if r1 == r2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNegateInvolution(t *testing.T) {
	for _, op := range AllOps {
		if op.Negate().Negate() != op {
			t.Errorf("%v: negate not an involution", op)
		}
	}
}

func TestFlipSwapsOperands(t *testing.T) {
	f := func(a, b int64) bool {
		for _, op := range AllOps {
			r1, _ := op.Apply(Int(a), Int(b))
			r2, _ := op.Flip().Apply(Int(b), Int(a))
			if r1 != r2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHoldsTruthTable(t *testing.T) {
	cases := []struct {
		op   CmpOp
		neg  bool // holds for c = -1
		zero bool // holds for c = 0
		pos  bool // holds for c = +1
	}{
		{OpEq, false, true, false},
		{OpNe, true, false, true},
		{OpLt, true, false, false},
		{OpLe, true, true, false},
		{OpGt, false, false, true},
		{OpGe, false, true, true},
	}
	for _, c := range cases {
		if c.op.Holds(-1) != c.neg || c.op.Holds(0) != c.zero || c.op.Holds(1) != c.pos {
			t.Errorf("%v truth table wrong", c.op)
		}
	}
}

func TestApplyError(t *testing.T) {
	if _, err := OpEq.Apply(Int(1), String_("x")); err == nil {
		t.Errorf("Apply across kinds did not error")
	}
}

func TestApplyOnStrings(t *testing.T) {
	ok, err := OpLe.Apply(String_("abc"), String_("abd"))
	if err != nil || !ok {
		t.Errorf("'abc' <= 'abd' = %v, %v", ok, err)
	}
	ok, err = OpGt.Apply(String_("b"), String_("ab"))
	if err != nil || !ok {
		t.Errorf("'b' > 'ab' = %v, %v", ok, err)
	}
}

// TestFilterBitsMatchesApply cross-checks the bulk filter against
// row-at-a-time Apply for every operator and kind pairing, over lengths
// straddling word boundaries.
func TestFilterBitsMatchesApply(t *testing.T) {
	mk := func(kind string, i int) Value {
		switch kind {
		case "int":
			return Int(int64(i % 7))
		case "string":
			return String_(string(rune('a' + i%5)))
		case "bool":
			return Bool(i%2 == 0)
		case "enum":
			return Enum("color", i%3)
		case "ref":
			return Ref(1, i%9, 0)
		default:
			panic(kind)
		}
	}
	for _, kind := range []string{"int", "string", "bool", "enum", "ref"} {
		for _, n := range []int{0, 1, 63, 64, 65, 130} {
			col := make([]Value, n)
			for i := range col {
				col[i] = mk(kind, i)
			}
			rhs := mk(kind, 3)
			for _, op := range AllOps {
				words := make([]uint64, (n+63)/64)
				// Start from an arbitrary selection, not all-ones.
				for i := 0; i < n; i++ {
					if i%3 != 1 {
						words[i/64] |= 1 << uint(i%64)
					}
				}
				before := append([]uint64(nil), words...)
				if err := op.FilterBits(col, rhs, words); err != nil {
					t.Fatalf("%s %v n=%d: %v", kind, op, n, err)
				}
				for i := 0; i < n; i++ {
					sel := before[i/64]&(1<<uint(i%64)) != 0
					want := false
					if sel {
						ok, err := op.Apply(col[i], rhs)
						if err != nil {
							t.Fatal(err)
						}
						want = ok
					}
					got := words[i/64]&(1<<uint(i%64)) != 0
					if got != want {
						t.Fatalf("%s %v n=%d row %d: got %v want %v", kind, op, n, i, got, want)
					}
				}
			}
		}
	}
}

// TestFilterBitsKindMismatch: the bulk path must surface the same
// errors Compare would, only for selected rows.
func TestFilterBitsKindMismatch(t *testing.T) {
	col := []Value{Int(1), String_("x"), Int(3)}
	words := []uint64{0b101} // row 1 (the string) not selected
	if err := OpEq.FilterBits(col, Int(2), words); err != nil {
		t.Errorf("unselected mismatched row errored: %v", err)
	}
	words[0] = 0b111
	if err := OpEq.FilterBits(col, Int(2), words); err == nil {
		t.Errorf("selected kind mismatch did not error")
	}
	ecol := []Value{Enum("color", 1), Enum("size", 1)}
	words[0] = 0b11
	if err := OpEq.FilterBits(ecol, Enum("color", 0), words); err == nil {
		t.Errorf("enum type mismatch did not error")
	}
}
