package value

import (
	"testing"
	"testing/quick"
)

func TestOpStringsAndParse(t *testing.T) {
	for _, op := range AllOps {
		s := op.String()
		back, ok := ParseOp(s)
		if !ok || back != op {
			t.Errorf("ParseOp(%q) = %v,%v, want %v", s, back, ok, op)
		}
	}
	if _, ok := ParseOp("=="); ok {
		t.Errorf("ParseOp accepted ==")
	}
}

func TestNegateIsExactComplement(t *testing.T) {
	f := func(a, b int64) bool {
		for _, op := range AllOps {
			r1, _ := op.Apply(Int(a), Int(b))
			r2, _ := op.Negate().Apply(Int(a), Int(b))
			if r1 == r2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNegateInvolution(t *testing.T) {
	for _, op := range AllOps {
		if op.Negate().Negate() != op {
			t.Errorf("%v: negate not an involution", op)
		}
	}
}

func TestFlipSwapsOperands(t *testing.T) {
	f := func(a, b int64) bool {
		for _, op := range AllOps {
			r1, _ := op.Apply(Int(a), Int(b))
			r2, _ := op.Flip().Apply(Int(b), Int(a))
			if r1 != r2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHoldsTruthTable(t *testing.T) {
	cases := []struct {
		op   CmpOp
		neg  bool // holds for c = -1
		zero bool // holds for c = 0
		pos  bool // holds for c = +1
	}{
		{OpEq, false, true, false},
		{OpNe, true, false, true},
		{OpLt, true, false, false},
		{OpLe, true, true, false},
		{OpGt, false, false, true},
		{OpGe, false, true, true},
	}
	for _, c := range cases {
		if c.op.Holds(-1) != c.neg || c.op.Holds(0) != c.zero || c.op.Holds(1) != c.pos {
			t.Errorf("%v truth table wrong", c.op)
		}
	}
}

func TestApplyError(t *testing.T) {
	if _, err := OpEq.Apply(Int(1), String_("x")); err == nil {
		t.Errorf("Apply across kinds did not error")
	}
}

func TestApplyOnStrings(t *testing.T) {
	ok, err := OpLe.Apply(String_("abc"), String_("abd"))
	if err != nil || !ok {
		t.Errorf("'abc' <= 'abd' = %v, %v", ok, err)
	}
	ok, err = OpGt.Apply(String_("b"), String_("ab"))
	if err != nil || !ok {
		t.Errorf("'b' > 'ab' = %v, %v", ok, err)
	}
}
