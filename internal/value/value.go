// Package value implements the runtime values that flow through the
// PASCAL/R query processor: integers (PASCAL subranges), strings (packed
// character arrays), booleans, enumeration values, and references to
// relation elements (the paper's @rel[keyval] construct, a generalization
// of TIDs).
//
// All values of a kind are totally ordered, which lets the normalizer
// eliminate NOT by flipping comparison operators, and lets the collection
// phase implement the value-list refinements of section 4.4 of the paper
// (min/max for < and <=, singleton tests for = with ALL and <> with SOME).
package value

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// Kind identifies the runtime type of a Value.
type Kind uint8

// The supported value kinds.
const (
	KindInvalid Kind = iota
	KindInt          // 64-bit integer (covers all PASCAL subranges)
	KindString       // packed character array, compared lexicographically
	KindBool         // false < true
	KindEnum         // enumeration; ordered by declaration ordinal
	KindRef          // reference to a relation element (@rel[key])
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "integer"
	case KindString:
		return "string"
	case KindBool:
		return "boolean"
	case KindEnum:
		return "enum"
	case KindRef:
		return "ref"
	default:
		return "invalid"
	}
}

// Value is a single immutable runtime value. The zero Value is invalid.
type Value struct {
	kind Kind
	i    int64  // integer value, bool (0/1), enum ordinal, or packed ref
	s    string // string value, or enum type name
}

// Int returns a new integer value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// String_ returns a new string value. (Named with a trailing underscore
// because Value.String is the fmt.Stringer method.)
func String_(v string) Value { return Value{kind: KindString, s: v} }

// Bool returns a new boolean value.
func Bool(v bool) Value {
	if v {
		return Value{kind: KindBool, i: 1}
	}
	return Value{kind: KindBool}
}

// Enum returns a value of the named enumeration type with the given
// declaration ordinal. Values of different enumeration types never
// compare equal and comparing them reports an error.
func Enum(typeName string, ord int) Value {
	return Value{kind: KindEnum, i: int64(ord), s: typeName}
}

// Ref returns a reference value identifying a relation element by the
// owning relation's catalog id, the element's storage slot, and the
// slot's generation (used to detect dangling references after deletion).
func Ref(rel, slot, gen int) Value {
	if rel < 0 || rel > 0xFFFF || slot < 0 || slot > 0x7FFFFFFF || gen < 0 || gen > 0xFFFF {
		panic(fmt.Sprintf("value: ref out of range rel=%d slot=%d gen=%d", rel, slot, gen))
	}
	return Value{kind: KindRef, i: int64(rel)<<48 | int64(gen)<<32 | int64(slot)}
}

// Kind reports the value's kind.
func (v Value) Kind() Kind { return v.kind }

// IsValid reports whether the value has been initialized.
func (v Value) IsValid() bool { return v.kind != KindInvalid }

// AsInt returns the integer payload. It panics when the value is not an
// integer.
func (v Value) AsInt() int64 {
	v.mustBe(KindInt)
	return v.i
}

// AsString returns the string payload. It panics when the value is not a
// string.
func (v Value) AsString() string {
	v.mustBe(KindString)
	return v.s
}

// AsBool returns the boolean payload. It panics when the value is not a
// boolean.
func (v Value) AsBool() bool {
	v.mustBe(KindBool)
	return v.i != 0
}

// EnumOrd returns the declaration ordinal of an enumeration value. It
// panics when the value is not an enumeration.
func (v Value) EnumOrd() int {
	v.mustBe(KindEnum)
	return int(v.i)
}

// EnumType returns the enumeration type name of an enumeration value.
func (v Value) EnumType() string {
	v.mustBe(KindEnum)
	return v.s
}

// AsRef unpacks a reference value into (relation id, slot, generation).
// It panics when the value is not a reference.
func (v Value) AsRef() (rel, slot, gen int) {
	v.mustBe(KindRef)
	return int(v.i >> 48 & 0xFFFF), int(v.i & 0x7FFFFFFF), int(v.i >> 32 & 0xFFFF)
}

func (v Value) mustBe(k Kind) {
	if v.kind != k {
		panic(fmt.Sprintf("value: %s used as %s", v.kind, k))
	}
}

// String renders the value for display: integers in decimal, strings
// single-quoted, booleans as TRUE/FALSE, enums as type#ordinal (the
// schema layer renders enum labels), references as @rel:slot.
func (v Value) String() string {
	switch v.kind {
	case KindInt:
		return fmt.Sprintf("%d", v.i)
	case KindString:
		return "'" + v.s + "'"
	case KindBool:
		if v.i != 0 {
			return "TRUE"
		}
		return "FALSE"
	case KindEnum:
		return fmt.Sprintf("%s#%d", v.s, v.i)
	case KindRef:
		rel, slot, _ := v.AsRef()
		return fmt.Sprintf("@%d:%d", rel, slot)
	default:
		return "<invalid>"
	}
}

// Compare orders two values of the same kind: it returns a negative
// number, zero, or a positive number as a sorts before, equal to, or
// after b. Comparing values of different kinds, or enumeration values of
// different enumeration types, is an error (the calculus is many-sorted).
func Compare(a, b Value) (int, error) {
	if a.kind != b.kind {
		return 0, fmt.Errorf("value: cannot compare %s with %s", a.kind, b.kind)
	}
	switch a.kind {
	case KindInt, KindBool:
		return cmpInt64(a.i, b.i), nil
	case KindString:
		return strings.Compare(a.s, b.s), nil
	case KindEnum:
		if a.s != b.s {
			return 0, fmt.Errorf("value: cannot compare enum %s with enum %s", a.s, b.s)
		}
		return cmpInt64(a.i, b.i), nil
	case KindRef:
		return cmpInt64(a.i, b.i), nil
	default:
		return 0, fmt.Errorf("value: cannot compare invalid values")
	}
}

// MustCompare is Compare for callers that have already type-checked the
// operands; it panics on kind mismatch.
func MustCompare(a, b Value) int {
	c, err := Compare(a, b)
	if err != nil {
		panic(err)
	}
	return c
}

// Equal reports whether two values are identical (same kind, same
// payload). Unlike Compare it never errors: values of different kinds or
// enum types are simply unequal.
func Equal(a, b Value) bool {
	return a.kind == b.kind && a.i == b.i && a.s == b.s
}

// OrdKind reports whether k is an int-backed kind — integers, booleans,
// enumerations, references — whose values a typed column vector stores
// as raw Ord payloads. Only strings are excluded.
func OrdKind(k Kind) bool {
	switch k {
	case KindInt, KindBool, KindEnum, KindRef:
		return true
	}
	return false
}

// Ord returns the integer payload of an int-backed value: the number
// itself, a boolean as 0/1, an enumeration ordinal, or a packed
// reference — the raw representation typed column vectors store.
// Strings and invalid values panic.
func (v Value) Ord() int64 {
	if !OrdKind(v.kind) {
		panic(fmt.Sprintf("value: Ord on %s value", v.kind))
	}
	return v.i
}

// MakeOrd reconstructs an int-backed value from its Ord payload;
// enumType names the enumeration for KindEnum values and is ignored
// otherwise. It is the inverse of Ord for the columnar batch layer:
// reconstructed values are Equal to the originals.
func MakeOrd(k Kind, ord int64, enumType string) Value {
	switch k {
	case KindInt, KindBool, KindRef:
		return Value{kind: k, i: ord}
	case KindEnum:
		return Value{kind: KindEnum, i: ord, s: enumType}
	default:
		panic(fmt.Sprintf("value: MakeOrd on %s", k))
	}
}

func cmpInt64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// AppendKey appends an equality-preserving encoding of v to dst. Two
// values have identical encodings iff Equal reports true; this backs the
// hash indexes and deduplication sets throughout the system.
func AppendKey(dst []byte, v Value) []byte {
	dst = append(dst, byte(v.kind))
	switch v.kind {
	case KindString, KindEnum:
		var n [4]byte
		binary.BigEndian.PutUint32(n[:], uint32(len(v.s)))
		dst = append(dst, n[:]...)
		dst = append(dst, v.s...)
	}
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], uint64(v.i))
	return append(dst, n[:]...)
}

// EncodeKey encodes a tuple of values into a string usable as a Go map
// key. The encoding is equality-preserving and unambiguous.
func EncodeKey(vals []Value) string {
	dst := make([]byte, 0, 16*len(vals))
	for _, v := range vals {
		dst = AppendKey(dst, v)
	}
	return string(dst)
}
