// Package experiments regenerates the paper's evaluation artifacts.
// The 1982 paper reports no quantitative tables; its evaluation is the
// sample database (Figure 1), the auxiliary structures (Figure 2),
// Lemma 1's empty-relation cases, and the worked Examples 2.1–4.7 that
// demonstrate the four optimization strategies. Each experiment below
// reproduces one of those artifacts with measured counters — scans,
// intermediate-structure sizes, reference tuples — plus wall-clock time,
// which is what the paper's cost arguments are about.
//
// EXPERIMENTS.md records the paper's claim next to the measured output
// of each experiment; `go run ./cmd/experiments` re-generates them all.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"pascalr/internal/baseline"
	"pascalr/internal/calculus"
	"pascalr/internal/engine"
	"pascalr/internal/normalize"
	"pascalr/internal/optimizer"
	"pascalr/internal/parser"
	"pascalr/internal/relation"
	"pascalr/internal/schema"
	"pascalr/internal/stats"
	"pascalr/internal/value"
	"pascalr/internal/workload"
)

// Experiment is one runnable experiment.
type Experiment struct {
	ID    string
	Title string
	Run   func(w io.Writer, scales []int) error
}

// All returns the experiments in order.
func All() []Experiment {
	return []Experiment{
		{"E1", "Figure 1: sample database generation", runE1},
		{"E2", "Figure 2: auxiliary structures of the sample query", runE2},
		{"E3", "Example 2.1->2.2: standardization", runE3},
		{"E4", "Lemma 1: empty-relation adaptation", runE4},
		{"E5", "Example 3.1: references and selected variables", runE5},
		{"E6", "Example 3.2: the three evaluation phases", runE6},
		{"E7", "Strategy 1: one scan per relation (Examples 4.1/4.3)", runE7},
		{"E8", "Strategy 2: restricted indirect joins (Example 4.2)", runE8},
		{"E9", "Strategy 3: extended range expressions (Examples 4.4/4.5)", runE9},
		{"E10", "Strategy 4: collection-phase quantifiers (Examples 4.6/4.7)", runE10},
		{"E11", "Strategy ladder: naive vs S0..S1234 (section 4 headline)", runE11},
		{"E12", "Section 4.4 value-list refinements", runE12},
		{"E13", "Permanent access paths (sections 3.2/5 outlook)", runE13},
		{"E14", "CNF range extension (section 4.3 outlook)", runE14},
		{"E15", "Cost-based combination phase (section 5 outlook)", runE15},
	}
}

// Run executes the named experiment ("all" runs every one).
func Run(id string, w io.Writer, scales []int) error {
	if strings.EqualFold(id, "all") {
		for _, e := range All() {
			fmt.Fprintf(w, "==== %s: %s ====\n", e.ID, e.Title)
			if err := e.Run(w, scales); err != nil {
				return fmt.Errorf("%s: %w", e.ID, err)
			}
			fmt.Fprintln(w)
		}
		return nil
	}
	for _, e := range All() {
		if strings.EqualFold(e.ID, id) {
			fmt.Fprintf(w, "==== %s: %s ====\n", e.ID, e.Title)
			return e.Run(w, scales)
		}
	}
	return fmt.Errorf("experiments: unknown experiment %s", id)
}

// table is a tiny aligned-text table builder.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprintf("%v", c)
	}
	t.rows = append(t.rows, row)
}

func (t *table) write(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(w, "%-*s  ", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	line(t.header)
	seps := make([]string, len(t.header))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, r := range t.rows {
		line(r)
	}
}

// checkedSample builds the university database at a scale and the
// checked Example 2.1 selection against it.
func checkedSample(scale int) (*relation.DB, *calculus.Selection, *calculus.Info, error) {
	db, err := workload.University(workload.DefaultConfig(scale))
	if err != nil {
		return nil, nil, nil, err
	}
	sel, info, err := calculus.Check(workload.SampleSelection(), db.Catalog())
	if err != nil {
		return nil, nil, nil, err
	}
	return db, sel, info, nil
}

// refTupleBudget caps the combination phase: the unoptimized strategies
// blow up combinatorially with scale (which is the paper's very point),
// so rows that exceed the budget report that instead of running for
// hours.
const refTupleBudget = 8_000_000

func evalWith(db *relation.DB, sel *calculus.Selection, info *calculus.Info, strat engine.Strategy) (*relation.Relation, *stats.Counters, time.Duration, error) {
	st := &stats.Counters{}
	eng := engine.New(db, st)
	start := time.Now()
	res, err := eng.Eval(context.Background(), sel, info, engine.Options{Strategies: strat, MaxRefTuples: refTupleBudget})
	return res, st, time.Since(start), err
}

// overBudget reports whether an evaluation error was the budget guard.
func overBudget(err error) bool {
	return err != nil && strings.Contains(err.Error(), "exceeded")
}

// ---------------------------------------------------------------------
// E1 — Figure 1: sample database generation.

func runE1(w io.Writer, scales []int) error {
	fmt.Fprintln(w, "paper: Figure 1 declares the four-relation university database;")
	fmt.Fprintln(w, "here: generated synthetically at increasing scale (see DESIGN.md §5).")
	t := &table{header: []string{"scale", "employees", "papers", "courses", "timetable", "load"}}
	for _, n := range scales {
		start := time.Now()
		db, err := workload.University(workload.DefaultConfig(n))
		if err != nil {
			return err
		}
		el := time.Since(start)
		t.add(n,
			db.MustRelation("employees").Len(),
			db.MustRelation("papers").Len(),
			db.MustRelation("courses").Len(),
			db.MustRelation("timetable").Len(),
			el.Round(time.Microsecond))
	}
	t.write(w)
	return nil
}

// ---------------------------------------------------------------------
// E2 — Figure 2: the auxiliary structures built for the sample query.

func runE2(w io.Writer, scales []int) error {
	fmt.Fprintln(w, "paper: Figure 2 declares single lists (sl_prof, sl_p77, sl_csoph),")
	fmt.Fprintln(w, "indirect joins (ij_c_t, ij_e_t, ij_e_p) and indexes (ind_t_enr,")
	fmt.Fprintln(w, "ind_t_cnr, ind_p_enr); here: their measured sizes when collecting")
	fmt.Fprintln(w, "the sample query under strategy 1.")
	for _, n := range scales {
		db, sel, info, err := checkedSample(n)
		if err != nil {
			return err
		}
		_, st, _, err := evalWith(db, sel, info, engine.S1)
		if overBudget(err) {
			fmt.Fprintf(w, "scale %d: combination exceeds the %d ref-tuple budget (collection sizes below)\n", n, refTupleBudget)
		} else if err != nil {
			return err
		} else {
			fmt.Fprintf(w, "scale %d:\n", n)
		}
		t := &table{header: []string{"structure", "kind", "size"}}
		structs := append([]stats.StructStat(nil), st.Structures...)
		sort.Slice(structs, func(i, j int) bool {
			if structs[i].Kind != structs[j].Kind {
				return structs[i].Kind < structs[j].Kind
			}
			return structs[i].Name < structs[j].Name
		})
		for _, s := range structs {
			if s.Kind == "refrel" {
				continue // combination phase; E6 covers it
			}
			t.add(s.Name, s.Kind, s.Size)
		}
		t.write(w)
	}
	return nil
}

// ---------------------------------------------------------------------
// E3 — standardization of Example 2.1 into Example 2.2.

func runE3(w io.Writer, scales []int) error {
	fmt.Fprintln(w, "paper: Example 2.2 shows the sample query in prenex normal form with")
	fmt.Fprintln(w, "a three-conjunction DNF matrix under the prefix ALL p, SOME c, SOME t.")
	db, sel, _, err := checkedSample(10)
	if err != nil {
		return err
	}
	_ = db
	start := time.Now()
	sf, err := normalize.Standardize(sel, normalize.Options{})
	if err != nil {
		return err
	}
	el := time.Since(start)
	t := &table{header: []string{"measure", "value"}}
	var prefix []string
	for _, q := range sf.Prefix {
		prefix = append(prefix, q.String())
	}
	t.add("prefix", strings.Join(prefix, ", "))
	t.add("conjunctions", len(sf.Matrix))
	t.add("join terms", sf.NumTerms())
	t.add("standardization time", el.Round(time.Microsecond))
	t.write(w)
	fmt.Fprintf(w, "standard form:\n%s", sf)
	return nil
}

// ---------------------------------------------------------------------
// E4 — Lemma 1: empty-relation adaptation.

func runE4(w io.Writer, scales []int) error {
	fmt.Fprintln(w, "paper: with papers = [] the standard form must be adapted to return")
	fmt.Fprintln(w, "exactly the professors; the unadapted normal form would return all")
	fmt.Fprintln(w, "employees (Example 2.2). Rows compare the oracle with the engine.")
	scale := 20
	if len(scales) > 0 {
		scale = scales[0]
	}
	t := &table{header: []string{"condition", "employees", "professors", "oracle", "S0", "S1+S2+S3+S4"}}
	for _, cond := range []string{"papers=[]", "courses=[]", "papers=courses=[]"} {
		db, sel, info, err := checkedSample(scale)
		if err != nil {
			return err
		}
		if strings.Contains(cond, "papers") {
			if err := db.MustRelation("papers").Assign(nil); err != nil {
				return err
			}
		}
		if strings.Contains(cond, "courses") {
			if err := db.MustRelation("courses").Assign(nil); err != nil {
				return err
			}
		}
		profs := 0
		db.MustRelation("employees").Scan(func(_ value.Value, tup []value.Value) bool {
			if tup[2].EnumOrd() == workload.StatusProfessor {
				profs++
			}
			return true
		})
		oracle, err := baseline.Eval(sel, info, db)
		if err != nil {
			return err
		}
		r0, _, _, err := evalWith(db, sel, info, 0)
		if err != nil {
			return err
		}
		rAll, _, _, err := evalWith(db, sel, info, engine.AllStrategies)
		if err != nil {
			return err
		}
		t.add(cond, db.MustRelation("employees").Len(), profs, oracle.Len(), r0.Len(), rAll.Len())
	}
	t.write(w)
	return nil
}

// ---------------------------------------------------------------------
// E5 — Example 3.1: references and selected variables.

func runE5(w io.Writer, scales []int) error {
	fmt.Fprintln(w, "paper: Example 3.1 maintains a primary index enrindex associating key")
	fmt.Fprintln(w, "values with references @employees[enr]; here: selected-variable lookup")
	fmt.Fprintln(w, "cost vs a full scan, and stale-reference detection after deletion.")
	t := &table{header: []string{"scale", "lookups", "lookup time", "scan time", "stale detected"}}
	for _, n := range scales {
		db, err := workload.University(workload.DefaultConfig(n))
		if err != nil {
			return err
		}
		employees := db.MustRelation("employees")
		// rel[keyval] lookups for every key.
		start := time.Now()
		found := 0
		for i := 1; i <= n; i++ {
			if _, ok := employees.Lookup([]value.Value{value.Int(int64(i))}); ok {
				found++
			}
		}
		lookupTime := time.Since(start)
		// The equivalent via full scans.
		start = time.Now()
		for i := 1; i <= n; i++ {
			want := int64(i)
			employees.Scan(func(_ value.Value, tup []value.Value) bool {
				return tup[0].AsInt() != want
			})
		}
		scanTime := time.Since(start)
		// Stale reference detection.
		ref, _ := employees.Lookup([]value.Value{value.Int(1)})
		employees.Delete([]value.Value{value.Int(1)})
		_, err = employees.Deref(ref)
		stale := err != nil
		t.add(n, found, lookupTime.Round(time.Microsecond), scanTime.Round(time.Microsecond), stale)
	}
	t.write(w)
	return nil
}

// ---------------------------------------------------------------------
// E6 — Example 3.2: the three phases on the csoph/timetable fragment.

func runE6(w io.Writer, scales []int) error {
	fmt.Fprintln(w, "paper: Example 3.2 evaluates (c.clevel <= sophomore) AND (c.cnr =")
	fmt.Fprintln(w, "t.tcnr) via sl_csoph, ind_t_cnr, ij_c_t and a combination refrel;")
	fmt.Fprintln(w, "here: measured sizes of each phase's output.")
	t := &table{header: []string{"scale", "courses", "timetable", "single list", "index", "indirect join", "result", "time"}}
	for _, n := range scales {
		db, err := workload.University(workload.DefaultConfig(n))
		if err != nil {
			return err
		}
		sel, info, err := calculus.Check(workload.SubexprSelection(), db.Catalog())
		if err != nil {
			return err
		}
		res, st, el, err := evalWith(db, sel, info, engine.S1)
		if err != nil {
			return err
		}
		sl, ix, ij := 0, 0, 0
		for _, s := range st.Structures {
			switch s.Kind {
			case "single-list":
				sl += s.Size
			case "index":
				ix += s.Size
			case "indirect-join":
				ij += s.Size
			}
		}
		t.add(n, db.MustRelation("courses").Len(), db.MustRelation("timetable").Len(),
			sl, ix, ij, res.Len(), el.Round(time.Microsecond))
	}
	t.write(w)
	return nil
}

// ---------------------------------------------------------------------
// E7 — strategy 1: scan counts.

func runE7(w io.Writer, scales []int) error {
	fmt.Fprintln(w, "paper: \"each relation is accessed as many times as variables ranging")
	fmt.Fprintln(w, "over it occur in (different) join terms\" vs \"each range relation is")
	fmt.Fprintln(w, "read no more than once\" under strategy 1 (Examples 4.1/4.3).")
	t := &table{header: []string{"scale", "strategy", "total scans", "employees", "papers", "courses", "timetable", "tuples read", "time"}}
	for _, n := range scales {
		for _, strat := range []engine.Strategy{0, engine.S1} {
			db, sel, info, err := checkedSample(n)
			if err != nil {
				return err
			}
			_, st, el, err := evalWith(db, sel, info, strat)
			if overBudget(err) {
				t.add(n, strat, st.TotalScans(),
					st.BaseScans["employees"], st.BaseScans["papers"],
					st.BaseScans["courses"], st.BaseScans["timetable"],
					st.TuplesRead, "> budget")
				continue
			}
			if err != nil {
				return err
			}
			t.add(n, strat, st.TotalScans(),
				st.BaseScans["employees"], st.BaseScans["papers"],
				st.BaseScans["courses"], st.BaseScans["timetable"],
				st.TuplesRead, el.Round(time.Microsecond))
		}
	}
	t.write(w)
	return nil
}

// ---------------------------------------------------------------------
// E8 — strategy 2: monadic terms restrict indirect joins.

func runE8(w io.Writer, scales []int) error {
	fmt.Fprintln(w, "paper: Example 4.2 evaluates the csoph conjunction in one step; the")
	fmt.Fprintln(w, "monadic term restricts ij_c_t so single lists need not be built and")
	fmt.Fprintln(w, "the indirect join shrinks with the selectivity of clevel<=sophomore.")
	t := &table{header: []string{"scale", "soph frac", "strategy", "ij tuples", "single lists", "ref tuples", "time"}}
	scale := 60
	if len(scales) > 0 {
		scale = scales[len(scales)-1]
	}
	for _, frac := range []float64{0.1, 0.3, 0.5, 0.9} {
		for _, strat := range []engine.Strategy{engine.S1, engine.S1 | engine.S2} {
			cfg := workload.DefaultConfig(scale)
			cfg.SophFrac = frac
			db, err := workload.University(cfg)
			if err != nil {
				return err
			}
			sel, info, err := calculus.Check(workload.SampleSelection(), db.Catalog())
			if err != nil {
				return err
			}
			_, st, el, err := evalWith(db, sel, info, strat)
			if err != nil && !overBudget(err) {
				return err
			}
			ij, sl := 0, 0
			for _, s := range st.Structures {
				switch s.Kind {
				case "indirect-join":
					ij += s.Size
				case "single-list":
					sl++
				}
			}
			if overBudget(err) {
				t.add(scale, frac, strat, ij, sl, st.RefTuples, "> budget")
			} else {
				t.add(scale, frac, strat, ij, sl, st.RefTuples, el.Round(time.Microsecond))
			}
		}
	}
	t.write(w)
	return nil
}

// ---------------------------------------------------------------------
// E9 — strategy 3: extended range expressions.

func runE9(w io.Writer, scales []int) error {
	fmt.Fprintln(w, "paper: Example 4.5 extends the ranges of e, p, and c; one conjunction")
	fmt.Fprintln(w, "disappears and the indirect joins shrink considerably, with the most")
	fmt.Fprintln(w, "profit from the universally quantified variable p.")
	db, sel, _, err := checkedSample(10)
	if err != nil {
		return err
	}
	_ = db
	sf, err := normalize.Standardize(sel, normalize.Options{})
	if err != nil {
		return err
	}
	extracted, moved := optimizer.ExtractRanges(sf)
	t := &table{header: []string{"measure", "before S3", "after S3"}}
	t.add("conjunctions", len(sf.Matrix), len(extracted.Matrix))
	t.add("matrix join terms", sf.NumTerms(), extracted.NumTerms())
	extendedRanges := 0
	for _, q := range extracted.Prefix {
		if q.Range.Extended() {
			extendedRanges++
		}
	}
	for _, d := range extracted.Free {
		if d.Range.Extended() {
			extendedRanges++
		}
	}
	t.add("extended ranges", 0, extendedRanges)
	t.add("terms moved to ranges", "-", moved)
	t.write(w)

	t2 := &table{header: []string{"scale", "strategy", "ij tuples", "ref tuples", "peak refrel", "time"}}
	for _, n := range scales {
		for _, strat := range []engine.Strategy{engine.S1 | engine.S2, engine.S1 | engine.S2 | engine.S3} {
			db, sel, info, err := checkedSample(n)
			if err != nil {
				return err
			}
			_, st, el, err := evalWith(db, sel, info, strat)
			if err != nil && !overBudget(err) {
				return err
			}
			ij := 0
			for _, s := range st.Structures {
				if s.Kind == "indirect-join" {
					ij += s.Size
				}
			}
			if overBudget(err) {
				t2.add(n, strat, ij, st.RefTuples, st.PeakRefTuples, "> budget")
			} else {
				t2.add(n, strat, ij, st.RefTuples, st.PeakRefTuples, el.Round(time.Microsecond))
			}
		}
	}
	t2.write(w)
	return nil
}

// ---------------------------------------------------------------------
// E10 — strategy 4: quantifier evaluation in the collection phase.

func runE10(w io.Writer, scales []int) error {
	fmt.Fprintln(w, "paper: Example 4.7 resolves all three quantifiers in the collection")
	fmt.Fprintln(w, "phase through the cset/tset/pset value-list cascade; the combination")
	fmt.Fprintln(w, "phase then handles only monadic restrictions of employees.")
	db, sel, _, err := checkedSample(10)
	if err != nil {
		return err
	}
	_ = db
	sf, err := normalize.Standardize(sel, normalize.Options{})
	if err != nil {
		return err
	}
	extracted, _ := optimizer.ExtractRanges(sf)
	x := optimizer.FromStandardForm(extracted)
	eliminated := optimizer.EliminateQuantifiers(x)
	t := &table{header: []string{"measure", "value"}}
	t.add("quantifiers before S4", len(extracted.Prefix))
	t.add("quantifiers eliminated", eliminated)
	t.add("quantifiers remaining", len(x.Prefix))
	t.add("value-list specs", len(x.Specs))
	t.write(w)

	t2 := &table{header: []string{"scale", "strategy", "ref tuples", "peak refrel", "probes", "time"}}
	for _, n := range scales {
		for _, strat := range []engine.Strategy{engine.S1 | engine.S2 | engine.S3, engine.AllStrategies} {
			db, sel, info, err := checkedSample(n)
			if err != nil {
				return err
			}
			_, st, el, err := evalWith(db, sel, info, strat)
			if err != nil && !overBudget(err) {
				return err
			}
			if overBudget(err) {
				t2.add(n, strat, st.RefTuples, st.PeakRefTuples, st.IndexProbes, "> budget")
			} else {
				t2.add(n, strat, st.RefTuples, st.PeakRefTuples, st.IndexProbes, el.Round(time.Microsecond))
			}
		}
	}
	t2.write(w)
	return nil
}

// ---------------------------------------------------------------------
// E11 — the strategy ladder.

func runE11(w io.Writer, scales []int) error {
	fmt.Fprintln(w, "paper: section 4's overall claim — each strategy shifts work from the")
	fmt.Fprintln(w, "combination phase to the collection phase and reduces intermediate")
	fmt.Fprintln(w, "growth. naive = tuple substitution (\"queries evaluated directly as")
	fmt.Fprintln(w, "given by the user\").")
	t := &table{header: []string{"scale", "evaluator", "result", "total scans", "ref tuples", "peak refrel", "time"}}
	type entry struct {
		name  string
		strat engine.Strategy
		naive bool
	}
	ladder := []entry{
		{"naive", 0, true},
		{"S0", 0, false},
		{"S1", engine.S1, false},
		{"S1+S2", engine.S1 | engine.S2, false},
		{"S1+S2+S3", engine.S1 | engine.S2 | engine.S3, false},
		{"S1+S2+S3+S4", engine.AllStrategies, false},
	}
	for _, n := range scales {
		for _, e := range ladder {
			db, sel, info, err := checkedSample(n)
			if err != nil {
				return err
			}
			st := &stats.Counters{}
			db.SetStats(st)
			var res *relation.Relation
			start := time.Now()
			if e.naive {
				res, err = baseline.Eval(sel, info, db)
			} else {
				eng := engine.New(db, st)
				res, err = eng.Eval(context.Background(), sel, info, engine.Options{Strategies: e.strat, MaxRefTuples: refTupleBudget})
			}
			el := time.Since(start)
			if overBudget(err) {
				t.add(n, e.name, "-", st.TotalScans(), st.RefTuples, st.PeakRefTuples, "> budget")
				continue
			}
			if err != nil {
				return err
			}
			t.add(n, e.name, res.Len(), st.TotalScans(), st.RefTuples, st.PeakRefTuples, el.Round(time.Microsecond))
		}
	}
	t.write(w)
	return nil
}

// ---------------------------------------------------------------------
// E12 — the section 4.4 value-list refinements.

func runE12(w io.Writer, scales []int) error {
	fmt.Fprintln(w, "paper: for < and <= only one component value of vnrel must be stored")
	fmt.Fprintln(w, "(the maximum for SOME, the minimum for ALL); for = with ALL and <>")
	fmt.Fprintln(w, "with SOME at most one value matters. Stored size vs distinct values:")
	scale := 200
	if len(scales) > 0 {
		scale = scales[len(scales)-1] * 4
	}
	db := relation.NewDB()
	dom := schema.IntType("dom", 0, 1<<30)
	outer := db.MustCreate(schema.MustRelSchema("outer", []schema.Column{
		{Name: "k", Type: dom}, {Name: "v", Type: dom},
	}, []string{"k"}))
	inner := db.MustCreate(schema.MustRelSchema("inner", []schema.Column{
		{Name: "k", Type: dom}, {Name: "v", Type: dom},
	}, []string{"k"}))
	for i := 0; i < scale; i++ {
		if _, err := outer.Insert([]value.Value{value.Int(int64(i)), value.Int(int64(i % 97))}); err != nil {
			return err
		}
		if _, err := inner.Insert([]value.Value{value.Int(int64(i)), value.Int(int64(i % 89))}); err != nil {
			return err
		}
	}
	t := &table{header: []string{"quantifier", "op", "distinct values", "stored", "result", "time"}}
	for _, c := range []struct {
		q  string
		op string
	}{
		{"SOME", "<"}, {"ALL", "<"}, {"SOME", "<="}, {"ALL", ">="},
		{"ALL", "="}, {"SOME", "<>"}, {"SOME", "="}, {"ALL", "<>"},
	} {
		src := fmt.Sprintf(`[<o.k> OF EACH o IN outer: %s i IN inner (o.v %s i.v)]`, c.q, c.op)
		sel, err := parser.ParseSelection(src)
		if err != nil {
			return err
		}
		checked, info, err := calculus.Check(sel, db.Catalog())
		if err != nil {
			return err
		}
		st := &stats.Counters{}
		db.SetStats(st)
		eng := engine.New(db, st)
		start := time.Now()
		res, err := eng.Eval(context.Background(), checked, info, engine.Options{Strategies: engine.AllStrategies})
		el := time.Since(start)
		if err != nil {
			return err
		}
		stored, distinct := -1, 89
		for _, s := range st.Structures {
			if s.Kind == "value-list" {
				stored = s.Size
			}
		}
		t.add(c.q, c.op, distinct, stored, res.Len(), el.Round(time.Microsecond))
	}
	t.write(w)
	return nil
}

// ---------------------------------------------------------------------
// E13 — permanent access paths. The paper notes the index-building step
// "can be omitted, if permanent indexes exist" (section 3.2) and names
// integration with permanent access paths as ongoing research (section
// 5). With a maintained index on courses.cnr, the courses scan of a
// pure join disappears entirely.

func runE13(w io.Writer, scales []int) error {
	fmt.Fprintln(w, "paper: the collection phase's first step (index creation) can be")
	fmt.Fprintln(w, "omitted when permanent indexes exist; a scan serving only an index")
	fmt.Fprintln(w, "build disappears.")
	join := &calculus.Selection{
		Proj: []calculus.Field{{Var: "c", Col: "ctitle"}, {Var: "t", Col: "tenr"}, {Var: "t", Col: "tday"}},
		Free: []calculus.Decl{
			{Var: "c", Range: &calculus.RangeExpr{Rel: "courses"}},
			{Var: "t", Range: &calculus.RangeExpr{Rel: "timetable"}},
		},
		Pred: &calculus.Cmp{
			L: calculus.Field{Var: "c", Col: "cnr"}, Op: value.OpEq,
			R: calculus.Field{Var: "t", Col: "tcnr"},
		},
	}
	t := &table{header: []string{"scale", "index on courses.cnr", "courses scans", "timetable scans", "probes", "result", "time"}}
	for _, n := range scales {
		for _, withIndex := range []bool{false, true} {
			db, err := workload.University(workload.DefaultConfig(n))
			if err != nil {
				return err
			}
			if withIndex {
				if _, err := db.MustRelation("courses").CreateIndex("cnr"); err != nil {
					return err
				}
			}
			checked, info, err := calculus.Check(join, db.Catalog())
			if err != nil {
				return err
			}
			res, st, el, err := evalWith(db, checked, info, engine.S1|engine.S2)
			if err != nil {
				return err
			}
			t.add(n, withIndex, st.BaseScans["courses"], st.BaseScans["timetable"],
				st.IndexProbes, res.Len(), el.Round(time.Microsecond))
		}
	}
	t.write(w)
	return nil
}

// ---------------------------------------------------------------------
// E15 — the cost-based combination phase. The paper's processor orders
// scans statically (prefix right-to-left, then declaration order) and
// names smarter ordering as ongoing work (section 5). With per-relation
// statistics the planner scans bulky relations first and probes with the
// restricted sides, shrinking indirect joins and reference relations.

func runE15(w io.Writer, scales []int) error {
	fmt.Fprintln(w, "paper: scan order is static (spec priority, prefix right-to-left,")
	fmt.Fprintln(w, "declaration order); here: a selectivity estimator drives a greedy")
	fmt.Fprintln(w, "cost-based ordering, so restricted variables probe instead of being")
	fmt.Fprintln(w, "probed and indirect joins shrink by the predicate selectivities.")
	t := &table{header: []string{"scale", "planner", "scan order", "probes", "comparisons", "ref tuples", "result", "time"}}
	for _, n := range scales {
		for _, costBased := range []bool{false, true} {
			cfg := workload.DefaultConfig(n)
			cfg.ProfFrac = 0.2
			cfg.SophFrac = 0.3
			db, err := workload.University(cfg)
			if err != nil {
				return err
			}
			sel, info, err := calculus.Check(workload.JoinHeavySelection(), db.Catalog())
			if err != nil {
				return err
			}
			// Statistics are collected once, outside the timed region —
			// they amortize across a query workload.
			est := db.Analyze()
			st := &stats.Counters{}
			eng := engine.New(db, st)
			start := time.Now()
			res, err := eng.Eval(context.Background(), sel, info, engine.Options{
				Strategies: engine.S1 | engine.S2, MaxRefTuples: refTupleBudget,
				CostBased: costBased, Estimator: est,
			})
			el := time.Since(start)
			planner := "static"
			if costBased {
				planner = "cost-based"
			}
			if overBudget(err) {
				t.add(n, planner, strings.Join(st.PlanOrder, ">"), st.IndexProbes, st.Comparisons, st.RefTuples, "-", "> budget")
				continue
			}
			if err != nil {
				return err
			}
			t.add(n, planner, strings.Join(st.PlanOrder, ">"), st.IndexProbes, st.Comparisons,
				st.RefTuples, res.Len(), el.Round(time.Microsecond))
		}
	}
	t.write(w)
	return nil
}

// ---------------------------------------------------------------------
// E14 — the CNF range extension the paper proposes as future work in
// section 4.3: ranges narrow by the OR of per-conjunction monadic
// restrictions, which plain extraction cannot move.

func runE14(w io.Writer, scales []int) error {
	fmt.Fprintln(w, "paper: \"the use of the more general conjunctive normal form is")
	fmt.Fprintln(w, "expected to improve further the efficiency of the system\" (4.3).")
	fmt.Fprintln(w, "Query: employees who teach on Monday or on Friday; the day tests")
	fmt.Fprintln(w, "land in different conjunctions, so only the disjunctive (CNF) form")
	fmt.Fprintln(w, "narrows timetable's range — the index side of the join shrinks.")
	t := &table{header: []string{"scale", "strategy", "ij tuples", "ref tuples", "tuples read", "time"}}
	for _, n := range scales {
		for _, strat := range []engine.Strategy{engine.S1 | engine.S2 | engine.S3,
			engine.S1 | engine.S2 | engine.S3 | engine.SCNF} {
			db, err := workload.University(workload.DefaultConfig(n))
			if err != nil {
				return err
			}
			sel, info, err := calculus.Check(workload.DisjunctiveSelection(), db.Catalog())
			if err != nil {
				return err
			}
			_, st, el, err := evalWith(db, sel, info, strat)
			if err != nil {
				return err
			}
			ij := 0
			for _, s := range st.Structures {
				if s.Kind == "indirect-join" {
					ij += s.Size
				}
			}
			t.add(n, strat, ij, st.RefTuples, st.TuplesRead, el.Round(time.Microsecond))
		}
	}
	t.write(w)
	return nil
}
