package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestAllExperimentsRun executes every experiment at a small scale and
// checks for the key claims in the output.
func TestAllExperimentsRun(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("all", &buf, []int{8}); err != nil {
		t.Fatalf("%v\noutput so far:\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"==== E1", "==== E13", "==== E14", "==== E15",
		"cost-based", // E15
		"ALL p IN papers, SOME c IN courses, SOME t IN timetable", // E3
		"indirect-join", // E2
		"value-list",    // E2/E10
		"stale",         // E5 header
		"naive",         // E11
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("E99", &buf, []int{5}); err == nil {
		t.Errorf("unknown experiment accepted")
	}
}

func TestExperimentList(t *testing.T) {
	if len(All()) != 15 {
		t.Errorf("expected 15 experiments, got %d", len(All()))
	}
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil || e.Title == "" {
			t.Errorf("%s incomplete", e.ID)
		}
	}
}

// TestE4AdaptationNumbers pins the Lemma 1 experiment's correctness
// claim: engine row counts equal the oracle's in every condition.
func TestE4AdaptationNumbers(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("E4", &buf, []int{15}); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if !strings.Contains(line, "=[]") {
			continue
		}
		fields := strings.Fields(line)
		// condition, employees, professors, oracle, S0, all
		if len(fields) >= 6 && (fields[3] != fields[4] || fields[4] != fields[5]) {
			t.Errorf("engine disagrees with oracle: %s", line)
		}
	}
}
