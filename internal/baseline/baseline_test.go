package baseline

import (
	"sort"
	"testing"

	"pascalr/internal/calculus"
	"pascalr/internal/relation"
	"pascalr/internal/stats"
	"pascalr/internal/value"
	"pascalr/internal/workload"
)

// tinyUniversity builds a hand-checkable Figure 1 instance:
//
//	employees: ada(1,prof), bob(2,student), cyd(3,prof), dan(4,prof)
//	papers:    t1 by ada in 1977; t2 by cyd in 1980
//	courses:   10 sophomore, 11 senior
//	timetable: ada teaches 11 (senior); cyd teaches 10 (sophomore)
//
// Example 2.1 asks for professors who published no 1977 paper or teach a
// course at sophomore level or below: cyd (no 1977 paper, and also
// teaches sophomore), dan (no papers at all). ada published in 1977 and
// teaches only a senior course, so she is out.
func tinyUniversity(t *testing.T) *relation.DB {
	t.Helper()
	db := relation.NewDB()
	if err := workload.DefineSchema(db, workload.DefaultConfig(10)); err != nil {
		t.Fatal(err)
	}
	ins := func(rel string, tuples ...[]value.Value) {
		r := db.MustRelation(rel)
		for _, tup := range tuples {
			if _, err := r.Insert(tup); err != nil {
				t.Fatalf("insert %s: %v", rel, err)
			}
		}
	}
	ins("employees",
		[]value.Value{value.Int(1), value.String_("ada"), value.Enum("statustype", workload.StatusProfessor)},
		[]value.Value{value.Int(2), value.String_("bob"), value.Enum("statustype", workload.StatusStudent)},
		[]value.Value{value.Int(3), value.String_("cyd"), value.Enum("statustype", workload.StatusProfessor)},
		[]value.Value{value.Int(4), value.String_("dan"), value.Enum("statustype", workload.StatusProfessor)},
	)
	ins("papers",
		[]value.Value{value.Int(1), value.Int(1977), value.String_("t1")},
		[]value.Value{value.Int(3), value.Int(1980), value.String_("t2")},
	)
	ins("courses",
		[]value.Value{value.Int(10), value.Enum("leveltype", workload.LevelSophomore), value.String_("c10")},
		[]value.Value{value.Int(11), value.Enum("leveltype", workload.LevelSenior), value.String_("c11")},
	)
	ins("timetable",
		[]value.Value{value.Int(1), value.Int(11), value.Enum("daytype", 0), value.Int(9000900), value.String_("R1")},
		[]value.Value{value.Int(3), value.Int(10), value.Enum("daytype", 1), value.Int(9000900), value.String_("R2")},
	)
	return db
}

// names extracts the single string column of a result, sorted.
func names(t *testing.T, rel *relation.Relation) []string {
	t.Helper()
	var out []string
	for _, tup := range rel.Tuples() {
		out = append(out, tup[0].AsString())
	}
	sort.Strings(out)
	return out
}

func evalSample(t *testing.T, db *relation.DB, sel *calculus.Selection) *relation.Relation {
	t.Helper()
	checked, info, err := calculus.Check(sel, db.Catalog())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Eval(checked, info, db)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestPaperExampleByHand(t *testing.T) {
	db := tinyUniversity(t)
	res := evalSample(t, db, workload.SampleSelection())
	got := names(t, res)
	want := []string{"cyd", "dan"}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("Example 2.1 = %v, want %v", got, want)
	}
}

func TestEmptyPapersMakesAllProfessorsQualify(t *testing.T) {
	db := tinyUniversity(t)
	if err := db.MustRelation("papers").Assign(nil); err != nil {
		t.Fatal(err)
	}
	res := evalSample(t, db, workload.SampleSelection())
	got := names(t, res)
	want := []string{"ada", "cyd", "dan"}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Errorf("with papers=[] got %v, want %v", got, want)
	}
}

func TestEmptyCoursesDisablesSomeBranch(t *testing.T) {
	db := tinyUniversity(t)
	if err := db.MustRelation("courses").Assign(nil); err != nil {
		t.Fatal(err)
	}
	// Only the ALL p branch can qualify now: cyd and dan.
	res := evalSample(t, db, workload.SampleSelection())
	got := names(t, res)
	if len(got) != 2 || got[0] != "cyd" || got[1] != "dan" {
		t.Errorf("with courses=[] got %v", got)
	}
}

func TestSubexpressionSelection(t *testing.T) {
	db := tinyUniversity(t)
	res := evalSample(t, db, workload.SubexprSelection())
	// Only course 10 is sophomore; only cyd teaches it: one pair.
	if res.Len() != 1 {
		t.Errorf("Example 3.2 fragment returned %d rows", res.Len())
	}
	tup := res.Tuples()[0]
	if tup[0].AsInt() != 10 || tup[1].AsInt() != 3 {
		t.Errorf("Example 3.2 fragment = %v", tup)
	}
}

func TestExtendedRangeSemantics(t *testing.T) {
	db := tinyUniversity(t)
	// Professors via an extended free range instead of a monadic term.
	sel := &calculus.Selection{
		Proj: []calculus.Field{{Var: "e", Col: "ename"}},
		Free: []calculus.Decl{{Var: "e", Range: &calculus.RangeExpr{
			Rel: "employees", FilterVar: "e",
			Filter: &calculus.Cmp{
				L:  calculus.Field{Var: "e", Col: "estatus"},
				Op: value.OpEq,
				R:  calculus.Label{Name: "professor"},
			},
		}}},
	}
	got := names(t, evalSample(t, db, sel))
	if len(got) != 3 || got[0] != "ada" || got[1] != "cyd" || got[2] != "dan" {
		t.Errorf("extended range professors = %v", got)
	}
}

func TestQuantifierEmptyRangeSemantics(t *testing.T) {
	db := tinyUniversity(t)
	if err := db.MustRelation("papers").Assign(nil); err != nil {
		t.Fatal(err)
	}
	env := Env{}
	someEmpty := &calculus.Quant{Var: "p", Range: &calculus.RangeExpr{Rel: "papers"}, Body: &calculus.Lit{Val: true}}
	ok, err := EvalFormula(someEmpty, env, db)
	if err != nil || ok {
		t.Errorf("SOME over empty = %v, %v; want false", ok, err)
	}
	allEmpty := &calculus.Quant{All: true, Var: "p", Range: &calculus.RangeExpr{Rel: "papers"}, Body: &calculus.Lit{Val: false}}
	ok, err = EvalFormula(allEmpty, env, db)
	if err != nil || !ok {
		t.Errorf("ALL over empty = %v, %v; want true", ok, err)
	}
}

func TestNotAndConnectives(t *testing.T) {
	db := tinyUniversity(t)
	env := Env{}
	tr := &calculus.Lit{Val: true}
	fa := &calculus.Lit{Val: false}
	cases := []struct {
		f    calculus.Formula
		want bool
	}{
		{&calculus.Not{F: tr}, false},
		{&calculus.Not{F: fa}, true},
		{calculus.NewAnd(tr, tr), true},
		{&calculus.And{Fs: []calculus.Formula{tr, fa}}, false},
		{&calculus.Or{Fs: []calculus.Formula{fa, tr}}, true},
		{&calculus.Or{Fs: []calculus.Formula{fa, fa}}, false},
		{nil, true}, // nil predicate means TRUE
	}
	for i, c := range cases {
		got, err := EvalFormula(c.f, env, db)
		if err != nil || got != c.want {
			t.Errorf("case %d: = %v, %v; want %v", i, got, err, c.want)
		}
	}
}

func TestScanCountsReflectNaiveCost(t *testing.T) {
	db := tinyUniversity(t)
	st := &stats.Counters{}
	db.SetStats(st)
	evalSample(t, db, workload.SampleSelection())
	// The naive evaluator scans employees once, and papers once per
	// employee (4). courses/timetable scans depend on short-circuiting;
	// they must be at least 1.
	if st.BaseScans["employees"] != 1 {
		t.Errorf("employees scans = %d", st.BaseScans["employees"])
	}
	if st.BaseScans["papers"] < 3 {
		t.Errorf("papers scans = %d, want one per professor at least", st.BaseScans["papers"])
	}
}

func TestEvalErrors(t *testing.T) {
	db := tinyUniversity(t)
	env := Env{}
	// Unknown relation in a quantifier range.
	q := &calculus.Quant{Var: "x", Range: &calculus.RangeExpr{Rel: "ghost"}, Body: &calculus.Lit{Val: true}}
	if _, err := EvalFormula(q, env, db); err == nil {
		t.Errorf("unknown relation accepted")
	}
	// Unbound variable.
	c := &calculus.Cmp{L: calculus.Field{Var: "z", Col: "enr"}, Op: value.OpEq, R: calculus.Const{Val: value.Int(1)}}
	if _, err := EvalFormula(c, env, db); err == nil {
		t.Errorf("unbound variable accepted")
	}
	// Unresolved label (selection not checked).
	lbl := &calculus.Cmp{L: calculus.Label{Name: "professor"}, Op: value.OpEq, R: calculus.Const{Val: value.Int(1)}}
	if _, err := EvalFormula(lbl, env, db); err == nil {
		t.Errorf("unresolved label accepted")
	}
}

func TestResultIsSet(t *testing.T) {
	db := tinyUniversity(t)
	// Project estatus of all employees: duplicates must collapse.
	sel := &calculus.Selection{
		Proj: []calculus.Field{{Var: "e", Col: "estatus"}},
		Free: []calculus.Decl{{Var: "e", Range: &calculus.RangeExpr{Rel: "employees"}}},
	}
	res := evalSample(t, db, sel)
	if res.Len() != 2 { // professor and student
		t.Errorf("distinct statuses = %d, want 2", res.Len())
	}
}
