package baseline

import (
	"fmt"

	"pascalr/internal/calculus"
	"pascalr/internal/relation"
	"pascalr/internal/value"
)

// RangeEmpty reports whether a range expression denotes the empty set:
// an empty base relation, or an extended range whose filter rejects
// every element. This is the runtime information the paper's compiler
// arranges to have available for adapting the standard form (Lemma 1).
func RangeEmpty(db *relation.DB, r *calculus.RangeExpr) (bool, error) {
	rel, ok := db.Relation(r.Rel)
	if !ok {
		return false, fmt.Errorf("baseline: unknown relation %s", r.Rel)
	}
	if !r.Extended() {
		return rel.Len() == 0, nil
	}
	empty := true
	var scanErr error
	sch := rel.Schema()
	rel.ScanStats(db.Stats(), func(_ value.Value, tuple []value.Value) bool {
		ok, err := EvalFormula(r.Filter, Env{r.FilterVar: {Tuple: tuple, Schema: sch}}, db)
		if err != nil {
			scanErr = err
			return false
		}
		if ok {
			empty = false
			return false
		}
		return true
	})
	return empty, scanErr
}

// Emptiness returns a Fold-compatible callback over db. Errors inside
// the callback conservatively report the range as non-empty; the
// subsequent evaluation will surface the error.
func Emptiness(db *relation.DB) func(*calculus.RangeExpr) bool {
	return func(r *calculus.RangeExpr) bool {
		empty, err := RangeEmpty(db, r)
		return err == nil && empty
	}
}
