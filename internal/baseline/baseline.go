// Package baseline evaluates checked selections by direct tuple
// substitution: nested loops over the range relations of the free
// variables, with quantifiers evaluated recursively by scanning their
// range relations for every binding of the outer variables.
//
// This is the strategy the paper contrasts itself against ("many systems
// evaluate queries directly as given by the user") and serves two roles
// here: it is the performance baseline of the experiments, and — because
// it implements the calculus semantics with no transformations at all —
// it is the correctness oracle for the phase-structured engine under
// every optimization level.
package baseline

import (
	"fmt"

	"pascalr/internal/calculus"
	"pascalr/internal/relation"
	"pascalr/internal/schema"
	"pascalr/internal/stats"
	"pascalr/internal/value"
)

// Binding associates a variable with the tuple it currently denotes.
type Binding struct {
	Tuple  []value.Value
	Schema *schema.RelSchema
}

// Env maps range-coupled variables to their current bindings.
type Env map[string]Binding

// Eval evaluates a checked selection (as returned by calculus.Check)
// against the database and returns the result as a fresh relation with
// the given schema. Scans of base relations are counted through the
// database's attached stats sink.
func Eval(sel *calculus.Selection, info *calculus.Info, db *relation.DB) (*relation.Relation, error) {
	return EvalStats(sel, info, db, db.Stats())
}

// EvalStats is Eval with an explicit counter sink, so concurrent
// baseline evaluations can count into private sinks instead of racing
// on the database's attached one.
func EvalStats(sel *calculus.Selection, info *calculus.Info, db *relation.DB, st *stats.Counters) (*relation.Relation, error) {
	result := relation.New(info.Result, 0xFFFF)
	env := Env{}
	err := forEachRange(db, st, sel.Free, 0, env, func() error {
		ok, err := evalFormula(sel.Pred, env, db, st)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		tuple := make([]value.Value, len(sel.Proj))
		for i, p := range sel.Proj {
			v, err := operandValue(p, env)
			if err != nil {
				return err
			}
			tuple[i] = v
		}
		_, err = result.Insert(tuple)
		return err
	})
	if err != nil {
		return nil, err
	}
	return result, nil
}

// forEachRange enumerates all combinations of bindings for the declared
// free variables, invoking body for each.
func forEachRange(db *relation.DB, st *stats.Counters, decls []calculus.Decl, i int, env Env, body func() error) error {
	if i == len(decls) {
		return body()
	}
	d := decls[i]
	return scanRange(db, st, d.Range, func(tuple []value.Value, sch *schema.RelSchema) error {
		env[d.Var] = Binding{Tuple: tuple, Schema: sch}
		defer delete(env, d.Var)
		return forEachRange(db, st, decls, i+1, env, body)
	})
}

// scanRange scans a (possibly extended) range expression, invoking fn
// with each qualifying element.
func scanRange(db *relation.DB, st *stats.Counters, r *calculus.RangeExpr, fn func([]value.Value, *schema.RelSchema) error) error {
	rel, ok := db.Relation(r.Rel)
	if !ok {
		return fmt.Errorf("baseline: unknown relation %s", r.Rel)
	}
	sch := rel.Schema()
	var scanErr error
	rel.ScanStats(st, func(_ value.Value, tuple []value.Value) bool {
		if r.Extended() {
			env := Env{r.FilterVar: {Tuple: tuple, Schema: sch}}
			ok, err := evalFormula(r.Filter, env, db, st)
			if err != nil {
				scanErr = err
				return false
			}
			if !ok {
				return true
			}
		}
		if err := fn(tuple, sch); err != nil {
			scanErr = err
			return false
		}
		return true
	})
	return scanErr
}

// EvalFormula evaluates a formula under an environment binding its free
// variables, counting against the database's attached sink. Quantifiers
// scan their range relation; SOME over an empty range is false and ALL
// over an empty range is true, matching the calculus semantics that
// Lemma 1 is about.
func EvalFormula(f calculus.Formula, env Env, db *relation.DB) (bool, error) {
	return evalFormula(f, env, db, db.Stats())
}

// evalFormula is EvalFormula against an explicit sink.
func evalFormula(f calculus.Formula, env Env, db *relation.DB, st *stats.Counters) (bool, error) {
	switch g := f.(type) {
	case nil:
		return true, nil
	case *calculus.Lit:
		return g.Val, nil
	case *calculus.Cmp:
		l, err := operandValue(g.L, env)
		if err != nil {
			return false, err
		}
		r, err := operandValue(g.R, env)
		if err != nil {
			return false, err
		}
		return g.Op.Apply(l, r)
	case *calculus.Not:
		ok, err := evalFormula(g.F, env, db, st)
		return !ok, err
	case *calculus.And:
		for _, sub := range g.Fs {
			ok, err := evalFormula(sub, env, db, st)
			if err != nil || !ok {
				return false, err
			}
		}
		return true, nil
	case *calculus.Or:
		for _, sub := range g.Fs {
			ok, err := evalFormula(sub, env, db, st)
			if err != nil || ok {
				return ok, err
			}
		}
		return false, nil
	case *calculus.Quant:
		result := g.All // ALL starts true, SOME starts false
		err := scanRange(db, st, g.Range, func(tuple []value.Value, sch *schema.RelSchema) error {
			env[g.Var] = Binding{Tuple: tuple, Schema: sch}
			defer delete(env, g.Var)
			ok, err := evalFormula(g.Body, env, db, st)
			if err != nil {
				return err
			}
			if g.All && !ok {
				result = false
				return errStop
			}
			if !g.All && ok {
				result = true
				return errStop
			}
			return nil
		})
		if err != nil && err != errStop {
			return false, err
		}
		return result, nil
	default:
		return false, fmt.Errorf("baseline: unknown formula node %T", f)
	}
}

// errStop terminates a quantifier's range scan early once its result is
// decided.
var errStop = fmt.Errorf("stop")

func operandValue(o calculus.Operand, env Env) (value.Value, error) {
	switch op := o.(type) {
	case calculus.Field:
		b, ok := env[op.Var]
		if !ok {
			return value.Value{}, fmt.Errorf("baseline: unbound variable %s", op.Var)
		}
		ci, ok := b.Schema.ColIndex(op.Col)
		if !ok {
			return value.Value{}, fmt.Errorf("baseline: relation %s has no component %s", b.Schema.Name, op.Col)
		}
		return b.Tuple[ci], nil
	case calculus.Const:
		return op.Val, nil
	default:
		return value.Value{}, fmt.Errorf("baseline: unresolved operand %s (selection not checked?)", o)
	}
}
