package relation

import "pascalr/internal/obs"

// The checkpoint is driven from this layer (it spans memtable flushes,
// the manifest commit, and the WAL reset), so its duration histogram is
// registered here; it reports on storage and is named accordingly.
var mCheckpointLatency = obs.GetHistogram("pascal_storage_checkpoint_seconds",
	"Checkpoint duration (flushes, manifest write, WAL reset, file cleanup)")
