package relation

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"pascalr/internal/schema"
	"pascalr/internal/storage"
	"pascalr/internal/value"
)

// benchWideSchema mirrors wideSchema for benchmarks: a roomy key range
// so benchmark-sized workloads never exhaust the domain.
func benchWideSchema(name string) *schema.RelSchema {
	return schema.MustRelSchema(name, []schema.Column{
		{Name: "id", Type: schema.IntType("widetype", 1, 1<<30)},
		{Name: "payload", Type: schema.StringType("padtype", 32)},
	}, []string{"id"})
}

// BenchmarkGroupCommit measures SyncAlways insert throughput as writer
// concurrency grows. With one writer every record pays its own fsync;
// with several, concurrent commits coalesce behind a single leader
// sync, so per-insert latency must fall well below the lone-writer
// price. CI converts the output to BENCH_storage_tier.json and expects
// the 8-writer leg to be at least 2x the 1-writer throughput.
func BenchmarkGroupCommit(b *testing.B) {
	for _, writers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("writers=%d", writers), func(b *testing.B) {
			benchGroupCommit(b, writers)
		})
	}
}

func benchGroupCommit(b *testing.B, writers int) {
	opts := storage.Options{
		Fsync:              storage.SyncAlways,
		MemtableEntries:    1 << 20, // keep spills out of the timing
		CheckpointWALBytes: -1,
	}
	d, err := OpenDB(b.TempDir(), opts)
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	r, err := d.Create(benchWideSchema("wide"))
	if err != nil {
		b.Fatal(err)
	}
	var next atomic.Int64
	var failed atomic.Bool
	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := w; k < b.N; k += writers {
				if _, err := r.Insert(wrow(next.Add(1), "pad")); err != nil {
					failed.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	b.StopTimer()
	if failed.Load() {
		b.Fatal("insert failed under concurrency")
	}
	if r.Len() != int(next.Load()) {
		b.Fatalf("row count %d, want %d", r.Len(), next.Load())
	}
}

// BenchmarkParallelReplay times cold-start recovery of a crash image
// holding four relations' worth of uncheckpointed WAL, replayed
// serially versus partitioned across workers. CI converts the output
// to BENCH_storage_tier.json.
func BenchmarkParallelReplay(b *testing.B) {
	b.Run("serial", func(b *testing.B) { benchParallelReplay(b, -1) })
	b.Run("parallel", func(b *testing.B) { benchParallelReplay(b, 8) })
}

func benchParallelReplay(b *testing.B, workers int) {
	opts := storage.Options{
		Fsync:              storage.SyncNever,
		MemtableEntries:    256,
		CheckpointWALBytes: -1, // never checkpoint: keep the full WAL live
	}
	src := b.TempDir()
	d, err := OpenDB(src, opts)
	if err != nil {
		b.Fatal(err)
	}
	const relCount, rowsPerRel = 4, 1024
	rels := make([]*Relation, relCount)
	for i := range rels {
		r, err := d.Create(benchWideSchema(fmt.Sprintf("wide%d", i)))
		if err != nil {
			b.Fatal(err)
		}
		rels[i] = r
	}
	for i := 0; i < rowsPerRel; i++ { // interleaved so partitions stay even
		for _, r := range rels {
			if _, err := r.Insert(wrow(int64(i+1), "pad")); err != nil {
				b.Fatal(err)
			}
		}
	}
	for _, r := range rels {
		for i := 7; i <= rowsPerRel; i += 7 {
			if !r.Delete([]value.Value{value.Int(int64(i))}) {
				b.Fatalf("delete %d ineffective", i)
			}
		}
	}
	if err := d.dur.wal.Sync(); err != nil {
		b.Fatal(err)
	}
	// No Close: Close checkpoints and would leave nothing to replay.
	d.Quiesce()

	files, err := os.ReadDir(src)
	if err != nil {
		b.Fatal(err)
	}
	ropts := opts
	ropts.ReplayWorkers = workers
	want := rowsPerRel - rowsPerRel/7
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := filepath.Join(b.TempDir(), "copy")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			b.Fatal(err)
		}
		for _, f := range files {
			data, err := os.ReadFile(filepath.Join(src, f.Name()))
			if err != nil {
				b.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dir, f.Name()), data, 0o644); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		rd, err := OpenDB(dir, ropts)
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		for ri := range rels {
			if rr, _ := rd.Relation(fmt.Sprintf("wide%d", ri)); rr.Len() != want {
				b.Fatalf("wide%d recovered %d rows, want %d", ri, rr.Len(), want)
			}
		}
		rd.Close()
		b.StartTimer()
	}
	b.ReportMetric(float64(relCount*(rowsPerRel+rowsPerRel/7)+relCount), "records/op")
}
