package relation

import (
	"testing"

	"pascalr/internal/schema"
	"pascalr/internal/value"
)

func statsDB(t *testing.T) (*DB, *Relation) {
	t.Helper()
	db := NewDB()
	rel := db.MustCreate(schema.MustRelSchema("ev", []schema.Column{
		{Name: "k", Type: schema.IntType("kt", 0, 1<<20)},
		{Name: "v", Type: schema.IntType("vt", 0, 1<<20)},
	}, []string{"k"}))
	return db, rel
}

// TestLiveStatsFollowMutations: inserts, deletes, and assignments keep
// the relation's statistics current without any Analyze call.
func TestLiveStatsFollowMutations(t *testing.T) {
	db, rel := statsDB(t)
	for i := 0; i < 100; i++ {
		if _, err := rel.Insert([]value.Value{value.Int(int64(i)), value.Int(int64(i % 5))}); err != nil {
			t.Fatal(err)
		}
	}
	est := db.Estimator()
	if got := est.Card("ev"); got != 100 {
		t.Fatalf("live Card = %v, want 100", got)
	}
	if got := est.DistinctValues("ev", "v"); got != 5 {
		t.Fatalf("live distinct(v) = %v, want 5", got)
	}
	if got := est.SelectivityConst("ev", "v", value.OpEq, value.Int(3)); got != 0.2 {
		t.Fatalf("live eq selectivity = %v, want 0.2", got)
	}
	for i := 0; i < 40; i++ {
		if !rel.Delete([]value.Value{value.Int(int64(i))}) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if got := db.Estimator().Card("ev"); got != 60 {
		t.Fatalf("Card after deletes = %v, want 60", got)
	}
	if err := rel.Assign([][]value.Value{
		{value.Int(1), value.Int(9)},
		{value.Int(2), value.Int(9)},
	}); err != nil {
		t.Fatal(err)
	}
	est = db.Estimator()
	if got := est.Card("ev"); got != 2 {
		t.Fatalf("Card after assign = %v, want 2", got)
	}
	if got := est.DistinctValues("ev", "v"); got != 1 {
		t.Fatalf("distinct after assign = %v, want 1", got)
	}
	// No-op mutations leave the mutation counter alone.
	mut := rel.MutCount()
	rel.Delete([]value.Value{value.Int(42)}) // absent key
	if rel.MutCount() != mut {
		t.Fatal("no-op delete bumped the mutation counter")
	}
}

// TestStandaloneRelationHasNoStats: relations created outside a DB skip
// all statistics work, and AnalyzeRelation still summarizes them.
func TestStandaloneRelationHasNoStats(t *testing.T) {
	rel := New(schema.MustRelSchema("tmp", []schema.Column{
		{Name: "k", Type: schema.IntType("kt2", 0, 100)},
	}, []string{"k"}), 1)
	for i := 0; i < 10; i++ {
		if _, err := rel.Insert([]value.Value{value.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if rel.LiveStats() != nil {
		t.Fatal("standalone relation carries live statistics")
	}
	if w, _ := rel.SlotWeights(); w != nil {
		t.Fatal("standalone relation reported slot weights")
	}
	ts := AnalyzeRelation(rel)
	if ts.Rows() != 10 {
		t.Fatalf("AnalyzeRelation rows = %d, want 10", ts.Rows())
	}
}

// TestBackgroundRebuildOnDrift: heavy churn on a bucketed column
// schedules an asynchronous re-bucketing; after Close (quiesce) the
// drift is repaired without any explicit Analyze.
func TestBackgroundRebuildOnDrift(t *testing.T) {
	db, rel := statsDB(t)
	// Enough distinct values to degrade to buckets, then churn well past
	// the drift threshold.
	for i := 0; i < 3000; i++ {
		if _, err := rel.Insert([]value.Value{value.Int(int64(i)), value.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if rel.LiveStats().Drifted() {
		t.Fatal("drift not repaired by background rebuild after Close")
	}
	// The rebuilt statistics describe the current contents.
	est := db.Estimator()
	if got := est.Card("ev"); got != 3000 {
		t.Fatalf("Card after background rebuild = %v, want 3000", got)
	}
	sel := est.SelectivityConst("ev", "v", value.OpLt, value.Int(1500))
	if sel < 0.4 || sel > 0.6 {
		t.Fatalf("post-rebuild range selectivity = %v, want ~0.5", sel)
	}
}

// TestEstimatorSnapshotGranularity: mutating one relation refreshes
// only that relation's snapshot.
func TestEstimatorSnapshotGranularity(t *testing.T) {
	db, rel := statsDB(t)
	other := db.MustCreate(schema.MustRelSchema("other", []schema.Column{
		{Name: "k", Type: schema.IntType("kt3", 0, 100)},
	}, []string{"k"}))
	for i := 0; i < 20; i++ {
		if _, err := rel.Insert([]value.Value{value.Int(int64(i)), value.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
		if _, err := other.Insert([]value.Value{value.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	e1 := db.Estimator()
	if _, err := rel.Insert([]value.Value{value.Int(999), value.Int(0)}); err != nil {
		t.Fatal(err)
	}
	e2 := db.Estimator()
	if e2.Table("other") != e1.Table("other") {
		t.Fatal("mutating ev discarded other's snapshot")
	}
	if e2.Table("ev") == e1.Table("ev") {
		t.Fatal("mutating ev did not refresh its snapshot")
	}
}

// TestAnalyzeRefreshesSnapshots: a statistics rebuild changes no
// contents but must still invalidate cached estimator snapshots —
// otherwise Analyze (and drift rebuilds) would never reach planners.
func TestAnalyzeRefreshesSnapshots(t *testing.T) {
	db, rel := statsDB(t)
	for i := 0; i < 1000; i++ {
		if _, err := rel.Insert([]value.Value{value.Int(int64(i)), value.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	e1 := db.Estimator() // caches the pre-rebuild snapshot
	e2 := db.Analyze()
	if e2.Table("ev") == e1.Table("ev") {
		t.Fatal("Analyze returned the stale pre-rebuild snapshot")
	}
	if got := e2.Table("ev").Rows(); got != 1000 {
		t.Fatalf("rebuilt snapshot rows = %d, want 1000", got)
	}
}

// TestLiveStatsUnderAssignError: a failing Assign (bad tuple mid-way)
// must leave statistics consistent with the relation contents.
func TestLiveStatsUnderAssignError(t *testing.T) {
	db, rel := statsDB(t)
	if err := rel.Assign([][]value.Value{
		{value.Int(1), value.Int(1)},
		{value.Int(1), value.Int(2)}, // key collision with different components
	}); err == nil {
		t.Fatal("expected assign error")
	}
	if got, want := db.Estimator().Card("ev"), float64(rel.Len()); got != want {
		t.Fatalf("stats Card = %v, relation Len = %v after failed assign", got, want)
	}
}
