// Durable databases: OpenDB composes the storage package's pieces — a
// per-relation disk backend, the write-ahead log, and the checkpoint
// manifest — into a crash-recoverable DB.
//
// # Write path
//
// Every effective mutation (DDL included) appends one WAL record under
// the content write lock, after the in-memory apply: a crash between
// apply and append simply loses the not-yet-durable tail, and any
// SSTable a memtable flush wrote for unlogged appends is an orphan the
// next open removes before replay deterministically recreates it.
// Delete is the one exception — it logs before applying, because its
// boolean signature could not surface a WAL failure afterwards (see
// Relation.Delete). Assignments whose record would exceed the WAL's
// frame bound are logged as a chunk group that replay applies only
// when complete. A WAL append failure is sticky: the database fails
// stop (every later mutation and checkpoint returns the error) rather
// than let memory and log drift apart.
//
// # Recovery
//
// OpenDB loads the checkpoint manifest (schemas, SSTable metadata,
// permanent-index columns, serialized statistics), removes orphaned
// table files, and replays the WAL records with Seq beyond the
// manifest's LastSeq through the ordinary mutators — with logging and
// background maintenance suppressed — so indexes, statistics, and
// memtable flush points all land exactly where the live run put them.
// The recovered state is bit-for-bit the last durable state: a record
// is either wholly applied or (torn tail, CRC mismatch) wholly
// dropped, never half-applied.
//
// # Checkpoints
//
// A checkpoint flushes every memtable, writes a fresh manifest
// (tmp+rename), truncates the WAL, and unlinks superseded files. The
// WAL-size trigger schedules it on the database's async executor,
// single-flight; Close takes a final one.
package relation

import (
	"context"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"pascalr/internal/sched"
	"pascalr/internal/stats"
	"pascalr/internal/storage"
	"pascalr/internal/value"
)

// durable is the durability state of a database opened with OpenDB.
type durable struct {
	dir   string
	opts  storage.Options
	wal   *storage.WAL
	cache *storage.BlockCache // shared SSTable block cache (nil when disabled)
	seq   uint64              // last assigned log sequence number

	// err is the sticky durability failure: set when a WAL append or
	// its covering group-commit fsync fails. From then on the database
	// fails stop — every mutator and checkpoint returns it (so the
	// in-memory state cannot drift further from the durable one, and a
	// checkpoint cannot promote drifted state to durable truth) and
	// Close surfaces it. Guarded by its own mutex rather than the
	// content write lock: group-commit waiters observe fsync failures
	// after releasing the content lock.
	errMu sync.Mutex
	err   error
}

// sticky returns the recorded durability failure, if any.
func (du *durable) sticky() error {
	du.errMu.Lock()
	defer du.errMu.Unlock()
	return du.err
}

// setSticky records a durability failure; the first one wins.
func (du *durable) setSticky(err error) {
	du.errMu.Lock()
	if du.err == nil {
		du.err = err
	}
	du.errMu.Unlock()
}

// OpenDB opens (creating if needed) a durable database in dir and
// recovers it to its last durable state.
func OpenDB(dir string, opts storage.Options) (*DB, error) {
	opts = opts.Defaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	m, haveManifest, err := storage.ReadManifest(dir)
	if err != nil {
		return nil, err
	}
	// Drop table files no manifest references: flushes that outran the
	// last checkpoint (replay recreates them) and crashed checkpoints.
	if err := storage.CleanOrphans(dir, m); err != nil {
		return nil, err
	}
	d := NewDB()
	d.dur = &durable{dir: dir, opts: opts, cache: storage.NewBlockCache(opts.BlockCacheBytes)}
	d.replaying.Store(true)
	defer d.replaying.Store(false)
	var lastSeq uint64
	if haveManifest {
		lastSeq = m.LastSeq
		d.dur.seq = m.LastSeq
		for _, t := range m.Types {
			if err := d.cat.DefineType(t); err != nil {
				return nil, d.openFailed(err)
			}
		}
		for id, rm := range m.Rels {
			if err := d.openRelFromManifest(id, rm); err != nil {
				return nil, d.openFailed(err)
			}
		}
	}
	wal, payloads, err := storage.RecoverWAL(dir, opts.Fsync)
	if err != nil {
		return nil, d.openFailed(err)
	}
	d.dur.wal = wal
	recs, maxSeq, err := assembleReplay(payloads, lastSeq)
	if err != nil {
		return nil, d.openFailed(err)
	}
	if maxSeq > d.dur.seq {
		// Advance past every decoded seq — including a trailing torn
		// chunk group's — so new appends never reuse a sequence number
		// still physically present in the log.
		d.dur.seq = maxSeq
	}
	if opts.ReplayWorkers > 1 {
		err = d.replayParallel(recs, opts.ReplayWorkers)
	} else {
		err = d.replaySerial(recs)
	}
	if err != nil {
		return nil, d.openFailed(err)
	}
	return d, nil
}

// assembleReplay decodes the recovered WAL payloads into the records to
// replay: pre-checkpoint duplicates (Seq <= lastSeq) are dropped, and
// assignment chunk groups (storage.SplitRecord) are buffered until
// their final chunk arrives and assembled into one record. A group the
// log tears mid-way — every buffered chunk without its final one — is
// never applied.
func assembleReplay(payloads [][]byte, lastSeq uint64) (recs []storage.Record, maxSeq uint64, _ error) {
	pendRel := -1
	var pendTuples [][]value.Value
	for _, p := range payloads {
		rec, err := storage.DecodeRecord(p)
		if err != nil {
			return nil, 0, fmt.Errorf("relation: WAL replay: %w", err)
		}
		if rec.Seq > maxSeq {
			maxSeq = rec.Seq
		}
		if rec.Seq <= lastSeq {
			// The record predates the checkpoint: a crash between the
			// manifest rename and the WAL truncation left it behind.
			// LastSeq makes replay idempotent. A checkpoint cannot split
			// a chunk group (both run under the content write lock), so
			// a group is skipped or replayed in full.
			continue
		}
		if rec.Op == storage.OpAssign {
			if rec.Cont && (pendRel != rec.Rel || pendTuples == nil) {
				return nil, 0, fmt.Errorf("relation: WAL replay seq %d: orphan assignment chunk", rec.Seq)
			}
			if !rec.Cont {
				pendRel, pendTuples = rec.Rel, nil
			}
			pendTuples = append(pendTuples, rec.Tuples...)
			if rec.More {
				continue
			}
			rec.Tuples = pendTuples
		}
		// Any complete record ends the open group: chunks of one group
		// are contiguous, so a buffered prefix followed by anything else
		// is a stale torn group an earlier crash left behind.
		pendRel, pendTuples = -1, nil
		recs = append(recs, rec)
	}
	// A trailing incomplete group (crash mid-assignment) is dropped:
	// the assignment never becomes durable, though maxSeq still covers
	// its chunks' sequence numbers.
	return recs, maxSeq, nil
}

// replaySerial applies the assembled records in log order through the
// ordinary mutators.
func (d *DB) replaySerial(recs []storage.Record) error {
	for _, rec := range recs {
		if err := d.applyRecord(rec); err != nil {
			return fmt.Errorf("relation: WAL replay seq %d: %w", rec.Seq, err)
		}
	}
	return nil
}

// replayParallel partitions the assembled records by relation and
// applies the partitions concurrently, one worker per relation at a
// time, on a bounded sched pool.
//
// Correctness rests on two orders being preserved. DDL that shapes the
// catalog (DefineType, CreateRel) applies serially first, in log order
// — relation IDs are assigned by creation order, and every mutation of
// a relation follows its creation in the log, so hoisting creation
// cannot reorder anything observable. Everything else — mutations AND
// CreateIndex, whose backfill-then-maintain semantics depend on its
// position among the relation's mutations — keeps its log order within
// its relation's queue. Queues touch disjoint state: each replay job
// owns its relation outright (backend, indexes, statistics), and the
// cross-relation state the lock-free cores touch (live counts, version,
// statistics epoch) is atomic. Background maintenance is suppressed by
// the replaying flag exactly as in serial replay. The result is
// fingerprint-identical to serial replay: per-relation application
// order is equal, and no replayed effect depends on cross-relation
// interleaving.
func (d *DB) replayParallel(recs []storage.Record, workers int) error {
	byRel := make(map[int][]storage.Record)
	var order []int
	for _, rec := range recs {
		switch rec.Op {
		case storage.OpDefineType, storage.OpCreateRel:
			if err := d.applyRecord(rec); err != nil {
				return fmt.Errorf("relation: WAL replay seq %d: %w", rec.Seq, err)
			}
		default:
			if _, ok := byRel[rec.Rel]; !ok {
				order = append(order, rec.Rel)
			}
			byRel[rec.Rel] = append(byRel[rec.Rel], rec)
		}
	}
	jobs := make([]sched.Job, 0, len(order))
	for _, relID := range order {
		r, ok := d.ByID(relID)
		if !ok {
			return fmt.Errorf("relation: WAL replay: unknown relation id %d", relID)
		}
		queue := byRel[relID]
		jobs = append(jobs, sched.Job{
			Name: "replay:" + r.sch.Name,
			Run: func(ctx context.Context) error {
				for _, rec := range queue {
					if err := r.applyReplay(rec); err != nil {
						return fmt.Errorf("relation: WAL replay seq %d: %w", rec.Seq, err)
					}
				}
				return nil
			},
		})
	}
	return sched.Run(context.Background(), workers, jobs)
}

// openFailed releases whatever OpenDB had opened before failing.
func (d *DB) openFailed(err error) error {
	if d.dur.wal != nil {
		d.dur.wal.Close()
	}
	for _, r := range d.byID {
		r.store.Close()
	}
	return err
}

// openRelFromManifest reconstitutes one relation from its checkpointed
// state: disk backend, statistics, permanent indexes.
func (d *DB) openRelFromManifest(id int, rm storage.RelManifest) error {
	if err := d.cat.DefineRelation(rm.Schema); err != nil {
		return err
	}
	store, err := storage.OpenDisk(d.dur.dir, id, d.dur.opts, d.dur.cache, rm.Disk)
	if err != nil {
		return err
	}
	r := New(rm.Schema, id)
	r.store = store
	r.live.Store(int64(rm.Disk.Live))
	if len(rm.Stats) > 0 {
		ts, err := stats.Unmarshal(rm.Stats)
		if err != nil {
			store.Close()
			return fmt.Errorf("relation %s: checkpointed statistics: %w", rm.Schema.Name, err)
		}
		r.stTable = ts
	}
	d.catMu.Lock()
	if id != len(d.byID) {
		d.catMu.Unlock()
		store.Close()
		return fmt.Errorf("relation %s: manifest id %d out of order", rm.Schema.Name, id)
	}
	d.attach(r)
	d.catMu.Unlock()
	for _, col := range rm.Indexes {
		if _, err := r.CreateIndex(col); err != nil {
			return err
		}
	}
	return nil
}

// applyRecord replays one WAL record through the ordinary mutators
// (logging is suppressed by the replaying flag). Replay is strict:
// every logged record was effective when written, so a record that
// fails or no-ops now means a corrupt or inconsistent log.
func (d *DB) applyRecord(rec storage.Record) error {
	switch rec.Op {
	case storage.OpDefineType:
		return d.DefineType(rec.Type)
	case storage.OpCreateRel:
		_, err := d.Create(rec.Schema)
		return err
	case storage.OpCreateIndex:
		r, ok := d.ByID(rec.Rel)
		if !ok {
			return fmt.Errorf("unknown relation id %d", rec.Rel)
		}
		_, err := r.CreateIndex(rec.Col)
		return err
	case storage.OpInsert:
		r, ok := d.ByID(rec.Rel)
		if !ok {
			return fmt.Errorf("unknown relation id %d", rec.Rel)
		}
		_, err := r.Insert(rec.Tuple)
		return err
	case storage.OpDelete:
		r, ok := d.ByID(rec.Rel)
		if !ok {
			return fmt.Errorf("unknown relation id %d", rec.Rel)
		}
		if !r.Delete(rec.Key) {
			return fmt.Errorf("logged delete of absent key in %s", r.sch.Name)
		}
		return nil
	case storage.OpAssign:
		r, ok := d.ByID(rec.Rel)
		if !ok {
			return fmt.Errorf("unknown relation id %d", rec.Rel)
		}
		return r.Assign(rec.Tuples)
	}
	return fmt.Errorf("unknown WAL op %d", rec.Op)
}

// logRecord appends one record to the WAL, assigning it the next log
// sequence number, and returns the group-commit ticket covering the
// append (zero when nothing needs waiting). Callers hold the content
// write lock (mutators run under it), which also serializes the
// sequence counter; r is the mutated relation (nil for DDL that touches
// none) — passed explicitly because some callers also hold the catalog
// lock, so maintenance must not look it up. In-memory databases and
// replay no-op. Once a sticky durability error is recorded, every
// further logRecord fails with it.
//
// The append only writes the frame; under SyncAlways the caller must
// hand the ticket to waitDurable AFTER releasing the content write
// lock, so concurrent writers' fsyncs coalesce (see storage.WAL).
//
// Oversized assignments are split into a chunk group (storage.
// SplitRecord) appended contiguously under the lock; replay applies a
// group only when its final chunk is durable, so a crash mid-group
// drops the assignment wholly. The final chunk's ticket covers the
// whole group.
func (d *DB) logRecord(r *Relation, rec storage.Record) (storage.Ticket, error) {
	if d.dur == nil || d.replaying.Load() {
		return 0, nil
	}
	if err := d.dur.sticky(); err != nil {
		return 0, err
	}
	var tk storage.Ticket
	for _, rc := range storage.SplitRecord(rec) {
		d.dur.seq++
		rc.Seq = d.dur.seq
		payload, err := storage.EncodeRecord(rc)
		if err == nil {
			tk, err = d.dur.wal.Append(payload)
		}
		if err != nil {
			d.dur.setSticky(err)
			return 0, err
		}
	}
	d.maybeMaintain(r)
	return tk, nil
}

// waitDurable blocks until the WAL fsync covering the given ticket has
// completed — the group-commit rendezvous. Callers must NOT hold the
// content write lock (Delete is the documented exception): the whole
// point is that the fsync happens while other writers make progress
// under the lock, piling their frames into the same sync. A covering-
// sync failure is recorded as the database's sticky durability error.
func (d *DB) waitDurable(tk storage.Ticket) error {
	if d.dur == nil || tk == 0 {
		return nil
	}
	if err := d.dur.wal.WaitDurable(tk); err != nil {
		d.dur.setSticky(err)
		return err
	}
	return nil
}

// maybeMaintain schedules background storage maintenance after a logged
// mutation: a checkpoint when the WAL outgrew its budget (bounding
// replay time), and a compaction when the mutated relation's disk tier
// would reclaim enough dead records. Both run on the database's async
// executor, single-flight per key, and take the content write lock
// themselves.
func (d *DB) maybeMaintain(r *Relation) {
	if d.closed.Load() {
		return
	}
	if t := d.dur.opts.CheckpointWALBytes; t > 0 && d.dur.wal.Size() >= t {
		d.async.Submit("checkpoint", func() { d.Checkpoint() })
	}
	if r == nil {
		return
	}
	if disk, ok := r.store.(*storage.Disk); ok && disk.NeedsCompaction() {
		d.async.Submit("compact:"+r.sch.Name, func() {
			d.mu.Lock()
			defer d.mu.Unlock()
			disk.Compact()
		})
	}
}

// Checkpoint persists the database's complete current state — flushed
// memtables, a fresh manifest carrying schemas, SSTable metadata,
// index columns, and serialized statistics — then truncates the WAL
// and unlinks superseded table files. Recovery after a checkpoint
// replays only the records logged since. A no-op on in-memory
// databases. It also surfaces any sticky durability error recorded by
// mutators without an error channel.
func (d *DB) Checkpoint() error {
	if d.dur == nil {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.checkpointLocked()
}

func (d *DB) checkpointLocked() error {
	if d.dur == nil || d.dur.wal == nil {
		return nil
	}
	start := time.Now()
	defer func() { mCheckpointLatency.Observe(time.Since(start)) }()
	if err := d.dur.sticky(); err != nil {
		// A WAL append or fsync failed earlier: the in-memory state may
		// have drifted from the log. Checkpointing would persist that
		// drift as durable truth (and truncate the log) — refuse instead;
		// recovery from the intact WAL is the trustworthy state.
		return err
	}
	d.catMu.RLock()
	rels := append([]*Relation(nil), d.byID...)
	d.catMu.RUnlock()
	m := &storage.Manifest{LastSeq: d.dur.seq}
	for _, name := range d.cat.Types() {
		t, ok := d.cat.Type(name)
		if !ok {
			return fmt.Errorf("relation: checkpoint: type %s vanished", name)
		}
		m.Types = append(m.Types, t)
	}
	disks := make([]*storage.Disk, len(rels))
	for i, r := range rels {
		disk, ok := r.store.(*storage.Disk)
		if !ok {
			return fmt.Errorf("relation %s: not disk-backed", r.sch.Name)
		}
		if err := disk.Flush(); err != nil {
			return err
		}
		disks[i] = disk
		blob, err := r.stTable.Marshal()
		if err != nil {
			return err
		}
		ixCols := make([]string, 0, len(r.colIndexes))
		for col := range r.colIndexes {
			ixCols = append(ixCols, col)
		}
		sort.Strings(ixCols)
		m.Rels = append(m.Rels, storage.RelManifest{
			Schema: r.sch, Disk: disk.Meta(), Indexes: ixCols, Stats: blob,
		})
	}
	if err := storage.WriteManifest(d.dur.dir, m); err != nil {
		return err
	}
	// The durable manifest rename is the commit point: WriteManifest
	// returns only once the manifest (and, from their own writes, the
	// SSTables it references) survives power loss, so every logged
	// record is now redundant and the log can be truncated.
	if err := d.dur.wal.Reset(); err != nil {
		return err
	}
	// GC retired table files — but never one the manifest just made
	// durable truth (defense in depth: compaction retires tables before
	// the manifest drops them, so by construction none should appear) or
	// one an in-flight read still pins.
	referenced := make(map[string]bool)
	for _, rm := range m.Rels {
		for _, name := range rm.Disk.Tables {
			referenced[name] = true
		}
	}
	for _, disk := range disks {
		disk.DropObsolete(referenced)
	}
	return nil
}
