package relation

import (
	"pascalr/internal/stats"
)

// Analyze forces a statistics rebuild: every relation is rescanned and
// its live statistics replaced with freshly bucketed histograms (true
// quantile boundaries, exact distinct counts), then an estimator over
// the new statistics is returned.
//
// Analyze is no longer a prerequisite for cost-based planning — the
// mutators maintain the statistics incrementally and Estimator() serves
// them without any scan. It remains useful after churn heavy enough
// that the incrementally maintained bucket boundaries degraded (the
// drift threshold schedules the same rebuild in the background
// automatically), and as the explicit rebuild hook tests and tools
// reach for.
//
// The rebuild scans take the content lock per relation like any other
// reader — Analyze must not be called while holding the database read
// lock.
func (d *DB) Analyze() *stats.Estimator {
	d.catMu.RLock()
	rels := append([]*Relation(nil), d.byID...)
	d.catMu.RUnlock()
	for _, r := range rels {
		r.rebuildStats()
	}
	return d.Estimator()
}

// AnalyzeRelation rebuilds (and returns) one relation's statistics from
// a full scan, bypassing the relation's counter sink. For standalone
// relations — which maintain no live statistics — it returns a detached
// summary of the current contents.
func AnalyzeRelation(r *Relation) *stats.TableStats {
	return r.rebuildStats()
}
