package relation

import (
	"pascalr/internal/stats"
	"pascalr/internal/value"
)

// Analyze scans every relation once and returns an estimator over the
// database's current contents. The analysis scans are planning work, not
// query work, so they bypass the attached counter sink (ScanStats with a
// nil sink counts nothing), and they take the content lock per relation
// like any other reader — Analyze must not be called while holding the
// database read lock.
func (d *DB) Analyze() *stats.Estimator {
	d.catMu.RLock()
	rels := append([]*Relation(nil), d.byID...)
	d.catMu.RUnlock()
	est := stats.NewEstimator()
	for _, r := range rels {
		est.AddTable(AnalyzeRelation(r))
	}
	return est
}

// AnalyzeRelation summarizes one relation's current contents, bypassing
// the relation's counter sink.
func AnalyzeRelation(r *Relation) *stats.TableStats {
	sch := r.Schema()
	cols := make([]string, len(sch.Cols))
	for i, c := range sch.Cols {
		cols[i] = c.Name
	}
	ts := stats.NewTableStats(sch.Name, cols)
	r.ScanStats(nil, func(_ value.Value, tuple []value.Value) bool {
		ts.Observe(tuple)
		return true
	})
	return ts
}
