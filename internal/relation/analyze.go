package relation

import (
	"pascalr/internal/stats"
	"pascalr/internal/value"
)

// Analyze scans every relation once and returns an estimator over the
// database's current contents. The analysis scans are planning work, not
// query work, so they bypass the attached counter sink.
func (d *DB) Analyze() *stats.Estimator {
	est := stats.NewEstimator()
	for _, r := range d.byID {
		est.AddTable(AnalyzeRelation(r))
	}
	return est
}

// AnalyzeRelation summarizes one relation's current contents, bypassing
// the relation's counter sink.
func AnalyzeRelation(r *Relation) *stats.TableStats {
	sch := r.Schema()
	cols := make([]string, len(sch.Cols))
	for i, c := range sch.Cols {
		cols[i] = c.Name
	}
	ts := stats.NewTableStats(sch.Name, cols)
	prev := r.st
	r.SetStats(nil)
	r.Scan(func(_ value.Value, tuple []value.Value) bool {
		ts.Observe(tuple)
		return true
	})
	r.SetStats(prev)
	return ts
}
