package relation

import (
	"fmt"
	"sort"
	"sync"

	"pascalr/internal/stats"
	"pascalr/internal/storage"
	"pascalr/internal/value"
)

// ColIndex is a permanent index on one component of a relation,
// maintained under insert, delete, and assign. The paper's collection
// phase builds partial indexes on the fly but notes that "the first
// step can be omitted, if permanent indexes exist" (section 3.2), and
// names integration with permanent access paths as ongoing research
// (section 5); ColIndex is that access path.
//
// Mutations happen under the database content write lock (they are
// called from the relation's mutators only); probes run under the
// content read lock, so the two never overlap. Ordered probes use a
// sorted *copy* of the value list, built lazily on first use (under
// sortMu, so concurrent probers share one build) and invalidated by
// mutations; the insertion-order list itself is immutable while any
// reader holds the content lock, so <>-probes and Entries traverse it
// lock-free in a deterministic order no matter how probes interleave.
type ColIndex struct {
	rel    *Relation
	col    string
	colIdx int

	eq      map[string][]value.Value // encoded value -> refs
	vals    []value.Value            // distinct values, insertion order
	entries int

	sortMu     sync.Mutex    // guards the lazy sorted copy
	sorted     bool          // sortedVals up to date
	sortedVals []value.Value // ascending copy of vals

	st *stats.Counters
}

// CreateIndex declares a permanent index on the named component and
// backfills it from the current contents (through the storage backend,
// so a disk-resident relation backfills from its SSTables). Creating
// the same index twice is an error. On a durable database the creation
// is logged, so recovery recreates the index.
func (r *Relation) CreateIndex(col string) (*ColIndex, error) {
	r.lock()
	if err := r.durableErr(); err != nil {
		r.unlock()
		return nil, err
	}
	ix, err := r.createIndexLocked(col)
	var tk storage.Ticket
	if err == nil {
		tk, err = r.logMutation(storage.Record{Op: storage.OpCreateIndex, Rel: r.id, Col: col})
	}
	r.unlock()
	if err == nil {
		err = r.waitDurable(tk)
	}
	if err != nil {
		return nil, err
	}
	return ix, nil
}

// createIndexLocked is CreateIndex's core — declaration plus backfill —
// without locking or logging; parallel replay calls it directly from a
// relation's replay queue, where CreateIndex's position among the
// relation's mutations determines what the backfill sees.
func (r *Relation) createIndexLocked(col string) (*ColIndex, error) {
	ci, ok := r.sch.ColIndex(col)
	if !ok {
		return nil, fmt.Errorf("relation %s: no component %s", r.sch.Name, col)
	}
	if _, dup := r.colIndexes[col]; dup {
		return nil, fmt.Errorf("relation %s: index on %s already exists", r.sch.Name, col)
	}
	ix := &ColIndex{rel: r, col: col, colIdx: ci, eq: make(map[string][]value.Value), st: r.st}
	if err := r.store.Scan(0, r.store.SlotSpan(), func(si int, tuple []value.Value) bool {
		ix.add(tuple[ci], r.refOf(si))
		return true
	}); err != nil {
		return nil, fmt.Errorf("relation %s: index backfill: %w", r.sch.Name, err)
	}
	if r.colIndexes == nil {
		r.colIndexes = make(map[string]*ColIndex)
	}
	r.colIndexes[col] = ix
	return ix, nil
}

// Index returns the permanent index on the named component, if any. It
// takes no lock — the engine calls it while already holding the
// database read lock; other callers must not race it with CreateIndex.
func (r *Relation) Index(col string) (*ColIndex, bool) {
	ix, ok := r.colIndexes[col]
	return ix, ok
}

// Indexes returns the indexed component names, sorted.
func (r *Relation) Indexes() []string {
	r.rlock()
	defer r.runlock()
	out := make([]string, 0, len(r.colIndexes))
	for col := range r.colIndexes {
		out = append(out, col)
	}
	sort.Strings(out)
	return out
}

// Col returns the indexed component name.
func (ix *ColIndex) Col() string { return ix.col }

// Len returns the number of indexed entries.
func (ix *ColIndex) Len() int { return ix.entries }

func (ix *ColIndex) add(v, ref value.Value) {
	k := value.EncodeKey([]value.Value{v})
	refs := ix.eq[k]
	if len(refs) == 0 {
		ix.vals = append(ix.vals, v)
		ix.invalidateSorted()
	}
	ix.eq[k] = append(refs, ref)
	ix.entries++
}

// invalidateSorted drops the sorted copy; called from mutators, which
// hold the content write lock, so no probe is concurrently reading it.
func (ix *ColIndex) invalidateSorted() {
	ix.sorted = false
	ix.sortedVals = nil
}

func (ix *ColIndex) remove(v, ref value.Value) {
	k := value.EncodeKey([]value.Value{v})
	refs := ix.eq[k]
	for i, r := range refs {
		if value.Equal(r, ref) {
			refs = append(refs[:i], refs[i+1:]...)
			break
		}
	}
	if len(refs) == 0 {
		delete(ix.eq, k)
		for i, val := range ix.vals {
			if value.Equal(val, v) {
				ix.vals = append(ix.vals[:i], ix.vals[i+1:]...)
				break
			}
		}
		ix.invalidateSorted()
	} else {
		ix.eq[k] = refs
	}
	ix.entries--
}

func (ix *ColIndex) reset() {
	ix.eq = make(map[string][]value.Value)
	ix.vals = nil
	ix.invalidateSorted()
	ix.entries = 0
}

// sortedSnapshot returns the ascending copy of the value list, building
// it on first use after a mutation. Mutators run under the content
// write lock (no concurrent probes), so the flag handoff is safe; the
// returned slice is immutable until the next mutation.
func (ix *ColIndex) sortedSnapshot() []value.Value {
	ix.sortMu.Lock()
	defer ix.sortMu.Unlock()
	if !ix.sorted {
		cp := append([]value.Value(nil), ix.vals...)
		sort.SliceStable(cp, func(i, j int) bool {
			return value.MustCompare(cp[i], cp[j]) < 0
		})
		ix.sortedVals = cp
		ix.sorted = true
	}
	return ix.sortedVals
}

// ProbeEq returns the references whose indexed component equals v,
// counting against the attached sink. Callers must not modify the
// returned slice.
func (ix *ColIndex) ProbeEq(v value.Value) []value.Value {
	ix.st.CountProbes(1)
	return ix.eq[value.EncodeKey([]value.Value{v})]
}

// Probe is ProbeStats against the attached counter sink.
func (ix *ColIndex) Probe(op value.CmpOp, pv value.Value, fn func(ref value.Value)) {
	ix.ProbeStats(ix.st, op, pv, fn)
}

// ProbeStats calls fn with every reference whose indexed value iv
// satisfies "pv op iv" — the same contract as the collection phase's
// transient indexes — counting probes and comparisons into st. Parallel
// scan workers pass their per-job sinks here so counting never races.
func (ix *ColIndex) ProbeStats(st *stats.Counters, op value.CmpOp, pv value.Value, fn func(ref value.Value)) {
	st.CountProbes(1)
	switch op {
	case value.OpEq:
		for _, ref := range ix.eq[value.EncodeKey([]value.Value{pv})] {
			fn(ref)
		}
	case value.OpNe:
		// Insertion order, always: vals is immutable while readers hold
		// the content lock, so emission order is deterministic no
		// matter which probes ran before.
		for _, v := range ix.vals {
			st.CountComparisons(1)
			if !value.Equal(v, pv) {
				for _, ref := range ix.eq[value.EncodeKey([]value.Value{v})] {
					fn(ref)
				}
			}
		}
	default:
		sv := ix.sortedSnapshot()
		n := len(sv)
		var lo, hi int
		switch op {
		case value.OpLt:
			lo = sort.Search(n, func(i int) bool { return value.MustCompare(sv[i], pv) > 0 })
			hi = n
		case value.OpLe:
			lo = sort.Search(n, func(i int) bool { return value.MustCompare(sv[i], pv) >= 0 })
			hi = n
		case value.OpGt:
			lo = 0
			hi = sort.Search(n, func(i int) bool { return value.MustCompare(sv[i], pv) >= 0 })
		case value.OpGe:
			lo = 0
			hi = sort.Search(n, func(i int) bool { return value.MustCompare(sv[i], pv) > 0 })
		}
		for i := lo; i < hi; i++ {
			for _, ref := range ix.eq[value.EncodeKey([]value.Value{sv[i]})] {
				fn(ref)
			}
		}
	}
}

// Entries iterates all (value, ref) pairs in insertion order; used by
// deferred index-index joins. The value list is immutable while the
// caller holds the content lock and no probe lock is taken, so fn may
// probe this very index (a self-join over one indexed column).
func (ix *ColIndex) Entries(fn func(v, ref value.Value)) {
	for _, v := range ix.vals {
		for _, ref := range ix.eq[value.EncodeKey([]value.Value{v})] {
			fn(v, ref)
		}
	}
}
