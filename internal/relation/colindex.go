package relation

import (
	"fmt"
	"sort"

	"pascalr/internal/stats"
	"pascalr/internal/value"
)

// ColIndex is a permanent index on one component of a relation,
// maintained under insert, delete, and assign. The paper's collection
// phase builds partial indexes on the fly but notes that "the first
// step can be omitted, if permanent indexes exist" (section 3.2), and
// names integration with permanent access paths as ongoing research
// (section 5); ColIndex is that access path.
type ColIndex struct {
	rel    *Relation
	col    string
	colIdx int

	eq      map[string][]value.Value // encoded value -> refs
	vals    []value.Value            // distinct values, sorted lazily
	sorted  bool
	entries int

	st *stats.Counters
}

// CreateIndex declares a permanent index on the named component and
// backfills it from the current contents. Creating the same index twice
// is an error.
func (r *Relation) CreateIndex(col string) (*ColIndex, error) {
	ci, ok := r.sch.ColIndex(col)
	if !ok {
		return nil, fmt.Errorf("relation %s: no component %s", r.sch.Name, col)
	}
	if _, dup := r.colIndexes[col]; dup {
		return nil, fmt.Errorf("relation %s: index on %s already exists", r.sch.Name, col)
	}
	ix := &ColIndex{rel: r, col: col, colIdx: ci, eq: make(map[string][]value.Value), st: r.st}
	for si := range r.slots {
		if r.slots[si].live {
			ix.add(r.slots[si].tuple[ci], r.refOf(si))
		}
	}
	if r.colIndexes == nil {
		r.colIndexes = make(map[string]*ColIndex)
	}
	r.colIndexes[col] = ix
	return ix, nil
}

// Index returns the permanent index on the named component, if any.
func (r *Relation) Index(col string) (*ColIndex, bool) {
	ix, ok := r.colIndexes[col]
	return ix, ok
}

// Indexes returns the indexed component names, sorted.
func (r *Relation) Indexes() []string {
	out := make([]string, 0, len(r.colIndexes))
	for col := range r.colIndexes {
		out = append(out, col)
	}
	sort.Strings(out)
	return out
}

// Col returns the indexed component name.
func (ix *ColIndex) Col() string { return ix.col }

// Len returns the number of indexed entries.
func (ix *ColIndex) Len() int { return ix.entries }

func (ix *ColIndex) add(v, ref value.Value) {
	k := value.EncodeKey([]value.Value{v})
	refs := ix.eq[k]
	if len(refs) == 0 {
		ix.vals = append(ix.vals, v)
		ix.sorted = false
	}
	ix.eq[k] = append(refs, ref)
	ix.entries++
}

func (ix *ColIndex) remove(v, ref value.Value) {
	k := value.EncodeKey([]value.Value{v})
	refs := ix.eq[k]
	for i, r := range refs {
		if value.Equal(r, ref) {
			refs = append(refs[:i], refs[i+1:]...)
			break
		}
	}
	if len(refs) == 0 {
		delete(ix.eq, k)
		for i, val := range ix.vals {
			if value.Equal(val, v) {
				ix.vals = append(ix.vals[:i], ix.vals[i+1:]...)
				break
			}
		}
	} else {
		ix.eq[k] = refs
	}
	ix.entries--
}

func (ix *ColIndex) reset() {
	ix.eq = make(map[string][]value.Value)
	ix.vals = nil
	ix.sorted = true
	ix.entries = 0
}

func (ix *ColIndex) ensureSorted() {
	if ix.sorted {
		return
	}
	sort.SliceStable(ix.vals, func(i, j int) bool {
		return value.MustCompare(ix.vals[i], ix.vals[j]) < 0
	})
	ix.sorted = true
}

// ProbeEq returns the references whose indexed component equals v.
// Callers must not modify the returned slice.
func (ix *ColIndex) ProbeEq(v value.Value) []value.Value {
	ix.st.CountProbes(1)
	return ix.eq[value.EncodeKey([]value.Value{v})]
}

// Probe calls fn with every reference whose indexed value iv satisfies
// "pv op iv" — the same contract as the collection phase's transient
// indexes.
func (ix *ColIndex) Probe(op value.CmpOp, pv value.Value, fn func(ref value.Value)) {
	ix.st.CountProbes(1)
	switch op {
	case value.OpEq:
		for _, ref := range ix.eq[value.EncodeKey([]value.Value{pv})] {
			fn(ref)
		}
	case value.OpNe:
		for _, v := range ix.vals {
			ix.st.CountComparisons(1)
			if !value.Equal(v, pv) {
				for _, ref := range ix.eq[value.EncodeKey([]value.Value{v})] {
					fn(ref)
				}
			}
		}
	default:
		ix.ensureSorted()
		n := len(ix.vals)
		var lo, hi int
		switch op {
		case value.OpLt:
			lo = sort.Search(n, func(i int) bool { return value.MustCompare(ix.vals[i], pv) > 0 })
			hi = n
		case value.OpLe:
			lo = sort.Search(n, func(i int) bool { return value.MustCompare(ix.vals[i], pv) >= 0 })
			hi = n
		case value.OpGt:
			lo = 0
			hi = sort.Search(n, func(i int) bool { return value.MustCompare(ix.vals[i], pv) >= 0 })
		case value.OpGe:
			lo = 0
			hi = sort.Search(n, func(i int) bool { return value.MustCompare(ix.vals[i], pv) > 0 })
		}
		for i := lo; i < hi; i++ {
			for _, ref := range ix.eq[value.EncodeKey([]value.Value{ix.vals[i]})] {
				fn(ref)
			}
		}
	}
}

// Entries iterates all (value, ref) pairs in unspecified order; used by
// deferred index-index joins.
func (ix *ColIndex) Entries(fn func(v, ref value.Value)) {
	for _, v := range ix.vals {
		for _, ref := range ix.eq[value.EncodeKey([]value.Value{v})] {
			fn(v, ref)
		}
	}
}
