package relation

import (
	"fmt"
	"sync"
	"sync/atomic"

	"pascalr/internal/schema"
	"pascalr/internal/stats"
	"pascalr/internal/value"
)

// DB bundles a catalog with the relation variables it declares. It is
// the database instance the query processor runs against.
//
// # Locking discipline
//
// Two locks protect a database against concurrent use:
//
//   - mu, the content lock, is a database-wide RWMutex shared by every
//     relation of the DB. Content mutators (Insert, Delete, Assign,
//     CreateIndex) take it exclusively; public read paths (Scan,
//     ScanStats, Lookup, Get, Deref) take it shared per call. The query
//     engine instead holds it shared across a whole collection phase
//     (RLock/RUnlock) and uses the non-locking snapshot accessors
//     (ScanSlots, SlotSpan, DB.Deref), so one read acquisition covers
//     every scan and permanent-index probe of an execution — including
//     probes into relations other than the one being scanned. Code
//     running under the engine's phase lock must never call the locking
//     accessors: recursive RLock can deadlock against a queued writer.
//
//   - catMu guards the registration maps (name -> relation, id ->
//     relation) against relation declarations. It nests inside mu
//     (readers holding mu may take catMu; no path holds catMu while
//     acquiring mu), so lookups are safe both under the phase lock and
//     on their own.
//
// Version and each relation's length are atomics, readable without any
// lock — compiled plans compare versions to validate snapshots.
type DB struct {
	mu sync.RWMutex // content lock, shared with all relations

	catMu  sync.RWMutex // guards cat growth, rels, byID, nextID
	cat    *schema.Catalog
	rels   map[string]*Relation
	byID   []*Relation
	nextID int

	st *stats.Counters
	// version counts content mutations (insert, delete, assign) across
	// all relations of this database. Compiled plans and cached
	// statistics compare it to decide whether they are stale. Schema
	// growth (new types, new empty relations) does not bump it: existing
	// plans cannot reference objects that did not exist when they were
	// compiled.
	version atomic.Uint64
}

// NewDB returns an empty database with a fresh catalog.
func NewDB() *DB {
	return &DB{cat: schema.NewCatalog(), rels: make(map[string]*Relation)}
}

// Catalog returns the database's catalog. The catalog itself is not
// synchronized: callers interleaving declarations with reads (parsing,
// checking) must serialize them, as the public pascalr API does.
func (d *DB) Catalog() *schema.Catalog { return d.cat }

// RLock acquires the database content lock shared, for a consistent
// multi-relation read phase (the engine's collection phase). Content
// mutators block until RUnlock. Calls must not nest.
func (d *DB) RLock() { d.mu.RLock() }

// RUnlock releases the shared content lock.
func (d *DB) RUnlock() { d.mu.RUnlock() }

// Create declares a relation variable for the given schema and registers
// it in the catalog.
func (d *DB) Create(sch *schema.RelSchema) (*Relation, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.catMu.Lock()
	defer d.catMu.Unlock()
	if err := d.cat.DefineRelation(sch); err != nil {
		return nil, err
	}
	r := New(sch, d.nextID)
	r.onMutate = d.bumpVersion
	r.lk = &d.mu
	r.st = d.st
	d.nextID++
	d.rels[sch.Name] = r
	d.byID = append(d.byID, r)
	return r, nil
}

// MustCreate is Create that panics on error, for tests and generators.
func (d *DB) MustCreate(sch *schema.RelSchema) *Relation {
	r, err := d.Create(sch)
	if err != nil {
		panic(err)
	}
	return r
}

// Relation returns the named relation variable.
func (d *DB) Relation(name string) (*Relation, bool) {
	d.catMu.RLock()
	r, ok := d.rels[name]
	d.catMu.RUnlock()
	return r, ok
}

// MustRelation returns the named relation variable or panics.
func (d *DB) MustRelation(name string) *Relation {
	r, ok := d.Relation(name)
	if !ok {
		panic(fmt.Sprintf("relation: no relation %s", name))
	}
	return r
}

// ByID returns the relation with the given catalog id, as stored in
// reference values.
func (d *DB) ByID(id int) (*Relation, bool) {
	d.catMu.RLock()
	defer d.catMu.RUnlock()
	if id < 0 || id >= len(d.byID) {
		return nil, false
	}
	return d.byID[id], true
}

// Deref dereferences a reference value against whichever relation owns
// it. It does not take the content lock: callers synchronizing against
// writers (the construction phase) hold RLock around batches of calls.
func (d *DB) Deref(ref value.Value) ([]value.Value, error) {
	id, _, _ := ref.AsRef()
	r, ok := d.ByID(id)
	if !ok {
		return nil, fmt.Errorf("relation: reference to unknown relation id %d", id)
	}
	return r.deref(ref)
}

// SetStats attaches a counter sink to the database and all its
// relations. The sink feeds the locking read paths (Scan, public
// probes); engine executions pass explicit per-execution sinks instead.
func (d *DB) SetStats(st *stats.Counters) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.catMu.RLock()
	defer d.catMu.RUnlock()
	d.st = st
	for _, r := range d.rels {
		r.setStats(st)
	}
}

// Stats returns the currently attached counter sink (may be nil).
func (d *DB) Stats() *stats.Counters {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.st
}

// Version returns the database's content version: a counter bumped by
// every successful insert, delete, and assignment against any relation
// of this database. Two equal versions guarantee unchanged contents, so
// compiled plans and cached statistics tagged with a version can be
// reused without revalidation while it holds still. Version is an
// atomic read, safe without any lock; reading it while holding RLock
// pins it (writers are blocked), which is how the engine validates
// snapshots.
func (d *DB) Version() uint64 { return d.version.Load() }

func (d *DB) bumpVersion() { d.version.Add(1) }
