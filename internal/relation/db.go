package relation

import (
	"fmt"

	"pascalr/internal/schema"
	"pascalr/internal/stats"
	"pascalr/internal/value"
)

// DB bundles a catalog with the relation variables it declares. It is
// the database instance the query processor runs against.
type DB struct {
	cat    *schema.Catalog
	rels   map[string]*Relation
	byID   []*Relation
	nextID int
	st     *stats.Counters
	// version counts content mutations (insert, delete, assign) across
	// all relations of this database. Compiled plans and cached
	// statistics compare it to decide whether they are stale. Schema
	// growth (new types, new empty relations) does not bump it: existing
	// plans cannot reference objects that did not exist when they were
	// compiled.
	version uint64
}

// NewDB returns an empty database with a fresh catalog.
func NewDB() *DB {
	return &DB{cat: schema.NewCatalog(), rels: make(map[string]*Relation)}
}

// Catalog returns the database's catalog.
func (d *DB) Catalog() *schema.Catalog { return d.cat }

// Create declares a relation variable for the given schema and registers
// it in the catalog.
func (d *DB) Create(sch *schema.RelSchema) (*Relation, error) {
	if err := d.cat.DefineRelation(sch); err != nil {
		return nil, err
	}
	r := New(sch, d.nextID)
	r.onMutate = d.bumpVersion
	r.SetStats(d.st)
	d.nextID++
	d.rels[sch.Name] = r
	d.byID = append(d.byID, r)
	return r, nil
}

// MustCreate is Create that panics on error, for tests and generators.
func (d *DB) MustCreate(sch *schema.RelSchema) *Relation {
	r, err := d.Create(sch)
	if err != nil {
		panic(err)
	}
	return r
}

// Relation returns the named relation variable.
func (d *DB) Relation(name string) (*Relation, bool) {
	r, ok := d.rels[name]
	return r, ok
}

// MustRelation returns the named relation variable or panics.
func (d *DB) MustRelation(name string) *Relation {
	r, ok := d.rels[name]
	if !ok {
		panic(fmt.Sprintf("relation: no relation %s", name))
	}
	return r
}

// ByID returns the relation with the given catalog id, as stored in
// reference values.
func (d *DB) ByID(id int) (*Relation, bool) {
	if id < 0 || id >= len(d.byID) {
		return nil, false
	}
	return d.byID[id], true
}

// Deref dereferences a reference value against whichever relation owns
// it.
func (d *DB) Deref(ref value.Value) ([]value.Value, error) {
	id, _, _ := ref.AsRef()
	r, ok := d.ByID(id)
	if !ok {
		return nil, fmt.Errorf("relation: reference to unknown relation id %d", id)
	}
	return r.Deref(ref)
}

// SetStats attaches a counter sink to the database and all its
// relations.
func (d *DB) SetStats(st *stats.Counters) {
	d.st = st
	for _, r := range d.rels {
		r.SetStats(st)
	}
}

// Stats returns the currently attached counter sink (may be nil).
func (d *DB) Stats() *stats.Counters { return d.st }

// Version returns the database's content version: a counter bumped by
// every successful insert, delete, and assignment against any relation
// of this database. Two equal versions guarantee unchanged contents, so
// compiled plans and cached statistics tagged with a version can be
// reused without revalidation while it holds still.
func (d *DB) Version() uint64 { return d.version }

func (d *DB) bumpVersion() { d.version++ }
