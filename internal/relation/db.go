package relation

import (
	"fmt"
	"sync"
	"sync/atomic"

	"pascalr/internal/sched"
	"pascalr/internal/schema"
	"pascalr/internal/stats"
	"pascalr/internal/storage"
	"pascalr/internal/value"
)

// DB bundles a catalog with the relation variables it declares. It is
// the database instance the query processor runs against.
//
// # Locking discipline
//
// Two locks protect a database against concurrent use:
//
//   - mu, the content lock, is a database-wide RWMutex shared by every
//     relation of the DB. Content mutators (Insert, Delete, Assign,
//     CreateIndex) take it exclusively; public read paths (Scan,
//     ScanStats, Lookup, Get, Deref) take it shared per call. The query
//     engine instead holds it shared across a whole collection phase
//     (RLock/RUnlock) and uses the non-locking snapshot accessors
//     (ScanSlots, SlotSpan, DB.Deref), so one read acquisition covers
//     every scan and permanent-index probe of an execution — including
//     probes into relations other than the one being scanned. Code
//     running under the engine's phase lock must never call the locking
//     accessors: recursive RLock can deadlock against a queued writer.
//
//   - catMu guards the registration maps (name -> relation, id ->
//     relation) against relation declarations. It nests inside mu
//     (readers holding mu may take catMu; no path holds catMu while
//     acquiring mu), so lookups are safe both under the phase lock and
//     on their own.
//
// Version and each relation's length are atomics, readable without any
// lock — compiled plans compare versions to validate snapshots.
type DB struct {
	mu sync.RWMutex // content lock, shared with all relations

	catMu  sync.RWMutex // guards cat growth, rels, byID, nextID
	cat    *schema.Catalog
	rels   map[string]*Relation
	byID   []*Relation
	nextID int

	st *stats.Counters
	// version counts content mutations (insert, delete, assign) across
	// all relations of this database. Compiled plans compare it to
	// decide whether they are stale. Schema growth (new types, new empty
	// relations) does not bump it: existing plans cannot reference
	// objects that did not exist when they were compiled. Statistics are
	// NOT keyed by it — they use per-relation mutation counters, so an
	// insert into one relation leaves every other relation's cached
	// statistics valid.
	version atomic.Uint64

	// estMu guards the per-relation statistics snapshots handed to
	// planners: immutable copies of each relation's live statistics,
	// tagged with the relation's mutation counter and refreshed lazily
	// only for relations that actually mutated. statsEpoch counts
	// statistics changes database-wide (mutations and rebuilds); while
	// it holds still, Estimator() returns the one cached assembly
	// (estCache) without allocating.
	estMu      sync.Mutex
	estSnaps   map[string]estSnap
	estCache   *stats.Estimator
	estEpoch   uint64
	statsEpoch atomic.Uint64

	// async runs drift-triggered histogram rebuilds (and, for durable
	// databases, checkpoints and compactions) in the background,
	// single-flight per key.
	async *sched.Async
	// closed marks the database as shut down: no further background
	// statistics work may be scheduled. Mutators and readers keep
	// working — Close quiesces maintenance, it does not tear down
	// storage — but a drift trigger after Close must not resurrect a
	// background goroutine the shutdown already waited for.
	closed atomic.Bool

	// dur is the durability state (WAL, checkpoint orchestration) of a
	// database opened with OpenDB; nil for in-memory databases, which
	// then skip all logging.
	dur *durable
	// replaying is set while OpenDB replays the WAL: logging and
	// background maintenance are suppressed, so replay is deterministic
	// and writes nothing.
	replaying atomic.Bool
}

// estSnap is one relation's immutable statistics snapshot, tagged with
// the mutation counter it was taken at.
type estSnap struct {
	mut uint64
	ts  *stats.TableStats
}

// NewDB returns an empty database with a fresh catalog.
func NewDB() *DB {
	return &DB{
		cat:      schema.NewCatalog(),
		rels:     make(map[string]*Relation),
		estSnaps: make(map[string]estSnap),
		async:    sched.NewAsync(1),
	}
}

// Close quiesces the database's background work for shutdown: it waits
// for in-flight drift-triggered histogram rebuilds (and checkpoints) to
// finish and rejects any maintenance scheduled from then on, so no
// background goroutine can outlive Close or touch the database during
// teardown. For an in-memory database the relations stay readable and
// writable (Close does not tear down storage). A durable database
// additionally takes a final checkpoint and closes its WAL and SSTable
// handles — the database must not be used afterwards. Close is
// idempotent and safe to call concurrently with mutators.
func (d *DB) Close() error {
	first := d.closed.CompareAndSwap(false, true)
	d.async.Close()
	if d.dur == nil || !first {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	err := d.checkpointLocked()
	if d.dur.wal != nil {
		if cerr := d.dur.wal.Close(); err == nil {
			err = cerr
		}
	}
	d.catMu.RLock()
	rels := append([]*Relation(nil), d.byID...)
	d.catMu.RUnlock()
	for _, r := range rels {
		if cerr := r.store.Close(); err == nil {
			err = cerr
		}
	}
	if err == nil {
		err = d.dur.sticky()
	}
	return err
}

// Quiesce blocks until the background maintenance scheduled so far —
// checkpoints, compactions, drift-triggered histogram rebuilds — has
// drained, without shutting the executor down. Useful before treating
// the database directory as an on-disk snapshot (backups, crash-image
// tests); unlike Close it takes no checkpoint and the database remains
// fully usable.
func (d *DB) Quiesce() { d.async.Wait() }

// Catalog returns the database's catalog. The catalog itself is not
// synchronized: callers interleaving declarations with reads (parsing,
// checking) must serialize them, as the public pascalr API does.
func (d *DB) Catalog() *schema.Catalog { return d.cat }

// RLock acquires the database content lock shared, for a consistent
// multi-relation read phase (the engine's collection phase). Content
// mutators block until RUnlock. Calls must not nest.
func (d *DB) RLock() { d.mu.RLock() }

// RUnlock releases the shared content lock.
func (d *DB) RUnlock() { d.mu.RUnlock() }

// Create declares a relation variable for the given schema and registers
// it in the catalog. On a durable database the relation's slots live in
// the SSTable-backed disk tier and the declaration is logged.
func (d *DB) Create(sch *schema.RelSchema) (*Relation, error) {
	d.mu.Lock()
	if d.dur != nil {
		if err := d.dur.sticky(); err != nil {
			d.mu.Unlock()
			return nil, err
		}
	}
	d.catMu.Lock()
	if err := d.cat.DefineRelation(sch); err != nil {
		d.catMu.Unlock()
		d.mu.Unlock()
		return nil, err
	}
	r := New(sch, d.nextID)
	if d.dur != nil {
		r.store = storage.NewDisk(d.dur.dir, r.id, d.dur.opts, d.dur.cache)
	}
	d.attach(r)
	tk, err := d.logRecord(r, storage.Record{Op: storage.OpCreateRel, Schema: sch})
	d.catMu.Unlock()
	d.mu.Unlock()
	if err == nil {
		err = d.waitDurable(tk)
	}
	if err != nil {
		return r, err
	}
	return r, nil
}

// attach wires a freshly built relation into the database: locking,
// statistics, registration maps. Callers hold mu and catMu exclusively.
func (d *DB) attach(r *Relation) {
	r.onMutate = d.bumpVersion
	r.lk = &d.mu
	r.st = d.st
	if r.stTable == nil {
		cols := make([]string, len(r.sch.Cols))
		for i, c := range r.sch.Cols {
			cols[i] = c.Name
		}
		r.stTable = stats.NewTableStats(r.sch.Name, cols)
	}
	r.stTable.SetAccessCost(r.AccessCost())
	r.owner = d
	d.nextID++
	d.rels[r.sch.Name] = r
	d.byID = append(d.byID, r)
	// A new relation must show up in the next Estimator() assembly.
	d.statsEpoch.Add(1)
}

// DefineType registers a named type, logging the declaration on a
// durable database so replay reconstructs the catalog. The unlogged
// Catalog().DefineType path remains for in-memory use; durable callers
// must come through here.
func (d *DB) DefineType(t *schema.Type) error {
	d.mu.Lock()
	if d.dur != nil {
		if err := d.dur.sticky(); err != nil {
			d.mu.Unlock()
			return err
		}
	}
	err := d.cat.DefineType(t)
	var tk storage.Ticket
	if err == nil {
		tk, err = d.logRecord(nil, storage.Record{Op: storage.OpDefineType, Type: t})
	}
	d.mu.Unlock()
	if err == nil {
		err = d.waitDurable(tk)
	}
	return err
}

// MustCreate is Create that panics on error, for tests and generators.
func (d *DB) MustCreate(sch *schema.RelSchema) *Relation {
	r, err := d.Create(sch)
	if err != nil {
		panic(err)
	}
	return r
}

// Relations returns a snapshot of the registered relation variables in
// creation order. Unlike Catalog().Relations(), it is safe against a
// concurrent Create (the catalog itself is unsynchronized).
func (d *DB) Relations() []*Relation {
	d.catMu.RLock()
	defer d.catMu.RUnlock()
	return append([]*Relation(nil), d.byID...)
}

// Relation returns the named relation variable.
func (d *DB) Relation(name string) (*Relation, bool) {
	d.catMu.RLock()
	r, ok := d.rels[name]
	d.catMu.RUnlock()
	return r, ok
}

// MustRelation returns the named relation variable or panics.
func (d *DB) MustRelation(name string) *Relation {
	r, ok := d.Relation(name)
	if !ok {
		panic(fmt.Sprintf("relation: no relation %s", name))
	}
	return r
}

// ByID returns the relation with the given catalog id, as stored in
// reference values.
func (d *DB) ByID(id int) (*Relation, bool) {
	d.catMu.RLock()
	defer d.catMu.RUnlock()
	if id < 0 || id >= len(d.byID) {
		return nil, false
	}
	return d.byID[id], true
}

// Deref dereferences a reference value against whichever relation owns
// it. It does not take the content lock: callers synchronizing against
// writers (the construction phase) hold RLock around batches of calls.
func (d *DB) Deref(ref value.Value) ([]value.Value, error) {
	id, _, _ := ref.AsRef()
	r, ok := d.ByID(id)
	if !ok {
		return nil, fmt.Errorf("relation: reference to unknown relation id %d", id)
	}
	return r.deref(ref)
}

// SetStats attaches a counter sink to the database and all its
// relations. The sink feeds the locking read paths (Scan, public
// probes); engine executions pass explicit per-execution sinks instead.
func (d *DB) SetStats(st *stats.Counters) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.catMu.RLock()
	defer d.catMu.RUnlock()
	d.st = st
	for _, r := range d.rels {
		r.setStats(st)
	}
}

// Stats returns the currently attached counter sink (may be nil).
func (d *DB) Stats() *stats.Counters {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.st
}

// Version returns the database's content version: a counter bumped by
// every successful insert, delete, and assignment against any relation
// of this database. Two equal versions guarantee unchanged contents, so
// compiled plans and cached statistics tagged with a version can be
// reused without revalidation while it holds still. Version is an
// atomic read, safe without any lock; reading it while holding RLock
// pins it (writers are blocked), which is how the engine validates
// snapshots.
func (d *DB) Version() uint64 { return d.version.Load() }

func (d *DB) bumpVersion() { d.version.Add(1) }

// Estimator returns a selectivity estimator over the database's live
// statistics. Each relation contributes an immutable snapshot tagged
// with its own mutation counter: only relations that mutated since the
// previous call are re-snapshotted, so an insert into one relation no
// longer discards the statistics of every other. The returned estimator
// needs no locks and no analyze pass — the statistics are maintained
// incrementally by the mutators — making it safe to consult at compile
// time, outside any database lock.
func (d *DB) Estimator() *stats.Estimator {
	// Load the epoch before assembling: a statistics change racing the
	// assembly at worst leaves a stale-tagged cache that the next call
	// refreshes, never a fresh-tagged stale one.
	epoch := d.statsEpoch.Load()
	rels := d.Relations()
	d.estMu.Lock()
	defer d.estMu.Unlock()
	if d.estCache != nil && d.estEpoch == epoch {
		return d.estCache
	}
	est := stats.NewEstimator()
	for _, r := range rels {
		if r.stTable == nil {
			continue
		}
		// Read the counter before snapshotting: a concurrent mutation
		// between the two at worst re-snapshots next call, never tags a
		// stale snapshot as fresh.
		mut := r.MutCount()
		snap, ok := d.estSnaps[r.sch.Name]
		if !ok || snap.mut != mut {
			snap = estSnap{mut: mut, ts: r.stTable.Snapshot()}
			d.estSnaps[r.sch.Name] = snap
		}
		est.AddTable(snap.ts)
	}
	d.estCache, d.estEpoch = est, epoch
	return est
}

// scheduleStatsRebuild queues a background re-bucketing of one
// relation's histograms (single-flight per relation). Called by
// mutators under the content write lock; the rebuild itself runs later
// under the content read lock. After Close the submission is rejected
// (by the flag here and, authoritatively, by the closed executor), so
// a drift trigger racing shutdown cannot schedule work the shutdown
// will not wait for.
func (d *DB) scheduleStatsRebuild(r *Relation) {
	if d.closed.Load() || d.replaying.Load() {
		return
	}
	d.async.Submit("stats:"+r.sch.Name, func() { r.rebuildStats() })
}
