package relation

import (
	"os"
	"path/filepath"
	"testing"

	"pascalr/internal/schema"
	"pascalr/internal/storage"
	"pascalr/internal/value"
)

// BenchmarkStorageRecovery times the durability subsystem's two hot
// paths: cold-start WAL replay of an uncheckpointed database, and the
// bloom-filter negative-probe fast path that spares the LSM read
// amplification. CI converts the output to BENCH_storage_recovery.json.
func BenchmarkStorageRecovery(b *testing.B) {
	b.Run("replay", benchReplay)
	b.Run("bloom-negative-probe", benchBloomNegativeProbe)
}

// benchReplay builds one durable database — schema, index, 2000
// inserts, 200 deletes, never checkpointed — then times OpenDB's full
// recovery: manifest-less orphan cleanup plus WAL replay through the
// mutators, memtable spills included.
func benchReplay(b *testing.B) {
	opts := storage.Options{
		Fsync:              storage.SyncNever,
		MemtableEntries:    256,
		CheckpointWALBytes: -1,
	}
	src := b.TempDir()
	d, err := OpenDB(src, opts)
	if err != nil {
		b.Fatal(err)
	}
	sch, mkEmp := benchSchema(b)
	if err := d.DefineType(sch.Cols[2].Type); err != nil {
		b.Fatal(err)
	}
	r, err := d.Create(sch)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := r.CreateIndex("estatus"); err != nil {
		b.Fatal(err)
	}
	const inserts, deletes = 2000, 200
	for i := 1; i <= inserts; i++ {
		if _, err := r.Insert(mkEmp(int64(i))); err != nil {
			b.Fatal(err)
		}
	}
	for i := 1; i <= deletes; i++ {
		if !r.Delete([]value.Value{value.Int(int64(i * 7 % inserts))}) {
			b.Fatalf("delete %d ineffective", i)
		}
	}
	records := 3 + inserts + deletes
	if err := d.dur.wal.Sync(); err != nil {
		b.Fatal(err)
	}
	// No Close: Close would checkpoint and leave nothing to replay.
	// Drain background maintenance so the source directory is static.
	d.Quiesce()

	files, err := os.ReadDir(src)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := filepath.Join(b.TempDir(), "copy")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			b.Fatal(err)
		}
		for _, f := range files {
			data, err := os.ReadFile(filepath.Join(src, f.Name()))
			if err != nil {
				b.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dir, f.Name()), data, 0o644); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		rd, err := OpenDB(dir, opts)
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if rr, _ := rd.Relation("employees"); rr.Len() != inserts-deletes {
			b.Fatalf("recovered %d rows, want %d", rr.Len(), inserts-deletes)
		}
		rd.Close()
		b.StartTimer()
	}
	b.ReportMetric(float64(records), "records/op")
}

// benchBloomNegativeProbe probes keys absent from a many-tabled disk
// backend: the filters must answer nearly every table consultation
// without I/O. The reported skip ratio is the negative-probe fast
// path's effectiveness (1.0 = no wasted reads).
func benchBloomNegativeProbe(b *testing.B) {
	d := storage.NewDisk(b.TempDir(), 0, storage.Options{
		Fsync:           storage.SyncNever,
		MemtableEntries: 64,
	}, nil)
	defer d.Close()
	const keys = 4096
	for i := 0; i < keys; i++ {
		enc := value.EncodeKey([]value.Value{value.Int(int64(i))})
		if _, err := d.Append(enc, []value.Value{value.Int(int64(i))}); err != nil {
			b.Fatal(err)
		}
	}
	if err := d.Flush(); err != nil {
		b.Fatal(err)
	}
	tables := d.TableCount()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc := value.EncodeKey([]value.Value{value.Int(int64(keys + i))})
		if _, ok := d.LookupKey(enc); ok {
			b.Fatal("phantom key")
		}
	}
	b.StopTimer()
	consults := uint64(b.N) * uint64(tables)
	if consults > 0 {
		b.ReportMetric(float64(d.BloomNegatives())/float64(consults), "skip-ratio")
	}
	b.ReportMetric(float64(tables), "tables")
}

// benchSchema is the employees schema widened so the key column admits
// enough distinct tuples for a benchmark-sized workload.
func benchSchema(b *testing.B) (*schema.RelSchema, func(int64) []value.Value) {
	b.Helper()
	st, err := schema.EnumType("statustype", "student", "technician", "assistant", "professor")
	if err != nil {
		b.Fatal(err)
	}
	sch := schema.MustRelSchema("employees", []schema.Column{
		{Name: "enr", Type: schema.IntType("enumbertype", 1, 1<<20)},
		{Name: "ename", Type: schema.StringType("nametype", 10)},
		{Name: "estatus", Type: st},
	}, []string{"enr"})
	mk := func(enr int64) []value.Value {
		return []value.Value{
			value.Int(enr),
			value.String_("e" + string(rune('a'+enr%26))),
			value.Enum("statustype", int(enr%4)),
		}
	}
	return sch, mk
}
