package relation

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"pascalr/internal/schema"
	"pascalr/internal/stats"
	"pascalr/internal/storage"
	"pascalr/internal/value"
)

// tortureOpts forces the disk tier to exercise everything: a tiny
// memtable spills SSTables constantly, automatic checkpoints are off so
// the WAL holds the whole history, and fsync is off for speed (the
// torture kills by truncating copies, not the kernel).
func tortureOpts() storage.Options {
	return storage.Options{
		Fsync:              storage.SyncNever,
		MemtableEntries:    4,
		CheckpointWALBytes: -1,
	}
}

// fingerprint digests everything a query can observe: per relation (in
// declaration order) the slot layout, every live (slot, tuple) pair in
// scan order, the live count, and every permanent index's entries in
// iteration order. Two databases with equal fingerprints answer every
// query identically, references included.
func fingerprint(t *testing.T, d *DB) string {
	t.Helper()
	h := sha256.New()
	sink := &stats.Counters{}
	for _, name := range d.Catalog().Relations() {
		r, ok := d.Relation(name)
		if !ok {
			t.Fatalf("relation %s in catalog but not attached", name)
		}
		// ScanSlots is the lock-free snapshot path: its callers must
		// hold the content read lock (as the engine does), or a
		// background compaction can swap SSTables mid-scan. Scoped to
		// the scan only — Indexes() re-acquires the same lock itself.
		d.RLock()
		fmt.Fprintf(h, "rel %s span=%d len=%d\n", name, r.SlotSpan(), r.Len())
		err := r.ScanSlots(sink, 0, r.SlotSpan(), func(ref value.Value, tuple []value.Value) bool {
			fmt.Fprintf(h, "  %s -> %s\n", value.EncodeKey([]value.Value{ref}), value.EncodeKey(tuple))
			return true
		})
		d.RUnlock()
		if err != nil {
			t.Fatalf("scan %s: %v", name, err)
		}
		for _, col := range r.Indexes() {
			ix, _ := r.Index(col)
			fmt.Fprintf(h, "  index %s len=%d\n", col, ix.Len())
			// Sorted: a manifest-restored index backfills in slot order,
			// which may differ from the live run's insertion order while
			// indexing the identical set.
			var lines []string
			ix.Entries(func(v, ref value.Value) {
				lines = append(lines, value.EncodeKey([]value.Value{v})+"="+value.EncodeKey([]value.Value{ref}))
			})
			sort.Strings(lines)
			for _, l := range lines {
				fmt.Fprintf(h, "   %s\n", l)
			}
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// tortureWorkload drives one logged record per step against d and
// returns the fingerprint after every step: fps[k] is the state with
// exactly the first k records applied. The mix covers every WAL op —
// type and relation DDL, index creation, inserts (spilling SSTables at
// the tiny memtable threshold), deletes, and a bulk assignment.
func tortureWorkload(t *testing.T, d *DB) []string {
	t.Helper()
	fps := []string{fingerprint(t, d)}
	step := func(what string, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", what, err)
		}
		fps = append(fps, fingerprint(t, d))
	}

	sch := employeesSchema(t)
	enum, _ := sch.Cols[2].Type, ""
	step("define type", d.DefineType(enum))
	r, err := d.Create(sch)
	step("create", err)
	for i := int64(1); i <= 10; i++ {
		_, err := r.Insert(emp(i, fmt.Sprintf("P%d", i), int(i%4)))
		step("insert", err)
	}
	_, err = r.CreateIndex("estatus")
	step("create index", err)
	for _, k := range []int64{3, 7} {
		if !r.Delete([]value.Value{value.Int(k)}) {
			t.Fatalf("delete %d ineffective", k)
		}
		step("delete", nil)
	}
	for i := int64(11); i <= 16; i++ {
		_, err := r.Insert(emp(i, fmt.Sprintf("Q%d", i), int(i%4)))
		step("insert", err)
	}
	var bulk [][]value.Value
	for i := int64(1); i <= 7; i++ {
		bulk = append(bulk, emp(i*2, fmt.Sprintf("R%d", i), int(i%4)))
	}
	step("assign", r.Assign(bulk))
	for i := int64(30); i <= 34; i++ {
		_, err := r.Insert(emp(i, fmt.Sprintf("S%d", i), int(i%4)))
		step("insert", err)
	}
	if !r.Delete([]value.Value{value.Int(4)}) {
		t.Fatal("final delete ineffective")
	}
	step("delete", nil)
	return fps
}

// cloneDirTruncated copies a database directory, truncating the WAL
// copy to walLen bytes — the state a crash at that write offset leaves
// behind.
func cloneDirTruncated(t *testing.T, src, dst string, walLen int) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if e.Name() == storage.WALName {
			data = data[:walLen]
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// runWALOffsetTorture kills replay at every stride-th byte offset of
// the log: for each prefix length, recovery must land exactly on the
// state after the last wholly-durable record — never a half-applied one
// — including SSTables the memtable had spilled past the checkpoint
// (orphans are dropped and deterministically recreated by replay).
func runWALOffsetTorture(t *testing.T, opts storage.Options, stride int) {
	src := t.TempDir()
	d, err := OpenDB(src, opts)
	if err != nil {
		t.Fatal(err)
	}
	fps := tortureWorkload(t, d)
	if err := d.dur.wal.Sync(); err != nil {
		t.Fatal(err)
	}
	// Abandon d without Close: Close would checkpoint and reset the
	// log. Drain background maintenance first so the directory is a
	// static crash image (any compacted tables become orphans that
	// recovery deletes and replay deterministically recreates).
	d.Quiesce()
	walData, err := os.ReadFile(filepath.Join(src, storage.WALName))
	if err != nil {
		t.Fatal(err)
	}
	if _, valid := storage.ScanFrames(walData); valid != int64(len(walData)) {
		t.Fatalf("workload WAL has invalid tail: %d of %d bytes valid", valid, len(walData))
	}

	scratch := t.TempDir()
	for off := 0; off <= len(walData); off += stride {
		payloads, valid := storage.ScanFrames(walData[:off])
		k := len(payloads)
		dir := filepath.Join(scratch, fmt.Sprintf("off%d", off))
		cloneDirTruncated(t, src, dir, off)
		rd, err := OpenDB(dir, opts)
		if err != nil {
			t.Fatalf("offset %d: reopen: %v", off, err)
		}
		if got := fingerprint(t, rd); got != fps[k] {
			t.Fatalf("offset %d (%d records durable): recovered state diverged", off, k)
		}
		// The torn tail must be gone from the recovered log, so the
		// next append extends a clean prefix.
		if rd.dur.wal.Size() != valid {
			t.Fatalf("offset %d: recovered WAL size %d, want %d", off, rd.dur.wal.Size(), valid)
		}
		if err := rd.Close(); err != nil {
			t.Fatalf("offset %d: close: %v", off, err)
		}
		if err := os.RemoveAll(dir); err != nil {
			t.Fatal(err)
		}
	}
}

func TestWALTortureEveryOffset(t *testing.T) {
	stride := 1
	if testing.Short() {
		stride = 17
	}
	runWALOffsetTorture(t, tortureOpts(), stride)
}

// TestGroupCommitWALTorture reruns the offset torture with SyncAlways —
// the workload's appends flow through the group-commit ticket path, so
// the log a crash leaves behind was written by leader-elected batched
// fsyncs rather than the SyncNever fast path. Recovery semantics must
// be identical. Real fsyncs make each step expensive, so the stride is
// coarser than the SyncNever sweep.
func TestGroupCommitWALTorture(t *testing.T) {
	opts := tortureOpts()
	opts.Fsync = storage.SyncAlways
	stride := 11
	if testing.Short() {
		stride = 101
	}
	runWALOffsetTorture(t, opts, stride)
}

// TestWALTortureCorruptTail flips single bytes in the log: the CRC must
// catch the damage, and recovery must stop at the record before the
// corrupt frame — wholly dropping it, never applying a mangled version.
func TestWALTortureCorruptTail(t *testing.T) {
	src := t.TempDir()
	d, err := OpenDB(src, tortureOpts())
	if err != nil {
		t.Fatal(err)
	}
	fps := tortureWorkload(t, d)
	d.Quiesce() // static crash image; see TestWALTortureEveryOffset
	walData, err := os.ReadFile(filepath.Join(src, storage.WALName))
	if err != nil {
		t.Fatal(err)
	}

	stride := 13
	if testing.Short() {
		stride = 101
	}
	scratch := t.TempDir()
	for pos := 0; pos < len(walData); pos += stride {
		// Records wholly before the corrupt byte survive; the frame
		// containing it and everything after must vanish.
		payloads, _ := storage.ScanFrames(walData[:pos])
		k := len(payloads)
		dir := filepath.Join(scratch, fmt.Sprintf("pos%d", pos))
		cloneDirTruncated(t, src, dir, len(walData))
		mangled := append([]byte(nil), walData...)
		mangled[pos] ^= 0x40
		if err := os.WriteFile(filepath.Join(dir, storage.WALName), mangled, 0o644); err != nil {
			t.Fatal(err)
		}
		rd, err := OpenDB(dir, tortureOpts())
		if err != nil {
			t.Fatalf("corrupt byte %d: reopen: %v", pos, err)
		}
		if got := fingerprint(t, rd); got != fps[k] {
			t.Fatalf("corrupt byte %d (%d records intact): recovered state diverged", pos, k)
		}
		if err := rd.Close(); err != nil {
			t.Fatalf("corrupt byte %d: close: %v", pos, err)
		}
		if err := os.RemoveAll(dir); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCheckpointRoundTrip closes cleanly (checkpoint) and reopens: the
// state, the WAL (now empty), and the persisted table statistics must
// all come back exactly — recovery must not reset TableStats.
func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDB(dir, tortureOpts())
	if err != nil {
		t.Fatal(err)
	}
	fps := tortureWorkload(t, d)
	want := fps[len(fps)-1]
	r, _ := d.Relation("employees")
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	wantStats, err := r.stTable.Marshal()
	if err != nil {
		t.Fatal(err)
	}

	rd, err := OpenDB(dir, tortureOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	if got := fingerprint(t, rd); got != want {
		t.Fatal("checkpointed state diverged after reopen")
	}
	if rd.dur.wal.Size() != 0 {
		t.Fatalf("WAL size %d after checkpointed close, want 0", rd.dur.wal.Size())
	}
	rr, _ := rd.Relation("employees")
	gotStats, err := rr.stTable.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotStats, wantStats) {
		t.Fatal("recovered TableStats diverged from checkpointed ones")
	}
	if rows := rr.stTable.Rows(); rows != rr.Len() {
		t.Fatalf("recovered stats row count %d, want %d", rows, rr.Len())
	}
	// The recovered database keeps working durably.
	if _, err := rr.Insert(emp(90, "post", 1)); err != nil {
		t.Fatal(err)
	}
	if err := rd.Checkpoint(); err != nil {
		t.Fatal(err)
	}
}

// TestCrashReplayPreservesStats recovers without a checkpoint: pure WAL
// replay must rebuild the statistics through the same observations the
// live run made.
func TestCrashReplayPreservesStats(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDB(dir, tortureOpts())
	if err != nil {
		t.Fatal(err)
	}
	tortureWorkload(t, d)
	r, _ := d.Relation("employees")
	wantStats, err := r.stTable.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.dur.wal.Sync(); err != nil {
		t.Fatal(err)
	}
	// No Close: simulate a kill. Drain maintenance so the abandoned
	// database stops touching the directory the recovered one reads.
	d.Quiesce()
	rd, err := OpenDB(dir, tortureOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	rr, _ := rd.Relation("employees")
	gotStats, err := rr.stTable.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotStats, wantStats) {
		t.Fatal("replayed TableStats diverged from the live run's")
	}
}

// TestDurableMaintenance exercises the automatic paths the torture
// tests disable: WAL-size-triggered checkpoints and compaction of a
// delete-heavy disk tier, racing ordinary traffic.
func TestDurableMaintenance(t *testing.T) {
	dir := t.TempDir()
	opts := storage.Options{
		Fsync:              storage.SyncNever,
		MemtableEntries:    8,
		CheckpointWALBytes: 512,
	}
	d, err := OpenDB(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.DefineType(employeesSchema(t).Cols[2].Type); err != nil {
		t.Fatal(err)
	}
	r, err := d.Create(employeesSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 99; i++ {
		if _, err := r.Insert(emp(i, fmt.Sprintf("N%d", i), int(i%4))); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(1); i <= 90; i++ {
		if !r.Delete([]value.Value{value.Int(i)}) {
			t.Fatalf("delete %d ineffective", i)
		}
	}
	want := fingerprint(t, d)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	rd, err := OpenDB(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	if got := fingerprint(t, rd); got != want {
		t.Fatal("state diverged across checkpoint/compaction cycle")
	}
}

// chunkTestDB builds a durable database holding one checkpointed
// employee and returns its directory, the checkpoint's last sequence
// number, and the relation's id — the fixture for hand-written WAL
// chunk groups.
func chunkTestDB(t *testing.T) (dir string, seq uint64, relID int) {
	t.Helper()
	dir = t.TempDir()
	d, err := OpenDB(dir, tortureOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.DefineType(employeesSchema(t).Cols[2].Type); err != nil {
		t.Fatal(err)
	}
	r, err := d.Create(employeesSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Insert(emp(1, "base", 1)); err != nil {
		t.Fatal(err)
	}
	relID = r.ID()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	m, ok, err := storage.ReadManifest(dir)
	if err != nil || !ok {
		t.Fatalf("manifest after close: ok=%v err=%v", ok, err)
	}
	return dir, m.LastSeq, relID
}

// appendWALRecords appends hand-built records to a closed database's
// log, simulating the tail a crash left behind.
func appendWALRecords(t *testing.T, dir string, recs []storage.Record) {
	t.Helper()
	w, _, err := storage.RecoverWAL(dir, storage.SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		payload, err := storage.EncodeRecord(rec)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// enrs lists a database's employee keys in scan order.
func enrs(t *testing.T, d *DB) []int64 {
	t.Helper()
	r, ok := d.Relation("employees")
	if !ok {
		t.Fatal("employees missing")
	}
	var out []int64
	r.Scan(func(_ value.Value, tuple []value.Value) bool {
		out = append(out, tuple[0].AsInt())
		return true
	})
	return out
}

// TestAssignChunkReplay replays a hand-written OpAssign chunk group: a
// complete group must apply as one atomic assignment, a torn group
// (final chunk missing) must be wholly dropped, and an orphan
// continuation chunk is corruption.
func TestAssignChunkReplay(t *testing.T) {
	t.Run("complete", func(t *testing.T) {
		dir, seq, relID := chunkTestDB(t)
		appendWALRecords(t, dir, []storage.Record{
			{Seq: seq + 1, Op: storage.OpAssign, Rel: relID, More: true, Tuples: [][]value.Value{emp(2, "b", 1)}},
			{Seq: seq + 2, Op: storage.OpAssign, Rel: relID, Cont: true, Tuples: [][]value.Value{emp(3, "c", 2)}},
		})
		d, err := OpenDB(dir, tortureOpts())
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		if got := enrs(t, d); len(got) != 2 || got[0] != 2 || got[1] != 3 {
			t.Fatalf("recovered keys %v, want the merged assignment [2 3]", got)
		}
	})
	t.Run("torn", func(t *testing.T) {
		dir, seq, relID := chunkTestDB(t)
		appendWALRecords(t, dir, []storage.Record{
			{Seq: seq + 1, Op: storage.OpAssign, Rel: relID, More: true, Tuples: [][]value.Value{emp(2, "b", 1)}},
		})
		d, err := OpenDB(dir, tortureOpts())
		if err != nil {
			t.Fatal(err)
		}
		if got := enrs(t, d); len(got) != 1 || got[0] != 1 {
			t.Fatalf("recovered keys %v, want the pre-assignment [1] (torn group dropped)", got)
		}
		// The database must keep working durably past the dropped group.
		r, _ := d.Relation("employees")
		if _, err := r.Insert(emp(4, "post", 1)); err != nil {
			t.Fatal(err)
		}
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
		rd, err := OpenDB(dir, tortureOpts())
		if err != nil {
			t.Fatal(err)
		}
		defer rd.Close()
		if got := enrs(t, rd); len(got) != 2 || got[0] != 1 || got[1] != 4 {
			t.Fatalf("keys %v after reopen, want [1 4]", got)
		}
	})
	t.Run("orphan", func(t *testing.T) {
		dir, seq, relID := chunkTestDB(t)
		appendWALRecords(t, dir, []storage.Record{
			{Seq: seq + 1, Op: storage.OpAssign, Rel: relID, Cont: true, Tuples: [][]value.Value{emp(2, "b", 1)}},
		})
		if d, err := OpenDB(dir, tortureOpts()); err == nil {
			d.Close()
			t.Fatal("orphan continuation chunk replayed without error")
		}
	})
}

// TestWALFailureFailsStop: once a WAL append fails, the database must
// fail stop — the failing delete is refused (not acknowledged and then
// resurrected by recovery), every later mutation and checkpoint returns
// the sticky error, Close surfaces it, and reopening recovers the last
// durable state.
func TestWALFailureFailsStop(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDB(dir, tortureOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.DefineType(employeesSchema(t).Cols[2].Type); err != nil {
		t.Fatal(err)
	}
	r, err := d.Create(employeesSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 2; i++ {
		if _, err := r.Insert(emp(i, fmt.Sprintf("N%d", i), 1)); err != nil {
			t.Fatal(err)
		}
	}
	want := fingerprint(t, d)

	// Fault injection: close the log out from under the database; every
	// append from here on fails.
	if err := d.dur.wal.Close(); err != nil {
		t.Fatal(err)
	}
	if r.Delete([]value.Value{value.Int(1)}) {
		t.Fatal("unloggable delete acknowledged")
	}
	if _, ok := r.Get([]value.Value{value.Int(1)}); !ok {
		t.Fatal("refused delete removed the element anyway")
	}
	if _, err := r.Insert(emp(9, "late", 1)); err == nil {
		t.Fatal("insert after durability failure succeeded")
	}
	if err := r.Assign([][]value.Value{emp(8, "bulk", 1)}); err == nil {
		t.Fatal("assign after durability failure succeeded")
	}
	if _, err := r.CreateIndex("estatus"); err == nil {
		t.Fatal("index creation after durability failure succeeded")
	}
	if err := d.Checkpoint(); err == nil {
		t.Fatal("checkpoint after durability failure succeeded")
	}
	if got := fingerprint(t, d); got != want {
		t.Fatal("refused mutations changed the in-memory state")
	}
	if err := d.Close(); err == nil {
		t.Fatal("Close swallowed the sticky durability error")
	}

	rd, err := OpenDB(dir, tortureOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	if got := fingerprint(t, rd); got != want {
		t.Fatal("recovered state diverged from the last durable state")
	}
}

// TestLargeAssignChunkedDurable drives an assignment past the 8 MiB
// chunk threshold through the public mutator: the log must hold it as
// multiple bounded frames (a single frame this size would previously
// poison recovery, which truncates at any over-limit frame), and pure
// WAL replay must recover the full assignment.
func TestLargeAssignChunkedDurable(t *testing.T) {
	if testing.Short() {
		t.Skip("writes ~20MB")
	}
	dir := t.TempDir()
	opts := storage.Options{Fsync: storage.SyncNever, CheckpointWALBytes: -1}
	d, err := OpenDB(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	sch, err := schema.NewRelSchema("blobs", []schema.Column{
		{Name: "id", Type: schema.IntType("bidtype", 1, 1<<30)},
		{Name: "payload", Type: schema.StringType("blobtype", 1<<20)},
	}, []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	r, err := d.Create(sch)
	if err != nil {
		t.Fatal(err)
	}
	blob := strings.Repeat("x", 9000)
	var tuples [][]value.Value
	for i := int64(1); i <= 1200; i++ {
		tuples = append(tuples, []value.Value{value.Int(i), value.String_(fmt.Sprintf("%s%d", blob, i))})
	}
	if err := r.Assign(tuples); err != nil {
		t.Fatal(err)
	}
	if err := d.dur.wal.Sync(); err != nil {
		t.Fatal(err)
	}
	d.Quiesce() // abandon without Close: recovery must come from the WAL

	walData, err := os.ReadFile(filepath.Join(dir, storage.WALName))
	if err != nil {
		t.Fatal(err)
	}
	payloads, valid := storage.ScanFrames(walData)
	if valid != int64(len(walData)) {
		t.Fatalf("WAL tail invalid: %d of %d bytes", valid, len(walData))
	}
	if len(payloads) < 3 { // CreateRel + at least two assignment chunks
		t.Fatalf("%d WAL records, want the assignment chunked into several", len(payloads))
	}
	want := fingerprint(t, d)

	rd, err := OpenDB(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	if got := fingerprint(t, rd); got != want {
		t.Fatal("replayed chunked assignment diverged from the live state")
	}
	rr, _ := rd.Relation("blobs")
	if rr.Len() != len(tuples) {
		t.Fatalf("recovered %d tuples, want %d", rr.Len(), len(tuples))
	}
}
