package relation

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"pascalr/internal/stats"
	"pascalr/internal/storage"
	"pascalr/internal/value"
)

// tortureOpts forces the disk tier to exercise everything: a tiny
// memtable spills SSTables constantly, automatic checkpoints are off so
// the WAL holds the whole history, and fsync is off for speed (the
// torture kills by truncating copies, not the kernel).
func tortureOpts() storage.Options {
	return storage.Options{
		Fsync:              storage.SyncNever,
		MemtableEntries:    4,
		CheckpointWALBytes: -1,
	}
}

// fingerprint digests everything a query can observe: per relation (in
// declaration order) the slot layout, every live (slot, tuple) pair in
// scan order, the live count, and every permanent index's entries in
// iteration order. Two databases with equal fingerprints answer every
// query identically, references included.
func fingerprint(t *testing.T, d *DB) string {
	t.Helper()
	h := sha256.New()
	sink := &stats.Counters{}
	for _, name := range d.Catalog().Relations() {
		r, ok := d.Relation(name)
		if !ok {
			t.Fatalf("relation %s in catalog but not attached", name)
		}
		// ScanSlots is the lock-free snapshot path: its callers must
		// hold the content read lock (as the engine does), or a
		// background compaction can swap SSTables mid-scan. Scoped to
		// the scan only — Indexes() re-acquires the same lock itself.
		d.RLock()
		fmt.Fprintf(h, "rel %s span=%d len=%d\n", name, r.SlotSpan(), r.Len())
		err := r.ScanSlots(sink, 0, r.SlotSpan(), func(ref value.Value, tuple []value.Value) bool {
			fmt.Fprintf(h, "  %s -> %s\n", value.EncodeKey([]value.Value{ref}), value.EncodeKey(tuple))
			return true
		})
		d.RUnlock()
		if err != nil {
			t.Fatalf("scan %s: %v", name, err)
		}
		for _, col := range r.Indexes() {
			ix, _ := r.Index(col)
			fmt.Fprintf(h, "  index %s len=%d\n", col, ix.Len())
			// Sorted: a manifest-restored index backfills in slot order,
			// which may differ from the live run's insertion order while
			// indexing the identical set.
			var lines []string
			ix.Entries(func(v, ref value.Value) {
				lines = append(lines, value.EncodeKey([]value.Value{v})+"="+value.EncodeKey([]value.Value{ref}))
			})
			sort.Strings(lines)
			for _, l := range lines {
				fmt.Fprintf(h, "   %s\n", l)
			}
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// tortureWorkload drives one logged record per step against d and
// returns the fingerprint after every step: fps[k] is the state with
// exactly the first k records applied. The mix covers every WAL op —
// type and relation DDL, index creation, inserts (spilling SSTables at
// the tiny memtable threshold), deletes, and a bulk assignment.
func tortureWorkload(t *testing.T, d *DB) []string {
	t.Helper()
	fps := []string{fingerprint(t, d)}
	step := func(what string, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", what, err)
		}
		fps = append(fps, fingerprint(t, d))
	}

	sch := employeesSchema(t)
	enum, _ := sch.Cols[2].Type, ""
	step("define type", d.DefineType(enum))
	r, err := d.Create(sch)
	step("create", err)
	for i := int64(1); i <= 10; i++ {
		_, err := r.Insert(emp(i, fmt.Sprintf("P%d", i), int(i%4)))
		step("insert", err)
	}
	_, err = r.CreateIndex("estatus")
	step("create index", err)
	for _, k := range []int64{3, 7} {
		if !r.Delete([]value.Value{value.Int(k)}) {
			t.Fatalf("delete %d ineffective", k)
		}
		step("delete", nil)
	}
	for i := int64(11); i <= 16; i++ {
		_, err := r.Insert(emp(i, fmt.Sprintf("Q%d", i), int(i%4)))
		step("insert", err)
	}
	var bulk [][]value.Value
	for i := int64(1); i <= 7; i++ {
		bulk = append(bulk, emp(i*2, fmt.Sprintf("R%d", i), int(i%4)))
	}
	step("assign", r.Assign(bulk))
	for i := int64(30); i <= 34; i++ {
		_, err := r.Insert(emp(i, fmt.Sprintf("S%d", i), int(i%4)))
		step("insert", err)
	}
	if !r.Delete([]value.Value{value.Int(4)}) {
		t.Fatal("final delete ineffective")
	}
	step("delete", nil)
	return fps
}

// cloneDirTruncated copies a database directory, truncating the WAL
// copy to walLen bytes — the state a crash at that write offset leaves
// behind.
func cloneDirTruncated(t *testing.T, src, dst string, walLen int) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if e.Name() == storage.WALName {
			data = data[:walLen]
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestWALTortureEveryOffset kills replay at every byte offset of the
// log: for each prefix length, recovery must land exactly on the state
// after the last wholly-durable record — never a half-applied one —
// including SSTables the memtable had spilled past the checkpoint
// (orphans are dropped and deterministically recreated by replay).
func TestWALTortureEveryOffset(t *testing.T) {
	src := t.TempDir()
	d, err := OpenDB(src, tortureOpts())
	if err != nil {
		t.Fatal(err)
	}
	fps := tortureWorkload(t, d)
	if err := d.dur.wal.Sync(); err != nil {
		t.Fatal(err)
	}
	// Abandon d without Close: Close would checkpoint and reset the
	// log. Drain background maintenance first so the directory is a
	// static crash image (any compacted tables become orphans that
	// recovery deletes and replay deterministically recreates).
	d.Quiesce()
	walData, err := os.ReadFile(filepath.Join(src, storage.WALName))
	if err != nil {
		t.Fatal(err)
	}
	if _, valid := storage.ScanFrames(walData); valid != int64(len(walData)) {
		t.Fatalf("workload WAL has invalid tail: %d of %d bytes valid", valid, len(walData))
	}

	stride := 1
	if testing.Short() {
		stride = 17
	}
	scratch := t.TempDir()
	for off := 0; off <= len(walData); off += stride {
		payloads, valid := storage.ScanFrames(walData[:off])
		k := len(payloads)
		dir := filepath.Join(scratch, fmt.Sprintf("off%d", off))
		cloneDirTruncated(t, src, dir, off)
		rd, err := OpenDB(dir, tortureOpts())
		if err != nil {
			t.Fatalf("offset %d: reopen: %v", off, err)
		}
		if got := fingerprint(t, rd); got != fps[k] {
			t.Fatalf("offset %d (%d records durable): recovered state diverged", off, k)
		}
		// The torn tail must be gone from the recovered log, so the
		// next append extends a clean prefix.
		if rd.dur.wal.Size() != valid {
			t.Fatalf("offset %d: recovered WAL size %d, want %d", off, rd.dur.wal.Size(), valid)
		}
		if err := rd.Close(); err != nil {
			t.Fatalf("offset %d: close: %v", off, err)
		}
		if err := os.RemoveAll(dir); err != nil {
			t.Fatal(err)
		}
	}
}

// TestWALTortureCorruptTail flips single bytes in the log: the CRC must
// catch the damage, and recovery must stop at the record before the
// corrupt frame — wholly dropping it, never applying a mangled version.
func TestWALTortureCorruptTail(t *testing.T) {
	src := t.TempDir()
	d, err := OpenDB(src, tortureOpts())
	if err != nil {
		t.Fatal(err)
	}
	fps := tortureWorkload(t, d)
	d.Quiesce() // static crash image; see TestWALTortureEveryOffset
	walData, err := os.ReadFile(filepath.Join(src, storage.WALName))
	if err != nil {
		t.Fatal(err)
	}

	stride := 13
	if testing.Short() {
		stride = 101
	}
	scratch := t.TempDir()
	for pos := 0; pos < len(walData); pos += stride {
		// Records wholly before the corrupt byte survive; the frame
		// containing it and everything after must vanish.
		payloads, _ := storage.ScanFrames(walData[:pos])
		k := len(payloads)
		dir := filepath.Join(scratch, fmt.Sprintf("pos%d", pos))
		cloneDirTruncated(t, src, dir, len(walData))
		mangled := append([]byte(nil), walData...)
		mangled[pos] ^= 0x40
		if err := os.WriteFile(filepath.Join(dir, storage.WALName), mangled, 0o644); err != nil {
			t.Fatal(err)
		}
		rd, err := OpenDB(dir, tortureOpts())
		if err != nil {
			t.Fatalf("corrupt byte %d: reopen: %v", pos, err)
		}
		if got := fingerprint(t, rd); got != fps[k] {
			t.Fatalf("corrupt byte %d (%d records intact): recovered state diverged", pos, k)
		}
		if err := rd.Close(); err != nil {
			t.Fatalf("corrupt byte %d: close: %v", pos, err)
		}
		if err := os.RemoveAll(dir); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCheckpointRoundTrip closes cleanly (checkpoint) and reopens: the
// state, the WAL (now empty), and the persisted table statistics must
// all come back exactly — recovery must not reset TableStats.
func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDB(dir, tortureOpts())
	if err != nil {
		t.Fatal(err)
	}
	fps := tortureWorkload(t, d)
	want := fps[len(fps)-1]
	r, _ := d.Relation("employees")
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	wantStats, err := r.stTable.Marshal()
	if err != nil {
		t.Fatal(err)
	}

	rd, err := OpenDB(dir, tortureOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	if got := fingerprint(t, rd); got != want {
		t.Fatal("checkpointed state diverged after reopen")
	}
	if rd.dur.wal.Size() != 0 {
		t.Fatalf("WAL size %d after checkpointed close, want 0", rd.dur.wal.Size())
	}
	rr, _ := rd.Relation("employees")
	gotStats, err := rr.stTable.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotStats, wantStats) {
		t.Fatal("recovered TableStats diverged from checkpointed ones")
	}
	if rows := rr.stTable.Rows(); rows != rr.Len() {
		t.Fatalf("recovered stats row count %d, want %d", rows, rr.Len())
	}
	// The recovered database keeps working durably.
	if _, err := rr.Insert(emp(90, "post", 1)); err != nil {
		t.Fatal(err)
	}
	if err := rd.Checkpoint(); err != nil {
		t.Fatal(err)
	}
}

// TestCrashReplayPreservesStats recovers without a checkpoint: pure WAL
// replay must rebuild the statistics through the same observations the
// live run made.
func TestCrashReplayPreservesStats(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDB(dir, tortureOpts())
	if err != nil {
		t.Fatal(err)
	}
	tortureWorkload(t, d)
	r, _ := d.Relation("employees")
	wantStats, err := r.stTable.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.dur.wal.Sync(); err != nil {
		t.Fatal(err)
	}
	// No Close: simulate a kill. Drain maintenance so the abandoned
	// database stops touching the directory the recovered one reads.
	d.Quiesce()
	rd, err := OpenDB(dir, tortureOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	rr, _ := rd.Relation("employees")
	gotStats, err := rr.stTable.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotStats, wantStats) {
		t.Fatal("replayed TableStats diverged from the live run's")
	}
}

// TestDurableMaintenance exercises the automatic paths the torture
// tests disable: WAL-size-triggered checkpoints and compaction of a
// delete-heavy disk tier, racing ordinary traffic.
func TestDurableMaintenance(t *testing.T) {
	dir := t.TempDir()
	opts := storage.Options{
		Fsync:              storage.SyncNever,
		MemtableEntries:    8,
		CheckpointWALBytes: 512,
	}
	d, err := OpenDB(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.DefineType(employeesSchema(t).Cols[2].Type); err != nil {
		t.Fatal(err)
	}
	r, err := d.Create(employeesSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 99; i++ {
		if _, err := r.Insert(emp(i, fmt.Sprintf("N%d", i), int(i%4))); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(1); i <= 90; i++ {
		if !r.Delete([]value.Value{value.Int(i)}) {
			t.Fatalf("delete %d ineffective", i)
		}
	}
	want := fingerprint(t, d)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	rd, err := OpenDB(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	if got := fingerprint(t, rd); got != want {
		t.Fatal("state diverged across checkpoint/compaction cycle")
	}
}
