package relation

import (
	"testing"
	"testing/quick"

	"pascalr/internal/schema"
	"pascalr/internal/value"
)

func intRel(t *testing.T) *Relation {
	t.Helper()
	return New(schema.MustRelSchema("r", []schema.Column{
		{Name: "k", Type: schema.IntType("", 0, 1000)},
		{Name: "v", Type: schema.IntType("", 0, 1000)},
	}, []string{"k"}), 0)
}

func TestCreateIndexBackfillsAndMaintains(t *testing.T) {
	r := intRel(t)
	for i := int64(0); i < 10; i++ {
		if _, err := r.Insert([]value.Value{value.Int(i), value.Int(i % 3)}); err != nil {
			t.Fatal(err)
		}
	}
	ix, err := r.CreateIndex("v")
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 10 {
		t.Errorf("backfill = %d entries", ix.Len())
	}
	if got := len(ix.ProbeEq(value.Int(0))); got != 4 { // 0,3,6,9
		t.Errorf("ProbeEq(0) = %d", got)
	}
	// Maintenance under insert.
	r.Insert([]value.Value{value.Int(100), value.Int(0)})
	if got := len(ix.ProbeEq(value.Int(0))); got != 5 {
		t.Errorf("after insert ProbeEq(0) = %d", got)
	}
	// Maintenance under delete.
	r.Delete([]value.Value{value.Int(0)})
	if got := len(ix.ProbeEq(value.Int(0))); got != 4 {
		t.Errorf("after delete ProbeEq(0) = %d", got)
	}
	// Maintenance under assign.
	if err := r.Assign([][]value.Value{{value.Int(1), value.Int(7)}}); err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 1 || len(ix.ProbeEq(value.Int(7))) != 1 {
		t.Errorf("after assign Len=%d", ix.Len())
	}
	// Duplicate index and unknown component error.
	if _, err := r.CreateIndex("v"); err == nil {
		t.Errorf("duplicate index accepted")
	}
	if _, err := r.CreateIndex("ghost"); err == nil {
		t.Errorf("unknown component accepted")
	}
	if cols := r.Indexes(); len(cols) != 1 || cols[0] != "v" {
		t.Errorf("Indexes = %v", cols)
	}
	if got, ok := r.Index("v"); !ok || got.Col() != "v" {
		t.Errorf("Index lookup failed")
	}
}

func TestColIndexProbeOperators(t *testing.T) {
	r := intRel(t)
	for i, v := range []int64{1, 3, 3, 5} {
		r.Insert([]value.Value{value.Int(int64(i)), value.Int(v)})
	}
	ix, _ := r.CreateIndex("v")
	count := func(op value.CmpOp, pv int64) int {
		n := 0
		ix.Probe(op, value.Int(pv), func(value.Value) { n++ })
		return n
	}
	cases := []struct {
		op   value.CmpOp
		pv   int64
		want int
	}{
		{value.OpEq, 3, 2},
		{value.OpNe, 3, 2},
		{value.OpLt, 3, 1},  // 3 < iv: 5
		{value.OpLe, 3, 3},  // 3,3,5
		{value.OpGt, 3, 1},  // 1
		{value.OpGe, 3, 3},  // 1,3,3
		{value.OpLt, 0, 4},  // all
		{value.OpGt, 99, 4}, // all
	}
	for _, c := range cases {
		if got := count(c.op, c.pv); got != c.want {
			t.Errorf("Probe(%v,%d) = %d, want %d", c.op, c.pv, got, c.want)
		}
	}
	// Entries enumerates everything.
	n := 0
	ix.Entries(func(v, ref value.Value) { n++ })
	if n != 4 {
		t.Errorf("Entries = %d", n)
	}
}

// Property: after arbitrary insert/delete sequences, index probes agree
// with a naive scan for every operator.
func TestColIndexMatchesScan(t *testing.T) {
	f := func(ops []uint16, probe uint8) bool {
		r := intRel(t)
		ix, _ := r.CreateIndex("v")
		for i, op := range ops {
			k := int64(op % 50)
			if op%3 == 0 {
				r.Delete([]value.Value{value.Int(k)})
			} else {
				r.Insert([]value.Value{value.Int(k), value.Int(int64(i % 7))})
			}
		}
		pv := value.Int(int64(probe % 7))
		for _, op := range value.AllOps {
			want := 0
			r.Scan(func(_ value.Value, tup []value.Value) bool {
				if ok, _ := op.Apply(pv, tup[1]); ok {
					want++
				}
				return true
			})
			got := 0
			ix.Probe(op, pv, func(ref value.Value) {
				if _, err := r.Deref(ref); err != nil {
					t.Errorf("index returned stale ref")
				}
				got++
			})
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
