// Package relation implements PASCAL/R's relation variables: slotted
// tuple storage with stable element references (the paper's
// @rel[keyval] construct), a primary key index that backs selected
// variables rel[keyval], and the insert (:+), delete (:-), and assign
// (:=) operators.
//
// References are the central intermediate currency of the query
// processor: the collection phase compresses records to references, and
// the combination phase manipulates only reference relations. A
// reference stays valid until its element is deleted; dereferencing a
// stale reference is detected through the storage backend's append-only
// slot discipline (slots never revive, so a live slot is always at
// generation zero).
//
// Tuples live in a pluggable storage.Backend: the in-memory slot array
// by default, or the SSTable-backed disk tier for durable databases
// (OpenDB). Relations created through DB.Create share the database's
// content RWMutex (see the locking discipline on DB): exported mutators
// and readers lock per call, while the snapshot accessors (ScanSlots,
// SlotSpan, deref via DB.Deref) rely on the caller holding the database
// read lock. Standalone relations (New) carry no lock and stay as cheap
// as before — the engine's per-execution result relations are built
// that way.
package relation

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"pascalr/internal/colbatch"
	"pascalr/internal/schema"
	"pascalr/internal/stats"
	"pascalr/internal/storage"
	"pascalr/internal/value"
)

// ErrStale marks a dereference of a reference whose element was deleted
// (or replaced by an assignment) after the reference was issued. Under
// concurrent writers a query's construction phase can observe it; the
// engine's materializing path retries against a fresh snapshot, while
// streaming cursors surface it to the caller.
var ErrStale = errors.New("stale reference")

// Relation is one relation variable: a set of identically structured
// elements with a declared key.
type Relation struct {
	sch   *schema.RelSchema
	id    int             // catalog id used inside reference values
	store storage.Backend // slot storage (memory by default)
	live  atomic.Int64

	colIndexes map[string]*ColIndex // permanent indexes, by component

	// batchKinds/batchEnums are the schema-derived per-column storage
	// classes handed to Batch.Configure on every batch scan: the value
	// kind of each column and, for enum columns, the enumeration type
	// name (needed to reconstruct boxed values from ordinals). Computed
	// once at construction — the schema is immutable — so concurrent
	// scan shards share them read-only.
	batchKinds []value.Kind
	batchEnums []string

	// onMutate, when set (by DB.Create), is called after every content
	// mutation — the hook behind DB.Version.
	onMutate func()

	// stTable is the incrementally maintained statistics of this
	// relation (histograms, distinct counts, slot density), fed by every
	// insert, delete, and assignment under the content write lock; nil
	// for standalone relations, which skip all statistics work. owner
	// points back at the database for drift-triggered background
	// rebuilds and write-ahead logging.
	stTable *stats.TableStats
	owner   *DB
	// mutCount counts this relation's content mutations — the
	// per-relation staleness key for statistics snapshots, so a mutation
	// of one relation invalidates only its own cached statistics.
	mutCount atomic.Uint64

	// lk is the owning database's content lock; nil for standalone
	// relations, which then skip all locking.
	lk *sync.RWMutex

	st *stats.Counters
}

// New creates an empty relation with the given schema and catalog id,
// backed by in-memory slot storage. The id must fit in 16 bits (it is
// packed into reference values).
func New(sch *schema.RelSchema, id int) *Relation {
	if id < 0 || id > 0xFFFF {
		panic(fmt.Sprintf("relation: id %d out of range", id))
	}
	kinds := make([]value.Kind, len(sch.Cols))
	enums := make([]string, len(sch.Cols))
	for i, c := range sch.Cols {
		kinds[i] = c.Type.ValueKind()
		if kinds[i] == value.KindEnum {
			enums[i] = c.Type.Name
		}
	}
	return &Relation{sch: sch, id: id, store: storage.NewMemory(),
		batchKinds: kinds, batchEnums: enums}
}

func (r *Relation) lock() {
	if r.lk != nil {
		r.lk.Lock()
	}
}

func (r *Relation) unlock() {
	if r.lk != nil {
		r.lk.Unlock()
	}
}

func (r *Relation) rlock() {
	if r.lk != nil {
		r.lk.RLock()
	}
}

func (r *Relation) runlock() {
	if r.lk != nil {
		r.lk.RUnlock()
	}
}

// Schema returns the relation's schema.
func (r *Relation) Schema() *schema.RelSchema { return r.sch }

// Name returns the relation's name.
func (r *Relation) Name() string { return r.sch.Name }

// ID returns the catalog id used in reference values.
func (r *Relation) ID() int { return r.id }

// Len returns the number of elements. It is an atomic read, safe
// without any lock (and in particular safe under the engine's phase
// lock, where the locking accessors would deadlock).
func (r *Relation) Len() int { return int(r.live.Load()) }

// SetStats attaches a counter sink; scans, reads, and permanent-index
// probes through the locking accessors are recorded there. A nil sink
// disables counting. Engine executions bypass the attached sink and
// pass their own.
func (r *Relation) SetStats(st *stats.Counters) {
	r.lock()
	defer r.unlock()
	r.setStats(st)
}

func (r *Relation) setStats(st *stats.Counters) {
	r.st = st
	for _, ix := range r.colIndexes {
		ix.st = st
	}
}

// AccessCost returns the storage backend's access-cost profile, in
// units where an in-memory slot read is 1.0. The shard balancer budgets
// finer work units for expensive backends; plan shape does not consult
// it (see stats.CostProfile).
func (r *Relation) AccessCost() stats.CostProfile {
	c := r.store.Costs()
	return stats.CostProfile{ScanTuple: c.ScanTuple, Probe: c.Probe}
}

// Insert implements the :+ operator for a single element. Inserting an
// element whose key is present with identical non-key components is a
// no-op (relations are sets); a key collision with different components
// is an error. It returns the element's reference.
func (r *Relation) Insert(tuple []value.Value) (value.Value, error) {
	r.lock()
	if err := r.durableErr(); err != nil {
		r.unlock()
		return value.Value{}, err
	}
	ref, added, err := r.insert(tuple)
	var tk storage.Ticket
	if err == nil && added {
		tk, err = r.logMutation(storage.Record{Op: storage.OpInsert, Rel: r.id, Tuple: tuple})
	}
	r.unlock()
	// Group-commit rendezvous outside the lock: concurrent inserters'
	// frames coalesce into one fsync (see storage.WAL).
	if err == nil {
		err = r.waitDurable(tk)
	}
	return ref, err
}

// insert applies one insertion without logging; it reports whether the
// relation actually changed (false for the idempotent re-insert of an
// identical element).
func (r *Relation) insert(tuple []value.Value) (value.Value, bool, error) {
	if err := r.sch.CheckTuple(tuple); err != nil {
		return value.Value{}, false, err
	}
	k := r.sch.EncodeKeyOf(tuple)
	if si, ok := r.store.LookupKey(k); ok {
		existing, _, err := r.store.Get(si)
		if err != nil {
			return value.Value{}, false, err
		}
		if tuplesEqual(existing, tuple) {
			return r.refOf(si), false, nil
		}
		return value.Value{}, false, fmt.Errorf("relation %s: key %s already present with different components",
			r.sch.Name, formatKey(r.sch, tuple))
	}
	cp := make([]value.Value, len(tuple))
	copy(cp, tuple)
	si, err := r.store.Append(k, cp)
	if err != nil {
		return value.Value{}, false, err
	}
	r.live.Add(1)
	ref := r.refOf(si)
	for _, ix := range r.colIndexes {
		ix.add(cp[ix.colIdx], ref)
	}
	drifted := r.stTable.ObserveInsert(si, cp)
	r.mutated(drifted)
	return ref, true, nil
}

// Delete implements the :- operator for a single element identified by
// its key values. It reports whether an element was removed. References
// to the removed element become stale.
//
// Unlike Insert and Assign, Delete logs before applying: its boolean
// signature has no error channel, so a WAL failure after the in-memory
// delete would acknowledge a mutation that recovery silently undoes.
// Logging first lets a durability failure refuse the delete outright —
// the element stays, the caller sees false, and the failure is recorded
// as the database's sticky durability error (failing every subsequent
// mutation and checkpoint until the database is reopened). The
// effectiveness check runs before logging, under the same write lock
// the apply runs under, so a logged delete is always effective —
// replay treats a logged delete of an absent key as corruption.
//
// For the same reason Delete waits for durability UNDER the write lock,
// before applying: releasing the lock first would let the delete fail
// after returning, and the boolean could not take it back. Deletes
// therefore don't coalesce into group commits — the price of a truthful
// boolean, and no worse than the old fsync-per-record behavior.
func (r *Relation) Delete(keyVals []value.Value) bool {
	r.lock()
	defer r.unlock()
	k := value.EncodeKey(keyVals)
	si, ok := r.store.LookupKey(k)
	if !ok {
		return false
	}
	if _, live, err := r.store.Get(si); err != nil || !live {
		return false
	}
	tk, err := r.logMutation(storage.Record{Op: storage.OpDelete, Rel: r.id, Key: keyVals})
	if err != nil || r.waitDurable(tk) != nil {
		return false
	}
	return r.delete(keyVals)
}

// delete applies one deletion without logging.
func (r *Relation) delete(keyVals []value.Value) bool {
	k := value.EncodeKey(keyVals)
	si, ok := r.store.LookupKey(k)
	if !ok {
		return false
	}
	tuple, live, err := r.store.Get(si)
	if err != nil || !live {
		return false
	}
	for _, ix := range r.colIndexes {
		ix.remove(tuple[ix.colIdx], r.refOf(si))
	}
	drifted := r.stTable.ObserveDelete(si, tuple)
	if err := r.store.Delete(si, k); err != nil {
		// Neither backend can fail here today (deletes touch in-memory
		// structures only); fail loudly if one ever does.
		panic(fmt.Sprintf("relation %s: delete slot %d: %v", r.sch.Name, si, err))
	}
	r.live.Add(-1)
	r.mutated(drifted)
	return true
}

// Assign implements the := operator: it replaces the relation's contents
// with the given tuples. All previously issued references become stale.
// Validation (types and intra-list key conflicts) happens before
// anything is destroyed, so a failed assignment leaves the contents
// untouched.
func (r *Relation) Assign(tuples [][]value.Value) error {
	r.lock()
	if err := r.durableErr(); err != nil {
		r.unlock()
		return err
	}
	err := r.assign(tuples)
	var tk storage.Ticket
	if err == nil {
		tk, err = r.logMutation(storage.Record{Op: storage.OpAssign, Rel: r.id, Tuples: tuples})
	}
	r.unlock()
	if err == nil {
		err = r.waitDurable(tk)
	}
	return err
}

// assign applies one assignment without logging.
func (r *Relation) assign(tuples [][]value.Value) error {
	byKey := make(map[string]int, len(tuples))
	for i, t := range tuples {
		if err := r.sch.CheckTuple(t); err != nil {
			return err
		}
		k := r.sch.EncodeKeyOf(t)
		if j, dup := byKey[k]; dup && !tuplesEqual(tuples[j], t) {
			return fmt.Errorf("relation %s: key %s already present with different components",
				r.sch.Name, formatKey(r.sch, t))
		}
		byKey[k] = i
	}
	// Invalidate everything currently stored.
	if err := r.store.Reset(); err != nil {
		return err
	}
	r.live.Store(0)
	for _, ix := range r.colIndexes {
		ix.reset()
	}
	r.stTable.Reset()
	r.mutated(false)
	for _, t := range tuples {
		if _, _, err := r.insert(t); err != nil {
			return err
		}
	}
	return nil
}

// logMutation appends one WAL record for this relation's mutation when
// the owning database is durable, returning the group-commit ticket for
// waitDurable; a no-op for standalone relations and in-memory
// databases. Called under the content write lock.
func (r *Relation) logMutation(rec storage.Record) (storage.Ticket, error) {
	if r.owner == nil {
		return 0, nil
	}
	return r.owner.logRecord(r, rec)
}

// waitDurable blocks until the logged record behind tk is fsynced; a
// no-op for standalone relations, in-memory databases, and zero
// tickets. See DB.waitDurable for the lock discipline.
func (r *Relation) waitDurable(tk storage.Ticket) error {
	if r.owner == nil {
		return nil
	}
	return r.owner.waitDurable(tk)
}

// durableErr returns the owning database's sticky durability error: set
// when a WAL append or covering fsync failed, after which mutators
// refuse to run so the in-memory state cannot drift further from the
// durable state. Nil for standalone relations and in-memory databases.
// Callers hold the content write lock.
func (r *Relation) durableErr() error {
	if r.owner == nil || r.owner.dur == nil {
		return nil
	}
	return r.owner.dur.sticky()
}

// applyReplay applies one already-assembled WAL record to this relation
// during parallel replay. It mirrors applyRecord's per-relation arms but
// calls the lock-free mutator cores directly: the replay job owns the
// relation outright, the DB-wide content lock is not taken (jobs for
// different relations run concurrently), and logging is suppressed by
// the replaying flag anyway. Replay is strict, as in applyRecord: every
// logged record was effective when written.
func (r *Relation) applyReplay(rec storage.Record) error {
	switch rec.Op {
	case storage.OpCreateIndex:
		_, err := r.createIndexLocked(rec.Col)
		return err
	case storage.OpInsert:
		_, _, err := r.insert(rec.Tuple)
		return err
	case storage.OpDelete:
		if !r.delete(rec.Key) {
			return fmt.Errorf("logged delete of absent key in %s", r.sch.Name)
		}
		return nil
	case storage.OpAssign:
		return r.assign(rec.Tuples)
	}
	return fmt.Errorf("unexpected WAL op %d in relation queue", rec.Op)
}

// Lookup implements the selected variable rel[keyval]: it returns the
// reference of the element with the given key values.
func (r *Relation) Lookup(keyVals []value.Value) (value.Value, bool) {
	r.rlock()
	defer r.runlock()
	si, ok := r.store.LookupKey(value.EncodeKey(keyVals))
	if !ok {
		return value.Value{}, false
	}
	return r.refOf(si), true
}

// Get returns the tuple with the given key values.
func (r *Relation) Get(keyVals []value.Value) ([]value.Value, bool) {
	r.rlock()
	defer r.runlock()
	si, ok := r.store.LookupKey(value.EncodeKey(keyVals))
	if !ok {
		return nil, false
	}
	tuple, live, err := r.store.Get(si)
	if err != nil || !live {
		return nil, false
	}
	return tuple, true
}

// Deref regains the element from a reference (the postfix @ operator).
// It errors on references to other relations, stale references, and
// malformed slots.
func (r *Relation) Deref(ref value.Value) ([]value.Value, error) {
	r.rlock()
	defer r.runlock()
	return r.deref(ref)
}

// deref is Deref without the lock, for callers that hold the database
// read lock themselves (DB.Deref under the construction phase).
//
// Staleness detection leans on the backend's append-only discipline:
// slots are never reused, so every live element is at generation zero.
// A reference carrying a non-zero generation predates that invariant
// (it cannot have been minted here) and is stale by construction.
func (r *Relation) deref(ref value.Value) ([]value.Value, error) {
	rel, si, gen := ref.AsRef()
	if rel != r.id {
		return nil, fmt.Errorf("relation %s: reference belongs to relation id %d", r.sch.Name, rel)
	}
	if si < 0 || si >= r.store.SlotSpan() {
		return nil, fmt.Errorf("relation %s: reference slot %d out of range", r.sch.Name, si)
	}
	if gen != 0 {
		return nil, fmt.Errorf("relation %s: %w to slot %d", r.sch.Name, ErrStale, si)
	}
	tuple, live, err := r.store.Get(si)
	if err != nil {
		return nil, fmt.Errorf("relation %s: slot %d: %w", r.sch.Name, si, err)
	}
	if !live {
		return nil, fmt.Errorf("relation %s: %w to slot %d", r.sch.Name, ErrStale, si)
	}
	return tuple, nil
}

// Scan iterates the elements in insertion order, calling fn with each
// element's reference and tuple until fn returns false. One Scan call is
// counted as one base-relation scan against the attached sink. The
// tuple passed to fn must not be modified or retained. The content read
// lock is held for the duration of the scan.
func (r *Relation) Scan(fn func(ref value.Value, tuple []value.Value) bool) {
	r.rlock()
	defer r.runlock()
	r.st.CountScan(r.sch.Name)
	_ = r.scanSlots(r.st, 0, r.store.SlotSpan(), fn)
}

// ScanStats is Scan with an explicit counter sink, so concurrent
// readers (the baseline oracle, statistics analysis) can count into
// private sinks instead of racing on the attached one. A nil sink
// disables counting.
func (r *Relation) ScanStats(st *stats.Counters, fn func(ref value.Value, tuple []value.Value) bool) {
	r.rlock()
	defer r.runlock()
	st.CountScan(r.sch.Name)
	_ = r.scanSlots(st, 0, r.store.SlotSpan(), fn)
}

// SlotSpan returns the exclusive upper bound of slot indexes, the range
// ScanSlots shards partition. Callers must hold the database read lock
// (or otherwise own the relation exclusively).
func (r *Relation) SlotSpan() int { return r.store.SlotSpan() }

// ScanSlots scans the live slots in [lo, hi) in slot order, counting
// tuples (but no scan start — the caller decides what one logical scan
// is, so a sharded scan counts once) into st. It takes no lock: callers
// must hold the database read lock. Sharding a scan into consecutive
// slot ranges visits exactly the elements of a full scan, in an order
// that concatenates shard-locally to the serial order. The error is the
// backend's (disk-tier reads can fail); fn stopping early is not an
// error.
func (r *Relation) ScanSlots(st *stats.Counters, lo, hi int, fn func(ref value.Value, tuple []value.Value) bool) error {
	return r.scanSlots(st, lo, hi, fn)
}

func (r *Relation) scanSlots(st *stats.Counters, lo, hi int, fn func(ref value.Value, tuple []value.Value) bool) error {
	return r.store.Scan(lo, hi, func(si int, tuple []value.Value) bool {
		st.CountTuples(1)
		return fn(r.refOf(si), tuple)
	})
}

// ScanBatches is the columnar counterpart of ScanSlots: it scans the
// live slots in [lo, hi) in slot order, copying tuples into b (the
// storage backend may reuse its tuple buffers, so the batch owns its
// values) and calling fn whenever b fills, plus once more for a final
// partial batch. cols selects which columns to materialize — the
// projection pushdown of the vectorized path: nil materializes every
// column, a non-nil list (possibly empty, for reference-only scans)
// only the named ones, leaving the rest unreadable. Tuples are counted
// in bulk per batch immediately before fn — the sum over batches
// equals the tuple-at-a-time count. fn must not retain the batch; it
// is reset after each call. Like ScanSlots it takes no lock and shards
// concatenate to the serial order. An error from fn aborts the scan
// and is returned.
func (r *Relation) ScanBatches(st *stats.Counters, lo, hi int, b *colbatch.Batch, cols []int, fn func() error) error {
	flush := func() error {
		st.CountTuples(b.Len())
		if err := fn(); err != nil {
			return err
		}
		b.Reset()
		return nil
	}
	b.Configure(r.id, r.batchKinds, r.batchEnums)
	if bf, ok := r.store.(batchFiller); ok {
		return bf.ScanBatchesInto(lo, hi, cols, b, flush)
	}
	appendRow := func(si int, tuple []value.Value) { b.Append(si, tuple) }
	if cols != nil {
		appendRow = func(si int, tuple []value.Value) { b.AppendCols(si, tuple, cols) }
	}
	var ferr error
	err := r.store.Scan(lo, hi, func(si int, tuple []value.Value) bool {
		appendRow(si, tuple)
		if b.Full() {
			if ferr = flush(); ferr != nil {
				return false
			}
		}
		return true
	})
	if ferr != nil {
		return ferr
	}
	if err != nil {
		return err
	}
	if b.Len() > 0 {
		return flush()
	}
	return nil
}

// batchFiller is the optional backend fast path used by ScanBatches:
// the memory backend fills the batch in one tight loop with no per-row
// callbacks. flush counts tuples, forwards the batch, and resets it;
// the backend must call it on every full batch and once for a trailing
// partial one. Backends without it (the disk tier) fall back to the
// generic Scan-driven path above.
type batchFiller interface {
	ScanBatchesInto(lo, hi int, cols []int, b *colbatch.Batch, flush func() error) error
}

// Refs returns the references of all elements in insertion order,
// counting one scan.
func (r *Relation) Refs() []value.Value {
	out := make([]value.Value, 0, r.Len())
	r.Scan(func(ref value.Value, _ []value.Value) bool {
		out = append(out, ref)
		return true
	})
	return out
}

// Tuples returns copies of all tuples in insertion order, counting one
// scan.
func (r *Relation) Tuples() [][]value.Value {
	out := make([][]value.Value, 0, r.Len())
	r.Scan(func(_ value.Value, tuple []value.Value) bool {
		cp := make([]value.Value, len(tuple))
		copy(cp, tuple)
		out = append(out, cp)
		return true
	})
	return out
}

// mutated reports a content change to the owning database (no-op for
// standalone relations). Insert calls it only for genuinely new
// elements, Delete only for present keys, so no-op statements leave the
// database version — and everything tagged with it — untouched. The
// per-relation mutation counter bumps strictly after the statistics
// observed the change, so a snapshot tagged with a counter value never
// misses the mutations that counter covers. drifted is the Observe
// call's verdict (computed under the statistics lock it already held);
// when set, a background re-bucketing is scheduled (single-flight per
// relation).
func (r *Relation) mutated(drifted bool) {
	r.bumpStatsVersion()
	if r.onMutate != nil {
		r.onMutate()
	}
	if drifted && r.owner != nil {
		r.owner.scheduleStatsRebuild(r)
	}
}

// bumpStatsVersion advances the per-relation mutation counter and the
// owning database's statistics epoch (strictly after the statistics
// observed the change — see mutated).
func (r *Relation) bumpStatsVersion() {
	r.mutCount.Add(1)
	if r.owner != nil {
		r.owner.statsEpoch.Add(1)
	}
}

// MutCount returns the relation's content-mutation counter: the
// per-relation staleness key for cached statistics. Atomic, safe
// without any lock.
func (r *Relation) MutCount() uint64 { return r.mutCount.Load() }

// LiveStats returns the relation's incrementally maintained statistics
// (nil for standalone relations). The returned TableStats is internally
// synchronized; mutators keep feeding it.
func (r *Relation) LiveStats() *stats.TableStats { return r.stTable }

// SlotWeights returns per-stripe live-tuple counts and the stripe
// width, for density-balanced shard splitting; nil when no statistics
// are maintained.
func (r *Relation) SlotWeights() ([]int32, int) { return r.stTable.SlotWeights() }

// rebuildStats rescans the relation and replaces its statistics with
// freshly built ones (true quantile bucket boundaries, exact distinct
// counts). It takes the content read lock like any other reader — do
// not call it while holding the database read lock.
func (r *Relation) rebuildStats() *stats.TableStats {
	r.rlock()
	defer r.runlock()
	return r.rebuildStatsLocked()
}

// rebuildStatsLocked is rebuildStats for callers already holding the
// content (read) lock. Standalone relations build a detached summary.
func (r *Relation) rebuildStatsLocked() *stats.TableStats {
	ts := r.stTable
	if ts == nil {
		cols := make([]string, len(r.sch.Cols))
		for i, c := range r.sch.Cols {
			cols[i] = c.Name
		}
		ts = stats.NewTableStats(r.sch.Name, cols)
	}
	rb := ts.NewRebuild()
	// A disk-tier read error aborts the rescan; committing a partial
	// rebuild would be worse than keeping the drifted statistics.
	if err := r.store.Scan(0, r.store.SlotSpan(), func(si int, tuple []value.Value) bool {
		rb.Add(si, tuple)
		return true
	}); err != nil {
		return ts
	}
	rb.Commit()
	if r.stTable != nil {
		// The rebuild changed the statistics without changing contents:
		// bump the statistics version (after the commit, so a snapshot
		// tagged with the new value always includes the rebuilt state)
		// or cached estimator snapshots would keep serving the
		// pre-rebuild histograms. Deliberately not mutated(): the DB
		// content version must not move — compiled plans stay valid.
		r.bumpStatsVersion()
	}
	return ts
}

// refOf mints the reference of slot si. Generation is always zero: the
// backend never revives a slot, so liveness alone decides staleness.
func (r *Relation) refOf(si int) value.Value {
	return value.Ref(r.id, si, 0)
}

func tuplesEqual(a, b []value.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !value.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

func formatKey(sch *schema.RelSchema, tuple []value.Value) string {
	key := sch.KeyOf(tuple)
	s := "<"
	for i, v := range key {
		if i > 0 {
			s += ","
		}
		s += v.String()
	}
	return s + ">"
}
