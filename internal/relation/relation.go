// Package relation implements PASCAL/R's in-memory relation variables:
// slotted tuple storage with stable element references (the paper's
// @rel[keyval] construct), a primary key index that backs selected
// variables rel[keyval], and the insert (:+), delete (:-), and assign
// (:=) operators.
//
// References are the central intermediate currency of the query
// processor: the collection phase compresses records to references, and
// the combination phase manipulates only reference relations. A
// reference stays valid until its element is deleted; dereferencing a
// stale reference is detected through per-slot generation counters.
//
// Relations created through DB.Create share the database's content
// RWMutex (see the locking discipline on DB): exported mutators and
// readers lock per call, while the snapshot accessors (ScanSlots,
// SlotSpan, deref via DB.Deref) rely on the caller holding the database
// read lock. Standalone relations (New) carry no lock and stay as cheap
// as before — the engine's per-execution result relations are built
// that way.
package relation

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"pascalr/internal/schema"
	"pascalr/internal/stats"
	"pascalr/internal/value"
)

// ErrStale marks a dereference of a reference whose element was deleted
// (or replaced by an assignment) after the reference was issued —
// detected through per-slot generation counters. Under concurrent
// writers a query's construction phase can observe it; the engine's
// materializing path retries against a fresh snapshot, while streaming
// cursors surface it to the caller.
var ErrStale = errors.New("stale reference")

type slot struct {
	tuple []value.Value
	gen   int
	live  bool
}

// Relation is one relation variable: a set of identically structured
// elements with a declared key.
type Relation struct {
	sch   *schema.RelSchema
	id    int // catalog id used inside reference values
	slots []slot
	byKey map[string]int // encoded key -> slot index
	live  atomic.Int64

	colIndexes map[string]*ColIndex // permanent indexes, by component

	// onMutate, when set (by DB.Create), is called after every content
	// mutation — the hook behind DB.Version.
	onMutate func()

	// stTable is the incrementally maintained statistics of this
	// relation (histograms, distinct counts, slot density), fed by every
	// insert, delete, and assignment under the content write lock; nil
	// for standalone relations, which skip all statistics work. owner
	// points back at the database for drift-triggered background
	// rebuilds.
	stTable *stats.TableStats
	owner   *DB
	// mutCount counts this relation's content mutations — the
	// per-relation staleness key for statistics snapshots, so a mutation
	// of one relation invalidates only its own cached statistics.
	mutCount atomic.Uint64

	// lk is the owning database's content lock; nil for standalone
	// relations, which then skip all locking.
	lk *sync.RWMutex

	st *stats.Counters
}

// New creates an empty relation with the given schema and catalog id.
// The id must fit in 16 bits (it is packed into reference values).
func New(sch *schema.RelSchema, id int) *Relation {
	if id < 0 || id > 0xFFFF {
		panic(fmt.Sprintf("relation: id %d out of range", id))
	}
	return &Relation{sch: sch, id: id, byKey: make(map[string]int)}
}

func (r *Relation) lock() {
	if r.lk != nil {
		r.lk.Lock()
	}
}

func (r *Relation) unlock() {
	if r.lk != nil {
		r.lk.Unlock()
	}
}

func (r *Relation) rlock() {
	if r.lk != nil {
		r.lk.RLock()
	}
}

func (r *Relation) runlock() {
	if r.lk != nil {
		r.lk.RUnlock()
	}
}

// Schema returns the relation's schema.
func (r *Relation) Schema() *schema.RelSchema { return r.sch }

// Name returns the relation's name.
func (r *Relation) Name() string { return r.sch.Name }

// ID returns the catalog id used in reference values.
func (r *Relation) ID() int { return r.id }

// Len returns the number of elements. It is an atomic read, safe
// without any lock (and in particular safe under the engine's phase
// lock, where the locking accessors would deadlock).
func (r *Relation) Len() int { return int(r.live.Load()) }

// SetStats attaches a counter sink; scans, reads, and permanent-index
// probes through the locking accessors are recorded there. A nil sink
// disables counting. Engine executions bypass the attached sink and
// pass their own.
func (r *Relation) SetStats(st *stats.Counters) {
	r.lock()
	defer r.unlock()
	r.setStats(st)
}

func (r *Relation) setStats(st *stats.Counters) {
	r.st = st
	for _, ix := range r.colIndexes {
		ix.st = st
	}
}

// Insert implements the :+ operator for a single element. Inserting an
// element whose key is present with identical non-key components is a
// no-op (relations are sets); a key collision with different components
// is an error. It returns the element's reference.
func (r *Relation) Insert(tuple []value.Value) (value.Value, error) {
	r.lock()
	defer r.unlock()
	return r.insert(tuple)
}

func (r *Relation) insert(tuple []value.Value) (value.Value, error) {
	if err := r.sch.CheckTuple(tuple); err != nil {
		return value.Value{}, err
	}
	k := r.sch.EncodeKeyOf(tuple)
	if si, ok := r.byKey[k]; ok {
		if tuplesEqual(r.slots[si].tuple, tuple) {
			return r.refOf(si), nil
		}
		return value.Value{}, fmt.Errorf("relation %s: key %s already present with different components",
			r.sch.Name, formatKey(r.sch, tuple))
	}
	cp := make([]value.Value, len(tuple))
	copy(cp, tuple)
	r.slots = append(r.slots, slot{tuple: cp, live: true})
	si := len(r.slots) - 1
	r.byKey[k] = si
	r.live.Add(1)
	ref := r.refOf(si)
	for _, ix := range r.colIndexes {
		ix.add(cp[ix.colIdx], ref)
	}
	drifted := r.stTable.ObserveInsert(si, cp)
	r.mutated(drifted)
	return ref, nil
}

// Delete implements the :- operator for a single element identified by
// its key values. It reports whether an element was removed. References
// to the removed element become stale.
func (r *Relation) Delete(keyVals []value.Value) bool {
	r.lock()
	defer r.unlock()
	si, ok := r.byKey[value.EncodeKey(keyVals)]
	if !ok {
		return false
	}
	for _, ix := range r.colIndexes {
		ix.remove(r.slots[si].tuple[ix.colIdx], r.refOf(si))
	}
	drifted := r.stTable.ObserveDelete(si, r.slots[si].tuple)
	r.slots[si].live = false
	r.slots[si].gen++
	r.slots[si].tuple = nil
	delete(r.byKey, value.EncodeKey(keyVals))
	r.live.Add(-1)
	r.mutated(drifted)
	return true
}

// Assign implements the := operator: it replaces the relation's contents
// with the given tuples. All previously issued references become stale.
func (r *Relation) Assign(tuples [][]value.Value) error {
	r.lock()
	defer r.unlock()
	for _, t := range tuples {
		if err := r.sch.CheckTuple(t); err != nil {
			return err
		}
	}
	// Invalidate everything currently stored.
	for i := range r.slots {
		if r.slots[i].live {
			r.slots[i].live = false
			r.slots[i].gen++
			r.slots[i].tuple = nil
		}
	}
	r.byKey = make(map[string]int, len(tuples))
	r.live.Store(0)
	for _, ix := range r.colIndexes {
		ix.reset()
	}
	r.stTable.Reset()
	r.mutated(false)
	for _, t := range tuples {
		if _, err := r.insert(t); err != nil {
			return err
		}
	}
	return nil
}

// Lookup implements the selected variable rel[keyval]: it returns the
// reference of the element with the given key values.
func (r *Relation) Lookup(keyVals []value.Value) (value.Value, bool) {
	r.rlock()
	defer r.runlock()
	si, ok := r.byKey[value.EncodeKey(keyVals)]
	if !ok {
		return value.Value{}, false
	}
	return r.refOf(si), true
}

// Get returns the tuple with the given key values.
func (r *Relation) Get(keyVals []value.Value) ([]value.Value, bool) {
	r.rlock()
	defer r.runlock()
	si, ok := r.byKey[value.EncodeKey(keyVals)]
	if !ok {
		return nil, false
	}
	return r.slots[si].tuple, true
}

// Deref regains the element from a reference (the postfix @ operator).
// It errors on references to other relations, stale references, and
// malformed slots.
func (r *Relation) Deref(ref value.Value) ([]value.Value, error) {
	r.rlock()
	defer r.runlock()
	return r.deref(ref)
}

// deref is Deref without the lock, for callers that hold the database
// read lock themselves (DB.Deref under the construction phase).
func (r *Relation) deref(ref value.Value) ([]value.Value, error) {
	rel, si, gen := ref.AsRef()
	if rel != r.id {
		return nil, fmt.Errorf("relation %s: reference belongs to relation id %d", r.sch.Name, rel)
	}
	if si < 0 || si >= len(r.slots) {
		return nil, fmt.Errorf("relation %s: reference slot %d out of range", r.sch.Name, si)
	}
	s := &r.slots[si]
	if !s.live || s.gen != gen {
		return nil, fmt.Errorf("relation %s: %w to slot %d", r.sch.Name, ErrStale, si)
	}
	return s.tuple, nil
}

// Scan iterates the elements in insertion order, calling fn with each
// element's reference and tuple until fn returns false. One Scan call is
// counted as one base-relation scan against the attached sink. The
// tuple passed to fn must not be modified or retained. The content read
// lock is held for the duration of the scan.
func (r *Relation) Scan(fn func(ref value.Value, tuple []value.Value) bool) {
	r.rlock()
	defer r.runlock()
	r.st.CountScan(r.sch.Name)
	r.scanSlots(r.st, 0, len(r.slots), fn)
}

// ScanStats is Scan with an explicit counter sink, so concurrent
// readers (the baseline oracle, statistics analysis) can count into
// private sinks instead of racing on the attached one. A nil sink
// disables counting.
func (r *Relation) ScanStats(st *stats.Counters, fn func(ref value.Value, tuple []value.Value) bool) {
	r.rlock()
	defer r.runlock()
	st.CountScan(r.sch.Name)
	r.scanSlots(st, 0, len(r.slots), fn)
}

// SlotSpan returns the exclusive upper bound of slot indexes, the range
// ScanSlots shards partition. Callers must hold the database read lock
// (or otherwise own the relation exclusively).
func (r *Relation) SlotSpan() int { return len(r.slots) }

// ScanSlots scans the live slots in [lo, hi) in slot order, counting
// tuples (but no scan start — the caller decides what one logical scan
// is, so a sharded scan counts once) into st. It takes no lock: callers
// must hold the database read lock. Sharding a scan into consecutive
// slot ranges visits exactly the elements of a full scan, in an order
// that concatenates shard-locally to the serial order.
func (r *Relation) ScanSlots(st *stats.Counters, lo, hi int, fn func(ref value.Value, tuple []value.Value) bool) {
	r.scanSlots(st, lo, hi, fn)
}

func (r *Relation) scanSlots(st *stats.Counters, lo, hi int, fn func(ref value.Value, tuple []value.Value) bool) {
	if lo < 0 {
		lo = 0
	}
	if hi > len(r.slots) {
		hi = len(r.slots)
	}
	for si := lo; si < hi; si++ {
		if !r.slots[si].live {
			continue
		}
		st.CountTuples(1)
		if !fn(r.refOf(si), r.slots[si].tuple) {
			return
		}
	}
}

// Refs returns the references of all elements in insertion order,
// counting one scan.
func (r *Relation) Refs() []value.Value {
	out := make([]value.Value, 0, r.Len())
	r.Scan(func(ref value.Value, _ []value.Value) bool {
		out = append(out, ref)
		return true
	})
	return out
}

// Tuples returns copies of all tuples in insertion order, counting one
// scan.
func (r *Relation) Tuples() [][]value.Value {
	out := make([][]value.Value, 0, r.Len())
	r.Scan(func(_ value.Value, tuple []value.Value) bool {
		cp := make([]value.Value, len(tuple))
		copy(cp, tuple)
		out = append(out, cp)
		return true
	})
	return out
}

// mutated reports a content change to the owning database (no-op for
// standalone relations). Insert calls it only for genuinely new
// elements, Delete only for present keys, so no-op statements leave the
// database version — and everything tagged with it — untouched. The
// per-relation mutation counter bumps strictly after the statistics
// observed the change, so a snapshot tagged with a counter value never
// misses the mutations that counter covers. drifted is the Observe
// call's verdict (computed under the statistics lock it already held);
// when set, a background re-bucketing is scheduled (single-flight per
// relation).
func (r *Relation) mutated(drifted bool) {
	r.bumpStatsVersion()
	if r.onMutate != nil {
		r.onMutate()
	}
	if drifted && r.owner != nil {
		r.owner.scheduleStatsRebuild(r)
	}
}

// bumpStatsVersion advances the per-relation mutation counter and the
// owning database's statistics epoch (strictly after the statistics
// observed the change — see mutated).
func (r *Relation) bumpStatsVersion() {
	r.mutCount.Add(1)
	if r.owner != nil {
		r.owner.statsEpoch.Add(1)
	}
}

// MutCount returns the relation's content-mutation counter: the
// per-relation staleness key for cached statistics. Atomic, safe
// without any lock.
func (r *Relation) MutCount() uint64 { return r.mutCount.Load() }

// LiveStats returns the relation's incrementally maintained statistics
// (nil for standalone relations). The returned TableStats is internally
// synchronized; mutators keep feeding it.
func (r *Relation) LiveStats() *stats.TableStats { return r.stTable }

// SlotWeights returns per-stripe live-tuple counts and the stripe
// width, for density-balanced shard splitting; nil when no statistics
// are maintained.
func (r *Relation) SlotWeights() ([]int32, int) { return r.stTable.SlotWeights() }

// rebuildStats rescans the relation and replaces its statistics with
// freshly built ones (true quantile bucket boundaries, exact distinct
// counts). It takes the content read lock like any other reader — do
// not call it while holding the database read lock.
func (r *Relation) rebuildStats() *stats.TableStats {
	r.rlock()
	defer r.runlock()
	return r.rebuildStatsLocked()
}

// rebuildStatsLocked is rebuildStats for callers already holding the
// content (read) lock. Standalone relations build a detached summary.
func (r *Relation) rebuildStatsLocked() *stats.TableStats {
	ts := r.stTable
	if ts == nil {
		cols := make([]string, len(r.sch.Cols))
		for i, c := range r.sch.Cols {
			cols[i] = c.Name
		}
		ts = stats.NewTableStats(r.sch.Name, cols)
	}
	rb := ts.NewRebuild()
	for si := range r.slots {
		if r.slots[si].live {
			rb.Add(si, r.slots[si].tuple)
		}
	}
	rb.Commit()
	if r.stTable != nil {
		// The rebuild changed the statistics without changing contents:
		// bump the statistics version (after the commit, so a snapshot
		// tagged with the new value always includes the rebuilt state)
		// or cached estimator snapshots would keep serving the
		// pre-rebuild histograms. Deliberately not mutated(): the DB
		// content version must not move — compiled plans stay valid.
		r.bumpStatsVersion()
	}
	return ts
}

func (r *Relation) refOf(si int) value.Value {
	return value.Ref(r.id, si, r.slots[si].gen)
}

func tuplesEqual(a, b []value.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !value.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

func formatKey(sch *schema.RelSchema, tuple []value.Value) string {
	key := sch.KeyOf(tuple)
	s := "<"
	for i, v := range key {
		if i > 0 {
			s += ","
		}
		s += v.String()
	}
	return s + ">"
}
