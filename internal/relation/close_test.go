package relation

import (
	"sync"
	"testing"

	"pascalr/internal/value"
)

// TestCloseQuiescesDriftRebuilds races drift-triggering mutations
// against DB.Close: a rebuild scheduled before Close completes inside
// it, one triggered after is rejected, and mutations keep working on
// the closed database (statistics simply stop re-bucketing). Run under
// -race this is the shutdown-vs-background-rebuild regression test.
func TestCloseQuiescesDriftRebuilds(t *testing.T) {
	db, rel := statsDB(t)
	// Seed enough rows that the incremental maintenance has real
	// histograms to drift from.
	for i := 0; i < 200; i++ {
		if _, err := rel.Insert([]value.Value{value.Int(int64(i)), value.Int(int64(i % 7))}); err != nil {
			t.Fatal(err)
		}
	}
	var writers sync.WaitGroup
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			base := int64(1000 + g*10000)
			for i := int64(0); i < 500; i++ {
				if _, err := rel.Insert([]value.Value{value.Int(base + i), value.Int(i % 11)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	closed := make(chan struct{})
	go func() { db.Close(); close(closed) }()
	writers.Wait()
	<-closed

	// The executor is quiesced: nothing is pending or running, and new
	// submissions bounce.
	if db.async.Submit("x", func() {}) {
		t.Fatal("async executor accepted work after Close")
	}
	// Mutations after Close must not panic or schedule work.
	if _, err := rel.Insert([]value.Value{value.Int(999999), value.Int(1)}); err != nil {
		t.Fatalf("insert after Close: %v", err)
	}
	if !rel.Delete([]value.Value{value.Int(999999)}) {
		t.Fatal("delete after Close failed")
	}
	// Close is idempotent.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}
