package relation

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"pascalr/internal/schema"
	"pascalr/internal/storage"
	"pascalr/internal/value"
)

// wideSchema is a relation schema with a roomy key range, for workloads
// that need more rows than the employees fixture's 1..99 keys allow.
func wideSchema(t *testing.T, name string) *schema.RelSchema {
	t.Helper()
	return schema.MustRelSchema(name, []schema.Column{
		{Name: "id", Type: schema.IntType("widetype", 1, 1<<30)},
		{Name: "payload", Type: schema.StringType("padtype", 32)},
	}, []string{"id"})
}

func wrow(id int64, payload string) []value.Value {
	return []value.Value{value.Int(id), value.String_(payload)}
}

// copyDB clones a quiesced database directory into dst — a crash image
// taken at this instant.
func copyDB(t *testing.T, src, dst string) {
	t.Helper()
	wal, err := os.ReadFile(filepath.Join(src, storage.WALName))
	if err != nil {
		t.Fatal(err)
	}
	cloneDirTruncated(t, src, dst, len(wal))
}

// reopenCheck opens a crash image and verifies it recovers to exactly
// the expected fingerprint, then removes it.
func reopenCheck(t *testing.T, dir string, opts storage.Options, want, context string) {
	t.Helper()
	rd, err := OpenDB(dir, opts)
	if err != nil {
		t.Fatalf("%s: reopen: %v", context, err)
	}
	if got := fingerprint(t, rd); got != want {
		t.Fatalf("%s: recovered state diverged", context)
	}
	if err := rd.Close(); err != nil {
		t.Fatalf("%s: close: %v", context, err)
	}
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
}

// TestCompactionCrashTorture drives the size-tiered compactor and the
// obsolete-file GC through their crash windows. After every forced
// compaction and around every checkpoint's manifest-commit boundary it
// takes a directory image and recovers it: no image may lose a row,
// duplicate a row (a resurrected superseded table would), or fail to
// open because a referenced file was unlinked too early.
func TestCompactionCrashTorture(t *testing.T) {
	opts := storage.Options{
		Fsync:              storage.SyncNever,
		MemtableEntries:    4,
		CheckpointWALBytes: -1, // checkpoints only where the test forces them
	}
	src := t.TempDir()
	scratch := t.TempDir()
	d, err := OpenDB(src, opts)
	if err != nil {
		t.Fatal(err)
	}
	r, err := d.Create(wideSchema(t, "wide"))
	if err != nil {
		t.Fatal(err)
	}
	disk, ok := r.store.(*storage.Disk)
	if !ok {
		t.Fatal("durable relation not disk-backed")
	}

	// image snapshots the live state and verifies a crash image taken
	// right now recovers to it.
	img := 0
	image := func(context string) {
		t.Helper()
		d.Quiesce()
		if err := d.dur.wal.Sync(); err != nil {
			t.Fatal(err)
		}
		want := fingerprint(t, d)
		dir := filepath.Join(scratch, fmt.Sprintf("img%d", img))
		img++
		copyDB(t, src, dir)
		reopenCheck(t, dir, opts, want, context)
	}
	compact := func(context string) {
		t.Helper()
		d.Quiesce() // no background maintenance racing the forced run
		d.mu.Lock()
		err := disk.Compact()
		d.mu.Unlock()
		if err != nil {
			t.Fatalf("%s: compact: %v", context, err)
		}
		image(context)
	}
	// checkpointBoundaries runs a checkpoint and recovers an image from
	// each of its crash windows: before the manifest rename, after the
	// rename but before the WAL truncation, and after the truncation but
	// before the obsolete files were unlinked.
	checkpointBoundaries := func(context string) {
		t.Helper()
		d.Quiesce()
		if err := d.dur.wal.Sync(); err != nil {
			t.Fatal(err)
		}
		want := fingerprint(t, d)

		preDir := filepath.Join(scratch, fmt.Sprintf("pre%d", img))
		copyDB(t, src, preDir) // full pre-checkpoint image: WAL + old manifest + obsolete files
		preWAL, err := os.ReadFile(filepath.Join(src, storage.WALName))
		if err != nil {
			t.Fatal(err)
		}
		obsolete := disk.Obsolete()
		obsBytes := make(map[string][]byte, len(obsolete))
		for _, name := range obsolete {
			data, err := os.ReadFile(filepath.Join(src, name))
			if err != nil {
				t.Fatalf("%s: read superseded %s: %v", context, name, err)
			}
			obsBytes[name] = data
		}

		if err := d.Checkpoint(); err != nil {
			t.Fatalf("%s: checkpoint: %v", context, err)
		}
		if got := fingerprint(t, d); got != want {
			t.Fatalf("%s: checkpoint changed live state", context)
		}
		// The GC must have unlinked every superseded file the new
		// manifest no longer references...
		for _, name := range obsolete {
			if _, err := os.Stat(filepath.Join(src, name)); !os.IsNotExist(err) {
				t.Fatalf("%s: superseded file %s survived the checkpoint GC", context, name)
			}
		}
		// ...and none the manifest does reference.
		m, ok, err := storage.ReadManifest(src)
		if err != nil || !ok {
			t.Fatalf("%s: manifest after checkpoint: ok=%v err=%v", context, ok, err)
		}
		for _, rm := range m.Rels {
			for _, name := range rm.Disk.Tables {
				if _, err := os.Stat(filepath.Join(src, name)); err != nil {
					t.Fatalf("%s: manifest references missing table %s: %v", context, name, err)
				}
			}
		}

		// Window 1: crash before the manifest rename.
		reopenCheck(t, preDir, opts, want, context+" (pre-manifest crash)")

		// Window 2: crash after the rename, before the WAL truncation —
		// the new manifest plus the full old log; LastSeq must make the
		// replayed duplicates no-ops.
		dir2 := filepath.Join(scratch, fmt.Sprintf("mid%d", img))
		copyDB(t, src, dir2)
		if err := os.WriteFile(filepath.Join(dir2, storage.WALName), preWAL, 0o644); err != nil {
			t.Fatal(err)
		}
		reopenCheck(t, dir2, opts, want, context+" (post-manifest pre-truncate crash)")

		// Window 3: crash after the truncation, before the unlink — the
		// superseded files linger; recovery must drop them as orphans,
		// never resurrect their rows.
		dir3 := filepath.Join(scratch, fmt.Sprintf("gc%d", img))
		copyDB(t, src, dir3)
		for name, data := range obsBytes {
			if err := os.WriteFile(filepath.Join(dir3, name), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		reopenCheck(t, dir3, opts, want, context+" (pre-unlink crash)")
		img++
	}

	// Round 1: fill until a same-tier run exists, compact, checkpoint.
	for i := int64(1); i <= 48; i++ {
		if _, err := r.Insert(wrow(i, fmt.Sprintf("p%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	compact("tiered merge")
	checkpointBoundaries("after tiered merge")

	// Round 2: tombstone-heavy — delete most rows, compact, checkpoint.
	for i := int64(1); i <= 40; i++ {
		if !r.Delete([]value.Value{value.Int(i)}) {
			t.Fatalf("delete %d ineffective", i)
		}
	}
	compact("dead-heavy merge")
	checkpointBoundaries("after dead-heavy merge")

	// Round 3: whole-relation assignment raises the reset floor; the
	// old tables retire without a rewrite.
	var bulk [][]value.Value
	for i := int64(100); i < 120; i++ {
		bulk = append(bulk, wrow(i, fmt.Sprintf("b%d", i)))
	}
	if err := r.Assign(bulk); err != nil {
		t.Fatal(err)
	}
	compact("below-floor retirement")
	checkpointBoundaries("after below-floor retirement")

	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestParallelReplayFingerprint recovers one crash image serially and
// with several worker counts: every recovery must land on the identical
// fingerprint — per-relation order is preserved and no replayed effect
// may depend on cross-relation interleaving. The workload interleaves
// mutations of several relations with DDL (index creation mid-stream)
// so the partitioned queues genuinely interleave in the log.
func TestParallelReplayFingerprint(t *testing.T) {
	opts := storage.Options{
		Fsync:              storage.SyncNever,
		MemtableEntries:    4,
		CheckpointWALBytes: -1,
	}
	src := t.TempDir()
	d, err := OpenDB(src, opts)
	if err != nil {
		t.Fatal(err)
	}
	const nRels = 4
	rels := make([]*Relation, nRels)
	for i := range rels {
		r, err := d.Create(wideSchema(t, fmt.Sprintf("rel%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		rels[i] = r
	}
	for i := int64(1); i <= 60; i++ {
		r := rels[i%nRels]
		if _, err := r.Insert(wrow(i, fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
		if i == 20 {
			// Mid-stream index creation: its backfill position among the
			// relation's mutations must survive partitioning.
			if _, err := rels[0].CreateIndex("payload"); err != nil {
				t.Fatal(err)
			}
		}
		if i%7 == 0 {
			victim := i - int64(nRels)
			if victim > 0 && !rels[victim%nRels].Delete([]value.Value{value.Int(victim)}) {
				t.Fatalf("delete %d ineffective", victim)
			}
		}
	}
	var bulk [][]value.Value
	for i := int64(200); i < 215; i++ {
		bulk = append(bulk, wrow(i, "bulk"))
	}
	if err := rels[2].Assign(bulk); err != nil {
		t.Fatal(err)
	}
	if err := d.dur.wal.Sync(); err != nil {
		t.Fatal(err)
	}
	d.Quiesce() // abandon without Close: recovery must come from the WAL
	want := fingerprint(t, d)

	scratch := t.TempDir()
	for _, workers := range []int{-1, 2, 8} {
		dir := filepath.Join(scratch, fmt.Sprintf("w%d", workers))
		copyDB(t, src, dir)
		ropts := opts
		ropts.ReplayWorkers = workers
		rd, err := OpenDB(dir, ropts)
		if err != nil {
			t.Fatalf("workers=%d: reopen: %v", workers, err)
		}
		if got := fingerprint(t, rd); got != want {
			t.Fatalf("workers=%d: recovered state diverged from serial truth", workers)
		}
		if err := rd.Close(); err != nil {
			t.Fatalf("workers=%d: close: %v", workers, err)
		}
	}
}

// TestGroupCommitConcurrentWriters hammers a SyncAlways database with
// concurrent inserters and deleters: every acknowledged mutation must
// be durable (a crash image contains it), and the full suite runs under
// the race detector in CI, exercising the ticket handoff and the
// leader-elected fsync.
func TestGroupCommitConcurrentWriters(t *testing.T) {
	opts := storage.Options{
		Fsync:              storage.SyncAlways,
		MemtableEntries:    16,
		CheckpointWALBytes: -1,
	}
	src := t.TempDir()
	d, err := OpenDB(src, opts)
	if err != nil {
		t.Fatal(err)
	}
	r, err := d.Create(wideSchema(t, "wide"))
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 16
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := int64(w*perWriter + i + 1)
				if _, err := r.Insert(wrow(id, fmt.Sprintf("w%d", w))); err != nil {
					errs <- err
					return
				}
				if i%5 == 4 { // exercise Delete's wait-under-lock path too
					if !r.Delete([]value.Value{value.Int(id)}) {
						errs <- fmt.Errorf("writer %d: delete %d ineffective", w, id)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	d.Quiesce()
	want := fingerprint(t, d)

	// Every return above was acknowledged durable: a crash image taken
	// now must recover every one of them, no wal.Sync needed.
	dir := filepath.Join(t.TempDir(), "crash")
	copyDB(t, src, dir)
	reopenCheck(t, dir, opts, want, "group-commit crash image")
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}
