package relation

import (
	"strings"
	"testing"
	"testing/quick"

	"pascalr/internal/schema"
	"pascalr/internal/stats"
	"pascalr/internal/value"
)

func employeesSchema(t *testing.T) *schema.RelSchema {
	t.Helper()
	st, err := schema.EnumType("statustype", "student", "technician", "assistant", "professor")
	if err != nil {
		t.Fatal(err)
	}
	return schema.MustRelSchema("employees", []schema.Column{
		{Name: "enr", Type: schema.IntType("enumbertype", 1, 99)},
		{Name: "ename", Type: schema.StringType("nametype", 10)},
		{Name: "estatus", Type: st},
	}, []string{"enr"})
}

func emp(enr int64, name string, status int) []value.Value {
	return []value.Value{value.Int(enr), value.String_(name), value.Enum("statustype", status)}
}

func TestInsertAndLookup(t *testing.T) {
	r := New(employeesSchema(t), 0)
	ref, err := r.Insert(emp(20, "Highman", 1))
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d", r.Len())
	}
	got, ok := r.Lookup([]value.Value{value.Int(20)})
	if !ok || !value.Equal(got, ref) {
		t.Errorf("Lookup ref mismatch")
	}
	tup, ok := r.Get([]value.Value{value.Int(20)})
	if !ok || tup[1].AsString() != "Highman" {
		t.Errorf("Get = %v,%v", tup, ok)
	}
	if _, ok := r.Lookup([]value.Value{value.Int(99)}); ok {
		t.Errorf("missing key resolved")
	}
}

func TestInsertDuplicates(t *testing.T) {
	r := New(employeesSchema(t), 0)
	ref1, _ := r.Insert(emp(1, "A", 0))
	// Identical element: set semantics, no-op, same reference.
	ref2, err := r.Insert(emp(1, "A", 0))
	if err != nil {
		t.Fatalf("identical re-insert errored: %v", err)
	}
	if !value.Equal(ref1, ref2) {
		t.Errorf("re-insert returned different reference")
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d after duplicate insert", r.Len())
	}
	// Same key, different components: error.
	if _, err := r.Insert(emp(1, "B", 0)); err == nil {
		t.Errorf("key collision accepted")
	}
	// Type violation propagates.
	if _, err := r.Insert(emp(200, "C", 0)); err == nil {
		t.Errorf("subrange violation accepted")
	}
}

func TestDeref(t *testing.T) {
	r := New(employeesSchema(t), 3)
	ref, _ := r.Insert(emp(5, "Smith", 3))
	tup, err := r.Deref(ref)
	if err != nil || tup[1].AsString() != "Smith" {
		t.Fatalf("Deref = %v, %v", tup, err)
	}
	// Wrong relation id.
	other := value.Ref(4, 0, 0)
	if _, err := r.Deref(other); err == nil {
		t.Errorf("foreign reference dereferenced")
	}
	// Out-of-range slot.
	if _, err := r.Deref(value.Ref(3, 99, 0)); err == nil {
		t.Errorf("out-of-range slot dereferenced")
	}
}

func TestDeleteStalenessAndReinsert(t *testing.T) {
	r := New(employeesSchema(t), 0)
	ref, _ := r.Insert(emp(5, "Smith", 3))
	if !r.Delete([]value.Value{value.Int(5)}) {
		t.Fatalf("Delete failed")
	}
	if r.Delete([]value.Value{value.Int(5)}) {
		t.Errorf("second Delete succeeded")
	}
	if r.Len() != 0 {
		t.Errorf("Len = %d after delete", r.Len())
	}
	if _, err := r.Deref(ref); err == nil || !strings.Contains(err.Error(), "stale") {
		t.Errorf("stale reference dereferenced: %v", err)
	}
	// Re-insert same key: new element, old reference stays stale.
	ref2, err := r.Insert(emp(5, "Jones", 0))
	if err != nil {
		t.Fatal(err)
	}
	if value.Equal(ref, ref2) {
		t.Errorf("re-used reference after delete+insert")
	}
	if _, err := r.Deref(ref); err == nil {
		t.Errorf("old reference valid after re-insert")
	}
	tup, err := r.Deref(ref2)
	if err != nil || tup[1].AsString() != "Jones" {
		t.Errorf("new reference broken: %v %v", tup, err)
	}
}

func TestAssignInvalidatesReferences(t *testing.T) {
	r := New(employeesSchema(t), 0)
	ref, _ := r.Insert(emp(1, "A", 0))
	err := r.Assign([][]value.Value{emp(2, "B", 1), emp(3, "C", 2)})
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Errorf("Len = %d after Assign", r.Len())
	}
	if _, err := r.Deref(ref); err == nil {
		t.Errorf("pre-assign reference still valid")
	}
	if _, ok := r.Lookup([]value.Value{value.Int(1)}); ok {
		t.Errorf("old element still present")
	}
	// Assign with a bad tuple fails up front.
	if err := r.Assign([][]value.Value{emp(200, "X", 0)}); err == nil {
		t.Errorf("Assign accepted invalid tuple")
	}
}

func TestScanOrderAndEarlyStop(t *testing.T) {
	r := New(employeesSchema(t), 0)
	for i := int64(1); i <= 5; i++ {
		if _, err := r.Insert(emp(i, "N", 0)); err != nil {
			t.Fatal(err)
		}
	}
	r.Delete([]value.Value{value.Int(3)})
	var got []int64
	r.Scan(func(_ value.Value, tuple []value.Value) bool {
		got = append(got, tuple[0].AsInt())
		return true
	})
	want := []int64{1, 2, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("scan saw %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("scan order %v, want %v", got, want)
		}
	}
	// Early stop.
	n := 0
	r.Scan(func(value.Value, []value.Value) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestScanCountsStats(t *testing.T) {
	r := New(employeesSchema(t), 0)
	st := &stats.Counters{}
	r.SetStats(st)
	for i := int64(1); i <= 4; i++ {
		r.Insert(emp(i, "N", 0))
	}
	r.Scan(func(value.Value, []value.Value) bool { return true })
	r.Scan(func(value.Value, []value.Value) bool { return true })
	if st.BaseScans["employees"] != 2 {
		t.Errorf("scans = %v", st.BaseScans)
	}
	if st.TuplesRead != 8 {
		t.Errorf("tuples read = %d", st.TuplesRead)
	}
}

func TestRefsAndTuples(t *testing.T) {
	r := New(employeesSchema(t), 0)
	r.Insert(emp(1, "A", 0))
	r.Insert(emp(2, "B", 1))
	refs := r.Refs()
	if len(refs) != 2 {
		t.Fatalf("Refs = %v", refs)
	}
	tuples := r.Tuples()
	if len(tuples) != 2 || tuples[1][1].AsString() != "B" {
		t.Errorf("Tuples = %v", tuples)
	}
	// Returned tuples are copies: mutating them must not corrupt storage.
	tuples[0][1] = value.String_("ZZZ")
	got, _ := r.Get([]value.Value{value.Int(1)})
	if got[1].AsString() != "A" {
		t.Errorf("Tuples exposed internal storage")
	}
}

func TestInsertCopiesInput(t *testing.T) {
	r := New(employeesSchema(t), 0)
	tup := emp(1, "A", 0)
	r.Insert(tup)
	tup[1] = value.String_("HACK")
	got, _ := r.Get([]value.Value{value.Int(1)})
	if got[1].AsString() != "A" {
		t.Errorf("Insert retained caller's slice")
	}
}

// Property: after any sequence of inserts and deletes, Len matches the
// number of distinct live keys and every live element is reachable both
// by key and by scan.
func TestInsertDeleteInvariant(t *testing.T) {
	f := func(ops []int16) bool {
		r := New(schema.MustRelSchema("t", []schema.Column{
			{Name: "k", Type: schema.IntType("", -40, 40)},
			{Name: "v", Type: schema.IntType("", 0, 1000)},
		}, []string{"k"}), 0)
		alive := map[int64]bool{}
		for i, op := range ops {
			k := int64(op%40 + 40/2) // keys in a small range to force collisions
			if k < -40 || k > 40 {
				continue
			}
			if op%3 == 0 {
				r.Delete([]value.Value{value.Int(k)})
				delete(alive, k)
			} else {
				_, err := r.Insert([]value.Value{value.Int(k), value.Int(int64(i % 1000))})
				if err == nil {
					alive[k] = true
				} else if !alive[k] {
					return false // insert failed though key was free
				}
			}
		}
		if r.Len() != len(alive) {
			return false
		}
		seen := 0
		okAll := true
		r.Scan(func(ref value.Value, tuple []value.Value) bool {
			seen++
			if !alive[tuple[0].AsInt()] {
				okAll = false
			}
			if _, err := r.Deref(ref); err != nil {
				okAll = false
			}
			return true
		})
		return okAll && seen == len(alive)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDB(t *testing.T) {
	d := NewDB()
	st := &stats.Counters{}
	d.SetStats(st)
	es := employeesSchema(t)
	r, err := d.Create(es)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Create(es); err == nil {
		t.Errorf("duplicate relation created")
	}
	got, ok := d.Relation("employees")
	if !ok || got != r {
		t.Errorf("Relation lookup failed")
	}
	if _, ok := d.Relation("nope"); ok {
		t.Errorf("unknown relation resolved")
	}
	byID, ok := d.ByID(r.ID())
	if !ok || byID != r {
		t.Errorf("ByID failed")
	}
	if _, ok := d.ByID(99); ok {
		t.Errorf("ByID(99) resolved")
	}

	ref, _ := r.Insert(emp(7, "Lee", 2))
	tup, err := d.Deref(ref)
	if err != nil || tup[0].AsInt() != 7 {
		t.Errorf("DB.Deref = %v, %v", tup, err)
	}
	if _, err := d.Deref(value.Ref(9, 0, 0)); err == nil {
		t.Errorf("unknown relation reference dereferenced")
	}
	// Stats flow through relations created before SetStats too.
	r.Scan(func(value.Value, []value.Value) bool { return true })
	if st.BaseScans["employees"] != 1 {
		t.Errorf("db stats not attached: %v", st.BaseScans)
	}
}

func TestDBSetStatsAfterCreate(t *testing.T) {
	d := NewDB()
	r := d.MustCreate(employeesSchema(t))
	st := &stats.Counters{}
	d.SetStats(st)
	r.Insert(emp(1, "A", 0))
	r.Scan(func(value.Value, []value.Value) bool { return true })
	if st.BaseScans["employees"] != 1 {
		t.Errorf("SetStats after create not applied")
	}
}

// TestDBVersion: the content version must bump exactly on content
// mutations — new inserts, effective deletes, assignments — and stay
// put on no-ops and schema growth.
func TestDBVersion(t *testing.T) {
	d := NewDB()
	v0 := d.Version()
	r := d.MustCreate(employeesSchema(t))
	if d.Version() != v0 {
		t.Errorf("creating a relation bumped the version")
	}
	if _, err := r.Insert(emp(1, "A", 0)); err != nil {
		t.Fatal(err)
	}
	v1 := d.Version()
	if v1 == v0 {
		t.Errorf("insert did not bump the version")
	}
	if _, err := r.Insert(emp(1, "A", 0)); err != nil { // duplicate: no-op
		t.Fatal(err)
	}
	if d.Version() != v1 {
		t.Errorf("duplicate insert bumped the version")
	}
	if r.Delete([]value.Value{value.Int(99)}) { // absent key: no-op
		t.Fatal("deleted a missing key")
	}
	if d.Version() != v1 {
		t.Errorf("no-op delete bumped the version")
	}
	if !r.Delete([]value.Value{value.Int(1)}) {
		t.Fatal("delete failed")
	}
	v2 := d.Version()
	if v2 == v1 {
		t.Errorf("delete did not bump the version")
	}
	if err := r.Assign(nil); err != nil {
		t.Fatal(err)
	}
	if d.Version() == v2 {
		t.Errorf("assign did not bump the version")
	}
	// Standalone relations (no owning DB) must not panic on mutation.
	solo := New(employeesSchema(t), 7)
	if _, err := solo.Insert(emp(2, "B", 0)); err != nil {
		t.Fatal(err)
	}
}
