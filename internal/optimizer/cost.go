package optimizer

import (
	"pascalr/internal/calculus"
	"pascalr/internal/normalize"
	"pascalr/internal/stats"
	"pascalr/internal/value"
)

// CostModel answers the cardinality and selectivity questions the
// optimizer's and planner's cost-based decisions consult.
// *stats.Estimator implements it.
type CostModel interface {
	Card(rel string) float64
	DistinctValues(rel, col string) float64
	SelectivityConst(rel, col string, op value.CmpOp, c value.Value) float64
	JoinSelectivity(lrel, lcol string, op value.CmpOp, rrel, rcol string) float64
}

// TermSelectivity estimates the fraction of rel's tuples that satisfy a
// monadic comparison over variable v.
func TermSelectivity(cm CostModel, rel, v string, c *calculus.Cmp) float64 {
	if cm == nil {
		return stats.DefaultRangeSel
	}
	lf, lok := c.L.(calculus.Field)
	rf, rok := c.R.(calculus.Field)
	lc, lconst := c.L.(calculus.Const)
	rc, rconst := c.R.(calculus.Const)
	switch {
	case lok && rconst && lf.Var == v:
		return cm.SelectivityConst(rel, lf.Col, c.Op, rc.Val)
	case rok && lconst && rf.Var == v:
		return cm.SelectivityConst(rel, rf.Col, c.Op.Flip(), lc.Val)
	case lok && rok:
		// Same-variable field pair (v.a op v.b): a self-comparison with
		// no usable statistic.
		return stats.DefaultRangeSel
	}
	return stats.DefaultRangeSel
}

// FormulaSelectivity estimates the fraction of rel's tuples satisfying a
// monadic formula over variable v — the shape extended range filters
// take. Conjunctions multiply (independence), disjunctions combine by
// inclusion-exclusion, and NOT complements.
func FormulaSelectivity(cm CostModel, rel, v string, f calculus.Formula) float64 {
	switch g := f.(type) {
	case nil:
		return 1
	case *calculus.Lit:
		if g.Val {
			return 1
		}
		return 0
	case *calculus.Cmp:
		return TermSelectivity(cm, rel, v, g)
	case *calculus.Not:
		return 1 - FormulaSelectivity(cm, rel, v, g.F)
	case *calculus.And:
		s := 1.0
		for _, sub := range g.Fs {
			s *= FormulaSelectivity(cm, rel, v, sub)
		}
		return s
	case *calculus.Or:
		miss := 1.0
		for _, sub := range g.Fs {
			miss *= 1 - FormulaSelectivity(cm, rel, v, sub)
		}
		return 1 - miss
	default:
		return stats.DefaultRangeSel
	}
}

// extractSelThreshold gates cost-based range extraction: moving a term
// whose selectivity is above it buys almost nothing (the range barely
// shrinks) while forcing a materialized range list and filtered
// permanent-index probes, so the term stays in the matrix.
const extractSelThreshold = 0.9

// ExtractRangesCost is ExtractRanges with extraction decisions consulting
// the cost model: monadic terms of free and existentially quantified
// variables move into the range only when their estimated selectivity is
// at most extractSelThreshold. The universal single-term-disjunct rule is
// unconditional — it removes a whole conjunction from the matrix, which
// pays regardless of selectivity. A nil cost model reproduces
// ExtractRanges exactly.
func ExtractRangesCost(sf *normalize.StandardForm, cm CostModel) (*normalize.StandardForm, int) {
	var gate extractGate
	if cm != nil {
		gate = func(rng *calculus.RangeExpr, v string, c *calculus.Cmp) bool {
			return TermSelectivity(cm, rng.Rel, v, c) <= extractSelThreshold
		}
	}
	return extractRanges(sf, gate)
}

// EliminateQuantifiersCost is EliminateQuantifiers with the elimination
// order consulting the cost model: among the eligible variables of the
// suffix run, the one ranging over the largest estimated relation is
// eliminated first, removing the biggest contributor to combination-phase
// growth early (which can also steer which cascade of nested value lists
// forms). A nil cost model reproduces EliminateQuantifiers exactly.
func EliminateQuantifiersCost(x *XForm, cm CostModel) int {
	return eliminateQuantifiers(x, cm)
}
