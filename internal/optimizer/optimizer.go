// Package optimizer implements the paper's query transformation
// strategies on the standard form:
//
//   - Strategy 3 (section 4.3, ExtractRanges): extended range
//     expressions — monadic join terms move from the matrix into the
//     range expressions of their variables, shrinking range relations
//     and, for universally quantified variables, removing whole
//     conjunctions.
//   - Strategy 4 (section 4.4, EliminateQuantifiers): quantifiers whose
//     variable depends on at most one other variable are evaluated in
//     the collection phase via value lists; the quantified variable
//     disappears from the combination phase entirely. Equal adjacent
//     quantifiers are swapped to expose eligible variables, reproducing
//     the Example 4.7 cascade.
//
// Strategies 1 and 2 (scan scheduling and one-step evaluation of nested
// subexpressions) are physical planning concerns and live in the engine.
package optimizer

import (
	"fmt"
	"strings"

	"pascalr/internal/calculus"
	"pascalr/internal/normalize"
	"pascalr/internal/value"
)

// Atom is a matrix entry after optimization: either an ordinary join
// term or a derived predicate produced by strategy 4.
type Atom struct {
	Cmp  *calculus.Cmp
	Semi *SemiAtom
}

// Vars returns the variables the atom constrains.
func (a Atom) Vars() []string {
	if a.Cmp != nil {
		return calculus.VarsOfCmp(a.Cmp)
	}
	if a.Semi.Var == "" {
		return nil // constant spec: constrains no surviving variable
	}
	return []string{a.Semi.Var}
}

// String renders the atom.
func (a Atom) String() string {
	if a.Cmp != nil {
		return a.Cmp.String()
	}
	return a.Semi.String()
}

// SemiAtom is a derived monadic predicate over Var, deciding the
// eliminated quantifier per element of Var's range.
type SemiAtom struct {
	Var  string // the remaining variable (vm); "" when the spec is a constant
	Spec *SemiSpec
}

// String renders the derived atom.
func (s *SemiAtom) String() string {
	q := "SOME"
	if s.Spec.All {
		q = "ALL"
	}
	var parts []string
	for _, m := range s.Spec.Monadic {
		parts = append(parts, m.String())
	}
	for _, m := range s.Spec.NestedMonadic {
		parts = append(parts, m.String())
	}
	for _, d := range s.Spec.Dyadic {
		parts = append(parts, fmt.Sprintf("%s.%s %s %s.%s", s.Var, d.VmCol, d.Op, s.Spec.Var, d.VnCol))
	}
	if len(parts) == 0 {
		parts = []string{"TRUE"}
	}
	return fmt.Sprintf("%s %s IN %s (%s)", q, s.Spec.Var, s.Spec.Range, strings.Join(parts, " AND "))
}

// DyTerm is one dyadic term of an eliminated quantifier, normalized to
// the orientation vm.VmCol Op vn.VnCol.
type DyTerm struct {
	VmCol string
	Op    value.CmpOp
	VnCol string
}

// SemiSpec describes how to evaluate an eliminated quantifier during the
// collection phase: scan Var's range, keep the elements satisfying the
// monadic terms (for SOME) or count them (for ALL), collect the dyadic
// columns into a value list, and derive a predicate over the remaining
// variable's elements.
type SemiSpec struct {
	ID    int
	Var   string // the eliminated variable (vn)
	Range *calculus.RangeExpr
	All   bool
	// Monadic terms over Var. For SOME they filter the value list; for
	// ALL they contribute a constant conjunct "every range element
	// satisfies them".
	Monadic []*calculus.Cmp
	// NestedMonadic holds derived atoms over Var from earlier
	// eliminations — the Example 4.7 cascade, where cset restricts the
	// construction of tset. They combine with Monadic.
	NestedMonadic []*SemiAtom
	// Dyadic terms linking Var with the remaining variable; empty when
	// the quantified subformula was purely monadic (the derived atom is
	// then a runtime constant).
	Dyadic []DyTerm
}

// ConstOnly reports whether the spec yields a runtime constant (no
// dyadic terms).
func (s *SemiSpec) ConstOnly() bool { return len(s.Dyadic) == 0 }

// XForm is a standard form whose matrix may contain derived atoms, plus
// the specs that feed them. The engine plans collection and combination
// from this.
type XForm struct {
	Proj   []calculus.Field
	Free   []calculus.Decl
	Prefix []normalize.QDecl
	Matrix [][]Atom
	Const  *bool
	Specs  []*SemiSpec
}

// FromStandardForm wraps a standard form in an XForm with plain atoms.
func FromStandardForm(sf *normalize.StandardForm) *XForm {
	x := &XForm{
		Proj:   append([]calculus.Field(nil), sf.Proj...),
		Free:   append([]calculus.Decl(nil), sf.Free...),
		Prefix: append([]normalize.QDecl(nil), sf.Prefix...),
		Const:  sf.Const,
	}
	for _, conj := range sf.Matrix {
		atoms := make([]Atom, len(conj))
		for i, c := range conj {
			atoms[i] = Atom{Cmp: c}
		}
		x.Matrix = append(x.Matrix, atoms)
	}
	return x
}

// Clone returns a copy of x whose prefix, matrix slices, and constant
// the runtime empty-range adaptation (Lemma 1) may mutate without
// affecting x. Specs, atoms, declarations, and ranges are shared: the
// engine treats them as read-only, so one compiled XForm can serve as
// the immutable template behind many executions.
func (x *XForm) Clone() *XForm {
	c := &XForm{
		Proj:   x.Proj,
		Free:   append([]calculus.Decl(nil), x.Free...),
		Prefix: append([]normalize.QDecl(nil), x.Prefix...),
		Specs:  x.Specs,
	}
	if x.Const != nil {
		v := *x.Const
		c.Const = &v
	}
	if x.Matrix != nil {
		c.Matrix = make([][]Atom, len(x.Matrix))
		for i, conj := range x.Matrix {
			c.Matrix[i] = append([]Atom(nil), conj...)
		}
	}
	return c
}

// Vars returns free variables then prefix variables, in order.
func (x *XForm) Vars() []string {
	out := make([]string, 0, len(x.Free)+len(x.Prefix))
	for _, d := range x.Free {
		out = append(out, d.Var)
	}
	for _, q := range x.Prefix {
		out = append(out, q.Var)
	}
	return out
}

// RangeOf returns the range of a free or prefix variable.
func (x *XForm) RangeOf(v string) (*calculus.RangeExpr, bool) {
	for _, d := range x.Free {
		if d.Var == v {
			return d.Range, true
		}
	}
	for _, q := range x.Prefix {
		if q.Var == v {
			return q.Range, true
		}
	}
	return nil, false
}

// conjunctionsWith returns indexes of conjunctions containing var v.
func (x *XForm) conjunctionsWith(v string) []int {
	var out []int
	for i, conj := range x.Matrix {
		for _, a := range conj {
			if atomMentions(a, v) {
				out = append(out, i)
				break
			}
		}
	}
	return out
}

func atomMentions(a Atom, v string) bool {
	for _, av := range a.Vars() {
		if av == v {
			return true
		}
	}
	return false
}

// String renders the transformed form for EXPLAIN output.
func (x *XForm) String() string {
	var b strings.Builder
	b.WriteString("[<")
	for i, p := range x.Proj {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(p.String())
	}
	b.WriteString("> OF\n")
	for _, d := range x.Free {
		fmt.Fprintf(&b, "  EACH %s IN %s\n", d.Var, d.Range)
	}
	b.WriteString(" :\n")
	for _, q := range x.Prefix {
		fmt.Fprintf(&b, "  %s\n", q)
	}
	if x.Const != nil {
		fmt.Fprintf(&b, "    %v\n", map[bool]string{true: "TRUE", false: "FALSE"}[*x.Const])
		return b.String()
	}
	for i, conj := range x.Matrix {
		if i > 0 {
			b.WriteString("   OR\n")
		}
		parts := make([]string, len(conj))
		for j, a := range conj {
			parts[j] = "(" + a.String() + ")"
		}
		fmt.Fprintf(&b, "    %s\n", strings.Join(parts, " AND "))
	}
	return b.String()
}
