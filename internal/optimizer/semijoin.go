package optimizer

import (
	"pascalr/internal/calculus"
)

// EliminateQuantifiers applies strategy 4: innermost quantified
// variables that depend on at most one other variable are evaluated in
// the collection phase. The quantifier disappears from the prefix; its
// terms are replaced by derived atoms over the remaining variable,
// backed by a SemiSpec the engine executes as a value list.
//
// Eligibility, following section 4.4:
//
//   - the variable must belong to the maximal suffix run of
//     equal quantifiers (equal quantifiers may be swapped freely, which
//     is how Example 4.7 reorders SOME c SOME t);
//   - an existentially quantified variable is eliminable when, in every
//     conjunction containing it, its terms involve at most one other
//     variable (each conjunction splits independently, Lemma 1 rule 1);
//   - a universally quantified variable must occur in at most one
//     conjunction (the paper's splitting condition), with at most one
//     other variable in it;
//   - the eliminated variable's range relation must differ from the
//     remaining variable's, so the value list can be built before the
//     remaining variable's relation is scanned.
//
// Elimination cascades: removing one quantifier turns its dyadic terms
// into derived monadic atoms, which can make the next variable eligible
// (the cset/tset/pset chain of Example 4.7). The function iterates until
// no variable is eligible and returns the number eliminated.
func EliminateQuantifiers(x *XForm) int {
	return eliminateQuantifiers(x, nil)
}

// eliminateQuantifiers is the shared driver: a nil cost model picks the
// rightmost eligible variable of the suffix run (the paper's order), a
// non-nil one the eligible variable over the largest estimated relation.
func eliminateQuantifiers(x *XForm, cm CostModel) int {
	if x.Const != nil {
		// With a constant matrix every surviving quantifier is decided by
		// range emptiness alone, which the engine's adaptation handles.
		return 0
	}
	eliminated := 0
	for {
		idx, plans := findEligible(x, cm)
		if idx < 0 {
			return eliminated
		}
		apply(x, idx, plans)
		eliminated++
	}
}

// elimPlan describes the rewrite of one conjunction for an eliminated
// variable.
type elimPlan struct {
	conj int
	spec *SemiSpec
	vm   string // remaining variable; "" for a constant spec
}

// findEligible scans the suffix run of equal quantifiers right-to-left
// and returns the prefix index of an eliminable variable along with its
// per-conjunction rewrite plans: the first (rightmost) one statically,
// or — with a cost model — the one over the largest estimated relation
// (ties keep the rightmost, matching the static order).
func findEligible(x *XForm, cm CostModel) (int, []elimPlan) {
	n := len(x.Prefix)
	if n == 0 {
		return -1, nil
	}
	runStart := n - 1
	for runStart > 0 && x.Prefix[runStart-1].All == x.Prefix[n-1].All {
		runStart--
	}
	bestIdx, bestCard := -1, 0.0
	var bestPlans []elimPlan
	for i := n - 1; i >= runStart; i-- {
		plans, ok := analyze(x, i)
		if !ok {
			continue
		}
		if cm == nil {
			return i, plans
		}
		card := cm.Card(x.Prefix[i].Range.Rel)
		if bestIdx < 0 || card > bestCard {
			bestIdx, bestCard, bestPlans = i, card, plans
		}
	}
	return bestIdx, bestPlans
}

// analyze decides eligibility of prefix variable i and builds its
// rewrite plans.
func analyze(x *XForm, i int) ([]elimPlan, bool) {
	q := x.Prefix[i]
	vn := q.Var
	conjs := x.conjunctionsWith(vn)
	if len(conjs) == 0 {
		// Unconstrained variable. SOME vn IN rel (M) with M free of vn is
		// M AND "rel non-empty"; a constant spec (non-emptiness test in
		// the collection phase) attached to every conjunction expresses
		// exactly that. ALL vn IN rel (M) is TRUE for empty rel but M
		// otherwise — not expressible per conjunction, so universal
		// unconstrained variables stay in the prefix and are handled by
		// division and the runtime adaptation.
		if q.All {
			return nil, false
		}
		spec := &SemiSpec{Var: vn, Range: calculus.CloneRange(q.Range), All: q.All}
		plans := make([]elimPlan, len(x.Matrix))
		for ci := range x.Matrix {
			plans[ci] = elimPlan{conj: ci, spec: spec}
		}
		return plans, true
	}
	if q.All && len(conjs) > 1 {
		// Splitting a universal quantifier is possible only when it
		// occurs in no more than one conjunction (section 4.4 item 2).
		return nil, false
	}
	if q.All && q.Range.Extended() {
		// Splitting ALL vn (rest AND vn-terms) into rest AND ALL vn
		// (vn-terms) is Lemma 1 rule 3, valid only for non-empty ranges.
		// Base ranges are non-empty after the engine's pre-fold, but an
		// extended range can turn out empty at run time — in which case
		// the whole quantified subformula is TRUE, not just the vn part.
		// So with an extended range the conjunction must consist of
		// vn-terms only.
		for _, ci := range conjs {
			for _, a := range x.Matrix[ci] {
				if !contains(a.Vars(), vn) {
					return nil, false
				}
			}
		}
	}
	var plans []elimPlan
	for _, ci := range conjs {
		spec, vm, ok := analyzeConj(x, ci, vn, q.All, q.Range)
		if !ok {
			return nil, false
		}
		plans = append(plans, elimPlan{conj: ci, spec: spec, vm: vm})
	}
	return plans, true
}

// analyzeConj inspects one conjunction's atoms over vn: eligible when
// they involve at most one other variable whose range relation differs
// from vn's.
func analyzeConj(x *XForm, ci int, vn string, all bool, rng *calculus.RangeExpr) (*SemiSpec, string, bool) {
	spec := &SemiSpec{Var: vn, Range: calculus.CloneRange(rng), All: all}
	vm := ""
	for _, a := range x.Matrix[ci] {
		vars := a.Vars()
		if !contains(vars, vn) {
			continue
		}
		switch {
		case len(vars) == 1: // monadic over vn (plain or derived)
			if a.Cmp != nil {
				spec.Monadic = append(spec.Monadic, a.Cmp)
			} else {
				spec.NestedMonadic = append(spec.NestedMonadic, a.Semi)
			}
		case len(vars) == 2 && a.Cmp != nil:
			other := vars[0]
			if other == vn {
				other = vars[1]
			}
			if vm == "" {
				vm = other
			} else if vm != other {
				return nil, "", false // depends on two other variables
			}
			dt, ok := orientDyadic(a.Cmp, vn, other)
			if !ok {
				return nil, "", false
			}
			spec.Dyadic = append(spec.Dyadic, dt)
		default:
			return nil, "", false
		}
	}
	if vm != "" {
		vmRange, ok := x.RangeOf(vm)
		if !ok || vmRange.Rel == spec.Range.Rel {
			// Same base relation: the value list could not be completed
			// before the remaining variable's single scan starts.
			return nil, "", false
		}
	}
	return spec, vm, true
}

// orientDyadic normalizes a dyadic term to "vm.col op vn.col".
func orientDyadic(c *calculus.Cmp, vn, vm string) (DyTerm, bool) {
	lf, lok := c.L.(calculus.Field)
	rf, rok := c.R.(calculus.Field)
	if !lok || !rok {
		return DyTerm{}, false
	}
	switch {
	case lf.Var == vm && rf.Var == vn:
		return DyTerm{VmCol: lf.Col, Op: c.Op, VnCol: rf.Col}, true
	case lf.Var == vn && rf.Var == vm:
		return DyTerm{VmCol: rf.Col, Op: c.Op.Flip(), VnCol: lf.Col}, true
	default:
		return DyTerm{}, false
	}
}

// apply rewrites the XForm for the eliminated prefix variable.
func apply(x *XForm, i int, plans []elimPlan) {
	vn := x.Prefix[i].Var
	x.Prefix = append(x.Prefix[:i], x.Prefix[i+1:]...)
	seen := map[*SemiSpec]bool{}
	for _, p := range plans {
		conj := x.Matrix[p.conj]
		kept := make([]Atom, 0, len(conj))
		for _, a := range conj {
			if atomMentions(a, vn) {
				continue
			}
			kept = append(kept, a)
		}
		kept = append(kept, Atom{Semi: &SemiAtom{Var: p.vm, Spec: p.spec}})
		x.Matrix[p.conj] = kept
		if !seen[p.spec] {
			seen[p.spec] = true
			p.spec.ID = len(x.Specs)
			x.Specs = append(x.Specs, p.spec)
		}
	}
}

func contains(ss []string, v string) bool {
	for _, s := range ss {
		if s == v {
			return true
		}
	}
	return false
}
