package optimizer

import (
	"strings"
	"testing"

	"pascalr/internal/calculus"
	"pascalr/internal/normalize"
	"pascalr/internal/value"
	"pascalr/internal/workload"
)

func mkCmp(v, col string, op value.CmpOp, n int64) *calculus.Cmp {
	return &calculus.Cmp{L: calculus.Field{Var: v, Col: col}, Op: op, R: calculus.Const{Val: value.Int(n)}}
}

// TestCNFExtendsFreeRange: a free variable restricted differently per
// disjunct gets the OR of the restrictions as a range filter, with the
// matrix left intact.
func TestCNFExtendsFreeRange(t *testing.T) {
	sf := &normalize.StandardForm{
		Proj: []calculus.Field{{Var: "f", Col: "a"}},
		Free: []calculus.Decl{{Var: "f", Range: &calculus.RangeExpr{Rel: "r0"}}},
		Matrix: [][]*calculus.Cmp{
			{mkCmp("f", "a", value.OpEq, 1), mkCmp("f", "b", value.OpGt, 0)},
			{mkCmp("f", "a", value.OpEq, 2)},
		},
	}
	out, added := ExtractRangesCNF(sf)
	if added != 1 {
		t.Fatalf("added = %d", added)
	}
	rng := out.Free[0].Range
	if !rng.Extended() {
		t.Fatalf("range not extended:\n%s", out)
	}
	s := rng.String()
	if !strings.Contains(s, "f.a = 1 AND f.b > 0") || !strings.Contains(s, "OR") || !strings.Contains(s, "f.a = 2") {
		t.Errorf("filter = %s", s)
	}
	// The matrix keeps its terms.
	if len(out.Matrix) != 2 || len(out.Matrix[0]) != 2 || len(out.Matrix[1]) != 1 {
		t.Errorf("matrix changed: %v", out.Matrix)
	}
	// Input untouched.
	if sf.Free[0].Range.Extended() {
		t.Errorf("input mutated")
	}
}

// TestCNFRequiresRestrictionEverywhere: a conjunction that leaves the
// variable unrestricted blocks the extension.
func TestCNFRequiresRestrictionEverywhere(t *testing.T) {
	sf := &normalize.StandardForm{
		Proj: []calculus.Field{{Var: "f", Col: "a"}},
		Free: []calculus.Decl{{Var: "f", Range: &calculus.RangeExpr{Rel: "r0"}}},
		Matrix: [][]*calculus.Cmp{
			{mkCmp("f", "a", value.OpEq, 1)},
			{mkCmp("g", "a", value.OpEq, 2)}, // no f restriction here
		},
	}
	sf.Free = append(sf.Free, calculus.Decl{Var: "g", Range: &calculus.RangeExpr{Rel: "r1"}})
	out, added := ExtractRangesCNF(sf)
	if added != 0 || out.Free[0].Range.Extended() {
		t.Errorf("CNF extension applied without restrictions everywhere:\n%s", out)
	}
}

// TestCNFSkipsUniversal: ALL ranges must not be narrowed.
func TestCNFSkipsUniversal(t *testing.T) {
	sf := &normalize.StandardForm{
		Proj:   []calculus.Field{{Var: "f", Col: "a"}},
		Free:   []calculus.Decl{{Var: "f", Range: &calculus.RangeExpr{Rel: "r0"}}},
		Prefix: []normalize.QDecl{{All: true, Var: "q", Range: &calculus.RangeExpr{Rel: "r1"}}},
		Matrix: [][]*calculus.Cmp{
			{mkCmp("q", "a", value.OpEq, 1), mkCmp("f", "a", value.OpGt, 0)},
			{mkCmp("q", "a", value.OpEq, 2), mkCmp("f", "a", value.OpLt, 9)},
		},
	}
	out, _ := ExtractRangesCNF(sf)
	if out.Prefix[0].Range.Extended() {
		t.Errorf("universal range narrowed:\n%s", out)
	}
	// The free variable is restricted in both conjunctions, though.
	if !out.Free[0].Range.Extended() {
		t.Errorf("free range not extended:\n%s", out)
	}
}

// TestCNFComposesWithPlainExtraction on the disjunctive workload query:
// plain S3 finds nothing to move for t (the day tests differ per
// conjunction), the CNF pass narrows t's range by their disjunction.
func TestCNFComposesWithPlainExtraction(t *testing.T) {
	db := workload.MustUniversity(workload.DefaultConfig(5))
	sel, _, err := calculus.Check(workload.DisjunctiveSelection(), db.Catalog())
	if err != nil {
		t.Fatal(err)
	}
	sf, err := normalize.Standardize(sel, normalize.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plain, _ := ExtractRanges(sf)
	if plain.Prefix[0].Range.Extended() {
		t.Fatalf("plain extraction should not move disjunct-specific terms:\n%s", plain)
	}
	cnf, added := ExtractRangesCNF(plain)
	if added < 1 || !cnf.Prefix[0].Range.Extended() {
		t.Fatalf("CNF extension missing:\n%s", cnf)
	}
	s := cnf.Prefix[0].Range.String()
	if !strings.Contains(s, "OR") {
		t.Errorf("filter not disjunctive: %s", s)
	}
}
