package optimizer

import (
	"strings"
	"testing"

	"pascalr/internal/calculus"
	"pascalr/internal/normalize"
	"pascalr/internal/value"
	"pascalr/internal/workload"
)

// sampleSF standardizes the paper's Example 2.1 (labels resolved against
// the Figure 1 catalog).
func sampleSF(t *testing.T) *normalize.StandardForm {
	t.Helper()
	db := workload.MustUniversity(workload.DefaultConfig(5))
	sel, _, err := calculus.Check(workload.SampleSelection(), db.Catalog())
	if err != nil {
		t.Fatal(err)
	}
	sf, err := normalize.Standardize(sel, normalize.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return sf
}

// TestExtractExample45 reproduces Example 4.5: the professor test moves
// to e's range, pyear=1977 to p's range (dropping one conjunction), and
// the level test to c's range.
func TestExtractExample45(t *testing.T) {
	sf := sampleSF(t)
	out, moved := ExtractRanges(sf)
	if len(out.Matrix) != 2 {
		t.Fatalf("matrix = %d conjunctions, want 2:\n%s", len(out.Matrix), out)
	}
	if moved != 5 {
		t.Errorf("moved = %d term occurrences, want 5", moved)
	}
	// e's range: employees restricted to professors.
	if !out.Free[0].Range.Extended() || !strings.Contains(out.Free[0].Range.String(), "estatus") {
		t.Errorf("e range = %s", out.Free[0].Range)
	}
	// p's range: papers restricted to pyear = 1977 (the NEGATION of the
	// removed disjunct's pyear <> 1977).
	var pRange, cRange, tRange *calculus.RangeExpr
	for _, q := range out.Prefix {
		switch q.Var {
		case "p":
			pRange = q.Range
		case "c":
			cRange = q.Range
		case "t":
			tRange = q.Range
		}
	}
	if !pRange.Extended() || !strings.Contains(pRange.String(), "p.pyear = 1977") {
		t.Errorf("p range = %s", pRange)
	}
	if !cRange.Extended() || !strings.Contains(cRange.String(), "clevel") {
		t.Errorf("c range = %s", cRange)
	}
	if tRange.Extended() {
		t.Errorf("t range should stay unextended: %s", tRange)
	}
	// The input must not have been mutated.
	if len(sf.Matrix) != 3 {
		t.Errorf("ExtractRanges mutated its input")
	}
}

// TestExtractKeepsWitnessTerm checks that existential extraction never
// removes a variable's last mention from a conjunction: the runtime
// adaptation identifies witness-requiring conjunctions by those
// mentions.
func TestExtractKeepsWitnessTerm(t *testing.T) {
	mk := func(v, col string, op value.CmpOp, n int64) *calculus.Cmp {
		return &calculus.Cmp{L: calculus.Field{Var: v, Col: col}, Op: op, R: calculus.Const{Val: value.Int(n)}}
	}
	sf := &normalize.StandardForm{
		Proj:   []calculus.Field{{Var: "f", Col: "a"}},
		Free:   []calculus.Decl{{Var: "f", Range: &calculus.RangeExpr{Rel: "r0"}}},
		Prefix: []normalize.QDecl{{Var: "q", Range: &calculus.RangeExpr{Rel: "r1"}}},
		Matrix: [][]*calculus.Cmp{
			{mk("f", "a", value.OpGt, 0)},                              // q-free disjunct
			{mk("q", "a", value.OpLt, 5), mk("q", "b", value.OpEq, 1)}, // q-only disjunct
		},
	}
	out, _ := ExtractRanges(sf)
	// q's range must be extended with both terms...
	rng := out.Prefix[0].Range
	if !rng.Extended() || !strings.Contains(rng.String(), "q.a < 5") || !strings.Contains(rng.String(), "q.b = 1") {
		t.Errorf("q range = %s", rng)
	}
	// ...but the conjunction must keep at least one q-mention.
	found := false
	for _, conj := range out.Matrix {
		for _, c := range conj {
			for _, v := range calculus.VarsOfCmp(c) {
				if v == "q" {
					found = true
				}
			}
		}
	}
	if !found {
		t.Errorf("existential extraction removed the witness mention:\n%s", out)
	}
}

// TestNoFreeExtractionAfterUniversal is the regression test for the
// invalid cascade: a free term that is only "in every conjunction" after
// the universal extraction removed a disjunct must stay in the matrix.
func TestNoFreeExtractionAfterUniversal(t *testing.T) {
	mk := func(v, col string, op value.CmpOp, n int64) *calculus.Cmp {
		return &calculus.Cmp{L: calculus.Field{Var: v, Col: col}, Op: op, R: calculus.Const{Val: value.Int(n)}}
	}
	// Matrix: (q.a > 1) OR (f.b > 5) under ALL q.
	sf := &normalize.StandardForm{
		Proj:   []calculus.Field{{Var: "f", Col: "a"}},
		Free:   []calculus.Decl{{Var: "f", Range: &calculus.RangeExpr{Rel: "r0"}}},
		Prefix: []normalize.QDecl{{All: true, Var: "q", Range: &calculus.RangeExpr{Rel: "r1"}}},
		Matrix: [][]*calculus.Cmp{
			{mk("q", "a", value.OpGt, 1)},
			{mk("f", "b", value.OpGt, 5)},
		},
	}
	out, _ := ExtractRanges(sf)
	// The universal disjunct folds into q's range...
	if !out.Prefix[0].Range.Extended() {
		t.Fatalf("universal extraction missing:\n%s", out)
	}
	// ...and f's term must remain in the matrix with f's range untouched.
	if out.Free[0].Range.Extended() {
		t.Errorf("free extraction after universal removal is unsound:\n%s", out)
	}
	if len(out.Matrix) != 1 || len(out.Matrix[0]) != 1 {
		t.Errorf("matrix = %v", out.Matrix)
	}
}

// TestUniversalExtractionToConstFalse: when every disjunct folds into
// the filter, the matrix becomes FALSE (the predicate holds only when
// the extended range is empty, which the runtime adaptation detects).
func TestUniversalExtractionToConstFalse(t *testing.T) {
	mk := func(op value.CmpOp, n int64) *calculus.Cmp {
		return &calculus.Cmp{L: calculus.Field{Var: "q", Col: "a"}, Op: op, R: calculus.Const{Val: value.Int(n)}}
	}
	sf := &normalize.StandardForm{
		Proj:   []calculus.Field{{Var: "f", Col: "a"}},
		Free:   []calculus.Decl{{Var: "f", Range: &calculus.RangeExpr{Rel: "r0"}}},
		Prefix: []normalize.QDecl{{All: true, Var: "q", Range: &calculus.RangeExpr{Rel: "r1"}}},
		Matrix: [][]*calculus.Cmp{{mk(value.OpGt, 1)}, {mk(value.OpLt, 0)}},
	}
	out, moved := ExtractRanges(sf)
	if moved != 2 || out.Const == nil || *out.Const {
		t.Errorf("moved=%d const=%v:\n%s", moved, out.Const, out)
	}
}

// TestEliminateCascade reproduces Example 4.7: after extraction, all
// three quantifiers become value lists (cset, tset, pset) and the tset
// spec carries the cset predicate as a nested monadic atom.
func TestEliminateCascade(t *testing.T) {
	sf := sampleSF(t)
	extracted, _ := ExtractRanges(sf)
	x := FromStandardForm(extracted)
	n := EliminateQuantifiers(x)
	if n != 3 || len(x.Prefix) != 0 {
		t.Fatalf("eliminated %d, prefix %v:\n%s", n, x.Prefix, x)
	}
	if len(x.Specs) != 3 {
		t.Fatalf("specs = %d", len(x.Specs))
	}
	// The elimination order is c (courses), then t (timetable, nesting
	// c's derived atom), then p (papers).
	byVar := map[string]*SemiSpec{}
	for _, s := range x.Specs {
		byVar[s.Var] = s
	}
	if byVar["c"] == nil || byVar["t"] == nil || byVar["p"] == nil {
		t.Fatalf("spec vars = %v", byVar)
	}
	if len(byVar["t"].NestedMonadic) != 1 || byVar["t"].NestedMonadic[0].Spec != byVar["c"] {
		t.Errorf("tset does not nest cset: %+v", byVar["t"])
	}
	if byVar["p"].All != true || byVar["c"].All || byVar["t"].All {
		t.Errorf("quantifier kinds wrong")
	}
	// pset derives an anti-membership (<> with ALL) on e.enr.
	if len(byVar["p"].Dyadic) != 1 || byVar["p"].Dyadic[0].Op != value.OpNe {
		t.Errorf("pset dyadic = %+v", byVar["p"].Dyadic)
	}
}

// TestUniversalMultiConjunctionIneligible checks the Example 4.6
// observation: without extraction, p occurs in two conjunctions, so
// ALL p cannot be evaluated in the collection phase.
func TestUniversalMultiConjunctionIneligible(t *testing.T) {
	sf := sampleSF(t)
	x := FromStandardForm(sf)
	EliminateQuantifiers(x)
	for _, q := range x.Prefix {
		if q.Var == "p" {
			return
		}
	}
	t.Errorf("ALL p eliminated despite two conjunctions:\n%s", x)
}

// TestSameRelationIneligible: the value list cannot be completed before
// the remaining variable's scan when both range over the same relation.
func TestSameRelationIneligible(t *testing.T) {
	mk := &calculus.Cmp{
		L: calculus.Field{Var: "f", Col: "a"}, Op: value.OpEq,
		R: calculus.Field{Var: "q", Col: "b"},
	}
	x := &XForm{
		Proj:   []calculus.Field{{Var: "f", Col: "a"}},
		Free:   []calculus.Decl{{Var: "f", Range: &calculus.RangeExpr{Rel: "r0"}}},
		Prefix: []normalize.QDecl{{Var: "q", Range: &calculus.RangeExpr{Rel: "r0"}}},
		Matrix: [][]Atom{{{Cmp: mk}}},
	}
	if n := EliminateQuantifiers(x); n != 0 {
		t.Errorf("same-relation quantifier eliminated (%d)", n)
	}
}

// TestUnconstrainedQuantifiers: SOME over an unconstrained variable
// becomes a non-emptiness gate; ALL stays in the prefix (its empty-range
// case is not expressible per conjunction).
func TestUnconstrainedQuantifiers(t *testing.T) {
	fTerm := &calculus.Cmp{
		L: calculus.Field{Var: "f", Col: "a"}, Op: value.OpGt,
		R: calculus.Const{Val: value.Int(0)},
	}
	mkX := func(all bool) *XForm {
		return &XForm{
			Proj:   []calculus.Field{{Var: "f", Col: "a"}},
			Free:   []calculus.Decl{{Var: "f", Range: &calculus.RangeExpr{Rel: "r0"}}},
			Prefix: []normalize.QDecl{{All: all, Var: "q", Range: &calculus.RangeExpr{Rel: "r1"}}},
			Matrix: [][]Atom{{{Cmp: fTerm}}},
		}
	}
	someX := mkX(false)
	if n := EliminateQuantifiers(someX); n != 1 || len(someX.Specs) != 1 || !someX.Specs[0].ConstOnly() {
		t.Errorf("unconstrained SOME not turned into a constant gate:\n%s", someX)
	}
	allX := mkX(true)
	if n := EliminateQuantifiers(allX); n != 0 || len(allX.Prefix) != 1 {
		t.Errorf("unconstrained ALL eliminated:\n%s", allX)
	}
}

func TestXFormHelpers(t *testing.T) {
	sf := sampleSF(t)
	x := FromStandardForm(sf)
	if vars := x.Vars(); len(vars) != 4 || vars[0] != "e" {
		t.Errorf("Vars = %v", vars)
	}
	if r, ok := x.RangeOf("p"); !ok || r.Rel != "papers" {
		t.Errorf("RangeOf(p) = %v %v", r, ok)
	}
	if _, ok := x.RangeOf("zz"); ok {
		t.Errorf("RangeOf(zz) resolved")
	}
	s := x.String()
	if !strings.Contains(s, "ALL p IN papers") || !strings.Contains(s, "OR") {
		t.Errorf("XForm rendering:\n%s", s)
	}
	// Derived atoms render with their quantifier.
	extracted, _ := ExtractRanges(sf)
	x2 := FromStandardForm(extracted)
	EliminateQuantifiers(x2)
	s2 := x2.String()
	if !strings.Contains(s2, "SOME t IN timetable") {
		t.Errorf("derived atom rendering:\n%s", s2)
	}
}
