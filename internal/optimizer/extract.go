package optimizer

import (
	"sort"

	"pascalr/internal/calculus"
	"pascalr/internal/normalize"
)

// ExtractRanges applies strategy 3 to a standard form: monadic join
// terms move out of the matrix into extended range expressions. It
// returns a transformed copy and the number of term occurrences removed
// from the matrix.
//
// Validity follows the paper's equivalences (section 4.3), with Lemma 1
// covering the disjuncts that do not mention the variable:
//
//   - free variables: a monadic term is extractable iff it appears in
//     every conjunction — free bindings must satisfy it whichever
//     disjunct holds;
//   - existentially quantified variables: extractable iff it appears in
//     every conjunction containing the variable (SOME rec IN rel
//     (S AND W) = SOME rec IN [EACH r IN rel: S] (W); disjuncts without
//     the variable commute with the quantifier when the range is
//     non-empty, which the engine's runtime adaptation guarantees);
//   - universally quantified variables: a disjunct consisting of exactly
//     one monadic term NOT S(v) folds into the range filter S(v) and
//     disappears from the matrix (ALL rec IN rel (NOT S OR W) = ALL rec
//     IN [EACH r IN rel: S] (W)) — the transformation Example 4.5 shows
//     pays off most.
//
// Free-variable extraction runs exactly once, on the original matrix:
// its validity argument pulls the term out through the whole quantifier
// prefix (rule 3 needs the base ranges non-empty, which the engine's
// pre-fold guarantees), and that argument breaks for terms that only
// become "present in every conjunction" after a universal extraction has
// removed a disjunct — the runtime adaptation could not undo the range
// restriction when the universal's extended range turns out empty.
// Quantified-variable extraction is pointwise valid and iterates to a
// fixpoint: removing a universal disjunct can make terms of existential
// variables extractable and vice versa.
func ExtractRanges(sf *normalize.StandardForm) (*normalize.StandardForm, int) {
	return extractRanges(sf, nil)
}

// extractGate decides whether a monadic term of v may move into the
// range; nil admits every term. ExtractRangesCost supplies a
// selectivity-based gate.
type extractGate func(rng *calculus.RangeExpr, v string, c *calculus.Cmp) bool

func extractRanges(sf *normalize.StandardForm, gate extractGate) (*normalize.StandardForm, int) {
	out := sf.Clone()
	if out.Const != nil {
		return out, 0
	}
	moved := 0
	for _, d := range out.Free {
		moved += extractEvery(out, d.Var, d.Range, true, gate)
		if out.Const != nil {
			return out, moved
		}
	}
	for {
		n := extractQuantPass(out, gate)
		moved += n
		if n == 0 || out.Const != nil {
			return out, moved
		}
	}
}

func extractQuantPass(sf *normalize.StandardForm, gate extractGate) int {
	moved := 0
	for _, q := range sf.Prefix {
		if q.All {
			moved += extractUniversal(sf, q.Var, q.Range)
		} else {
			moved += extractEvery(sf, q.Var, q.Range, false, gate)
		}
		if sf.Const != nil {
			return moved
		}
	}
	return moved
}

// extractEvery moves monadic terms of v into its range filter when they
// appear in every conjunction (free variables: everyConj true) or in
// every conjunction containing v (existential variables).
//
// For free variables an emptied conjunction makes the whole matrix TRUE
// (the term was conjoined with everything, so the predicate reduces to
// the range restriction). For existential variables that collapse would
// be wrong: the conjunction's truth still requires a witness in the
// extended range, which the runtime adaptation checks — so one
// (now redundant) term stays behind to keep the witness requirement in
// the matrix.
func extractEvery(sf *normalize.StandardForm, v string, rng *calculus.RangeExpr, everyConj bool, gate extractGate) int {
	relevant := relevantConjs(sf, v, everyConj)
	if len(relevant) == 0 {
		return 0
	}
	// Candidate terms: monadic terms of v present in the first relevant
	// conjunction (and admitted by the gate); keep those present in all
	// of them.
	counts := map[string]*calculus.Cmp{}
	for _, c := range sf.Matrix[relevant[0]] {
		if mv, ok := calculus.Monadic(c); ok && mv == v {
			if gate != nil && !gate(rng, v, c) {
				continue
			}
			counts[c.String()] = c
		}
	}
	for _, ci := range relevant[1:] {
		present := map[string]bool{}
		for _, c := range sf.Matrix[ci] {
			present[c.String()] = true
		}
		for key := range counts {
			if !present[key] {
				delete(counts, key)
			}
		}
	}
	if len(counts) == 0 {
		return 0
	}
	moved := 0
	keys := make([]string, 0, len(counts))
	for key := range counts {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		addToFilter(rng, v, counts[key])
	}
	for _, ci := range relevant {
		conj := sf.Matrix[ci]
		mentions := 0
		for _, c := range conj {
			if termMentions(c, v) {
				mentions++
			}
		}
		for _, key := range keys {
			if !everyConj && mentions == 1 {
				break // keep the last v-mention as the witness term
			}
			if hasTerm(conj, key) {
				conj = removeTerm(conj, key)
				mentions--
				moved++
			}
		}
		sf.Matrix[ci] = conj
	}
	if everyConj {
		// A conjunction emptied by free-variable extraction makes the
		// matrix TRUE: the predicate reduced to the range restriction.
		for _, conj := range sf.Matrix {
			if len(conj) == 0 {
				t := true
				sf.Const = &t
				sf.Matrix = nil
				break
			}
		}
	}
	return moved
}

// extractUniversal applies the ALL rule: disjuncts that are exactly one
// monadic term over v fold (negated) into v's range filter and leave the
// matrix.
func extractUniversal(sf *normalize.StandardForm, v string, rng *calculus.RangeExpr) int {
	moved := 0
	kept := sf.Matrix[:0]
	for _, conj := range sf.Matrix {
		if len(conj) == 1 {
			if mv, ok := calculus.Monadic(conj[0]); ok && mv == v {
				neg := &calculus.Cmp{L: conj[0].L, Op: conj[0].Op.Negate(), R: conj[0].R}
				addToFilter(rng, v, neg)
				moved++
				continue
			}
		}
		kept = append(kept, conj)
	}
	sf.Matrix = kept
	if moved > 0 && len(sf.Matrix) == 0 {
		// Every disjunct folded into the filter: the matrix is FALSE, so
		// the predicate holds only when the extended range is empty —
		// which the engine's adaptation detects at runtime.
		f := false
		sf.Const = &f
	}
	return moved
}

// relevantConjs returns all conjunction indexes (everyConj) or those
// containing v; it returns nil when the condition can't be met.
func relevantConjs(sf *normalize.StandardForm, v string, everyConj bool) []int {
	if everyConj {
		out := make([]int, len(sf.Matrix))
		for i := range sf.Matrix {
			out[i] = i
		}
		return out
	}
	return sf.ConjunctionsWith(v)
}

// addToFilter ANDs a monadic term over v into the range's filter,
// renaming to the filter's own variable and skipping duplicates.
func addToFilter(rng *calculus.RangeExpr, v string, term *calculus.Cmp) {
	if rng.Filter == nil {
		rng.FilterVar = v
	}
	t := calculus.Formula(&calculus.Cmp{L: term.L, Op: term.Op, R: term.R})
	if rng.FilterVar != v {
		t = calculus.RenameVar(t, v, rng.FilterVar)
	}
	if rng.Filter == nil {
		rng.Filter = t
		return
	}
	// Skip exact duplicates already in the filter.
	dup := false
	calculus.Walk(rng.Filter, func(f calculus.Formula) bool {
		if calculus.Equal(f, t) {
			dup = true
			return false
		}
		return true
	})
	if !dup {
		rng.Filter = calculus.NewAnd(rng.Filter, t)
	}
}

func removeTerm(conj []*calculus.Cmp, key string) []*calculus.Cmp {
	out := make([]*calculus.Cmp, 0, len(conj))
	for _, c := range conj {
		if c.String() != key {
			out = append(out, c)
		}
	}
	return out
}

func hasTerm(conj []*calculus.Cmp, key string) bool {
	for _, c := range conj {
		if c.String() == key {
			return true
		}
	}
	return false
}

func termMentions(c *calculus.Cmp, v string) bool {
	for _, mv := range calculus.VarsOfCmp(c) {
		if mv == v {
			return true
		}
	}
	return false
}
