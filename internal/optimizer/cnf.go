package optimizer

import (
	"pascalr/internal/calculus"
	"pascalr/internal/normalize"
)

// ExtractRangesCNF implements the generalization the paper proposes as
// future work in section 4.3: "The current system version supports only
// conjunctions of join terms as range expression extensions. The use of
// the more general conjunctive normal form is expected to improve
// further the efficiency of the system."
//
// Where plain extraction moves a monadic term that is common to every
// relevant conjunction, the CNF extension adds a *disjunctive* filter —
// the OR over the conjunctions' monadic restrictions — whenever every
// relevant conjunction restricts the variable monadically at all. The
// matrix terms stay in place (they are still needed to tell the
// conjunctions apart); the extension is a pure range narrowing:
//
//	SOME v IN rel ((M1(v) AND R1) OR (M2(v) AND R2))
//	  = SOME v IN [EACH r IN rel: M1(r) OR M2(r)]
//	       ((M1(v) AND R1) OR (M2(v) AND R2))
//
// Any witness of either disjunct satisfies its own monadic part and
// hence the disjunction, so narrowing loses nothing. Free variables
// qualify only through some disjunct, so the same reasoning applies
// when every conjunction (of the whole matrix) restricts them.
// Universal variables are not eligible: narrowing an ALL range weakens
// the test.
//
// It returns a transformed copy and the number of range filters added.
func ExtractRangesCNF(sf *normalize.StandardForm) (*normalize.StandardForm, int) {
	out := sf.Clone()
	if out.Const != nil {
		return out, 0
	}
	added := 0
	for _, d := range out.Free {
		if cnfExtend(out, d.Var, d.Range, true) {
			added++
		}
	}
	for _, q := range out.Prefix {
		if q.All {
			continue
		}
		if cnfExtend(out, q.Var, q.Range, false) {
			added++
		}
	}
	return out, added
}

// cnfExtend narrows v's range by the OR of the per-conjunction monadic
// restrictions, when every relevant conjunction has at least one.
func cnfExtend(sf *normalize.StandardForm, v string, rng *calculus.RangeExpr, everyConj bool) bool {
	relevant := relevantConjs(sf, v, everyConj)
	if len(relevant) < 2 {
		return false // single conjunction: plain extraction already covers it
	}
	disjuncts := make([]calculus.Formula, 0, len(relevant))
	seen := map[string]bool{}
	for _, ci := range relevant {
		var mon []calculus.Formula
		for _, c := range sf.Matrix[ci] {
			if mv, ok := calculus.Monadic(c); ok && mv == v {
				mon = append(mon, &calculus.Cmp{L: c.L, Op: c.Op, R: c.R})
			}
		}
		if len(mon) == 0 {
			return false // this conjunction leaves v unrestricted
		}
		d := calculus.NewAnd(mon...)
		key := d.String()
		if !seen[key] {
			seen[key] = true
			disjuncts = append(disjuncts, d)
		}
	}
	filter := calculus.NewOr(disjuncts...)
	// A single distinct restriction is what plain extraction moves; the
	// disjunctive form only helps when the conjunctions differ.
	if len(disjuncts) < 2 {
		return false
	}
	fv := v
	if rng.Extended() {
		fv = rng.FilterVar
		if fv != v {
			filter = calculus.RenameVar(filter, v, fv)
		}
		rng.Filter = calculus.NewAnd(rng.Filter, filter)
	} else {
		rng.FilterVar = fv
		rng.Filter = filter
	}
	return true
}
