package calculus

import (
	"fmt"
	"strings"
)

// Printing uses the paper's concrete syntax, with parentheses inserted
// by precedence: OR binds weakest, then AND, then NOT; quantifiers take a
// parenthesized body. The output round-trips through the parser.

const (
	precOr = iota
	precAnd
	precNot
	precAtom
)

func (f *Cmp) String() string { return fmt.Sprintf("%s %s %s", f.L, f.Op, f.R) }
func (f *Not) String() string { return "NOT " + paren(f.F, precNot) }
func (f *Lit) String() string { return map[bool]string{true: "TRUE", false: "FALSE"}[f.Val] }
func (f *And) String() string { return joinWith(f.Fs, " AND ", precAnd) }
func (f *Or) String() string  { return joinWith(f.Fs, " OR ", precOr) }
func (f *Quant) String() string {
	q := "SOME"
	if f.All {
		q = "ALL"
	}
	return fmt.Sprintf("%s %s IN %s (%s)", q, f.Var, f.Range, f.Body)
}

func prec(f Formula) int {
	switch f.(type) {
	case *Or:
		return precOr
	case *And:
		return precAnd
	case *Not:
		return precNot
	default:
		return precAtom
	}
}

func paren(f Formula, ctx int) string {
	if prec(f) < ctx {
		return "(" + f.String() + ")"
	}
	return f.String()
}

func joinWith(fs []Formula, sep string, ctx int) string {
	parts := make([]string, len(fs))
	for i, f := range fs {
		if _, isQ := f.(*Quant); isQ {
			// Quantifiers carry an explicitly parenthesized body already,
			// but wrapping the whole quantifier keeps the printout
			// unambiguous to human readers inside connective chains.
			parts[i] = "(" + f.String() + ")"
		} else {
			parts[i] = paren(f, ctx)
		}
	}
	return strings.Join(parts, sep)
}

// String renders the range expression: a bare relation name, or the
// extended form [EACH v IN rel: filter].
func (r *RangeExpr) String() string {
	if r == nil {
		return "<nil range>"
	}
	if !r.Extended() {
		return r.Rel
	}
	return fmt.Sprintf("[EACH %s IN %s: %s]", r.FilterVar, r.Rel, r.Filter)
}

// String renders the full selection in the paper's concrete syntax.
func (s *Selection) String() string {
	var b strings.Builder
	b.WriteString("[<")
	for i, p := range s.Proj {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(p.String())
	}
	b.WriteString("> OF ")
	for i, d := range s.Free {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "EACH %s IN %s", d.Var, d.Range)
	}
	b.WriteString(": ")
	if s.Pred == nil {
		b.WriteString("TRUE")
	} else {
		b.WriteString(s.Pred.String())
	}
	b.WriteString("]")
	return b.String()
}
