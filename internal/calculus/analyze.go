package calculus

import "sort"

// Walk visits f and every subformula in depth-first order, including the
// filters of quantifier ranges. It stops early when fn returns false.
func Walk(f Formula, fn func(Formula) bool) bool {
	if f == nil {
		return true
	}
	if !fn(f) {
		return false
	}
	switch g := f.(type) {
	case *Not:
		return Walk(g.F, fn)
	case *And:
		for _, sub := range g.Fs {
			if !Walk(sub, fn) {
				return false
			}
		}
	case *Or:
		for _, sub := range g.Fs {
			if !Walk(sub, fn) {
				return false
			}
		}
	case *Quant:
		if g.Range.Extended() {
			if !Walk(g.Range.Filter, fn) {
				return false
			}
		}
		return Walk(g.Body, fn)
	}
	return true
}

// VarsOfCmp returns the distinct variables a join term mentions, in
// first-occurrence order: zero for constant terms, one for monadic
// terms, two for dyadic terms.
func VarsOfCmp(c *Cmp) []string {
	var out []string
	add := func(o Operand) {
		if fld, ok := o.(Field); ok {
			for _, v := range out {
				if v == fld.Var {
					return
				}
			}
			out = append(out, fld.Var)
		}
	}
	add(c.L)
	add(c.R)
	return out
}

// Monadic reports whether the join term mentions exactly one variable and
// returns its name.
func Monadic(c *Cmp) (string, bool) {
	vars := VarsOfCmp(c)
	if len(vars) == 1 {
		return vars[0], true
	}
	return "", false
}

// Dyadic reports whether the join term mentions exactly two variables and
// returns them in operand order.
func Dyadic(c *Cmp) (string, string, bool) {
	vars := VarsOfCmp(c)
	if len(vars) == 2 {
		return vars[0], vars[1], true
	}
	return "", "", false
}

// FreeVars returns the variables that occur free in f (mentioned in a
// join term but not bound by an enclosing quantifier), sorted.
func FreeVars(f Formula) []string {
	free := map[string]bool{}
	var rec func(f Formula, bound map[string]bool)
	rec = func(f Formula, bound map[string]bool) {
		switch g := f.(type) {
		case nil:
		case *Cmp:
			for _, v := range VarsOfCmp(g) {
				if !bound[v] {
					free[v] = true
				}
			}
		case *Not:
			rec(g.F, bound)
		case *And:
			for _, sub := range g.Fs {
				rec(sub, bound)
			}
		case *Or:
			for _, sub := range g.Fs {
				rec(sub, bound)
			}
		case *Lit:
		case *Quant:
			// The range filter binds its own variable independently.
			if g.Range.Extended() {
				inner := map[string]bool{g.Range.FilterVar: true}
				rec(g.Range.Filter, inner)
			}
			b2 := make(map[string]bool, len(bound)+1)
			for k := range bound {
				b2[k] = true
			}
			b2[g.Var] = true
			rec(g.Body, b2)
		}
	}
	rec(f, map[string]bool{})
	out := make([]string, 0, len(free))
	for v := range free {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// AllVars returns every variable mentioned anywhere in f (bound or
// free, excluding range-filter variables), sorted.
func AllVars(f Formula) []string {
	seen := map[string]bool{}
	Walk(f, func(sub Formula) bool {
		switch g := sub.(type) {
		case *Cmp:
			for _, v := range VarsOfCmp(g) {
				seen[v] = true
			}
		case *Quant:
			seen[g.Var] = true
		}
		return true
	})
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// QuantCount returns the number of quantifiers in f (nested anywhere,
// excluding range filters, which are always quantifier-free).
func QuantCount(f Formula) int {
	n := 0
	Walk(f, func(sub Formula) bool {
		if _, ok := sub.(*Quant); ok {
			n++
		}
		return true
	})
	return n
}

// HasUniversal reports whether f contains an ALL quantifier anywhere.
func HasUniversal(f Formula) bool {
	found := false
	Walk(f, func(sub Formula) bool {
		if q, ok := sub.(*Quant); ok && q.All {
			found = true
			return false
		}
		return true
	})
	return found
}

// RenameVar replaces every occurrence of variable old with new in f:
// field references, quantifier declarations, and range-filter variables
// are all rewritten. The caller must ensure new is not already in use.
func RenameVar(f Formula, old, new string) Formula {
	switch g := f.(type) {
	case nil:
		return nil
	case *Cmp:
		return &Cmp{L: renameOperand(g.L, old, new), Op: g.Op, R: renameOperand(g.R, old, new)}
	case *Not:
		return &Not{F: RenameVar(g.F, old, new)}
	case *And:
		fs := make([]Formula, len(g.Fs))
		for i, sub := range g.Fs {
			fs[i] = RenameVar(sub, old, new)
		}
		return &And{Fs: fs}
	case *Or:
		fs := make([]Formula, len(g.Fs))
		for i, sub := range g.Fs {
			fs[i] = RenameVar(sub, old, new)
		}
		return &Or{Fs: fs}
	case *Lit:
		return &Lit{Val: g.Val}
	case *Quant:
		v := g.Var
		if v == old {
			v = new
		}
		return &Quant{All: g.All, Var: v, Range: CloneRange(g.Range), Body: RenameVar(g.Body, old, new)}
	default:
		panic("calculus: RenameVar of unknown formula")
	}
}

func renameOperand(o Operand, old, new string) Operand {
	if fld, ok := o.(Field); ok && fld.Var == old {
		return Field{Var: new, Col: fld.Col}
	}
	return o
}

// Equal reports structural equality of two formulas.
func Equal(a, b Formula) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return a.String() == b.String()
}
