package calculus

import (
	"strings"
	"testing"

	"pascalr/internal/schema"
	"pascalr/internal/value"
)

// testCatalog builds the Figure 1 catalog of the paper.
func testCatalog(t *testing.T) *schema.Catalog {
	t.Helper()
	cat := schema.NewCatalog()
	st, err := schema.EnumType("statustype", "student", "technician", "assistant", "professor")
	if err != nil {
		t.Fatal(err)
	}
	lt, err := schema.EnumType("leveltype", "freshman", "sophomore", "junior", "senior")
	if err != nil {
		t.Fatal(err)
	}
	cat.DefineType(st)
	cat.DefineType(lt)
	enr := schema.IntType("enumbertype", 1, 99)
	cnr := schema.IntType("cnumbertype", 1, 99)
	cat.DefineRelation(schema.MustRelSchema("employees", []schema.Column{
		{Name: "enr", Type: enr},
		{Name: "ename", Type: schema.StringType("nametype", 10)},
		{Name: "estatus", Type: st},
	}, []string{"enr"}))
	cat.DefineRelation(schema.MustRelSchema("papers", []schema.Column{
		{Name: "penr", Type: enr},
		{Name: "pyear", Type: schema.IntType("yeartype", 1900, 1999)},
		{Name: "ptitle", Type: schema.StringType("titletype", 40)},
	}, []string{"ptitle", "penr"}))
	cat.DefineRelation(schema.MustRelSchema("courses", []schema.Column{
		{Name: "cnr", Type: cnr},
		{Name: "clevel", Type: lt},
		{Name: "ctitle", Type: schema.StringType("titletype", 40)},
	}, []string{"cnr"}))
	cat.DefineRelation(schema.MustRelSchema("timetable", []schema.Column{
		{Name: "tenr", Type: enr},
		{Name: "tcnr", Type: cnr},
		{Name: "tday", Type: schema.IntType("daytype", 1, 5)},
	}, []string{"tenr", "tcnr", "tday"}))
	return cat
}

// paperSelection builds Example 2.1 of the paper.
func paperSelection() *Selection {
	return &Selection{
		Proj: []Field{{Var: "e", Col: "ename"}},
		Free: []Decl{{Var: "e", Range: &RangeExpr{Rel: "employees"}}},
		Pred: NewAnd(
			&Cmp{L: Field{"e", "estatus"}, Op: value.OpEq, R: Label{"professor"}},
			NewOr(
				&Quant{All: true, Var: "p", Range: &RangeExpr{Rel: "papers"},
					Body: NewOr(
						&Cmp{L: Field{"p", "pyear"}, Op: value.OpNe, R: Const{value.Int(1977)}},
						&Cmp{L: Field{"e", "enr"}, Op: value.OpNe, R: Field{"p", "penr"}},
					)},
				&Quant{Var: "c", Range: &RangeExpr{Rel: "courses"},
					Body: NewAnd(
						&Cmp{L: Field{"c", "clevel"}, Op: value.OpLe, R: Label{"sophomore"}},
						&Quant{Var: "t", Range: &RangeExpr{Rel: "timetable"},
							Body: NewAnd(
								&Cmp{L: Field{"c", "cnr"}, Op: value.OpEq, R: Field{"t", "tcnr"}},
								&Cmp{L: Field{"e", "enr"}, Op: value.OpEq, R: Field{"t", "tenr"}},
							)},
					)},
			),
		),
	}
}

func TestNewAndNewOr(t *testing.T) {
	a := &Cmp{L: Field{"e", "enr"}, Op: value.OpEq, R: Const{value.Int(1)}}
	b := &Cmp{L: Field{"e", "enr"}, Op: value.OpNe, R: Const{value.Int(2)}}

	if got := NewAnd(); got.String() != "TRUE" {
		t.Errorf("empty AND = %s", got)
	}
	if got := NewOr(); got.String() != "FALSE" {
		t.Errorf("empty OR = %s", got)
	}
	if got := NewAnd(a); got != a {
		t.Errorf("singleton AND not collapsed")
	}
	if got := NewAnd(a, &Lit{Val: true}, b); len(got.(*And).Fs) != 2 {
		t.Errorf("TRUE not dropped from AND: %s", got)
	}
	if got := NewAnd(a, &Lit{Val: false}); got.String() != "FALSE" {
		t.Errorf("AND with FALSE = %s", got)
	}
	if got := NewOr(a, &Lit{Val: true}); got.String() != "TRUE" {
		t.Errorf("OR with TRUE = %s", got)
	}
	if got := NewOr(a, &Lit{Val: false}, b); len(got.(*Or).Fs) != 2 {
		t.Errorf("FALSE not dropped from OR: %s", got)
	}
	// Flattening.
	nested := NewAnd(NewAnd(a, b), a)
	if len(nested.(*And).Fs) != 3 {
		t.Errorf("nested AND not flattened: %s", nested)
	}
}

func TestPrinting(t *testing.T) {
	sel := paperSelection()
	s := sel.String()
	for _, want := range []string{
		"[<e.ename> OF EACH e IN employees:",
		"e.estatus = professor",
		"ALL p IN papers",
		"SOME c IN courses",
		"SOME t IN timetable",
		"p.pyear <> 1977",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("selection printout missing %q in:\n%s", want, s)
		}
	}
	// Precedence: OR inside AND gets parenthesized.
	or := NewOr(
		&Cmp{L: Field{"e", "enr"}, Op: value.OpEq, R: Const{value.Int(1)}},
		&Cmp{L: Field{"e", "enr"}, Op: value.OpEq, R: Const{value.Int(2)}},
	)
	and := NewAnd(&Cmp{L: Field{"e", "enr"}, Op: value.OpGt, R: Const{value.Int(0)}}, or)
	if got := and.String(); !strings.Contains(got, "(e.enr = 1 OR e.enr = 2)") {
		t.Errorf("OR not parenthesized inside AND: %s", got)
	}
	not := &Not{F: or}
	if got := not.String(); !strings.HasPrefix(got, "NOT (") {
		t.Errorf("NOT of OR not parenthesized: %s", got)
	}
	// Extended range printing.
	r := &RangeExpr{Rel: "courses", FilterVar: "c",
		Filter: &Cmp{L: Field{"c", "clevel"}, Op: value.OpLe, R: Const{value.Enum("leveltype", 1)}}}
	if got := r.String(); !strings.HasPrefix(got, "[EACH c IN courses:") {
		t.Errorf("extended range printout: %s", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	sel := paperSelection()
	cp := CloneSelection(sel)
	if cp.String() != sel.String() {
		t.Fatalf("clone differs:\n%s\n%s", cp, sel)
	}
	// Mutate the clone; original must not change.
	cp.Pred.(*And).Fs[0] = &Lit{Val: false}
	if cp.String() == sel.String() {
		t.Errorf("clone shares structure with original")
	}
}

func TestVarsOfCmp(t *testing.T) {
	dy := &Cmp{L: Field{"e", "enr"}, Op: value.OpEq, R: Field{"t", "tenr"}}
	if v1, v2, ok := Dyadic(dy); !ok || v1 != "e" || v2 != "t" {
		t.Errorf("Dyadic = %s,%s,%v", v1, v2, ok)
	}
	if _, ok := Monadic(dy); ok {
		t.Errorf("dyadic term classified monadic")
	}
	mo := &Cmp{L: Field{"e", "enr"}, Op: value.OpNe, R: Field{"e", "enr"}}
	if v, ok := Monadic(mo); !ok || v != "e" {
		t.Errorf("Monadic(two fields same var) = %s,%v", v, ok)
	}
	co := &Cmp{L: Const{value.Int(1)}, Op: value.OpEq, R: Const{value.Int(1)}}
	if vars := VarsOfCmp(co); len(vars) != 0 {
		t.Errorf("constant term has vars %v", vars)
	}
}

func TestFreeVarsAndAllVars(t *testing.T) {
	sel := paperSelection()
	free := FreeVars(sel.Pred)
	if len(free) != 1 || free[0] != "e" {
		t.Errorf("FreeVars = %v", free)
	}
	all := AllVars(sel.Pred)
	if len(all) != 4 {
		t.Errorf("AllVars = %v", all)
	}
	if QuantCount(sel.Pred) != 3 {
		t.Errorf("QuantCount = %d", QuantCount(sel.Pred))
	}
	if !HasUniversal(sel.Pred) {
		t.Errorf("HasUniversal = false")
	}
	someOnly := &Quant{Var: "x", Range: &RangeExpr{Rel: "r"}, Body: &Lit{Val: true}}
	if HasUniversal(someOnly) {
		t.Errorf("HasUniversal on SOME = true")
	}
}

func TestFreeVarsRangeFilterIsolation(t *testing.T) {
	// The filter variable of an extended range is bound locally, not free.
	q := &Quant{Var: "c", Range: &RangeExpr{
		Rel: "courses", FilterVar: "k",
		Filter: &Cmp{L: Field{"k", "clevel"}, Op: value.OpLe, R: Const{value.Enum("leveltype", 1)}},
	}, Body: &Cmp{L: Field{"c", "cnr"}, Op: value.OpEq, R: Field{"e", "enr"}}}
	free := FreeVars(q)
	if len(free) != 1 || free[0] != "e" {
		t.Errorf("FreeVars = %v, want [e]", free)
	}
}

func TestRenameVar(t *testing.T) {
	sel := paperSelection()
	renamed := RenameVar(sel.Pred, "p", "p1")
	if strings.Contains(renamed.String(), "p.") {
		t.Errorf("rename left p behind: %s", renamed)
	}
	if !strings.Contains(renamed.String(), "ALL p1 IN papers") {
		t.Errorf("quantifier not renamed: %s", renamed)
	}
	// Original untouched.
	if !strings.Contains(sel.Pred.String(), "ALL p IN papers") {
		t.Errorf("rename mutated original")
	}
}

func TestWalkEarlyStop(t *testing.T) {
	sel := paperSelection()
	n := 0
	Walk(sel.Pred, func(Formula) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("walk visited %d nodes", n)
	}
}

func TestCheckResolvesLabelsAndTypes(t *testing.T) {
	cat := testCatalog(t)
	sel := paperSelection()
	checked, info, err := Check(sel, cat)
	if err != nil {
		t.Fatal(err)
	}
	// Labels resolved to enum constants.
	if strings.Contains(checked.String(), "professor") {
		t.Errorf("label not resolved: %s", checked)
	}
	if !strings.Contains(checked.String(), "statustype#3") {
		t.Errorf("professor should resolve to statustype#3: %s", checked)
	}
	// Scope info.
	if info.VarRel["e"].Name != "employees" || info.VarRel["t"].Name != "timetable" {
		t.Errorf("VarRel = %v", info.VarRel)
	}
	// Result schema: single ename column, key on it.
	if len(info.Result.Cols) != 1 || info.Result.Cols[0].Name != "ename" {
		t.Errorf("result schema = %v", info.Result)
	}
	// Original selection unmodified (labels still there).
	if !strings.Contains(sel.String(), "professor") {
		t.Errorf("Check mutated input")
	}
}

func TestCheckErrors(t *testing.T) {
	cat := testCatalog(t)
	base := func() *Selection { return paperSelection() }

	cases := []struct {
		name   string
		mutate func(*Selection)
		want   string
	}{
		{"no projection", func(s *Selection) { s.Proj = nil }, "no component selection"},
		{"no free vars", func(s *Selection) { s.Free = nil }, "no free variables"},
		{"unknown relation", func(s *Selection) { s.Free[0].Range.Rel = "nobody" }, "unknown range relation"},
		{"unknown column", func(s *Selection) { s.Proj[0].Col = "nope" }, "no component"},
		{"project quantified var", func(s *Selection) { s.Proj[0].Var = "p" }, "not a free variable"},
		{"type mismatch", func(s *Selection) {
			s.Pred = &Cmp{L: Field{"e", "enr"}, Op: value.OpEq, R: Field{"e", "ename"}}
		}, "compares"},
		{"label against string field", func(s *Selection) {
			s.Pred = &Cmp{L: Field{"e", "ename"}, Op: value.OpEq, R: Label{"professor"}}
		}, "compares"},
		{"label not in enum type", func(s *Selection) {
			s.Pred = &Cmp{L: Field{"e", "estatus"}, Op: value.OpEq, R: Label{"sophomore"}}
		}, "not a label"},
		{"unknown bare label", func(s *Selection) {
			s.Pred = &Cmp{L: Label{"ghost"}, Op: value.OpEq, R: Label{"phantom"}}
		}, "cannot resolve"},
		{"out of scope", func(s *Selection) {
			s.Pred = &Cmp{L: Field{"z", "enr"}, Op: value.OpEq, R: Const{value.Int(1)}}
		}, "outside its scope"},
		{"shadowing", func(s *Selection) {
			s.Pred = &Quant{Var: "e", Range: &RangeExpr{Rel: "papers"}, Body: &Lit{Val: true}}
		}, "declared twice"},
		{"enum cross-type", func(s *Selection) {
			s.Pred = &Cmp{L: Field{"e", "estatus"}, Op: value.OpEq, R: Const{value.Enum("leveltype", 0)}}
		}, "compares"},
	}
	for _, tc := range cases {
		sel := base()
		tc.mutate(sel)
		_, _, err := Check(sel, cat)
		if err == nil {
			t.Errorf("%s: no error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestCheckExtendedRange(t *testing.T) {
	cat := testCatalog(t)
	sel := &Selection{
		Proj: []Field{{Var: "c", Col: "ctitle"}},
		Free: []Decl{{Var: "c", Range: &RangeExpr{
			Rel: "courses", FilterVar: "c",
			Filter: &Cmp{L: Field{"c", "clevel"}, Op: value.OpLe, R: Label{"sophomore"}},
		}}},
	}
	checked, _, err := Check(sel, cat)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(checked.String(), "sophomore") {
		t.Errorf("range filter label not resolved: %s", checked)
	}

	// Range filters must be quantifier-free.
	bad := &Selection{
		Proj: []Field{{Var: "c", Col: "ctitle"}},
		Free: []Decl{{Var: "c", Range: &RangeExpr{
			Rel: "courses", FilterVar: "c",
			Filter: &Quant{Var: "t", Range: &RangeExpr{Rel: "timetable"}, Body: &Lit{Val: true}},
		}}},
	}
	if _, _, err := Check(bad, cat); err == nil {
		t.Errorf("quantified range filter accepted")
	}
}

func TestCheckDuplicateProjectionNaming(t *testing.T) {
	cat := testCatalog(t)
	// Two different vars, same column name: var_col naming kicks in.
	sel := &Selection{
		Proj: []Field{{Var: "a", Col: "enr"}, {Var: "b", Col: "enr"}},
		Free: []Decl{
			{Var: "a", Range: &RangeExpr{Rel: "employees"}},
			{Var: "b", Range: &RangeExpr{Rel: "employees"}},
		},
	}
	_, info, err := Check(sel, cat)
	if err != nil {
		t.Fatal(err)
	}
	if info.Result.Cols[0].Name != "a_enr" || info.Result.Cols[1].Name != "b_enr" {
		t.Errorf("result columns = %v", info.Result.Cols)
	}
}

func TestEqual(t *testing.T) {
	a := paperSelection().Pred
	b := paperSelection().Pred
	if !Equal(a, b) {
		t.Errorf("identical formulas unequal")
	}
	if Equal(a, &Lit{Val: true}) {
		t.Errorf("different formulas equal")
	}
	if !Equal(nil, nil) || Equal(a, nil) {
		t.Errorf("nil handling wrong")
	}
}
