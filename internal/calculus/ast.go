// Package calculus defines the abstract syntax of PASCAL/R selection
// expressions: well-formed formulae of an applied many-sorted first-order
// predicate calculus whose atomic formulae are join terms (comparisons
// over the operators =, <>, <, <=, >, >=), with range-coupled variables
// that are free (EACH v IN rel), existentially quantified (SOME v IN
// rel), or universally quantified (ALL v IN rel).
//
// A Selection is the paper's intensional set definition: a component
// selection (the projected fields) plus a selection expression
// constraining the free variables. Range expressions may carry a monadic
// filter, which is how strategy 3 (extended range expressions)
// represents [EACH r IN rel: S(r)].
package calculus

import (
	"pascalr/internal/value"
)

// Operand is one side of a join term.
type Operand interface {
	isOperand()
	String() string
}

// Field references a component of a range-coupled variable, e.g. e.enr.
type Field struct {
	Var string
	Col string
}

// Const is a literal value.
type Const struct {
	Val value.Value
}

// Label is an identifier the parser could not resolve locally — an
// enumeration label such as professor. Check resolves Labels to Consts
// using the types of the surrounding comparison.
type Label struct {
	Name string
}

func (Field) isOperand() {}
func (Const) isOperand() {}
func (Label) isOperand() {}

func (f Field) String() string { return f.Var + "." + f.Col }
func (c Const) String() string { return c.Val.String() }
func (l Label) String() string { return l.Name }

// Formula is a well-formed formula of the calculus.
type Formula interface {
	isFormula()
	String() string
}

// Cmp is a join term: a comparison between two operands. Monadic join
// terms mention one variable (e.estatus = professor); dyadic join terms
// mention two (e.enr = t.tenr).
type Cmp struct {
	L  Operand
	Op value.CmpOp
	R  Operand
}

// Not negates a formula.
type Not struct {
	F Formula
}

// And is an n-ary conjunction.
type And struct {
	Fs []Formula
}

// Or is an n-ary disjunction.
type Or struct {
	Fs []Formula
}

// Lit is a boolean constant formula (TRUE or FALSE). The runtime
// empty-range adaptation of Lemma 1 introduces these.
type Lit struct {
	Val bool
}

// Quant is a range-coupled quantifier: SOME v IN range (body) or
// ALL v IN range (body).
type Quant struct {
	All   bool
	Var   string
	Range *RangeExpr
	Body  Formula
}

func (*Cmp) isFormula()   {}
func (*Not) isFormula()   {}
func (*And) isFormula()   {}
func (*Or) isFormula()    {}
func (*Lit) isFormula()   {}
func (*Quant) isFormula() {}

// RangeExpr is what a variable ranges over: a database relation,
// optionally restricted by a monadic filter over FilterVar — the
// extended range expression of strategy 3,
// [EACH FilterVar IN Rel: Filter].
type RangeExpr struct {
	Rel       string
	FilterVar string  // name the filter formula uses; "" when Filter is nil
	Filter    Formula // monadic over FilterVar, or nil
}

// Extended reports whether the range carries a filter.
func (r *RangeExpr) Extended() bool { return r != nil && r.Filter != nil }

// Decl couples a free variable to its range: EACH Var IN Range.
type Decl struct {
	Var   string
	Range *RangeExpr
}

// Selection is a complete PASCAL/R selection:
// [<proj...> OF EACH v1 IN r1, ... : pred].
type Selection struct {
	Proj []Field
	Free []Decl
	Pred Formula // nil means TRUE
}

// NewAnd builds a conjunction, flattening nested Ands and dropping
// redundant TRUE literals. It returns TRUE for an empty conjunction and
// the sole conjunct when only one remains.
func NewAnd(fs ...Formula) Formula {
	flat := make([]Formula, 0, len(fs))
	for _, f := range fs {
		switch g := f.(type) {
		case *And:
			flat = append(flat, g.Fs...)
		case *Lit:
			if !g.Val {
				return &Lit{Val: false}
			}
			// drop TRUE
		default:
			flat = append(flat, f)
		}
	}
	switch len(flat) {
	case 0:
		return &Lit{Val: true}
	case 1:
		return flat[0]
	default:
		return &And{Fs: flat}
	}
}

// NewOr builds a disjunction, flattening nested Ors and dropping
// redundant FALSE literals. It returns FALSE for an empty disjunction and
// the sole disjunct when only one remains.
func NewOr(fs ...Formula) Formula {
	flat := make([]Formula, 0, len(fs))
	for _, f := range fs {
		switch g := f.(type) {
		case *Or:
			flat = append(flat, g.Fs...)
		case *Lit:
			if g.Val {
				return &Lit{Val: true}
			}
			// drop FALSE
		default:
			flat = append(flat, f)
		}
	}
	switch len(flat) {
	case 0:
		return &Lit{Val: false}
	case 1:
		return flat[0]
	default:
		return &Or{Fs: flat}
	}
}

// Clone returns a deep copy of the formula.
func Clone(f Formula) Formula {
	switch g := f.(type) {
	case nil:
		return nil
	case *Cmp:
		return &Cmp{L: g.L, Op: g.Op, R: g.R}
	case *Not:
		return &Not{F: Clone(g.F)}
	case *And:
		fs := make([]Formula, len(g.Fs))
		for i, sub := range g.Fs {
			fs[i] = Clone(sub)
		}
		return &And{Fs: fs}
	case *Or:
		fs := make([]Formula, len(g.Fs))
		for i, sub := range g.Fs {
			fs[i] = Clone(sub)
		}
		return &Or{Fs: fs}
	case *Lit:
		return &Lit{Val: g.Val}
	case *Quant:
		return &Quant{All: g.All, Var: g.Var, Range: CloneRange(g.Range), Body: Clone(g.Body)}
	default:
		panic("calculus: Clone of unknown formula")
	}
}

// CloneRange returns a deep copy of a range expression.
func CloneRange(r *RangeExpr) *RangeExpr {
	if r == nil {
		return nil
	}
	return &RangeExpr{Rel: r.Rel, FilterVar: r.FilterVar, Filter: Clone(r.Filter)}
}

// CloneSelection returns a deep copy of a selection.
func CloneSelection(s *Selection) *Selection {
	cp := &Selection{Proj: append([]Field(nil), s.Proj...), Pred: Clone(s.Pred)}
	for _, d := range s.Free {
		cp.Free = append(cp.Free, Decl{Var: d.Var, Range: CloneRange(d.Range)})
	}
	return cp
}
