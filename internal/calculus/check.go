package calculus

import (
	"fmt"

	"pascalr/internal/schema"
	"pascalr/internal/value"
)

// Info carries the results of type-checking a selection.
type Info struct {
	// VarRel maps every range-coupled variable (free and quantified,
	// including range-filter variables) to the schema of its range
	// relation.
	VarRel map[string]*schema.RelSchema
	// Result is the schema of the relation the selection produces. All
	// components form the key: selections produce sets.
	Result *schema.RelSchema
}

// FieldType returns the component type a field reference denotes.
func (inf *Info) FieldType(f Field) (*schema.Type, error) {
	rel, ok := inf.VarRel[f.Var]
	if !ok {
		return nil, fmt.Errorf("calculus: unknown variable %s", f.Var)
	}
	col, ok := rel.Col(f.Col)
	if !ok {
		return nil, fmt.Errorf("calculus: relation %s has no component %s", rel.Name, f.Col)
	}
	return col.Type, nil
}

type checker struct {
	cat  *schema.Catalog
	info *Info
}

// Check validates a selection against a catalog and returns a resolved
// deep copy: enumeration Labels become Consts, every variable is bound
// to its relation schema, and every join term is verified to compare
// compatible types. The input selection is not modified.
//
// Checking rejects variable shadowing (two declarations of the same
// name anywhere in the selection); the normalizer relies on globally
// unique variable names.
func Check(sel *Selection, cat *schema.Catalog) (*Selection, *Info, error) {
	cp := CloneSelection(sel)
	c := &checker{cat: cat, info: &Info{VarRel: make(map[string]*schema.RelSchema)}}

	if len(cp.Proj) == 0 {
		return nil, nil, fmt.Errorf("calculus: selection has no component selection")
	}
	if len(cp.Free) == 0 {
		return nil, nil, fmt.Errorf("calculus: selection declares no free variables")
	}

	scope := map[string]bool{}
	for _, d := range cp.Free {
		if err := c.declare(d.Var, d.Range, scope); err != nil {
			return nil, nil, err
		}
	}
	// Only free variables may be projected: quantified variables are
	// eliminated by the combination phase.
	for _, p := range cp.Proj {
		if !scope[p.Var] {
			return nil, nil, fmt.Errorf("calculus: projected variable %s is not a free variable", p.Var)
		}
	}
	for i := range cp.Free {
		if err := c.checkRange(cp.Free[i].Range); err != nil {
			return nil, nil, err
		}
	}
	if cp.Pred != nil {
		pred, err := c.checkFormula(cp.Pred, scope)
		if err != nil {
			return nil, nil, err
		}
		cp.Pred = pred
	}

	result, err := c.resultSchema(cp.Proj)
	if err != nil {
		return nil, nil, err
	}
	c.info.Result = result
	return cp, c.info, nil
}

func (c *checker) declare(v string, r *RangeExpr, scope map[string]bool) error {
	if v == "" {
		return fmt.Errorf("calculus: empty variable name")
	}
	if _, dup := c.info.VarRel[v]; dup {
		return fmt.Errorf("calculus: variable %s declared twice (shadowing is not allowed)", v)
	}
	rel, ok := c.cat.Relation(r.Rel)
	if !ok {
		return fmt.Errorf("calculus: unknown range relation %s", r.Rel)
	}
	c.info.VarRel[v] = rel
	scope[v] = true
	return nil
}

// checkRange validates an extended range's filter: it must be a
// quantifier-free monadic formula over the filter variable.
func (c *checker) checkRange(r *RangeExpr) error {
	if !r.Extended() {
		return nil
	}
	if r.FilterVar == "" {
		return fmt.Errorf("calculus: extended range over %s has no filter variable", r.Rel)
	}
	rel, ok := c.cat.Relation(r.Rel)
	if !ok {
		return fmt.Errorf("calculus: unknown range relation %s", r.Rel)
	}
	hasQuant := false
	Walk(r.Filter, func(f Formula) bool {
		if _, ok := f.(*Quant); ok {
			hasQuant = true
			return false
		}
		return true
	})
	if hasQuant {
		return fmt.Errorf("calculus: range filter over %s must be quantifier-free", r.Rel)
	}
	saved, had := c.info.VarRel[r.FilterVar]
	c.info.VarRel[r.FilterVar] = rel
	filter, err := c.checkFormula(r.Filter, map[string]bool{r.FilterVar: true})
	if had {
		c.info.VarRel[r.FilterVar] = saved
	}
	// Keep filter variables in VarRel when they don't collide: the
	// engine needs their relation schemas too.
	if err != nil {
		return fmt.Errorf("calculus: range filter over %s: %w", r.Rel, err)
	}
	r.Filter = filter
	return nil
}

func (c *checker) checkFormula(f Formula, scope map[string]bool) (Formula, error) {
	switch g := f.(type) {
	case *Cmp:
		return c.checkCmp(g, scope)
	case *Not:
		sub, err := c.checkFormula(g.F, scope)
		if err != nil {
			return nil, err
		}
		return &Not{F: sub}, nil
	case *And:
		fs := make([]Formula, len(g.Fs))
		for i, sub := range g.Fs {
			cs, err := c.checkFormula(sub, scope)
			if err != nil {
				return nil, err
			}
			fs[i] = cs
		}
		return &And{Fs: fs}, nil
	case *Or:
		fs := make([]Formula, len(g.Fs))
		for i, sub := range g.Fs {
			cs, err := c.checkFormula(sub, scope)
			if err != nil {
				return nil, err
			}
			fs[i] = cs
		}
		return &Or{Fs: fs}, nil
	case *Lit:
		return &Lit{Val: g.Val}, nil
	case *Quant:
		inner := make(map[string]bool, len(scope)+1)
		for k := range scope {
			inner[k] = true
		}
		if err := c.declare(g.Var, g.Range, inner); err != nil {
			return nil, err
		}
		if err := c.checkRange(g.Range); err != nil {
			return nil, err
		}
		body, err := c.checkFormula(g.Body, inner)
		if err != nil {
			return nil, err
		}
		return &Quant{All: g.All, Var: g.Var, Range: CloneRange(g.Range), Body: body}, nil
	default:
		return nil, fmt.Errorf("calculus: unknown formula node %T", f)
	}
}

func (c *checker) checkCmp(g *Cmp, scope map[string]bool) (Formula, error) {
	l, lt, err := c.checkOperand(g.L, scope)
	if err != nil {
		return nil, err
	}
	r, rt, err := c.checkOperand(g.R, scope)
	if err != nil {
		return nil, err
	}
	// Resolve labels against the opposite side's type.
	if lbl, ok := l.(Label); ok {
		l, lt, err = c.resolveLabel(lbl, rt)
		if err != nil {
			return nil, err
		}
	}
	if lbl, ok := r.(Label); ok {
		r, rt, err = c.resolveLabel(lbl, lt)
		if err != nil {
			return nil, err
		}
	}
	if lt == nil || rt == nil {
		return nil, fmt.Errorf("calculus: cannot infer types in join term %s", g)
	}
	if !lt.Comparable(rt) {
		return nil, fmt.Errorf("calculus: join term %s compares %s with %s", g, lt, rt)
	}
	return &Cmp{L: l, Op: g.Op, R: r}, nil
}

// checkOperand returns the (possibly unresolved) operand and its type;
// Labels return a nil type to be filled in by resolveLabel.
func (c *checker) checkOperand(o Operand, scope map[string]bool) (Operand, *schema.Type, error) {
	switch op := o.(type) {
	case Field:
		if !scope[op.Var] {
			return nil, nil, fmt.Errorf("calculus: variable %s used outside its scope", op.Var)
		}
		t, err := c.info.FieldType(op)
		if err != nil {
			return nil, nil, err
		}
		return op, t, nil
	case Const:
		return op, typeOfConst(op.Val), nil
	case Label:
		return op, nil, nil
	default:
		return nil, nil, fmt.Errorf("calculus: unknown operand %T", o)
	}
}

func (c *checker) resolveLabel(lbl Label, other *schema.Type) (Operand, *schema.Type, error) {
	if other != nil && other.Kind == schema.TEnum {
		ord, ok := other.Ordinal(lbl.Name)
		if !ok {
			return nil, nil, fmt.Errorf("calculus: %s is not a label of enumeration %s", lbl.Name, other.Name)
		}
		return Const{Val: value.Enum(other.Name, ord)}, other, nil
	}
	v, t, ok := c.cat.EnumValue(lbl.Name)
	if !ok {
		return nil, nil, fmt.Errorf("calculus: cannot resolve identifier %s to an enumeration label", lbl.Name)
	}
	return Const{Val: v}, t, nil
}

// typeOfConst synthesizes an anonymous type describing a literal, wide
// enough to compare against any component of the same kind.
func typeOfConst(v value.Value) *schema.Type {
	switch v.Kind() {
	case value.KindInt:
		return schema.IntType("", v.AsInt(), v.AsInt())
	case value.KindString:
		return schema.StringType("", len(v.AsString()))
	case value.KindBool:
		return schema.BoolType()
	case value.KindEnum:
		// A synthetic enum type that carries only the name; Comparable
		// checks names, so this suffices.
		return &schema.Type{Kind: schema.TEnum, Name: v.EnumType()}
	default:
		return nil
	}
}

func (c *checker) resultSchema(proj []Field) (*schema.RelSchema, error) {
	// Column naming: the component name when unique across the
	// projection, otherwise var_col.
	colCount := map[string]int{}
	for _, p := range proj {
		colCount[p.Col]++
	}
	cols := make([]schema.Column, 0, len(proj))
	key := make([]string, 0, len(proj))
	seen := map[string]bool{}
	for _, p := range proj {
		t, err := c.info.FieldType(p)
		if err != nil {
			return nil, err
		}
		name := p.Col
		if colCount[p.Col] > 1 {
			name = p.Var + "_" + p.Col
		}
		if seen[name] {
			return nil, fmt.Errorf("calculus: duplicate projected component %s", name)
		}
		seen[name] = true
		cols = append(cols, schema.Column{Name: name, Type: t})
		key = append(key, name)
	}
	return schema.NewRelSchema("result", cols, key)
}
