package obslint

import (
	"bufio"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"pascalr/internal/obs"

	// Importing the instrumented layers populates the metrics registry
	// with every package-level registration, so the lint below sees the
	// full production namespace.
	_ "pascalr"
	_ "pascalr/internal/engine"
	_ "pascalr/internal/relation"
	_ "pascalr/internal/sched"
	_ "pascalr/internal/server"
	_ "pascalr/internal/storage"
)

// nameRe is the metric naming convention: pascal_{layer}_{name}_{unit}.
var nameRe = regexp.MustCompile(`^pascal_(engine|sched|storage|server)_[a-z][a-z0-9_]*_(total|seconds|bytes|count|rows|info)$`)

// TestMetricNames: every registered metric follows the naming
// convention and appears in ARCHITECTURE.md's metrics documentation.
func TestMetricNames(t *testing.T) {
	names := obs.Names()
	if len(names) < 20 {
		t.Fatalf("registry holds only %d metrics; the instrumented layers did not register", len(names))
	}
	doc, err := os.ReadFile("../../ARCHITECTURE.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		if !nameRe.MatchString(name) {
			t.Errorf("metric %q violates the pascal_{layer}_{name}_{unit} convention", name)
		}
		if !strings.Contains(string(doc), name) {
			t.Errorf("metric %q is not documented in ARCHITECTURE.md", name)
		}
	}
}

// TestPrometheusExposition exercises the full registry end to end: it
// touches one metric of each kind, renders the exposition, and parses
// every line — HELP/TYPE headers preceding their series, cumulative
// non-decreasing histogram buckets ending at +Inf with a matching
// _count, and numeric sample values throughout.
func TestPrometheusExposition(t *testing.T) {
	obs.GetCounter("pascal_server_frames_total", "").Inc()
	obs.GetHistogram("pascal_storage_checkpoint_seconds", "").Observe(time.Millisecond)
	obs.GetInfo("pascal_server_last_trace_info", "").SetLabels(obs.Attr{Key: "trace_id", Value: "0b5e1111"})

	var sb strings.Builder
	if err := obs.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if err := parseExposition(sb.String()); err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, sb.String())
	}
	for _, want := range []string{
		"pascal_server_frames_total",
		`pascal_storage_checkpoint_seconds_bucket{le="+Inf"}`,
		`pascal_server_last_trace_info{trace_id="0b5e1111"} 1`,
	} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("exposition missing %q", want)
		}
	}
}

var (
	helpRe   = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) .*$`)
	typeRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)
	sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$`)
)

// parseExposition validates the Prometheus text format structurally.
func parseExposition(text string) error {
	typed := map[string]string{}
	buckets := map[string][]float64{} // histogram base name -> cumulative counts in order
	counts := map[string]float64{}
	sc := bufio.NewScanner(strings.NewReader(text))
	line := 0
	for sc.Scan() {
		line++
		l := sc.Text()
		if l == "" {
			continue
		}
		if m := helpRe.FindStringSubmatch(l); m != nil {
			continue
		}
		if m := typeRe.FindStringSubmatch(l); m != nil {
			typed[m[1]] = m[2]
			continue
		}
		m := sampleRe.FindStringSubmatch(l)
		if m == nil {
			return fmt.Errorf("line %d: unparseable %q", line, l)
		}
		name, labels, valStr := m[1], m[2], m[3]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return fmt.Errorf("line %d: bad sample value %q", line, valStr)
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suffix) && typed[strings.TrimSuffix(name, suffix)] == "histogram" {
				base = strings.TrimSuffix(name, suffix)
			}
		}
		if _, ok := typed[base]; !ok {
			return fmt.Errorf("line %d: series %s has no preceding TYPE header", line, name)
		}
		if typed[base] == "histogram" {
			switch {
			case strings.HasSuffix(name, "_bucket"):
				if !strings.Contains(labels, "le=") {
					return fmt.Errorf("line %d: histogram bucket without le label", line)
				}
				buckets[base] = append(buckets[base], val)
			case strings.HasSuffix(name, "_count"):
				counts[base] = val
			}
		}
	}
	for base, cum := range buckets {
		for i := 1; i < len(cum); i++ {
			if cum[i] < cum[i-1] {
				return fmt.Errorf("histogram %s buckets are not cumulative: %v", base, cum)
			}
		}
		if len(cum) == 0 || cum[len(cum)-1] != counts[base] {
			return fmt.Errorf("histogram %s +Inf bucket %v != count %v", base, cum, counts[base])
		}
	}
	return nil
}
