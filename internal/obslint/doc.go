// Package obslint holds the observability conformance tests: every
// registered metric name matches the pascal_{layer}_{name}_{unit}
// convention and is documented in ARCHITECTURE.md, and the Prometheus
// exposition parses. It lives in its own package so its view of the
// registry is exactly what importing the instrumented layers registers,
// unpolluted by scratch metrics from other packages' tests.
package obslint
