package algebra

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"testing/quick"

	"pascalr/internal/stats"
	"pascalr/internal/value"
)

// ref is shorthand for a reference with relation id r and slot s.
func ref(r, s int) value.Value { return value.Ref(r, s, 0) }

func row(vals ...value.Value) []value.Value { return vals }

func mk(t *testing.T, vars []string, rows ...[]value.Value) *RefRel {
	t.Helper()
	r := New(vars, nil)
	for _, rw := range rows {
		r.Add(rw)
	}
	return r
}

func TestAddDedup(t *testing.T) {
	st := &stats.Counters{}
	r := New([]string{"a"}, st)
	if !r.Add(row(ref(0, 1))) {
		t.Errorf("first Add returned false")
	}
	if r.Add(row(ref(0, 1))) {
		t.Errorf("duplicate Add returned true")
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d", r.Len())
	}
	if st.RefTuples != 1 {
		t.Errorf("RefTuples = %d", st.RefTuples)
	}
	if !r.Has(row(ref(0, 1))) || r.Has(row(ref(0, 2))) {
		t.Errorf("Has wrong")
	}
}

func TestAddCopies(t *testing.T) {
	r := New([]string{"a"}, nil)
	rw := row(ref(0, 1))
	r.Add(rw)
	rw[0] = ref(0, 9)
	if !r.Has(row(ref(0, 1))) {
		t.Errorf("Add retained caller slice")
	}
}

func TestDuplicateVarsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("duplicate columns accepted")
		}
	}()
	New([]string{"a", "a"}, nil)
}

// joinT / cartesianT / semijoinT unwrap the context-taking operations
// for tests that never cancel.
func joinT(t *testing.T, a, b *RefRel) *RefRel {
	t.Helper()
	out, err := Join(context.Background(), a, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func cartesianT(t *testing.T, a, b *RefRel) *RefRel {
	t.Helper()
	out, err := Cartesian(context.Background(), a, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func semijoinT(t *testing.T, a, b *RefRel) *RefRel {
	t.Helper()
	out, err := Semijoin(context.Background(), a, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestJoinShared(t *testing.T) {
	// a(x,y): (1,10),(2,20); b(y,z): (10,100),(10,101),(30,300)
	a := mk(t, []string{"x", "y"},
		row(ref(0, 1), ref(1, 10)),
		row(ref(0, 2), ref(1, 20)))
	b := mk(t, []string{"y", "z"},
		row(ref(1, 10), ref(2, 100)),
		row(ref(1, 10), ref(2, 101)),
		row(ref(1, 30), ref(2, 300)))
	out := joinT(t, a, b)
	if !reflect.DeepEqual(out.Vars(), []string{"x", "y", "z"}) {
		t.Fatalf("vars = %v", out.Vars())
	}
	if out.Len() != 2 {
		t.Fatalf("join produced %d rows", out.Len())
	}
	for _, rw := range out.Rows() {
		if !value.Equal(rw[0], ref(0, 1)) || !value.Equal(rw[1], ref(1, 10)) {
			t.Errorf("unexpected join row %v", rw)
		}
	}
}

func TestJoinSymmetric(t *testing.T) {
	// Join must produce the same set regardless of which side is hashed
	// (i.e., of relative sizes).
	small := mk(t, []string{"x", "y"}, row(ref(0, 1), ref(1, 10)))
	big := mk(t, []string{"y", "z"},
		row(ref(1, 10), ref(2, 1)),
		row(ref(1, 10), ref(2, 2)),
		row(ref(1, 11), ref(2, 3)))
	ab := joinT(t, small, big)
	// Reverse roles: same shared var, flipped argument order. Column
	// order differs but contents on shared semantics must match.
	ba := joinT(t, big, small)
	if ab.Len() != 2 || ba.Len() != 2 {
		t.Fatalf("asymmetric join: %d vs %d", ab.Len(), ba.Len())
	}
	proj1, err := Project(context.Background(), ab, []string{"x", "y", "z"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	proj2, err := Project(context.Background(), ba, []string{"x", "y", "z"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(proj1.SortedKeys(), proj2.SortedKeys()) {
		t.Errorf("join not symmetric")
	}
}

func TestJoinNoSharedIsCartesian(t *testing.T) {
	a := mk(t, []string{"x"}, row(ref(0, 1)), row(ref(0, 2)))
	b := mk(t, []string{"y"}, row(ref(1, 1)), row(ref(1, 2)), row(ref(1, 3)))
	out := joinT(t, a, b)
	if out.Len() != 6 {
		t.Errorf("cartesian size = %d", out.Len())
	}
	cart := cartesianT(t, a, b)
	if !reflect.DeepEqual(cart.SortedKeys(), out.SortedKeys()) {
		t.Errorf("Cartesian differs from Join")
	}
}

func TestCartesianPanicsOnShared(t *testing.T) {
	a := mk(t, []string{"x"}, row(ref(0, 1)))
	b := mk(t, []string{"x"}, row(ref(0, 1)))
	defer func() {
		if recover() == nil {
			t.Errorf("Cartesian with shared vars accepted")
		}
	}()
	Cartesian(context.Background(), a, b, nil)
}

func TestUnion(t *testing.T) {
	a := mk(t, []string{"x", "y"}, row(ref(0, 1), ref(1, 1)))
	// Same variables in different column order.
	b := mk(t, []string{"y", "x"},
		row(ref(1, 1), ref(0, 1)), // same tuple as a's, permuted
		row(ref(1, 2), ref(0, 2)))
	out, err := Union(context.Background(), a, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Errorf("union size = %d, want 2 (duplicate must collapse)", out.Len())
	}
	// Mismatched vars error.
	c := mk(t, []string{"z"}, row(ref(2, 1)))
	if _, err := Union(context.Background(), a, c, nil); err == nil {
		t.Errorf("union with mismatched vars accepted")
	}
	d := mk(t, []string{"x", "z"}, row(ref(0, 1), ref(2, 1)))
	if _, err := Union(context.Background(), a, d, nil); err == nil {
		t.Errorf("union with differing var sets accepted")
	}
}

func TestProject(t *testing.T) {
	a := mk(t, []string{"x", "y"},
		row(ref(0, 1), ref(1, 1)),
		row(ref(0, 1), ref(1, 2)),
		row(ref(0, 2), ref(1, 3)))
	out, err := Project(context.Background(), a, []string{"x"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Errorf("projection size = %d", out.Len())
	}
	if _, err := Project(context.Background(), a, []string{"zz"}, nil); err == nil {
		t.Errorf("projection on absent var accepted")
	}
}

func TestDivide(t *testing.T) {
	// a(x,p): x1 paired with p1,p2; x2 with p1 only.
	a := mk(t, []string{"x", "p"},
		row(ref(0, 1), ref(1, 1)),
		row(ref(0, 1), ref(1, 2)),
		row(ref(0, 2), ref(1, 1)))
	divisor := []value.Value{ref(1, 1), ref(1, 2)}
	out, err := Divide(context.Background(), a, "p", divisor, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 || !value.Equal(out.Rows()[0][0], ref(0, 1)) {
		t.Errorf("division = %v", out.Rows())
	}
	// Duplicate divisor entries must not double-count.
	out, err = Divide(context.Background(), a, "p", []value.Value{ref(1, 1), ref(1, 1)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Errorf("division with dup divisor = %d rows, want 2", out.Len())
	}
	// Empty divisor degrades to projection (documented behaviour).
	out, err = Divide(context.Background(), a, "p", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Errorf("division by empty = %d rows", out.Len())
	}
	// Absent variable errors.
	if _, err := Divide(context.Background(), a, "zz", divisor, nil); err == nil {
		t.Errorf("division on absent var accepted")
	}
}

func TestDivideMultiColumnRest(t *testing.T) {
	// Division grouping over two remaining columns.
	a := mk(t, []string{"x", "y", "p"},
		row(ref(0, 1), ref(3, 1), ref(1, 1)),
		row(ref(0, 1), ref(3, 1), ref(1, 2)),
		row(ref(0, 1), ref(3, 2), ref(1, 1)))
	out, err := Divide(context.Background(), a, "p", []value.Value{ref(1, 1), ref(1, 2)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 {
		t.Fatalf("division = %d rows", out.Len())
	}
	rw := out.Rows()[0]
	if !value.Equal(rw[0], ref(0, 1)) || !value.Equal(rw[1], ref(3, 1)) {
		t.Errorf("division row = %v", rw)
	}
}

func TestSemijoin(t *testing.T) {
	a := mk(t, []string{"x", "y"},
		row(ref(0, 1), ref(1, 1)),
		row(ref(0, 2), ref(1, 2)))
	b := mk(t, []string{"y"}, row(ref(1, 1)))
	out := semijoinT(t, a, b)
	if out.Len() != 1 || !value.Equal(out.Rows()[0][0], ref(0, 1)) {
		t.Errorf("semijoin = %v", out.Rows())
	}
	// No shared vars: b non-empty keeps everything; empty drops all.
	c := mk(t, []string{"z"}, row(ref(2, 1)))
	if semijoinT(t, a, c).Len() != 2 {
		t.Errorf("semijoin with disjoint non-empty b should keep all")
	}
	empty := New([]string{"z"}, nil)
	if semijoinT(t, a, empty).Len() != 0 {
		t.Errorf("semijoin with disjoint empty b should drop all")
	}
}

func TestFromRefsAndPairs(t *testing.T) {
	refs := []value.Value{ref(0, 1), ref(0, 2), ref(0, 1)}
	r := FromRefs("x", refs, nil)
	if r.Len() != 2 {
		t.Errorf("FromRefs = %d", r.Len())
	}
	pairs := [][2]value.Value{{ref(0, 1), ref(1, 1)}, {ref(0, 1), ref(1, 1)}}
	p := FromPairs("x", "y", pairs, nil)
	if p.Len() != 1 {
		t.Errorf("FromPairs = %d", p.Len())
	}
}

// Property: division is the inverse of Cartesian product — (A × D) ÷ D
// = A for non-empty D.
func TestDivideInvertsCartesian(t *testing.T) {
	f := func(aSlots, dSlots []uint8) bool {
		if len(dSlots) == 0 {
			return true
		}
		a := New([]string{"x"}, nil)
		for _, s := range aSlots {
			a.Add(row(ref(0, int(s))))
		}
		var divisor []value.Value
		d := New([]string{"p"}, nil)
		for _, s := range dSlots {
			r := ref(1, int(s))
			divisor = append(divisor, r)
			d.Add(row(r))
		}
		prod := cartesianT(t, a, d)
		q, err := Divide(context.Background(), prod, "p", divisor, nil)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(q.SortedKeys(), a.SortedKeys())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestDistinctOnAndEstimateJoinSize(t *testing.T) {
	a := New([]string{"x", "s"}, nil)
	for i := 0; i < 12; i++ {
		a.Add(row(ref(0, i), ref(9, i%3))) // 3 distinct s values
	}
	b := New([]string{"s", "y"}, nil)
	for i := 0; i < 6; i++ {
		b.Add(row(ref(9, i%2), ref(1, i))) // 2 distinct s values
	}
	if d := a.DistinctOn([]string{"s"}); d != 3 {
		t.Errorf("DistinctOn(a.s) = %d, want 3", d)
	}
	if d := a.DistinctOn([]string{"nope"}); d != 0 {
		t.Errorf("DistinctOn(absent) = %d, want 0", d)
	}
	est, shared := EstimateJoinSize(a, b)
	if !shared {
		t.Fatal("EstimateJoinSize missed the shared variable")
	}
	// |a|*|b|/max(3,2) = 12*6/3 = 24.
	if est != 24 {
		t.Errorf("estimated join size = %v, want 24", est)
	}
	c := New([]string{"z"}, nil)
	c.Add(row(ref(2, 0)))
	est, shared = EstimateJoinSize(a, c)
	if shared || est != 12 {
		t.Errorf("disjoint estimate = (%v, %v), want (12, false)", est, shared)
	}
}

// Property: Join is the subset of the Cartesian product that agrees on
// the shared column.
func TestJoinSubsetOfCartesian(t *testing.T) {
	f := func(av, bv []uint8) bool {
		a := New([]string{"x", "s"}, nil)
		for i, s := range av {
			a.Add(row(ref(0, i), ref(9, int(s%4))))
		}
		b := New([]string{"s", "y"}, nil)
		for i, s := range bv {
			b.Add(row(ref(9, int(s%4)), ref(1, i)))
		}
		j := joinT(t, a, b)
		// Verify each joined row agrees and count against the naive loop.
		n := 0
		for _, ra := range a.Rows() {
			for _, rb := range b.Rows() {
				if value.Equal(ra[1], rb[0]) {
					n++
				}
			}
		}
		return j.Len() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestJoinCancellation: a cancelled context must abort a large product
// mid-materialization with ctx.Err().
func TestJoinCancellation(t *testing.T) {
	rows := make([][]value.Value, 0, 3000)
	for i := 0; i < 3000; i++ {
		rows = append(rows, row(ref(0, i)))
	}
	a := mk(t, []string{"x"}, rows...)
	brows := make([][]value.Value, 0, 3000)
	for i := 0; i < 3000; i++ {
		brows = append(brows, row(ref(1, i)))
	}
	b := mk(t, []string{"y"}, brows...)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Join(ctx, a, b, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled cartesian join: got %v, want context.Canceled", err)
	}
}
