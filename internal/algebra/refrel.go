// Package algebra implements the combination phase's data structure and
// operations: reference relations — relations whose components are
// references to database elements, one column per calculus variable —
// and the relational operations the paper evaluates logical operators
// and quantifiers with: join and Cartesian product for conjunctions,
// union for the disjunction, projection for existential quantifiers,
// and division for universal quantifiers.
package algebra

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"pascalr/internal/stats"
	"pascalr/internal/value"
)

// cancelCheckInterval is how many row operations pass between context
// checks inside the set operations; combination-phase loops over large
// intermediate results stay responsive to cancellation.
const cancelCheckInterval = 4096

// ticker checks a context every cancelCheckInterval ticks.
type ticker struct {
	ctx context.Context
	n   int
}

func (t *ticker) tick() error {
	if t.n++; t.n%cancelCheckInterval == 0 {
		return t.ctx.Err()
	}
	return nil
}

// RefRel is a set of tuples of references, with one named column per
// selection-expression variable.
type RefRel struct {
	vars   []string
	varIdx map[string]int
	rows   [][]value.Value
	set    map[string]struct{}
	st     *stats.Counters

	// distinctCache memoizes DistinctOn per column set; invalidated on
	// Add. Join-size estimation queries the same pieces repeatedly.
	distinctCache map[string]int
}

// New creates an empty reference relation with the given variable
// columns. Tuples added through Add are counted against st.
func New(vars []string, st *stats.Counters) *RefRel {
	r := &RefRel{
		vars:   append([]string(nil), vars...),
		varIdx: make(map[string]int, len(vars)),
		set:    make(map[string]struct{}),
		st:     st,
	}
	for i, v := range vars {
		if _, dup := r.varIdx[v]; dup {
			panic(fmt.Sprintf("algebra: duplicate variable column %s", v))
		}
		r.varIdx[v] = i
	}
	return r
}

// Vars returns the column variables in order.
func (r *RefRel) Vars() []string { return r.vars }

// Len returns the number of tuples.
func (r *RefRel) Len() int { return len(r.rows) }

// Rows returns the underlying tuples; callers must not modify them.
func (r *RefRel) Rows() [][]value.Value { return r.rows }

// ColIdx returns the column position of a variable.
func (r *RefRel) ColIdx(v string) (int, bool) {
	i, ok := r.varIdx[v]
	return i, ok
}

// Add inserts a tuple (copied) unless an identical tuple is present; it
// reports whether the tuple was new.
func (r *RefRel) Add(row []value.Value) bool {
	if len(row) != len(r.vars) {
		panic(fmt.Sprintf("algebra: arity mismatch: row %d vs vars %d", len(row), len(r.vars)))
	}
	k := value.EncodeKey(row)
	if _, dup := r.set[k]; dup {
		return false
	}
	r.set[k] = struct{}{}
	cp := make([]value.Value, len(row))
	copy(cp, row)
	r.rows = append(r.rows, cp)
	r.distinctCache = nil
	r.st.CountRefTuples(1, len(r.rows))
	return true
}

// Has reports whether an identical tuple is present.
func (r *RefRel) Has(row []value.Value) bool {
	_, ok := r.set[value.EncodeKey(row)]
	return ok
}

// String renders a summary for EXPLAIN and debugging.
func (r *RefRel) String() string {
	return fmt.Sprintf("refrel(%s)[%d]", strings.Join(r.vars, ","), len(r.rows))
}

// keyAt encodes the values of a row at the given column indexes.
func keyAt(row []value.Value, idx []int) string {
	dst := make([]byte, 0, 16*len(idx))
	for _, i := range idx {
		dst = value.AppendKey(dst, row[i])
	}
	return string(dst)
}

// keyAtBuf is keyAt into a reused buffer: probe loops encode one key
// per row, and map lookups via string(buf) do not allocate, so probing
// stays allocation-free regardless of the probe side's size.
func keyAtBuf(dst []byte, row []value.Value, idx []int) []byte {
	dst = dst[:0]
	for _, i := range idx {
		dst = value.AppendKey(dst, row[i])
	}
	return dst
}

// shared returns the variables common to a and b, with their column
// indexes in each, in a's column order.
func shared(a, b *RefRel) (vars []string, ai, bi []int) {
	for i, v := range a.vars {
		if j, ok := b.varIdx[v]; ok {
			vars = append(vars, v)
			ai = append(ai, i)
			bi = append(bi, j)
		}
	}
	return
}

// Join computes the natural join of a and b on their shared variables.
// With no shared variables it degenerates to the Cartesian product,
// which is exactly the standard algorithm's behaviour for conjunctions
// that do not link all variables. The context is checked periodically —
// a runaway product aborts with ctx.Err() instead of materializing.
func Join(ctx context.Context, a, b *RefRel, st *stats.Counters) (*RefRel, error) {
	tk := ticker{ctx: ctx}
	sv, ai, bi := shared(a, b)
	outVars := append([]string(nil), a.vars...)
	for _, v := range b.vars {
		if _, dup := a.varIdx[v]; !dup {
			outVars = append(outVars, v)
		}
	}
	out := New(outVars, st)
	if len(sv) == 0 {
		st.CountCartesianJoin()
		for _, ra := range a.rows {
			for _, rb := range b.rows {
				if err := tk.tick(); err != nil {
					return nil, err
				}
				out.Add(concatRows(ra, rb, b, nil))
			}
		}
		return out, nil
	}
	st.CountHashJoin()
	// Hash the smaller side on the shared key, probe with the larger.
	build, probe := a, b
	bIdx, pIdx := ai, bi
	buildIsA := true
	if b.Len() < a.Len() {
		build, probe = b, a
		bIdx, pIdx = bi, ai
		buildIsA = false
	}
	ht := make(map[string][]int, build.Len())
	kbuf := make([]byte, 0, 16*len(bIdx))
	for i, row := range build.rows {
		if err := tk.tick(); err != nil {
			return nil, err
		}
		kbuf = keyAtBuf(kbuf, row, bIdx)
		ht[string(kbuf)] = append(ht[string(kbuf)], i)
	}
	for _, prow := range probe.rows {
		st.CountProbes(1)
		if err := tk.tick(); err != nil {
			return nil, err
		}
		kbuf = keyAtBuf(kbuf, prow, pIdx)
		for _, i := range ht[string(kbuf)] {
			if err := tk.tick(); err != nil {
				return nil, err
			}
			brow := build.rows[i]
			var arow, brow2 []value.Value
			if buildIsA {
				arow, brow2 = brow, prow
			} else {
				arow, brow2 = prow, brow
			}
			out.Add(concatRows(arow, brow2, b, a))
		}
	}
	return out, nil
}

// concatRows builds an output row: all of a's columns, then b's columns
// that a does not have. aRel may be nil when no columns are shared.
func concatRows(arow, brow []value.Value, bRel, aRel *RefRel) []value.Value {
	out := make([]value.Value, 0, len(arow)+len(brow))
	out = append(out, arow...)
	for j, v := range bRel.vars {
		if aRel != nil {
			if _, dup := aRel.varIdx[v]; dup {
				continue
			}
		}
		out = append(out, brow[j])
	}
	return out
}

// Cartesian computes the Cartesian product of a and b, which must share
// no variables.
func Cartesian(ctx context.Context, a, b *RefRel, st *stats.Counters) (*RefRel, error) {
	if sv, _, _ := shared(a, b); len(sv) != 0 {
		panic(fmt.Sprintf("algebra: Cartesian with shared variables %v", sv))
	}
	return Join(ctx, a, b, st)
}

// Union computes a ∪ b; both must have the same variable set (column
// order may differ; b's rows are permuted to a's order).
func Union(ctx context.Context, a, b *RefRel, st *stats.Counters) (*RefRel, error) {
	if len(a.vars) != len(b.vars) {
		return nil, fmt.Errorf("algebra: union arity mismatch (%v vs %v)", a.vars, b.vars)
	}
	perm := make([]int, len(a.vars))
	for i, v := range a.vars {
		j, ok := b.varIdx[v]
		if !ok {
			return nil, fmt.Errorf("algebra: union variable mismatch: %s missing (%v vs %v)", v, a.vars, b.vars)
		}
		perm[i] = j
	}
	tk := ticker{ctx: ctx}
	out := New(a.vars, st)
	for _, row := range a.rows {
		if err := tk.tick(); err != nil {
			return nil, err
		}
		out.Add(row)
	}
	tmp := make([]value.Value, len(a.vars))
	for _, row := range b.rows {
		if err := tk.tick(); err != nil {
			return nil, err
		}
		for i, j := range perm {
			tmp[i] = row[j]
		}
		out.Add(tmp)
	}
	return out, nil
}

// Project keeps only the named variables (existential quantifier
// elimination), deduplicating the result.
func Project(ctx context.Context, a *RefRel, keep []string, st *stats.Counters) (*RefRel, error) {
	idx := make([]int, len(keep))
	for i, v := range keep {
		j, ok := a.varIdx[v]
		if !ok {
			return nil, fmt.Errorf("algebra: project on absent variable %s", v)
		}
		idx[i] = j
	}
	tk := ticker{ctx: ctx}
	out := New(keep, st)
	tmp := make([]value.Value, len(keep))
	for _, row := range a.rows {
		if err := tk.tick(); err != nil {
			return nil, err
		}
		for i, j := range idx {
			tmp[i] = row[j]
		}
		out.Add(tmp)
	}
	return out, nil
}

// Divide implements relational division for universal quantification:
// it returns the tuples t over a's variables minus v such that for
// every reference d in divisor, t extended with d is present in a.
//
// An empty divisor yields the projection of a onto the remaining
// variables; callers evaluating ALL over a possibly-empty range must
// fold that case out beforehand (Lemma 1), because the correct answer
// there is "all bindings", not "all bindings present in a".
func Divide(ctx context.Context, a *RefRel, v string, divisor []value.Value, st *stats.Counters) (*RefRel, error) {
	vi, ok := a.varIdx[v]
	if !ok {
		return nil, fmt.Errorf("algebra: divide on absent variable %s", v)
	}
	restVars := make([]string, 0, len(a.vars)-1)
	restIdx := make([]int, 0, len(a.vars)-1)
	for i, av := range a.vars {
		if i != vi {
			restVars = append(restVars, av)
			restIdx = append(restIdx, i)
		}
	}
	// Deduplicate the divisor.
	divSet := make(map[string]struct{}, len(divisor))
	for _, d := range divisor {
		divSet[value.EncodeKey([]value.Value{d})] = struct{}{}
	}
	need := len(divSet)

	// Group rows by the remaining variables and count distinct divisor
	// members seen per group.
	type group struct {
		row  []value.Value
		seen map[string]struct{}
	}
	tk := ticker{ctx: ctx}
	groups := make(map[string]*group)
	order := make([]string, 0)
	for _, row := range a.rows {
		if err := tk.tick(); err != nil {
			return nil, err
		}
		gk := keyAt(row, restIdx)
		g := groups[gk]
		if g == nil {
			rest := make([]value.Value, len(restIdx))
			for i, j := range restIdx {
				rest[i] = row[j]
			}
			g = &group{row: rest, seen: make(map[string]struct{})}
			groups[gk] = g
			order = append(order, gk)
		}
		dk := value.EncodeKey([]value.Value{row[vi]})
		if _, isDiv := divSet[dk]; isDiv {
			g.seen[dk] = struct{}{}
		}
	}
	out := New(restVars, st)
	for _, gk := range order {
		g := groups[gk]
		if len(g.seen) == need {
			out.Add(g.row)
		}
	}
	return out, nil
}

// Semijoin returns the rows of a that join with at least one row of b on
// their shared variables. It backs strategy-2 style restriction between
// intermediate structures.
func Semijoin(ctx context.Context, a, b *RefRel, st *stats.Counters) (*RefRel, error) {
	tk := ticker{ctx: ctx}
	sv, ai, bi := shared(a, b)
	out := New(a.vars, st)
	if len(sv) == 0 {
		if b.Len() > 0 {
			for _, row := range a.rows {
				if err := tk.tick(); err != nil {
					return nil, err
				}
				out.Add(row)
			}
		}
		return out, nil
	}
	ht := make(map[string]struct{}, b.Len())
	kbuf := make([]byte, 0, 16*len(bi))
	for _, row := range b.rows {
		if err := tk.tick(); err != nil {
			return nil, err
		}
		kbuf = keyAtBuf(kbuf, row, bi)
		ht[string(kbuf)] = struct{}{}
	}
	for _, row := range a.rows {
		st.CountProbes(1)
		if err := tk.tick(); err != nil {
			return nil, err
		}
		kbuf = keyAtBuf(kbuf, row, ai)
		if _, ok := ht[string(kbuf)]; ok {
			out.Add(row)
		}
	}
	return out, nil
}

// FromRefs builds a single-column reference relation from a reference
// list — the bridge from collection-phase structures (single lists,
// range lists) into the combination phase.
func FromRefs(v string, refs []value.Value, st *stats.Counters) *RefRel {
	out := New([]string{v}, st)
	row := make([]value.Value, 1)
	for _, ref := range refs {
		row[0] = ref
		out.Add(row)
	}
	return out
}

// FromPairs builds a two-column reference relation from an indirect
// join's pairs.
func FromPairs(lv, rv string, pairs [][2]value.Value, st *stats.Counters) *RefRel {
	out := New([]string{lv, rv}, st)
	row := make([]value.Value, 2)
	for _, p := range pairs {
		row[0], row[1] = p[0], p[1]
		out.Add(row)
	}
	return out
}

// DistinctOn returns the number of distinct value combinations of the
// named columns, for join-size estimation. Absent columns yield 0.
// Results are memoized until the next Add.
func (r *RefRel) DistinctOn(vars []string) int {
	ck := strings.Join(vars, ",")
	if d, ok := r.distinctCache[ck]; ok {
		return d
	}
	idx := make([]int, len(vars))
	for i, v := range vars {
		j, ok := r.varIdx[v]
		if !ok {
			return 0
		}
		idx[i] = j
	}
	seen := make(map[string]struct{}, len(r.rows))
	for _, row := range r.rows {
		seen[keyAt(row, idx)] = struct{}{}
	}
	if r.distinctCache == nil {
		r.distinctCache = make(map[string]int)
	}
	r.distinctCache[ck] = len(seen)
	return len(seen)
}

// EstimateJoinSize predicts |a ⋈ b| from the relations' exact sizes and
// the distinct counts of their shared variables: the standard
// |a|·|b|/max(d_a, d_b) equi-join estimate, degenerating to the full
// cross product when no variable is shared. The second result reports
// whether the pair shares variables (a hash join vs a Cartesian
// product).
func EstimateJoinSize(a, b *RefRel) (float64, bool) {
	sv, _, _ := shared(a, b)
	prod := float64(a.Len()) * float64(b.Len())
	if len(sv) == 0 {
		return prod, false
	}
	da, db := a.DistinctOn(sv), b.DistinctOn(sv)
	d := da
	if db > d {
		d = db
	}
	if d == 0 {
		return 0, true // one side empty: the join is empty
	}
	return prod / float64(d), true
}

// SortedKeys renders the tuples as sorted encoded strings; used by tests
// to compare contents order-independently.
func (r *RefRel) SortedKeys() []string {
	keys := make([]string, 0, len(r.rows))
	for k := range r.set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
