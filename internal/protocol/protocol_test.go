package protocol

import (
	"bufio"
	"bytes"
	"reflect"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	w := NewWriter()
	w.Uvarint(42)
	w.String("hello")
	if err := WriteFrame(bw, OpQuery, w.Bytes()); err != nil {
		t.Fatal(err)
	}
	op, payload, err := ReadFrame(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if op != OpQuery {
		t.Fatalf("op = %#x, want %#x", op, OpQuery)
	}
	r := NewReader(payload)
	if v, _ := r.Uvarint(); v != 42 {
		t.Fatalf("uvarint = %d", v)
	}
	if s, _ := r.String(); s != "hello" {
		t.Fatalf("string = %q", s)
	}
	if r.Len() != 0 {
		t.Fatalf("%d bytes left over", r.Len())
	}
}

func TestValueRowsRoundTrip(t *testing.T) {
	rows := [][]any{
		{int64(7), "ada", true},
		{int64(-3), "", false},
		{},
	}
	w := NewWriter()
	w.Strings([]string{"n", "s", "b"})
	if err := w.Rows(rows); err != nil {
		t.Fatal(err)
	}
	r := NewReader(w.Bytes())
	cols, err := r.Strings()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cols, []string{"n", "s", "b"}) {
		t.Fatalf("cols = %v", cols)
	}
	got, err := r.Rows()
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		if len(rows[i]) == 0 && len(got[i]) == 0 {
			continue
		}
		if !reflect.DeepEqual(got[i], rows[i]) {
			t.Fatalf("row %d = %v, want %v", i, got[i], rows[i])
		}
	}
	if _, err := NewWriter(), w.Value(3.14); err == nil {
		t.Fatal("float should not encode")
	}
}

func TestOptsRoundTrip(t *testing.T) {
	cases := []QueryOpts{
		{},
		{HasStrategies: true, Strategies: 0x1f},
		{HasCostBased: true, CostBased: true},
		{HasCostBased: true, CostBased: false},
		{HasStrategies: true, Strategies: 3, HasCostBased: true, CostBased: true, Parallelism: 8, MaxRefTuples: 1 << 20},
	}
	for i, o := range cases {
		w := NewWriter()
		w.Opts(o)
		got, err := NewReader(w.Bytes()).Opts()
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got != o {
			t.Fatalf("case %d: %+v != %+v", i, got, o)
		}
	}
}

func TestTruncatedPayloads(t *testing.T) {
	w := NewWriter()
	w.String("hello world")
	full := w.Bytes()
	for cut := 0; cut < len(full); cut++ {
		r := NewReader(full[:cut])
		if _, err := r.String(); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
	// A row count larger than the remaining payload must be rejected
	// without allocating.
	w2 := NewWriter()
	w2.Uvarint(1 << 40)
	if _, err := NewReader(w2.Bytes()).Rows(); err == nil {
		t.Fatal("absurd row count accepted")
	}
}

func TestBadFrames(t *testing.T) {
	// Zero-length frame (no opcode byte).
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 0})
	if _, _, err := ReadFrame(bufio.NewReader(&buf)); err == nil {
		t.Fatal("zero-length frame accepted")
	}
	// Oversized length prefix.
	buf.Reset()
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, _, err := ReadFrame(bufio.NewReader(&buf)); err == nil {
		t.Fatal("oversized frame accepted")
	}
}
