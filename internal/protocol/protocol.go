// Package protocol defines the wire protocol of the pascald network
// server: length-prefixed binary frames carrying a one-byte opcode and
// a varint-encoded payload. Both the server (internal/server) and the
// Go client (client) speak exactly this package, so the framing and the
// value encoding live in one place.
//
// # Framing
//
// Every message is one frame:
//
//	uint32 big-endian length  (= 1 + len(payload))
//	byte   opcode
//	bytes  payload
//
// Integers inside payloads are unsigned varints (uvarint) or zigzag
// varints (int64); strings and byte slices are length-prefixed with a
// uvarint. A frame larger than MaxFrameSize is a protocol error — the
// peer must close the connection.
//
// # Conversation
//
// The server sends a Hello frame (protocol version + session id) on
// accept, or an Err frame with CodeTooManySessions when the session
// limit is reached. After that the client drives a strict
// request/response alternation; the only multi-frame response is a
// query result (Result) and the fetch stream of a cursor (RowBatch
// frames, each self-contained). Cancellation of a *running* statement
// happens from another connection via Kill; Cancel on the own
// connection aborts the statement context between requests, which a
// subsequent Fetch observes.
package protocol

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"pascalr/internal/value"
)

// Version is the protocol version announced in the Hello frame.
const Version = 1

// MaxFrameSize bounds a single frame (length header value). It is large
// enough for any realistic row batch and small enough to keep a
// malformed length prefix from allocating gigabytes.
const MaxFrameSize = 64 << 20

// Request opcodes (client -> server).
const (
	OpPing        byte = 0x01 // ()                      -> Pong
	OpExec        byte = 0x02 // (script)                -> OK
	OpQuery       byte = 0x03 // (src, QueryOpts)        -> Result
	OpPrepare     byte = 0x04 // (src, QueryOpts)        -> StmtBound
	OpExecStmt    byte = 0x05 // (stmtID)                -> Cursor
	OpFetch       byte = 0x06 // (stmtID, maxRows)       -> RowBatch
	OpCloseStmt   byte = 0x07 // (stmtID)                -> OK
	OpCancel      byte = 0x08 // ()                      -> OK
	OpKill        byte = 0x09 // (sessionID)             -> OK
	OpProcessList byte = 0x0A // ()                      -> Result
	OpResetStats  byte = 0x0B // ()                      -> OK
	OpFingerprint byte = 0x0C // ()                      -> Str
	OpSetOption   byte = 0x0D // (key, int64)            -> OK

	OpExplainAnalyze byte = 0x0E // (src, QueryOpts)     -> Str
	OpLastTrace      byte = 0x0F // ()                   -> Str (trace JSON)
)

// Response opcodes (server -> client).
const (
	OpOK        byte = 0x80 // ()
	OpErr       byte = 0x81 // (code, message)
	OpHello     byte = 0x82 // (version, sessionID)
	OpPong      byte = 0x83 // ()
	OpResult    byte = 0x84 // (cols, nrows, rows)
	OpStmtBound byte = 0x85 // (stmtID)
	OpCursor    byte = 0x86 // (cols)
	OpRowBatch  byte = 0x87 // (done, nrows, rows)
	OpStr       byte = 0x88 // (string)
)

// Error codes carried by Err frames. The client maps them back to
// typed errors so retry and shutdown logic does not parse messages.
const (
	CodeInternal        uint64 = 1 // unclassified server-side error
	CodeStale           uint64 = 2 // retryable stale read (pascalr.ErrStaleRead)
	CodeCancelled       uint64 = 3 // statement context cancelled (own Cancel)
	CodeKilled          uint64 = 4 // session killed via KILL
	CodeTooManySessions uint64 = 5 // admission control rejected the connection
	CodeUnknownStmt     uint64 = 6 // stmt/cursor id not found in this session
	CodeShuttingDown    uint64 = 7 // server is draining
	CodeBadRequest      uint64 = 8 // malformed frame or unknown opcode
)

// QueryOpts carries per-call execution options. Zero values mean
// "session default": Strategies/CostBased are tri-state through their
// Has flags, Parallelism 0 and MaxRefTuples 0 defer to the session.
// TraceID, when non-empty, names the trace the server records the
// statement's spans under; an empty TraceID lets the server assign one.
type QueryOpts struct {
	HasStrategies bool
	Strategies    uint8
	HasCostBased  bool
	CostBased     bool
	Parallelism   uint32
	MaxRefTuples  uint64
	TraceID       string
}

const (
	optFlagStrategies = 1 << 0
	optFlagCostBased  = 1 << 1
	optFlagCostValue  = 1 << 2
	optFlagTraceID    = 1 << 3
)

// WriteFrame writes one frame (opcode + payload) to w.
func WriteFrame(w *bufio.Writer, op byte, payload []byte) error {
	if 1+len(payload) > MaxFrameSize {
		return fmt.Errorf("protocol: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(1+len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if err := w.WriteByte(op); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	return w.Flush()
}

// ReadFrame reads one frame from r, returning the opcode and payload.
func ReadFrame(r *bufio.Reader) (byte, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n < 1 || n > MaxFrameSize {
		return 0, nil, fmt.Errorf("protocol: bad frame length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, err
	}
	return buf[0], buf[1:], nil
}

// Writer accumulates a payload.
type Writer struct{ buf []byte }

// NewWriter returns an empty payload writer.
func NewWriter() *Writer { return &Writer{} }

// Bytes returns the accumulated payload.
func (w *Writer) Bytes() []byte { return w.buf }

// Uvarint appends an unsigned varint.
func (w *Writer) Uvarint(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }

// Int64 appends a zigzag-encoded signed integer.
func (w *Writer) Int64(v int64) { w.buf = binary.AppendVarint(w.buf, v) }

// Bool appends a boolean byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.Uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Value tags used by Value/ReadValue: results travel as the native Go
// representations of pascalr results (int64, string, bool).
const (
	tagInt    = 0
	tagString = 1
	tagBool   = 2
)

// Value appends one result value. Only int64, string, and bool occur —
// the pascalr native conversions.
func (w *Writer) Value(v any) error {
	switch x := v.(type) {
	case int64:
		w.buf = append(w.buf, tagInt)
		w.Int64(x)
	case string:
		w.buf = append(w.buf, tagString)
		w.String(x)
	case bool:
		w.buf = append(w.buf, tagBool)
		w.Bool(x)
	default:
		return fmt.Errorf("protocol: cannot encode value of type %T", v)
	}
	return nil
}

// Typed-value tags used by Val/ReadVal: the storage layer's WAL and
// checkpoint records carry full value.Value payloads (including enums
// and references), not just the native result conversions.
const (
	tagValInt    = 0
	tagValString = 1
	tagValBool   = 2
	tagValEnum   = 3
	tagValRef    = 4
)

// Val appends one typed value.Value — the codec the durable storage
// layer's WAL and checkpoint records are built from.
func (w *Writer) Val(v value.Value) error {
	switch v.Kind() {
	case value.KindInt:
		w.buf = append(w.buf, tagValInt)
		w.Int64(v.AsInt())
	case value.KindString:
		w.buf = append(w.buf, tagValString)
		w.String(v.AsString())
	case value.KindBool:
		w.buf = append(w.buf, tagValBool)
		w.Bool(v.AsBool())
	case value.KindEnum:
		w.buf = append(w.buf, tagValEnum)
		w.String(v.EnumType())
		w.Int64(int64(v.EnumOrd()))
	case value.KindRef:
		rel, slot, gen := v.AsRef()
		w.buf = append(w.buf, tagValRef)
		w.Uvarint(uint64(rel))
		w.Uvarint(uint64(slot))
		w.Uvarint(uint64(gen))
	default:
		return fmt.Errorf("protocol: cannot encode %s value", v.Kind())
	}
	return nil
}

// Vals appends a length-prefixed tuple of typed values.
func (w *Writer) Vals(tuple []value.Value) error {
	w.Uvarint(uint64(len(tuple)))
	for _, v := range tuple {
		if err := w.Val(v); err != nil {
			return err
		}
	}
	return nil
}

// Val reads one typed value.Value.
func (r *Reader) Val() (value.Value, error) {
	tag, err := r.Byte()
	if err != nil {
		return value.Value{}, err
	}
	switch tag {
	case tagValInt:
		n, err := r.Int64()
		return value.Int(n), err
	case tagValString:
		s, err := r.String()
		return value.String_(s), err
	case tagValBool:
		b, err := r.Bool()
		return value.Bool(b), err
	case tagValEnum:
		name, err := r.String()
		if err != nil {
			return value.Value{}, err
		}
		ord, err := r.Int64()
		if err != nil {
			return value.Value{}, err
		}
		if ord < 0 || ord > 1<<20 {
			return value.Value{}, fmt.Errorf("protocol: enum ordinal %d out of range", ord)
		}
		return value.Enum(name, int(ord)), nil
	case tagValRef:
		rel, err1 := r.Uvarint()
		slot, err2 := r.Uvarint()
		gen, err3 := r.Uvarint()
		if err1 != nil || err2 != nil || err3 != nil {
			return value.Value{}, fmt.Errorf("protocol: truncated ref value")
		}
		if rel > 0xFFFF || slot > 0x7FFFFFFF || gen > 0xFFFF {
			return value.Value{}, fmt.Errorf("protocol: ref value out of range")
		}
		return value.Ref(int(rel), int(slot), int(gen)), nil
	default:
		return value.Value{}, fmt.Errorf("protocol: unknown typed-value tag %d", tag)
	}
}

// Vals reads a length-prefixed tuple of typed values.
func (r *Reader) Vals() ([]value.Value, error) {
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(r.Len()) { // every value costs at least one byte
		return nil, fmt.Errorf("protocol: value count %d exceeds payload", n)
	}
	tuple := make([]value.Value, 0, n)
	for range n {
		v, err := r.Val()
		if err != nil {
			return nil, err
		}
		tuple = append(tuple, v)
	}
	return tuple, nil
}

// Opts appends a QueryOpts block.
func (w *Writer) Opts(o QueryOpts) {
	flags := byte(0)
	if o.HasStrategies {
		flags |= optFlagStrategies
	}
	if o.HasCostBased {
		flags |= optFlagCostBased
		if o.CostBased {
			flags |= optFlagCostValue
		}
	}
	if o.TraceID != "" {
		flags |= optFlagTraceID
	}
	w.buf = append(w.buf, flags)
	if o.HasStrategies {
		w.buf = append(w.buf, o.Strategies)
	}
	w.Uvarint(uint64(o.Parallelism))
	w.Uvarint(o.MaxRefTuples)
	// The trace ID travels last so a peer speaking the pre-trace layout
	// (which never sets the flag) interoperates unchanged: the Opts block
	// is payload-final in every frame that carries it.
	if o.TraceID != "" {
		w.String(o.TraceID)
	}
}

// Rows appends a row block: count followed by the tagged values of each
// row. Callers write the column header separately.
func (w *Writer) Rows(rows [][]any) error {
	w.Uvarint(uint64(len(rows)))
	for _, row := range rows {
		w.Uvarint(uint64(len(row)))
		for _, v := range row {
			if err := w.Value(v); err != nil {
				return err
			}
		}
	}
	return nil
}

// Strings appends a length-prefixed string list.
func (w *Writer) Strings(ss []string) {
	w.Uvarint(uint64(len(ss)))
	for _, s := range ss {
		w.String(s)
	}
}

// Reader decodes a payload.
type Reader struct {
	buf []byte
	i   int
}

// NewReader wraps a payload for decoding.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Len returns the number of unread bytes.
func (r *Reader) Len() int { return len(r.buf) - r.i }

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.i:])
	if n <= 0 {
		return 0, fmt.Errorf("protocol: truncated uvarint")
	}
	r.i += n
	return v, nil
}

// Int64 reads a zigzag-encoded signed integer.
func (r *Reader) Int64() (int64, error) {
	v, n := binary.Varint(r.buf[r.i:])
	if n <= 0 {
		return 0, fmt.Errorf("protocol: truncated varint")
	}
	r.i += n
	return v, nil
}

// Bool reads a boolean byte.
func (r *Reader) Bool() (bool, error) {
	b, err := r.Byte()
	return b != 0, err
}

// Byte reads one byte.
func (r *Reader) Byte() (byte, error) {
	if r.i >= len(r.buf) {
		return 0, fmt.Errorf("protocol: truncated byte")
	}
	b := r.buf[r.i]
	r.i++
	return b, nil
}

// String reads a length-prefixed string.
func (r *Reader) String() (string, error) {
	n, err := r.Uvarint()
	if err != nil {
		return "", err
	}
	if uint64(r.Len()) < n {
		return "", fmt.Errorf("protocol: truncated string of %d bytes", n)
	}
	s := string(r.buf[r.i : r.i+int(n)])
	r.i += int(n)
	return s, nil
}

// Value reads one tagged result value.
func (r *Reader) Value() (any, error) {
	tag, err := r.Byte()
	if err != nil {
		return nil, err
	}
	switch tag {
	case tagInt:
		return r.Int64()
	case tagString:
		return r.String()
	case tagBool:
		return r.Bool()
	default:
		return nil, fmt.Errorf("protocol: unknown value tag %d", tag)
	}
}

// Opts reads a QueryOpts block.
func (r *Reader) Opts() (QueryOpts, error) {
	var o QueryOpts
	flags, err := r.Byte()
	if err != nil {
		return o, err
	}
	if flags&optFlagStrategies != 0 {
		o.HasStrategies = true
		if o.Strategies, err = r.Byte(); err != nil {
			return o, err
		}
	}
	if flags&optFlagCostBased != 0 {
		o.HasCostBased = true
		o.CostBased = flags&optFlagCostValue != 0
	}
	par, err := r.Uvarint()
	if err != nil {
		return o, err
	}
	o.Parallelism = uint32(par)
	if o.MaxRefTuples, err = r.Uvarint(); err != nil {
		return o, err
	}
	if flags&optFlagTraceID != 0 {
		if o.TraceID, err = r.String(); err != nil {
			return o, err
		}
	}
	return o, nil
}

// Rows reads a row block.
func (r *Reader) Rows() ([][]any, error) {
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(r.Len()) { // every row costs at least one byte
		return nil, fmt.Errorf("protocol: row count %d exceeds frame", n)
	}
	rows := make([][]any, 0, n)
	for range n {
		m, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		if m > uint64(r.Len()) {
			return nil, fmt.Errorf("protocol: value count %d exceeds frame", m)
		}
		row := make([]any, 0, m)
		for range m {
			v, err := r.Value()
			if err != nil {
				return nil, err
			}
			row = append(row, v)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Strings reads a length-prefixed string list.
func (r *Reader) Strings() ([]string, error) {
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(r.Len()) {
		return nil, fmt.Errorf("protocol: string count %d exceeds frame", n)
	}
	out := make([]string, 0, n)
	for range n {
		s, err := r.String()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}
