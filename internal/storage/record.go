package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"pascalr/internal/protocol"
	"pascalr/internal/schema"
	"pascalr/internal/value"
)

// Every persistent record — WAL entries, SSTable data records, the
// checkpoint manifest — is framed identically:
//
//	uint32 big-endian payload length
//	uint32 big-endian CRC-32 (IEEE) of the payload
//	bytes  payload
//
// A frame whose length is implausible or whose checksum mismatches is
// corrupt; readers treat it (and, in the WAL, everything after it) as
// garbage. maxRecordSize bounds a single record so a torn length prefix
// cannot allocate gigabytes.
const maxRecordSize = 64 << 20

const frameHeader = 8

// appendFrame appends one framed record to dst.
func appendFrame(dst, payload []byte) []byte {
	var hdr [frameHeader]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// readFrame decodes the frame starting at data[off], returning its
// payload and the offset just past it. Truncated or corrupt frames
// return an error; payload aliases data.
func readFrame(data []byte, off int) (payload []byte, end int, err error) {
	if off < 0 || len(data)-off < frameHeader {
		return nil, off, fmt.Errorf("storage: truncated frame header")
	}
	n := binary.BigEndian.Uint32(data[off : off+4])
	if n > maxRecordSize {
		return nil, off, fmt.Errorf("storage: implausible record length %d", n)
	}
	want := binary.BigEndian.Uint32(data[off+4 : off+8])
	body := data[off+frameHeader:]
	if uint64(len(body)) < uint64(n) {
		return nil, off, fmt.Errorf("storage: truncated record of %d bytes", n)
	}
	payload = body[:n]
	if crc32.ChecksumIEEE(payload) != want {
		return nil, off, fmt.Errorf("storage: record checksum mismatch")
	}
	return payload, off + frameHeader + int(n), nil
}

// readFrameFrom reads one frame from a stream. io.EOF at a frame
// boundary means a clean end.
func readFrameFrom(br *bufio.Reader) ([]byte, error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, io.EOF
		}
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n > maxRecordSize {
		return nil, fmt.Errorf("storage: implausible record length %d", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(br, payload); err != nil {
		return nil, io.EOF // torn tail
	}
	if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(hdr[4:]) {
		return nil, fmt.Errorf("storage: record checksum mismatch")
	}
	return payload, nil
}

// Op identifies a WAL record type. Every effective mutation of a
// durable database — DDL included — appends exactly one record.
type Op byte

// The WAL record types.
const (
	OpDefineType  Op = 1 // named type declaration
	OpCreateRel   Op = 2 // relation declaration (id = creation order)
	OpCreateIndex Op = 3 // permanent index creation
	OpInsert      Op = 4 // one inserted tuple
	OpDelete      Op = 5 // one deletion, by key values
	OpAssign      Op = 6 // whole-relation assignment (tuple list)
)

// Record is one decoded WAL record. Seq is the log sequence number:
// strictly increasing, never reused, and compared against the
// checkpoint's LastSeq during replay so a record surviving a crashed
// truncation is never applied twice.
type Record struct {
	Seq uint64
	Op  Op

	Type   *schema.Type      // OpDefineType
	Schema *schema.RelSchema // OpCreateRel
	Rel    int               // OpCreateIndex, OpInsert, OpDelete, OpAssign
	Col    string            // OpCreateIndex
	Tuple  []value.Value     // OpInsert
	Key    []value.Value     // OpDelete
	Tuples [][]value.Value   // OpAssign

	// Chunk flags, OpAssign only. A whole-relation assignment too large
	// for one WAL record (maxRecordSize would reject its frame) is
	// logged as a chunk group: consecutive records carrying slices of
	// the tuple list. Cont marks a record continuing the previous
	// chunk's list; More marks one with further chunks following. Replay
	// reassembles a group and applies it only when the final chunk
	// (More unset) is durable — a group torn by a crash is wholly
	// dropped, preserving assignment atomicity.
	More bool
	Cont bool
}

// EncodeRecord serializes a record payload (unframed — the WAL frames
// it on append).
func EncodeRecord(rec Record) ([]byte, error) {
	w := protocol.NewWriter()
	w.Uvarint(rec.Seq)
	w.Uvarint(uint64(rec.Op))
	switch rec.Op {
	case OpDefineType:
		if err := encodeType(w, rec.Type); err != nil {
			return nil, err
		}
	case OpCreateRel:
		if err := encodeRelSchema(w, rec.Schema); err != nil {
			return nil, err
		}
	case OpCreateIndex:
		w.Uvarint(uint64(rec.Rel))
		w.String(rec.Col)
	case OpInsert:
		w.Uvarint(uint64(rec.Rel))
		if err := w.Vals(rec.Tuple); err != nil {
			return nil, err
		}
	case OpDelete:
		w.Uvarint(uint64(rec.Rel))
		if err := w.Vals(rec.Key); err != nil {
			return nil, err
		}
	case OpAssign:
		w.Uvarint(uint64(rec.Rel))
		var flags uint64
		if rec.More {
			flags |= 1
		}
		if rec.Cont {
			flags |= 2
		}
		w.Uvarint(flags)
		w.Uvarint(uint64(len(rec.Tuples)))
		for _, t := range rec.Tuples {
			if err := w.Vals(t); err != nil {
				return nil, err
			}
		}
	default:
		return nil, fmt.Errorf("storage: unknown WAL op %d", rec.Op)
	}
	return w.Bytes(), nil
}

// DecodeRecord parses a WAL record payload. It validates structure but
// not semantics (unknown relation ids etc. surface at apply time).
func DecodeRecord(payload []byte) (Record, error) {
	r := protocol.NewReader(payload)
	var rec Record
	seq, err := r.Uvarint()
	if err != nil {
		return rec, err
	}
	op, err := r.Uvarint()
	if err != nil {
		return rec, err
	}
	rec.Seq, rec.Op = seq, Op(op)
	switch rec.Op {
	case OpDefineType:
		rec.Type, err = decodeType(r)
	case OpCreateRel:
		rec.Schema, err = decodeRelSchema(r)
	case OpCreateIndex:
		var rel uint64
		if rel, err = r.Uvarint(); err == nil {
			rec.Rel = int(rel)
			rec.Col, err = r.String()
		}
	case OpInsert:
		var rel uint64
		if rel, err = r.Uvarint(); err == nil {
			rec.Rel = int(rel)
			rec.Tuple, err = r.Vals()
		}
	case OpDelete:
		var rel uint64
		if rel, err = r.Uvarint(); err == nil {
			rec.Rel = int(rel)
			rec.Key, err = r.Vals()
		}
	case OpAssign:
		var rel, flags, n uint64
		if rel, err = r.Uvarint(); err == nil {
			rec.Rel = int(rel)
			flags, err = r.Uvarint()
		}
		if err == nil {
			if flags > 3 {
				return rec, fmt.Errorf("storage: bad assignment chunk flags %d", flags)
			}
			rec.More, rec.Cont = flags&1 != 0, flags&2 != 0
			if n, err = r.Uvarint(); err == nil {
				if n > uint64(r.Len()) {
					return rec, fmt.Errorf("storage: tuple count %d exceeds record", n)
				}
				rec.Tuples = make([][]value.Value, 0, n)
				for range n {
					var t []value.Value
					if t, err = r.Vals(); err != nil {
						break
					}
					rec.Tuples = append(rec.Tuples, t)
				}
			}
		}
	default:
		return rec, fmt.Errorf("storage: unknown WAL op %d", op)
	}
	if err != nil {
		return rec, err
	}
	if rec.Rel < 0 || rec.Rel > 0xFFFF {
		return rec, fmt.Errorf("storage: relation id %d out of range", rec.Rel)
	}
	return rec, nil
}

// assignChunkBytes bounds one OpAssign chunk's encoded tuple bytes —
// well under maxRecordSize, so a chunk's frame always passes the WAL's
// size check (a single tuple cannot approach the margin: schema bounds
// cap every string component at 1 MiB).
const assignChunkBytes = 8 << 20

// SplitRecord splits a record into WAL-appendable pieces: an OpAssign
// whose tuple list encodes past assignChunkBytes becomes a chunk group
// (first chunk Cont unset, every non-final chunk More set) that replay
// reassembles atomically; every other record passes through unchanged.
// The caller assigns each returned record its own sequence number and
// appends them consecutively under the content write lock, so a group
// is always contiguous in the log.
func SplitRecord(rec Record) []Record {
	return splitRecord(rec, assignChunkBytes)
}

func splitRecord(rec Record, maxBytes int) []Record {
	if rec.Op != OpAssign || len(rec.Tuples) == 0 {
		return []Record{rec}
	}
	// One measuring pass: per-tuple encoded sizes, via the same codec
	// EncodeRecord uses.
	w := protocol.NewWriter()
	sizes := make([]int, len(rec.Tuples))
	prev := 0
	for i, t := range rec.Tuples {
		if err := w.Vals(t); err != nil {
			// Undecodable tuple: return the record unsplit and let
			// EncodeRecord surface the error to the mutator.
			return []Record{rec}
		}
		sizes[i] = len(w.Bytes()) - prev
		prev = len(w.Bytes())
	}
	if prev <= maxBytes {
		return []Record{rec}
	}
	var out []Record
	start, sz := 0, 0
	for i := range rec.Tuples {
		if i > start && sz+sizes[i] > maxBytes {
			out = append(out, Record{
				Op: OpAssign, Rel: rec.Rel,
				Tuples: rec.Tuples[start:i],
				More:   true, Cont: start > 0,
			})
			start, sz = i, 0
		}
		sz += sizes[i]
	}
	out = append(out, Record{
		Op: OpAssign, Rel: rec.Rel,
		Tuples: rec.Tuples[start:],
		Cont:   start > 0,
	})
	return out
}

// Type and relation-schema encodings for DDL records and the manifest.
// Types are embedded structurally (name included), so a checkpoint or
// WAL is self-contained: replay reconstructs the catalog without any
// external schema source.

func encodeType(w *protocol.Writer, t *schema.Type) error {
	if t == nil {
		return fmt.Errorf("storage: nil type")
	}
	w.Uvarint(uint64(t.Kind))
	w.String(t.Name)
	switch t.Kind {
	case schema.TInt:
		w.Int64(t.Lo)
		w.Int64(t.Hi)
	case schema.TString:
		w.Uvarint(uint64(t.MaxLen))
	case schema.TBool:
	case schema.TEnum:
		w.Strings(t.Labels)
	case schema.TRef:
		w.String(t.RefRel)
	default:
		return fmt.Errorf("storage: unknown type kind %d", t.Kind)
	}
	return nil
}

func decodeType(r *protocol.Reader) (*schema.Type, error) {
	kind, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	name, err := r.String()
	if err != nil {
		return nil, err
	}
	switch schema.TypeKind(kind) {
	case schema.TInt:
		lo, err1 := r.Int64()
		hi, err2 := r.Int64()
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("storage: truncated int type")
		}
		return schema.IntType(name, lo, hi), nil
	case schema.TString:
		n, err := r.Uvarint()
		if err != nil || n > 1<<20 {
			return nil, fmt.Errorf("storage: bad string type length")
		}
		return schema.StringType(name, int(n)), nil
	case schema.TBool:
		return schema.BoolType(), nil
	case schema.TEnum:
		labels, err := r.Strings()
		if err != nil {
			return nil, err
		}
		return schema.EnumType(name, labels...)
	case schema.TRef:
		rel, err := r.String()
		if err != nil {
			return nil, err
		}
		return schema.RefType(rel), nil
	default:
		return nil, fmt.Errorf("storage: unknown type kind %d", kind)
	}
}

func encodeRelSchema(w *protocol.Writer, s *schema.RelSchema) error {
	if s == nil {
		return fmt.Errorf("storage: nil schema")
	}
	w.String(s.Name)
	w.Uvarint(uint64(len(s.Cols)))
	for _, c := range s.Cols {
		w.String(c.Name)
		if err := encodeType(w, c.Type); err != nil {
			return err
		}
	}
	w.Strings(s.Key)
	return nil
}

func decodeRelSchema(r *protocol.Reader) (*schema.RelSchema, error) {
	name, err := r.String()
	if err != nil {
		return nil, err
	}
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(r.Len()) {
		return nil, fmt.Errorf("storage: column count %d exceeds record", n)
	}
	cols := make([]schema.Column, 0, n)
	for range n {
		cname, err := r.String()
		if err != nil {
			return nil, err
		}
		ct, err := decodeType(r)
		if err != nil {
			return nil, err
		}
		cols = append(cols, schema.Column{Name: cname, Type: ct})
	}
	key, err := r.Strings()
	if err != nil {
		return nil, err
	}
	return schema.NewRelSchema(name, cols, key)
}
