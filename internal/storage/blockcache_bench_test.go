package storage

import (
	"strings"
	"testing"

	"pascalr/internal/value"
)

// BenchmarkBlockCache times the block cache at both granularities. The
// cold/warm pair measures the block fetch itself — readSegment paying a
// pread plus allocation versus serving the bytes from the cache — which
// is the latency the cache exists to remove. The pointget pair measures
// the same contrast end to end through Disk.Get, where segment decode
// runs on both paths and dilutes the ratio. CI converts the output to
// BENCH_storage_tier.json.
func BenchmarkBlockCache(b *testing.B) {
	b.Run("cold", func(b *testing.B) { benchSegmentFetch(b, nil) })
	b.Run("warm", func(b *testing.B) { benchSegmentFetch(b, NewBlockCache(32<<20)) })
	b.Run("pointget-cold", func(b *testing.B) { benchPointReads(b, nil) })
	b.Run("pointget-warm", func(b *testing.B) { benchPointReads(b, NewBlockCache(32<<20)) })
}

// benchSegmentFetch cycles readSegment over every slot segment of one
// wide SSTable (16 records × ~240 bytes per segment).
func benchSegmentFetch(b *testing.B, cache *BlockCache) {
	d := NewDisk(b.TempDir(), 0, Options{
		Fsync:           SyncNever,
		MemtableEntries: 1 << 20, // one flush, one table
	}, cache)
	defer d.Close()
	pad := strings.Repeat("x", 224)
	const n = 2048
	for i := 0; i < n; i++ {
		tuple := []value.Value{value.Int(int64(i)), value.String_(pad)}
		if _, err := d.Append(ikey(i), tuple); err != nil {
			b.Fatal(err)
		}
	}
	if err := d.Flush(); err != nil {
		b.Fatal(err)
	}
	t := d.tables[0]
	segs := make([][2]int64, len(t.spSlots))
	for i, sp := range t.spSlots {
		end := t.indexOff
		if o := sp.off + int64(t.maxSlotSeg); o < end {
			end = o
		}
		segs[i] = [2]int64{sp.off, end}
	}
	for _, s := range segs { // populate the cache (no-op when nil)
		if _, _, err := t.readSegment(s[0], s[1]); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := segs[i%len(segs)]
		if _, _, err := t.readSegment(s[0], s[1]); err != nil {
			b.Fatal(err)
		}
	}
}

// benchPointReads cycles Disk.Get over a flushed table's slots.
func benchPointReads(b *testing.B, cache *BlockCache) {
	d := NewDisk(b.TempDir(), 0, Options{
		Fsync:           SyncNever,
		MemtableEntries: 64,
	}, cache)
	defer d.Close()
	const n = 4096
	slots := make([]int, n)
	for i := 0; i < n; i++ {
		s, err := d.Append(ikey(i), ituple(i))
		if err != nil {
			b.Fatal(err)
		}
		slots[i] = s
	}
	if err := d.Flush(); err != nil { // every row table-resident
		b.Fatal(err)
	}
	for i := 0; i < n; i++ { // populate the cache (no-op when nil)
		if _, ok, err := d.Get(slots[i]); err != nil || !ok {
			b.Fatalf("prewarm get(%d) = %v %v", slots[i], ok, err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := d.Get(slots[i%n]); err != nil || !ok {
			b.Fatalf("get = %v %v", ok, err)
		}
	}
	b.StopTimer()
	if cache != nil {
		hits, misses, _ := cache.Stats()
		if hits+misses > 0 {
			b.ReportMetric(float64(hits)/float64(hits+misses), "hit-rate")
		}
	}
}
