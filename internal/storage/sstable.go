package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"

	"pascalr/internal/protocol"
	"pascalr/internal/value"
)

// An SSTable is one immutable sorted-table file holding the live slots
// of a contiguous slot range of one relation, flushed from the
// memtable (or produced by compaction). The layout:
//
//	[8]  magic "PRSST001"
//	     data section: per live slot one CRC frame (record.go framing)
//	       payload: uvarint si, string encodedKey, tuple values
//	     index section: entries sorted by encoded key (no framing)
//	       string encodedKey, uvarint si
//	     footer: one CRC frame
//	       payload: count, lo, hi, indexOff, maxSlotSeg, maxKeySeg,
//	                bloom (k + packed words), sparse slot index
//	                (every sstSparseEvery-th record: si, offset), sparse
//	                key index (every sstSparseEvery-th entry: key, offset)
//	[4]  footer frame length
//	[8]  magic "PRSSTEND"
//
// Data records are in ascending slot order, so the merging read path
// presents the engine's slot-ordered scan by walking tables in range
// order. Point reads never touch the data section blindly: a key probe
// consults the bloom filter first (definitely-absent keys skip the
// table entirely), then binary-searches the sparse key index and decodes
// one bounded index segment; a slot fetch binary-searches the sparse
// slot index and decodes one bounded run of data frames.
const (
	sstMagic    = "PRSST001"
	sstEndMagic = "PRSSTEND"

	// sstSparseEvery is the sparse-index granularity: one retained
	// (key, offset) / (slot, offset) pair per this many entries.
	sstSparseEvery = 16
)

// SSEntry is one live slot handed to the SSTable writer.
type SSEntry struct {
	Si    int
	Enc   string
	Tuple []value.Value
}

type spSlot struct {
	si  int
	off int64
}

type spKey struct {
	key string
	off int64
}

// ssTable is an open SSTable file handle plus its in-memory probe
// structures (bloom filter and sparse indexes); the data itself stays
// on disk, fronted for point reads by the shared block cache.
type ssTable struct {
	path   string
	name   string
	f      *os.File
	id     uint64 // process-unique block-cache file ID
	lo, hi int    // slot range [lo, hi)
	count  int

	indexOff   int64 // data section ends here
	footerOff  int64 // index section ends here
	maxSlotSeg int   // byte bound of one sparse-slot segment
	maxKeySeg  int   // byte bound of one sparse-key segment

	filter  *bloom
	spSlots []spSlot
	spKeys  []spKey

	cache *BlockCache // shared, nil when caching is disabled

	// pins counts in-flight point reads; the obsolete-file GC refuses
	// to unlink a table while any read holds a pin (belt and braces on
	// top of the lock discipline, which already excludes readers during
	// table swaps).
	pins atomic.Int32
}

// nextFileID hands out process-unique cache file IDs. File names cannot
// serve as cache keys: generations restart per database directory and
// tests open many databases in one process.
var nextFileID atomic.Uint64

// writeSSTable builds and atomically writes an SSTable (tmp + rename)
// and returns the opened handle, fronted by cache (nil ok). Entries
// must be in ascending slot order; span is the exclusive slot range
// [lo, hi) the table covers (it may exceed the entries' own range when
// dead slots were dropped).
func writeSSTable(dir, name string, entries []SSEntry, lo, hi int, cache *BlockCache) (*ssTable, error) {
	var buf []byte
	buf = append(buf, sstMagic...)

	// Data section: one frame per entry, recording sparse slot offsets
	// and segment bounds as we go.
	var spSlots []spSlot
	maxSlotSeg, segStart := 0, len(buf)
	pw := protocol.NewWriter()
	for i, e := range entries {
		if i%sstSparseEvery == 0 {
			if i > 0 && len(buf)-segStart > maxSlotSeg {
				maxSlotSeg = len(buf) - segStart
			}
			spSlots = append(spSlots, spSlot{si: e.Si, off: int64(len(buf))})
			segStart = len(buf)
		}
		pw = protocol.NewWriter()
		pw.Uvarint(uint64(e.Si))
		pw.String(e.Enc)
		if err := pw.Vals(e.Tuple); err != nil {
			return nil, fmt.Errorf("storage: sstable %s: %w", name, err)
		}
		buf = appendFrame(buf, pw.Bytes())
	}
	if len(buf)-segStart > maxSlotSeg {
		maxSlotSeg = len(buf) - segStart
	}
	indexOff := int64(len(buf))

	// Index section: (key, si) sorted by encoded key.
	byKey := make([]int, len(entries))
	for i := range byKey {
		byKey[i] = i
	}
	sort.Slice(byKey, func(a, b int) bool { return entries[byKey[a]].Enc < entries[byKey[b]].Enc })
	filter := newBloom(len(entries))
	var spKeys []spKey
	maxKeySeg := 0
	segStart = len(buf)
	for i, ei := range byKey {
		e := entries[ei]
		filter.add(e.Enc)
		if i%sstSparseEvery == 0 {
			if i > 0 && len(buf)-segStart > maxKeySeg {
				maxKeySeg = len(buf) - segStart
			}
			spKeys = append(spKeys, spKey{key: e.Enc, off: int64(len(buf))})
			segStart = len(buf)
		}
		iw := protocol.NewWriter()
		iw.String(e.Enc)
		iw.Uvarint(uint64(e.Si))
		buf = append(buf, iw.Bytes()...)
	}
	if len(buf)-segStart > maxKeySeg {
		maxKeySeg = len(buf) - segStart
	}

	// Footer.
	fw := protocol.NewWriter()
	fw.Uvarint(uint64(len(entries)))
	fw.Uvarint(uint64(lo))
	fw.Uvarint(uint64(hi))
	fw.Uvarint(uint64(indexOff))
	fw.Uvarint(uint64(maxSlotSeg))
	fw.Uvarint(uint64(maxKeySeg))
	fw.Uvarint(uint64(filter.k))
	words := make([]byte, 8*len(filter.bits))
	for i, wd := range filter.bits {
		binary.LittleEndian.PutUint64(words[8*i:], wd)
	}
	fw.String(string(words))
	fw.Uvarint(uint64(len(spSlots)))
	for _, s := range spSlots {
		fw.Uvarint(uint64(s.si))
		fw.Uvarint(uint64(s.off))
	}
	fw.Uvarint(uint64(len(spKeys)))
	for _, s := range spKeys {
		fw.String(s.key)
		fw.Uvarint(uint64(s.off))
	}
	footerStart := len(buf)
	buf = appendFrame(buf, fw.Bytes())
	var flen [4]byte
	binary.BigEndian.PutUint32(flen[:], uint32(len(buf)-footerStart))
	buf = append(buf, flen[:]...)
	buf = append(buf, sstEndMagic...)

	// Durable write: the next checkpoint's manifest will reference this
	// file by name, and the manifest commit truncates the WAL — so the
	// table (data and directory entry both) must already be on stable
	// storage by then, not just in the page cache.
	path := filepath.Join(dir, name)
	if err := writeFileDurable(path, buf); err != nil {
		return nil, err
	}
	return openSSTable(path, cache)
}

// openSSTable opens an SSTable file, verifying and loading its footer
// (bloom filter, sparse indexes). The cache (nil ok) fronts the
// table's point reads for its lifetime.
func openSSTable(path string, cache *BlockCache) (*ssTable, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	t := &ssTable{path: path, name: filepath.Base(path), f: f, cache: cache, id: nextFileID.Add(1)}
	if err := t.loadFooter(); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: sstable %s: %w", t.name, err)
	}
	return t, nil
}

// readSegment returns the file bytes [off, end), serving from the block
// cache when resident; hit reports which way it went so the disk tier
// can feed its cost EWMAs.
func (t *ssTable) readSegment(off, end int64) (data []byte, hit bool, err error) {
	if data, ok := t.cache.Get(t.id, off); ok {
		return data, true, nil
	}
	seg := make([]byte, end-off)
	if _, err := t.f.ReadAt(seg, off); err != nil {
		return nil, false, err
	}
	// The segment bounds are a pure function of the immutable file and
	// off (sparse index + max-segment clamp), so (id, off) fully
	// identifies these bytes and the entry can never go stale.
	t.cache.Put(t.id, off, seg)
	return seg, false, nil
}

func (t *ssTable) loadFooter() error {
	st, err := t.f.Stat()
	if err != nil {
		return err
	}
	size := st.Size()
	if size < int64(len(sstMagic))+12 {
		return fmt.Errorf("file too short (%d bytes)", size)
	}
	head := make([]byte, len(sstMagic))
	if _, err := t.f.ReadAt(head, 0); err != nil {
		return err
	}
	if string(head) != sstMagic {
		return fmt.Errorf("bad magic")
	}
	tail := make([]byte, 12)
	if _, err := t.f.ReadAt(tail, size-12); err != nil {
		return err
	}
	if string(tail[4:]) != sstEndMagic {
		return fmt.Errorf("bad end magic")
	}
	flen := int64(binary.BigEndian.Uint32(tail[:4]))
	if flen <= 0 || flen > size-12-int64(len(sstMagic)) {
		return fmt.Errorf("bad footer length %d", flen)
	}
	t.footerOff = size - 12 - flen
	frame := make([]byte, flen)
	if _, err := t.f.ReadAt(frame, t.footerOff); err != nil {
		return err
	}
	payload, end, err := readFrame(frame, 0)
	if err != nil || int64(end) != flen {
		return fmt.Errorf("corrupt footer: %v", err)
	}
	return t.parseFooter(payload)
}

func (t *ssTable) parseFooter(payload []byte) error {
	pr := protocol.NewReader(payload)
	count, err := pr.Uvarint()
	if err != nil {
		return err
	}
	lo, err := pr.Uvarint()
	if err != nil {
		return err
	}
	hi, err := pr.Uvarint()
	if err != nil {
		return err
	}
	indexOff, err := pr.Uvarint()
	if err != nil {
		return err
	}
	maxSlotSeg, err := pr.Uvarint()
	if err != nil {
		return err
	}
	maxKeySeg, err := pr.Uvarint()
	if err != nil {
		return err
	}
	k, err := pr.Uvarint()
	if err != nil {
		return err
	}
	words, err := pr.String()
	if err != nil {
		return err
	}
	if hi < lo || count > hi-lo || indexOff > uint64(t.footerOff) || len(words)%8 != 0 || k == 0 || k > 64 {
		return fmt.Errorf("inconsistent footer")
	}
	t.count, t.lo, t.hi = int(count), int(lo), int(hi)
	t.indexOff = int64(indexOff)
	t.maxSlotSeg, t.maxKeySeg = int(maxSlotSeg), int(maxKeySeg)
	bits := make([]uint64, len(words)/8)
	for i := range bits {
		bits[i] = binary.LittleEndian.Uint64([]byte(words[8*i : 8*i+8]))
	}
	t.filter = bloomFromParts(bits, int(k))
	nSlots, err := pr.Uvarint()
	if err != nil || nSlots > count+1 {
		return fmt.Errorf("bad sparse slot count")
	}
	t.spSlots = make([]spSlot, 0, nSlots)
	for range nSlots {
		si, err1 := pr.Uvarint()
		off, err2 := pr.Uvarint()
		if err1 != nil || err2 != nil {
			return fmt.Errorf("truncated sparse slot index")
		}
		t.spSlots = append(t.spSlots, spSlot{si: int(si), off: int64(off)})
	}
	nKeys, err := pr.Uvarint()
	if err != nil || nKeys > count+1 {
		return fmt.Errorf("bad sparse key count")
	}
	t.spKeys = make([]spKey, 0, nKeys)
	for range nKeys {
		key, err1 := pr.String()
		off, err2 := pr.Uvarint()
		if err1 != nil || err2 != nil {
			return fmt.Errorf("truncated sparse key index")
		}
		t.spKeys = append(t.spKeys, spKey{key: key, off: int64(off)})
	}
	return nil
}

// decodeDataRecord parses one data-frame payload into (si, enc, tuple).
func decodeDataRecord(payload []byte) (int, string, []value.Value, error) {
	pr := protocol.NewReader(payload)
	si, err := pr.Uvarint()
	if err != nil {
		return 0, "", nil, err
	}
	if si > 0x7FFFFFFF {
		return 0, "", nil, fmt.Errorf("slot %d out of range", si)
	}
	enc, err := pr.String()
	if err != nil {
		return 0, "", nil, err
	}
	tuple, err := pr.Vals()
	if err != nil {
		return 0, "", nil, err
	}
	return int(si), enc, tuple, nil
}

// scan streams the data section in slot order, calling fn for every
// record with slot in [lo, hi) until fn returns false; keep reports
// whether iteration should continue into the next table.
func (t *ssTable) scan(lo, hi int, fn func(si int, enc string, tuple []value.Value) bool) (keep bool, err error) {
	// Scans bypass the block cache (scan resistance — see BlockCache)
	// but still pin the table against the obsolete-file GC.
	t.pins.Add(1)
	defer t.pins.Add(-1)
	start := int64(len(sstMagic))
	if len(t.spSlots) > 0 && lo > t.lo {
		// Seek: last sparse entry at or below lo.
		i := sort.Search(len(t.spSlots), func(i int) bool { return t.spSlots[i].si > lo }) - 1
		if i >= 0 {
			start = t.spSlots[i].off
		}
	}
	sec := io.NewSectionReader(t.f, start, t.indexOff-start)
	br := bufio.NewReaderSize(sec, 32<<10)
	for {
		payload, err := readFrameFrom(br)
		if err == io.EOF {
			return true, nil
		}
		if err != nil {
			return false, fmt.Errorf("storage: sstable %s: %w", t.name, err)
		}
		si, enc, tuple, err := decodeDataRecord(payload)
		if err != nil {
			return false, fmt.Errorf("storage: sstable %s: %w", t.name, err)
		}
		if si >= hi {
			return true, nil
		}
		if si < lo {
			continue
		}
		if !fn(si, enc, tuple) {
			return false, nil
		}
	}
}

// get fetches the record at slot si via the sparse slot index; ok is
// false when the slot is not present (dead at flush time). hit reports
// whether the segment came out of the block cache.
func (t *ssTable) get(si int) (_ []value.Value, ok bool, hit bool, err error) {
	if si < t.lo || si >= t.hi || len(t.spSlots) == 0 {
		return nil, false, false, nil
	}
	i := sort.Search(len(t.spSlots), func(i int) bool { return t.spSlots[i].si > si }) - 1
	if i < 0 {
		return nil, false, false, nil
	}
	off := t.spSlots[i].off
	end := t.indexOff
	if o := off + int64(t.maxSlotSeg); o < end {
		end = o
	}
	t.pins.Add(1)
	defer t.pins.Add(-1)
	seg, hit, err := t.readSegment(off, end)
	if err != nil {
		return nil, false, false, fmt.Errorf("storage: sstable %s: %w", t.name, err)
	}
	for pos := 0; pos < len(seg); {
		payload, next, err := readFrame(seg, pos)
		if err != nil {
			break // segment bound clipped a frame: records beyond it are past the segment
		}
		rsi, _, tuple, err := decodeDataRecord(payload)
		if err != nil {
			return nil, false, hit, fmt.Errorf("storage: sstable %s: %w", t.name, err)
		}
		if rsi == si {
			return tuple, true, hit, nil
		}
		if rsi > si {
			break
		}
		pos = next
	}
	return nil, false, hit, nil
}

// lookupKey resolves an encoded key to its slot: bloom filter first (a
// definite miss costs no I/O), then one sparse-key segment. hit reports
// whether the segment came out of the block cache.
func (t *ssTable) lookupKey(enc string) (_ int, ok bool, hit bool, err error) {
	if !t.filter.mayContain(enc) || len(t.spKeys) == 0 {
		return 0, false, false, nil
	}
	i := sort.Search(len(t.spKeys), func(i int) bool { return t.spKeys[i].key > enc }) - 1
	if i < 0 {
		return 0, false, false, nil
	}
	off := t.spKeys[i].off
	end := t.footerOff
	if o := off + int64(t.maxKeySeg); o < end {
		end = o
	}
	t.pins.Add(1)
	defer t.pins.Add(-1)
	seg, hit, err := t.readSegment(off, end)
	if err != nil {
		return 0, false, false, fmt.Errorf("storage: sstable %s: %w", t.name, err)
	}
	pr := protocol.NewReader(seg)
	for pr.Len() > 0 {
		key, err := pr.String()
		if err != nil {
			break // segment bound clipped an entry: it is past the segment
		}
		si, err := pr.Uvarint()
		if err != nil {
			break
		}
		if key == enc {
			return int(si), true, hit, nil
		}
		if key > enc {
			break // entries are key-sorted
		}
	}
	return 0, false, hit, nil
}

func (t *ssTable) close() error {
	if t.f == nil {
		return nil
	}
	t.cache.EvictFile(t.id)
	err := t.f.Close()
	t.f = nil
	return err
}
