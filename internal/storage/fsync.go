package storage

import (
	"os"
	"path/filepath"
)

// Power-loss durability helpers. An fsynced file whose directory entry
// was never flushed — or a rename the directory never recorded — can
// vanish in a crash even though the data hit the platter; every durable
// file here therefore pairs its own fsync with one of its directory.

// syncDir fsyncs a directory, making the file creations and renames
// inside it durable.
func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeFileDurable atomically replaces path with data: write to a .tmp
// sibling, fsync it, rename over path, fsync the directory. When it
// returns nil the file is durable under these exact contents; a crash
// at any earlier point leaves either the previous file or a .tmp
// leftover (cleaned up by CleanOrphans on the next open), never a
// partial file at path.
func writeFileDurable(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	_, err = f.Write(data)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(filepath.Dir(path))
}
