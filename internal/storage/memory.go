package storage

import (
	"pascalr/internal/colbatch"
	"pascalr/internal/value"
)

// memSlot is one in-memory slot: the stored tuple and its liveness.
// (The relation layer's old per-slot generation counter is gone: slots
// never revive, so "live" already implies "generation zero" — see the
// package comment.)
type memSlot struct {
	tuple []value.Value
	live  bool
}

// Memory is the default backend: the relation layer's original
// in-memory slot array and key directory, behind the Backend interface.
// It is volatile; durable databases pair a Disk backend with the WAL.
type Memory struct {
	slots []memSlot
	byKey map[string]int // encoded key -> slot index

	// ordCols is the columnar mirror: for every column whose values are
	// int-backed (integers, booleans, enums, references), ordCols[c][si]
	// holds the Ord payload of slot si's column c, maintained by Append
	// alongside the row. Batch scans fill from the mirror with
	// sequential 8-byte reads instead of chasing one scattered tuple
	// pointer per row — the difference between a memory-latency-bound
	// fill and a bandwidth-trivial one. Dead slots keep stale mirror
	// values; the gather skips them, so they are never read. Lazily
	// shaped by the first Append; ordOK[c] records whether column c has
	// stayed mirrorable, and mirrorOff abandons the mirror entirely if
	// tuple arity ever varies (impossible through the relation layer,
	// which checks tuples against one schema).
	ordCols   [][]int64
	ordOK     []bool
	mirrorOff bool
}

// NewMemory returns an empty in-memory backend.
func NewMemory() *Memory {
	return &Memory{byKey: make(map[string]int)}
}

// SlotSpan implements Backend.
func (m *Memory) SlotSpan() int { return len(m.slots) }

// Get implements Backend.
func (m *Memory) Get(si int) ([]value.Value, bool, error) {
	if si < 0 || si >= len(m.slots) {
		return nil, false, nil
	}
	s := &m.slots[si]
	if !s.live {
		return nil, false, nil
	}
	return s.tuple, true, nil
}

// Scan implements Backend.
func (m *Memory) Scan(lo, hi int, fn func(si int, tuple []value.Value) bool) error {
	if lo < 0 {
		lo = 0
	}
	if hi > len(m.slots) {
		hi = len(m.slots)
	}
	for si := lo; si < hi; si++ {
		if !m.slots[si].live {
			continue
		}
		if !fn(si, m.slots[si].tuple) {
			return nil
		}
	}
	return nil
}

// fillBlock is the row-block size of ScanBatchesInto's fill: small
// enough that a block's source rows stay cache-resident across the
// per-column passes, large enough to amortize the pointer-resolution
// pass.
const fillBlock = 256

// mirDst pairs a grown destination span with its columnar-mirror
// source; ordDst and valDst pair one with its source column index for
// the tuple-sourced blocked fill of ScanBatchesInto.
type mirDst struct {
	span []int64
	src  []int64
}

type ordDst struct {
	span []int64
	c    int
}

type valDst struct {
	span []value.Value
	c    int
}

// ScanBatchesInto is the closure-free columnar fast path behind the
// relation layer's ScanBatches: it gathers a window of live slot
// indexes from [lo, hi), materializes each requested column for the
// window in one sequential pass, and calls flush whenever b fills plus
// once for a trailing partial batch. Only the listed columns are
// materialized (nil = all columns). The caller's flush owns counting
// and resetting the batch. Filling via pre-grown per-window spans
// amortizes the slice bookkeeping to one grow per column per window
// instead of per row, and removes the three indirect calls per tuple
// of Scan plus a per-row callback; the row-major pass visits each
// scattered source row exactly once while its cache lines are hot.
// Int-backed columns are unboxed into int64 spans — 8-byte writes
// instead of 32-byte value copies, which is where most of the fill
// bandwidth goes. Backends without this method (the disk tier) keep
// the generic callback path.
func (m *Memory) ScanBatchesInto(lo, hi int, cols []int, b *colbatch.Batch, flush func() error) error {
	if lo < 0 {
		lo = 0
	}
	if hi > len(m.slots) {
		hi = len(m.slots)
	}
	mirDsts := make([]mirDst, 0, 8)
	ordDsts := make([]ordDst, 0, 8)
	valDsts := make([]valDst, 0, 8)
	var tbuf [fillBlock][]value.Value
	for si := lo; si < hi; {
		start := b.Len()
		for ; si < hi && !b.Full(); si++ {
			if m.slots[si].live {
				b.AppendSlot(si)
			}
		}
		if n := b.Len() - start; n > 0 {
			window := b.Slots()[start:]
			mirDsts, ordDsts, valDsts = mirDsts[:0], ordDsts[:0], valDsts[:0]
			add := func(c int) {
				if b.IsOrd(c) {
					if src := m.mirrored(c); src != nil {
						mirDsts = append(mirDsts, mirDst{b.GrowOrds(c, n), src})
					} else {
						ordDsts = append(ordDsts, ordDst{b.GrowOrds(c, n), c})
					}
				} else {
					valDsts = append(valDsts, valDst{b.GrowVals(c, n), c})
				}
			}
			if cols == nil {
				for c := 0; c < b.NumCols(); c++ {
					add(c)
				}
			} else {
				for _, c := range cols {
					add(c)
				}
			}
			// Mirrored columns gather straight from the columnar mirror:
			// ascending slot indexes over an 8-byte-stride array, which
			// the prefetcher handles, instead of a dependent load through
			// the row pointer.
			for _, d := range mirDsts {
				src := d.src
				for j, s := range window {
					d.span[j] = src[s]
				}
			}
			if len(ordDsts)+len(valDsts) > 0 {
				// Tuple-sourced columns fill in blocks: resolve a block
				// of row pointers once, then run one tight loop per
				// column over the block. The first column pass pulls each
				// scattered row into cache, where the remaining passes
				// find it — row-major locality — while each inner loop
				// keeps a fixed destination span and column index, free
				// of the per-row per-column bookkeeping a fused row-major
				// loop pays.
				for base := 0; base < n; base += fillBlock {
					k := n - base
					if k > fillBlock {
						k = fillBlock
					}
					rows := tbuf[:k]
					for j, s := range window[base : base+k] {
						rows[j] = m.slots[s].tuple
					}
					for _, d := range ordDsts {
						span := d.span[base : base+k]
						for j, t := range rows {
							span[j] = t[d.c].Ord()
						}
					}
					for _, d := range valDsts {
						span := d.span[base : base+k]
						for j, t := range rows {
							span[j] = t[d.c]
						}
					}
				}
			}
		}
		if b.Full() {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if b.Len() > 0 {
		return flush()
	}
	return nil
}

// LookupKey implements Backend.
func (m *Memory) LookupKey(enc string) (int, bool) {
	si, ok := m.byKey[enc]
	return si, ok
}

// Append implements Backend.
func (m *Memory) Append(enc string, tuple []value.Value) (int, error) {
	m.mirrorAppend(tuple)
	m.slots = append(m.slots, memSlot{tuple: tuple, live: true})
	si := len(m.slots) - 1
	m.byKey[enc] = si
	return si, nil
}

// mirrorAppend extends the columnar mirror with one tuple, keeping the
// invariant that len(ordCols[c]) == len(slots) for every column with
// ordOK[c]. A column's first non-int-backed value permanently demotes
// it to the tuple-sourced fill path.
func (m *Memory) mirrorAppend(tuple []value.Value) {
	if m.mirrorOff {
		return
	}
	if m.ordCols == nil {
		m.ordCols = make([][]int64, len(tuple))
		m.ordOK = make([]bool, len(tuple))
		for c := range tuple {
			m.ordOK[c] = true
		}
	}
	if len(tuple) != len(m.ordCols) {
		m.mirrorOff = true
		m.ordCols, m.ordOK = nil, nil
		return
	}
	for c, v := range tuple {
		if !m.ordOK[c] {
			continue
		}
		if !value.OrdKind(v.Kind()) {
			m.ordOK[c] = false
			m.ordCols[c] = nil
			continue
		}
		m.ordCols[c] = append(m.ordCols[c], v.Ord())
	}
}

// mirrored returns the mirror column for c, or nil when c is not
// mirrored (string column, demoted, or mirror off).
func (m *Memory) mirrored(c int) []int64 {
	if m.mirrorOff || c >= len(m.ordCols) || !m.ordOK[c] {
		return nil
	}
	return m.ordCols[c]
}

// Delete implements Backend.
func (m *Memory) Delete(si int, enc string) error {
	if si < 0 || si >= len(m.slots) {
		return nil
	}
	m.slots[si].live = false
	m.slots[si].tuple = nil
	delete(m.byKey, enc)
	return nil
}

// Reset implements Backend.
func (m *Memory) Reset() error {
	for i := range m.slots {
		if m.slots[i].live {
			m.slots[i].live = false
			m.slots[i].tuple = nil
		}
	}
	m.byKey = make(map[string]int)
	// The columnar mirror stays: slots are dead, not truncated, so the
	// mirror's slot alignment must survive for appends that follow.
	return nil
}

// Costs implements Backend.
func (m *Memory) Costs() CostProfile { return memoryCosts }

// Close implements Backend.
func (m *Memory) Close() error { return nil }
