package storage

import (
	"pascalr/internal/value"
)

// memSlot is one in-memory slot: the stored tuple and its liveness.
// (The relation layer's old per-slot generation counter is gone: slots
// never revive, so "live" already implies "generation zero" — see the
// package comment.)
type memSlot struct {
	tuple []value.Value
	live  bool
}

// Memory is the default backend: the relation layer's original
// in-memory slot array and key directory, behind the Backend interface.
// It is volatile; durable databases pair a Disk backend with the WAL.
type Memory struct {
	slots []memSlot
	byKey map[string]int // encoded key -> slot index
}

// NewMemory returns an empty in-memory backend.
func NewMemory() *Memory {
	return &Memory{byKey: make(map[string]int)}
}

// SlotSpan implements Backend.
func (m *Memory) SlotSpan() int { return len(m.slots) }

// Get implements Backend.
func (m *Memory) Get(si int) ([]value.Value, bool, error) {
	if si < 0 || si >= len(m.slots) {
		return nil, false, nil
	}
	s := &m.slots[si]
	if !s.live {
		return nil, false, nil
	}
	return s.tuple, true, nil
}

// Scan implements Backend.
func (m *Memory) Scan(lo, hi int, fn func(si int, tuple []value.Value) bool) error {
	if lo < 0 {
		lo = 0
	}
	if hi > len(m.slots) {
		hi = len(m.slots)
	}
	for si := lo; si < hi; si++ {
		if !m.slots[si].live {
			continue
		}
		if !fn(si, m.slots[si].tuple) {
			return nil
		}
	}
	return nil
}

// LookupKey implements Backend.
func (m *Memory) LookupKey(enc string) (int, bool) {
	si, ok := m.byKey[enc]
	return si, ok
}

// Append implements Backend.
func (m *Memory) Append(enc string, tuple []value.Value) (int, error) {
	m.slots = append(m.slots, memSlot{tuple: tuple, live: true})
	si := len(m.slots) - 1
	m.byKey[enc] = si
	return si, nil
}

// Delete implements Backend.
func (m *Memory) Delete(si int, enc string) error {
	if si < 0 || si >= len(m.slots) {
		return nil
	}
	m.slots[si].live = false
	m.slots[si].tuple = nil
	delete(m.byKey, enc)
	return nil
}

// Reset implements Backend.
func (m *Memory) Reset() error {
	for i := range m.slots {
		if m.slots[i].live {
			m.slots[i].live = false
			m.slots[i].tuple = nil
		}
	}
	m.byKey = make(map[string]int)
	return nil
}

// Costs implements Backend.
func (m *Memory) Costs() CostProfile { return memoryCosts }

// Close implements Backend.
func (m *Memory) Close() error { return nil }
