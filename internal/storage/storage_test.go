package storage

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"pascalr/internal/schema"
	"pascalr/internal/value"
)

func ikey(i int) string { return value.EncodeKey([]value.Value{value.Int(int64(i))}) }

func ituple(i int) []value.Value {
	return []value.Value{value.Int(int64(i)), value.String_(fmt.Sprintf("v%d", i))}
}

// snapshot captures everything the Backend interface exposes, for
// equivalence comparisons.
func snapshot(t *testing.T, b Backend) string {
	t.Helper()
	out := fmt.Sprintf("span=%d\n", b.SlotSpan())
	err := b.Scan(0, b.SlotSpan(), func(si int, tuple []value.Value) bool {
		out += fmt.Sprintf("%d:%s\n", si, value.EncodeKey(tuple))
		return true
	})
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	return out
}

// TestMemoryDiskEquivalence drives an identical randomized mutation
// sequence through the memory backend and a disk backend with a tiny
// memtable (constant spilling): every scan, every lookup, and every
// slot number must match — the engine's bit-identity across backends
// rests on this.
func TestMemoryDiskEquivalence(t *testing.T) {
	mem := NewMemory()
	disk := NewDisk(t.TempDir(), 0, Options{MemtableEntries: 4, Fsync: SyncNever}, nil)
	defer disk.Close()
	rng := rand.New(rand.NewSource(7))
	present := map[int]bool{}

	for step := 0; step < 800; step++ {
		k := rng.Intn(60)
		switch {
		case rng.Intn(10) == 0 && len(present) > 0: // whole-relation reset
			if err := mem.Reset(); err != nil {
				t.Fatal(err)
			}
			if err := disk.Reset(); err != nil {
				t.Fatal(err)
			}
			present = map[int]bool{}
		case rng.Intn(3) == 0 && present[k]: // delete
			ms, mok := mem.LookupKey(ikey(k))
			ds, dok := disk.LookupKey(ikey(k))
			if !mok || !dok || ms != ds {
				t.Fatalf("step %d: lookup(%d) diverged: mem %d,%v disk %d,%v", step, k, ms, mok, ds, dok)
			}
			if err := mem.Delete(ms, ikey(k)); err != nil {
				t.Fatal(err)
			}
			if err := disk.Delete(ds, ikey(k)); err != nil {
				t.Fatal(err)
			}
			delete(present, k)
		case !present[k]: // insert
			ms, err := mem.Append(ikey(k), ituple(k))
			if err != nil {
				t.Fatal(err)
			}
			ds, err := disk.Append(ikey(k), ituple(k))
			if err != nil {
				t.Fatal(err)
			}
			if ms != ds {
				t.Fatalf("step %d: append(%d) slots diverged: mem %d disk %d", step, k, ms, ds)
			}
			present[k] = true
		}
		if step%50 == 0 {
			if m, d := snapshot(t, mem), snapshot(t, disk); m != d {
				t.Fatalf("step %d: scans diverged:\nmem:\n%s\ndisk:\n%s", step, m, d)
			}
		}
	}
	if m, d := snapshot(t, mem), snapshot(t, disk); m != d {
		t.Fatalf("final scans diverged:\nmem:\n%s\ndisk:\n%s", m, d)
	}
	for k := 0; k < 60; k++ {
		ms, mok := mem.LookupKey(ikey(k))
		ds, dok := disk.LookupKey(ikey(k))
		if mok != dok || (mok && ms != ds) {
			t.Errorf("final lookup(%d) diverged: mem %d,%v disk %d,%v", k, ms, mok, ds, dok)
		}
		mt, mok2, _ := mem.Get(ms)
		dt, dok2, _ := disk.Get(ds)
		if mok {
			if !mok2 || !dok2 || value.EncodeKey(mt) != value.EncodeKey(dt) {
				t.Errorf("final get(%d) diverged", k)
			}
		}
	}
}

// TestDiskLookupAfterIrregularFlush regression-tests the bloom sizing
// bug: checkpoints flush partially filled memtables, so tables exist at
// every size, and a probe must find keys in all of them.
func TestDiskLookupAfterIrregularFlush(t *testing.T) {
	d := NewDisk(t.TempDir(), 0, Options{MemtableEntries: 8, Fsync: SyncNever}, nil)
	defer d.Close()
	for i := 1; i <= 99; i++ {
		if _, err := d.Append(ikey(i), ituple(i)); err != nil {
			t.Fatal(err)
		}
		if i%13 == 0 { // irregular mid-fill flush, like a checkpoint
			if err := d.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 1; i <= 99; i++ {
		si, ok := d.LookupKey(ikey(i))
		if !ok {
			t.Fatalf("key %d not found across %d tables", i, d.TableCount())
		}
		tup, ok, err := d.Get(si)
		if err != nil || !ok || tup[0].AsInt() != int64(i) {
			t.Fatalf("key %d: get(%d) = %v %v %v", i, si, tup, ok, err)
		}
	}
	if _, ok := d.LookupKey(ikey(1000)); ok {
		t.Fatal("absent key found")
	}
}

// TestDiskBloomNegativeProbes verifies the negative-probe fast path:
// probing keys that exist in no table must be answered by the bloom
// filters without I/O for nearly all of them.
func TestDiskBloomNegativeProbes(t *testing.T) {
	d := NewDisk(t.TempDir(), 0, Options{MemtableEntries: 64, Fsync: SyncNever}, nil)
	defer d.Close()
	for i := 0; i < 1024; i++ {
		if _, err := d.Append(ikey(i), ituple(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	if n := d.TableCount(); n < 16 {
		t.Fatalf("expected many tables, got %d", n)
	}
	const misses = 2048
	for i := 0; i < misses; i++ {
		if _, ok := d.LookupKey(ikey(100000 + i)); ok {
			t.Fatalf("phantom key %d", 100000+i)
		}
	}
	// Each missing probe consults every table; the filters must have
	// skipped nearly all of those consultations (1% false positives).
	skipped := d.BloomNegatives()
	total := uint64(misses * d.TableCount())
	if skipped < total*95/100 {
		t.Fatalf("bloom skipped only %d of %d table consultations", skipped, total)
	}
}

// TestDiskCompaction checks that compaction preserves the observable
// state while dropping dead records, and that superseded files survive
// until DropObsolete.
func TestDiskCompaction(t *testing.T) {
	dir := t.TempDir()
	d := NewDisk(dir, 3, Options{MemtableEntries: 8, Fsync: SyncNever}, nil)
	defer d.Close()
	for i := 0; i < 64; i++ {
		if _, err := d.Append(ikey(i), ituple(i)); err != nil {
			t.Fatal(err)
		}
	}
	// 64 appends through an 8-entry memtable leave 8 same-tier tables —
	// a mergeable tiered run regardless of tombstones.
	if !d.NeedsCompaction() {
		t.Fatal("8 same-tier tables not flagged for compaction")
	}
	for i := 0; i < 64; i += 2 {
		si, ok := d.LookupKey(ikey(i))
		if !ok {
			t.Fatalf("key %d missing", i)
		}
		if err := d.Delete(si, ikey(i)); err != nil {
			t.Fatal(err)
		}
	}
	si, _ := d.LookupKey(ikey(1))
	if err := d.Delete(si, ikey(1)); err != nil { // now more than half dead
		t.Fatal(err)
	}
	before := snapshot(t, d)
	nBefore := d.TableCount()
	if err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := snapshot(t, d); got != before {
		t.Fatalf("compaction changed state:\nbefore:\n%s\nafter:\n%s", before, got)
	}
	if d.TableCount() != 1 {
		t.Fatalf("TableCount = %d after compaction", d.TableCount())
	}
	if len(d.Obsolete()) != nBefore {
		t.Fatalf("obsolete = %d, want %d", len(d.Obsolete()), nBefore)
	}
	// Superseded files still on disk (a checkpoint manifest may still
	// reference them) until DropObsolete.
	for _, name := range d.Obsolete() {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("superseded file %s gone before DropObsolete: %v", name, err)
		}
	}
	obs := append([]string(nil), d.Obsolete()...)
	d.DropObsolete(nil)
	for _, name := range obs {
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Fatalf("superseded file %s survived DropObsolete", name)
		}
	}
	if got := snapshot(t, d); got != before {
		t.Fatal("state changed after DropObsolete")
	}
}

// TestDiskMetaRoundTrip closes a disk backend and reopens it from its
// checkpoint metadata: the observable state must be identical.
func TestDiskMetaRoundTrip(t *testing.T) {
	dir := t.TempDir()
	opts := Options{MemtableEntries: 8, Fsync: SyncNever}
	d := NewDisk(dir, 0, opts, nil)
	for i := 0; i < 50; i++ {
		if _, err := d.Append(ikey(i), ituple(i)); err != nil {
			t.Fatal(err)
		}
	}
	for _, i := range []int{3, 17, 41} {
		si, _ := d.LookupKey(ikey(i))
		if err := d.Delete(si, ikey(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Flush(); err != nil { // Meta requires an empty memtable
		t.Fatal(err)
	}
	want := snapshot(t, d)
	meta := d.Meta()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	rd, err := OpenDisk(dir, 0, opts, nil, meta)
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	if got := snapshot(t, rd); got != want {
		t.Fatalf("reopened state diverged:\nwant:\n%s\ngot:\n%s", want, got)
	}
	for i := 0; i < 50; i++ {
		_, ok := rd.LookupKey(ikey(i))
		want := i != 3 && i != 17 && i != 41
		if ok != want {
			t.Errorf("reopened lookup(%d) = %v, want %v", i, ok, want)
		}
	}
}

// TestWALRecovery appends records, garbles the tail, and recovers: the
// valid prefix must come back intact and the garbage must be chopped.
func TestWALRecovery(t *testing.T) {
	dir := t.TempDir()
	w, payloads, err := RecoverWAL(dir, SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	if len(payloads) != 0 {
		t.Fatalf("fresh WAL returned %d payloads", len(payloads))
	}
	for i := 0; i < 20; i++ {
		if _, err := w.Append([]byte(fmt.Sprintf("record-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, WALName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a torn final write.
	torn := append(append([]byte(nil), data...), 0xde, 0xad, 0xbe)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	w2, payloads, err := RecoverWAL(dir, SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	if len(payloads) != 20 {
		t.Fatalf("recovered %d payloads, want 20", len(payloads))
	}
	for i, p := range payloads {
		if string(p) != fmt.Sprintf("record-%02d", i) {
			t.Fatalf("payload %d = %q", i, p)
		}
	}
	if w2.Size() != int64(len(data)) {
		t.Fatalf("recovered size %d, want %d", w2.Size(), len(data))
	}
	// The next append extends the clean prefix.
	if _, err := w2.Append([]byte("post-recovery")); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	_, payloads, err = RecoverWAL(dir, SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	if len(payloads) != 21 || string(payloads[20]) != "post-recovery" {
		t.Fatalf("post-recovery append lost: %d payloads", len(payloads))
	}
}

func testSchema(t testing.TB) *schema.RelSchema {
	t.Helper()
	return schema.MustRelSchema("parts", []schema.Column{
		{Name: "pno", Type: schema.IntType("pnotype", 1, 999)},
		{Name: "pname", Type: schema.StringType("nametype", 12)},
	}, []string{"pno"})
}

// TestRecordRoundTrip encodes and decodes one record of every op.
func TestRecordRoundTrip(t *testing.T) {
	enum, err := schema.EnumType("color", "red", "green", "blue")
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Seq: 1, Op: OpDefineType, Type: enum},
		{Seq: 2, Op: OpCreateRel, Schema: testSchema(t)},
		{Seq: 3, Op: OpCreateIndex, Rel: 4, Col: "pname"},
		{Seq: 4, Op: OpInsert, Rel: 4, Tuple: []value.Value{value.Int(7), value.String_("bolt")}},
		{Seq: 5, Op: OpDelete, Rel: 4, Key: []value.Value{value.Int(7)}},
		{Seq: 6, Op: OpAssign, Rel: 4, Tuples: [][]value.Value{
			{value.Int(1), value.String_("nut")},
			{value.Int(2), value.String_("cam")},
		}},
	}
	for _, rec := range recs {
		payload, err := EncodeRecord(rec)
		if err != nil {
			t.Fatalf("op %d: encode: %v", rec.Op, err)
		}
		got, err := DecodeRecord(payload)
		if err != nil {
			t.Fatalf("op %d: decode: %v", rec.Op, err)
		}
		if got.Seq != rec.Seq || got.Op != rec.Op || got.Rel != rec.Rel || got.Col != rec.Col {
			t.Fatalf("op %d: header diverged: %+v", rec.Op, got)
		}
		switch rec.Op {
		case OpDefineType:
			if got.Type == nil || got.Type.Name != "color" {
				t.Fatalf("type round-trip: %+v", got.Type)
			}
		case OpCreateRel:
			if got.Schema == nil || got.Schema.Name != "parts" || len(got.Schema.Cols) != 2 {
				t.Fatalf("schema round-trip: %+v", got.Schema)
			}
		case OpInsert:
			if value.EncodeKey(got.Tuple) != value.EncodeKey(rec.Tuple) {
				t.Fatal("tuple round-trip diverged")
			}
		case OpDelete:
			if value.EncodeKey(got.Key) != value.EncodeKey(rec.Key) {
				t.Fatal("key round-trip diverged")
			}
		case OpAssign:
			if len(got.Tuples) != 2 || value.EncodeKey(got.Tuples[1]) != value.EncodeKey(rec.Tuples[1]) {
				t.Fatal("tuples round-trip diverged")
			}
		}
	}
	if _, err := EncodeRecord(Record{Op: Op(99)}); err == nil {
		t.Fatal("unknown op encoded")
	}
	if _, err := DecodeRecord([]byte{0x01}); err == nil {
		t.Fatal("truncated record decoded")
	}
}

// TestManifestRoundTripAndOrphans writes a manifest, reads it back, and
// checks CleanOrphans removes exactly the unreferenced table files.
func TestManifestRoundTripAndOrphans(t *testing.T) {
	dir := t.TempDir()
	if _, ok, err := ReadManifest(dir); err != nil || ok {
		t.Fatalf("empty dir: manifest ok=%v err=%v", ok, err)
	}
	enum, err := schema.EnumType("color", "red", "green", "blue")
	if err != nil {
		t.Fatal(err)
	}
	m := &Manifest{
		LastSeq: 42,
		Types:   []*schema.Type{enum},
		Rels: []RelManifest{{
			Schema: testSchema(t),
			Disk: DiskTableMeta{
				SlotSpan: 10, ResetFloor: 2, NextGen: 3,
				Tables: []string{"r0-g0.sst", "r0-g2.sst"},
				Dead:   []int{4, 7}, Live: 5,
			},
			Indexes: []string{"pname"},
			Stats:   []byte{1, 2, 3},
		}},
	}
	if err := WriteManifest(dir, m); err != nil {
		t.Fatal(err)
	}
	got, ok, err := ReadManifest(dir)
	if err != nil || !ok {
		t.Fatalf("read back: ok=%v err=%v", ok, err)
	}
	if got.LastSeq != 42 || len(got.Types) != 1 || len(got.Rels) != 1 {
		t.Fatalf("manifest header diverged: %+v", got)
	}
	rm := got.Rels[0]
	if rm.Schema.Name != "parts" || !reflect.DeepEqual(rm.Disk, m.Rels[0].Disk) ||
		!reflect.DeepEqual(rm.Indexes, []string{"pname"}) || string(rm.Stats) != string([]byte{1, 2, 3}) {
		t.Fatalf("relation manifest diverged: %+v", rm)
	}

	// Orphan cleanup: referenced tables stay, others go, non-table files
	// are never touched.
	for _, name := range []string{"r0-g0.sst", "r0-g1.sst", "r0-g2.sst", "r9-g0.sst", WALName} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := CleanOrphans(dir, got); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	want := []string{ManifestName, "r0-g0.sst", "r0-g2.sst", WALName}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("after CleanOrphans: %v, want %v", names, want)
	}
}

// TestBloomNoFalseNegatives cycles filters of many sizes through the
// serialize/reconstitute path an SSTable open performs: every added key
// must still be reported present.
func TestBloomNoFalseNegatives(t *testing.T) {
	for _, n := range []int{1, 2, 5, 6, 7, 8, 13, 31, 64, 100, 257, 1000} {
		b := newBloom(n)
		for i := 0; i < n; i++ {
			b.add(ikey(i))
		}
		rb := bloomFromParts(b.bits, b.k)
		if rb.nbits != b.nbits {
			t.Fatalf("n=%d: reconstituted nbits %d != built %d", n, rb.nbits, b.nbits)
		}
		for i := 0; i < n; i++ {
			if !b.mayContain(ikey(i)) {
				t.Fatalf("n=%d: false negative on key %d", n, i)
			}
			if !rb.mayContain(ikey(i)) {
				t.Fatalf("n=%d: false negative on key %d after reconstitution", n, i)
			}
		}
		fp := 0
		for i := n; i < n+1000; i++ {
			if rb.mayContain(ikey(i)) {
				fp++
			}
		}
		if fp > 100 {
			t.Fatalf("n=%d: %d/1000 false positives", n, fp)
		}
	}
}

// TestWALAppendRejectsOversized pins the frame-size guard: a payload
// readFrame would refuse must never reach the log, because recovery
// truncates at the first refused frame — silently discarding it AND
// every durable record behind it.
func TestWALAppendRejectsOversized(t *testing.T) {
	dir := t.TempDir()
	w, payloads, err := RecoverWAL(dir, SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	if len(payloads) != 0 {
		t.Fatalf("fresh WAL replayed %d records", len(payloads))
	}
	if _, err := w.Append(make([]byte, maxRecordSize+1)); err == nil {
		t.Fatal("oversized append accepted")
	}
	if w.Size() != 0 {
		t.Fatalf("failed append grew the log to %d bytes", w.Size())
	}
	if _, err := w.Append([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_, payloads, err = RecoverWAL(dir, SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	if len(payloads) != 1 || string(payloads[0]) != "ok" {
		t.Fatalf("recovered %d records, want the one valid append", len(payloads))
	}
}

// TestSplitRecordChunks pins the OpAssign chunking: oversized tuple
// lists split into a flagged group that partitions the list in order,
// every chunk roundtrips through the codec, and everything else passes
// through untouched.
func TestSplitRecordChunks(t *testing.T) {
	var tuples [][]value.Value
	for i := 0; i < 20; i++ {
		tuples = append(tuples, ituple(i))
	}
	rec := Record{Op: OpAssign, Rel: 3, Tuples: tuples}

	if got := splitRecord(rec, 1<<20); len(got) != 1 || got[0].More || got[0].Cont {
		t.Fatalf("small assignment split into %d flagged records", len(got))
	}
	ins := Record{Op: OpInsert, Rel: 1, Tuple: ituple(1)}
	if got := splitRecord(ins, 1); len(got) != 1 || !reflect.DeepEqual(got[0], ins) {
		t.Fatal("non-assign record did not pass through")
	}

	chunks := splitRecord(rec, 24)
	if len(chunks) < 3 {
		t.Fatalf("split produced only %d chunks", len(chunks))
	}
	var merged [][]value.Value
	for i, c := range chunks {
		if c.Op != OpAssign || c.Rel != rec.Rel || len(c.Tuples) == 0 {
			t.Fatalf("chunk %d malformed: %+v", i, c)
		}
		if wantCont := i > 0; c.Cont != wantCont {
			t.Fatalf("chunk %d Cont=%v", i, c.Cont)
		}
		if wantMore := i < len(chunks)-1; c.More != wantMore {
			t.Fatalf("chunk %d More=%v", i, c.More)
		}
		payload, err := EncodeRecord(c)
		if err != nil {
			t.Fatalf("chunk %d encode: %v", i, err)
		}
		back, err := DecodeRecord(payload)
		if err != nil {
			t.Fatalf("chunk %d decode: %v", i, err)
		}
		if back.More != c.More || back.Cont != c.Cont || len(back.Tuples) != len(c.Tuples) {
			t.Fatalf("chunk %d did not roundtrip: %+v vs %+v", i, back, c)
		}
		merged = append(merged, c.Tuples...)
	}
	if len(merged) != len(tuples) {
		t.Fatalf("chunks carry %d tuples, want %d", len(merged), len(tuples))
	}
	for i := range tuples {
		if value.EncodeKey(merged[i]) != value.EncodeKey(tuples[i]) {
			t.Fatalf("tuple %d reordered by split", i)
		}
	}
}

// TestDiskAppendFlushFailureRollsBack: a memtable flush failing inside
// Append must leave the backend exactly as before the append — the
// caller published nothing (no live count, no index entries), so a
// half-registered entry would answer key probes while being invisible
// to scans.
func TestDiskAppendFlushFailureRollsBack(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "missing")
	d := NewDisk(dir, 0, Options{MemtableEntries: 1, Fsync: SyncNever}, nil)
	defer d.Close()
	if _, err := d.Append(ikey(1), ituple(1)); err == nil {
		t.Fatal("append with failing flush reported success")
	}
	if span := d.SlotSpan(); span != 0 {
		t.Fatalf("slot span %d after rolled-back append", span)
	}
	if _, ok := d.LookupKey(ikey(1)); ok {
		t.Fatal("rolled-back entry still answers key lookups")
	}
	if got := snapshot(t, d); got != "span=0\n" {
		t.Fatalf("rolled-back entry visible to scans:\n%s", got)
	}
	// With the failure cause repaired, the same append must succeed and
	// reuse the never-published slot.
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	si, err := d.Append(ikey(1), ituple(1))
	if err != nil {
		t.Fatal(err)
	}
	if si != 0 {
		t.Fatalf("retried append landed on slot %d, want 0", si)
	}
	if got, ok := d.LookupKey(ikey(1)); !ok || got != 0 {
		t.Fatalf("retried append not found: slot %d ok %v", got, ok)
	}
}
