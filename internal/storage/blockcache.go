package storage

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// BlockCache is the byte-budgeted LRU block cache shared by every
// SSTable of a database. It caches the point-read segments — the
// bounded sparse-slot and sparse-key runs a Get or LookupKey decodes —
// keyed by (file, offset): a segment's offset comes from the table's
// immutable sparse index, so the key fully determines the bytes and a
// cached entry never goes stale while its file exists. Closing a table
// evicts its entries, so a compacted-away file cannot serve reads from
// beyond the grave.
//
// Two cache tiers front the disk tier's reads. The handle tier is the
// open ssTable itself: bloom filter and sparse indexes, loaded once at
// open and pinned for the table's lifetime (they are small and every
// probe consults them). This LRU is the block tier underneath, holding
// the data bytes those structures point into. Sequential scans
// deliberately bypass it — one large scan would otherwise flush the
// whole point-read working set (classic scan resistance); scans stream
// through their own bounded bufio window instead.
//
// Unlike the backends it serves, the cache IS internally synchronized:
// concurrent readers under the database content read lock probe tables
// (and therefore the cache) in parallel.
type BlockCache struct {
	mu     sync.Mutex
	budget int64
	used   int64
	ll     *list.List // MRU at the front
	m      map[blockKey]*list.Element

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

type blockKey struct {
	file uint64
	off  int64
}

type blockEntry struct {
	key  blockKey
	data []byte
}

// NewBlockCache returns a cache evicting least-recently-used entries
// beyond the given byte budget. A budget <= 0 returns nil — the nil
// cache is valid and caches nothing.
func NewBlockCache(budget int64) *BlockCache {
	if budget <= 0 {
		return nil
	}
	return &BlockCache{
		budget: budget,
		ll:     list.New(),
		m:      make(map[blockKey]*list.Element),
	}
}

// Get returns the cached block for (file, off), promoting it to
// most-recently-used. The returned bytes are shared — callers must not
// modify them.
func (c *BlockCache) Get(file uint64, off int64) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	e, ok := c.m[blockKey{file, off}]
	if !ok {
		c.mu.Unlock()
		c.misses.Add(1)
		mBlockCacheMisses.Inc()
		return nil, false
	}
	c.ll.MoveToFront(e)
	data := e.Value.(*blockEntry).data
	c.mu.Unlock()
	c.hits.Add(1)
	mBlockCacheHits.Inc()
	return data, true
}

// Put inserts a block, evicting from the LRU tail until the budget
// holds. Blocks larger than a quarter of the budget are not cached at
// all — one oversized segment must not wipe the working set. Put takes
// ownership of data (callers hand over freshly read buffers).
func (c *BlockCache) Put(file uint64, off int64, data []byte) {
	if c == nil || int64(len(data)) > c.budget/4 {
		return
	}
	k := blockKey{file, off}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.m[k]; ok {
		// Racing readers both missed and both read the file: the bytes
		// are identical, keep the resident entry.
		c.ll.MoveToFront(e)
		return
	}
	e := c.ll.PushFront(&blockEntry{key: k, data: data})
	c.m[k] = e
	c.used += int64(len(data))
	for c.used > c.budget {
		tail := c.ll.Back()
		if tail == nil {
			break
		}
		c.removeLocked(tail)
		c.evictions.Add(1)
		mBlockCacheEvictions.Inc()
	}
}

// EvictFile drops every cached block of the given file — called when a
// table handle closes (compaction obsoleted it), so no read can be
// served from a file the GC is about to unlink.
func (c *BlockCache) EvictFile(file uint64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, e := range c.m {
		if k.file == file {
			c.removeLocked(e)
		}
	}
}

func (c *BlockCache) removeLocked(e *list.Element) {
	ent := e.Value.(*blockEntry)
	c.ll.Remove(e)
	delete(c.m, ent.key)
	c.used -= int64(len(ent.data))
}

// Used returns the resident byte count.
func (c *BlockCache) Used() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// Len returns the resident block count.
func (c *BlockCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns cumulative hit/miss/eviction counts.
func (c *BlockCache) Stats() (hits, misses, evictions uint64) {
	if c == nil {
		return 0, 0, 0
	}
	return c.hits.Load(), c.misses.Load(), c.evictions.Load()
}
