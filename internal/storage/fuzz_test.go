package storage

import (
	"os"
	"path/filepath"
	"testing"

	"pascalr/internal/value"
)

// The durability decoders parse bytes that crossed a crash: they must
// reject arbitrary corruption with an error (or a shorter valid
// prefix), never panic or over-read. Each fuzz target seeds with valid
// encodings so mutation explores the interesting structured space.

func FuzzScanFrames(f *testing.F) {
	var log []byte
	for _, p := range [][]byte{[]byte("a"), []byte("record-two"), {}, []byte("third")} {
		log = appendFrame(log, p)
	}
	f.Add(log)
	f.Add(log[:len(log)-3])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		payloads, valid := ScanFrames(data)
		if valid < 0 || valid > int64(len(data)) {
			t.Fatalf("valid offset %d out of [0, %d]", valid, len(data))
		}
		// The reported prefix must itself rescan identically: recovery
		// truncates to it and trusts the result.
		again, validAgain := ScanFrames(data[:valid])
		if validAgain != valid || len(again) != len(payloads) {
			t.Fatalf("rescan of valid prefix diverged: %d/%d frames, %d/%d bytes",
				len(again), len(payloads), validAgain, valid)
		}
	})
}

func FuzzDecodeRecord(f *testing.F) {
	seeds := []Record{
		{Seq: 3, Op: OpCreateIndex, Rel: 1, Col: "pname"},
		{Seq: 4, Op: OpInsert, Rel: 1, Tuple: []value.Value{value.Int(7), value.String_("bolt")}},
		{Seq: 5, Op: OpDelete, Rel: 1, Key: []value.Value{value.Int(7)}},
		{Seq: 6, Op: OpAssign, Rel: 1, Tuples: [][]value.Value{{value.Int(1)}}},
	}
	for _, rec := range seeds {
		if payload, err := EncodeRecord(rec); err == nil {
			f.Add(payload)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := DecodeRecord(data)
		if err != nil {
			return
		}
		// A record that decodes must re-encode (DDL payloads aside,
		// whose schema objects carry validation of their own).
		if rec.Op >= OpCreateIndex && rec.Op <= OpAssign {
			if _, err := EncodeRecord(rec); err != nil {
				t.Fatalf("decoded record does not re-encode: %v", err)
			}
		}
	})
}

func FuzzDecodeManifest(f *testing.F) {
	dir := f.TempDir()
	m := &Manifest{LastSeq: 9, Rels: []RelManifest{{
		Schema: testSchema(f),
		Disk:   DiskTableMeta{SlotSpan: 4, NextGen: 1, Tables: []string{"r0-g0.sst"}, Live: 4},
		Stats:  []byte{1, 2},
	}}}
	if err := WriteManifest(dir, m); err != nil {
		f.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(raw)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Must not panic; errors are the expected outcome for garbage.
		payloads, _ := ScanFrames(data)
		for _, p := range payloads {
			_, _ = DecodeManifest(p)
		}
		_, _ = DecodeManifest(data)
	})
}

func FuzzOpenSSTable(f *testing.F) {
	dir := f.TempDir()
	entries := []SSEntry{
		{Si: 0, Enc: ikey(1), Tuple: ituple(1)},
		{Si: 2, Enc: ikey(2), Tuple: ituple(2)},
	}
	tbl, err := writeSSTable(dir, "seed.sst", entries, 0, 3, nil)
	if err != nil {
		f.Fatal(err)
	}
	tbl.close()
	raw, err := os.ReadFile(filepath.Join(dir, "seed.sst"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(raw)
	f.Add(raw[:len(raw)-5])
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.sst")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		tb, err := openSSTable(path, nil)
		if err != nil {
			return
		}
		defer tb.close()
		// An accepted table must serve its read paths without panicking.
		_, _ = tb.scan(tb.lo, tb.hi, func(int, string, []value.Value) bool { return true })
		_, _, _, _ = tb.get(tb.lo)
		_, _, _, _ = tb.lookupKey(ikey(1))
	})
}
