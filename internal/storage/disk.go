package storage

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
	"time"

	"pascalr/internal/colbatch"
	"pascalr/internal/value"
)

// memEntry is one memtable slot: slot index memBase+position.
type memEntry struct {
	enc   string
	tuple []value.Value
	live  bool
}

// Disk is the LSM-ish backend: appends land in a slot-ordered in-memory
// memtable; when it fills, the live entries flush to an immutable
// SSTable file covering the memtable's slot range. Tables therefore
// have disjoint, ascending slot ranges, and the merging read path is a
// walk over tables-then-memtable in range order — exactly the
// slot-ordered scan the engine consumes, bit-identical to the memory
// backend's.
//
// Deletes of table-resident slots land in the dead set (tombstones);
// the := assignment raises resetFloor instead (every slot below it is
// dead), so neither touches the immutable files. Compaction rewrites
// tables dropping dead and below-floor records; superseded files move
// to the obsolete list and are unlinked only after the next checkpoint
// manifest stops referencing them.
//
// Like every backend, Disk is unsynchronized: the relation layer's
// content lock serializes access (compaction runs under an exclusive
// section scheduled on the database's async executor).
type Disk struct {
	dir   string
	relID int
	opts  Options

	tables     []*ssTable   // ascending, disjoint slot ranges
	dead       map[int]bool // table-resident tombstones
	resetFloor int          // every slot < resetFloor is dead

	mem      []memEntry
	memBase  int
	memByKey map[string]int // encoded key -> memtable position (newest)

	memLive   int // live entries in the memtable
	tableLive int // live (non-dead, above-floor) records in tables

	nextGen  int        // SSTable file-name generation counter
	obsolete []*ssTable // closed tables superseded since the last checkpoint

	cache *BlockCache // shared per-database block cache, nil when disabled

	// Measured access latencies (EWMA nanoseconds), for observability
	// and the cost model's learned per-backend profile. Sampled, not
	// exhaustive: one timing per scan, one per sampled probe.
	scanTupleNanos  atomicEWMA
	probeNanos      atomicEWMA
	probeCount      uint64
	bloomNegSkipped uint64 // probes answered "absent" by filters alone

	// cacheHitRate tracks the block-cache hit fraction of this
	// relation's point reads (1.0 per hit, 0.0 per miss) — the signal
	// that turns the static probe cost into a learned one (Costs).
	cacheHitRate atomicRate
}

// DiskTableMeta is the per-relation durable state a checkpoint manifest
// records and OpenDisk restores.
type DiskTableMeta struct {
	SlotSpan   int
	ResetFloor int
	NextGen    int
	Tables     []string
	Dead       []int
	Live       int
}

// NewDisk creates an empty disk backend writing its files into dir.
// cache is the database's shared block cache (nil disables caching).
func NewDisk(dir string, relID int, opts Options, cache *BlockCache) *Disk {
	return &Disk{
		dir:      dir,
		relID:    relID,
		opts:     opts.withDefaults(),
		dead:     make(map[int]bool),
		memByKey: make(map[string]int),
		cache:    cache,
	}
}

// OpenDisk reconstitutes a disk backend from checkpoint metadata,
// opening the listed SSTable files (loading their bloom filters and
// sparse indexes).
func OpenDisk(dir string, relID int, opts Options, cache *BlockCache, meta DiskTableMeta) (*Disk, error) {
	d := NewDisk(dir, relID, opts, cache)
	d.resetFloor = meta.ResetFloor
	d.nextGen = meta.NextGen
	d.tableLive = meta.Live
	for _, name := range meta.Tables {
		t, err := openSSTable(filepath.Join(dir, name), cache)
		if err != nil {
			d.Close()
			return nil, err
		}
		d.tables = append(d.tables, t)
	}
	sort.Slice(d.tables, func(i, j int) bool { return d.tables[i].lo < d.tables[j].lo })
	for _, si := range meta.Dead {
		d.dead[si] = true
	}
	d.memBase = meta.SlotSpan
	return d, nil
}

// Meta snapshots the durable state for a checkpoint manifest. The
// memtable must be empty (Flush first).
func (d *Disk) Meta() DiskTableMeta {
	m := DiskTableMeta{
		SlotSpan:   d.SlotSpan(),
		ResetFloor: d.resetFloor,
		NextGen:    d.nextGen,
		Live:       d.tableLive,
	}
	for _, t := range d.tables {
		m.Tables = append(m.Tables, t.name)
	}
	m.Dead = make([]int, 0, len(d.dead))
	for si := range d.dead {
		m.Dead = append(m.Dead, si)
	}
	sort.Ints(m.Dead)
	return m
}

// SlotSpan implements Backend.
func (d *Disk) SlotSpan() int { return d.memBase + len(d.mem) }

// Get implements Backend.
func (d *Disk) Get(si int) ([]value.Value, bool, error) {
	if si < 0 || si >= d.SlotSpan() {
		return nil, false, nil
	}
	if si >= d.memBase {
		e := &d.mem[si-d.memBase]
		if !e.live {
			return nil, false, nil
		}
		return e.tuple, true, nil
	}
	if si < d.resetFloor || d.dead[si] {
		return nil, false, nil
	}
	t := d.tableFor(si)
	if t == nil {
		return nil, false, nil
	}
	mSSTableReads.Inc()
	tuple, ok, hit, err := t.get(si)
	d.observeCache(hit)
	return tuple, ok, err
}

// observeCache feeds one point read's cache outcome into the hit-rate
// EWMA behind the learned probe cost.
func (d *Disk) observeCache(hit bool) {
	if d.cache == nil {
		return
	}
	if hit {
		d.cacheHitRate.observe(1)
	} else {
		d.cacheHitRate.observe(0)
	}
}

// tableFor returns the table whose range covers si, or nil.
func (d *Disk) tableFor(si int) *ssTable {
	i := sort.Search(len(d.tables), func(i int) bool { return d.tables[i].hi > si })
	if i < len(d.tables) && d.tables[i].lo <= si {
		return d.tables[i]
	}
	return nil
}

// Scan implements Backend: tables in range order, then the memtable —
// ascending slot order throughout.
func (d *Disk) Scan(lo, hi int, fn func(si int, tuple []value.Value) bool) error {
	if lo < 0 {
		lo = 0
	}
	if span := d.SlotSpan(); hi > span {
		hi = span
	}
	if lo >= hi {
		return nil
	}
	start := time.Now()
	visited := 0
	defer func() {
		if visited > 0 {
			d.scanTupleNanos.observe(float64(time.Since(start).Nanoseconds()) / float64(visited))
		}
	}()
	for _, t := range d.tables {
		if t.hi <= lo || t.hi <= d.resetFloor {
			continue
		}
		if t.lo >= hi {
			break
		}
		mSSTableReads.Inc()
		keep, err := t.scan(lo, hi, func(si int, _ string, tuple []value.Value) bool {
			if si < d.resetFloor || d.dead[si] {
				return true
			}
			visited++
			return fn(si, tuple)
		})
		if err != nil {
			return err
		}
		if !keep {
			return nil
		}
	}
	for i := range d.mem {
		si := d.memBase + i
		if si >= hi {
			break
		}
		if si < lo || !d.mem[i].live {
			continue
		}
		visited++
		if !fn(si, d.mem[i].tuple) {
			return nil
		}
	}
	return nil
}

// ScanBatchesInto is the disk tier's batchFiller: SSTable-resident rows
// stream through the generic per-record decode (each tuple is freshly
// decoded from the file, so there is nothing columnar to gather from),
// but memtable-resident rows get the memory backend's blocked columnar
// fill — gather a window of live slots, then one tight loop per column
// over resolved row blocks. A hot relation's recent rows live in the
// memtable, so the fraction that benefits is exactly the fraction being
// re-scanned. Flush/batch semantics match Memory.ScanBatchesInto.
func (d *Disk) ScanBatchesInto(lo, hi int, cols []int, b *colbatch.Batch, flush func() error) error {
	if lo < 0 {
		lo = 0
	}
	if span := d.SlotSpan(); hi > span {
		hi = span
	}
	start := time.Now()
	visited := 0
	defer func() {
		if visited > 0 {
			d.scanTupleNanos.observe(float64(time.Since(start).Nanoseconds()) / float64(visited))
		}
	}()

	// Phase 1: table-resident rows, generic row-at-a-time fill.
	appendRow := func(si int, tuple []value.Value) {
		if cols != nil {
			b.AppendCols(si, tuple, cols)
		} else {
			b.Append(si, tuple)
		}
	}
	for _, t := range d.tables {
		if t.hi <= lo || t.hi <= d.resetFloor {
			continue
		}
		if t.lo >= hi {
			break
		}
		mSSTableReads.Inc()
		var ferr error
		_, err := t.scan(lo, hi, func(si int, _ string, tuple []value.Value) bool {
			if si < d.resetFloor || d.dead[si] {
				return true
			}
			visited++
			appendRow(si, tuple)
			if b.Full() {
				if ferr = flush(); ferr != nil {
					return false
				}
			}
			return true
		})
		if ferr != nil {
			return ferr
		}
		if err != nil {
			return err
		}
	}

	// Phase 2: memtable-resident rows, blocked columnar fill.
	mlo := lo
	if mlo < d.memBase {
		mlo = d.memBase
	}
	ordDsts := make([]ordDst, 0, 8)
	valDsts := make([]valDst, 0, 8)
	var tbuf [fillBlock][]value.Value
	for si := mlo; si < hi; {
		winStart := b.Len()
		for ; si < hi && !b.Full(); si++ {
			if d.mem[si-d.memBase].live {
				b.AppendSlot(si)
			}
		}
		if n := b.Len() - winStart; n > 0 {
			visited += n
			window := b.Slots()[winStart:]
			ordDsts, valDsts = ordDsts[:0], valDsts[:0]
			add := func(c int) {
				if b.IsOrd(c) {
					ordDsts = append(ordDsts, ordDst{b.GrowOrds(c, n), c})
				} else {
					valDsts = append(valDsts, valDst{b.GrowVals(c, n), c})
				}
			}
			if cols == nil {
				for c := 0; c < b.NumCols(); c++ {
					add(c)
				}
			} else {
				for _, c := range cols {
					add(c)
				}
			}
			for base := 0; base < n; base += fillBlock {
				k := n - base
				if k > fillBlock {
					k = fillBlock
				}
				rows := tbuf[:k]
				for j, s := range window[base : base+k] {
					rows[j] = d.mem[int(s)-d.memBase].tuple
				}
				for _, dst := range ordDsts {
					span := dst.span[base : base+k]
					for j, t := range rows {
						span[j] = t[dst.c].Ord()
					}
				}
				for _, dst := range valDsts {
					span := dst.span[base : base+k]
					for j, t := range rows {
						span[j] = t[dst.c]
					}
				}
			}
		}
		if b.Full() {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if b.Len() > 0 {
		return flush()
	}
	return nil
}

// LookupKey implements Backend: memtable first (its key map tracks the
// newest entry per key, dead entries masking older table occurrences),
// then tables newest-first — the first table containing the key decides,
// because a key can only be re-inserted after a delete, and that delete
// tombstoned every older occurrence.
func (d *Disk) LookupKey(enc string) (int, bool) {
	if i, ok := d.memByKey[enc]; ok {
		if !d.mem[i].live {
			return 0, false
		}
		return d.memBase + i, true
	}
	sampled := atomic.AddUint64(&d.probeCount, 1)%16 == 0
	var start time.Time
	if sampled {
		start = time.Now()
	}
	for i := len(d.tables) - 1; i >= 0; i-- {
		t := d.tables[i]
		if t.hi <= d.resetFloor {
			break // this and every older table lie wholly below the floor
		}
		if !t.filter.mayContain(enc) {
			atomic.AddUint64(&d.bloomNegSkipped, 1)
			mBloomSkips.Inc()
			continue
		}
		mBloomHits.Inc()
		mSSTableReads.Inc()
		si, ok, hit, err := t.lookupKey(enc)
		d.observeCache(hit)
		if err != nil {
			// A probe has no error channel (the relation layer's Lookup
			// contract predates I/O): treat unreadable as absent. Scans
			// surface the corruption with a real error.
			return 0, false
		}
		if ok {
			if sampled {
				d.probeNanos.observe(float64(time.Since(start).Nanoseconds()))
			}
			if si < d.resetFloor || d.dead[si] {
				return 0, false
			}
			return si, true
		}
	}
	if sampled {
		d.probeNanos.observe(float64(time.Since(start).Nanoseconds()))
	}
	return 0, false
}

// Append implements Backend, flushing the memtable to an SSTable when
// it reaches the configured entry budget.
func (d *Disk) Append(enc string, tuple []value.Value) (int, error) {
	prev, hadPrev := d.memByKey[enc]
	d.mem = append(d.mem, memEntry{enc: enc, tuple: tuple, live: true})
	i := len(d.mem) - 1
	d.memByKey[enc] = i
	d.memLive++
	si := d.memBase + i
	if len(d.mem) >= d.opts.MemtableEntries {
		if err := d.Flush(); err != nil {
			// The caller treats the append as failed and publishes
			// nothing (no live count, no index entries), so the entry
			// must not stay visible here either: roll the memtable back
			// to its pre-append state (a failed Flush mutated nothing).
			d.mem = d.mem[:i]
			if hadPrev {
				d.memByKey[enc] = prev
			} else {
				delete(d.memByKey, enc)
			}
			d.memLive--
			return 0, err
		}
	}
	return si, nil
}

// Delete implements Backend.
func (d *Disk) Delete(si int, enc string) error {
	if si >= d.memBase {
		i := si - d.memBase
		if i < len(d.mem) && d.mem[i].live {
			d.mem[i].live = false
			d.mem[i].tuple = nil
			d.memLive--
			// The key map entry stays as a tombstone: it masks any older
			// table-resident occurrence of the same key.
		}
		return nil
	}
	if si >= d.resetFloor && !d.dead[si] {
		d.dead[si] = true
		d.tableLive--
	}
	return nil
}

// Reset implements Backend: raise the floor instead of touching the
// immutable files; compaction reclaims the space later.
func (d *Disk) Reset() error {
	d.resetFloor = d.SlotSpan()
	for i := range d.mem {
		if d.mem[i].live {
			d.mem[i].live = false
			d.mem[i].tuple = nil
		}
	}
	d.memLive = 0
	d.tableLive = 0
	d.dead = make(map[int]bool)
	return nil
}

// Flush spills the memtable's live entries to a new SSTable covering
// the memtable's slot range and advances the base. A memtable with no
// live entries advances the base without writing a file. Idempotent
// per fill: replaying the same appends re-flushes at the same point
// with the same contents.
func (d *Disk) Flush() error {
	n := len(d.mem)
	if n == 0 {
		return nil
	}
	var entries []SSEntry
	for i := range d.mem {
		if d.mem[i].live {
			entries = append(entries, SSEntry{Si: d.memBase + i, Enc: d.mem[i].enc, Tuple: d.mem[i].tuple})
		}
	}
	if len(entries) > 0 {
		name := fmt.Sprintf("r%d-g%d.sst", d.relID, d.nextGen)
		d.nextGen++
		t, err := writeSSTable(d.dir, name, entries, d.memBase, d.memBase+n, d.cache)
		if err != nil {
			return err
		}
		d.tables = append(d.tables, t)
		d.tableLive += len(entries)
		mMemtableSpills.Inc()
	}
	d.memBase += n
	d.mem = nil
	d.memByKey = make(map[string]int)
	d.memLive = 0
	return nil
}

// Size-tiered compaction policy. Tables are bucketed into size tiers
// (tier = log4 of record count); a run of compactionMinRun contiguous
// same-tier tables merges into one table of the next tier, touching at
// most compactionMaxRun inputs per run. Contiguity in slot order is not
// an optimization but an invariant: tables carry disjoint ascending
// slot ranges, and only a contiguous run merges into a table whose
// range stays disjoint from its neighbors'.
const (
	compactionMinRun    = 4 // same-tier run length that triggers a merge
	compactionMaxRun    = 8 // inputs consumed per merge, bounding its cost
	compactionMaxTables = 8 // total table count that forces a fallback merge
)

// tableTier buckets a record count into a size tier: 1-3 records tier
// 0, 4-15 tier 1, 16-63 tier 2, ... A compactionMinRun merge of tier-n
// tables lands in tier n+1, so repeated merges climb the tiers instead
// of rewriting the whole keyspace every time.
func tableTier(count int) int {
	tier := 0
	for count >= 4 {
		count /= 4
		tier++
	}
	return tier
}

// pickTieredRun returns the table-index range [lo, hi) of the best
// mergeable run: the lowest-tier run of at least compactionMinRun
// contiguous same-tier tables, capped at compactionMaxRun inputs.
// Returns an empty range when no tier has a long-enough run.
func (d *Disk) pickTieredRun() (lo, hi int) {
	found := false
	bestTier := 0
	for i := 0; i < len(d.tables); {
		tier := tableTier(d.tables[i].count)
		j := i + 1
		for j < len(d.tables) && tableTier(d.tables[j].count) == tier {
			j++
		}
		if j-i >= compactionMinRun && (!found || tier < bestTier) {
			found, bestTier = true, tier
			lo = i
			hi = min(j, i+compactionMaxRun)
		}
		i = j
	}
	if !found {
		return 0, 0
	}
	return lo, hi
}

// smallestWindow returns the contiguous window of n tables with the
// fewest total records — the cheapest merge that still shrinks the
// table count when tiering alone found no run.
func (d *Disk) smallestWindow(n int) (lo, hi int) {
	if len(d.tables) < n {
		return 0, len(d.tables)
	}
	sum := 0
	for i := 0; i < n; i++ {
		sum += d.tables[i].count
	}
	best, bestSum := 0, sum
	for i := n; i < len(d.tables); i++ {
		sum += d.tables[i].count - d.tables[i-n].count
		if sum < bestSum {
			best, bestSum = i-n+1, sum
		}
	}
	return best, best + n
}

// deadHeavy reports whether tombstoned records dominate the tables.
func (d *Disk) deadHeavy() bool {
	records := 0
	for _, t := range d.tables {
		records += t.count
	}
	return records > 0 && len(d.dead)*2 > records
}

// NeedsCompaction reports whether a compaction run would reclaim space
// or read amplification: whole tables below the reset floor (droppable
// without a rewrite), tombstone-dominated tables, a mergeable same-tier
// run, or simply too many tables.
func (d *Disk) NeedsCompaction() bool {
	for _, t := range d.tables {
		if t.hi <= d.resetFloor {
			return true
		}
	}
	if d.deadHeavy() {
		return true
	}
	if lo, hi := d.pickTieredRun(); hi > lo {
		return true
	}
	return len(d.tables) > compactionMaxTables
}

// Compact runs one round of the size-tiered policy. Below-floor tables
// (wholly dead since a := assignment) retire without any rewrite; then
// one run merges — the whole table set when tombstones dominate, else
// the best same-tier run, else (when the table count is still past the
// bound) the cheapest contiguous window. Superseded files move to the
// obsolete list and are unlinked only by DropObsolete after a
// checkpoint manifest stops referencing them. The caller must hold the
// relation layer's content write lock.
func (d *Disk) Compact() error {
	if len(d.tables) == 0 {
		return nil
	}
	acted := false

	// Phase 1: drop whole tables below the reset floor — every record
	// is dead, so retiring the file reclaims it all for free.
	kept := d.tables[:0]
	for _, t := range d.tables {
		if t.hi <= d.resetFloor {
			d.retire(t)
			acted = true
			continue
		}
		kept = append(kept, t)
	}
	d.tables = kept

	// Phase 2: pick this round's merge run.
	lo, hi := 0, 0
	switch {
	case d.deadHeavy():
		// Tombstones dominate: only a full rewrite visits every dead
		// slot, and it resets the tombstone map in one stroke.
		lo, hi = 0, len(d.tables)
	default:
		lo, hi = d.pickTieredRun()
		if hi == lo && len(d.tables) > compactionMaxTables {
			lo, hi = d.smallestWindow(compactionMinRun)
		}
	}

	// Phase 3: merge tables[lo:hi) into one, dropping dead records.
	if hi-lo >= 2 {
		acted = true
		run := d.tables[lo:hi]
		slotLo, slotHi := run[0].lo, run[len(run)-1].hi
		var entries []SSEntry
		for _, t := range run {
			_, err := t.scan(t.lo, t.hi, func(si int, enc string, tuple []value.Value) bool {
				if si >= d.resetFloor && !d.dead[si] {
					entries = append(entries, SSEntry{Si: si, Enc: enc, Tuple: tuple})
				}
				return true
			})
			if err != nil {
				return err
			}
		}
		var merged *ssTable
		if len(entries) > 0 {
			name := fmt.Sprintf("r%d-g%d.sst", d.relID, d.nextGen)
			d.nextGen++
			t, err := writeSSTable(d.dir, name, entries, slotLo, slotHi, d.cache)
			if err != nil {
				return err
			}
			merged = t
			if fi, err := t.f.Stat(); err == nil {
				mCompactionBytes.Add(fi.Size())
			}
		}
		mCompactionTables.Add(int64(len(run)))
		for _, t := range run {
			d.retire(t)
		}
		next := make([]*ssTable, 0, len(d.tables)-len(run)+1)
		next = append(next, d.tables[:lo]...)
		if merged != nil {
			next = append(next, merged)
		}
		next = append(next, d.tables[hi:]...)
		d.tables = next
		// Tombstones inside the merged range are materialized now — the
		// rewrite dropped those records from disk.
		for si := range d.dead {
			if si >= slotLo && si < slotHi {
				delete(d.dead, si)
			}
		}
	}
	if acted {
		mCompactions.Inc()
	}
	return nil
}

// retire closes a superseded table (evicting its cached blocks) and
// queues it for the obsolete-file GC. The file itself stays on disk:
// the live manifest may still reference it, and recovery must be able
// to reopen it until a newer manifest commits without it.
func (d *Disk) retire(t *ssTable) {
	t.close()
	d.obsolete = append(d.obsolete, t)
}

// Obsolete returns the names of files superseded by compaction since
// the last checkpoint; the checkpoint unlinks them (DropObsolete) once
// the new manifest no longer references them.
func (d *Disk) Obsolete() []string {
	names := make([]string, 0, len(d.obsolete))
	for _, t := range d.obsolete {
		names = append(names, t.name)
	}
	return names
}

// DropObsolete unlinks superseded files — the GC policy's only delete
// path. A file survives the sweep if the just-committed manifest still
// references it (referenced, by name) or an in-flight read still pins
// the table; survivors stay queued for the next checkpoint. Under the
// content-lock discipline neither guard should ever fire (compaction
// and checkpoints exclude readers), but an unlink is unrecoverable, so
// the policy is enforced here rather than assumed.
func (d *Disk) DropObsolete(referenced map[string]bool) {
	kept := d.obsolete[:0]
	for _, t := range d.obsolete {
		if referenced[t.name] || t.pins.Load() != 0 {
			kept = append(kept, t)
			continue
		}
		os.Remove(filepath.Join(d.dir, t.name))
	}
	d.obsolete = kept
}

// Costs implements Backend. ScanTuple stays the static disk estimate
// (scans bypass the block cache by design), but Probe is learned: it
// blends the cold probe cost toward the in-memory cost by the measured
// block-cache hit rate, so the estimator's memory-vs-disk pricing
// tracks what probes actually pay. Plan shape never reads this (see
// CostProfile); only shard balancing and the estimator's cost totals
// do, both counter-invisible.
func (d *Disk) Costs() CostProfile {
	c := diskCosts
	if rate, ok := d.cacheHitRate.load(); ok {
		// A warm probe still pays bloom checks and segment decoding on
		// top of the memory backend's map hit.
		const warmProbe = 2
		c.Probe = rate*warmProbe + (1-rate)*diskCosts.Probe
	}
	return c
}

// CacheHitRate returns the EWMA block-cache hit fraction of this
// relation's point reads, and whether any read has been observed.
func (d *Disk) CacheHitRate() (float64, bool) { return d.cacheHitRate.load() }

// MeasuredCosts returns the observed per-tuple scan and per-probe
// latencies in nanoseconds (0 until observed) — the learned complement
// to the static profile, surfaced through statistics for monitoring.
func (d *Disk) MeasuredCosts() (scanTupleNs, probeNs float64) {
	return d.scanTupleNanos.load(), d.probeNanos.load()
}

// BloomNegatives returns how many key probes the bloom filters answered
// without any file I/O.
func (d *Disk) BloomNegatives() uint64 { return atomic.LoadUint64(&d.bloomNegSkipped) }

// TableCount returns the number of SSTable files currently serving
// reads.
func (d *Disk) TableCount() int { return len(d.tables) }

// Close implements Backend.
func (d *Disk) Close() error {
	var err error
	for _, t := range d.tables {
		if cerr := t.close(); err == nil {
			err = cerr
		}
	}
	d.tables = nil
	return err
}

// atomicEWMA is a lock-free exponentially weighted moving average
// (alpha 1/8), readable concurrently with single-writer updates.
type atomicEWMA struct{ bits atomic.Uint64 }

func (e *atomicEWMA) observe(v float64) {
	old := e.load()
	if old == 0 {
		e.store(v)
		return
	}
	e.store(old + (v-old)/8)
}

func (e *atomicEWMA) load() float64 {
	return math.Float64frombits(e.bits.Load())
}

func (e *atomicEWMA) store(v float64) { e.bits.Store(math.Float64bits(v)) }

// atomicRate is an atomicEWMA whose observations legitimately include
// zero (a cache miss is 0.0), so "unset" needs its own flag instead of
// the zero value. Concurrent observers race benignly: each
// read-modify-write is atomic and a lost update only drops one sample
// from the average.
type atomicRate struct {
	bits   atomic.Uint64
	primed atomic.Bool
}

func (e *atomicRate) observe(v float64) {
	if e.primed.CompareAndSwap(false, true) {
		e.bits.Store(math.Float64bits(v))
		return
	}
	old := math.Float64frombits(e.bits.Load())
	e.bits.Store(math.Float64bits(old + (v-old)/8))
}

func (e *atomicRate) load() (float64, bool) {
	if !e.primed.Load() {
		return 0, false
	}
	return math.Float64frombits(e.bits.Load()), true
}
