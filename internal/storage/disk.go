package storage

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
	"time"

	"pascalr/internal/value"
)

// memEntry is one memtable slot: slot index memBase+position.
type memEntry struct {
	enc   string
	tuple []value.Value
	live  bool
}

// Disk is the LSM-ish backend: appends land in a slot-ordered in-memory
// memtable; when it fills, the live entries flush to an immutable
// SSTable file covering the memtable's slot range. Tables therefore
// have disjoint, ascending slot ranges, and the merging read path is a
// walk over tables-then-memtable in range order — exactly the
// slot-ordered scan the engine consumes, bit-identical to the memory
// backend's.
//
// Deletes of table-resident slots land in the dead set (tombstones);
// the := assignment raises resetFloor instead (every slot below it is
// dead), so neither touches the immutable files. Compaction rewrites
// tables dropping dead and below-floor records; superseded files move
// to the obsolete list and are unlinked only after the next checkpoint
// manifest stops referencing them.
//
// Like every backend, Disk is unsynchronized: the relation layer's
// content lock serializes access (compaction runs under an exclusive
// section scheduled on the database's async executor).
type Disk struct {
	dir   string
	relID int
	opts  Options

	tables     []*ssTable   // ascending, disjoint slot ranges
	dead       map[int]bool // table-resident tombstones
	resetFloor int          // every slot < resetFloor is dead

	mem      []memEntry
	memBase  int
	memByKey map[string]int // encoded key -> memtable position (newest)

	memLive   int // live entries in the memtable
	tableLive int // live (non-dead, above-floor) records in tables

	nextGen  int      // SSTable file-name generation counter
	obsolete []string // files superseded since the last checkpoint

	// Measured access latencies (EWMA nanoseconds), for observability
	// and the cost model's learned per-backend profile. Sampled, not
	// exhaustive: one timing per scan, one per sampled probe.
	scanTupleNanos  atomicEWMA
	probeNanos      atomicEWMA
	probeCount      uint64
	bloomNegSkipped uint64 // probes answered "absent" by filters alone
}

// DiskTableMeta is the per-relation durable state a checkpoint manifest
// records and OpenDisk restores.
type DiskTableMeta struct {
	SlotSpan   int
	ResetFloor int
	NextGen    int
	Tables     []string
	Dead       []int
	Live       int
}

// NewDisk creates an empty disk backend writing its files into dir.
func NewDisk(dir string, relID int, opts Options) *Disk {
	return &Disk{
		dir:      dir,
		relID:    relID,
		opts:     opts.withDefaults(),
		dead:     make(map[int]bool),
		memByKey: make(map[string]int),
	}
}

// OpenDisk reconstitutes a disk backend from checkpoint metadata,
// opening the listed SSTable files (loading their bloom filters and
// sparse indexes).
func OpenDisk(dir string, relID int, opts Options, meta DiskTableMeta) (*Disk, error) {
	d := NewDisk(dir, relID, opts)
	d.resetFloor = meta.ResetFloor
	d.nextGen = meta.NextGen
	d.tableLive = meta.Live
	for _, name := range meta.Tables {
		t, err := openSSTable(filepath.Join(dir, name))
		if err != nil {
			d.Close()
			return nil, err
		}
		d.tables = append(d.tables, t)
	}
	sort.Slice(d.tables, func(i, j int) bool { return d.tables[i].lo < d.tables[j].lo })
	for _, si := range meta.Dead {
		d.dead[si] = true
	}
	d.memBase = meta.SlotSpan
	return d, nil
}

// Meta snapshots the durable state for a checkpoint manifest. The
// memtable must be empty (Flush first).
func (d *Disk) Meta() DiskTableMeta {
	m := DiskTableMeta{
		SlotSpan:   d.SlotSpan(),
		ResetFloor: d.resetFloor,
		NextGen:    d.nextGen,
		Live:       d.tableLive,
	}
	for _, t := range d.tables {
		m.Tables = append(m.Tables, t.name)
	}
	m.Dead = make([]int, 0, len(d.dead))
	for si := range d.dead {
		m.Dead = append(m.Dead, si)
	}
	sort.Ints(m.Dead)
	return m
}

// SlotSpan implements Backend.
func (d *Disk) SlotSpan() int { return d.memBase + len(d.mem) }

// Get implements Backend.
func (d *Disk) Get(si int) ([]value.Value, bool, error) {
	if si < 0 || si >= d.SlotSpan() {
		return nil, false, nil
	}
	if si >= d.memBase {
		e := &d.mem[si-d.memBase]
		if !e.live {
			return nil, false, nil
		}
		return e.tuple, true, nil
	}
	if si < d.resetFloor || d.dead[si] {
		return nil, false, nil
	}
	t := d.tableFor(si)
	if t == nil {
		return nil, false, nil
	}
	mSSTableReads.Inc()
	return t.get(si)
}

// tableFor returns the table whose range covers si, or nil.
func (d *Disk) tableFor(si int) *ssTable {
	i := sort.Search(len(d.tables), func(i int) bool { return d.tables[i].hi > si })
	if i < len(d.tables) && d.tables[i].lo <= si {
		return d.tables[i]
	}
	return nil
}

// Scan implements Backend: tables in range order, then the memtable —
// ascending slot order throughout.
func (d *Disk) Scan(lo, hi int, fn func(si int, tuple []value.Value) bool) error {
	if lo < 0 {
		lo = 0
	}
	if span := d.SlotSpan(); hi > span {
		hi = span
	}
	if lo >= hi {
		return nil
	}
	start := time.Now()
	visited := 0
	defer func() {
		if visited > 0 {
			d.scanTupleNanos.observe(float64(time.Since(start).Nanoseconds()) / float64(visited))
		}
	}()
	for _, t := range d.tables {
		if t.hi <= lo || t.hi <= d.resetFloor {
			continue
		}
		if t.lo >= hi {
			break
		}
		mSSTableReads.Inc()
		keep, err := t.scan(lo, hi, func(si int, _ string, tuple []value.Value) bool {
			if si < d.resetFloor || d.dead[si] {
				return true
			}
			visited++
			return fn(si, tuple)
		})
		if err != nil {
			return err
		}
		if !keep {
			return nil
		}
	}
	for i := range d.mem {
		si := d.memBase + i
		if si >= hi {
			break
		}
		if si < lo || !d.mem[i].live {
			continue
		}
		visited++
		if !fn(si, d.mem[i].tuple) {
			return nil
		}
	}
	return nil
}

// LookupKey implements Backend: memtable first (its key map tracks the
// newest entry per key, dead entries masking older table occurrences),
// then tables newest-first — the first table containing the key decides,
// because a key can only be re-inserted after a delete, and that delete
// tombstoned every older occurrence.
func (d *Disk) LookupKey(enc string) (int, bool) {
	if i, ok := d.memByKey[enc]; ok {
		if !d.mem[i].live {
			return 0, false
		}
		return d.memBase + i, true
	}
	sampled := atomic.AddUint64(&d.probeCount, 1)%16 == 0
	var start time.Time
	if sampled {
		start = time.Now()
	}
	for i := len(d.tables) - 1; i >= 0; i-- {
		t := d.tables[i]
		if t.hi <= d.resetFloor {
			break // this and every older table lie wholly below the floor
		}
		if !t.filter.mayContain(enc) {
			atomic.AddUint64(&d.bloomNegSkipped, 1)
			mBloomSkips.Inc()
			continue
		}
		mBloomHits.Inc()
		mSSTableReads.Inc()
		si, ok, err := t.lookupKey(enc)
		if err != nil {
			// A probe has no error channel (the relation layer's Lookup
			// contract predates I/O): treat unreadable as absent. Scans
			// surface the corruption with a real error.
			return 0, false
		}
		if ok {
			if sampled {
				d.probeNanos.observe(float64(time.Since(start).Nanoseconds()))
			}
			if si < d.resetFloor || d.dead[si] {
				return 0, false
			}
			return si, true
		}
	}
	if sampled {
		d.probeNanos.observe(float64(time.Since(start).Nanoseconds()))
	}
	return 0, false
}

// Append implements Backend, flushing the memtable to an SSTable when
// it reaches the configured entry budget.
func (d *Disk) Append(enc string, tuple []value.Value) (int, error) {
	prev, hadPrev := d.memByKey[enc]
	d.mem = append(d.mem, memEntry{enc: enc, tuple: tuple, live: true})
	i := len(d.mem) - 1
	d.memByKey[enc] = i
	d.memLive++
	si := d.memBase + i
	if len(d.mem) >= d.opts.MemtableEntries {
		if err := d.Flush(); err != nil {
			// The caller treats the append as failed and publishes
			// nothing (no live count, no index entries), so the entry
			// must not stay visible here either: roll the memtable back
			// to its pre-append state (a failed Flush mutated nothing).
			d.mem = d.mem[:i]
			if hadPrev {
				d.memByKey[enc] = prev
			} else {
				delete(d.memByKey, enc)
			}
			d.memLive--
			return 0, err
		}
	}
	return si, nil
}

// Delete implements Backend.
func (d *Disk) Delete(si int, enc string) error {
	if si >= d.memBase {
		i := si - d.memBase
		if i < len(d.mem) && d.mem[i].live {
			d.mem[i].live = false
			d.mem[i].tuple = nil
			d.memLive--
			// The key map entry stays as a tombstone: it masks any older
			// table-resident occurrence of the same key.
		}
		return nil
	}
	if si >= d.resetFloor && !d.dead[si] {
		d.dead[si] = true
		d.tableLive--
	}
	return nil
}

// Reset implements Backend: raise the floor instead of touching the
// immutable files; compaction reclaims the space later.
func (d *Disk) Reset() error {
	d.resetFloor = d.SlotSpan()
	for i := range d.mem {
		if d.mem[i].live {
			d.mem[i].live = false
			d.mem[i].tuple = nil
		}
	}
	d.memLive = 0
	d.tableLive = 0
	d.dead = make(map[int]bool)
	return nil
}

// Flush spills the memtable's live entries to a new SSTable covering
// the memtable's slot range and advances the base. A memtable with no
// live entries advances the base without writing a file. Idempotent
// per fill: replaying the same appends re-flushes at the same point
// with the same contents.
func (d *Disk) Flush() error {
	n := len(d.mem)
	if n == 0 {
		return nil
	}
	var entries []SSEntry
	for i := range d.mem {
		if d.mem[i].live {
			entries = append(entries, SSEntry{Si: d.memBase + i, Enc: d.mem[i].enc, Tuple: d.mem[i].tuple})
		}
	}
	if len(entries) > 0 {
		name := fmt.Sprintf("r%d-g%d.sst", d.relID, d.nextGen)
		d.nextGen++
		t, err := writeSSTable(d.dir, name, entries, d.memBase, d.memBase+n)
		if err != nil {
			return err
		}
		d.tables = append(d.tables, t)
		d.tableLive += len(entries)
		mMemtableSpills.Inc()
	}
	d.memBase += n
	d.mem = nil
	d.memByKey = make(map[string]int)
	d.memLive = 0
	return nil
}

// NeedsCompaction reports whether rewriting the tables would reclaim a
// meaningful fraction of their records: more than half of the
// table-resident records are dead (tombstoned or below the reset
// floor), or several tables could merge into one.
func (d *Disk) NeedsCompaction() bool {
	records := 0
	belowFloor := 0
	for _, t := range d.tables {
		records += t.count
		if t.hi <= d.resetFloor {
			belowFloor += t.count
		}
	}
	if records == 0 {
		return false
	}
	deadRecords := len(d.dead) + belowFloor
	return deadRecords*2 > records || len(d.tables) > 8
}

// Compact merges every table into one (dropping dead and below-floor
// records), moving the superseded files to the obsolete list. The
// caller must hold the relation layer's content write lock.
func (d *Disk) Compact() error {
	if len(d.tables) == 0 {
		return nil
	}
	var entries []SSEntry
	lo, hi := d.tables[0].lo, d.tables[len(d.tables)-1].hi
	for _, t := range d.tables {
		if t.hi <= d.resetFloor {
			continue
		}
		_, err := t.scan(t.lo, t.hi, func(si int, enc string, tuple []value.Value) bool {
			if si >= d.resetFloor && !d.dead[si] {
				entries = append(entries, SSEntry{Si: si, Enc: enc, Tuple: tuple})
			}
			return true
		})
		if err != nil {
			return err
		}
	}
	var merged []*ssTable
	if len(entries) > 0 {
		name := fmt.Sprintf("r%d-g%d.sst", d.relID, d.nextGen)
		d.nextGen++
		t, err := writeSSTable(d.dir, name, entries, lo, hi)
		if err != nil {
			return err
		}
		merged = append(merged, t)
		if fi, err := t.f.Stat(); err == nil {
			mCompactionBytes.Add(fi.Size())
		}
	}
	mCompactions.Inc()
	for _, t := range d.tables {
		d.obsolete = append(d.obsolete, t.name)
		t.close()
	}
	d.tables = merged
	d.dead = make(map[int]bool)
	d.tableLive = len(entries)
	return nil
}

// Obsolete returns files superseded by flush/compaction since the last
// checkpoint; the checkpoint unlinks them once the new manifest no
// longer references them.
func (d *Disk) Obsolete() []string { return d.obsolete }

// DropObsolete unlinks the superseded files (post-checkpoint).
func (d *Disk) DropObsolete() {
	for _, name := range d.obsolete {
		os.Remove(filepath.Join(d.dir, name))
	}
	d.obsolete = nil
}

// Costs implements Backend. The profile is the static disk profile; the
// measured EWMA latencies are exposed separately (MeasuredCosts) so the
// planner's decisions stay deterministic across runs.
func (d *Disk) Costs() CostProfile { return diskCosts }

// MeasuredCosts returns the observed per-tuple scan and per-probe
// latencies in nanoseconds (0 until observed) — the learned complement
// to the static profile, surfaced through statistics for monitoring.
func (d *Disk) MeasuredCosts() (scanTupleNs, probeNs float64) {
	return d.scanTupleNanos.load(), d.probeNanos.load()
}

// BloomNegatives returns how many key probes the bloom filters answered
// without any file I/O.
func (d *Disk) BloomNegatives() uint64 { return atomic.LoadUint64(&d.bloomNegSkipped) }

// TableCount returns the number of SSTable files currently serving
// reads.
func (d *Disk) TableCount() int { return len(d.tables) }

// Close implements Backend.
func (d *Disk) Close() error {
	var err error
	for _, t := range d.tables {
		if cerr := t.close(); err == nil {
			err = cerr
		}
	}
	d.tables = nil
	return err
}

// atomicEWMA is a lock-free exponentially weighted moving average
// (alpha 1/8), readable concurrently with single-writer updates.
type atomicEWMA struct{ bits atomic.Uint64 }

func (e *atomicEWMA) observe(v float64) {
	old := e.load()
	if old == 0 {
		e.store(v)
		return
	}
	e.store(old + (v-old)/8)
}

func (e *atomicEWMA) load() float64 {
	return math.Float64frombits(e.bits.Load())
}

func (e *atomicEWMA) store(v float64) { e.bits.Store(math.Float64bits(v)) }
