// Package storage is the durable storage subsystem behind the relation
// layer: a pluggable slot-storage backend interface, a CRC-checksummed
// write-ahead log with configurable fsync policy, and an LSM-ish disk
// tier (sorted in-memory memtable flushing to immutable SSTable files
// with bloom filters and sparse indexes).
//
// # Backend contract
//
// A Backend stores the slots of one relation. Slot indexes are handed
// out by Append in strictly ascending order and are never reused: a
// slot that dies (Delete, Reset) stays dead forever. That append-only
// discipline is what makes the relation layer's reference staleness
// check (per-slot generation counters) collapse to "live slot ==
// generation zero", and it is what lets the disk tier keep immutable
// SSTable files whose slot ranges never overlap.
//
// Backends are NOT internally synchronized. The relation layer
// serializes mutators under its database-wide content write lock and
// readers under the content read lock, exactly as it always did for the
// in-memory slot array.
//
// # Durability
//
// The memory backend is the default and is volatile — it is today's
// in-memory slot storage behind the interface. The disk backend keeps a
// memtable of recent appends and spills immutable SSTables; together
// with the WAL (wal.go) and the checkpoint manifest (manifest.go) the
// relation layer composes them into a crash-recoverable database.
package storage

import (
	"runtime"

	"pascalr/internal/value"
)

// Backend stores the slots of one relation: an append-only array of
// (tuple, live) entries plus a key directory. See the package comment
// for the synchronization and slot-reuse contract.
type Backend interface {
	// SlotSpan returns the exclusive upper bound of slot indexes — the
	// range Scan shards partition.
	SlotSpan() int

	// Get returns the tuple stored at slot si and whether the slot is
	// live. Dead or never-allocated slots return (nil, false, nil).
	// The returned tuple must not be modified or retained across
	// mutations.
	Get(si int) (tuple []value.Value, live bool, err error)

	// Scan calls fn for every live slot in [lo, hi) in ascending slot
	// order, until fn returns false. Bounds are clamped to the slot
	// span.
	Scan(lo, hi int, fn func(si int, tuple []value.Value) bool) error

	// LookupKey returns the live slot holding the tuple whose encoded
	// primary key is enc.
	LookupKey(enc string) (si int, ok bool)

	// Append stores a new live tuple under the encoded key enc and
	// returns its slot index (== the previous SlotSpan). The caller has
	// already checked that enc is not present. The backend takes
	// ownership of the tuple slice.
	Append(enc string, tuple []value.Value) (si int, err error)

	// Delete kills slot si, which currently holds the encoded key enc.
	Delete(si int, enc string) error

	// Reset kills every live slot (the := assignment). Slot indexes are
	// not reused: the next Append continues from the current span.
	Reset() error

	// Costs returns the backend's access-cost profile.
	Costs() CostProfile

	// Close releases resources (open file handles). The backend is
	// unusable afterwards.
	Close() error
}

// CostProfile prices a backend's primitive accesses relative to an
// in-memory slot read (== 1.0). The statistics layer carries it so
// shard balancing can budget more parallelism for expensive scans; plan
// *shape* deliberately does not depend on it — permanent and transient
// index structures are RAM-resident on every backend, so the optimal
// plan is backend-invariant and the differential test matrix can demand
// bit-identical counters across backends.
type CostProfile struct {
	// ScanTuple is the relative cost of visiting one tuple in a scan.
	ScanTuple float64
	// Probe is the relative cost of one key lookup.
	Probe float64
}

// memoryCosts is the unit profile of the in-memory backend.
var memoryCosts = CostProfile{ScanTuple: 1, Probe: 1}

// diskCosts is the static profile of the SSTable-backed tier: scanning
// decodes records from (page-cached) files, probing pays bloom checks
// plus a sparse-index segment read.
var diskCosts = CostProfile{ScanTuple: 8, Probe: 16}

// FsyncPolicy says when the WAL fsyncs.
type FsyncPolicy int

const (
	// SyncAlways fsyncs after every appended record — full durability,
	// one fsync per effective mutation.
	SyncAlways FsyncPolicy = iota
	// SyncNever leaves flushing to the OS — contents are crash-
	// consistent (the CRC drops a torn tail) but the tail of recent
	// mutations may be lost. Tests and bulk loads use it.
	SyncNever
)

// Options configures a durable database's storage.
type Options struct {
	// Fsync is the WAL durability policy. Default SyncAlways.
	Fsync FsyncPolicy
	// MemtableEntries is the number of memtable entries (live or dead)
	// that triggers a flush to an SSTable. Default 4096; tests use tiny
	// values to force spills.
	MemtableEntries int
	// CheckpointWALBytes is the WAL size that triggers a background
	// checkpoint, bounding replay time. Default 4 MiB; 0 keeps the
	// default, a negative value disables automatic checkpoints.
	CheckpointWALBytes int64
	// BlockCacheBytes is the byte budget of the shared SSTable block
	// cache fronting point reads. Default 8 MiB; 0 keeps the default, a
	// negative value disables the cache.
	BlockCacheBytes int64
	// ReplayWorkers is the worker count for parallel WAL replay on open.
	// Replay partitions mutation records by relation, so workers beyond
	// the number of mutated relations sit idle. Default GOMAXPROCS; 0
	// keeps the default, a negative value forces serial replay.
	ReplayWorkers int
}

// withDefaults fills unset options.
func (o Options) withDefaults() Options {
	if o.MemtableEntries <= 0 {
		o.MemtableEntries = 4096
	}
	if o.CheckpointWALBytes == 0 {
		o.CheckpointWALBytes = 4 << 20
	}
	if o.BlockCacheBytes == 0 {
		o.BlockCacheBytes = 8 << 20
	}
	if o.ReplayWorkers == 0 {
		o.ReplayWorkers = runtime.GOMAXPROCS(0)
	}
	return o
}

// Defaults returns o with unset fields filled in; the relation layer
// normalizes its options once through this.
func (o Options) Defaults() Options { return o.withDefaults() }
