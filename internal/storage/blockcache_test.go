package storage

import (
	"fmt"
	"testing"

	"pascalr/internal/value"
)

func bc(t *testing.T, budget int64) *BlockCache {
	t.Helper()
	c := NewBlockCache(budget)
	if c == nil {
		t.Fatalf("NewBlockCache(%d) = nil", budget)
	}
	return c
}

func TestBlockCacheLRUEviction(t *testing.T) {
	c := bc(t, 100)
	blk := func(i int) []byte { return make([]byte, 20) }
	for i := 0; i < 5; i++ { // fills the budget exactly
		c.Put(1, int64(i), blk(i))
	}
	if c.Used() != 100 || c.Len() != 5 {
		t.Fatalf("used=%d len=%d after fill", c.Used(), c.Len())
	}
	// Touch block 0 so it is MRU, then overflow: block 1 (now LRU) must
	// go, block 0 must stay.
	if _, ok := c.Get(1, 0); !ok {
		t.Fatal("block 0 missing before eviction")
	}
	c.Put(1, 5, blk(5))
	if _, ok := c.Get(1, 1); ok {
		t.Fatal("LRU block 1 survived eviction")
	}
	if _, ok := c.Get(1, 0); !ok {
		t.Fatal("MRU block 0 evicted")
	}
	if c.Used() > 100 {
		t.Fatalf("used=%d exceeds budget", c.Used())
	}
	if _, _, ev := c.Stats(); ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
}

func TestBlockCacheOversizedNotCached(t *testing.T) {
	c := bc(t, 100)
	c.Put(1, 0, make([]byte, 26)) // > budget/4
	if c.Len() != 0 {
		t.Fatal("oversized block was cached")
	}
	c.Put(1, 0, make([]byte, 25)) // == budget/4 is fine
	if c.Len() != 1 {
		t.Fatal("quarter-budget block not cached")
	}
}

func TestBlockCacheEvictFile(t *testing.T) {
	c := bc(t, 1000)
	for f := uint64(1); f <= 3; f++ {
		for off := int64(0); off < 4; off++ {
			c.Put(f, off, []byte(fmt.Sprintf("f%d-o%d", f, off)))
		}
	}
	c.EvictFile(2)
	for off := int64(0); off < 4; off++ {
		if _, ok := c.Get(2, off); ok {
			t.Fatalf("file 2 block %d survived EvictFile", off)
		}
		if _, ok := c.Get(1, off); !ok {
			t.Fatalf("file 1 block %d lost to EvictFile(2)", off)
		}
	}
	if c.Len() != 8 {
		t.Fatalf("len=%d after EvictFile, want 8", c.Len())
	}
}

func TestBlockCacheNilSafe(t *testing.T) {
	var c *BlockCache // == NewBlockCache(-1)
	if NewBlockCache(-1) != nil || NewBlockCache(0) != nil {
		t.Fatal("non-positive budget must return the nil cache")
	}
	c.Put(1, 0, []byte("x"))
	if _, ok := c.Get(1, 0); ok {
		t.Fatal("nil cache returned a hit")
	}
	c.EvictFile(1)
	if c.Used() != 0 || c.Len() != 0 {
		t.Fatal("nil cache reports residency")
	}
}

// TestDiskBlockCachePointReads verifies the wiring end to end: repeated
// point reads hit the cache, scans bypass it, the learned hit rate
// pulls the probe cost toward memory, and closing the backend leaves
// nothing resident.
func TestDiskBlockCachePointReads(t *testing.T) {
	cache := bc(t, 1<<20)
	d := NewDisk(t.TempDir(), 0, Options{MemtableEntries: 8, Fsync: SyncNever}, cache)
	defer d.Close()
	const n = 64
	slots := make([]int, n)
	for i := 0; i < n; i++ {
		si, err := d.Append(ikey(i), ituple(i))
		if err != nil {
			t.Fatal(err)
		}
		slots[i] = si
	}
	if err := d.Flush(); err != nil { // everything table-resident
		t.Fatal(err)
	}

	cold := d.Costs()
	if cold.Probe != diskCosts.Probe {
		t.Fatalf("unobserved probe cost = %v, want static %v", cold.Probe, diskCosts.Probe)
	}
	for i := 0; i < n; i++ { // first pass: misses populate both read paths
		if _, ok, err := d.Get(slots[i]); err != nil || !ok {
			t.Fatalf("get(%d) = %v %v", slots[i], ok, err)
		}
		if _, ok := d.LookupKey(ikey(i)); !ok {
			t.Fatalf("cold lookup(%d) missed", i)
		}
	}
	h0, m0, _ := cache.Stats()
	if m0 == 0 {
		t.Fatal("cold pass recorded no misses")
	}
	for pass := 0; pass < 4; pass++ { // warm passes: all hits
		for i := 0; i < n; i++ {
			if _, ok, err := d.Get(slots[i]); err != nil || !ok {
				t.Fatalf("warm get(%d) = %v %v", slots[i], ok, err)
			}
			if _, ok := d.LookupKey(ikey(i)); !ok {
				t.Fatalf("warm lookup(%d) missed", i)
			}
		}
	}
	h1, m1, _ := cache.Stats()
	if m1 != m0 {
		t.Fatalf("warm passes missed: %d -> %d", m0, m1)
	}
	if h1 <= h0 {
		t.Fatalf("warm passes did not hit: %d -> %d", h0, h1)
	}

	// The learned rate must have pulled Probe well below the static
	// cold price by now.
	warm := d.Costs()
	if warm.Probe >= cold.Probe/2 {
		t.Fatalf("warm probe cost %v not below half the cold %v", warm.Probe, cold.Probe)
	}
	if rate, ok := d.CacheHitRate(); !ok || rate < 0.5 {
		t.Fatalf("hit rate = %v %v after warm passes", rate, ok)
	}

	// Scans bypass the cache: a full sweep must not change residency.
	lenBefore := cache.Len()
	if err := d.Scan(0, d.SlotSpan(), func(int, []value.Value) bool { return true }); err != nil {
		t.Fatal(err)
	}
	if cache.Len() != lenBefore {
		t.Fatalf("scan changed cache residency %d -> %d", lenBefore, cache.Len())
	}

	// Closing the backend closes its tables, which evict their blocks.
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 0 {
		t.Fatalf("%d blocks resident after Close", cache.Len())
	}
}
