package storage

import "pascalr/internal/obs"

// Storage metrics. Every hook sits on a path that already holds the
// relation layer's content lock (WAL appends, flush, compaction) or is
// a plain atomic increment beside an existing one (bloom counters), so
// none of them introduces new synchronization.
var (
	mWALAppends = obs.GetCounter("pascal_storage_wal_appends_total",
		"Records appended to the write-ahead log")
	mWALBytes = obs.GetCounter("pascal_storage_wal_bytes_total",
		"Framed bytes written to the write-ahead log")
	mWALFsyncs = obs.GetCounter("pascal_storage_wal_fsyncs_total",
		"fsync calls issued by the write-ahead log")
	mWALFsyncLatency = obs.GetHistogram("pascal_storage_wal_fsync_seconds",
		"Write-ahead log fsync latency")
	mMemtableSpills = obs.GetCounter("pascal_storage_memtable_spills_total",
		"Memtable flushes that wrote a new SSTable")
	mSSTableReads = obs.GetCounter("pascal_storage_sstable_reads_total",
		"SSTable accesses (point gets, key probes, and per-table scans)")
	mBloomHits = obs.GetCounter("pascal_storage_bloom_hits_total",
		"Key probes the bloom filter passed through to the table")
	mBloomSkips = obs.GetCounter("pascal_storage_bloom_skips_total",
		"Key probes the bloom filter answered negatively without I/O")
	mCompactions = obs.GetCounter("pascal_storage_compactions_total",
		"SSTable compaction runs")
	mCompactionBytes = obs.GetCounter("pascal_storage_compaction_bytes_total",
		"Bytes written by SSTable compactions")
	mCompactionTables = obs.GetCounter("pascal_storage_compaction_tables_total",
		"SSTable files consumed as compaction inputs")
	mBlockCacheHits = obs.GetCounter("pascal_storage_block_cache_hits_total",
		"Point-read segments served from the block cache")
	mBlockCacheMisses = obs.GetCounter("pascal_storage_block_cache_misses_total",
		"Point-read segments that missed the block cache and paid file I/O")
	mBlockCacheEvictions = obs.GetCounter("pascal_storage_block_cache_evictions_total",
		"Blocks evicted from the block cache to hold the byte budget")
	mGroupCommitBatches = obs.GetCounter("pascal_storage_group_commit_batches_total",
		"Group-commit fsync batches (each covers >= 1 appended record)")
)
