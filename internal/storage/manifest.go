package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"pascalr/internal/protocol"
	"pascalr/internal/schema"
)

// ManifestName is the checkpoint manifest's file name inside a database
// directory.
const ManifestName = "MANIFEST"

// Manifest is one checkpoint: the complete durable state of a database
// at a log sequence number. Recovery loads it, then replays only the
// WAL records with Seq > LastSeq — the checkpoint bounds replay time.
// It is written tmp + rename, so a crashed checkpoint leaves the
// previous manifest (and the full WAL) intact.
type Manifest struct {
	LastSeq uint64
	Types   []*schema.Type // catalog types, declaration order
	Rels    []RelManifest  // relations, creation order (position == id)
}

// RelManifest is one relation's durable state: its schema, the disk
// tier's table metadata, the permanent-index columns, and the
// serialized live statistics (so recovery does not reset TableStats to
// empty).
type RelManifest struct {
	Schema  *schema.RelSchema
	Disk    DiskTableMeta
	Indexes []string // indexed columns, creation order
	Stats   []byte   // opaque stats.Marshal blob
}

const manifestVersion = 1

// WriteManifest atomically replaces the manifest in dir.
func WriteManifest(dir string, m *Manifest) error {
	w := protocol.NewWriter()
	w.Uvarint(manifestVersion)
	w.Uvarint(m.LastSeq)
	w.Uvarint(uint64(len(m.Types)))
	for _, t := range m.Types {
		if err := encodeType(w, t); err != nil {
			return err
		}
	}
	w.Uvarint(uint64(len(m.Rels)))
	for _, r := range m.Rels {
		if err := encodeRelSchema(w, r.Schema); err != nil {
			return err
		}
		w.Uvarint(uint64(r.Disk.SlotSpan))
		w.Uvarint(uint64(r.Disk.ResetFloor))
		w.Uvarint(uint64(r.Disk.NextGen))
		w.Uvarint(uint64(r.Disk.Live))
		w.Strings(r.Disk.Tables)
		w.Uvarint(uint64(len(r.Disk.Dead)))
		prev := 0
		for _, si := range r.Disk.Dead { // sorted; delta-encoded
			w.Uvarint(uint64(si - prev))
			prev = si
		}
		w.Strings(r.Indexes)
		w.String(string(r.Stats))
	}
	// Durable write (file fsync, rename, directory fsync): the caller
	// truncates the WAL right after this returns, so a manifest that
	// could still vanish in a power failure would take every logged
	// record down with it.
	return writeFileDurable(filepath.Join(dir, ManifestName), appendFrame(nil, w.Bytes()))
}

// ReadManifest loads the manifest from dir; ok is false when none
// exists (a fresh database directory).
func ReadManifest(dir string) (*Manifest, bool, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	payload, _, err := readFrame(data, 0)
	if err != nil {
		return nil, false, fmt.Errorf("storage: manifest: %w", err)
	}
	m, err := DecodeManifest(payload)
	if err != nil {
		return nil, false, fmt.Errorf("storage: manifest: %w", err)
	}
	return m, true, nil
}

// DecodeManifest parses a manifest payload.
func DecodeManifest(payload []byte) (*Manifest, error) {
	r := protocol.NewReader(payload)
	ver, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if ver != manifestVersion {
		return nil, fmt.Errorf("unsupported manifest version %d", ver)
	}
	m := &Manifest{}
	if m.LastSeq, err = r.Uvarint(); err != nil {
		return nil, err
	}
	nTypes, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if nTypes > uint64(r.Len()) {
		return nil, fmt.Errorf("type count %d exceeds manifest", nTypes)
	}
	for range nTypes {
		t, err := decodeType(r)
		if err != nil {
			return nil, err
		}
		m.Types = append(m.Types, t)
	}
	nRels, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if nRels > uint64(r.Len()) {
		return nil, fmt.Errorf("relation count %d exceeds manifest", nRels)
	}
	for range nRels {
		var rm RelManifest
		if rm.Schema, err = decodeRelSchema(r); err != nil {
			return nil, err
		}
		span, err1 := r.Uvarint()
		floor, err2 := r.Uvarint()
		gen, err3 := r.Uvarint()
		live, err4 := r.Uvarint()
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			return nil, fmt.Errorf("truncated relation metadata")
		}
		if span > 0x7FFFFFFF || floor > span || live > span {
			return nil, fmt.Errorf("inconsistent relation metadata")
		}
		rm.Disk.SlotSpan, rm.Disk.ResetFloor = int(span), int(floor)
		rm.Disk.NextGen, rm.Disk.Live = int(gen), int(live)
		if rm.Disk.Tables, err = r.Strings(); err != nil {
			return nil, err
		}
		nDead, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		if nDead > span {
			return nil, fmt.Errorf("dead count %d exceeds span", nDead)
		}
		prev := 0
		for range nDead {
			delta, err := r.Uvarint()
			if err != nil {
				return nil, err
			}
			prev += int(delta)
			if prev >= int(span) {
				return nil, fmt.Errorf("dead slot %d out of range", prev)
			}
			rm.Disk.Dead = append(rm.Disk.Dead, prev)
		}
		if rm.Indexes, err = r.Strings(); err != nil {
			return nil, err
		}
		blob, err := r.String()
		if err != nil {
			return nil, err
		}
		rm.Stats = []byte(blob)
		m.Rels = append(m.Rels, rm)
	}
	return m, nil
}

// CleanOrphans removes SSTable files in dir that no manifest relation
// references — leftovers of flushes or compactions that outran a
// checkpoint, or of checkpoints that crashed before their rename.
// Replay deterministically recreates any flush the WAL still implies.
func CleanOrphans(dir string, m *Manifest) error {
	referenced := make(map[string]bool)
	if m != nil {
		for _, r := range m.Rels {
			for _, name := range r.Disk.Tables {
				referenced[name] = true
			}
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || referenced[name] {
			continue
		}
		if strings.HasSuffix(name, ".sst") || strings.HasSuffix(name, ".tmp") {
			os.Remove(filepath.Join(dir, name))
		}
	}
	return nil
}
