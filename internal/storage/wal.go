package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// WALName is the write-ahead log's file name inside a database
// directory.
const WALName = "wal.log"

// WAL is the write-ahead log of one durable database: a single
// append-only file of framed records (record.go). The relation layer
// appends one record per effective mutation — under its content write
// lock, so the WAL needs no locking of its own — and truncates the log
// after each checkpoint. Recovery (RecoverWAL) validates the frames
// front to back and chops the file at the first torn or corrupt one:
// a record is either wholly durable or it never happened.
type WAL struct {
	f      *os.File
	path   string
	policy FsyncPolicy
	size   int64
}

// RecoverWAL opens (creating if absent) the WAL inside dir, scans it,
// and truncates any torn or corrupt tail. It returns the open log
// positioned for appends and the payloads of every valid record, in
// order.
func RecoverWAL(dir string, policy FsyncPolicy) (*WAL, [][]byte, error) {
	path := filepath.Join(dir, WALName)
	created := false
	data, err := os.ReadFile(path)
	if err != nil {
		if !os.IsNotExist(err) {
			return nil, nil, err
		}
		created = true
	}
	payloads, valid := ScanFrames(data)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, err
	}
	if created {
		// Make the new log's directory entry durable: an fsynced record
		// in a file a crash un-creates is no record at all.
		if err := syncDir(dir); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	if valid < int64(len(data)) {
		// Torn or corrupt tail: drop it so the next append extends a
		// clean log instead of burying records behind garbage.
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	if _, err := f.Seek(valid, 0); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &WAL{f: f, path: path, policy: policy, size: valid}, payloads, nil
}

// ScanFrames walks framed records from the start of data, returning
// every valid payload and the offset of the first invalid byte (==
// len(data) for a fully valid log). Everything from the first bad frame
// on is discarded — the standard WAL rule: a torn record's successors
// cannot be trusted either, because the tear may hide a half-written
// batch.
func ScanFrames(data []byte) (payloads [][]byte, valid int64) {
	off := 0
	for off < len(data) {
		payload, end, err := readFrame(data, off)
		if err != nil {
			break
		}
		payloads = append(payloads, payload)
		off = end
	}
	return payloads, int64(off)
}

// Append frames and writes one record payload, fsyncing per policy.
// Payloads beyond maxRecordSize are rejected up front: readFrame would
// refuse the oversized frame during recovery, truncating the log there
// and silently discarding every durable record after it — the writer
// must fail loudly instead (whole-relation assignments stay under the
// bound by chunking, see SplitRecord).
func (w *WAL) Append(payload []byte) error {
	if w.f == nil {
		return fmt.Errorf("storage: WAL is closed")
	}
	if len(payload) > maxRecordSize {
		return fmt.Errorf("storage: WAL record of %d bytes exceeds the %d-byte limit", len(payload), maxRecordSize)
	}
	frame := appendFrame(nil, payload)
	if _, err := w.f.Write(frame); err != nil {
		return fmt.Errorf("storage: WAL append: %w", err)
	}
	w.size += int64(len(frame))
	mWALAppends.Inc()
	mWALBytes.Add(int64(len(frame)))
	if w.policy == SyncAlways {
		start := time.Now()
		err := w.f.Sync()
		mWALFsyncs.Inc()
		mWALFsyncLatency.Observe(time.Since(start))
		if err != nil {
			return fmt.Errorf("storage: WAL fsync: %w", err)
		}
	}
	return nil
}

// Size returns the current log size in bytes — the checkpoint trigger
// consults it.
func (w *WAL) Size() int64 { return w.size }

// Path returns the log file's path.
func (w *WAL) Path() string { return w.path }

// Reset truncates the log to empty — called after a checkpoint's
// manifest rename made every logged record redundant. Sequence numbers
// keep counting; the manifest's LastSeq guards replay idempotence if
// the truncation itself is lost to a crash.
func (w *WAL) Reset() error {
	if w.f == nil {
		return fmt.Errorf("storage: WAL is closed")
	}
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	if _, err := w.f.Seek(0, 0); err != nil {
		return err
	}
	w.size = 0
	if w.policy == SyncAlways {
		return w.f.Sync()
	}
	return nil
}

// Sync forces an fsync regardless of policy (clean shutdown).
func (w *WAL) Sync() error {
	if w.f == nil {
		return nil
	}
	return w.f.Sync()
}

// Close syncs and closes the log.
func (w *WAL) Close() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}
