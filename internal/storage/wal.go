package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// WALName is the write-ahead log's file name inside a database
// directory.
const WALName = "wal.log"

// WAL is the write-ahead log of one durable database: a single
// append-only file of framed records (record.go). The relation layer
// appends one record per effective mutation — under its content write
// lock, so file writes need no locking of their own — and truncates the
// log after each checkpoint. Recovery (RecoverWAL) validates the frames
// front to back and chops the file at the first torn or corrupt one:
// a record is either wholly durable or it never happened.
//
// # Group commit
//
// Under SyncAlways, durability is split from the append: Append writes
// the frame and returns a ticket, and the writer calls WaitDurable
// AFTER releasing the content write lock. Concurrent writers therefore
// pile up in WaitDurable while the lock-holder of the moment appends;
// one of them leader-elects, issues a single fsync that covers every
// frame written so far, and releases everyone whose ticket that sync
// covers — one fsync per batch instead of one per record. A single
// writer degenerates to exactly the old behavior (one fsync per
// record); the win scales with writer concurrency.
//
// The group-commit fields below are the only WAL state touched outside
// the content write lock, so they carry their own mutex.
type WAL struct {
	f      *os.File
	path   string
	policy FsyncPolicy
	size   int64

	mu      sync.Mutex
	cond    *sync.Cond
	written Ticket // tickets handed out by Append
	synced  Ticket // highest ticket covered by a completed fsync
	syncing bool   // a leader is inside fsync with mu released
	err     error  // sticky fsync failure — all later waits fail
}

// Ticket identifies one appended record for WaitDurable. Tickets
// are handed out in append order; a sync covering ticket t covers every
// earlier ticket too. The zero ticket is "nothing to wait for".
type Ticket int64

func (w *WAL) init() *WAL {
	w.cond = sync.NewCond(&w.mu)
	return w
}

// RecoverWAL opens (creating if absent) the WAL inside dir, scans it,
// and truncates any torn or corrupt tail. It returns the open log
// positioned for appends and the payloads of every valid record, in
// order.
func RecoverWAL(dir string, policy FsyncPolicy) (*WAL, [][]byte, error) {
	path := filepath.Join(dir, WALName)
	created := false
	data, err := os.ReadFile(path)
	if err != nil {
		if !os.IsNotExist(err) {
			return nil, nil, err
		}
		created = true
	}
	payloads, valid := ScanFrames(data)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, err
	}
	if created {
		// Make the new log's directory entry durable: an fsynced record
		// in a file a crash un-creates is no record at all.
		if err := syncDir(dir); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	if valid < int64(len(data)) {
		// Torn or corrupt tail: drop it so the next append extends a
		// clean log instead of burying records behind garbage.
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	if _, err := f.Seek(valid, 0); err != nil {
		f.Close()
		return nil, nil, err
	}
	return (&WAL{f: f, path: path, policy: policy, size: valid}).init(), payloads, nil
}

// ScanFrames walks framed records from the start of data, returning
// every valid payload and the offset of the first invalid byte (==
// len(data) for a fully valid log). Everything from the first bad frame
// on is discarded — the standard WAL rule: a torn record's successors
// cannot be trusted either, because the tear may hide a half-written
// batch.
func ScanFrames(data []byte) (payloads [][]byte, valid int64) {
	off := 0
	for off < len(data) {
		payload, end, err := readFrame(data, off)
		if err != nil {
			break
		}
		payloads = append(payloads, payload)
		off = end
	}
	return payloads, int64(off)
}

// Append frames and writes one record payload, returning the ticket to
// hand WaitDurable once the caller has released the content write lock.
// Under SyncNever the ticket is zero and WaitDurable is a no-op.
// Payloads beyond maxRecordSize are rejected up front: readFrame would
// refuse the oversized frame during recovery, truncating the log there
// and silently discarding every durable record after it — the writer
// must fail loudly instead (whole-relation assignments stay under the
// bound by chunking, see SplitRecord).
func (w *WAL) Append(payload []byte) (Ticket, error) {
	if w.f == nil {
		return 0, fmt.Errorf("storage: WAL is closed")
	}
	if len(payload) > maxRecordSize {
		return 0, fmt.Errorf("storage: WAL record of %d bytes exceeds the %d-byte limit", len(payload), maxRecordSize)
	}
	frame := appendFrame(nil, payload)
	if _, err := w.f.Write(frame); err != nil {
		return 0, fmt.Errorf("storage: WAL append: %w", err)
	}
	w.size += int64(len(frame))
	mWALAppends.Inc()
	mWALBytes.Add(int64(len(frame)))
	if w.policy != SyncAlways {
		return 0, nil
	}
	w.mu.Lock()
	w.written++
	t := w.written
	w.mu.Unlock()
	return t, nil
}

// WaitDurable blocks until an fsync covering ticket t has completed —
// the group-commit rendezvous. The first waiter to find no sync in
// flight becomes the leader: it snapshots the written watermark, fsyncs
// once outside the lock, advances the synced watermark to the snapshot,
// and wakes everyone. Waiters whose ticket the covering sync reached
// return without ever touching the file; latecomers re-elect. An fsync
// failure is sticky — the log's durability can no longer be trusted, so
// every subsequent wait reports it.
func (w *WAL) WaitDurable(t Ticket) error {
	if t == 0 {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	for {
		if w.err != nil {
			return w.err
		}
		if w.synced >= t {
			return nil
		}
		if w.syncing {
			w.cond.Wait()
			continue
		}
		w.syncing = true
		cover := w.written
		f := w.f
		w.mu.Unlock()

		var err error
		if f == nil {
			err = fmt.Errorf("storage: WAL is closed")
		} else {
			start := time.Now()
			err = f.Sync()
			mWALFsyncs.Inc()
			mWALFsyncLatency.Observe(time.Since(start))
			if err != nil {
				err = fmt.Errorf("storage: WAL fsync: %w", err)
			}
		}
		mGroupCommitBatches.Inc()

		w.mu.Lock()
		w.syncing = false
		if err != nil {
			w.err = err
		} else if cover > w.synced {
			w.synced = cover
		}
		w.cond.Broadcast()
	}
}

// Size returns the current log size in bytes — the checkpoint trigger
// consults it.
func (w *WAL) Size() int64 { return w.size }

// Path returns the log file's path.
func (w *WAL) Path() string { return w.path }

// Reset truncates the log to empty — called after a checkpoint's
// manifest rename made every logged record redundant. Sequence numbers
// keep counting; the manifest's LastSeq guards replay idempotence if
// the truncation itself is lost to a crash.
//
// Reset also releases every pending WaitDurable: the checkpoint ran
// under the content write lock, so every appended frame was already
// applied and flushed into the manifest the rename just made durable —
// a stronger durability guarantee than the fsync those waiters came
// for.
func (w *WAL) Reset() error {
	if w.f == nil {
		return fmt.Errorf("storage: WAL is closed")
	}
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	if _, err := w.f.Seek(0, 0); err != nil {
		return err
	}
	w.size = 0
	if w.policy == SyncAlways {
		if err := w.f.Sync(); err != nil {
			return err
		}
		w.mu.Lock()
		if w.written > w.synced {
			w.synced = w.written
		}
		w.cond.Broadcast()
		w.mu.Unlock()
	}
	return nil
}

// Sync forces an fsync regardless of policy (clean shutdown).
func (w *WAL) Sync() error {
	if w.f == nil {
		return nil
	}
	return w.f.Sync()
}

// Close syncs and closes the log, first draining any in-flight group-
// commit leader so the final sync covers everything and no waiter is
// left holding the closed file.
func (w *WAL) Close() error {
	if w.f == nil {
		return nil
	}
	w.mu.Lock()
	for w.syncing {
		w.cond.Wait()
	}
	w.mu.Unlock()
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	w.mu.Lock()
	if err == nil {
		if w.written > w.synced {
			w.synced = w.written
		}
	} else if w.err == nil {
		w.err = fmt.Errorf("storage: WAL close: %w", err)
	}
	w.cond.Broadcast()
	w.mu.Unlock()
	return err
}
