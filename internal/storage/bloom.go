package storage

import (
	"hash/fnv"
	"math"
)

// bloom is a fixed-parameter bloom filter over encoded primary keys,
// sized at build time for ~1% false positives (about 10 bits and 7
// probes per key). Each SSTable carries one so a key lookup that misses
// every memtable can skip the table — and its I/O — without reading a
// single record: the negative-probe fast path the LSM read amplification
// story depends on.
type bloom struct {
	bits  []uint64
	k     int
	nbits uint64
}

const (
	bloomBitsPerKey = 10
	bloomHashes     = 7
)

// newBloom sizes an empty filter for n keys. The bit count rounds up to
// whole 64-bit words: the serialized form carries only the words, and
// bloomFromParts derives nbits from their count, so the two must agree
// or probes would hash modulo a different size than adds did.
func newBloom(n int) *bloom {
	nbits := uint64(n * bloomBitsPerKey)
	if nbits < 64 {
		nbits = 64
	}
	nbits = (nbits + 63) / 64 * 64
	return &bloom{bits: make([]uint64, nbits/64), k: bloomHashes, nbits: nbits}
}

// bloomFromParts reconstitutes a filter from its serialized parts.
func bloomFromParts(bits []uint64, k int) *bloom {
	return &bloom{bits: bits, k: k, nbits: uint64(len(bits)) * 64}
}

// hash2 derives the double-hashing pair for a key.
func hash2(key string) (uint64, uint64) {
	h := fnv.New64a()
	h.Write([]byte(key))
	h1 := h.Sum64()
	// Second independent hash by re-mixing (splitmix64 finalizer).
	z := h1 + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	h2 := z ^ (z >> 31)
	if h2 == 0 {
		h2 = 1
	}
	return h1, h2
}

// add inserts a key.
func (b *bloom) add(key string) {
	h1, h2 := hash2(key)
	for i := 0; i < b.k; i++ {
		bit := (h1 + uint64(i)*h2) % b.nbits
		b.bits[bit/64] |= 1 << (bit % 64)
	}
}

// mayContain reports whether the key might be present (false means
// definitely absent).
func (b *bloom) mayContain(key string) bool {
	if b == nil {
		return true
	}
	h1, h2 := hash2(key)
	for i := 0; i < b.k; i++ {
		bit := (h1 + uint64(i)*h2) % b.nbits
		if b.bits[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}

// fpRate returns the theoretical false-positive rate at n keys, for
// diagnostics.
func (b *bloom) fpRate(n int) float64 {
	if b == nil || n == 0 {
		return 0
	}
	return math.Pow(1-math.Exp(-float64(b.k*n)/float64(b.nbits)), float64(b.k))
}
