// Package server is the pascald network serving layer: a TCP server
// speaking the length-prefixed binary protocol of internal/protocol,
// with per-connection sessions, admission control, a process list with
// kill, and an HTTP monitoring endpoint exposing the live engine
// counters and per-relation statistics snapshots.
//
// The design follows go-mysql-server's interface-first server/session
// split: the engine (a *pascalr.Database) knows nothing about the
// network; each accepted connection owns a session-scoped handle
// (pascalr.Session) carrying its execution defaults and a
// context.Context wired into the engine's ~100ms cancellation
// checkpoints, so KILL and graceful shutdown abort running queries
// promptly without poisoning shared state.
package server

import (
	"bufio"
	"context"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"pascalr"
	"pascalr/internal/protocol"
)

// DefaultMaxSessions is the admission-control limit applied when the
// configuration leaves MaxSessions zero.
const DefaultMaxSessions = 256

// Config configures a server.
type Config struct {
	// Addr is the TCP listen address for the binary protocol
	// (e.g. "127.0.0.1:5432"; ":0" picks a free port).
	Addr string
	// MonitorAddr, when non-empty, serves the HTTP monitoring endpoints
	// (/metrics, /processlist) on this address.
	MonitorAddr string
	// MaxSessions bounds concurrently connected sessions; connections
	// beyond it are rejected with a protocol error frame rather than
	// queued, so overload surfaces immediately at the client instead of
	// as silent accept-queue latency. Zero means DefaultMaxSessions.
	MaxSessions int
	// Logger receives the server's structured log records (connection
	// lifecycle at Debug, kills at Info, slow queries at Warn). Nil means
	// slog.Default().
	Logger *slog.Logger
	// SlowQuery, when positive, logs any statement whose traced duration
	// reaches it — trace ID, query, phase durations, counter deltas.
	SlowQuery time.Duration
}

// Server serves one pascalr.Database over TCP.
type Server struct {
	db  *pascalr.Database
	cfg Config

	ln      net.Listener
	httpLn  net.Listener
	httpSrv *http.Server

	mu       sync.Mutex
	sessions map[uint64]*session
	nextID   uint64
	draining bool
	peak     int

	wg sync.WaitGroup // session + accept-loop goroutines

	accepted atomic.Uint64
	rejected atomic.Uint64
	killed   atomic.Uint64
}

// New creates a server for db. Start actually listens.
func New(db *pascalr.Database, cfg Config) *Server {
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = DefaultMaxSessions
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	return &Server{db: db, cfg: cfg, sessions: make(map[uint64]*session)}
}

// logger returns the server's structured logger.
func (s *Server) logger() *slog.Logger { return s.cfg.Logger }

// Start binds the listeners and begins accepting sessions. It returns
// once the server is reachable; serving continues in background
// goroutines until Shutdown.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	if s.cfg.MonitorAddr != "" {
		if err := s.startMonitor(); err != nil {
			ln.Close()
			return err
		}
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return nil
}

// Addr returns the bound protocol address (for ":0" configs).
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// MonitorAddr returns the bound monitoring address, or nil when the
// monitor is disabled.
func (s *Server) MonitorAddr() net.Addr {
	if s.httpLn == nil {
		return nil
	}
	return s.httpLn.Addr()
}

// acceptLoop admits connections until the listener closes. Admission
// control runs here: beyond MaxSessions the connection is answered
// with a single error frame and closed.
func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed by Shutdown
		}
		sess, reject := s.register(conn)
		if reject != 0 {
			s.rejected.Add(1)
			mSessionsRejected.Inc()
			s.logger().Debug("connection rejected", "addr", conn.RemoteAddr().String(), "code", reject)
			bw := bufio.NewWriter(conn)
			w := protocol.NewWriter()
			w.Uvarint(reject)
			w.String("pascald: connection rejected")
			protocol.WriteFrame(bw, protocol.OpErr, w.Bytes())
			conn.Close()
			continue
		}
		s.accepted.Add(1)
		mSessionsTotal.Inc()
		s.logger().Debug("session accepted", "session", sess.id, "addr", conn.RemoteAddr().String())
		s.wg.Add(1)
		go sess.serve()
	}
}

// register admits a connection as a session, or returns the rejection
// error code.
func (s *Server) register(conn net.Conn) (*session, uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, protocol.CodeShuttingDown
	}
	if len(s.sessions) >= s.cfg.MaxSessions {
		return nil, protocol.CodeTooManySessions
	}
	s.nextID++
	sess := newSession(s, s.nextID, conn)
	s.sessions[sess.id] = sess
	if len(s.sessions) > s.peak {
		s.peak = len(s.sessions)
	}
	mSessions.Add(1)
	return sess, 0
}

// unregister removes a finished session.
func (s *Server) unregister(sess *session) {
	s.mu.Lock()
	delete(s.sessions, sess.id)
	s.mu.Unlock()
	mSessions.Add(-1)
	s.logger().Debug("session closed", "session", sess.id)
}

// session returns a live session by id.
func (s *Server) session(id uint64) (*session, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	return sess, ok
}

// Kill cancels the identified session's context (aborting its running
// statement and open cursors within the engine's cancellation
// checkpoints) and closes its connection.
func (s *Server) Kill(id uint64) error {
	sess, ok := s.session(id)
	if !ok {
		return fmt.Errorf("server: no session %d", id)
	}
	s.killed.Add(1)
	mSessionsKilled.Inc()
	s.logger().Info("session killed", "session", id, "trace_id", sess.currentTraceID())
	sess.kill()
	return nil
}

// SessionCount returns the number of live sessions.
func (s *Server) SessionCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// Shutdown drains the server gracefully: stop accepting, let sessions
// finish their in-flight request, close their connections, and — only
// after every session goroutine has exited — quiesce the database's
// background statistics work via Close. If ctx expires before the
// drain completes, running statements are cancelled (they abort at the
// engine's ~100ms checkpoints) and the remaining sessions are closed
// hard; Shutdown still waits for the goroutines so none leak.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()

	s.ln.Close()
	for _, sess := range sessions {
		sess.drain()
	}

	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		// Force: cancel running statements and close connections; the
		// engine observes the contexts within ~100ms, so this wait is
		// bounded.
		for _, sess := range sessions {
			sess.kill()
		}
		<-done
	}

	if s.httpSrv != nil {
		s.httpSrv.Close()
	}
	// Sessions have drained (cursors closed, no execution in flight):
	// now quiesce background statistics maintenance. A drift-triggered
	// rebuild scheduled during the drain either completes inside Close
	// or is rejected by it — either way no goroutine survives.
	if cerr := s.db.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// processList snapshots the live sessions for the PROCESSLIST surfaces
// (binary op and HTTP endpoint), ordered by session id.
type processEntry struct {
	ID      uint64 `json:"id"`
	Addr    string `json:"addr"`
	State   string `json:"state"`
	Query   string `json:"query,omitempty"`
	AgeMS   int64  `json:"age_ms"`
	TraceID string `json:"trace_id,omitempty"`
}

func (s *Server) processList() []processEntry {
	s.mu.Lock()
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	out := make([]processEntry, 0, len(sessions))
	for _, sess := range sessions {
		out = append(out, sess.entry())
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].ID > out[j].ID; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// now is a time source seam kept in one place.
func now() time.Time { return time.Now() }
