package server

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pascalr"
	"pascalr/client"
	"pascalr/internal/workload"
)

// BenchmarkServerSessions measures query throughput through the full
// serving stack — protocol framing, session dispatch, engine execution
// — at 1, 4, and 8 concurrent sessions over loopback TCP.
func BenchmarkServerSessions(b *testing.B) {
	script, err := workload.UniversityScript(100)
	if err != nil {
		b.Fatal(err)
	}
	const q = `[<c.cnr, t.tenr, t.tday> OF EACH c IN courses, EACH t IN timetable:
		(c.clevel <= sophomore) AND (c.cnr = t.tcnr)]`
	for _, sessions := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("sessions=%d", sessions), func(b *testing.B) {
			db, err := pascalr.Open(script)
			if err != nil {
				b.Fatal(err)
			}
			srv := New(db, Config{Addr: "127.0.0.1:0", MaxSessions: sessions + 1})
			if err := srv.Start(); err != nil {
				b.Fatal(err)
			}
			defer func() {
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				defer cancel()
				if err := srv.Shutdown(ctx); err != nil {
					b.Fatal(err)
				}
			}()
			conns := make([]*client.Conn, sessions)
			for i := range conns {
				c, err := client.Dial(srv.Addr().String())
				if err != nil {
					b.Fatal(err)
				}
				defer c.Close()
				conns[i] = c
				// Warm the shared plan cache so the benchmark measures
				// execution, not compilation.
				if _, err := c.Query(q, client.Options{}); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			var next atomic.Int64
			var wg sync.WaitGroup
			errs := make(chan error, sessions)
			for _, c := range conns {
				wg.Add(1)
				go func(c *client.Conn) {
					defer wg.Done()
					for next.Add(1) <= int64(b.N) {
						if _, err := c.Query(q, client.Options{}); err != nil {
							errs <- err
							return
						}
					}
				}(c)
			}
			wg.Wait()
			b.StopTimer()
			select {
			case err := <-errs:
				b.Fatal(err)
			default:
			}
		})
	}
}
