package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"pascalr"
	"pascalr/internal/obs"
	"pascalr/internal/protocol"
)

// session is one accepted connection. The protocol is a strict
// request/response alternation, so a single goroutine owns the
// connection's read and write side; Kill and Shutdown interact with it
// only through the session context and by closing the connection.
type session struct {
	srv  *Server
	id   uint64
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer

	ps *pascalr.Session

	// ctx is the session's root context: every statement context derives
	// from it, so cancelling it (kill, forced shutdown) aborts whatever
	// the session is executing at the engine's cancellation checkpoints.
	ctx      context.Context
	cancelFn context.CancelFunc

	mu       sync.Mutex
	busy     bool
	draining bool
	killed   bool
	state    string
	query    string
	since    time.Time

	// traceID names the most recent statement trace; it is retained
	// after the statement finishes so a process-list reader can correlate
	// a KILL target with its trace in the slow-query log and /metrics.
	traceID   string
	lastTrace *obs.Trace

	// open prepared statements and their cursors, keyed by the id handed
	// to the client in StmtBound.
	stmts      map[uint64]*serverStmt
	nextStmtID uint64
}

// serverStmt is a prepared statement with at most one open cursor.
type serverStmt struct {
	stmt   *pascalr.Stmt
	rows   *pascalr.Rows
	cancel context.CancelFunc // cancels the cursor's statement context
	tr     *obs.Trace         // trace of the current execution's cursor
}

func newSession(srv *Server, id uint64, conn net.Conn) *session {
	ctx, cancel := context.WithCancel(context.Background())
	return &session{
		srv:      srv,
		id:       id,
		conn:     conn,
		br:       bufio.NewReader(conn),
		bw:       bufio.NewWriter(conn),
		ps:       srv.db.NewSession(),
		ctx:      ctx,
		cancelFn: cancel,
		state:    "idle",
		since:    now(),
		stmts:    make(map[uint64]*serverStmt),
	}
}

// kill cancels the session context and closes the connection. The
// running statement (if any) aborts at the next engine checkpoint; the
// serve loop then fails to write its response and exits.
func (s *session) kill() {
	s.mu.Lock()
	s.killed = true
	s.mu.Unlock()
	s.cancelFn()
	s.conn.Close()
}

// drain asks the session to exit after its in-flight request. An idle
// session (blocked reading the next frame) is unblocked by closing the
// connection; a busy one observes the flag when its handler returns.
func (s *session) drain() {
	s.mu.Lock()
	s.draining = true
	idle := !s.busy
	s.mu.Unlock()
	if idle {
		s.conn.Close()
	}
}

func (s *session) entry() processEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	return processEntry{
		ID:      s.id,
		Addr:    s.conn.RemoteAddr().String(),
		State:   s.state,
		Query:   s.query,
		AgeMS:   now().Sub(s.since).Milliseconds(),
		TraceID: s.traceID,
	}
}

// currentTraceID returns the session's most recent trace ID.
func (s *session) currentTraceID() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.traceID
}

// beginTrace starts the trace of one statement — under the client's
// wire-propagated ID when it sent one, a fresh one otherwise — records
// it as the session's current trace, publishes the ID to the
// correlation Info metric, and returns a context carrying the root
// span for the engine to hang its phase spans from.
func (s *session) beginTrace(ctx context.Context, wireID string) (context.Context, *obs.Trace) {
	tr := obs.NewTrace(wireID)
	s.mu.Lock()
	s.traceID = tr.ID()
	s.lastTrace = tr
	s.mu.Unlock()
	mLastTrace.SetLabels(obs.Attr{Key: "trace_id", Value: tr.ID()})
	return obs.With(ctx, tr.Root()), tr
}

// endTrace finishes a statement trace and emits the slow-query log
// line when the statement ran past the configured threshold: trace ID,
// normalized query, total and per-phase durations, and the execution's
// counter deltas (recorded by the engine as root-span attributes).
func (s *session) endTrace(tr *obs.Trace, query string) {
	tr.Finish()
	slow := s.srv.cfg.SlowQuery
	if slow <= 0 || tr.Duration() < slow {
		return
	}
	attrs := []any{"trace_id", tr.ID(), "query", query, "duration", tr.Duration()}
	phases := tr.Phases()
	names := make([]string, 0, len(phases))
	for name := range phases {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		attrs = append(attrs, "phase_"+name, phases[name])
	}
	root := tr.Snapshot().Root
	keys := make([]string, 0, len(root.Attrs))
	for k := range root.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		attrs = append(attrs, k, root.Attrs[k])
	}
	s.srv.logger().Warn("slow query", attrs...)
}

// setState records the process-list state; query may be empty.
func (s *session) setState(state, query string) {
	s.mu.Lock()
	s.state = state
	s.query = query
	s.since = now()
	s.mu.Unlock()
}

// serve runs the session until the connection closes or the server
// drains. It owns both directions of the connection.
func (s *session) serve() {
	defer func() {
		s.cancelFn()
		s.closeStmts()
		s.conn.Close()
		s.srv.unregister(s)
		s.srv.wg.Done()
	}()

	hello := protocol.NewWriter()
	hello.Uvarint(protocol.Version)
	hello.Uvarint(s.id)
	if protocol.WriteFrame(s.bw, protocol.OpHello, hello.Bytes()) != nil {
		return
	}

	for {
		op, payload, err := protocol.ReadFrame(s.br)
		if err != nil {
			return // connection closed (client, kill, or drain)
		}
		s.mu.Lock()
		s.busy = true
		s.mu.Unlock()

		start := now()
		writeErr := s.dispatch(op, payload)
		mFrames.Inc()
		if h, ok := opLatencies[op]; ok {
			h.Observe(now().Sub(start))
		}

		s.mu.Lock()
		s.busy = false
		done := s.draining || s.killed
		s.mu.Unlock()
		s.setState("idle", "")
		if writeErr != nil || done {
			return
		}
	}
}

// closeStmts releases every open cursor and statement context.
func (s *session) closeStmts() {
	s.mu.Lock()
	stmts := s.stmts
	s.stmts = map[uint64]*serverStmt{}
	s.mu.Unlock()
	for _, st := range stmts {
		if st.rows != nil {
			st.rows.Close()
		}
		if st.cancel != nil {
			st.cancel()
		}
	}
}

// dispatch handles one request frame and writes exactly one response
// frame. The returned error is a *write* failure (fatal for the
// connection); request-level failures travel as Err frames.
func (s *session) dispatch(op byte, payload []byte) error {
	r := protocol.NewReader(payload)
	switch op {
	case protocol.OpPing:
		return protocol.WriteFrame(s.bw, protocol.OpPong, nil)

	case protocol.OpExec:
		src, err := r.String()
		if err != nil {
			return s.writeErr(protocol.CodeBadRequest, err)
		}
		s.setState("exec", firstLine(src))
		// Scripts run without engine spans (Exec has no context seam),
		// but still get a trace: the root span times the script, and the
		// ID correlates it across processlist and the slow-query log.
		_, tr := s.beginTrace(s.ctx, "")
		err = s.ps.Exec(src)
		s.endTrace(tr, firstLine(src))
		if err != nil {
			return s.writeErr(protocol.CodeInternal, err)
		}
		return protocol.WriteFrame(s.bw, protocol.OpOK, nil)

	case protocol.OpQuery:
		return s.handleQuery(r)

	case protocol.OpPrepare:
		return s.handlePrepare(r)

	case protocol.OpExecStmt:
		return s.handleExecStmt(r)

	case protocol.OpFetch:
		return s.handleFetch(r)

	case protocol.OpCloseStmt:
		id, err := r.Uvarint()
		if err != nil {
			return s.writeErr(protocol.CodeBadRequest, err)
		}
		s.mu.Lock()
		st, ok := s.stmts[id]
		delete(s.stmts, id)
		s.mu.Unlock()
		if !ok {
			return s.writeErr(protocol.CodeUnknownStmt, fmt.Errorf("no statement %d", id))
		}
		if st.rows != nil {
			st.rows.Close()
		}
		if st.cancel != nil {
			st.cancel()
		}
		return protocol.WriteFrame(s.bw, protocol.OpOK, nil)

	case protocol.OpCancel:
		// Cancel the session's open statement contexts; a cursor mid-fetch
		// observes the cancellation on its next row. The session itself
		// stays usable.
		s.mu.Lock()
		for _, st := range s.stmts {
			if st.cancel != nil {
				st.cancel()
			}
		}
		s.mu.Unlock()
		return protocol.WriteFrame(s.bw, protocol.OpOK, nil)

	case protocol.OpKill:
		id, err := r.Uvarint()
		if err != nil {
			return s.writeErr(protocol.CodeBadRequest, err)
		}
		if err := s.srv.Kill(id); err != nil {
			return s.writeErr(protocol.CodeBadRequest, err)
		}
		return protocol.WriteFrame(s.bw, protocol.OpOK, nil)

	case protocol.OpProcessList:
		entries := s.srv.processList()
		rows := make([][]any, 0, len(entries))
		for _, e := range entries {
			rows = append(rows, []any{int64(e.ID), e.Addr, e.State, e.Query, e.AgeMS, e.TraceID})
		}
		w := protocol.NewWriter()
		w.Strings([]string{"id", "addr", "state", "query", "age_ms", "trace_id"})
		if err := w.Rows(rows); err != nil {
			return s.writeErr(protocol.CodeInternal, err)
		}
		return protocol.WriteFrame(s.bw, protocol.OpResult, w.Bytes())

	case protocol.OpResetStats:
		s.srv.db.ResetStats()
		return protocol.WriteFrame(s.bw, protocol.OpOK, nil)

	case protocol.OpFingerprint:
		w := protocol.NewWriter()
		w.String(s.srv.db.StatsFingerprint())
		return protocol.WriteFrame(s.bw, protocol.OpStr, w.Bytes())

	case protocol.OpSetOption:
		return s.handleSetOption(r)

	case protocol.OpExplainAnalyze:
		return s.handleExplainAnalyze(r)

	case protocol.OpLastTrace:
		s.mu.Lock()
		tr := s.lastTrace
		s.mu.Unlock()
		if tr == nil {
			return s.writeErr(protocol.CodeBadRequest, fmt.Errorf("no statement traced on this session yet"))
		}
		js, err := tr.JSON()
		if err != nil {
			return s.writeErr(protocol.CodeInternal, err)
		}
		w := protocol.NewWriter()
		w.String(string(js))
		return protocol.WriteFrame(s.bw, protocol.OpStr, w.Bytes())

	default:
		return s.writeErr(protocol.CodeBadRequest, fmt.Errorf("unknown opcode %#x", op))
	}
}

// stmtCtx derives a cancelable statement context from the session
// context.
func (s *session) stmtCtx() (context.Context, context.CancelFunc) {
	return context.WithCancel(s.ctx)
}

// optionsFor converts wire options into pascalr per-call options; zero
// fields defer to the session defaults set via OpSetOption.
func optionsFor(o protocol.QueryOpts) []pascalr.Option {
	var opts []pascalr.Option
	if o.HasStrategies {
		opts = append(opts, pascalr.WithStrategies(pascalr.Strategy(o.Strategies)))
	}
	if o.HasCostBased && o.CostBased {
		opts = append(opts, pascalr.WithCostBased())
	}
	if o.Parallelism > 0 {
		opts = append(opts, pascalr.WithParallelism(int(o.Parallelism)))
	}
	if o.MaxRefTuples > 0 {
		opts = append(opts, pascalr.WithMaxRefTuples(int64(o.MaxRefTuples)))
	}
	return opts
}

func (s *session) handleQuery(r *protocol.Reader) error {
	src, err := r.String()
	if err != nil {
		return s.writeErr(protocol.CodeBadRequest, err)
	}
	wopts, err := r.Opts()
	if err != nil {
		return s.writeErr(protocol.CodeBadRequest, err)
	}
	s.setState("query", firstLine(src))
	ctx, cancel := s.stmtCtx()
	defer cancel()
	ctx, tr := s.beginTrace(ctx, wopts.TraceID)
	res, err := s.ps.Query(ctx, src, optionsFor(wopts)...)
	s.endTrace(tr, firstLine(src))
	if err != nil {
		return s.writeErr(s.errCode(err), err)
	}
	w := protocol.NewWriter()
	w.Strings(res.Columns())
	if err := w.Rows(res.Rows()); err != nil {
		return s.writeErr(protocol.CodeInternal, err)
	}
	return protocol.WriteFrame(s.bw, protocol.OpResult, w.Bytes())
}

func (s *session) handlePrepare(r *protocol.Reader) error {
	src, err := r.String()
	if err != nil {
		return s.writeErr(protocol.CodeBadRequest, err)
	}
	wopts, err := r.Opts()
	if err != nil {
		return s.writeErr(protocol.CodeBadRequest, err)
	}
	s.setState("prepare", firstLine(src))
	ctx, tr := s.beginTrace(s.ctx, wopts.TraceID)
	stmt, err := s.ps.PrepareContext(ctx, src, optionsFor(wopts)...)
	s.endTrace(tr, firstLine(src))
	if err != nil {
		return s.writeErr(protocol.CodeInternal, err)
	}
	s.mu.Lock()
	s.nextStmtID++
	id := s.nextStmtID
	s.stmts[id] = &serverStmt{stmt: stmt}
	s.mu.Unlock()
	w := protocol.NewWriter()
	w.Uvarint(id)
	return protocol.WriteFrame(s.bw, protocol.OpStmtBound, w.Bytes())
}

func (s *session) handleExecStmt(r *protocol.Reader) error {
	id, err := r.Uvarint()
	if err != nil {
		return s.writeErr(protocol.CodeBadRequest, err)
	}
	s.mu.Lock()
	st, ok := s.stmts[id]
	s.mu.Unlock()
	if !ok {
		return s.writeErr(protocol.CodeUnknownStmt, fmt.Errorf("no statement %d", id))
	}
	// Re-executing an open statement replaces its cursor.
	if st.rows != nil {
		st.rows.Close()
		st.rows = nil
	}
	if st.cancel != nil {
		st.cancel()
	}
	s.setState("execute", firstLine(st.stmt.Src()))
	ctx, cancel := s.stmtCtx()
	ctx, tr := s.beginTrace(ctx, "")
	rows, err := st.stmt.Rows(ctx)
	// The collection and combination phases ran eagerly inside Rows, so
	// the trace is finished here; fetch batches append spans after the
	// fact, which the recorder permits.
	s.endTrace(tr, firstLine(st.stmt.Src()))
	if err != nil {
		cancel()
		return s.writeErr(s.errCode(err), err)
	}
	s.mu.Lock()
	st.rows, st.cancel, st.tr = rows, cancel, tr
	s.mu.Unlock()
	w := protocol.NewWriter()
	w.Strings(rows.Columns())
	return protocol.WriteFrame(s.bw, protocol.OpCursor, w.Bytes())
}

// fetchBatchLimit caps rows per RowBatch frame regardless of the
// client's ask, keeping frames under MaxFrameSize.
const fetchBatchLimit = 4096

func (s *session) handleFetch(r *protocol.Reader) error {
	id, err := r.Uvarint()
	if err != nil {
		return s.writeErr(protocol.CodeBadRequest, err)
	}
	n, err := r.Uvarint()
	if err != nil {
		return s.writeErr(protocol.CodeBadRequest, err)
	}
	if n == 0 || n > fetchBatchLimit {
		n = fetchBatchLimit
	}
	s.mu.Lock()
	st, ok := s.stmts[id]
	s.mu.Unlock()
	if !ok || st.rows == nil {
		return s.writeErr(protocol.CodeUnknownStmt, fmt.Errorf("no open cursor for statement %d", id))
	}
	s.setState("fetch", firstLine(st.stmt.Src()))
	fsp := st.tr.Root().Start("fetch")
	var batch [][]any
	done := false
	for uint64(len(batch)) < n {
		if !st.rows.Next() {
			done = true
			break
		}
		batch = append(batch, st.rows.Values())
	}
	fsp.SetInt("rows", int64(len(batch)))
	fsp.End()
	if done {
		err := st.rows.Err()
		st.rows.Close()
		st.rows = nil
		if st.cancel != nil {
			st.cancel()
			st.cancel = nil
		}
		if err != nil {
			return s.writeErr(s.errCode(err), err)
		}
	}
	w := protocol.NewWriter()
	w.Bool(done)
	if err := w.Rows(batch); err != nil {
		return s.writeErr(protocol.CodeInternal, err)
	}
	return protocol.WriteFrame(s.bw, protocol.OpRowBatch, w.Bytes())
}

// handleExplainAnalyze executes a selection once and returns the
// engine's estimated-versus-actual cardinality report — the same text
// in-process callers get from Database.ExplainAnalyze. The execution is
// traced like any query, so TraceLastQuery afterwards returns the span
// tree of exactly this run.
func (s *session) handleExplainAnalyze(r *protocol.Reader) error {
	src, err := r.String()
	if err != nil {
		return s.writeErr(protocol.CodeBadRequest, err)
	}
	wopts, err := r.Opts()
	if err != nil {
		return s.writeErr(protocol.CodeBadRequest, err)
	}
	s.setState("explain", firstLine(src))
	ctx, cancel := s.stmtCtx()
	defer cancel()
	ctx, tr := s.beginTrace(ctx, wopts.TraceID)
	report, err := s.ps.ExplainAnalyze(ctx, src, optionsFor(wopts)...)
	s.endTrace(tr, firstLine(src))
	if err != nil {
		return s.writeErr(s.errCode(err), err)
	}
	w := protocol.NewWriter()
	w.String(report)
	return protocol.WriteFrame(s.bw, protocol.OpStr, w.Bytes())
}

// handleSetOption updates the session defaults. Keys mirror the public
// Option constructors; the value is an int64 (booleans are 0/1).
func (s *session) handleSetOption(r *protocol.Reader) error {
	key, err := r.String()
	if err != nil {
		return s.writeErr(protocol.CodeBadRequest, err)
	}
	v, err := r.Int64()
	if err != nil {
		return s.writeErr(protocol.CodeBadRequest, err)
	}
	var opt pascalr.Option
	switch key {
	case "strategies":
		opt = pascalr.WithStrategies(pascalr.Strategy(v))
	case "cost_based":
		if v == 0 {
			return s.writeErr(protocol.CodeBadRequest, fmt.Errorf("cost_based can only be enabled; open a new session for the static planner"))
		}
		opt = pascalr.WithCostBased()
	case "parallelism":
		opt = pascalr.WithParallelism(int(v))
	case "max_ref_tuples":
		opt = pascalr.WithMaxRefTuples(v)
	default:
		return s.writeErr(protocol.CodeBadRequest, fmt.Errorf("unknown option %q", key))
	}
	s.ps.AddOptions(opt)
	return protocol.WriteFrame(s.bw, protocol.OpOK, nil)
}

// errCode classifies an execution error for the wire.
func (s *session) errCode(err error) uint64 {
	switch {
	case errors.Is(err, pascalr.ErrStaleRead):
		return protocol.CodeStale
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		s.mu.Lock()
		killed := s.killed
		s.mu.Unlock()
		if killed {
			return protocol.CodeKilled
		}
		return protocol.CodeCancelled
	default:
		return protocol.CodeInternal
	}
}

// writeErr sends an Err frame; the connection stays usable.
func (s *session) writeErr(code uint64, err error) error {
	w := protocol.NewWriter()
	w.Uvarint(code)
	w.String(err.Error())
	return protocol.WriteFrame(s.bw, protocol.OpErr, w.Bytes())
}

// firstLine trims a script to its first line for the process list.
func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	if len(s) > 200 {
		return s[:200]
	}
	return s
}
