package server

import (
	"pascalr/internal/obs"
	"pascalr/internal/protocol"
)

// Serving-layer metrics. The session counts mirror the server's atomic
// counters (which remain the source for /metrics.json); the per-opcode
// histograms time dispatch, i.e. the full server-side cost of one
// request frame including the response write.
var (
	mSessions = obs.GetGauge("pascal_server_sessions_count",
		"Currently connected sessions")
	mSessionsTotal = obs.GetCounter("pascal_server_sessions_total",
		"Sessions accepted since start")
	mSessionsRejected = obs.GetCounter("pascal_server_sessions_rejected_total",
		"Connections rejected by admission control or drain")
	mSessionsKilled = obs.GetCounter("pascal_server_sessions_killed_total",
		"Sessions terminated via KILL")
	mFrames = obs.GetCounter("pascal_server_frames_total",
		"Request frames dispatched")
	mLastTrace = obs.GetInfo("pascal_server_last_trace_info",
		"Trace ID of the most recently traced statement, for cross-surface correlation")
)

// opLatencies maps every request opcode to its latency histogram. The
// registry has no labels by design, so per-opcode series are distinct
// metric names; all of them share the pascal_server_op_ prefix.
var opLatencies = map[byte]*obs.Histogram{
	protocol.OpPing:           opHist("ping"),
	protocol.OpExec:           opHist("exec"),
	protocol.OpQuery:          opHist("query"),
	protocol.OpPrepare:        opHist("prepare"),
	protocol.OpExecStmt:       opHist("exec_stmt"),
	protocol.OpFetch:          opHist("fetch"),
	protocol.OpCloseStmt:      opHist("close_stmt"),
	protocol.OpCancel:         opHist("cancel"),
	protocol.OpKill:           opHist("kill"),
	protocol.OpProcessList:    opHist("process_list"),
	protocol.OpResetStats:     opHist("reset_stats"),
	protocol.OpFingerprint:    opHist("fingerprint"),
	protocol.OpSetOption:      opHist("set_option"),
	protocol.OpExplainAnalyze: opHist("explain_analyze"),
	protocol.OpLastTrace:      opHist("last_trace"),
}

func opHist(name string) *obs.Histogram {
	return obs.GetHistogram("pascal_server_op_"+name+"_seconds",
		"Server-side dispatch latency of "+name+" requests")
}
