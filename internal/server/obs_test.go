package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"pascalr"
	"pascalr/client"
	"pascalr/internal/workload"
)

// logBuffer is a concurrency-safe sink for the server's slog output.
type logBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *logBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *logBuffer) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// newObsServer starts a server with the monitor bound, a 1ns slow-query
// threshold (every statement logs), and slog captured into the returned
// buffer.
func newObsServer(t testing.TB, scale int) (*Server, *logBuffer) {
	t.Helper()
	script, err := workload.UniversityScript(scale)
	if err != nil {
		t.Fatal(err)
	}
	db, err := pascalr.Open(script)
	if err != nil {
		t.Fatal(err)
	}
	lb := &logBuffer{}
	srv := New(db, Config{
		Addr:        "127.0.0.1:0",
		MonitorAddr: "127.0.0.1:0",
		MaxSessions: 16,
		Logger:      slog.New(slog.NewTextHandler(lb, nil)),
		SlowQuery:   time.Nanosecond,
	})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return srv, lb
}

// TestTraceEndToEnd drives a traced query through the TCP client and
// follows its trace ID across every surface: the retrieved span tree,
// the process list, the slow-query log, and the Prometheus exposition.
func TestTraceEndToEnd(t *testing.T) {
	srv, lb := newObsServer(t, 20)
	c := dial(t, srv)

	const traceID = "deadbeef01dead05"
	const q = `[<e.ename, p.ptitle> OF EACH e IN employees, EACH p IN papers: (e.enr = p.penr) AND (e.estatus = professor)]`
	if _, err := c.Query(q, client.Options{TraceID: traceID}); err != nil {
		t.Fatal(err)
	}

	// The span tree is retrievable and carries the client's trace ID,
	// the collection phase, and actual cardinalities on scan spans.
	raw, err := c.TraceLastQuery()
	if err != nil {
		t.Fatal(err)
	}
	var tree struct {
		TraceID string `json:"trace_id"`
	}
	if err := json.Unmarshal([]byte(raw), &tree); err != nil {
		t.Fatalf("trace JSON does not parse: %v\n%s", err, raw)
	}
	if tree.TraceID != traceID {
		t.Fatalf("trace id = %q, want %q", tree.TraceID, traceID)
	}
	for _, want := range []string{`"collection"`, `"scan employees"`, "actual."} {
		if !strings.Contains(raw, want) {
			t.Fatalf("trace missing %q:\n%s", want, raw)
		}
	}

	// The same ID shows in the process list row for this session, so a
	// KILL target correlates with its trace.
	pl, err := c.ProcessList()
	if err != nil {
		t.Fatal(err)
	}
	col := -1
	for i, name := range pl.Columns {
		if name == "trace_id" {
			col = i
		}
	}
	if col < 0 {
		t.Fatalf("process list has no trace_id column: %v", pl.Columns)
	}
	found := false
	for _, row := range pl.Rows {
		if fmt.Sprint(row[col]) == traceID {
			found = true
		}
	}
	if !found {
		t.Fatalf("trace id %s absent from process list %v", traceID, pl.Rows)
	}

	// The 1ns threshold makes every statement slow: the log line carries
	// the trace ID, the query, and phase durations.
	logged := lb.String()
	for _, want := range []string{"slow query", "trace_id=" + traceID, "phase_collection="} {
		if !strings.Contains(logged, want) {
			t.Fatalf("slow-query log missing %q:\n%s", want, logged)
		}
	}

	// The Prometheus exposition names the same trace via the info metric.
	body := httpGet(t, "http://"+srv.MonitorAddr().String()+"/metrics")
	if want := `pascal_server_last_trace_info{trace_id="` + traceID + `"} 1`; !strings.Contains(body, want) {
		t.Fatalf("/metrics missing %q", want)
	}

	// ExplainAnalyze over the wire returns the estimated-vs-actual report.
	rep, err := c.ExplainAnalyze(q, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep, "actual") {
		t.Fatalf("explain analyze report carries no actuals:\n%s", rep)
	}
}

func httpGet(t testing.TB, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d\n%s", url, resp.StatusCode, body)
	}
	return string(body)
}

// TestMetricsScrapeUnderLoad hammers /metrics and /metrics.json while
// eight writer sessions mutate and query — under -race this proves the
// scrape path reads only atomics and properly locked snapshots.
func TestMetricsScrapeUnderLoad(t *testing.T) {
	srv, _ := newObsServer(t, 20)
	base := "http://" + srv.MonitorAddr().String()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := client.Dial(srv.Addr().String())
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := c.Exec(fmt.Sprintf("papers :+ [<%d, 1982, 'scrape-%d-%d'>];", i%20+1, w, i)); err != nil {
					t.Error(err)
					return
				}
				if _, err := c.Query(`[<p.ptitle> OF EACH p IN papers: (p.pyear = 1982)]`, client.Options{}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}

	deadline := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(deadline) {
		if body := httpGet(t, base+"/metrics"); !strings.Contains(body, "pascal_server_frames_total") {
			t.Fatal("/metrics lost its series under load")
		}
		var payload map[string]any
		if err := json.Unmarshal([]byte(httpGet(t, base+"/metrics.json")), &payload); err != nil {
			t.Fatalf("/metrics.json unparseable under load: %v", err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestTracedShutdownNoLeaks runs a traced workload (per-statement
// traces, slow-query logging on) and verifies the shutdown still
// terminates every goroutine tracing touched.
func TestTracedShutdownNoLeaks(t *testing.T) {
	runtime.GC()
	before := runtime.NumGoroutine()

	script, err := workload.UniversityScript(20)
	if err != nil {
		t.Fatal(err)
	}
	db, err := pascalr.Open(script)
	if err != nil {
		t.Fatal(err)
	}
	lb := &logBuffer{}
	srv := New(db, Config{
		Addr:        "127.0.0.1:0",
		MonitorAddr: "127.0.0.1:0",
		MaxSessions: 8,
		Logger:      slog.New(slog.NewTextHandler(lb, nil)),
		SlowQuery:   time.Nanosecond,
	})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	c, err := client.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := c.Query(`[<e.enr> OF EACH e IN employees: (e.enr >= 1)]`,
			client.Options{TraceID: fmt.Sprintf("%016x", i+1)}); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	c.Close()

	deadline := time.Now().Add(3 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: before=%d after=%d\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
