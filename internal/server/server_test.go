package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"reflect"
	"runtime"
	"testing"
	"time"

	"pascalr"
	"pascalr/client"
	"pascalr/internal/workload"
)

// newTestServer starts a server over a university database, with the
// monitor bound when monitor is true. Cleanup shuts it down.
func newTestServer(t testing.TB, scale, maxSessions int, monitor bool) (*Server, *pascalr.Database) {
	t.Helper()
	script, err := workload.UniversityScript(scale)
	if err != nil {
		t.Fatal(err)
	}
	db, err := pascalr.Open(script)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Addr: "127.0.0.1:0", MaxSessions: maxSessions}
	if monitor {
		cfg.MonitorAddr = "127.0.0.1:0"
	}
	srv := New(db, cfg)
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return srv, db
}

func dial(t testing.TB, srv *Server) *client.Conn {
	t.Helper()
	c, err := client.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestServerBasics: handshake, ping, exec, and a query whose result
// matches the in-process evaluation on the same database.
func TestServerBasics(t *testing.T) {
	srv, db := newTestServer(t, 20, 4, false)
	c := dial(t, srv)
	if c.SessionID() == 0 {
		t.Fatal("no session id assigned")
	}
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	const q = `[<e.enr, e.ename> OF EACH e IN employees: (e.estatus = professor)]`
	want, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Query(q, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Columns, want.Columns()) {
		t.Fatalf("columns = %v, want %v", got.Columns, want.Columns())
	}
	if !reflect.DeepEqual(got.Rows, want.Rows()) {
		t.Fatalf("rows = %v, want %v", got.Rows, want.Rows())
	}
	// A mutation through the wire is visible to the next query.
	if err := c.Exec("employees :+ [<98, 'zed', professor>];"); err != nil {
		t.Fatal(err)
	}
	after, err := c.Query(q, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Rows) != len(want.Rows())+1 {
		t.Fatalf("after insert: %d rows, want %d", len(after.Rows), len(want.Rows())+1)
	}
	// A bad query surfaces as an error frame, and the connection stays
	// usable afterwards.
	if _, err := c.Query("[<nonsense", client.Options{}); err == nil {
		t.Fatal("malformed query did not error")
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("connection unusable after query error: %v", err)
	}
}

// TestAdmissionControl: sessions beyond MaxSessions are rejected with
// the typed error immediately at dial, and a freed slot is reusable.
func TestAdmissionControl(t *testing.T) {
	srv, _ := newTestServer(t, 5, 2, false)
	c1 := dial(t, srv)
	c2 := dial(t, srv)
	if err := c1.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := c2.Ping(); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Dial(srv.Addr().String()); !errors.Is(err, client.ErrTooManySessions) {
		t.Fatalf("third dial: got %v, want ErrTooManySessions", err)
	}
	c2.Close()
	// The server unregisters the session when its goroutine notices the
	// close; poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for {
		c3, err := client.Dial(srv.Addr().String())
		if err == nil {
			defer c3.Close()
			break
		}
		if !errors.Is(err, client.ErrTooManySessions) {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("slot never freed after connection close")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestKillAndProcessList: sessions appear in the process list; KILL
// from another connection terminates the victim.
func TestKillAndProcessList(t *testing.T) {
	srv, _ := newTestServer(t, 5, 4, false)
	victim := dial(t, srv)
	admin := dial(t, srv)
	pl, err := admin.ProcessList()
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Rows) != 2 {
		t.Fatalf("process list has %d sessions, want 2", len(pl.Rows))
	}
	if got := pl.Columns; !reflect.DeepEqual(got, []string{"id", "addr", "state", "query", "age_ms", "trace_id"}) {
		t.Fatalf("process list columns = %v", got)
	}
	ids := map[int64]bool{}
	for _, row := range pl.Rows {
		ids[row[0].(int64)] = true
	}
	if !ids[int64(victim.SessionID())] || !ids[int64(admin.SessionID())] {
		t.Fatalf("process list ids %v missing a session", ids)
	}
	if err := admin.Kill(victim.SessionID()); err != nil {
		t.Fatal(err)
	}
	// The victim's connection is closed server-side.
	deadline := time.Now().Add(2 * time.Second)
	for victim.Ping() == nil {
		if time.Now().After(deadline) {
			t.Fatal("victim survived KILL")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Killing an unknown session reports an error but keeps the
	// connection usable.
	if err := admin.Kill(99999); err == nil {
		t.Fatal("kill of unknown session did not error")
	}
	if err := admin.Ping(); err != nil {
		t.Fatal(err)
	}
}

// TestCancelMidFetch: a cursor abandoned by Cancel reports the typed
// cancellation error on its next fetch, and the session survives.
func TestCancelMidFetch(t *testing.T) {
	srv, _ := newTestServer(t, 20, 4, false)
	c := dial(t, srv)
	stmt, err := c.Prepare(`[<e.enr, e.ename> OF EACH e IN employees: (e.enr >= 1)]`, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := stmt.Execute()
	if err != nil {
		t.Fatal(err)
	}
	rows.FetchSize = 1
	if !rows.Next() {
		t.Fatalf("no first row: %v", rows.Err())
	}
	if err := c.Cancel(); err != nil {
		t.Fatal(err)
	}
	for rows.Next() {
	}
	if err := rows.Err(); !errors.Is(err, client.ErrCancelled) {
		t.Fatalf("after Cancel: got %v, want ErrCancelled", err)
	}
	// The statement can be re-executed on the same session.
	rows2, err := stmt.Execute()
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for rows2.Next() {
		n++
	}
	if err := rows2.Err(); err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("re-executed cursor yielded nothing")
	}
	if err := stmt.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestMonitorEndpoints: /metrics.json exposes session gauges, live
// engine counters, and per-relation statistics; /processlist mirrors
// the binary op.
func TestMonitorEndpoints(t *testing.T) {
	srv, _ := newTestServer(t, 20, 4, true)
	c := dial(t, srv)
	if _, err := c.Query(`[<e.enr> OF EACH e IN employees: (e.enr >= 1)]`, client.Options{}); err != nil {
		t.Fatal(err)
	}
	base := "http://" + srv.MonitorAddr().String()
	resp, err := http.Get(base + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m struct {
		Sessions struct {
			Active   int    `json:"active"`
			Accepted uint64 `json:"accepted"`
			Max      int    `json:"max"`
		} `json:"sessions"`
		Counters struct {
			TotalScans int `json:"TotalScans"`
		} `json:"counters"`
		Tables []struct {
			Name string `json:"name"`
			Rows int64  `json:"rows"`
		} `json:"tables"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Sessions.Active != 1 || m.Sessions.Accepted == 0 || m.Sessions.Max != 4 {
		t.Fatalf("session gauges = %+v", m.Sessions)
	}
	if m.Counters.TotalScans == 0 {
		t.Fatal("metrics counters show no scans after a query")
	}
	if len(m.Tables) != 4 {
		t.Fatalf("metrics report %d tables, want 4", len(m.Tables))
	}
	for _, tb := range m.Tables {
		if tb.Rows == 0 {
			t.Fatalf("table %s reports 0 rows", tb.Name)
		}
	}
	resp2, err := http.Get(base + "/processlist")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var pl []struct {
		ID    uint64 `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&pl); err != nil {
		t.Fatal(err)
	}
	if len(pl) != 1 || pl[0].ID != c.SessionID() {
		t.Fatalf("processlist = %+v", pl)
	}
}

// TestGracefulShutdownNoLeaks: shutting down with live sessions, an
// open mid-fetch cursor, and freshly scheduled statistics rebuilds
// terminates every goroutine the server started.
func TestGracefulShutdownNoLeaks(t *testing.T) {
	runtime.GC()
	before := runtime.NumGoroutine()

	script, err := workload.UniversityScript(30)
	if err != nil {
		t.Fatal(err)
	}
	db, err := pascalr.Open(script)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(db, Config{Addr: "127.0.0.1:0", MaxSessions: 8, MonitorAddr: "127.0.0.1:0"})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	c1, err := client.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c2, err := client.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	// c1 leaves a cursor open mid-fetch.
	stmt, err := c1.Prepare(`[<e.enr> OF EACH e IN employees: (e.enr >= 1)]`, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := stmt.Execute()
	if err != nil {
		t.Fatal(err)
	}
	rows.FetchSize = 1
	if !rows.Next() {
		t.Fatalf("no first row: %v", rows.Err())
	}
	// c2 churns mutations so drift-triggered rebuilds are in flight or
	// pending when shutdown starts.
	for i := 0; i < 60; i++ {
		if err := c2.Exec(fmt.Sprintf("papers :+ [<%d, 1980, 'shutdown-%d'>];", i%20+1, i)); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if n := srv.SessionCount(); n != 0 {
		t.Fatalf("%d sessions survived shutdown", n)
	}
	c1.Close()
	c2.Close()
	// New connections are refused outright.
	if _, err := client.Dial(srv.Addr().String()); err == nil {
		t.Fatal("dial succeeded after shutdown")
	}
	// Every goroutine the server and its sessions started must be gone.
	deadline := time.Now().Add(3 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: before=%d after=%d\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
