package server

import (
	"context"
	"fmt"
	"reflect"
	"testing"
	"time"

	"pascalr"
	"pascalr/client"
	"pascalr/internal/enginetest"
	"pascalr/internal/workload"
)

// twinDBs builds two databases from the same generated script. The
// identical mutation history gives them identical live statistics, so
// both plan and count identically — the precondition for comparing
// counter fingerprints across the in-process and loopback legs.
func twinDBs(t testing.TB, scale int) (*pascalr.Database, *pascalr.Database) {
	t.Helper()
	script, err := workload.UniversityScript(scale)
	if err != nil {
		t.Fatal(err)
	}
	local, err := pascalr.Open(script)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := pascalr.Open(script)
	if err != nil {
		t.Fatal(err)
	}
	return local, remote
}

// TestLoopbackMatrix runs queries under all 32 strategy combinations
// through a real TCP loopback connection and in process against a twin
// database, requiring bit-identical results and counter fingerprints.
// This is the serving-layer leg of the enginetest differential matrix:
// it proves the protocol encode/decode, the session option plumbing,
// and the server execution path add nothing and lose nothing.
func TestLoopbackMatrix(t *testing.T) {
	local, remoteDB := twinDBs(t, 25)
	srv := New(remoteDB, Config{Addr: "127.0.0.1:0", MaxSessions: 4})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	conn, err := client.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	ctx := context.Background()
	queries := enginetest.UniversityQueries
	for i, strat := range enginetest.StrategySets() {
		costBased := (i/2)%2 == 1 // alternate planners across the matrix
		for _, q := range []enginetest.QueryTest{queries[i%len(queries)], queries[(i+7)%len(queries)]} {
			label := fmt.Sprintf("strat=%v cost=%v query=%s", strat, costBased, q.Name)

			localOpts := []pascalr.Option{pascalr.WithStrategies(pascalr.Strategy(strat))}
			if costBased {
				localOpts = append(localOpts, pascalr.WithCostBased())
			}
			local.ResetStats()
			want, err := local.QueryContext(ctx, q.Src, localOpts...)
			if err != nil {
				t.Fatalf("%s: local: %v", label, err)
			}
			fpLocal := local.StatsFingerprint()

			if err := conn.ResetStats(); err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			got, err := conn.Query(q.Src, client.Options{
				HasStrategies: true, Strategies: uint8(strat),
				HasCostBased: true, CostBased: costBased,
			})
			if err != nil {
				t.Fatalf("%s: loopback: %v", label, err)
			}
			fpRemote, err := conn.StatsFingerprint()
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}

			if !reflect.DeepEqual(got.Columns, want.Columns()) {
				t.Fatalf("%s: columns %v != %v", label, got.Columns, want.Columns())
			}
			if !reflect.DeepEqual(got.Rows, want.Rows()) {
				t.Fatalf("%s: loopback rows diverge from in-process rows", label)
			}
			if fpLocal != fpRemote {
				t.Fatalf("%s: counter fingerprints diverge:\n  local:  %s\n  remote: %s", label, fpLocal, fpRemote)
			}
		}
	}
}

// TestLoopbackPreparedTwice: a statement prepared over the wire and
// executed twice matches the in-process prepared statement execution —
// results and fingerprints — both times, proving plan reuse behaves
// identically behind the protocol.
func TestLoopbackPreparedTwice(t *testing.T) {
	local, remoteDB := twinDBs(t, 25)
	srv := New(remoteDB, Config{Addr: "127.0.0.1:0", MaxSessions: 4})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	conn, err := client.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	const q = `[<e.ename, c.cnr> OF EACH e IN employees, EACH c IN courses, EACH t IN timetable:
		(e.enr = t.tenr) AND (c.cnr = t.tcnr)]`
	ctx := context.Background()

	localStmt, err := local.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	remoteStmt, err := conn.Prepare(q, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for round := 1; round <= 2; round++ {
		// Local leg streams through the same cursor path the server uses.
		local.ResetStats()
		lrows, err := localStmt.Rows(ctx)
		if err != nil {
			t.Fatalf("round %d: local: %v", round, err)
		}
		var want [][]any
		for lrows.Next() {
			want = append(want, lrows.Values())
		}
		if err := lrows.Err(); err != nil {
			t.Fatalf("round %d: local cursor: %v", round, err)
		}
		lrows.Close()
		fpLocal := local.StatsFingerprint()

		if err := conn.ResetStats(); err != nil {
			t.Fatal(err)
		}
		rrows, err := remoteStmt.Execute()
		if err != nil {
			t.Fatalf("round %d: execute: %v", round, err)
		}
		rrows.FetchSize = 3 // force several fetch round-trips
		var got [][]any
		for rrows.Next() {
			got = append(got, rrows.Values())
		}
		if err := rrows.Err(); err != nil {
			t.Fatalf("round %d: loopback cursor: %v", round, err)
		}
		fpRemote, err := conn.StatsFingerprint()
		if err != nil {
			t.Fatal(err)
		}

		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: loopback rows diverge from in-process rows", round)
		}
		if fpLocal != fpRemote {
			t.Fatalf("round %d: fingerprints diverge:\n  local:  %s\n  remote: %s", round, fpLocal, fpRemote)
		}
	}
	if err := remoteStmt.Close(); err != nil {
		t.Fatal(err)
	}
}
