package server

import (
	"encoding/json"
	"net"
	"net/http"

	"pascalr"
)

// metricsPayload is the /metrics document: serving-layer gauges, the
// live engine counters, and a per-relation statistics snapshot.
type metricsPayload struct {
	Sessions sessionMetrics      `json:"sessions"`
	Counters pascalr.Stats       `json:"counters"`
	Tables   []pascalr.TableStat `json:"tables"`
}

type sessionMetrics struct {
	Active   int    `json:"active"`
	Peak     int    `json:"peak"`
	Accepted uint64 `json:"accepted"`
	Rejected uint64 `json:"rejected"`
	Killed   uint64 `json:"killed"`
	Max      int    `json:"max"`
}

// startMonitor binds the HTTP monitoring listener and serves /metrics
// and /processlist until Shutdown closes it.
func (s *Server) startMonitor() error {
	ln, err := net.Listen("tcp", s.cfg.MonitorAddr)
	if err != nil {
		return err
	}
	s.httpLn = ln
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/processlist", s.handleProcessList)
	s.httpSrv = &http.Server{Handler: mux}
	go s.httpSrv.Serve(ln)
	return nil
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	active, peak := len(s.sessions), s.peak
	s.mu.Unlock()
	payload := metricsPayload{
		Sessions: sessionMetrics{
			Active:   active,
			Peak:     peak,
			Accepted: s.accepted.Load(),
			Rejected: s.rejected.Load(),
			Killed:   s.killed.Load(),
			Max:      s.cfg.MaxSessions,
		},
		Counters: s.db.Stats(),
		Tables:   s.db.TableStats(),
	}
	writeJSON(w, payload)
}

func (s *Server) handleProcessList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.processList())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
